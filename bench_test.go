package conflux

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (§8–§9), plus ablation and kernel micro-benchmarks. Each bench
// replays the communication schedules in volume mode and reports the metered
// traffic through b.ReportMetric, so `go test -bench=. -benchmem` regenerates
// the paper's rows/series at test scale. Paper-scale parameters (N=16,384,
// P=1,024) are driven by `go run ./cmd/confluxbench -scale paper`; results
// for both scales are recorded in EXPERIMENTS.md.

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/blas"
	"repro/internal/cholesky"
	"repro/internal/costmodel"
	"repro/internal/daap"
	"repro/internal/lapack"
	"repro/internal/mat"
	"repro/internal/pebble"
	"repro/internal/smpi"
	"repro/internal/trace"
	"repro/internal/xpart"
)

// smpiVolumeCholesky replays the 2.5D Cholesky schedule in volume mode.
func smpiVolumeCholesky(n int, o Options) (*VolumeReport, error) {
	opt := cholesky.DefaultOptions(n, o.Ranks, o.Memory)
	return smpi.RunTimeout(o.Ranks, false, 10*time.Minute, func(c *smpi.Comm) error {
		_, err := cholesky.Run(c, nil, opt)
		return err
	})
}

func costMaxMem(n, p int) float64 {
	return costmodel.MaxMemoryParams(n, p).M
}

// BenchmarkTable2 regenerates Table 2: measured vs modeled aggregate
// communication volume for the four implementations.
func BenchmarkTable2(b *testing.B) {
	for _, n := range []int{128, 256} {
		for _, p := range []int{4, 16} {
			b.Run(fmt.Sprintf("N=%d/P=%d", n, p), func(b *testing.B) {
				var ms []bench.Measurement
				for i := 0; i < b.N; i++ {
					var err error
					ms, err = bench.MeasureAll(b.Context(), n, p)
					if err != nil {
						b.Fatal(err)
					}
				}
				for _, m := range ms {
					b.ReportMetric(float64(m.MeasuredBytes)/1e6, string(m.Algo)+"-MB")
					b.ReportMetric(m.PredictionPct(), string(m.Algo)+"-pred%")
				}
			})
		}
	}
}

// BenchmarkFig6a regenerates the strong-scaling series: per-node volume vs P
// at fixed N, for every algorithm.
func BenchmarkFig6a(b *testing.B) {
	n := 256
	for _, p := range []int{4, 8, 16, 32} {
		for _, algo := range costmodel.Algorithms {
			b.Run(fmt.Sprintf("%s/P=%d", algo, p), func(b *testing.B) {
				var m bench.Measurement
				for i := 0; i < b.N; i++ {
					var err error
					m, err = bench.Measure(b.Context(), algo, n, p, costmodel.MaxMemoryParams(n, p).M)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(m.PerNodeBytes()/1e3, "KB/node")
				b.ReportMetric(m.ModeledBytes/float64(p)/1e3, "model-KB/node")
			})
		}
	}
}

// BenchmarkFig6b regenerates the weak-scaling series N = base·∛P.
func BenchmarkFig6b(b *testing.B) {
	base := 64
	for _, p := range []int{8, 27, 64} {
		n := bench.WeakScalingN(base, p)
		for _, algo := range []costmodel.Algorithm{costmodel.LibSci, costmodel.COnfLUX} {
			b.Run(fmt.Sprintf("%s/P=%d", algo, p), func(b *testing.B) {
				var m bench.Measurement
				for i := 0; i < b.N; i++ {
					var err error
					m, err = bench.Measure(b.Context(), algo, n, p, costmodel.MaxMemoryParams(n, p).M)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(m.PerNodeBytes()/1e3, "KB/node")
			})
		}
	}
}

// BenchmarkFig7 regenerates the reduction-vs-second-best heatmap (measured
// cells at small P, model-predicted cells at Summit scale).
func BenchmarkFig7(b *testing.B) {
	var res *bench.Fig7Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.RunFig7(b.Context(), []int{256}, []int{4, 16, 27648, 262144}, 64)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, c := range res.Cells {
		kind := "pred"
		if c.Measured {
			kind = "meas"
		}
		b.ReportMetric(c.Reduction, fmt.Sprintf("x-P%d-%s", c.P, kind))
	}
}

// BenchmarkAblationMaskingVsSwapping backs §7.3's row-masking argument.
func BenchmarkAblationMaskingVsSwapping(b *testing.B) {
	var ab bench.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		ab, err = bench.MaskingVsSwapping(b.Context(), 192, 8, float64(192*192)/4)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(ab.Ratio(), "swap/mask-ratio")
}

// BenchmarkAblationGridOptimization backs the §8 Processor Grid Optimization
// (Fig. 6a inset) for an awkward rank count.
func BenchmarkAblationGridOptimization(b *testing.B) {
	var ab bench.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		ab, err = bench.GridOptimizationOnOff(b.Context(), 128, 7, float64(128*128))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(ab.Ratio(), "greedy/optimized-ratio")
}

// BenchmarkAblationBlockSize sweeps the §7.2 blocking parameter v.
func BenchmarkAblationBlockSize(b *testing.B) {
	var ms []bench.Measurement
	for i := 0; i < b.N; i++ {
		var err error
		ms, err = bench.BlockSizeSweep(b.Context(), 128, 4, float64(128*128), []int{4, 8, 16, 32})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, m := range ms {
		unit := strings.ReplaceAll(m.GridDesc, " ", "") + "-KB"
		b.ReportMetric(float64(m.MeasuredBytes)/1e3, unit)
	}
}

// BenchmarkLowerBoundDerivation measures the §3 generic optimizer pipeline.
func BenchmarkLowerBoundDerivation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if q := xpart.LUDerivedLowerBound(4096, 64, 1<<20); q <= 0 {
			b.Fatal("bad bound")
		}
	}
}

// BenchmarkPebbleGreedy measures the red-blue pebble game scheduler on the
// Fig. 1 cDAG.
func BenchmarkPebbleGreedy(b *testing.B) {
	g := daap.BuildLUCDAG(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := pebble.Greedy(g, 24); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionCholesky meters the 2.5D Cholesky extension (the
// conclusions' future-work kernel) against the derived lower bound.
func BenchmarkExtensionCholesky(b *testing.B) {
	var rep *VolumeReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = func() (*VolumeReport, error) {
			o := Options{Ranks: 16}.withDefaults(256)
			return smpiVolumeCholesky(256, o)
		}()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(AlgorithmBytes(rep))/1e3, "KB")
	b.ReportMetric(LowerBoundCholesky(256, 16, costMaxMem(256, 16))*8*16/1e3, "lower-KB")
}

// BenchmarkExtensionOutOfCore meters the sequential software-cache LU
// against the §6 sequential bound 2N³/(3√M).
func BenchmarkExtensionOutOfCore(b *testing.B) {
	n, m := 192, 3*16*16
	var total int64
	for i := 0; i < b.N; i++ {
		a := mat.RandomDiagDominant(n, 7)
		loads, stores, err := FactorizeOutOfCore(a, m)
		if err != nil {
			b.Fatal(err)
		}
		total = loads + stores
	}
	b.ReportMetric(float64(total), "elements")
	b.ReportMetric(float64(total)/LowerBoundLU(n, 1, float64(m)), "x-over-bound")
}

// BenchmarkGemm and BenchmarkGetrf are substrate micro-benchmarks.
func BenchmarkGemm(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			x := mat.Random(n, n, 1)
			y := mat.Random(n, n, 2)
			z := mat.New(n, n)
			b.SetBytes(int64(8 * n * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				blas.Gemm(1, x, y, 0, z)
			}
		})
	}
}

func BenchmarkGetrf(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			a := mat.RandomDiagDominant(n, 3)
			ipiv := make([]int, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lu := a.Clone()
				if err := lapack.Getrf(lu, ipiv, 32); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFactorizeNumeric measures the end-to-end numeric distributed
// factorization through the public API.
func BenchmarkFactorizeNumeric(b *testing.B) {
	a := RandomMatrix(128, 9)
	for _, algo := range []Algorithm{COnfLUX, LibSci} {
		b.Run(string(algo), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Factorize(a, Options{Ranks: 4, Algorithm: algo}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Execution-core benchmarks: the host-side cost of replaying schedules on
// the simulated machine, at the three scale presets. These are the
// `go test -bench` counterparts of `confluxbench -exp perf` (whose JSON
// records BENCH_baseline.json / BENCH_scale.json track the trajectory);
// allocations per op are the refactor's second headline metric, so every
// benchmark reports them. The paper-scale case (N=16,384, P=1,024 — the
// §8 headline run) takes on the order of a minute and is skipped under
// -short so smoke runs stay fast.

func benchFactorizeVolume(b *testing.B, algo costmodel.Algorithm, n, p int) {
	b.ReportAllocs()
	mem := costmodel.MaxMemoryParams(n, p).M
	for i := 0; i < b.N; i++ {
		if _, err := bench.Measure(b.Context(), algo, n, p, mem); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFactorizeVolumeSmall(b *testing.B) { benchFactorizeVolume(b, costmodel.COnfLUX, 256, 16) }
func BenchmarkFactorizeVolumeMedium(b *testing.B) {
	benchFactorizeVolume(b, costmodel.COnfLUX, 1024, 64)
}

func BenchmarkFactorizeVolumePaper(b *testing.B) {
	if testing.Short() {
		b.Skip("paper-scale replay (N=16384, P=1024) skipped under -short")
	}
	benchFactorizeVolume(b, costmodel.COnfLUX, 16384, 1024)
}

func BenchmarkSolveVolume(b *testing.B) {
	cases := []struct{ n, p, nrhs int }{{256, 16, 8}, {4096, 256, 16}}
	for _, tc := range cases {
		b.Run(fmt.Sprintf("N=%d/P=%d/NRHS=%d", tc.n, tc.p, tc.nrhs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bench.MeasureSolve(b.Context(), tc.n, tc.p, tc.nrhs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEventExecutorParallel measures the event executor's
// concurrent-window schedule against the serial baton schedule on the same
// COnfLUX volume replay: workers=1 is the lock-free single-core baseline,
// workers=NumCPU spreads one world's window across the host's cores
// (identical to the baseline on a single-core host, minus the mailbox
// locking overhead the window requires). Reports are bit-identical at
// every width — these rows capture only the host-side cost, like
// `confluxbench -exp sched -workers N` but without the full sweep.
func BenchmarkEventExecutorParallel(b *testing.B) {
	presets := []struct {
		name string
		n, p int
	}{{"small", 256, 16}, {"medium", 1024, 64}}
	widths := []int{1, runtime.NumCPU()}
	if widths[1] == 1 {
		widths = widths[:1]
	}
	for _, pr := range presets {
		for _, w := range widths {
			b.Run(fmt.Sprintf("%s/N=%d/P=%d/workers=%d", pr.name, pr.n, pr.p, w), func(b *testing.B) {
				b.ReportAllocs()
				savedEx, savedW := bench.Executor, bench.ExecWorkers
				bench.Executor, bench.ExecWorkers = smpi.ExecEvents, w
				defer func() { bench.Executor, bench.ExecWorkers = savedEx, savedW }()
				mem := costmodel.MaxMemoryParams(pr.n, pr.p).M
				for i := 0; i < b.N; i++ {
					if _, err := bench.Measure(b.Context(), costmodel.COnfLUX, pr.n, pr.p, mem); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTimelineMerge measures the sharded trace substrate in isolation:
// record matched deliveries round-robin across p ranks, then merge the
// shards into the Report and Events views.
func BenchmarkTimelineMerge(b *testing.B) {
	cases := []struct{ p, events int }{{64, 200_000}, {1024, 1_000_000}}
	for _, tc := range cases {
		b.Run(fmt.Sprintf("P=%d/events=%d", tc.p, tc.events), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tl := trace.NewTimeline(tc.p, trace.DefaultMachine())
				for e := 0; e < tc.events; e++ {
					from, to := e%tc.p, (e+1)%tc.p
					st := tl.RecordSend(from, to, 1024, "merge")
					tl.RecordRecv(from, to, 1024, "merge", st)
				}
				if tl.Report().TotalMsgs() != int64(tc.events) {
					b.Fatal("merge lost messages")
				}
				if len(tl.Events()) != tc.events {
					b.Fatal("merge lost events")
				}
			}
		})
	}
}
