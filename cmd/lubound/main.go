// Command lubound prints X-Partitioning I/O lower bounds (paper §3–§6) for
// the kernels covered by this reproduction, alongside the cost models of the
// measured implementations.
//
//	lubound -kernel lu -n 16384 -p 1024
//	lubound -kernel mmm -n 8192 -m 1e6
//	lubound -kernel cholesky -n 4096 -p 64
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/costmodel"
	"repro/internal/xpart"
)

func main() {
	kernel := flag.String("kernel", "lu", "kernel: lu | mmm | cholesky")
	n := flag.Int("n", 16384, "matrix dimension N")
	p := flag.Int("p", 1024, "processors P")
	m := flag.Float64("m", 0, "fast memory per processor in elements (default N²/P^(2/3))")
	flag.Parse()
	mem := *m
	if mem <= 0 {
		mem = costmodel.MaxMemoryParams(*n, *p).M
	}
	fmt.Printf("kernel=%s N=%d P=%d M=%.0f elements\n\n", *kernel, *n, *p, mem)
	switch *kernel {
	case "lu":
		closed := xpart.LUParallelLowerBound(*n, *p, mem)
		derived := xpart.LUDerivedLowerBound(*n, *p, mem)
		fmt.Printf("parallel I/O lower bound (closed form §6):   %.4g elements/proc\n", closed)
		fmt.Printf("parallel I/O lower bound (derived, §3 opt.): %.4g elements/proc\n", derived)
		fmt.Printf("COnfLUX leading term N³/(P√M):               %.4g (%.2fx over bound)\n",
			float64(*n)*float64(*n)*float64(*n)/(float64(*p)*math.Sqrt(mem)),
			xpart.COnfLUXOverLowerBound(*n, *p, mem))
		fmt.Println("\nTable 2 cost models (elements/proc):")
		for _, a := range costmodel.Algorithms {
			fmt.Printf("  %-8s %.4g\n", a, costmodel.PerRankElements(a, costmodel.Params{N: *n, P: *p, M: mem}))
		}
	case "mmm":
		fmt.Printf("sequential lower bound 2N³/√M: %.4g\n", xpart.MMMSequentialLowerBound(*n, mem))
		b := xpart.MMMProblem(*n).SequentialBound(mem)
		fmt.Printf("derived: X0=%.4g rho=%.4g Q=%.4g\n", b.X0, b.Rho, b.Q)
		fmt.Printf("parallel (P=%d): %.4g\n", *p, b.Q/float64(*p))
	case "cholesky":
		q := xpart.CholeskyLowerBound(*n, mem)
		fmt.Printf("sequential lower bound (≈N³/(3√M)): %.4g\n", q)
		fmt.Printf("parallel (P=%d): %.4g\n", *p, q/float64(*p))
	default:
		fmt.Fprintf(os.Stderr, "unknown kernel %q\n", *kernel)
		os.Exit(2)
	}
}
