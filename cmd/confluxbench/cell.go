package main

// -cell mode: run a single Table-2 cell and print rows as they complete
// (used by the EXPERIMENTS.md pipeline so paper-scale runs stream results).

import (
	"context"
	"fmt"

	"repro/internal/bench"
)

func runCell(ctx context.Context, n, p int) {
	for _, row := range bench.TableCell(ctx, n, p) {
		fmt.Print(row)
	}
}
