package main

// -cell mode: run a single Table-2 cell and print rows as they complete
// (used by the EXPERIMENTS.md pipeline so paper-scale runs stream results).

import (
	"fmt"

	"repro/internal/bench"
)

func runCell(n, p int) {
	for _, row := range bench.TableCell(n, p) {
		fmt.Print(row)
	}
}
