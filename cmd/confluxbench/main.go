// Command confluxbench regenerates the paper's evaluation artifacts
// (Table 2, Fig. 6a, Fig. 6b, Fig. 7, and the §7 design ablations) on the
// simulated machine. Scale presets:
//
//	-scale small   fast sanity runs (default)
//	-scale medium  minutes; shapes clearly visible
//	-scale paper   the paper's N and P (N up to 16,384, P up to 1,024);
//	               budget tens of minutes
//
// The simulated-time columns use the α-β machine model; -alpha and -beta
// override the paper-scale defaults (≈1 µs, ≈10 GB/s).
//
// Examples:
//
//	confluxbench -exp table2 -scale paper
//	confluxbench -exp fig6a -scale medium
//	confluxbench -exp ablation
//	confluxbench -exp all -scale small
//	confluxbench -exp table2 -alpha 5e-6 -beta 2e-10
//	confluxbench -exp smoke -json BENCH_smoke.json
//	confluxbench -exp sched -scale paper -json BENCH_events.json
//	confluxbench -exp topology -scale small -json BENCH_topo.json
//	confluxbench -exp kernels -json BENCH_kernels.json
//	confluxbench -exp table2 -executor events
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"syscall"

	"repro/internal/bench"
	"repro/internal/costmodel"
	"repro/internal/smpi"
)

type scale struct {
	table2N, table2P []int
	fig6aN           int
	fig6aP           []int
	fig6bBase        int
	fig6bP           []int
	fig7N, fig7P     []int
	fig7Measured     int
	ablN, ablP       int
	smokeN, smokeP   int
	solveN           int
	solveP           []int
	solveNRHS        int
}

var scales = map[string]scale{
	"small": {
		table2N: []int{128, 256}, table2P: []int{4, 16},
		fig6aN: 256, fig6aP: []int{4, 8, 12, 16, 32},
		fig6bBase: 64, fig6bP: []int{1, 8, 27, 64},
		fig7N: []int{128, 256}, fig7P: []int{4, 16, 4096, 262144}, fig7Measured: 64,
		ablN: 192, ablP: 8,
		smokeN: 256, smokeP: 16,
		solveN: 256, solveP: []int{4, 8, 12, 16, 32}, solveNRHS: 8,
	},
	"medium": {
		table2N: []int{512, 1024}, table2P: []int{16, 64},
		fig6aN: 1024, fig6aP: []int{4, 8, 16, 24, 32, 48, 64, 96, 128},
		fig6bBase: 256, fig6bP: []int{1, 8, 27, 64},
		fig7N: []int{512, 1024}, fig7P: []int{16, 64, 256, 4096, 65536}, fig7Measured: 256,
		ablN: 512, ablP: 32,
		smokeN: 1024, smokeP: 64,
		solveN: 1024, solveP: []int{4, 16, 64, 128}, solveNRHS: 16,
	},
	"paper": {
		table2N: []int{4096, 16384}, table2P: []int{64, 1024},
		fig6aN: 16384, fig6aP: []int{4, 8, 16, 32, 64, 128, 256, 512, 768, 1024},
		fig6bBase: 3200, fig6bP: []int{1, 8, 27, 64, 125, 216},
		fig7N: []int{4096, 8192, 16384}, fig7P: []int{64, 256, 1024, 16384, 27648, 262144}, fig7Measured: 1024,
		ablN: 4096, ablP: 64,
		smokeN: 4096, smokeP: 64,
		solveN: 16384, solveP: []int{64, 256, 1024}, solveNRHS: 64,
	},
}

// main delegates to realMain so every failure path unwinds normally:
// os.Exit anywhere below the profiling defers would lose the CPU-profile
// flush and the heap snapshot of exactly the runs one most wants profiled
// (errors, SIGINT-canceled paper-scale sweeps).
func main() {
	os.Exit(realMain())
}

func realMain() (code int) {
	exp := flag.String("exp", "all", "experiment: table2 | fig6a | fig6b | fig7 | ablation | sweep | solve | smoke | perf | sched | topology | kernels | all")
	sc := flag.String("scale", "small", "scale preset: small | medium | paper (-exp sched also takes beyond)")
	cellN := flag.Int("cellN", 0, "with -exp cell: the N of a single Table-2 cell")
	cellP := flag.Int("cellP", 0, "with -exp cell: the P of a single Table-2 cell")
	csvDir := flag.String("csv", "", "also write machine-readable CSVs into this directory")
	alpha := flag.Float64("alpha", bench.Machine.Alpha, "α: per-message latency of the simulated machine (seconds)")
	beta := flag.Float64("beta", bench.Machine.Beta, "β: per-byte transfer cost of the simulated machine (seconds/byte)")
	jsonOut := flag.String("json", "", "with -exp smoke|perf|sched|topology|kernels: write the machine-readable record to this path")
	solveNRHS := flag.Int("nrhs", 0, "with -exp solve: override the scale preset's right-hand-side count")
	executor := flag.String("executor", "auto", "smpi executor for replayed worlds: auto | goroutines | events")
	execWorkers := flag.Int("workers", 0, "event-executor window width: ranks of one world run concurrently (0|1 = serial, -1 = NumCPU)")
	workers := flag.Int("parallel", 0, "independent simulated worlds to run concurrently (0 = GOMAXPROCS)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this path")
	memprofile := flag.String("memprofile", "", "write a heap profile (after the run) to this path")
	flag.Parse()
	bench.Machine = costmodel.Machine{Alpha: *alpha, Beta: *beta}
	bench.Workers = *workers
	bench.ExecWorkers = *execWorkers
	if bench.ExecWorkers < 0 {
		bench.ExecWorkers = runtime.NumCPU()
	}
	bench.Executor = smpi.Executor(*executor)
	if !bench.Executor.Valid() {
		fmt.Fprintf(os.Stderr, "unknown executor %q (want auto, goroutines, or events)\n", *executor)
		return 2
	}
	if *cpuprofile != "" {
		fh, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer fh.Close()
		if err := pprof.StartCPUProfile(fh); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			fh, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				code = 1
				return
			}
			defer fh.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(fh); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				code = 1
			}
		}()
	}
	// SIGINT/SIGTERM cancel the context, which aborts the in-flight
	// simulated world mid-sweep instead of waiting a paper-scale run out.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	writeCSV := func(name string, f func(w *os.File) error) error {
		if *csvDir == "" {
			return nil
		}
		path := filepath.Join(*csvDir, name)
		fh, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("csv %s: %w", path, err)
		}
		defer fh.Close()
		if err := f(fh); err != nil {
			return fmt.Errorf("csv %s: %w", path, err)
		}
		fmt.Printf("wrote %s\n", path)
		return nil
	}
	if *exp == "cell" {
		runCell(ctx, *cellN, *cellP)
		return 0
	}
	s, ok := scales[*sc]
	if !ok {
		// "beyond" exists only for the sched sweep (the N=65,536 frontier);
		// bench.SchedCases validates it, and the sched runner never reads
		// the scale struct.
		if !(*exp == "sched" && *sc == "beyond") {
			fmt.Fprintf(os.Stderr, "unknown scale %q\n", *sc)
			return 2
		}
	}
	// The first failing experiment stops the sweep; later run() calls are
	// no-ops and realMain returns non-zero after the defers flush.
	run := func(name string, f func(scale) error) {
		if code != 0 || (*exp != "all" && *exp != name) {
			return
		}
		fmt.Printf("=== %s (scale %s) ===\n", name, *sc)
		if err := f(s); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			code = 1
			return
		}
		fmt.Println()
	}

	run("table2", func(s scale) error {
		res, err := bench.RunTable2(ctx, s.table2N, s.table2P)
		if err != nil {
			return err
		}
		res.Render(os.Stdout)
		return writeCSV("table2.csv", func(w *os.File) error { return res.WriteCSV(w) })
	})
	run("fig6a", func(s scale) error {
		res, err := bench.RunFig6a(ctx, s.fig6aN, s.fig6aP)
		if err != nil {
			return err
		}
		res.Render(os.Stdout)
		return writeCSV("fig6a.csv", func(w *os.File) error { return res.WriteCSV(w) })
	})
	run("fig6b", func(s scale) error {
		res, err := bench.RunFig6b(ctx, s.fig6bBase, s.fig6bP)
		if err != nil {
			return err
		}
		res.Render(os.Stdout)
		return writeCSV("fig6b.csv", func(w *os.File) error { return res.WriteCSV(w) })
	})
	run("fig7", func(s scale) error {
		res, err := bench.RunFig7(ctx, s.fig7N, s.fig7P, s.fig7Measured)
		if err != nil {
			return err
		}
		res.Render(os.Stdout)
		if err := writeCSV("fig7.csv", func(w *os.File) error { return res.WriteCSV(w) }); err != nil {
			return err
		}
		red, algo := bench.SummitPrediction(16384, 27648)
		fmt.Printf("Summit full-scale prediction (N=16384, P=27648): %.2fx less than %s (paper: 2.1x)\n", red, algo)
		fmt.Printf("CANDMC-vs-2D model crossover at N=16384: P ≈ %d ranks (paper: ≈450k)\n", bench.CrossoverReport(16384))
		return nil
	})
	run("ablation", func(s scale) error {
		mem := float64(s.ablN) * float64(s.ablN) / 4
		ab, err := bench.MaskingVsSwapping(ctx, s.ablN, s.ablP, mem)
		if err != nil {
			return err
		}
		bench.RenderAblation(os.Stdout, ab)
		ab, err = bench.GridOptimizationOnOff(ctx, s.ablN, 7, mem)
		if err != nil {
			return err
		}
		bench.RenderAblation(os.Stdout, ab)
		ab, err = bench.TournamentVsPartialPivoting(ctx, s.ablN, s.ablP, mem)
		if err != nil {
			return err
		}
		bench.RenderAblation(os.Stdout, ab)
		return nil
	})
	run("smoke", func(s scale) error {
		res, err := bench.RunSmoke(ctx, s.smokeN, s.smokeP)
		if err != nil {
			return err
		}
		if err := res.WriteJSON(os.Stdout); err != nil {
			return err
		}
		if *jsonOut != "" {
			fh, err := os.Create(*jsonOut)
			if err != nil {
				return err
			}
			defer fh.Close()
			if err := res.WriteJSON(fh); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *jsonOut)
		}
		return nil
	})
	run("perf", func(s scale) error {
		rep, err := bench.RunPerf(ctx, *sc, os.Stdout)
		if err != nil {
			return err
		}
		if *jsonOut != "" {
			fh, err := os.Create(*jsonOut)
			if err != nil {
				return err
			}
			defer fh.Close()
			if err := rep.WriteJSON(fh); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *jsonOut)
		}
		return nil
	})
	run("sched", func(s scale) error {
		rep, err := bench.RunSched(ctx, *sc, os.Stdout)
		if err != nil {
			return err
		}
		if *jsonOut != "" {
			fh, err := os.Create(*jsonOut)
			if err != nil {
				return err
			}
			defer fh.Close()
			if err := rep.WriteJSON(fh); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *jsonOut)
		}
		return nil
	})
	run("topology", func(s scale) error {
		rep, err := bench.RunTopo(ctx, *sc, os.Stdout)
		if err != nil {
			return err
		}
		for _, name := range []string{"flat", "hier", "hier-contended", "dragonfly-contended", "hier+faults"} {
			if o, ok := rep.Optima[name]; ok {
				fmt.Printf("optimal under %-22s %s at c=%d (%.6es)\n", name, o.Algo, o.C, o.Makespan)
			}
		}
		if *jsonOut != "" {
			fh, err := os.Create(*jsonOut)
			if err != nil {
				return err
			}
			defer fh.Close()
			if err := rep.WriteJSON(fh); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *jsonOut)
		}
		return nil
	})
	// The kernel suite is scale-independent (fixed micro-benchmark shapes,
	// host-relative speedup floor), so the scale struct is unused.
	run("kernels", func(scale) error {
		rep, err := bench.RunKernels(ctx, os.Stdout)
		if err != nil {
			return err
		}
		if *jsonOut != "" {
			fh, err := os.Create(*jsonOut)
			if err != nil {
				return err
			}
			defer fh.Close()
			if err := rep.WriteJSON(fh); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *jsonOut)
		}
		return nil
	})
	run("solve", func(s scale) error {
		nrhs := s.solveNRHS
		if *solveNRHS > 0 {
			nrhs = *solveNRHS
		}
		res, err := bench.RunSolve(ctx, s.solveN, s.solveP, nrhs)
		if err != nil {
			return err
		}
		res.Render(os.Stdout)
		return writeCSV("solve.csv", func(w *os.File) error { return res.WriteCSV(w) })
	})
	run("sweep", func(s scale) error {
		mem := float64(s.ablN) * float64(s.ablN) / 4
		ms, err := bench.BlockSizeSweep(ctx, s.ablN, s.ablP, mem, []int{4, 8, 16, 32, 64})
		if err != nil {
			return err
		}
		fmt.Println("COnfLUX blocking-parameter sweep (paper §7.2):")
		for _, m := range ms {
			fmt.Printf("  %-18s %12d bytes %10d msgs\n", m.GridDesc, m.MeasuredBytes, m.Msgs)
		}
		return nil
	})
	return code
}
