// Command benchdiff compares two perf-suite JSON records (see
// `confluxbench -exp perf -json`) case by case, benchstat-style: time,
// allocations, and allocated bytes per op, with the relative change. It is
// the non-blocking regression gate of `make bench-json`: regressions beyond
// the threshold are flagged loudly in the log (and summarized on stderr),
// but the exit status stays 0 unless -exit is set, so a noisy CI runner
// cannot hard-fail the build on timing jitter.
//
// Usage:
//
//	benchdiff [-threshold 10] [-exit] OLD.json NEW.json
//
// Only cases present in both records are compared (records taken at
// different scale presets share their common prefix of cases).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func load(path string) (*bench.PerfReport, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	var rep bench.PerfReport
	if err := json.NewDecoder(fh).Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func pct(old, new int64) float64 {
	if old == 0 {
		return 0
	}
	return 100 * (float64(new) - float64(old)) / float64(old)
}

func main() {
	threshold := flag.Float64("threshold", 10, "flag regressions beyond this percentage")
	minAllocs := flag.Uint64("minallocs", 10_000, "ignore allocation regressions below this many allocs/op (relative noise on near-zero counts)")
	hardExit := flag.Bool("exit", false, "exit non-zero when a time regression exceeds the threshold")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold pct] [-exit] OLD.json NEW.json")
		os.Exit(2)
	}
	oldRep, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	newRep, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	oldByName := map[string]bench.PerfMeasurement{}
	for _, m := range oldRep.Results {
		oldByName[m.Name] = m
	}
	fmt.Printf("benchdiff %s (%s) -> %s (%s), regression threshold %.0f%%\n",
		flag.Arg(0), oldRep.Scale, flag.Arg(1), newRep.Scale, *threshold)
	fmt.Printf("%-44s %14s %14s %8s %10s %8s\n", "case", "old", "new", "Δtime", "Δallocs", "Δbytes")
	regressions := 0
	compared := 0
	for _, m := range newRep.Results {
		o, ok := oldByName[m.Name]
		if !ok {
			continue
		}
		compared++
		dt := pct(o.NsPerOp, m.NsPerOp)
		da := pct(int64(o.AllocsPerOp), int64(m.AllocsPerOp))
		db := pct(int64(o.BytesPerOp), int64(m.BytesPerOp))
		mark := ""
		if dt > *threshold {
			mark = "  <<< REGRESSION: time"
			regressions++
		} else if da > *threshold && m.AllocsPerOp >= *minAllocs {
			mark = "  <<< REGRESSION: allocs"
			regressions++
		}
		fmt.Printf("%-44s %14s %14s %+7.1f%% %+9.1f%% %+7.1f%%%s\n",
			m.Name, time.Duration(o.NsPerOp), time.Duration(m.NsPerOp), dt, da, db, mark)
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: the two records share no cases")
		os.Exit(2)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchdiff: %d case(s) regressed more than %.0f%% — inspect before merging\n",
			regressions, *threshold)
		if *hardExit {
			os.Exit(1)
		}
	}
}
