// Command benchdiff compares two perf-suite JSON records (see
// `confluxbench -exp perf -json`) case by case, benchstat-style: time,
// allocations, and allocated bytes per op, with the relative change. It is
// the non-blocking regression gate of `make bench-json`: regressions beyond
// the threshold are flagged loudly in the log (and summarized on stderr),
// but the exit status stays 0 unless -exit is set, so a noisy CI runner
// cannot hard-fail the build on timing jitter.
//
// Records with "kind": "topology" (`confluxbench -exp topology -json`) are
// compared exactly instead: every number in them is simulated, so two runs
// of the same sweep must agree bit for bit, and any drift on a shared row
// is a determinism regression regardless of threshold.
//
// Records with "kind": "kernels" (`confluxbench -exp kernels -json`) are
// host measurements of the local level-3 kernels: rows compare with the
// perf threshold, and the headline 512×512 blocked-GEMM speedup must stay
// at or above bench.MinGemmSpeedup512 — the acceptance floor that lets
// numeric factorization run at paper scale.
//
// Usage:
//
//	benchdiff [-threshold 10] [-exit] OLD.json NEW.json
//
// Only cases present in both records are compared (records taken at
// different scale presets share their common prefix of cases).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

// record is one loaded file: exactly one of perf/topo/kern is set,
// dispatched on the "kind" field ("" = a perf record, which predates the
// field).
type record struct {
	perf *bench.PerfReport
	topo *bench.TopoReport
	kern *bench.KernelReport
}

func load(path string) (record, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return record{}, err
	}
	var kind struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(raw, &kind); err != nil {
		return record{}, fmt.Errorf("%s: %w", path, err)
	}
	if kind.Kind == "topology" {
		var rep bench.TopoReport
		if err := json.Unmarshal(raw, &rep); err != nil {
			return record{}, fmt.Errorf("%s: %w", path, err)
		}
		return record{topo: &rep}, nil
	}
	if kind.Kind == "kernels" {
		var rep bench.KernelReport
		if err := json.Unmarshal(raw, &rep); err != nil {
			return record{}, fmt.Errorf("%s: %w", path, err)
		}
		return record{kern: &rep}, nil
	}
	var rep bench.PerfReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return record{}, fmt.Errorf("%s: %w", path, err)
	}
	return record{perf: &rep}, nil
}

// diffTopo compares two topology sweeps exactly. Shared rows — same
// (scenario, engine, c) — must agree on bytes and makespan to the last
// bit; the recorded optima must match wherever both sweeps cover the
// scenario. Returns (drifted rows, shared rows).
func diffTopo(oldRep, newRep *bench.TopoReport) (int, int) {
	type rowKey struct {
		scenario string
		algo     string
		c        int
	}
	oldRows := map[rowKey]bench.TopoRow{}
	for _, r := range oldRep.Rows {
		oldRows[rowKey{r.Scenario, string(r.Algo), r.C}] = r
	}
	fmt.Printf("%-22s %-8s %-3s %14s %14s\n", "scenario", "engine", "c", "bytes", "makespan")
	drift, compared := 0, 0
	for _, r := range newRep.Rows {
		o, ok := oldRows[rowKey{r.Scenario, string(r.Algo), r.C}]
		if !ok {
			continue
		}
		compared++
		mark := ""
		if o.Bytes != r.Bytes || o.Makespan != r.Makespan {
			mark = fmt.Sprintf("  <<< REGRESSION: determinism (was %d bytes, %.17gs)", o.Bytes, o.Makespan)
			drift++
		}
		fmt.Printf("%-22s %-8s %-3d %14d %14.6e%s\n", r.Scenario, r.Algo, r.C, r.Bytes, r.Makespan, mark)
	}
	for name, o := range oldRep.Optima {
		n, ok := newRep.Optima[name]
		if !ok {
			continue
		}
		if o != n {
			fmt.Printf("optimum %-22s moved: %s c=%d -> %s c=%d  <<< REGRESSION: optimum\n",
				name, o.Algo, o.C, n.Algo, n.C)
			drift++
		}
	}
	return drift, compared
}

// diffKernels compares two kernel micro-benchmark records: shared rows
// with the perf threshold on time, plus the headline 512×512 GEMM speedup
// floor (bench.MinGemmSpeedup512) — the blocked kernels are what lets
// numeric factorization run at paper scale, so falling below the floor is
// a regression even if no individual row moved by the threshold. Records
// taken on hosts with different ISAs (asm vs generic micro-kernel) are
// compared with rows only; the speedup floor still applies, since the
// acceptance bar is host-relative.
func diffKernels(oldRep, newRep *bench.KernelReport, threshold float64) (int, int) {
	fmt.Printf("benchdiff kernel records (isa %s -> %s), regression threshold %.0f%%\n",
		oldRep.ISA, newRep.ISA, threshold)
	oldByName := map[string]bench.KernelRow{}
	for _, r := range oldRep.Rows {
		oldByName[r.Name] = r
	}
	fmt.Printf("%-36s %14s %14s %8s %12s\n", "case", "old", "new", "Δtime", "MFLOP/s")
	regressions, compared := 0, 0
	for _, r := range newRep.Rows {
		o, ok := oldByName[r.Name]
		if !ok {
			continue
		}
		compared++
		dt := pct(o.NsPerOp, r.NsPerOp)
		mark := ""
		if dt > threshold {
			mark = "  <<< REGRESSION: time"
			regressions++
		}
		fmt.Printf("%-36s %14s %14s %+7.1f%% %12.0f%s\n",
			r.Name, time.Duration(o.NsPerOp), time.Duration(r.NsPerOp), dt, r.MFlops, mark)
	}
	fmt.Printf("speedup at 512x512: %.2fx -> %.2fx (floor %.1fx)\n",
		oldRep.Speedup512, newRep.Speedup512, bench.MinGemmSpeedup512)
	if newRep.Speedup512 < bench.MinGemmSpeedup512 {
		fmt.Printf("  <<< REGRESSION: blocked GEMM speedup below the %.1fx acceptance floor\n",
			bench.MinGemmSpeedup512)
		regressions++
	}
	return regressions, compared
}

func pct(old, new int64) float64 {
	if old == 0 {
		return 0
	}
	return 100 * (float64(new) - float64(old)) / float64(old)
}

func main() {
	threshold := flag.Float64("threshold", 10, "flag regressions beyond this percentage")
	minAllocs := flag.Uint64("minallocs", 10_000, "ignore allocation regressions below this many allocs/op (relative noise on near-zero counts)")
	hardExit := flag.Bool("exit", false, "exit non-zero when a time regression exceeds the threshold")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold pct] [-exit] OLD.json NEW.json")
		os.Exit(2)
	}
	oldRec, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	newRec, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if oldRec.topo != nil || newRec.topo != nil {
		if oldRec.topo == nil || newRec.topo == nil {
			fmt.Fprintln(os.Stderr, "benchdiff: cannot compare a topology record with a perf record")
			os.Exit(2)
		}
		fmt.Printf("benchdiff %s (%s) -> %s (%s), topology records: exact comparison\n",
			flag.Arg(0), oldRec.topo.Scale, flag.Arg(1), newRec.topo.Scale)
		drift, compared := diffTopo(oldRec.topo, newRec.topo)
		if compared == 0 {
			fmt.Fprintln(os.Stderr, "benchdiff: the two records share no cases")
			os.Exit(2)
		}
		if drift > 0 {
			fmt.Fprintf(os.Stderr, "\nbenchdiff: %d topology row(s) drifted — simulated results are deterministic, so this is a real change\n", drift)
			if *hardExit {
				os.Exit(1)
			}
		}
		return
	}
	if oldRec.kern != nil || newRec.kern != nil {
		if oldRec.kern == nil || newRec.kern == nil {
			fmt.Fprintln(os.Stderr, "benchdiff: cannot compare a kernels record with a different kind")
			os.Exit(2)
		}
		regressions, compared := diffKernels(oldRec.kern, newRec.kern, *threshold)
		if compared == 0 {
			fmt.Fprintln(os.Stderr, "benchdiff: the two records share no cases")
			os.Exit(2)
		}
		if regressions > 0 {
			fmt.Fprintf(os.Stderr, "\nbenchdiff: %d kernel case(s) regressed — the level-3 kernels are a conformance prerequisite, inspect before merging\n", regressions)
			if *hardExit {
				os.Exit(1)
			}
		}
		return
	}
	oldRep, newRep := oldRec.perf, newRec.perf
	oldByName := map[string]bench.PerfMeasurement{}
	for _, m := range oldRep.Results {
		oldByName[m.Name] = m
	}
	fmt.Printf("benchdiff %s (%s) -> %s (%s), regression threshold %.0f%%\n",
		flag.Arg(0), oldRep.Scale, flag.Arg(1), newRep.Scale, *threshold)
	fmt.Printf("%-44s %14s %14s %8s %10s %8s\n", "case", "old", "new", "Δtime", "Δallocs", "Δbytes")
	regressions := 0
	compared := 0
	for _, m := range newRep.Results {
		o, ok := oldByName[m.Name]
		if !ok {
			continue
		}
		compared++
		dt := pct(o.NsPerOp, m.NsPerOp)
		da := pct(int64(o.AllocsPerOp), int64(m.AllocsPerOp))
		db := pct(int64(o.BytesPerOp), int64(m.BytesPerOp))
		mark := ""
		if dt > *threshold {
			mark = "  <<< REGRESSION: time"
			regressions++
		} else if da > *threshold && m.AllocsPerOp >= *minAllocs {
			mark = "  <<< REGRESSION: allocs"
			regressions++
		}
		fmt.Printf("%-44s %14s %14s %+7.1f%% %+9.1f%% %+7.1f%%%s\n",
			m.Name, time.Duration(o.NsPerOp), time.Duration(m.NsPerOp), dt, da, db, mark)
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: the two records share no cases")
		os.Exit(2)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchdiff: %d case(s) regressed more than %.0f%% — inspect before merging\n",
			regressions, *threshold)
		if *hardExit {
			os.Exit(1)
		}
	}
}
