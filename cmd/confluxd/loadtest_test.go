package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
)

// TestConfluxdLoad is the `make loadtest` gate: ~50 concurrent clients
// hammer one plan point through the full HTTP stack and the cache must
// collapse the burst to exactly one simulation (asserted via the
// cache-stats endpoint), with every client receiving 200 and the same
// exact answer, and no goroutines leaked once the burst drains.
func TestConfluxdLoad(t *testing.T) {
	before := runtime.NumGoroutine()
	s, ts := testServer(t, nil, nil)
	client := &http.Client{}
	defer client.CloseIdleConnections()

	const clients, total = 50, 300
	var (
		mu     sync.Mutex
		exacts = map[string]int{} // serialized exact tier → count
	)
	rep := bench.RunLoad(t.Context(), clients, total, func(ctx context.Context, i int) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			ts.URL+"/v1/plan?n=192&p=8&algo=COnfLUX&wait=30s", nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("call %d: status %d: %s", i, resp.StatusCode, body)
		}
		exact, _ := exactOf(t, body)
		if len(exact) == 0 || string(exact) == "null" {
			return fmt.Errorf("call %d: no exact tier: %s", i, body)
		}
		mu.Lock()
		exacts[string(exact)]++
		mu.Unlock()
		return nil
	})
	if rep.Errors > 0 {
		t.Fatalf("%d/%d requests failed; first: %v", rep.Errors, rep.Requests, rep.FirstErr)
	}
	if rep.Requests != total {
		t.Fatalf("%d requests completed, want %d", rep.Requests, total)
	}
	if len(exacts) != 1 {
		t.Fatalf("clients observed %d distinct exact payloads, want 1 (determinism + cache): %v", len(exacts), keysOf(exacts))
	}

	// The server's own stats must show the singleflight collapse: the whole
	// burst cost one simulation.
	st := s.pl.Stats()
	if st.Simulations != 1 {
		t.Fatalf("burst of %d requests ran %d simulations, want exactly 1 (stats %+v)", total, st.Simulations, st)
	}
	if st.Cache.Misses != 1 || st.Cache.Hits+st.Cache.Joined != int64(total-1) {
		t.Fatalf("cache stats %+v: want 1 miss and %d hits+joins", st.Cache, total-1)
	}
	// And the public endpoint agrees.
	status, _, body := get(t, ts.URL+"/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("stats endpoint: %d %s", status, body)
	}
	var pub struct {
		Simulations int64 `json:"simulations"`
	}
	if err := json.Unmarshal(body, &pub); err != nil || pub.Simulations != 1 {
		t.Fatalf("/v1/stats reports %d simulations (err %v): %s", pub.Simulations, err, body)
	}

	// No goroutine leak after the burst: transient HTTP and planner
	// goroutines must drain.
	ts.Close()
	client.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+3 {
			break
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+3 {
		t.Fatalf("goroutine leak after burst: %d before, %d after drain", before, g)
	}

	t.Logf("load: %d clients, %d requests, qps=%.0f p50=%v p99=%v max=%v",
		rep.Clients, rep.Requests, rep.QPS, rep.P50Lat, rep.P99Lat, rep.MaxLat)
}

func keysOf(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestConfluxdLoadMixedPoints: a burst spread across a few distinct points
// still collapses to one simulation per point.
func TestConfluxdLoadMixedPoints(t *testing.T) {
	s, ts := testServer(t, nil, nil)
	points := []string{
		"n=128&p=4&algo=COnfLUX",
		"n=128&p=4&algo=LibSci",
		"n=160&p=4&algo=COnfLUX",
		"n=128&p=4&algo=COnfLUX&beta=2e-10",
	}
	rep := bench.RunLoad(t.Context(), 16, 120, func(ctx context.Context, i int) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			ts.URL+"/v1/plan?"+points[i%len(points)]+"&wait=30s", nil)
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("call %d: status %d", i, resp.StatusCode)
		}
		return nil
	})
	if rep.Errors > 0 {
		t.Fatalf("%d requests failed; first: %v", rep.Errors, rep.FirstErr)
	}
	if st := s.pl.Stats(); st.Simulations != int64(len(points)) {
		t.Fatalf("%d simulations for %d distinct points (stats %+v)", st.Simulations, len(points), st)
	}
}
