package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	conflux "repro"
	"repro/internal/costmodel"
	"repro/internal/plan"
)

// serverConfig is the serving policy: pool sizes, shedding thresholds, and
// parameter guards. Defaults are wired in main and overridable by flags.
type serverConfig struct {
	maxInFlight  int
	maxQueue     int
	queueTimeout time.Duration
	simTimeout   time.Duration
	defaultWait  time.Duration
	maxWait      time.Duration
	// maxN/maxP reject absurd problem sizes at the door (parameter-level
	// admission control): a single N=10^6 replay could pin a simulation
	// slot for hours.
	maxN, maxP int
	cacheSize  int
}

func defaultServerConfig() serverConfig {
	return serverConfig{
		maxQueue:     64,
		queueTimeout: 2 * time.Second,
		simTimeout:   2 * time.Minute,
		defaultWait:  15 * time.Second,
		maxWait:      60 * time.Second,
		maxN:         1 << 16,
		maxP:         1 << 14,
	}
}

// server is the confluxd HTTP surface over one plan.Planner.
type server struct {
	cfg   serverConfig
	pl    *plan.Planner
	start time.Time

	// mu guards topoCount: per-preset counts of plan requests that named
	// a topology, surfaced in /v1/stats. Keyed by the preset name as
	// requested ("hier-contended", not the resolved family), lazily
	// allocated so zero-value servers in tests work.
	mu        sync.Mutex
	topoCount map[string]int64
}

func (s *server) countTopology(preset string) {
	s.mu.Lock()
	if s.topoCount == nil {
		s.topoCount = make(map[string]int64)
	}
	s.topoCount[preset]++
	s.mu.Unlock()
}

func (s *server) topologyCounts() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.topoCount) == 0 {
		return nil
	}
	out := make(map[string]int64, len(s.topoCount))
	for k, v := range s.topoCount {
		out[k] = v
	}
	return out
}

func newServer(ctx context.Context, cfg serverConfig) *server {
	return &server{
		cfg: cfg,
		pl: plan.NewPlanner(ctx, plan.Options{
			MaxInFlight:  cfg.maxInFlight,
			MaxQueue:     cfg.maxQueue,
			QueueTimeout: cfg.queueTimeout,
			SimTimeout:   cfg.simTimeout,
			MaxEntries:   cfg.cacheSize,
		}),
		start: time.Now(),
	}
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/plan", s.handlePlan)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"ok":true}`)
	})
	return mux
}

// candidate is one engine's answer: the instant model tier, and the exact
// tier when cached or computed within the wait budget.
type candidate struct {
	Algorithm conflux.Algorithm `json:"algorithm"`
	Model     *plan.Model       `json:"model,omitempty"`
	Exact     *plan.Exact       `json:"exact,omitempty"`
	// ExactStatus: "hit", "computed", or "pending" (still simulating —
	// retry to pick it up from the cache).
	ExactStatus string `json:"exact_status"`
	Key         string `json:"key"`
}

// planResponse is the /v1/plan answer.
type planResponse struct {
	Request    plan.Request `json:"request"`
	Objective  string       `json:"objective"`
	Candidates []candidate  `json:"candidates"`
	// Best names the winning engine under the objective, using exact
	// results where present and model predictions otherwise (Source says
	// which).
	Best struct {
		Algorithm conflux.Algorithm `json:"algorithm"`
		Source    string            `json:"source"`
		Value     float64           `json:"value"`
	} `json:"best"`
}

// httpError is the typed JSON error surface.
type httpError struct {
	status     int
	retryAfter int // seconds; 0 = no header
	msg        string
}

func (s *server) writeError(w http.ResponseWriter, e httpError) {
	if e.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.retryAfter))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.status)
	json.NewEncoder(w).Encode(map[string]string{"error": e.msg})
}

// shedError maps the planner's typed shedding errors onto HTTP:
// ErrOverloaded (rejected at the door, queue full) → 429 Too Many
// Requests; ErrQueueTimeout (queued, capacity never freed) → 503 Service
// Unavailable. Both carry Retry-After. Other errors are 500s.
func (s *server) shedError(err error) (httpError, bool) {
	switch {
	case errors.Is(err, plan.ErrOverloaded):
		return httpError{http.StatusTooManyRequests, 1, err.Error()}, true
	case errors.Is(err, plan.ErrQueueTimeout):
		retry := int(s.cfg.queueTimeout/time.Second) + 1
		return httpError{http.StatusServiceUnavailable, retry, err.Error()}, true
	}
	return httpError{}, false
}

// parseParams decodes the query into a template request (algorithm left to
// the caller), the candidate set, the objective, and the wait budget.
func (s *server) parseParams(r *http.Request) (plan.Request, []conflux.Algorithm, string, time.Duration, *httpError) {
	q := r.URL.Query()
	bad := func(format string, args ...any) (plan.Request, []conflux.Algorithm, string, time.Duration, *httpError) {
		return plan.Request{}, nil, "", 0, &httpError{http.StatusBadRequest, 0, fmt.Sprintf(format, args...)}
	}
	intParam := func(name string, def int) (int, error) {
		v := q.Get(name)
		if v == "" {
			return def, nil
		}
		return strconv.Atoi(v)
	}
	floatParam := func(name string, def float64) (float64, error) {
		v := q.Get(name)
		if v == "" {
			return def, nil
		}
		return strconv.ParseFloat(v, 64)
	}
	n, err := intParam("n", 0)
	if err != nil || n <= 0 {
		return bad("parameter n (matrix dimension) is required and must be a positive integer")
	}
	p, err := intParam("p", 0)
	if err != nil || p <= 0 {
		return bad("parameter p (rank count) is required and must be a positive integer")
	}
	if n > s.cfg.maxN || p > s.cfg.maxP {
		return bad("point (n=%d, p=%d) exceeds the serving limits (n <= %d, p <= %d)", n, p, s.cfg.maxN, s.cfg.maxP)
	}
	def := conflux.DefaultMachine()
	alpha, err := floatParam("alpha", def.Alpha)
	if err != nil || alpha < 0 {
		return bad("parameter alpha must be a non-negative float (seconds per message)")
	}
	beta, err := floatParam("beta", def.Beta)
	if err != nil || beta < 0 {
		return bad("parameter beta must be a non-negative float (seconds per byte)")
	}
	memory, err := floatParam("memory", 0)
	if err != nil || memory < 0 {
		return bad("parameter memory must be a non-negative float (elements per rank; 0 = paper default)")
	}
	nb, err := intParam("nb", 0)
	if err != nil || nb < 0 {
		return bad("parameter nb must be a non-negative integer (0 = engine default)")
	}
	solveRanks, err := intParam("solve_ranks", 0)
	if err != nil || solveRanks < 0 || solveRanks > s.cfg.maxP {
		return bad("parameter solve_ranks must be in [0, %d] (0 = p)", s.cfg.maxP)
	}
	rhs, err := intParam("rhs", 0)
	if err != nil || rhs < 0 || rhs > 4096 {
		return bad("parameter rhs must be in [0, 4096] (0 = 1)")
	}
	refine, err := intParam("refine", 0)
	if err != nil || refine < 0 {
		return bad("parameter refine must be a non-negative integer")
	}
	var topology conflux.Topology
	if preset := q.Get("topology"); preset != "" {
		spec, err := conflux.TopologyPreset(preset)
		if err != nil {
			return bad("unknown topology preset %q (presets: %v)", preset, conflux.TopologyPresets())
		}
		topology = spec
		s.countTopology(preset)
	}
	job := plan.Job(q.Get("job"))
	if !job.Valid() {
		return bad("parameter job must be %q or %q", plan.JobVolume, plan.JobSolve)
	}
	objective := q.Get("objective")
	switch objective {
	case "":
		objective = "bytes"
	case "bytes", "time":
	default:
		return bad("parameter objective must be \"bytes\" or \"time\"")
	}
	wait := s.cfg.defaultWait
	if v := q.Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			return bad("parameter wait must be a non-negative duration (e.g. 500ms, 0 for model-only)")
		}
		wait = min(d, s.cfg.maxWait)
	}
	var algos []conflux.Algorithm
	switch a := q.Get("algo"); a {
	case "", "all":
		algos = append(algos, costmodel.Algorithms...)
	default:
		registered := false
		for _, name := range conflux.Engines() {
			if name == conflux.Algorithm(a) {
				registered = true
				break
			}
		}
		if !registered {
			return bad("unknown algorithm %q (registered: %v)", a, conflux.Engines())
		}
		algos = []conflux.Algorithm{conflux.Algorithm(a)}
	}
	req := plan.Request{
		N: n, P: p, Memory: memory, NB: nb,
		Alpha: alpha, Beta: beta,
		SolveRanks: solveRanks, RHS: rhs, RefineSweeps: refine,
		Topology: topology,
		Job:      job,
	}
	return req, algos, objective, wait, nil
}

// handlePlan answers "which engine minimizes communication volume (or
// modeled α-β time) at my (N, P, machine) point": the closed-form model
// tier instantly for every candidate, the exact simulated tier from the
// cache (or a fresh admitted simulation) within the wait budget.
func (s *server) handlePlan(w http.ResponseWriter, r *http.Request) {
	template, algos, objective, wait, herr := s.parseParams(r)
	if herr != nil {
		s.writeError(w, *herr)
		return
	}
	resp := planResponse{Objective: objective}
	var shed *httpError
	exactCount := 0
	for _, a := range algos {
		req := template
		req.Algorithm = a
		req, err := req.Canonicalize()
		if err != nil {
			s.writeError(w, httpError{http.StatusBadRequest, 0, err.Error()})
			return
		}
		if resp.Candidates == nil {
			resp.Request = req // canonical view of the shared point
		}
		c := candidate{Algorithm: a, Key: req.Key()}
		if m, ok := plan.ModelFor(req); ok {
			c.Model = &m
		}
		exact, outcome, err := s.pl.Evaluate(r.Context(), req, wait)
		switch {
		case err == nil:
			c.Exact = exact
			c.ExactStatus = string(outcome)
			if exact != nil {
				exactCount++
			}
		default:
			if he, ok := s.shedError(err); ok {
				c.ExactStatus = "shed"
				if shed == nil {
					shed = &he
				}
			} else if errors.Is(err, context.Canceled) {
				return // client went away
			} else {
				s.writeError(w, httpError{http.StatusInternalServerError, 0, err.Error()})
				return
			}
		}
		resp.Candidates = append(resp.Candidates, c)
	}
	// All candidates shed and nothing to serve → surface the typed
	// overload answer. Partial sheds degrade to model-tier responses.
	if shed != nil && exactCount == 0 && wait > 0 {
		s.writeError(w, *shed)
		return
	}
	s.pickBest(&resp)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// pickBest selects the winner under the objective, preferring exact
// results and falling back to model predictions per candidate.
func (s *server) pickBest(resp *planResponse) {
	bestSet := false
	for _, c := range resp.Candidates {
		var v float64
		var src string
		switch {
		case c.Exact != nil && resp.Objective == "time":
			v, src = c.Exact.Makespan, "exact"
		case c.Exact != nil:
			v, src = float64(c.Exact.AlgorithmBytes), "exact"
		case c.Model != nil && resp.Objective == "time":
			v, src = c.Model.PredictedSeconds, "model"
		case c.Model != nil:
			v, src = c.Model.TotalBytes, "model"
		default:
			continue
		}
		if !bestSet || v < resp.Best.Value {
			bestSet = true
			resp.Best.Algorithm = c.Algorithm
			resp.Best.Source = src
			resp.Best.Value = v
		}
	}
}

// statsResponse is the /v1/stats cache-stats surface the CI load test
// asserts singleflight on.
type statsResponse struct {
	plan.Stats
	// Topologies counts plan requests per named topology preset (absent
	// until the first topology-carrying request).
	Topologies    map[string]int64 `json:"topologies,omitempty"`
	UptimeSeconds float64          `json:"uptime_s"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(statsResponse{
		Stats:         s.pl.Stats(),
		Topologies:    s.topologyCounts(),
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}
