package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	conflux "repro"
	"repro/internal/plan"
)

// testServer builds a server with fast serving policy and an optional
// injected runner (nil → real simulations).
func testServer(t *testing.T, runner func(context.Context, plan.Request) (*plan.Exact, error), opt func(*plan.Options)) (*server, *httptest.Server) {
	t.Helper()
	cfg := defaultServerConfig()
	cfg.defaultWait = 10 * time.Second
	po := plan.Options{
		MaxQueue:     cfg.maxQueue,
		QueueTimeout: cfg.queueTimeout,
		SimTimeout:   cfg.simTimeout,
		Runner:       runner,
	}
	if opt != nil {
		opt(&po)
	}
	s := &server{cfg: cfg, pl: plan.NewPlanner(t.Context(), po), start: time.Now()}
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

// TestPlanParamValidation: malformed or out-of-policy queries are rejected
// with 400 and a JSON error body, before any simulation is admitted.
func TestPlanParamValidation(t *testing.T) {
	_, ts := testServer(t, nil, nil)
	for name, query := range map[string]string{
		"missing n":        "p=4",
		"missing p":        "n=64",
		"non-numeric n":    "n=abc&p=4",
		"negative p":       "n=64&p=-1",
		"oversized n":      fmt.Sprintf("n=%d&p=4", (1<<16)+1),
		"oversized p":      fmt.Sprintf("n=64&p=%d", (1<<14)+1),
		"negative alpha":   "n=64&p=4&alpha=-1",
		"negative beta":    "n=64&p=4&beta=-1e-10",
		"negative memory":  "n=64&p=4&memory=-5",
		"bad nb":           "n=64&p=4&nb=-1",
		"bad job":          "n=64&p=4&job=fastest",
		"bad objective":    "n=64&p=4&objective=carbon",
		"bad wait":         "n=64&p=4&wait=soon",
		"unknown algo":     "n=64&p=4&algo=GaussianElimination",
		"oversized rhs":    "n=64&p=4&rhs=9999",
		"negative refine":  "n=64&p=4&refine=-1",
		"unknown topology": "n=64&p=4&topology=torus",
		"solve_ranks gt p": fmt.Sprintf("n=64&p=4&solve_ranks=%d", (1<<14)+1),
	} {
		status, _, body := get(t, ts.URL+"/v1/plan?"+query)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", name, status, body)
			continue
		}
		var e map[string]string
		if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
			t.Errorf("%s: error body not JSON {error: ...}: %s", name, body)
		}
	}
}

// TestPlanHitMissSemantics drives the acceptance matrix through the HTTP
// surface: repeating a point HITs (one simulation total), while changing
// machine β, nb, or memory MISSes (a fresh simulation each).
func TestPlanHitMissSemantics(t *testing.T) {
	var sims atomic.Int64
	runner := func(ctx context.Context, req plan.Request) (*plan.Exact, error) {
		sims.Add(1)
		return plan.Simulate(ctx, req)
	}
	_, ts := testServer(t, runner, nil)
	base := ts.URL + "/v1/plan?n=128&p=4&algo=COnfLUX"

	status, _, body1 := get(t, base)
	if status != http.StatusOK {
		t.Fatalf("first request: %d %s", status, body1)
	}
	if got := sims.Load(); got != 1 {
		t.Fatalf("%d simulations after first request, want 1", got)
	}
	// Identical point → cache hit, no new simulation, and the exact payload
	// is identical (determinism makes the cached answer THE answer).
	status, _, body2 := get(t, base)
	if status != http.StatusOK {
		t.Fatalf("second request: %d %s", status, body2)
	}
	if got := sims.Load(); got != 1 {
		t.Fatalf("repeat of the same point ran a simulation (%d total)", got)
	}
	exact1, status1 := exactOf(t, body1)
	exact2, status2 := exactOf(t, body2)
	if string(exact1) != string(exact2) {
		t.Fatalf("exact payloads differ between miss and hit:\n%s\n%s", exact1, exact2)
	}
	if status1 != "computed" || status2 != "hit" {
		t.Fatalf("exact_status sequence = %q, %q; want computed, hit", status1, status2)
	}

	// Each key-relevant perturbation forces a distinct simulation.
	for _, q := range []string{"&beta=2e-10", "&nb=8", "&memory=16384"} {
		before := sims.Load()
		status, _, body := get(t, base+q)
		if status != http.StatusOK {
			t.Fatalf("perturbed request %s: %d %s", q, status, body)
		}
		if got := sims.Load(); got != before+1 {
			t.Fatalf("perturbation %s did not trigger a fresh simulation (%d → %d)", q, before, got)
		}
	}
}

// exactOf extracts the serialized exact block and its status from a
// /v1/plan response with a single candidate.
func exactOf(t *testing.T, body []byte) ([]byte, string) {
	t.Helper()
	var resp struct {
		Candidates []struct {
			Exact       json.RawMessage `json:"exact"`
			ExactStatus string          `json:"exact_status"`
		} `json:"candidates"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("unmarshal: %v in %s", err, body)
	}
	if len(resp.Candidates) != 1 {
		t.Fatalf("%d candidates, want 1: %s", len(resp.Candidates), body)
	}
	return resp.Candidates[0].Exact, resp.Candidates[0].ExactStatus
}

// TestPlanExactMatchesLibrary: the served exact tier equals an uncached
// conflux.Session run of the same point — the service is a cache in front
// of the library, not a different computation.
func TestPlanExactMatchesLibrary(t *testing.T) {
	_, ts := testServer(t, nil, nil)
	status, _, body := get(t, ts.URL+"/v1/plan?n=128&p=4&algo=COnfLUX")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp struct {
		Candidates []struct {
			Exact *plan.Exact `json:"exact"`
		} `json:"candidates"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) != 1 || resp.Candidates[0].Exact == nil {
		t.Fatalf("no exact tier in %s", body)
	}
	got := resp.Candidates[0].Exact

	s, err := conflux.New(conflux.WithRanks(4), conflux.WithAlgorithm(conflux.COnfLUX))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.CommVolume(t.Context(), 128)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalBytes != rep.TotalBytes() || got.AlgorithmBytes != conflux.AlgorithmBytes(rep) ||
		got.Msgs != rep.TotalMsgs() || got.Makespan != rep.Time.Makespan {
		t.Fatalf("served exact %+v != library report (total=%d algo=%d msgs=%d makespan=%v)",
			got, rep.TotalBytes(), conflux.AlgorithmBytes(rep), rep.TotalMsgs(), rep.Time.Makespan)
	}
}

// TestPlanBestSelection: with all engines as candidates and the bytes
// objective, best.algorithm is the candidate with minimal exact bytes.
func TestPlanBestSelection(t *testing.T) {
	_, ts := testServer(t, nil, nil)
	status, _, body := get(t, ts.URL+"/v1/plan?n=128&p=4")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp struct {
		Candidates []struct {
			Algorithm string      `json:"algorithm"`
			Exact     *plan.Exact `json:"exact"`
		} `json:"candidates"`
		Best struct {
			Algorithm string  `json:"algorithm"`
			Source    string  `json:"source"`
			Value     float64 `json:"value"`
		} `json:"best"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) < 2 {
		t.Fatalf("want the full engine panel, got %d candidates", len(resp.Candidates))
	}
	minAlgo, minVal := "", 0.0
	for _, c := range resp.Candidates {
		if c.Exact == nil {
			t.Fatalf("candidate %s missing exact tier: %s", c.Algorithm, body)
		}
		v := float64(c.Exact.AlgorithmBytes)
		if minAlgo == "" || v < minVal {
			minAlgo, minVal = c.Algorithm, v
		}
	}
	if resp.Best.Algorithm != minAlgo || resp.Best.Source != "exact" || resp.Best.Value != minVal {
		t.Fatalf("best = %+v, want %s/exact/%v", resp.Best, minAlgo, minVal)
	}
}

// TestPlanShedding: with a single simulation slot held and no queue,
// overflow requests get typed 429 with Retry-After; with a short queue
// timeout, queued requests get 503. Model-tier availability keeps partial
// panels at 200.
func TestPlanShedding(t *testing.T) {
	release := make(chan struct{})
	runner := func(ctx context.Context, req plan.Request) (*plan.Exact, error) {
		select {
		case <-release:
			return &plan.Exact{TotalBytes: 1}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	s, ts := testServer(t, runner, func(o *plan.Options) {
		o.MaxInFlight = 1
		o.MaxQueue = -1 // no queue: overflow rejects at the door
	})

	// Occupy the only slot (fast tier returns pending immediately).
	status, _, body := get(t, ts.URL+"/v1/plan?n=128&p=4&algo=COnfLUX&wait=0")
	if status != http.StatusOK {
		t.Fatalf("occupier: %d %s", status, body)
	}
	waitInFlight(t, s, 1)

	// A different point now sheds at admission → 429 + Retry-After.
	status, hdr, body := get(t, ts.URL+"/v1/plan?n=256&p=4&algo=COnfLUX&wait=5s")
	if status != http.StatusTooManyRequests {
		t.Fatalf("overflow: %d %s, want 429", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// wait=0 on a shed point still answers 200 from the model tier.
	status, _, body = get(t, ts.URL+"/v1/plan?n=512&p=4&algo=COnfLUX&wait=0")
	if status != http.StatusOK {
		t.Fatalf("model-only during overload: %d %s", status, body)
	}
	if !strings.Contains(string(body), `"model"`) {
		t.Fatalf("model tier missing under overload: %s", body)
	}

	close(release)
}

// TestPlanQueueTimeout: a queued request that never gets a slot within the
// queue timeout is answered 503 with Retry-After.
func TestPlanQueueTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	runner := func(ctx context.Context, req plan.Request) (*plan.Exact, error) {
		select {
		case <-release:
			return &plan.Exact{TotalBytes: 1}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	s, ts := testServer(t, runner, func(o *plan.Options) {
		o.MaxInFlight = 1
		o.MaxQueue = 8
		o.QueueTimeout = 50 * time.Millisecond
	})
	s.cfg.queueTimeout = 50 * time.Millisecond

	status, _, body := get(t, ts.URL+"/v1/plan?n=128&p=4&algo=COnfLUX&wait=0")
	if status != http.StatusOK {
		t.Fatalf("occupier: %d %s", status, body)
	}
	waitInFlight(t, s, 1)

	status, hdr, body := get(t, ts.URL+"/v1/plan?n=256&p=4&algo=COnfLUX&wait=5s")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("queued overflow: %d %s, want 503", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

// TestStatsEndpoint: /v1/stats exposes the planner counters the load test
// asserts on.
func TestStatsEndpoint(t *testing.T) {
	_, ts := testServer(t, nil, nil)
	if status, _, body := get(t, ts.URL+"/v1/plan?n=128&p=4&algo=COnfLUX"); status != http.StatusOK {
		t.Fatalf("plan: %d %s", status, body)
	}
	status, _, body := get(t, ts.URL+"/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("stats: %d %s", status, body)
	}
	var st struct {
		Simulations int64 `json:"simulations"`
		Cache       struct {
			Misses int64 `json:"misses"`
		} `json:"cache"`
		UptimeSeconds float64 `json:"uptime_s"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("stats body %s: %v", body, err)
	}
	if st.Simulations != 1 || st.Cache.Misses != 1 {
		t.Fatalf("stats %s: want simulations=1, misses=1", body)
	}
	if st.UptimeSeconds < 0 {
		t.Fatalf("negative uptime in %s", body)
	}
}

// TestPlanTopologyPreset: a valid topology preset is accepted, keys
// separately from the plain request (a distinct simulation with a
// distinct makespan), and shows up in the /v1/stats per-preset counts.
func TestPlanTopologyPreset(t *testing.T) {
	var sims atomic.Int64
	runner := func(ctx context.Context, req plan.Request) (*plan.Exact, error) {
		sims.Add(1)
		return plan.Simulate(ctx, req)
	}
	_, ts := testServer(t, runner, nil)
	base := ts.URL + "/v1/plan?n=128&p=8&algo=COnfLUX"

	status, _, plainBody := get(t, base)
	if status != http.StatusOK {
		t.Fatalf("plain request: %d %s", status, plainBody)
	}
	status, _, hierBody := get(t, base+"&topology=hier")
	if status != http.StatusOK {
		t.Fatalf("topology request: %d %s", status, hierBody)
	}
	if got := sims.Load(); got != 2 {
		t.Fatalf("%d simulations, want 2 — topology must miss the plain cache entry", got)
	}
	var plain, hier struct {
		Candidates []struct {
			Key   string      `json:"key"`
			Exact *plan.Exact `json:"exact"`
		} `json:"candidates"`
	}
	if err := json.Unmarshal(plainBody, &plain); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(hierBody, &hier); err != nil {
		t.Fatal(err)
	}
	if plain.Candidates[0].Key == hier.Candidates[0].Key {
		t.Fatalf("topology preset did not change the cache key %q", plain.Candidates[0].Key)
	}
	if plain.Candidates[0].Exact == nil || hier.Candidates[0].Exact == nil {
		t.Fatalf("missing exact tier:\n%s\n%s", plainBody, hierBody)
	}
	if plain.Candidates[0].Exact.Makespan == hier.Candidates[0].Exact.Makespan {
		t.Fatal("hier topology left the makespan unchanged — the spec was dropped on the session path")
	}
	// Bytes moved are a schedule property, not a topology property.
	if plain.Candidates[0].Exact.TotalBytes != hier.Candidates[0].Exact.TotalBytes {
		t.Fatal("topology changed communication volume — it must only re-time the schedule")
	}

	// Same preset again: cache hit, but the per-preset counter still ticks.
	if status, _, body := get(t, base+"&topology=hier"); status != http.StatusOK {
		t.Fatalf("repeat topology request: %d %s", status, body)
	}
	if got := sims.Load(); got != 2 {
		t.Fatalf("repeated topology point re-simulated (%d total)", got)
	}
	status, _, statsBody := get(t, ts.URL+"/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("stats: %d %s", status, statsBody)
	}
	var st struct {
		Topologies map[string]int64 `json:"topologies"`
	}
	if err := json.Unmarshal(statsBody, &st); err != nil {
		t.Fatalf("stats body %s: %v", statsBody, err)
	}
	if st.Topologies["hier"] != 2 {
		t.Fatalf("stats %s: want topologies.hier == 2", statsBody)
	}
}

// TestHealthz: liveness answers without touching the planner.
func TestHealthz(t *testing.T) {
	_, ts := testServer(t, nil, nil)
	status, _, body := get(t, ts.URL+"/healthz")
	if status != http.StatusOK || !strings.Contains(string(body), `"ok":true`) {
		t.Fatalf("healthz: %d %s", status, body)
	}
}

// waitInFlight polls until the planner reports n running simulations.
func waitInFlight(t *testing.T, s *server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.pl.Stats().InFlight == n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("planner never reached %d in-flight simulations", n)
}
