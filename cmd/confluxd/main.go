// Command confluxd is the planner service: a high-QPS HTTP/JSON server
// answering "which engine/grid minimizes communication volume (or modeled
// α-β time) on my machine?" for requested (N, P, machine) points
// (ROADMAP item 2 — the "millions of users" serving story).
//
// Because every simulation is a pure function of the canonical parameter
// tuple (reports are pinned byte-identical across reps, executors, and
// event-window widths), results are infinitely cacheable: requests are
// canonicalized into deterministic keys (internal/plan), answered from a
// sharded in-memory cache with singleflight coalescing, and load-shed with
// typed 429/503 + Retry-After once the bounded simulation pool and its
// queue are saturated. The closed-form Table 2 cost models serve as an
// instant approximate tier while exact simulations proceed. See DESIGN.md
// §13.
//
//	confluxd -addr :8080
//	curl 'localhost:8080/v1/plan?n=4096&p=64'
//	curl 'localhost:8080/v1/plan?n=4096&p=64&algo=COnfLUX&beta=2e-10&objective=time'
//	curl 'localhost:8080/v1/stats'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	cfg := defaultServerConfig()
	addr := flag.String("addr", ":8080", "listen address")
	flag.IntVar(&cfg.maxInFlight, "max-inflight", 0, "max concurrently running simulations (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.maxQueue, "max-queue", cfg.maxQueue, "max requests queued for a simulation slot (beyond it: 429)")
	flag.DurationVar(&cfg.queueTimeout, "queue-timeout", cfg.queueTimeout, "max time a request queues for a slot (beyond it: 503)")
	flag.DurationVar(&cfg.simTimeout, "sim-timeout", cfg.simTimeout, "wall-clock bound on one simulation")
	flag.DurationVar(&cfg.defaultWait, "default-wait", cfg.defaultWait, "default exact-tier wait budget (the wait query param overrides)")
	flag.DurationVar(&cfg.maxWait, "max-wait", cfg.maxWait, "upper bound on the wait query param")
	flag.IntVar(&cfg.maxN, "max-n", cfg.maxN, "largest accepted matrix dimension")
	flag.IntVar(&cfg.maxP, "max-p", cfg.maxP, "largest accepted rank count")
	flag.IntVar(&cfg.cacheSize, "cache-entries", 0, "result cache capacity in entries (0 = 64k)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	s := newServer(ctx, cfg)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.routes(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("confluxd: serving on %s (max-inflight=%d, max-queue=%d, queue-timeout=%v)",
		*addr, cfg.maxInFlight, cfg.maxQueue, cfg.queueTimeout)

	select {
	case err := <-errc:
		log.Fatalf("confluxd: %v", err)
	case <-ctx.Done():
	}
	log.Printf("confluxd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "confluxd: shutdown: %v\n", err)
	}
}
