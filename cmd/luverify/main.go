// Command luverify cross-validates the four distributed LU implementations
// numerically against the definition ‖A[perm,:] − L·U‖∞: every algorithm
// factorizes the same random matrices on simulated ranks and the residuals
// are printed. Exit status is non-zero if any residual exceeds tolerance.
package main

import (
	"flag"
	"fmt"
	"os"

	repro "repro"
	"repro/internal/blas"
	"repro/internal/lapack"
	"repro/internal/mat"
)

func main() {
	n := flag.Int("n", 96, "matrix dimension")
	p := flag.Int("p", 8, "simulated ranks")
	seed := flag.Uint64("seed", 42, "matrix seed")
	general := flag.Bool("general", false, "use a general (non-dominant) random matrix")
	flag.Parse()

	var a *mat.Matrix
	if *general {
		a = mat.Random(*n, *n, *seed)
	} else {
		a = mat.RandomDiagDominant(*n, *seed)
	}

	const tol = 1e-9
	fail := false
	fmt.Printf("luverify: N=%d P=%d seed=%d general=%v\n", *n, *p, *seed, *general)
	for _, algo := range []repro.Algorithm{repro.COnfLUX, repro.CANDMC, repro.LibSci, repro.SLATE} {
		res, err := repro.Factorize(a, repro.Options{Ranks: *p, Algorithm: algo})
		if err != nil {
			fmt.Printf("  %-8s ERROR: %v\n", algo, err)
			fail = true
			continue
		}
		r := residual(a, res.LU, res.Perm)
		status := "ok"
		if r > tol {
			status = "FAIL"
			fail = true
		}
		fmt.Printf("  %-8s residual %.3e  comm %8.3f MB  %s\n",
			algo, r, float64(repro.AlgorithmBytes(res.Volume))/1e6, status)
	}
	if fail {
		os.Exit(1)
	}
}

func residual(a, lu *mat.Matrix, perm []int) float64 {
	n := a.Rows
	l, u := lapack.SplitLU(lu)
	prod := mat.New(n, n)
	blas.Gemm(1, l, u, 0, prod)
	pa := mat.PermuteRows(a, perm)
	return mat.MaxAbsDiff(pa, prod) / (mat.NormInf(a)*float64(n) + 1)
}
