package conflux_test

import (
	"context"
	"fmt"

	conflux "repro"
)

// Construct a v2 Session: one simulated machine configuration, reused
// across jobs. Options validate eagerly — an unregistered algorithm fails
// at New with ErrUnknownAlgorithm, not mid-run.
func ExampleNew() {
	s, err := conflux.New(
		conflux.WithRanks(8),
		conflux.WithAlgorithm(conflux.CANDMC),
	)
	if err != nil {
		panic(err)
	}
	fmt.Printf("session: %s on %d ranks\n", s.Algorithm(), s.Ranks())
	// Output:
	// session: CANDMC on 8 ranks
}

// Factorize through a Session under a context, reusing the session for a
// second job and reading the accumulated stats.
func ExampleSession_Factorize() {
	ctx := context.Background()
	s, err := conflux.New(conflux.WithRanks(4))
	if err != nil {
		panic(err)
	}
	a := conflux.RandomMatrix(32, 7)
	res, err := s.Factorize(ctx, a)
	if err != nil {
		panic(err)
	}
	diff := res.LU.At(0, 0) - a.At(res.Perm[0], 0)
	fmt.Printf("|LU(0,0) - A[perm[0],0]| < 1e-12: %v\n", diff*diff < 1e-24)
	if _, err := s.CommVolume(ctx, 32); err != nil {
		panic(err)
	}
	fmt.Printf("jobs completed on one session: %d\n", s.Stats().Runs)
	// Output:
	// |LU(0,0) - A[perm[0],0]| < 1e-12: true
	// jobs completed on one session: 2
}

// Factorize a small matrix with COnfLUX on four simulated ranks and verify
// one reconstructed entry.
func ExampleFactorize() {
	a := conflux.RandomMatrix(32, 7)
	res, err := conflux.Factorize(a, conflux.Options{Ranks: 4})
	if err != nil {
		panic(err)
	}
	// Row 0 of the factors corresponds to row res.Perm[0] of A, and
	// L(0,:)·U(:,0) = U(0,0) because L has a unit diagonal.
	diff := res.LU.At(0, 0) - a.At(res.Perm[0], 0)
	fmt.Printf("|LU(0,0) - A[perm[0],0]| < 1e-12: %v\n", diff*diff < 1e-24)
	// Output:
	// |LU(0,0) - A[perm[0],0]| < 1e-12: true
}

// Meter an algorithm's communication schedule without doing arithmetic.
func ExampleCommVolume() {
	cfx, _ := conflux.CommVolume(conflux.COnfLUX, 256, 16, 0)
	lib, _ := conflux.CommVolume(conflux.LibSci, 256, 16, 0)
	fmt.Printf("COnfLUX moves less than ScaLAPACK-style 2D: %v\n",
		conflux.AlgorithmBytes(cfx) < conflux.AlgorithmBytes(lib))
	// Output:
	// COnfLUX moves less than ScaLAPACK-style 2D: true
}

// The paper's §6 lower bound and COnfLUX's 3/2-optimality gap.
func ExampleLowerBoundLU() {
	n, p := 16384, 1024
	m := 0.0 // default: the paper's maximum-replication memory
	bound := conflux.LowerBoundLU(n, p, m)
	leading := conflux.ModelPerRankElements(conflux.COnfLUX, n, p, m)
	fmt.Printf("COnfLUX model within 3x of the lower bound: %v\n", leading < 3*bound)
	// Output:
	// COnfLUX model within 3x of the lower bound: true
}
