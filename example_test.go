package conflux_test

import (
	"fmt"

	conflux "repro"
)

// Factorize a small matrix with COnfLUX on four simulated ranks and verify
// one reconstructed entry.
func ExampleFactorize() {
	a := conflux.RandomMatrix(32, 7)
	res, err := conflux.Factorize(a, conflux.Options{Ranks: 4})
	if err != nil {
		panic(err)
	}
	// Row 0 of the factors corresponds to row res.Perm[0] of A, and
	// L(0,:)·U(:,0) = U(0,0) because L has a unit diagonal.
	diff := res.LU.At(0, 0) - a.At(res.Perm[0], 0)
	fmt.Printf("|LU(0,0) - A[perm[0],0]| < 1e-12: %v\n", diff*diff < 1e-24)
	// Output:
	// |LU(0,0) - A[perm[0],0]| < 1e-12: true
}

// Meter an algorithm's communication schedule without doing arithmetic.
func ExampleCommVolume() {
	cfx, _ := conflux.CommVolume(conflux.COnfLUX, 256, 16, 0)
	lib, _ := conflux.CommVolume(conflux.LibSci, 256, 16, 0)
	fmt.Printf("COnfLUX moves less than ScaLAPACK-style 2D: %v\n",
		conflux.AlgorithmBytes(cfx) < conflux.AlgorithmBytes(lib))
	// Output:
	// COnfLUX moves less than ScaLAPACK-style 2D: true
}

// The paper's §6 lower bound and COnfLUX's 3/2-optimality gap.
func ExampleLowerBoundLU() {
	n, p := 16384, 1024
	m := 0.0 // default: the paper's maximum-replication memory
	bound := conflux.LowerBoundLU(n, p, m)
	leading := conflux.ModelPerRankElements(conflux.COnfLUX, n, p, m)
	fmt.Printf("COnfLUX model within 3x of the lower bound: %v\n", leading < 3*bound)
	// Output:
	// COnfLUX model within 3x of the lower bound: true
}
