package conflux

import (
	"context"
	"fmt"
	"maps"
	"sync"
	"time"

	"repro/internal/blas"
	"repro/internal/engine"
	"repro/internal/mat"
	"repro/internal/smpi"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/trisolve"

	// Register every in-tree engine: the registry is the only dispatch
	// path from the public API to the engine layer.
	_ "repro/internal/engine/all"
)

// Session is the v2 entry point: a handle on one simulated machine
// configuration — the P-rank world size, the α-β Machine, the selected
// engine, and the solve-phase geometry — that runs any number of jobs
// (factorizations, solves, volume replays) and accumulates their trace
// totals. Construct it with New and functional options:
//
//	s, err := conflux.New(
//		conflux.WithRanks(8),
//		conflux.WithAlgorithm(conflux.CANDMC),
//	)
//	res, err := s.Factorize(ctx, a)
//
// Every method takes a context.Context; cancellation (or a deadline)
// aborts the in-flight simulation promptly and surfaces as ErrCanceled.
//
// Concurrency: a Session is safe for concurrent use. Each job runs on its
// own simulated world; the accumulated Stats are mutex-guarded. The one
// shared mutable object is a Result — see its concurrency contract.
type Session struct {
	cfg sessionConfig
	eng engine.Engine // resolved once by New; Lookup cannot fail afterwards

	mu    sync.Mutex
	stats SessionStats
}

// SessionStats is the accumulated trace view of every simulation a Session
// has completed: volume replays, factorizations, and distributed solves.
type SessionStats struct {
	// Runs counts simulations that ran to completion. Runs that fail
	// inside the simulation or are canceled are not counted; a run whose
	// post-simulation validation fails (e.g. an engine returning no pivot
	// permutation) is, since its traffic was fully simulated.
	Runs int
	// Bytes is the total metered traffic across runs, housekeeping
	// (layout/collect) included.
	Bytes int64
	// SimTime is the sum of the simulated α-β makespans, in seconds.
	SimTime float64
	// Executor is the resolved executor ("goroutines" or "events") of the
	// most recent completed run. Under the default "auto" selection it
	// varies by job kind — numeric jobs (Factorize, Solve) run on
	// goroutines, volume replays on the event loop — so it reports what
	// actually ran, not the configured choice. Under concurrent
	// mixed-executor use "most recent" means completion order (the field
	// is last-writer-wins, though always a value some run actually
	// resolved to); RunsByExecutor is the order-independent view.
	Executor string
	// RunsByExecutor counts completed runs per resolved executor. Unlike
	// Executor it is stable under concurrent mixed-executor runs: the
	// per-executor counts always sum to Runs, whatever order the runs
	// completed in.
	RunsByExecutor map[string]int
}

// sessionConfig is the resolved, immutable configuration of a Session.
type sessionConfig struct {
	ranks         int
	memory        float64 // 0: paper's max-replication default, per n
	algorithm     Algorithm
	machine       Machine
	machineSet    bool
	solveRanks    int // 0: ranks
	rhs           int
	refineSweeps  int
	nb            int
	timeout       time.Duration
	executor      smpi.Executor // "" = auto
	workers       int           // 0 = 1: serial event schedule
	kernelWorkers int           // 0 = 1: serial level-3 kernels
	topology      topo.Spec     // zero = plain machine path
	faults        topo.FaultPlan
}

func defaultSessionConfig() sessionConfig {
	return sessionConfig{
		ranks:     4,
		algorithm: COnfLUX,
		rhs:       1,
		timeout:   10 * time.Minute,
	}
}

// Option configures a Session under construction (functional options).
type Option func(*sessionConfig) error

// WithRanks sets the number of simulated processors P (default 4).
func WithRanks(p int) Option {
	return func(c *sessionConfig) error {
		if p <= 0 {
			return fmt.Errorf("conflux: WithRanks requires p > 0, got %d", p)
		}
		c.ranks = p
		return nil
	}
}

// WithMemory sets the per-rank fast memory M in elements. WithMemory(0)
// selects the paper's maximum-replication default M = N²/P^(2/3), resolved
// per job from its matrix dimension; a negative m is rejected like every
// other out-of-range option value (it used to be silently coerced to the
// default, hiding sign bugs in callers).
func WithMemory(m float64) Option {
	return func(c *sessionConfig) error {
		if m < 0 {
			return fmt.Errorf("conflux: WithMemory requires m >= 0 (0 selects the paper default), got %v", m)
		}
		c.memory = m
		return nil
	}
}

// WithAlgorithm selects the engine (default COnfLUX). The name must be
// registered in the engine registry; New fails with ErrUnknownAlgorithm
// otherwise.
func WithAlgorithm(a Algorithm) Option {
	return func(c *sessionConfig) error {
		c.algorithm = a
		return nil
	}
}

// WithMachine sets the α-β machine parameters exactly as given — including
// the all-free zero Machine, which WithFreeMachine names explicitly. The
// default (option absent) is DefaultMachine().
func WithMachine(m Machine) Option {
	return func(c *sessionConfig) error {
		c.machine = m
		c.machineSet = true
		return nil
	}
}

// WithFreeMachine selects the all-free machine (α = 0, β = 0): traffic is
// metered but simulated time stays zero. This is the configuration the
// zero-value wart of the v1 Options.Machine field could not express.
func WithFreeMachine() Option { return WithMachine(Machine{}) }

// WithSolveRanks sets the number of simulated ranks the distributed
// triangular solve runs on (default: the factorization rank count). The
// solve uses its own 2D grid, independent of the factorization grid.
func WithSolveRanks(p int) Option {
	return func(c *sessionConfig) error {
		if p <= 0 {
			return fmt.Errorf("conflux: WithSolveRanks requires p > 0, got %d", p)
		}
		c.solveRanks = p
		return nil
	}
}

// WithRHS sets the right-hand-side count volume-mode solve replays
// generate (default 1). Numeric solves infer the width from B.
func WithRHS(nrhs int) Option {
	return func(c *sessionConfig) error {
		if nrhs <= 0 {
			return fmt.Errorf("conflux: WithRHS requires nrhs > 0, got %d", nrhs)
		}
		c.rhs = nrhs
		return nil
	}
}

// WithRefineSweeps bounds the iterative-refinement loop of Solve and
// SolveMany: after the direct solve, up to k rounds of residual
// recomputation and distributed re-solve (default 0: none).
func WithRefineSweeps(k int) Option {
	return func(c *sessionConfig) error {
		if k < 0 {
			return fmt.Errorf("conflux: WithRefineSweeps requires k >= 0, got %d", k)
		}
		c.refineSweeps = k
		return nil
	}
}

// WithBlockSize sets the block size for engines with a user-specified
// blocking parameter (LibSci; Table 2 lists it as a user choice). 0 selects
// the engine default.
func WithBlockSize(nb int) Option {
	return func(c *sessionConfig) error {
		if nb < 0 {
			return fmt.Errorf("conflux: WithBlockSize requires nb >= 0, got %d", nb)
		}
		c.nb = nb
		return nil
	}
}

// WithExecutor selects how simulations schedule their ranks: "goroutines"
// (one live goroutine per rank), "events" (the discrete-event loop — ranks
// are coroutines driven by a clock-ordered scheduler, which is what makes
// beyond-paper scales like P = 4096 tractable), or "auto" (the default:
// events for volume replays, goroutines for numeric runs). Both executors
// produce byte-identical volume and bit-identical simulated time; see
// DESIGN.md §11. An unknown name fails New with ErrUnknownExecutor. The
// resolved choice of each run is reported in Stats().Executor,
// Result.Executor, and VolumeReport.Executor.
func WithExecutor(name string) Option {
	return func(c *sessionConfig) error {
		e := smpi.Executor(name)
		if !e.Valid() {
			return fmt.Errorf("%w: %q (want %q, %q, or %q)",
				ErrUnknownExecutor, name, smpi.ExecAuto, smpi.ExecGoroutines, smpi.ExecEvents)
		}
		c.executor = e
		return nil
	}
}

// WithWorkers sets the event executor's concurrent-window width: up to n
// of the ready ranks with the earliest logical clocks execute
// simultaneously between scheduler barriers (DESIGN.md §12). The default
// (n = 1) is the serial baton schedule; n = runtime.NumCPU() spreads a
// single world across the host's cores. Reports are bit-identical at
// every width — the knob trades scheduler overhead against parallelism
// and changes nothing observable. Widths above the world size are
// clamped; the goroutine executor ignores the setting.
func WithWorkers(n int) Option {
	return func(c *sessionConfig) error {
		if n < 1 {
			return fmt.Errorf("conflux: WithWorkers requires n >= 1, got %d", n)
		}
		c.workers = n
		return nil
	}
}

// WithKernelWorkers sets the number of goroutines the local level-3
// kernels (blocked GEMM/TRSM, internal/blas) may use for their outer loop
// over C row-blocks during numeric runs (default 1: serial). Like
// WithWorkers, the knob is pinned to change nothing observable: every C
// element is owned by exactly one goroutine and accumulated in a fixed
// k-order, so numeric factors are bit-identical at every width (DESIGN.md
// §15) and the option is excluded from result cache keys. The setting is
// process-wide while the session's runs execute — kernels have no
// per-call context — so concurrent sessions with different widths race
// harmlessly: either width computes the same bits.
func WithKernelWorkers(n int) Option {
	return func(c *sessionConfig) error {
		if n < 1 {
			return fmt.Errorf("conflux: WithKernelWorkers requires n >= 1, got %d", n)
		}
		c.kernelWorkers = n
		return nil
	}
}

// WithTimeout sets the safety-net bound on every simulation the session
// runs, applied on top of whatever deadline the per-call context carries —
// it exists so a schedule bug surfaces as ErrCanceled instead of a
// deadlock. Default 10 minutes; 0 disables it (rely on the context alone).
func WithTimeout(d time.Duration) Option {
	return func(c *sessionConfig) error {
		if d < 0 {
			return fmt.Errorf("conflux: WithTimeout requires d >= 0, got %v", d)
		}
		c.timeout = d
		return nil
	}
}

// New constructs a Session from functional options, validating each option
// and that the selected algorithm has a registered engine (otherwise the
// error wraps ErrUnknownAlgorithm).
func New(opts ...Option) (*Session, error) {
	cfg := defaultSessionConfig()
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if !cfg.machineSet {
		cfg.machine = DefaultMachine()
	}
	if cfg.solveRanks <= 0 {
		cfg.solveRanks = cfg.ranks
	}
	eng, err := engine.Lookup(cfg.algorithm)
	if err != nil {
		return nil, publicErr(err)
	}
	return &Session{cfg: cfg, eng: eng}, nil
}

// Engines returns the registered algorithm names in sorted order — the set
// WithAlgorithm accepts.
func Engines() []Algorithm { return engine.Names() }

// Algorithm returns the engine the session dispatches to.
func (s *Session) Algorithm() Algorithm { return s.cfg.algorithm }

// Ranks returns the simulated world size P of the session's machine.
func (s *Session) Ranks() int { return s.cfg.ranks }

// Machine returns the α-β machine parameters the session's clocks advance
// with.
func (s *Session) Machine() Machine { return s.cfg.machine }

// Stats returns the accumulated trace totals of every simulation this
// session has completed so far. The returned value is a snapshot: the
// RunsByExecutor map is copied, so it never aliases the session's live
// accounting.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.RunsByExecutor = maps.Clone(s.stats.RunsByExecutor)
	return st
}

// Config is the resolved, immutable configuration of a Session — the full
// canonical parameter tuple. Every simulation output (volume, simulated
// time, factors) is a pure function of the tuple's first nine fields; the
// last three (Timeout, Executor, Workers) are pinned by the parity suites
// to change nothing observable, which is what makes results cacheable by
// key: internal/plan derives its deterministic cache keys from exactly
// this struct, and its key-completeness test reflects over it, so adding a
// field here without classifying it as key-relevant or key-irrelevant is a
// build-gate failure, not a silent cache-aliasing bug.
type Config struct {
	// Ranks is the simulated world size P.
	Ranks int
	// Memory is the per-rank fast memory in elements; 0 means the paper's
	// maximum-replication default M = N²/P^(2/3), resolved per job from
	// its matrix dimension.
	Memory float64
	// Algorithm names the engine the session dispatches to.
	Algorithm Algorithm
	// Machine is the α-β machine the simulated clocks advance with,
	// already resolved (DefaultMachine when no option set it; the zero
	// value here really is the all-free machine).
	Machine Machine
	// SolveRanks is the distributed triangular solve's rank count,
	// resolved (it defaults to Ranks at construction).
	SolveRanks int
	// RHS is the right-hand-side count of volume-mode solve replays.
	RHS int
	// RefineSweeps bounds the iterative-refinement loop.
	RefineSweeps int
	// BlockSize is the user-specified blocking parameter; 0 means the
	// engine default (deterministic given Algorithm and the tuple above).
	BlockSize int
	// Topology is the network-topology specification (zero = the plain
	// Machine path). Every leaf is a scalar, and reports are bit-identical
	// across executors and widths under any topology, so the whole nested
	// struct is key-relevant and nothing else.
	Topology Topology
	// Faults is the canonical encoding of the fault/straggler plan
	// (FaultPlan.Canonical; "" = none). The encoding is deterministic with
	// exact-hex factors, so it keys the cache exactly like β does.
	Faults string
	// Timeout is the session safety timeout. It bounds wall-clock
	// execution only and cannot change a completed run's outputs.
	Timeout time.Duration
	// Executor is the configured scheduling strategy ("auto",
	// "goroutines", or "events"). Reports are pinned byte/bit-identical
	// across executors (DESIGN.md §11), so it must never enter a result
	// cache key.
	Executor string
	// Workers is the event executor's concurrent-window width (resolved;
	// minimum 1). Reports are bit-identical at every width (DESIGN.md
	// §12), so like Executor it is cache-key-irrelevant.
	Workers int
	// KernelWorkers is the local level-3 kernels' goroutine count
	// (resolved; minimum 1). Numeric factors are bit-identical at every
	// width (DESIGN.md §15), so like Workers it is cache-key-irrelevant.
	KernelWorkers int
}

// Config returns the session's resolved configuration — the canonical
// parameter tuple its simulations are a pure function of.
func (s *Session) Config() Config {
	workers := s.cfg.workers
	if workers < 1 {
		workers = 1
	}
	kworkers := s.cfg.kernelWorkers
	if kworkers < 1 {
		kworkers = 1
	}
	exec := string(s.cfg.executor)
	if exec == "" {
		exec = string(smpi.ExecAuto)
	}
	return Config{
		Ranks:         s.cfg.ranks,
		Memory:        s.cfg.memory,
		Algorithm:     s.cfg.algorithm,
		Machine:       s.cfg.machine,
		SolveRanks:    s.cfg.solveRanks,
		RHS:           s.cfg.rhs,
		RefineSweeps:  s.cfg.refineSweeps,
		BlockSize:     s.cfg.nb,
		Topology:      s.cfg.topology,
		Faults:        s.cfg.faults.Canonical(),
		Timeout:       s.cfg.timeout,
		Executor:      exec,
		Workers:       workers,
		KernelWorkers: kworkers,
	}
}

// engineConfig is the per-run engine configuration derived from the
// session.
func (s *Session) engineConfig() engine.Config {
	return engine.Config{Ranks: s.cfg.ranks, Memory: s.cfg.memory, NB: s.cfg.nb}
}

// run executes one simulation on a fresh world of the given size under the
// session machine, layering the session safety timeout onto ctx, and folds
// the completed run into the session stats.
func (s *Session) run(ctx context.Context, world int, payload bool, fn smpi.RankFunc) (*VolumeReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if s.cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, s.cfg.timeout,
			fmt.Errorf("conflux: simulation exceeded the session safety timeout %v", s.cfg.timeout))
		defer cancel()
	}
	// The kernel worker count is process-wide (see WithKernelWorkers):
	// re-asserted at the start of every configured run so the session's
	// numeric kernels execute at the configured width.
	if s.cfg.kernelWorkers > 0 {
		blas.SetKernelWorkers(s.cfg.kernelWorkers)
	}
	// The topology is built per run: fault plans and fat-tree heights are
	// sized to the world actually simulated (which can exceed Ranks when
	// SolveRanks is larger).
	var tp trace.Topology
	if !s.cfg.topology.IsZero() || !s.cfg.faults.Empty() {
		var terr error
		tp, terr = topo.BuildFaulted(s.cfg.topology, s.cfg.machine, world, s.cfg.faults)
		if terr != nil {
			return nil, publicErr(terr)
		}
	}
	rep, err := smpi.Exec(ctx, smpi.Config{
		P:          world,
		Payload:    payload,
		Machine:    s.cfg.machine,
		MachineSet: true,
		Topology:   tp,
		Executor:   s.cfg.executor,
		Workers:    s.cfg.workers,
	}, fn)
	if err != nil {
		return nil, publicErr(err)
	}
	s.mu.Lock()
	s.stats.Runs++
	s.stats.Bytes += rep.TotalBytes()
	s.stats.SimTime += rep.Time.Makespan
	s.stats.Executor = rep.Executor
	if s.stats.RunsByExecutor == nil {
		s.stats.RunsByExecutor = make(map[string]int, 2)
	}
	s.stats.RunsByExecutor[rep.Executor]++
	s.mu.Unlock()
	return rep, nil
}

// Factorize runs a distributed LU factorization of a (n×n) on the session
// machine and returns the gathered factors. The input is not modified.
// Cancellation of ctx aborts the simulation and returns ErrCanceled.
func (s *Session) Factorize(ctx context.Context, a *Matrix) (*Result, error) {
	if a == nil || a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: Factorize requires a square matrix", ErrShape)
	}
	n := a.Rows
	cfg := s.engineConfig()
	var out *Result
	rep, err := s.run(ctx, s.cfg.ranks, true, func(c *smpi.Comm) error {
		var in *Matrix
		if c.Rank() == 0 {
			in = a
		}
		lu, perm, err := s.eng.Run(c, in, n, cfg)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			out = &Result{LU: lu, Perm: perm}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if out == nil {
		return nil, fmt.Errorf("conflux: no result gathered at rank 0")
	}
	if len(out.Perm) != n {
		return nil, fmt.Errorf("conflux: engine %q returned no pivot permutation; use FactorizeSPD for Cholesky", s.cfg.algorithm)
	}
	out.Volume = rep
	out.Time = rep.Time.Makespan
	out.CommTime = rep.Time.CritBusy()
	out.Executor = rep.Executor
	out.sess = s
	return out, nil
}

// Solve factorizes a with the session engine and solves a·x = b, returning
// x. The triangular solve runs distributed on the session's solve ranks,
// with the configured rounds of iterative refinement.
func (s *Session) Solve(ctx context.Context, a *Matrix, b []float64) ([]float64, error) {
	if a == nil || a.Rows != a.Cols || len(b) != a.Rows {
		return nil, fmt.Errorf("%w: Solve requires square A and len(b) == n", ErrShape)
	}
	bm := mat.FromSlice(len(b), 1, append([]float64(nil), b...))
	x, _, err := s.SolveMany(ctx, a, bm)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(b))
	for i := range out {
		out[i] = x.At(i, 0)
	}
	return out, nil
}

// SolveMany factorizes a and solves a·X = B for every column of B at once
// on the distributed machine, returning X and the factorization Result
// (whose SolveVolume/SolveBytes/SolveTime fields report the metered solve
// phase). With WithRefineSweeps(k), each of up to k sweeps recomputes the
// residual R = B − A·X and re-solves distributed for the correction,
// stopping early once the residual is at rounding level.
func (s *Session) SolveMany(ctx context.Context, a, b *Matrix) (*Matrix, *Result, error) {
	if a == nil || a.Rows != a.Cols || b == nil || b.Rows != a.Rows {
		return nil, nil, fmt.Errorf("%w: SolveMany requires square A and B with B.Rows == n", ErrShape)
	}
	res, err := s.Factorize(ctx, a)
	if err != nil {
		return nil, nil, err
	}
	x, err := res.SolveManyFactoredContext(ctx, b)
	if err != nil {
		return nil, nil, err
	}
	normB := mat.NormInf(b)
	for sweep := 0; sweep < s.cfg.refineSweeps; sweep++ {
		resid := b.Clone()
		blas.Gemm(-1, a, x, 1, resid)
		if mat.NormInf(resid) <= 1e-14*normB {
			break
		}
		d, err := res.SolveManyFactoredContext(ctx, resid)
		if err != nil {
			return nil, nil, err
		}
		x.AddFrom(d)
	}
	return x, res, nil
}

// CommVolume replays the session algorithm's communication schedule at
// dimension n in volume mode (no arithmetic, identical byte counts) and
// returns the report, including the simulated α-β time under the session
// machine (rep.Time).
func (s *Session) CommVolume(ctx context.Context, n int) (*VolumeReport, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: CommVolume requires n > 0", ErrShape)
	}
	cfg := s.engineConfig()
	return s.run(ctx, s.cfg.ranks, false, func(c *smpi.Comm) error {
		_, _, err := s.eng.Run(c, nil, n, cfg)
		return err
	})
}

// CommVolumeSolve replays a full factorize-plus-solve schedule at dimension
// n in volume mode on one simulated world: the session algorithm's
// factorization on the factorization ranks, then the distributed triangular
// solve with the configured right-hand-side count on the solve ranks — the
// same rank counts the numeric solve path uses. The returned report carries
// the factorization phases alongside "solve.fwd"/"solve.back", so the
// end-to-end communication volume and simulated α-β time of a solver
// workload can be read off one run.
func (s *Session) CommVolumeSolve(ctx context.Context, n int) (*VolumeReport, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: CommVolumeSolve requires n > 0", ErrShape)
	}
	cfg := s.engineConfig()
	sopt := trisolve.DefaultOptions(n, s.cfg.solveRanks, s.cfg.rhs)
	world := s.cfg.ranks
	if s.cfg.solveRanks > world {
		world = s.cfg.solveRanks
	}
	// Each phase runs on its own prefix sub-communicator, so the grids see
	// exactly the rank counts the numeric path gives them (grid ranks ==
	// world ranks, which the engines' sub-grid construction relies on).
	prefix := func(p int) []int {
		out := make([]int, p)
		for i := range out {
			out[i] = i
		}
		return out
	}
	factorComm, solveComm := prefix(s.cfg.ranks), prefix(s.cfg.solveRanks)
	return s.run(ctx, world, false, func(c *smpi.Comm) error {
		if c.Rank() < s.cfg.ranks {
			if _, _, err := s.eng.Run(c.Sub("factor", factorComm), nil, n, cfg); err != nil {
				return err
			}
		}
		if c.Rank() < s.cfg.solveRanks {
			if _, err := trisolve.Run(c.Sub("solve", solveComm), nil, nil, sopt); err != nil {
				return err
			}
		}
		return nil
	})
}

// FactorizeSPD runs the 2.5D Cholesky factorization (the paper conclusions'
// extension kernel) of a symmetric positive definite matrix on the session
// machine, returning the lower factor L with a = L·Lᵀ and the volume
// report. It dispatches to the Cholesky engine regardless of the session's
// configured LU algorithm.
func (s *Session) FactorizeSPD(ctx context.Context, a *Matrix) (*Matrix, *VolumeReport, error) {
	if a == nil || a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("%w: FactorizeSPD requires a square matrix", ErrShape)
	}
	n := a.Rows
	eng, err := engine.Lookup(Cholesky)
	if err != nil {
		return nil, nil, publicErr(err)
	}
	cfg := s.engineConfig()
	var l *Matrix
	rep, err := s.run(ctx, s.cfg.ranks, true, func(c *smpi.Comm) error {
		var in *Matrix
		if c.Rank() == 0 {
			in = a
		}
		lower, _, err := eng.Run(c, in, n, cfg)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			l = lower
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	if l == nil {
		return nil, nil, fmt.Errorf("conflux: no factor gathered at rank 0")
	}
	return l, rep, nil
}
