// Weakscaling: a miniature Fig. 6b — hold the work per node constant
// (N = base·∛P) and watch the 2.5D algorithms hold their per-node
// communication flat while the 2D algorithms grow as P^{1/6}.
//
//	go run ./examples/weakscaling
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	conflux "repro"
)

func main() {
	ctx := context.Background()
	const base = 64
	ps := []int{1, 8, 27, 64}
	algos := []conflux.Algorithm{conflux.LibSci, conflux.COnfLUX}

	fmt.Printf("weak scaling, N = %d*cbrt(P): per-node volume [KB] (mini Fig. 6b)\n", base)
	fmt.Printf("%6s %6s", "P", "N")
	for _, a := range algos {
		fmt.Printf(" %10s", a)
	}
	fmt.Println()
	first := map[conflux.Algorithm]float64{}
	last := map[conflux.Algorithm]float64{}
	for _, p := range ps {
		n := int(float64(base) * math.Cbrt(float64(p)))
		if r := n % 16; r != 0 {
			n += 16 - r
		}
		fmt.Printf("%6d %6d", p, n)
		for _, a := range algos {
			sess, err := conflux.New(conflux.WithRanks(p), conflux.WithAlgorithm(a))
			if err != nil {
				log.Fatal(err)
			}
			rep, err := sess.CommVolume(ctx, n)
			if err != nil {
				log.Fatal(err)
			}
			perNode := float64(conflux.AlgorithmBytes(rep)) / float64(p) / 1e3
			fmt.Printf(" %10.1f", perNode)
			if p == ps[1] {
				first[a] = perNode
			}
			if p == ps[len(ps)-1] {
				last[a] = perNode
			}
		}
		fmt.Println()
	}
	fmt.Printf("\ngrowth P=%d -> P=%d:  %s %.2fx,  %s %.2fx\n",
		ps[1], ps[len(ps)-1],
		conflux.LibSci, last[conflux.LibSci]/first[conflux.LibSci],
		conflux.COnfLUX, last[conflux.COnfLUX]/first[conflux.COnfLUX])
	fmt.Println("(paper Fig. 6b: 2.5D algorithms retain constant volume per processor)")
}
