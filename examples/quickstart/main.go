// Quickstart: factorize a matrix with COnfLUX on a simulated distributed
// machine, verify A[perm,:] = L·U, and inspect the communication volume.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	conflux "repro"
)

func main() {
	const n, p = 128, 8 // 128×128 matrix on 8 simulated ranks (2×2×2 grid)

	a := conflux.RandomMatrix(n, 1234)
	sess, err := conflux.New(conflux.WithRanks(p))
	if err != nil {
		log.Fatal(err)
	}
	res, err := sess.Factorize(context.Background(), a)
	if err != nil {
		log.Fatal(err)
	}

	// Verify the factorization: row i of LU corresponds to row Perm[i] of A;
	// reconstruct (L·U)[i,:] and compare.
	maxErr := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k <= min(i, j); k++ {
				l := res.LU.At(i, k)
				if k == i {
					l = 1 // unit diagonal of L
				}
				if k <= j {
					s += l * res.LU.At(k, j)
				}
			}
			if d := abs(s - a.At(res.Perm[i], j)); d > maxErr {
				maxErr = d
			}
		}
	}
	fmt.Printf("COnfLUX factorized a %dx%d matrix on %d ranks\n", n, n, p)
	fmt.Printf("max |A[perm,:] - L*U| = %.3e\n", maxErr)
	fmt.Printf("communication: %.3f MB total (%.1f KB per rank)\n",
		float64(conflux.AlgorithmBytes(res.Volume))/1e6,
		float64(conflux.AlgorithmBytes(res.Volume))/float64(p)/1e3)
	fmt.Printf("lower bound (paper §6): %.1f KB per rank\n",
		conflux.LowerBoundLU(n, p, 0.25*float64(n*n))*8/1e3)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
