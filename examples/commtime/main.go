// Command commtime compares COnfLUX and LibSci under the α-β simulated-time
// model: same volume-mode replay as examples/commvolume, but reporting the
// simulated makespan, the busy/wait split of the critical rank, and the
// phases the critical path spends its time in. It is the §7.3 latency
// argument made runnable: partial pivoting needs O(N) messages on the
// critical path, tournament pivoting O(N/v).
package main

import (
	"context"
	"fmt"
	"log"

	conflux "repro"
)

func main() {
	ctx := context.Background()
	const n, p = 1024, 64

	fmt.Printf("Simulated α-β time, N=%d P=%d (default machine: α=1µs, β=0.1ns/byte)\n\n", n, p)
	for _, algo := range []conflux.Algorithm{conflux.COnfLUX, conflux.LibSci} {
		sess, err := conflux.New(conflux.WithRanks(p), conflux.WithAlgorithm(algo))
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sess.CommVolume(ctx, n)
		if err != nil {
			log.Fatal(err)
		}
		tr := rep.Time
		fmt.Printf("%-8s  %8.3f MB   makespan %8.4f ms   comm %8.4f ms   wait %8.4f ms\n",
			algo, float64(conflux.AlgorithmBytes(rep))/1e6,
			tr.Makespan*1e3, tr.CritBusy()*1e3, tr.CritWait()*1e3)
		for i, ph := range tr.CritPhaseOrder() {
			if i == 2 {
				break // top two phases tell the story
			}
			fmt.Printf("          critical path: %-20s %8.4f ms\n", ph, tr.CritPhases[ph]*1e3)
		}
	}

	// The same schedules on a latency-free machine: with α = 0 the
	// message-count gap vanishes and only bytes-on-the-critical-path and
	// dependency waits remain — separating the latency argument above
	// from the bandwidth one. cmd/confluxbench exposes the same knobs as
	// -alpha/-beta.
	fmt.Printf("\nBandwidth-only machine (α=0):\n")
	for _, algo := range []conflux.Algorithm{conflux.COnfLUX, conflux.LibSci} {
		sess, err := conflux.New(
			conflux.WithRanks(p),
			conflux.WithAlgorithm(algo),
			conflux.WithMachine(conflux.Machine{Alpha: 0, Beta: 1e-10}),
		)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sess.CommVolume(ctx, n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s  makespan %8.4f ms\n", algo, rep.Time.Makespan*1e3)
	}
}
