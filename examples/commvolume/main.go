// Commvolume: a miniature Fig. 6a — measure the communication volume of all
// four LU implementations across rank counts (volume mode: the exact
// schedule without the arithmetic) and print measured vs modeled per-node
// traffic.
//
//	go run ./examples/commvolume
package main

import (
	"context"
	"fmt"
	"log"

	conflux "repro"
)

func main() {
	ctx := context.Background()
	const n = 256
	algos := []conflux.Algorithm{conflux.LibSci, conflux.SLATE, conflux.CANDMC, conflux.COnfLUX}

	fmt.Printf("communication volume per node [KB], N=%d (mini Fig. 6a)\n", n)
	fmt.Printf("%6s", "P")
	for _, a := range algos {
		fmt.Printf(" %10s", a)
	}
	fmt.Println(" | winner")
	for _, p := range []int{4, 8, 16, 32} {
		fmt.Printf("%6d", p)
		best, bestV := conflux.Algorithm(""), 1e18
		for _, a := range algos {
			sess, err := conflux.New(conflux.WithRanks(p), conflux.WithAlgorithm(a))
			if err != nil {
				log.Fatal(err)
			}
			rep, err := sess.CommVolume(ctx, n)
			if err != nil {
				log.Fatal(err)
			}
			perNode := float64(conflux.AlgorithmBytes(rep)) / float64(p) / 1e3
			fmt.Printf(" %10.1f", perNode)
			if perNode < bestV {
				best, bestV = a, perNode
			}
		}
		fmt.Printf(" | %s\n", best)
	}
	fmt.Println("\nmodel lines (elements per rank, Table 2):")
	for _, p := range []int{4, 8, 16, 32} {
		fmt.Printf("  P=%-4d", p)
		for _, a := range algos {
			fmt.Printf(" %s=%.0f", a, conflux.ModelPerRankElements(a, n, p, 0.25*float64(n*n)))
		}
		fmt.Println()
	}
}
