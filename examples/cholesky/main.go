// Cholesky: the paper's conclusions nominate Cholesky factorization as the
// next kernel for the X-Partitioning treatment. This example runs the
// repository's 2.5D Cholesky extension on a simulated machine, verifies
// A = L·Lᵀ, and compares the metered communication against the lower bound
// derived by the same machinery that produced the paper's LU bound.
//
//	go run ./examples/cholesky
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	conflux "repro"
)

func main() {
	const n, p = 128, 16

	// Build a symmetric positive definite matrix: a Gram matrix of random
	// vectors plus a diagonal shift (a covariance-like system).
	g := conflux.RandomMatrix(n, 99)
	a := conflux.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += g.At(k, i) * g.At(k, j)
			}
			a.Set(i, j, s)
			a.Set(j, i, s)
		}
		a.Add(i, i, float64(n))
	}

	sess, err := conflux.New(conflux.WithRanks(p), conflux.WithAlgorithm(conflux.Cholesky))
	if err != nil {
		log.Fatal(err)
	}
	l, rep, err := sess.FactorizeSPD(context.Background(), a)
	if err != nil {
		log.Fatal(err)
	}

	// Verify A = L·Lᵀ.
	var worst float64
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			var s float64
			for k := 0; k <= j; k++ {
				s += l.At(i, k) * l.At(j, k)
			}
			if d := math.Abs(s - a.At(i, j)); d > worst {
				worst = d
			}
		}
	}
	meas := float64(conflux.AlgorithmBytes(rep))
	bound := conflux.LowerBoundCholesky(n, p, 0) * 8 * float64(p)
	fmt.Printf("2.5D Cholesky of a %dx%d SPD matrix on %d ranks\n", n, n, p)
	fmt.Printf("max |A - L*L^T| = %.3e\n", worst)
	fmt.Printf("communication: %.1f KB measured vs %.1f KB lower bound (%.2fx)\n",
		meas/1e3, bound/1e3, meas/bound)
}
