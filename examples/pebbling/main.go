// Pebbling: build the concrete LU cDAG of Fig. 1/Fig. 4, play the red-blue
// pebble game with a greedy scheduler (an I/O upper bound), and compare with
// the X-Partitioning lower bound — bracketing the true I/O complexity.
//
//	go run ./examples/pebbling
package main

import (
	"fmt"
	"log"

	"repro/internal/daap"
	"repro/internal/pebble"
	"repro/internal/xpart"
)

func main() {
	const n = 8
	g := daap.BuildLUCDAG(n)
	s1, s2 := daap.CountLUVertices(n)
	fmt.Printf("LU cDAG for N=%d: %d vertices (%d inputs, S1=%d, S2=%d)\n",
		n, g.NumVertices(), n*n, s1, s2)

	fmt.Printf("%4s %14s %14s %8s\n", "M", "greedy (upper)", "xpart (lower)", "ratio")
	for _, m := range []int{6, 8, 12, 16, 24, 32, 64} {
		sched, io, err := pebble.Greedy(g, m)
		if err != nil {
			log.Fatalf("M=%d: %v", m, err)
		}
		if _, err := pebble.Replay(g, m, sched); err != nil {
			log.Fatalf("invalid schedule at M=%d: %v", m, err)
		}
		lower := xpart.LUSequentialLowerBound(n, float64(m))
		fmt.Printf("%4d %14d %14.1f %8.2f\n", m, io, lower, float64(io)/lower)
	}

	// Dominator-set machinery on a small subcomputation: the first trailing
	// update sweep.
	var vh []int
	for v := range g.Preds {
		if !g.Input[v] && len(vh) < 9 {
			vh = append(vh, v)
		}
	}
	fmt.Printf("\nsubcomputation |Vh|=%d: |Dom_min|=%d |Min|=%d\n",
		len(vh), pebble.MinDominatorSize(g, vh), len(pebble.MinSet(g, vh)))
	fmt.Println("(an X-partition is valid iff both stay ≤ X for every subcomputation)")
}
