// Solver: the paper motivates LU with scientific workloads such as Density
// Functional Theory, which factorizes dense atom-interaction matrices
// (N ≥ 10,000 in production; scaled down here). This example assembles a
// screened-Coulomb interaction matrix for a pseudo-random cloud of atoms,
// solves K·q = v with COnfLUX, and checks the residual against a direct
// matrix-vector product.
//
//	go run ./examples/solver
package main

import (
	"fmt"
	"log"
	"math"

	conflux "repro"
)

func main() {
	const (
		atoms = 192 // matrix dimension (DFT runs use 10k+; same code path)
		ranks = 8
	)

	// Pseudo-random atom positions in a unit box (deterministic).
	pos := make([][3]float64, atoms)
	state := uint64(2024)
	next := func() float64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(state%1_000_003) / 1_000_003
	}
	for i := range pos {
		pos[i] = [3]float64{next(), next(), next()}
	}

	// Screened Coulomb kernel K[i,j] = exp(-κ r)/(r + a), diagonally
	// regularized — the dense symmetric-positive-ish systems DFT codes feed
	// to their linear solvers.
	k := conflux.NewMatrix(atoms, atoms)
	const kappa, soft = 2.0, 1e-2
	for i := 0; i < atoms; i++ {
		for j := 0; j < atoms; j++ {
			if i == j {
				k.Set(i, j, float64(atoms))
				continue
			}
			dx := pos[i][0] - pos[j][0]
			dy := pos[i][1] - pos[j][1]
			dz := pos[i][2] - pos[j][2]
			r := math.Sqrt(dx*dx + dy*dy + dz*dz)
			k.Set(i, j, math.Exp(-kappa*r)/(r+soft))
		}
	}

	// Right-hand side: external potential sampled at the atoms.
	v := make([]float64, atoms)
	for i := range v {
		v[i] = math.Sin(float64(i)) + 0.5
	}

	q, err := conflux.Solve(k, v, conflux.Options{Ranks: ranks})
	if err != nil {
		log.Fatal(err)
	}

	// Residual ‖K·q − v‖∞.
	var res float64
	for i := 0; i < atoms; i++ {
		s := -v[i]
		for j := 0; j < atoms; j++ {
			s += k.At(i, j) * q[j]
		}
		if a := math.Abs(s); a > res {
			res = a
		}
	}
	fmt.Printf("solved %d-atom interaction system on %d simulated ranks\n", atoms, ranks)
	fmt.Printf("residual |K q - v|_inf = %.3e\n", res)
	fmt.Printf("induced charges: q[0]=%.6f q[%d]=%.6f\n", q[0], atoms-1, q[atoms-1])
	if res > 1e-8 {
		log.Fatal("residual too large")
	}
}
