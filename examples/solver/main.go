// Solver: the paper motivates LU with scientific workloads such as Density
// Functional Theory, which factorizes dense atom-interaction matrices
// (N ≥ 10,000 in production; scaled down here). This example assembles a
// screened-Coulomb interaction matrix for a pseudo-random cloud of atoms and
// solves K·Q = V for a BATCH of external potentials in one distributed
// factorize-plus-solve run: the factorization runs on `ranks` simulated
// processors and the multi-RHS triangular solve on `solveRanks`, with one
// round of iterative refinement. Both phases are metered, so the printout
// shows where an end-to-end solver actually spends its communication.
//
//	go run ./examples/solver
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	conflux "repro"
)

func main() {
	const (
		atoms      = 192 // matrix dimension (DFT runs use 10k+; same code path)
		ranks      = 8   // factorization ranks
		solveRanks = 6   // solve-phase ranks (independent 2D grid)
		potentials = 4   // right-hand sides solved in one batch
	)

	// Pseudo-random atom positions in a unit box (deterministic).
	pos := make([][3]float64, atoms)
	state := uint64(2024)
	next := func() float64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(state%1_000_003) / 1_000_003
	}
	for i := range pos {
		pos[i] = [3]float64{next(), next(), next()}
	}

	// Screened Coulomb kernel K[i,j] = exp(-κ r)/(r + a), diagonally
	// regularized — the dense symmetric-positive-ish systems DFT codes feed
	// to their linear solvers.
	k := conflux.NewMatrix(atoms, atoms)
	const kappa, soft = 2.0, 1e-2
	for i := 0; i < atoms; i++ {
		for j := 0; j < atoms; j++ {
			if i == j {
				k.Set(i, j, float64(atoms))
				continue
			}
			dx := pos[i][0] - pos[j][0]
			dy := pos[i][1] - pos[j][1]
			dz := pos[i][2] - pos[j][2]
			r := math.Sqrt(dx*dx + dy*dy + dz*dz)
			k.Set(i, j, math.Exp(-kappa*r)/(r+soft))
		}
	}

	// Right-hand sides: a batch of external potentials sampled at the atoms
	// (phase-shifted, as a DFT self-consistency loop would produce).
	v := conflux.NewMatrix(atoms, potentials)
	for j := 0; j < potentials; j++ {
		for i := 0; i < atoms; i++ {
			v.Set(i, j, math.Sin(float64(i)+0.3*float64(j))+0.5)
		}
	}

	sess, err := conflux.New(
		conflux.WithRanks(ranks),
		conflux.WithSolveRanks(solveRanks),
		conflux.WithRefineSweeps(1),
	)
	if err != nil {
		log.Fatal(err)
	}
	q, res, err := sess.SolveMany(context.Background(), k, v)
	if err != nil {
		log.Fatal(err)
	}

	// Residual ‖K·Q − V‖∞ over the whole batch.
	var worst float64
	for i := 0; i < atoms; i++ {
		for j := 0; j < potentials; j++ {
			s := -v.At(i, j)
			for d := 0; d < atoms; d++ {
				s += k.At(i, d) * q.At(d, j)
			}
			if a := math.Abs(s); a > worst {
				worst = a
			}
		}
	}
	fmt.Printf("solved %d-atom interaction system, %d potentials, on %d+%d simulated ranks\n",
		atoms, potentials, ranks, solveRanks)
	fmt.Printf("residual max_j |K q_j - v_j|_inf = %.3e\n", worst)
	fmt.Printf("factorize: %.3f MB algorithm traffic, %.6f s simulated\n",
		float64(conflux.AlgorithmBytes(res.Volume))/1e6, res.Time)
	fmt.Printf("solve:     %.3f MB fwd+back traffic, %.6f s simulated (refinement included)\n",
		float64(res.SolveBytes)/1e6, res.SolveTime)
	fmt.Printf("induced charges: q[0]=%.6f q[%d]=%.6f\n", q.At(0, 0), atoms-1, q.At(atoms-1, 0))
	if worst > 1e-8 {
		log.Fatal("residual too large")
	}
}
