package conflux

import (
	"errors"
	"math"
	"testing"

	"repro/internal/blas"
	"repro/internal/mat"
)

// TestWithExecutorUnknownName: a bad executor name fails New with the typed
// sentinel, before any simulation runs.
func TestWithExecutorUnknownName(t *testing.T) {
	_, err := New(WithExecutor("fibers"))
	if !errors.Is(err, ErrUnknownExecutor) {
		t.Fatalf("got %v, want ErrUnknownExecutor", err)
	}
	for _, name := range []string{"auto", "goroutines", "events"} {
		if _, err := New(WithExecutor(name)); err != nil {
			t.Fatalf("WithExecutor(%q): %v", name, err)
		}
	}
}

// TestWithExecutorParityAndReporting pins the public executor contract:
// explicit "events" and "goroutines" sessions produce identical factors,
// volume, and simulated time, and every surface that reports the resolved
// executor — Session.Stats, Result, VolumeReport — is stamped with what
// actually ran.
func TestWithExecutorParityAndReporting(t *testing.T) {
	n, p := 96, 6
	a := mat.RandomDiagDominant(n, 7)
	type outcome struct {
		res *Result
		vol *VolumeReport
	}
	runs := map[string]outcome{}
	for _, name := range []string{"goroutines", "events"} {
		s, err := New(WithRanks(p), WithExecutor(name))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Factorize(t.Context(), a)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Executor != name || res.Volume.Executor != name {
			t.Fatalf("%s: result stamped %q / report %q", name, res.Executor, res.Volume.Executor)
		}
		if got := s.Stats().Executor; got != name {
			t.Fatalf("%s: Stats().Executor = %q", name, got)
		}
		vol, err := s.CommVolume(t.Context(), n)
		if err != nil {
			t.Fatalf("%s volume: %v", name, err)
		}
		runs[name] = outcome{res: res, vol: vol}
	}
	g, e := runs["goroutines"], runs["events"]
	if d := mat.MaxAbsDiff(g.res.LU, e.res.LU); d != 0 {
		t.Fatalf("factors differ between executors: max abs diff %v", d)
	}
	for i := range g.res.Perm {
		if g.res.Perm[i] != e.res.Perm[i] {
			t.Fatalf("pivot permutations differ at %d", i)
		}
	}
	if g.res.Volume.TotalBytes() != e.res.Volume.TotalBytes() || g.res.Time != e.res.Time {
		t.Fatalf("factorization diverged: %d/%v vs %d/%v",
			g.res.Volume.TotalBytes(), g.res.Time, e.res.Volume.TotalBytes(), e.res.Time)
	}
	if g.vol.TotalBytes() != e.vol.TotalBytes() || g.vol.Time.Makespan != e.vol.Time.Makespan {
		t.Fatalf("volume replay diverged: %d/%v vs %d/%v",
			g.vol.TotalBytes(), g.vol.Time.Makespan, e.vol.TotalBytes(), e.vol.Time.Makespan)
	}
}

// TestWithWorkers pins the public multi-core contract: WithWorkers
// validates its argument, a wide-window session's volume replay is
// bit-identical to the serial one, and the report carries the clamped
// width that actually ran.
func TestWithWorkers(t *testing.T) {
	if _, err := New(WithWorkers(0)); err == nil {
		t.Fatal("WithWorkers(0) accepted")
	}
	n, p := 96, 6
	serial, err := New(WithRanks(p), WithExecutor("events"))
	if err != nil {
		t.Fatal(err)
	}
	base, err := serial.CommVolume(t.Context(), n)
	if err != nil {
		t.Fatal(err)
	}
	if base.Workers != 1 {
		t.Fatalf("serial replay stamped Workers = %d, want 1", base.Workers)
	}
	for _, w := range []int{2, 4, 64} {
		s, err := New(WithRanks(p), WithExecutor("events"), WithWorkers(w))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.CommVolume(t.Context(), n)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if want := min(w, p); rep.Workers != want {
			t.Fatalf("workers=%d: report stamped %d, want %d", w, rep.Workers, want)
		}
		if rep.TotalBytes() != base.TotalBytes() || rep.Time.Makespan != base.Time.Makespan {
			t.Fatalf("workers=%d diverged: %d/%v vs %d/%v",
				w, rep.TotalBytes(), rep.Time.Makespan, base.TotalBytes(), base.Time.Makespan)
		}
	}
}

// TestWithKernelWorkers pins the public local-kernel parallelism contract
// (DESIGN.md §15): WithKernelWorkers validates its argument, Config
// resolves the width (default 1), and a numeric factorization is
// bit-identical whatever width the session configures — the kernel knob,
// like WithWorkers, must change nothing observable.
func TestWithKernelWorkers(t *testing.T) {
	defer blas.SetKernelWorkers(1)
	if _, err := New(WithKernelWorkers(0)); err == nil {
		t.Fatal("WithKernelWorkers(0) accepted")
	}
	if _, err := New(WithKernelWorkers(-2)); err == nil {
		t.Fatal("WithKernelWorkers(-2) accepted")
	}
	def, err := New(WithRanks(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := def.Config().KernelWorkers; got != 1 {
		t.Fatalf("default Config().KernelWorkers = %d, want 1", got)
	}
	n, p := 512, 4 // big enough that the panel GEMMs take the blocked path
	a := mat.Random(n, n, 99)
	base, err := def.Factorize(t.Context(), a)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4} {
		s, err := New(WithRanks(p), WithKernelWorkers(w))
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Config().KernelWorkers; got != w {
			t.Fatalf("Config().KernelWorkers = %d, want %d", got, w)
		}
		res, err := s.Factorize(t.Context(), a)
		if err != nil {
			t.Fatalf("kernel workers %d: %v", w, err)
		}
		for i := range base.Perm {
			if base.Perm[i] != res.Perm[i] {
				t.Fatalf("kernel workers %d: pivot %d diverged", w, i)
			}
		}
		for i := 0; i < n; i++ {
			r1, r2 := base.LU.Row(i), res.LU.Row(i)
			for j := range r1 {
				if math.Float64bits(r1[j]) != math.Float64bits(r2[j]) {
					t.Fatalf("kernel workers %d: LU(%d,%d) diverged", w, i, j)
				}
			}
		}
	}
}

// TestAutoExecutorResolution pins the default policy: volume replays run on
// the event loop, numeric factorizations on goroutines.
func TestAutoExecutorResolution(t *testing.T) {
	s, err := New(WithRanks(4))
	if err != nil {
		t.Fatal(err)
	}
	vol, err := s.CommVolume(t.Context(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if vol.Executor != "events" {
		t.Fatalf("volume replay ran on %q, want events", vol.Executor)
	}
	if got := s.Stats().Executor; got != "events" {
		t.Fatalf("Stats().Executor = %q after volume replay", got)
	}
	res, err := s.Factorize(t.Context(), mat.RandomDiagDominant(48, 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Executor != "goroutines" {
		t.Fatalf("numeric factorization ran on %q, want goroutines", res.Executor)
	}
	if got := s.Stats().Executor; got != "goroutines" {
		t.Fatalf("Stats().Executor = %q after numeric run", got)
	}
}
