package conflux

import (
	"errors"
	"fmt"

	"repro/internal/engine"
	"repro/internal/lapack"
	"repro/internal/lu2d"
	"repro/internal/smpi"
	"repro/internal/trisolve"
)

// Typed sentinel errors. Every error returned by the public API wraps
// exactly one of these (or is a plain internal failure), so callers branch
// with errors.Is instead of matching message text:
//
//	if errors.Is(err, conflux.ErrSingular) { ... }
//
// ErrCanceled additionally wraps the context's cause, so
// errors.Is(err, context.Canceled) and context.DeadlineExceeded also hold
// for canceled and timed-out runs respectively.
var (
	// ErrShape marks inputs with inconsistent dimensions: non-square A,
	// a right-hand side whose length does not match, a non-positive n.
	ErrShape = errors.New("conflux: shape mismatch")
	// ErrSingular marks a factor with a zero U pivot: the solve of a
	// singular system surfaces as this error, never as Inf/NaN in X.
	ErrSingular = errors.New("conflux: singular factor")
	// ErrUnknownAlgorithm marks an Algorithm with no registered engine.
	ErrUnknownAlgorithm = errors.New("conflux: unknown algorithm")
	// ErrUnknownExecutor marks a WithExecutor name that is neither a
	// concrete executor ("goroutines", "events") nor "auto".
	ErrUnknownExecutor = errors.New("conflux: unknown executor")
	// ErrCanceled marks a simulation interrupted by its context
	// (cancellation or deadline, including the session safety timeout).
	ErrCanceled = errors.New("conflux: simulation canceled")
)

// publicErr maps internal sentinels onto the public typed errors at the API
// boundary. Errors already carrying a public sentinel pass through; errors
// with no mapping (engine invariant violations, injected faults) are
// returned verbatim.
func publicErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrShape), errors.Is(err, ErrSingular),
		errors.Is(err, ErrUnknownAlgorithm), errors.Is(err, ErrUnknownExecutor),
		errors.Is(err, ErrCanceled):
		return err
	case errors.Is(err, smpi.ErrCanceled):
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	case errors.Is(err, smpi.ErrUnknownExecutor):
		return fmt.Errorf("%w: %w", ErrUnknownExecutor, err)
	case errors.Is(err, engine.ErrUnknown):
		return fmt.Errorf("%w: %w", ErrUnknownAlgorithm, err)
	case errors.Is(err, trisolve.ErrSingular), errors.Is(err, lu2d.ErrSingular),
		errors.Is(err, lapack.ErrSingular):
		return fmt.Errorf("%w: %w", ErrSingular, err)
	default:
		return err
	}
}
