package conflux

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/lapack"
	"repro/internal/lu2d"
	"repro/internal/smpi"
	"repro/internal/trisolve"
)

// publicSentinels is the complete public error surface publicErr maps onto.
var publicSentinels = map[string]error{
	"ErrShape":            ErrShape,
	"ErrSingular":         ErrSingular,
	"ErrUnknownAlgorithm": ErrUnknownAlgorithm,
	"ErrUnknownExecutor":  ErrUnknownExecutor,
	"ErrCanceled":         ErrCanceled,
}

// TestPublicErrExhaustive pins the boundary mapping: every internal
// sentinel an engine, the runtime, or the solve layer can surface (the
// smpi, engine, trisolve, lu2d, and lapack packages) maps to exactly one
// public sentinel — never zero (a caller would have nothing to errors.Is
// against) and never two (ambiguous classification).
func TestPublicErrExhaustive(t *testing.T) {
	cases := []struct {
		name     string
		internal error
		want     error
	}{
		{"smpi.ErrCanceled", smpi.ErrCanceled, ErrCanceled},
		{"smpi.ErrUnknownExecutor", smpi.ErrUnknownExecutor, ErrUnknownExecutor},
		{"engine.ErrUnknown", engine.ErrUnknown, ErrUnknownAlgorithm},
		{"trisolve.ErrSingular", trisolve.ErrSingular, ErrSingular},
		{"lu2d.ErrSingular", lu2d.ErrSingular, ErrSingular},
		{"lapack.ErrSingular", lapack.ErrSingular, ErrSingular},
	}
	for _, tc := range cases {
		// Internal errors arrive wrapped in run-site context; the mapping
		// must see through that.
		wrapped := fmt.Errorf("rank 3: %w", tc.internal)
		got := publicErr(wrapped)
		matches := 0
		for name, pub := range publicSentinels {
			if errors.Is(got, pub) {
				matches++
				if pub != tc.want {
					t.Errorf("%s: mapped to %s, want %v", tc.name, name, tc.want)
				}
			}
		}
		if matches != 1 {
			t.Errorf("%s: matches %d public sentinels, want exactly 1 (got %v)", tc.name, matches, got)
		}
		// The internal detail must stay reachable for diagnostics.
		if !errors.Is(got, tc.internal) {
			t.Errorf("%s: internal sentinel no longer unwrappable from %v", tc.name, got)
		}
	}
}

// TestPublicErrIdempotent: re-wrapping at a second API boundary (session
// methods calling each other) must not stack a second public sentinel —
// an error already carrying one passes through unchanged.
func TestPublicErrIdempotent(t *testing.T) {
	for _, internal := range []error{
		smpi.ErrCanceled, smpi.ErrUnknownExecutor, engine.ErrUnknown,
		trisolve.ErrSingular, lu2d.ErrSingular, lapack.ErrSingular,
	} {
		once := publicErr(fmt.Errorf("context: %w", internal))
		twice := publicErr(once)
		if twice != once {
			t.Errorf("%v: publicErr not idempotent: %v -> %v", internal, once, twice)
		}
	}
	for name, pub := range publicSentinels {
		if got := publicErr(pub); got != pub {
			t.Errorf("%s: already-public sentinel rewrapped: %v", name, got)
		}
	}
}

// TestPublicErrPassThrough: nil stays nil, and errors with no mapping
// (engine invariant violations, injected faults) are returned verbatim,
// matching zero public sentinels.
func TestPublicErrPassThrough(t *testing.T) {
	if publicErr(nil) != nil {
		t.Fatal("publicErr(nil) != nil")
	}
	plain := errors.New("injected link failure")
	got := publicErr(fmt.Errorf("rank 1: %w", plain))
	if !errors.Is(got, plain) {
		t.Fatalf("plain error not passed through: %v", got)
	}
	for name, pub := range publicSentinels {
		if errors.Is(got, pub) {
			t.Fatalf("plain error spuriously matches %s", name)
		}
	}
}
