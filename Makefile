# Local verify and CI run the exact same commands: .github/workflows/ci.yml
# invokes these targets, so a green `make ci` locally means a green gate.

GO ?= go

.PHONY: all build test test-full vet fmt-check apicheck bench-smoke bench-json kernels conformance cover loadtest ci

all: ci

build:
	$(GO) build ./...

# Fast gate: -short skips the exhaustive internal/xpart searches (~16s).
test:
	$(GO) test -race -short ./...

# The full suite, including the exhaustive lower-bound searches.
test-full:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# API-surface gate: go vet plus scripts/apicheck.sh, which compiles the
# deprecated v1 wrappers against api_test.go's v1 usage and asserts the v2
# Session surface, the typed error sentinels, and the absence of an engine
# dispatch switch in api.go.
apicheck: vet
	sh scripts/apicheck.sh

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Cross-engine conformance suite under the race detector: all four LU
# engines plus Cholesky on shared seeds, at non-power-of-two rank counts,
# feeding the distributed solve — running on the v2 Session surface, so it
# drives every engine through the internal/engine registry. The coverage
# profile of that registry is written to conformance_engine.out and
# uploaded by CI. Also runs inside `make test`; kept addressable so CI
# gates on it explicitly.
# -timeout: the N=4096/P=64 numeric paper-scale case (DESIGN.md §15)
# far outruns go test's default 10m budget under the race detector.
conformance:
	$(GO) test -race -timeout 90m -run 'TestConformance' -v \
		-coverprofile=conformance_engine.out -coverpkg=repro/internal/engine .
	$(GO) tool cover -func=conformance_engine.out

# Coverage summary: full short-suite profile plus the per-function table
# CI uploads as an artifact.
cover:
	$(GO) test -short -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tee coverage.txt

# Compile and run every benchmark once — catches rotted benchmark code
# without paying for real measurements. -short skips the paper-scale
# (N=16384, P=1024) replay benchmark, which budgets a minute on its own.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' -short ./...

# Machine-readable measurements, uploaded by CI so the perf trajectory is
# recorded run over run:
#  - BENCH_smoke.json: bytes + simulated α-β time per algorithm (the
#    simulated machine's outputs); gitignored, artifact-only.
#  - BENCH_scale.json: the host-side perf suite (wall clock + allocs per
#    replay), compared against the committed pre-refactor baseline
#    (BENCH_baseline.json, frozen — never regenerate it) by benchdiff —
#    non-blocking, but >10% regressions fail loudly in the log. The
#    committed copy is the paper-scale record; this target overwrites it
#    with a small-scale run, so expect a dirty tree locally and re-commit
#    only when refreshing the record (`-scale paper`).
#  - BENCH_sched.json: the executor sweep (goroutines vs the discrete-
#    event loop on the same COnfLUX replay, DESIGN.md §11), compared
#    against the committed paper-scale record BENCH_events.json — the
#    presets nest, so the small-scale rows overlap the record's.
#    Regenerate the record itself with
#    `confluxbench -exp sched -scale paper -json BENCH_events.json`.
#  - BENCH_topo_run.json: the topology sweep (replication depth × network
#    model, DESIGN.md §14), compared against the committed small-scale
#    record BENCH_topo.json. Every number in it is simulated, so benchdiff
#    compares exactly and -exit makes any drift a hard failure — this is a
#    determinism gate, not a perf gate. Regenerate the record with
#    `confluxbench -exp topology -scale small -json BENCH_topo.json`.
#  - BENCH_kernels_run.json: the local level-3 kernel suite (blocked
#    GEMM/TRSM/LU panel vs the seed straight loop, DESIGN.md §15),
#    compared against the committed record BENCH_kernels.json. Rows use
#    the perf threshold; the headline 512×512 blocked-GEMM speedup
#    additionally has a hard ≥4x floor, and -exit makes either failure
#    fatal — the kernels are what lets numeric conformance run at paper
#    scale. Regenerate the record with
#    `confluxbench -exp kernels -json BENCH_kernels.json`.
bench-json:
	$(GO) run ./cmd/confluxbench -exp smoke -json BENCH_smoke.json
	$(GO) run ./cmd/confluxbench -exp perf -scale small -json BENCH_scale.json
	$(GO) run ./cmd/benchdiff BENCH_baseline.json BENCH_scale.json
	$(GO) run ./cmd/confluxbench -exp sched -scale small -json BENCH_sched.json
	$(GO) run ./cmd/benchdiff BENCH_events.json BENCH_sched.json
	$(GO) run ./cmd/confluxbench -exp topology -scale small -json BENCH_topo_run.json
	$(GO) run ./cmd/benchdiff -exit BENCH_topo.json BENCH_topo_run.json
	$(GO) run ./cmd/confluxbench -exp kernels -json BENCH_kernels_run.json
	$(GO) run ./cmd/benchdiff -exit BENCH_kernels.json BENCH_kernels_run.json

# The kernel micro-benchmark suite with allocation reporting: the Go
# benchmarks behind the BENCH_kernels.json rows, for interactive tuning.
kernels:
	$(GO) test -bench 'BenchmarkKernel' -benchmem -run '^$$' ./internal/blas

# Planner-service load gate: ~50 concurrent clients hammer one plan point
# through confluxd's full HTTP stack; the deterministic result cache must
# collapse the burst to exactly one simulation (asserted via /v1/stats),
# every client must get 200 with the same exact answer, and no goroutines
# may leak after the burst. Runs under the race detector. See DESIGN.md
# §13.
loadtest:
	$(GO) test -race -count=1 -run 'TestConfluxdLoad' -v ./cmd/confluxd

ci: fmt-check apicheck build test
