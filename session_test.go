package conflux

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/mat"
	"repro/internal/testutil"
)

// TestV1V2ParityAllEngines is the acceptance pin of the API redesign: for
// every LU engine, the deprecated v1 free functions must produce
// byte-identical VolumeReport totals and bit-identical simulated makespans
// to the v2 Session path, numeric and volume mode both.
func TestV1V2ParityAllEngines(t *testing.T) {
	n, p := 96, 8
	a := mat.Random(n, n, 41)
	for _, algo := range []Algorithm{COnfLUX, CANDMC, LibSci, SLATE} {
		v1, err := Factorize(a, Options{Ranks: p, Algorithm: algo})
		if err != nil {
			t.Fatalf("%s v1: %v", algo, err)
		}
		s, err := New(WithRanks(p), WithAlgorithm(algo))
		if err != nil {
			t.Fatalf("%s New: %v", algo, err)
		}
		v2, err := s.Factorize(t.Context(), a)
		if err != nil {
			t.Fatalf("%s v2: %v", algo, err)
		}
		if v1.Volume.TotalBytes() != v2.Volume.TotalBytes() {
			t.Fatalf("%s: v1 %d bytes != v2 %d bytes", algo, v1.Volume.TotalBytes(), v2.Volume.TotalBytes())
		}
		if AlgorithmBytes(v1.Volume) != AlgorithmBytes(v2.Volume) {
			t.Fatalf("%s: algorithm bytes differ", algo)
		}
		if v1.Time != v2.Time || v1.CommTime != v2.CommTime {
			t.Fatalf("%s: makespan v1 %v/%v != v2 %v/%v", algo, v1.Time, v1.CommTime, v2.Time, v2.CommTime)
		}

		vol1, err := CommVolume(algo, n, p, 0)
		if err != nil {
			t.Fatalf("%s v1 volume: %v", algo, err)
		}
		vol2, err := s.CommVolume(t.Context(), n)
		if err != nil {
			t.Fatalf("%s v2 volume: %v", algo, err)
		}
		if vol1.TotalBytes() != vol2.TotalBytes() || vol1.Time.Makespan != vol2.Time.Makespan {
			t.Fatalf("%s: volume replay diverged: %d/%v vs %d/%v", algo,
				vol1.TotalBytes(), vol1.Time.Makespan, vol2.TotalBytes(), vol2.Time.Makespan)
		}
	}
}

// TestV1V2ParitySolve extends the parity pin through the solve path: same
// solutions, same solve-phase accounting.
func TestV1V2ParitySolve(t *testing.T) {
	n, nrhs := 64, 3
	a := mat.Random(n, n, 43)
	b := mat.Random(n, nrhs, 44)
	x1, r1, err := SolveMany(a, b, Options{Ranks: 5, SolveRanks: 6})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(WithRanks(5), WithSolveRanks(6))
	if err != nil {
		t.Fatal(err)
	}
	x2, r2, err := s.SolveMany(t.Context(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < nrhs; j++ {
			if x1.At(i, j) != x2.At(i, j) {
				t.Fatalf("x[%d,%d]: %v vs %v", i, j, x1.At(i, j), x2.At(i, j))
			}
		}
	}
	if r1.SolveBytes != r2.SolveBytes || r1.SolveTime != r2.SolveTime {
		t.Fatalf("solve accounting diverged: %d/%v vs %d/%v",
			r1.SolveBytes, r1.SolveTime, r2.SolveBytes, r2.SolveTime)
	}
}

// TestSessionCancellation proves an in-flight simulation is interrupted:
// the volume replay below runs for several seconds uncanceled, but returns
// ErrCanceled well under that once the context fires.
func TestSessionCancellation(t *testing.T) {
	s, err := New(WithRanks(16))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = s.CommVolume(ctx, 2048) // ~6 s to completion when not canceled
	elapsed := time.Since(start)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v must also wrap context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v — simulation not interrupted", elapsed)
	}
	if st := s.Stats(); st.Runs != 0 {
		t.Fatalf("canceled run counted into stats: %+v", st)
	}
}

// TestSessionSafetyTimeout: WithTimeout is a deadline even when the caller
// context has none.
func TestSessionSafetyTimeout(t *testing.T) {
	s, err := New(WithRanks(16), WithTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.CommVolume(context.Background(), 2048)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v must also wrap DeadlineExceeded", err)
	}
}

func TestNewUnknownAlgorithm(t *testing.T) {
	_, err := New(WithAlgorithm("HPL"))
	if err == nil || !errors.Is(err, ErrUnknownAlgorithm) {
		t.Fatalf("err = %v, want ErrUnknownAlgorithm", err)
	}
	// The v1 wrapper path reports the same sentinel.
	_, err = Factorize(RandomMatrix(16, 1), Options{Algorithm: "HPL"})
	if !errors.Is(err, ErrUnknownAlgorithm) {
		t.Fatalf("v1 err = %v, want ErrUnknownAlgorithm", err)
	}
}

func TestNewRejectsBadOptions(t *testing.T) {
	for name, opt := range map[string]Option{
		"ranks":      WithRanks(0),
		"solveRanks": WithSolveRanks(-1),
		"rhs":        WithRHS(0),
		"refine":     WithRefineSweeps(-2),
		"timeout":    WithTimeout(-time.Second),
		"blocksize":  WithBlockSize(-1),
	} {
		if _, err := New(opt); err == nil {
			t.Fatalf("%s: invalid option accepted", name)
		}
	}
}

func TestShapeErrorsTyped(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Factorize(t.Context(), NewMatrix(3, 4)); !errors.Is(err, ErrShape) {
		t.Fatalf("Factorize: %v", err)
	}
	if _, err := s.Factorize(t.Context(), nil); !errors.Is(err, ErrShape) {
		t.Fatalf("Factorize(nil): %v", err)
	}
	if _, err := s.Solve(t.Context(), RandomMatrix(4, 1), make([]float64, 5)); !errors.Is(err, ErrShape) {
		t.Fatalf("Solve: %v", err)
	}
	if _, err := s.CommVolume(t.Context(), 0); !errors.Is(err, ErrShape) {
		t.Fatalf("CommVolume: %v", err)
	}
	// v1 wrappers wrap the same sentinel.
	if _, err := Factorize(NewMatrix(3, 4), Options{}); !errors.Is(err, ErrShape) {
		t.Fatalf("v1 Factorize: %v", err)
	}
}

// TestSingularTyped: both solve paths (sequential fallback and the
// distributed engine) wrap ErrSingular.
func TestSingularTyped(t *testing.T) {
	n := 8
	lu := NewMatrix(n, n)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
		lu.Set(i, i, 1)
	}
	lu.Set(5, 5, 0)
	hand := &Result{LU: lu, Perm: perm}
	if _, err := hand.SolveFactored(make([]float64, n)); !errors.Is(err, ErrSingular) {
		t.Fatalf("sequential path: %v", err)
	}

	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Factorize(t.Context(), RandomMatrix(32, 13))
	if err != nil {
		t.Fatal(err)
	}
	res.LU.Set(17, 17, 0)
	if _, err := res.SolveFactoredContext(t.Context(), make([]float64, 32)); !errors.Is(err, ErrSingular) {
		t.Fatalf("distributed path: %v", err)
	}
}

// TestWithFreeMachine pins the zero-value satellite: the all-free machine
// is now expressible (volume metered, simulated time exactly zero), while
// the v1 Options zero value still means DefaultMachine.
func TestWithFreeMachine(t *testing.T) {
	n, p := 64, 4
	free, err := New(WithRanks(p), WithFreeMachine())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := free.CommVolume(t.Context(), n)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalBytes() == 0 {
		t.Fatal("free machine must still meter volume")
	}
	if rep.Time.Makespan != 0 {
		t.Fatalf("free machine makespan = %v, want 0", rep.Time.Makespan)
	}
	// WithMachine(Machine{}) is the same explicit request.
	explicit, err := New(WithRanks(p), WithMachine(Machine{}))
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := explicit.CommVolume(t.Context(), n)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Time.Makespan != 0 {
		t.Fatalf("explicit zero machine makespan = %v, want 0", rep2.Time.Makespan)
	}
	// v1 compatibility: the zero Options.Machine still selects the default
	// (nonzero α-β), and Machine.IsZero tells the two cases apart.
	v1, err := CommVolume(COnfLUX, n, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v1.Time.Makespan == 0 {
		t.Fatal("v1 zero Machine must mean DefaultMachine, not all-free")
	}
	if !(Machine{}).IsZero() || DefaultMachine().IsZero() {
		t.Fatal("Machine.IsZero misclassifies")
	}
}

// TestResultConcurrentSolves: the solve accounting on one Result is
// goroutine-safe (run under -race) and accumulates every solve exactly
// once.
func TestResultConcurrentSolves(t *testing.T) {
	n := 48
	a := RandomMatrix(n, 9)
	s, err := New(WithRanks(4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Factorize(t.Context(), a)
	if err != nil {
		t.Fatal(err)
	}
	base, err := res.SolveManyFactoredContext(t.Context(), mat.Random(n, 1, 7))
	if err != nil {
		t.Fatal(err)
	}
	_ = base
	perSolveBytes, perSolveTime := res.SolveBytes, res.SolveTime

	const workers = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			b := mat.Random(n, 1, seed)
			x, err := res.SolveManyFactoredContext(context.Background(), b)
			if err != nil {
				t.Errorf("solve: %v", err)
				return
			}
			if be := testutil.SolveBackwardError(a, x, b); be > 1e-9 {
				t.Errorf("backward error %v", be)
			}
		}(uint64(100 + w))
	}
	wg.Wait()
	if res.SolveBytes != perSolveBytes*(workers+1) {
		t.Fatalf("byte accounting lost updates: %d, want %d", res.SolveBytes, perSolveBytes*(workers+1))
	}
	// The makespans are identical floats, but summation order vs a single
	// multiplication can differ by rounding — compare within ulp scale.
	wantTime := perSolveTime * (workers + 1)
	if diff := res.SolveTime - wantTime; diff > 1e-12*wantTime || diff < -1e-12*wantTime {
		t.Fatalf("time accounting lost updates: %v, want %v", res.SolveTime, wantTime)
	}
	st := s.Stats()
	if st.Runs != workers+2 { // factorize + 1 serial + workers concurrent solves
		t.Fatalf("session runs = %d, want %d", st.Runs, workers+2)
	}
}

// TestEnginesListsRegistry: the registry drives the public engine list.
func TestEnginesListsRegistry(t *testing.T) {
	got := map[Algorithm]bool{}
	for _, a := range Engines() {
		got[a] = true
	}
	for _, want := range []Algorithm{COnfLUX, CANDMC, LibSci, SLATE, Cholesky} {
		if !got[want] {
			t.Fatalf("Engines() = %v missing %q", Engines(), want)
		}
	}
}

// TestFactorizeWithCholeskyEngineRejected: the generic LU entry point
// reports a clear error for the permutation-less Cholesky engine rather
// than returning unusable factors.
func TestFactorizeWithCholeskyEngineRejected(t *testing.T) {
	s, err := New(WithAlgorithm(Cholesky))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Factorize(t.Context(), testutil.SPD(16, 3)); err == nil {
		t.Fatal("Factorize with the Cholesky engine must error (use FactorizeSPD)")
	}
}

// TestWithMemoryValidation: WithMemory(0) keeps meaning "paper default",
// but a negative m is rejected like every other out-of-range option value
// instead of being silently coerced to the default.
func TestWithMemoryValidation(t *testing.T) {
	if _, err := New(WithMemory(-1)); err == nil {
		t.Fatal("WithMemory(-1): invalid option accepted")
	}
	s, err := New(WithMemory(0))
	if err != nil {
		t.Fatalf("WithMemory(0): %v", err)
	}
	if got := s.Config().Memory; got != 0 {
		t.Fatalf("WithMemory(0) resolved to %v, want 0 (paper default)", got)
	}
	s, err = New(WithMemory(4096))
	if err != nil {
		t.Fatalf("WithMemory(4096): %v", err)
	}
	if got := s.Config().Memory; got != 4096 {
		t.Fatalf("WithMemory(4096) resolved to %v", got)
	}
}

// TestSessionConfigResolved: Config() reports the canonical tuple with the
// construction-time defaults already applied.
func TestSessionConfigResolved(t *testing.T) {
	s, err := New(WithRanks(9), WithAlgorithm(SLATE), WithRHS(3))
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.Config()
	if cfg.Ranks != 9 || cfg.Algorithm != SLATE || cfg.RHS != 3 {
		t.Fatalf("Config() = %+v lost explicit options", cfg)
	}
	if cfg.SolveRanks != 9 {
		t.Fatalf("Config().SolveRanks = %d, want resolved default 9", cfg.SolveRanks)
	}
	if cfg.Machine != DefaultMachine() {
		t.Fatalf("Config().Machine = %+v, want resolved DefaultMachine", cfg.Machine)
	}
	if cfg.Executor != "auto" || cfg.Workers != 1 {
		t.Fatalf("Config() executor/workers = %q/%d, want auto/1", cfg.Executor, cfg.Workers)
	}
	free, err := New(WithFreeMachine())
	if err != nil {
		t.Fatal(err)
	}
	if !free.Config().Machine.IsZero() {
		t.Fatalf("Config().Machine = %+v after WithFreeMachine, want zero", free.Config().Machine)
	}
}

// TestSessionStatsRunsByExecutor pins the concurrent mixed-executor
// accounting: under auto selection a session runs numeric jobs on
// goroutines and volume replays on the event loop concurrently, and while
// SessionStats.Executor is documented last-completed-writer-wins, the
// RunsByExecutor counts must be exact and sum to Runs.
func TestSessionStatsRunsByExecutor(t *testing.T) {
	s, err := New(WithRanks(4))
	if err != nil {
		t.Fatal(err)
	}
	const k = 4
	a := mat.Random(24, 24, 7)
	var wg sync.WaitGroup
	errs := make(chan error, 2*k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Factorize(context.Background(), a) // auto -> goroutines
			errs <- err
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.CommVolume(context.Background(), 24) // auto -> events
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Runs != 2*k {
		t.Fatalf("Runs = %d, want %d", st.Runs, 2*k)
	}
	if st.RunsByExecutor["goroutines"] != k || st.RunsByExecutor["events"] != k {
		t.Fatalf("RunsByExecutor = %v, want %d each", st.RunsByExecutor, k)
	}
	sum := 0
	for _, c := range st.RunsByExecutor {
		sum += c
	}
	if sum != st.Runs {
		t.Fatalf("RunsByExecutor sums to %d, Runs = %d", sum, st.Runs)
	}
	if st.RunsByExecutor[st.Executor] == 0 {
		t.Fatalf("Executor = %q not present in RunsByExecutor %v", st.Executor, st.RunsByExecutor)
	}
	// The snapshot must not alias the live accounting.
	st.RunsByExecutor["goroutines"] = -1
	if s.Stats().RunsByExecutor["goroutines"] != k {
		t.Fatal("Stats() returned an aliased RunsByExecutor map")
	}
}
