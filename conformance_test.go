package conflux

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/blas"
	"repro/internal/mat"
	"repro/internal/testutil"
)

// Conformance suite: for shared random seeds, every engine must factor the
// SAME inputs to below-tolerance residuals — ‖P·A − L·U‖/‖A‖ for the LU
// engines, ‖A − L·Lᵀ‖/‖A‖ for Cholesky on SPD input — across rank counts
// including non-powers-of-two (p ∈ {3, 5, 6}) and dimensions not divisible
// by any engine's block size. This is the cross-engine contract the
// end-to-end solver relies on: factors from any engine feed the same
// distributed triangular solve. The suite runs on the v2 Session surface,
// so it also pins the registry dispatch path every engine self-registers
// into.

const conformanceTol = 1e-9

var conformanceRanks = []int{3, 4, 5, 6}

// conformanceDims: 33 and 45 are divisible by neither the 2D engines' block
// sizes (32 and 16) nor the typical 2.5D blocking parameters.
var conformanceDims = []int{33, 45}

// conformanceLU lists the paper's four measured LU implementations.
var conformanceLU = []Algorithm{COnfLUX, CANDMC, LibSci, SLATE}

func conformanceSeed(n, p int) uint64 { return uint64(n)*1009 + uint64(p)*31 }

// conformanceSession builds the one-algorithm session each case runs on.
func conformanceSession(t *testing.T, algo Algorithm, p int) *Session {
	t.Helper()
	s, err := New(WithRanks(p), WithAlgorithm(algo))
	if err != nil {
		t.Fatalf("New(%s, p=%d): %v", algo, p, err)
	}
	return s
}

func TestConformanceLUEngines(t *testing.T) {
	for _, n := range conformanceDims {
		for _, p := range conformanceRanks {
			// One shared general (non-dominant) matrix per (n, p): every
			// engine must pivot its way through the same input.
			a := mat.Random(n, n, conformanceSeed(n, p))
			for _, algo := range conformanceLU {
				t.Run(fmt.Sprintf("%s/n=%d/p=%d", algo, n, p), func(t *testing.T) {
					// Every case is a self-contained simulated world (own
					// mailboxes, own timeline shards) reading the shared
					// input matrix, so the matrix runs across host cores.
					t.Parallel()
					s := conformanceSession(t, algo, p)
					res, err := s.Factorize(t.Context(), a)
					if err != nil {
						t.Fatal(err)
					}
					if err := testutil.IsPermutation(res.Perm, n); err != nil {
						t.Fatalf("perm: %v", err)
					}
					if r := testutil.ResidualLUPerm(a, res.LU, res.Perm); r > conformanceTol {
						t.Fatalf("residual %v > %v", r, conformanceTol)
					}
				})
			}
		}
	}
}

func TestConformanceCholesky(t *testing.T) {
	for _, n := range conformanceDims {
		for _, p := range conformanceRanks {
			t.Run(fmt.Sprintf("n=%d/p=%d", n, p), func(t *testing.T) {
				t.Parallel() // self-contained world per case, as above
				a := testutil.SPD(n, conformanceSeed(n, p))
				// Note: at awkward rank counts (e.g. p=3) the square-layer
				// grid optimizer may disable all but one rank, so the
				// conformance contract here is numerical only.
				s := conformanceSession(t, Cholesky, p)
				l, _, err := s.FactorizeSPD(t.Context(), a)
				if err != nil {
					t.Fatal(err)
				}
				if r := testutil.ResidualCholesky(a, l); r > conformanceTol {
					t.Fatalf("residual %v > %v", r, conformanceTol)
				}
			})
		}
	}
}

// TestConformanceSolveAcrossEngines closes the loop: factors from every LU
// engine, fed through the distributed solve, must reproduce the same
// solution of the same system. One session per engine carries its
// factorization and solve, exercising the session-owned solve geometry.
func TestConformanceSolveAcrossEngines(t *testing.T) {
	n, nrhs := 45, 3
	for _, p := range conformanceRanks {
		a := mat.Random(n, n, conformanceSeed(n, p))
		b := mat.Random(n, nrhs, conformanceSeed(n, p)+1)
		for _, algo := range conformanceLU {
			s := conformanceSession(t, algo, p)
			res, err := s.Factorize(t.Context(), a)
			if err != nil {
				t.Fatalf("%s p=%d: %v", algo, p, err)
			}
			x, err := res.SolveManyFactoredContext(t.Context(), b)
			if err != nil {
				t.Fatalf("%s p=%d solve: %v", algo, p, err)
			}
			if be := testutil.SolveBackwardError(a, x, b); be > conformanceTol {
				t.Fatalf("%s p=%d backward error %v", algo, p, be)
			}
		}
	}
}

// TestConformanceNumericPaperScale is the headline end-to-end correctness
// check: a numeric (payload-carrying) factorize+solve at N=4096 / P=64 —
// a Table-2 point of the paper — made tractable by the cache-blocked
// level-3 kernels (DESIGN.md §15), where the suite's previous numeric
// ceiling was n=45. It also pins the §15 determinism contract at scale:
// the same factorization on sessions configured with kernel worker counts
// 1 and 2, and across reps, must agree to the last bit of every LU entry
// and pivot. Behind -short: the run budgets ~3¼ minutes bare and about
// an hour under the race detector (make conformance raises go test's
// timeout accordingly).
func TestConformanceNumericPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale numeric conformance skipped in -short mode")
	}
	defer blas.SetKernelWorkers(1)
	n, p, nrhs := 4096, 64, 2
	a := mat.Random(n, n, conformanceSeed(n, p))
	b := mat.Random(n, nrhs, conformanceSeed(n, p)+1)

	factor := func(kernelWorkers int) *Result {
		t.Helper()
		// One factorization runs ~1.5 min bare but far outruns the 10 min
		// session safety default under the race detector's instrumented
		// generic/packing paths; the harness timeout still bounds the test.
		s, err := New(WithRanks(p), WithAlgorithm(COnfLUX), WithKernelWorkers(kernelWorkers),
			WithTimeout(80*time.Minute))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Factorize(t.Context(), a)
		if err != nil {
			t.Fatalf("factorize (kernel workers %d): %v", kernelWorkers, err)
		}
		return res
	}

	ref := factor(1)
	if err := testutil.IsPermutation(ref.Perm, n); err != nil {
		t.Fatalf("perm: %v", err)
	}
	if r := testutil.ResidualLUPerm(a, ref.LU, ref.Perm); r > conformanceTol {
		t.Fatalf("residual %v > %v", r, conformanceTol)
	}

	// Rep 2 on a wider-kernel session: bit-identical factors and pivots.
	rep := factor(2)
	for i := range ref.Perm {
		if ref.Perm[i] != rep.Perm[i] {
			t.Fatalf("pivot %d differs across kernel worker counts: %d != %d", i, ref.Perm[i], rep.Perm[i])
		}
	}
	for i := 0; i < n; i++ {
		r1, r2 := ref.LU.Row(i), rep.LU.Row(i)
		for j := range r1 {
			if math.Float64bits(r1[j]) != math.Float64bits(r2[j]) {
				t.Fatalf("LU(%d,%d) differs across kernel worker counts: %x != %x",
					i, j, math.Float64bits(r1[j]), math.Float64bits(r2[j]))
			}
		}
	}

	x, err := ref.SolveManyFactoredContext(t.Context(), b)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if be := testutil.SolveBackwardError(a, x, b); be > conformanceTol {
		t.Fatalf("backward error %v > %v", be, conformanceTol)
	}
}

// TestConformanceSessionReuse pins the amortization contract the Session
// exists for: one session runs many jobs (different dimensions, numeric and
// volume mode) and its accumulated stats reflect every completed run.
func TestConformanceSessionReuse(t *testing.T) {
	s := conformanceSession(t, COnfLUX, 4)
	runs := 0
	for _, n := range conformanceDims {
		a := mat.Random(n, n, conformanceSeed(n, 4))
		if _, err := s.Factorize(t.Context(), a); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		runs++
		if _, err := s.CommVolume(t.Context(), n); err != nil {
			t.Fatalf("volume n=%d: %v", n, err)
		}
		runs++
	}
	st := s.Stats()
	if st.Runs != runs || st.Bytes <= 0 || st.SimTime <= 0 {
		t.Fatalf("stats did not accumulate: %+v after %d runs", st, runs)
	}
}
