package conflux

import (
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/conflux"
	"repro/internal/mat"
	"repro/internal/smpi"
)

// TestAllAlgorithmsSolveConsistently factorizes one system with all four
// implementations and checks they produce the SAME solution (the solution of
// a nonsingular system is unique, so this cross-validates the factorizations
// against each other even though their pivot orders differ).
func TestAllAlgorithmsSolveConsistently(t *testing.T) {
	n := 64
	a := RandomMatrix(n, 31)
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i)) * 3
	}
	var ref []float64
	for _, algo := range []Algorithm{COnfLUX, CANDMC, LibSci, SLATE} {
		x, err := Solve(a, b, Options{Ranks: 8, Algorithm: algo})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if ref == nil {
			ref = x
			continue
		}
		for i := range x {
			if math.Abs(x[i]-ref[i]) > 1e-7 {
				t.Fatalf("%s: x[%d]=%v vs COnfLUX %v", algo, i, x[i], ref[i])
			}
		}
	}
}

// TestSameVolumeEveryRun asserts volume-mode runs are deterministic: the
// same configuration always meters the same bytes (a prerequisite for the
// harness' reproducibility claims).
func TestSameVolumeEveryRun(t *testing.T) {
	var prev int64 = -1
	for i := 0; i < 3; i++ {
		rep, err := CommVolume(COnfLUX, 192, 8, 0)
		if err != nil {
			t.Fatal(err)
		}
		got := AlgorithmBytes(rep)
		if prev >= 0 && got != prev {
			t.Fatalf("run %d: %d bytes vs %d", i, got, prev)
		}
		prev = got
	}
}

// TestLinkFailureSurfacesAsError injects a link fault mid-run and checks the
// world aborts with the injected error instead of deadlocking.
func TestLinkFailureSurfacesAsError(t *testing.T) {
	n, p := 64, 4
	w := smpi.NewWorld(p, false)
	var sent atomic.Int64 // FailSend runs concurrently on every rank
	w.FailSend = func(from, to int, bytes int64) error {
		if sent.Add(bytes) > 50_000 {
			return errLinkDown
		}
		return nil
	}
	opt := conflux.DefaultOptions(n, p, 0.25*float64(n*n))
	start := time.Now()
	_, err := smpi.RunWorld(w, func(c *smpi.Comm) error {
		_, err := conflux.Run(c, nil, opt)
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "link down") {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("failure propagation too slow — ranks likely hung")
	}
}

type linkErr struct{}

func (linkErr) Error() string { return "injected: link down" }

var errLinkDown = linkErr{}

// TestVolumeVsNumericParityAllAlgorithms pins the central phantom-mode
// invariant at API level for every algorithm (tolerances cover pivot-path
// differences; see lu2d tests for the rationale).
func TestVolumeVsNumericParityAllAlgorithms(t *testing.T) {
	n, p := 96, 8
	a := mat.Random(n, n, 17) // general matrix: realistic pivot movement
	for _, algo := range []Algorithm{COnfLUX, CANDMC, LibSci, SLATE} {
		res, err := Factorize(a, Options{Ranks: p, Algorithm: algo})
		if err != nil {
			t.Fatalf("%s numeric: %v", algo, err)
		}
		vol, err := CommVolume(algo, n, p, 0)
		if err != nil {
			t.Fatalf("%s volume: %v", algo, err)
		}
		nb := AlgorithmBytes(res.Volume)
		vb := AlgorithmBytes(vol)
		ratio := float64(vb) / float64(nb)
		if ratio < 0.8 || ratio > 1.25 {
			t.Fatalf("%s: volume-mode %d vs numeric %d (ratio %.3f)", algo, vb, nb, ratio)
		}
	}
}
