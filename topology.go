package conflux

import (
	"fmt"

	"repro/internal/topo"
)

// Topology is the composable network-topology specification a Session
// simulates under (see internal/topo): a model family ("flat", "hier",
// "dragonfly", "fattree"), its shape parameters, per-tier α-β machines,
// and an optional FIFO ingress-contention layer. The zero Topology means
// "no topology" — the plain α-β Machine path, byte-for-byte. All leaves
// are scalars, so the value participates in Config and the planner cache
// key like any other machine parameter.
type Topology = topo.Spec

// FaultPlan is a first-class fault/straggler scenario layered over the
// topology: degraded links (per-node-pair cost multipliers) and straggler
// ranks (per-rank slowdown factors). Its makespan impact and critical-path
// re-attribution read directly off the ordinary volume/time reports.
type FaultPlan = topo.FaultPlan

// LinkFault degrades routes between two nodes; see topo.LinkFault.
type LinkFault = topo.LinkFault

// Straggler slows one rank; see topo.Straggler.
type Straggler = topo.Straggler

// TopologyPresets returns the named topology presets WithTopologyPreset
// accepts, in sorted order.
func TopologyPresets() []string { return topo.Presets() }

// TopologyPreset resolves a preset name ("flat", "hier", "hier-contended",
// "dragonfly", "dragonfly-contended", "fattree") to its full specification.
func TopologyPreset(name string) (Topology, error) { return topo.PresetSpec(name) }

// WithTopology runs every simulation of the session under the given
// network topology instead of the flat α-β machine. The flat preset (and
// the zero Topology) is pinned bit-identical to plain WithMachine; the
// hierarchical, dragonfly, fat-tree, and contended models stay
// deterministic across executors and event-window widths exactly like the
// flat machine (DESIGN.md §14), so results remain cacheable by key.
func WithTopology(t Topology) Option {
	return func(c *sessionConfig) error {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("conflux: WithTopology: %w", err)
		}
		c.topology = t
		return nil
	}
}

// WithTopologyPreset is WithTopology(TopologyPreset(name)) with the
// lookup error surfaced through New.
func WithTopologyPreset(name string) Option {
	return func(c *sessionConfig) error {
		t, err := topo.PresetSpec(name)
		if err != nil {
			return fmt.Errorf("conflux: WithTopologyPreset: %w", err)
		}
		c.topology = t
		return nil
	}
}

// WithFaults injects a fault/straggler scenario into every simulation of
// the session: link degradation factors and per-rank slowdowns applied on
// top of the configured topology (or on the flat view of the session
// machine when no topology is set).
func WithFaults(f FaultPlan) Option {
	return func(c *sessionConfig) error {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("conflux: WithFaults: %w", err)
		}
		c.faults = f
		return nil
	}
}
