#!/bin/sh
# apicheck: guard the public API surface across the v1 -> v2 transition
# and the smpi Run* -> Exec consolidation.
#
# 1. The deprecated v1 wrappers must still compile against api_test.go's
#    v1 usage (Options literals + free functions). `go test -c` compiles
#    the root test package without running it.
# 2. Each v1 entry point must still exist and carry a Deprecated: marker,
#    and the v2 Session surface must expose its core symbols.
# 3. The eight smpi Run* variants must survive as Deprecated: wrappers
#    over the one real entry point, smpi.Exec, and the executor surface
#    (WithExecutor, ErrUnknownExecutor) must stay exposed.
#
# Run via `make apicheck` (CI runs the same target).
set -eu
cd "$(dirname "$0")/.."

echo "apicheck: compiling root test package (v1 usage in api_test.go)"
go test -c -o /dev/null .

if ! grep -q 'Options{' api_test.go; then
    echo "apicheck: api_test.go no longer exercises the v1 Options surface" >&2
    exit 1
fi

for sym in Factorize Solve SolveMany CommVolume CommVolumeMachine CommVolumeSolve FactorizeSPD; do
    if ! grep -q "^func $sym(" api.go; then
        echo "apicheck: v1 wrapper $sym missing from api.go" >&2
        exit 1
    fi
done

for dep in Factorize SolveMany CommVolume FactorizeSPD; do
    if ! grep -B 3 "^func $dep(" api.go | grep -q 'Deprecated:'; then
        echo "apicheck: v1 wrapper $dep lost its Deprecated: marker" >&2
        exit 1
    fi
done

for sym in 'func New(' 'func WithRanks(' 'func WithAlgorithm(' 'func WithMachine(' 'func WithFreeMachine(' \
           'func (s \*Session) Factorize(' 'func (s \*Session) SolveMany(' 'func (s \*Session) CommVolume('; do
    if ! grep -q "$sym" session.go; then
        echo "apicheck: v2 symbol missing: $sym" >&2
        exit 1
    fi
done

for sentinel in ErrShape ErrSingular ErrUnknownAlgorithm ErrCanceled; do
    if ! grep -q "$sentinel = errors.New" errors.go; then
        echo "apicheck: typed sentinel $sentinel missing from errors.go" >&2
        exit 1
    fi
done

if grep -n 'switch o.Algorithm' api.go; then
    echo "apicheck: engine dispatch switch crept back into api.go (use the registry)" >&2
    exit 1
fi

# --- smpi executor consolidation (DESIGN.md §11) ---

if ! grep -q '^func Exec(' internal/smpi/exec.go; then
    echo "apicheck: smpi.Exec missing from internal/smpi/exec.go" >&2
    exit 1
fi

for run in Run RunMachine RunWorld RunContext RunContextMachine \
           RunContextWorld RunTimeout RunTimeoutMachine; do
    if ! grep -q "^func $run(" internal/smpi/run.go; then
        echo "apicheck: deprecated smpi wrapper $run missing from internal/smpi/run.go" >&2
        exit 1
    fi
    if ! grep -B 3 "^func $run(" internal/smpi/run.go | grep -q 'Deprecated:'; then
        echo "apicheck: smpi wrapper $run lost its Deprecated: marker" >&2
        exit 1
    fi
done

if ! grep -q 'func WithExecutor(' session.go; then
    echo "apicheck: WithExecutor missing from session.go" >&2
    exit 1
fi

if ! grep -q 'ErrUnknownExecutor = errors.New' errors.go; then
    echo "apicheck: typed sentinel ErrUnknownExecutor missing from errors.go" >&2
    exit 1
fi

echo "apicheck: ok"
