package conflux

import (
	"math"
	"testing"

	"repro/internal/blas"
	"repro/internal/lapack"
	"repro/internal/mat"
)

func residual(a, lu *Matrix, perm []int) float64 {
	n := a.Rows
	l, u := lapack.SplitLU(lu)
	prod := mat.New(n, n)
	blas.Gemm(1, l, u, 0, prod)
	pa := mat.PermuteRows(a, perm)
	return mat.MaxAbsDiff(pa, prod) / (mat.NormInf(a)*float64(n) + 1)
}

func TestFactorizeAllAlgorithms(t *testing.T) {
	a := RandomMatrix(64, 7)
	for _, algo := range []Algorithm{COnfLUX, CANDMC, LibSci, SLATE} {
		res, err := Factorize(a, Options{Ranks: 8, Algorithm: algo})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if r := residual(a, res.LU, res.Perm); r > 1e-11 {
			t.Fatalf("%s residual %v", algo, r)
		}
		if res.Volume == nil || res.Volume.TotalBytes() == 0 {
			t.Fatalf("%s: no volume report", algo)
		}
	}
}

func TestFactorizeDefaults(t *testing.T) {
	a := RandomMatrix(32, 3)
	res, err := Factorize(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r := residual(a, res.LU, res.Perm); r > 1e-11 {
		t.Fatalf("residual %v", r)
	}
}

func TestFactorizeRejectsNonSquare(t *testing.T) {
	if _, err := Factorize(NewMatrix(3, 4), Options{}); err == nil {
		t.Fatal("expected shape error")
	}
	if _, err := Factorize(nil, Options{}); err == nil {
		t.Fatal("expected nil error")
	}
}

func TestSolveRoundTrip(t *testing.T) {
	n := 48
	a := RandomMatrix(n, 11)
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += a.At(i, j) * x[j]
		}
		b[i] = s
	}
	got, err := Solve(a, b, Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(got[i]-x[i]) > 1e-8 {
			t.Fatalf("x[%d]=%v want %v", i, got[i], x[i])
		}
	}
}

func TestSolveFactoredReuse(t *testing.T) {
	n := 32
	a := RandomMatrix(n, 5)
	res, err := Factorize(a, Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Two different right-hand sides against one factorization.
	for seed := 0; seed < 2; seed++ {
		b := make([]float64, n)
		for i := range b {
			b[i] = float64((i*7+seed)%5) - 2
		}
		x, err := res.SolveFactored(b)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < n; j++ {
				s += a.At(i, j) * x[j]
			}
			if math.Abs(s-b[i]) > 1e-8 {
				t.Fatalf("seed %d: residual at %d: %v", seed, i, s-b[i])
			}
		}
	}
}

func TestCommVolumeOrdering(t *testing.T) {
	// The paper's claim at API level: COnfLUX communicates less than the 2D
	// codes at moderate scale.
	n, p := 256, 16
	cfx, err := CommVolume(COnfLUX, n, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := CommVolume(LibSci, n, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if AlgorithmBytes(cfx) >= AlgorithmBytes(lib) {
		t.Fatalf("COnfLUX %d >= LibSci %d", AlgorithmBytes(cfx), AlgorithmBytes(lib))
	}
}

func TestResultExposesSimulatedTime(t *testing.T) {
	a := RandomMatrix(48, 5)
	res, err := Factorize(a, Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 || res.CommTime <= 0 {
		t.Fatalf("no simulated time: Time=%v CommTime=%v", res.Time, res.CommTime)
	}
	if res.CommTime > res.Time {
		t.Fatalf("CommTime %v exceeds makespan %v", res.CommTime, res.Time)
	}
	if res.Volume.Time == nil || res.Volume.Time.Makespan != res.Time {
		t.Fatal("Result.Time must mirror Volume.Time.Makespan")
	}
}

func TestCommVolumeMachineScalesTime(t *testing.T) {
	n, p := 128, 8
	slow, err := CommVolumeMachine(COnfLUX, n, p, 0, Machine{Alpha: 1e-5, Beta: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := CommVolumeMachine(COnfLUX, n, p, 0, Machine{Alpha: 1e-7, Beta: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	// Bytes are machine-independent; time is not.
	if slow.TotalBytes() != fast.TotalBytes() {
		t.Fatalf("volume changed with machine: %d vs %d", slow.TotalBytes(), fast.TotalBytes())
	}
	if slow.Time.Makespan <= fast.Time.Makespan {
		t.Fatalf("slower machine not slower: %v <= %v", slow.Time.Makespan, fast.Time.Makespan)
	}
}

func TestLowerBoundsPositiveAndOrdered(t *testing.T) {
	n, p, m := 4096, 64, 1e6
	lu := LowerBoundLU(n, p, m)
	mmm := LowerBoundMMM(n, p, m)
	chol := LowerBoundCholesky(n, p, m)
	if lu <= 0 || mmm <= 0 || chol <= 0 {
		t.Fatalf("bounds must be positive: %v %v %v", lu, mmm, chol)
	}
	// MMM moves 3× the leading volume of LU's 2/3·N³ (N³ vs N³/3 vertices).
	if mmm <= lu {
		t.Fatalf("MMM bound %v should exceed LU bound %v", mmm, lu)
	}
	// Cholesky does half of LU's work.
	if chol >= lu {
		t.Fatalf("Cholesky bound %v should be below LU bound %v", chol, lu)
	}
}

func TestFactorizeSPD(t *testing.T) {
	n := 48
	// SPD input: AᵀA + n·I from a random seed.
	g := RandomMatrix(n, 21)
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += g.At(k, i) * g.At(k, j)
			}
			a.Set(i, j, s)
		}
		a.Add(i, i, float64(n))
	}
	l, rep, err := FactorizeSPD(a, Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalBytes() == 0 {
		t.Fatal("no volume metered")
	}
	var worst float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k <= min(i, j); k++ {
				s += l.At(i, k) * l.At(j, k)
			}
			if d := math.Abs(s - a.At(i, j)); d > worst {
				worst = d
			}
		}
	}
	if worst > 1e-8*mat.NormInf(a) {
		t.Fatalf("Cholesky residual %v", worst)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestFactorizeOutOfCore(t *testing.T) {
	n, m := 64, 3*16*16
	a := RandomMatrix(n, 4)
	loads, stores, err := FactorizeOutOfCore(a, m)
	if err != nil {
		t.Fatal(err)
	}
	if loads <= 0 || stores <= 0 {
		t.Fatalf("no traffic: %d/%d", loads, stores)
	}
	if float64(loads+stores) < LowerBoundLU(n, 1, float64(m)) {
		t.Fatal("measured sequential I/O below the lower bound")
	}
}

func TestModelPerRankElementsExported(t *testing.T) {
	// memory <= 0 resolves to the paper's maximum-replication setting; the
	// Table 2 value at N=16384, P=1024 is ≈44.8 GB total.
	v := ModelPerRankElements(COnfLUX, 16384, 1024, 0)
	gb := v * 1024 * 8 / 1e9
	if gb < 38 || gb > 52 {
		t.Fatalf("model %v GB, Table 2 reports 44.77", gb)
	}
}
