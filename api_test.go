package conflux

import (
	"math"
	"strings"
	"testing"

	"repro/internal/mat"
	"repro/internal/testutil"
	"repro/internal/trisolve"
)

func residual(a, lu *Matrix, perm []int) float64 {
	return testutil.ResidualLUPerm(a, lu, perm)
}

func TestFactorizeAllAlgorithms(t *testing.T) {
	a := RandomMatrix(64, 7)
	for _, algo := range []Algorithm{COnfLUX, CANDMC, LibSci, SLATE} {
		res, err := Factorize(a, Options{Ranks: 8, Algorithm: algo})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if r := residual(a, res.LU, res.Perm); r > 1e-11 {
			t.Fatalf("%s residual %v", algo, r)
		}
		if res.Volume == nil || res.Volume.TotalBytes() == 0 {
			t.Fatalf("%s: no volume report", algo)
		}
	}
}

func TestFactorizeDefaults(t *testing.T) {
	a := RandomMatrix(32, 3)
	res, err := Factorize(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r := residual(a, res.LU, res.Perm); r > 1e-11 {
		t.Fatalf("residual %v", r)
	}
}

func TestFactorizeRejectsNonSquare(t *testing.T) {
	if _, err := Factorize(NewMatrix(3, 4), Options{}); err == nil {
		t.Fatal("expected shape error")
	}
	if _, err := Factorize(nil, Options{}); err == nil {
		t.Fatal("expected nil error")
	}
}

func TestSolveRoundTrip(t *testing.T) {
	n := 48
	a := RandomMatrix(n, 11)
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += a.At(i, j) * x[j]
		}
		b[i] = s
	}
	got, err := Solve(a, b, Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(got[i]-x[i]) > 1e-8 {
			t.Fatalf("x[%d]=%v want %v", i, got[i], x[i])
		}
	}
}

func TestSolveFactoredReuse(t *testing.T) {
	n := 32
	a := RandomMatrix(n, 5)
	res, err := Factorize(a, Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Two different right-hand sides against one factorization.
	for seed := 0; seed < 2; seed++ {
		b := make([]float64, n)
		for i := range b {
			b[i] = float64((i*7+seed)%5) - 2
		}
		x, err := res.SolveFactored(b)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < n; j++ {
				s += a.At(i, j) * x[j]
			}
			if math.Abs(s-b[i]) > 1e-8 {
				t.Fatalf("seed %d: residual at %d: %v", seed, i, s-b[i])
			}
		}
	}
}

// TestSolveManyPropertyAndDeterminism is the solve-path property test:
// random A, random multi-RHS B, backward error below tolerance, and the
// solve volume/time reports bit-deterministic across repetitions.
func TestSolveManyPropertyAndDeterminism(t *testing.T) {
	n, nrhs := 96, 5
	a := mat.Random(n, n, 71) // general matrix: the factors carry real pivoting
	b := mat.Random(n, nrhs, 72)
	x, res, err := SolveMany(a, b, Options{Ranks: 6, SolveRanks: 6})
	if err != nil {
		t.Fatal(err)
	}
	if be := testutil.SolveBackwardError(a, x, b); be > 1e-9 {
		t.Fatalf("backward error %v", be)
	}
	if res.SolveBytes <= 0 || res.SolveTime <= 0 || res.SolveVolume == nil {
		t.Fatalf("solve not metered: bytes=%d time=%v", res.SolveBytes, res.SolveTime)
	}
	fwd := res.SolveVolume.ByPhase[trisolve.PhaseFwd]
	back := res.SolveVolume.ByPhase[trisolve.PhaseBack]
	if fwd <= 0 || back <= 0 {
		t.Fatalf("solve phases missing: %v", res.SolveVolume.ByPhase)
	}
	// Repeat the identical solve: metered bytes and simulated makespan must
	// accumulate by bit-identical increments.
	bytes1, time1 := res.SolveBytes, res.SolveTime
	if _, err := res.SolveManyFactored(b); err != nil {
		t.Fatal(err)
	}
	if res.SolveBytes != 2*bytes1 || res.SolveTime != 2*time1 {
		t.Fatalf("solve replay not deterministic: %d/%v then %d/%v",
			bytes1, time1, res.SolveBytes-bytes1, res.SolveTime-time1)
	}
}

// TestSolveRanksIndependentOfFactorRanks: the solve phase may run on a
// different simulated machine size than the factorization.
func TestSolveRanksIndependentOfFactorRanks(t *testing.T) {
	n := 64
	a := RandomMatrix(n, 9)
	b := mat.Random(n, 2, 10)
	x, res, err := SolveMany(a, b, Options{Ranks: 4, SolveRanks: 9})
	if err != nil {
		t.Fatal(err)
	}
	if be := testutil.SolveBackwardError(a, x, b); be > 1e-10 {
		t.Fatalf("backward error %v", be)
	}
	if res.SolveVolume.P != 9 {
		t.Fatalf("solve world size %d, want 9", res.SolveVolume.P)
	}
}

// TestSolveRefinement: bounded iterative refinement keeps the answer at
// direct-solve quality (or better) and meters every extra distributed sweep.
func TestSolveRefinement(t *testing.T) {
	n := 80
	a := mat.Random(n, n, 33)
	b := mat.Random(n, 3, 34)
	direct, dres, err := SolveMany(a, b, Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	refined, rres, err := SolveMany(a, b, Options{Ranks: 4, RefineSweeps: 2})
	if err != nil {
		t.Fatal(err)
	}
	beDirect := testutil.SolveBackwardError(a, direct, b)
	beRefined := testutil.SolveBackwardError(a, refined, b)
	if beRefined > beDirect*10 || beRefined > 1e-10 {
		t.Fatalf("refined backward error %v vs direct %v", beRefined, beDirect)
	}
	if rres.SolveTime < dres.SolveTime {
		t.Fatalf("refinement sweeps unmetered: %v < %v", rres.SolveTime, dres.SolveTime)
	}
}

// TestSolveFactoredSingular pins the zero-pivot satellite on both solve
// paths: the sequential fallback and the distributed engine must report a
// singular factor instead of silently producing Inf/NaN.
func TestSolveFactoredSingular(t *testing.T) {
	n := 8
	lu := NewMatrix(n, n)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
		lu.Set(i, i, 1)
	}
	lu.Set(5, 5, 0) // singular U
	hand := &Result{LU: lu, Perm: perm}
	if _, err := hand.SolveFactored(make([]float64, n)); err == nil || !strings.Contains(err.Error(), "singular factor") {
		t.Fatalf("sequential path: err = %v", err)
	}

	a := RandomMatrix(32, 13)
	res, err := Factorize(a, Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	res.LU.Set(17, 17, 0) // corrupt one U pivot
	if _, err := res.SolveFactored(make([]float64, 32)); err == nil || !strings.Contains(err.Error(), "singular factor") {
		t.Fatalf("distributed path: err = %v", err)
	}
}

// TestCommVolumeSolveEndToEnd: one volume-mode world replays factorization
// plus the distributed solve; the report carries both phase families, scales
// linearly in Options.RHS, and is deterministic.
func TestCommVolumeSolveEndToEnd(t *testing.T) {
	n := 128
	one, err := CommVolumeSolve(n, Options{Ranks: 8, RHS: 1})
	if err != nil {
		t.Fatal(err)
	}
	four, err := CommVolumeSolve(n, Options{Ranks: 8, RHS: 4})
	if err != nil {
		t.Fatal(err)
	}
	solveBytes := func(rep *VolumeReport) int64 {
		return rep.ByPhase[trisolve.PhaseFwd] + rep.ByPhase[trisolve.PhaseBack]
	}
	if solveBytes(one) <= 0 {
		t.Fatalf("no solve traffic: %v", one.ByPhase)
	}
	if got := solveBytes(four); got != 4*solveBytes(one) {
		t.Fatalf("solve bytes %d not 4x %d", got, solveBytes(one))
	}
	if AlgorithmBytes(one) <= solveBytes(one) {
		t.Fatal("factorization phases missing from the end-to-end report")
	}
	again, err := CommVolumeSolve(n, Options{Ranks: 8, RHS: 1})
	if err != nil {
		t.Fatal(err)
	}
	if again.TotalBytes() != one.TotalBytes() || again.Time.Makespan != one.Time.Makespan {
		t.Fatal("end-to-end replay not deterministic")
	}
}

// TestCommVolumeSolveHonorsSolveRanks: the volume replay must put the solve
// phase on Options.SolveRanks like the numeric path, not on Ranks. At
// SolveRanks=4 (2x2 grid) each pass moves (2+2-2)·N·NRHS elements.
func TestCommVolumeSolveHonorsSolveRanks(t *testing.T) {
	n, nrhs := 128, 2
	rep, err := CommVolumeSolve(n, Options{Ranks: 8, SolveRanks: 4, RHS: nrhs})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(2 * n * nrhs * 8)
	if rep.ByPhase[trisolve.PhaseFwd] != want || rep.ByPhase[trisolve.PhaseBack] != want {
		t.Fatalf("fwd=%d back=%d want %d", rep.ByPhase[trisolve.PhaseFwd], rep.ByPhase[trisolve.PhaseBack], want)
	}
	// SolveRanks larger than Ranks grows the world to fit both phases.
	big, err := CommVolumeSolve(n, Options{Ranks: 4, SolveRanks: 9, RHS: nrhs})
	if err != nil {
		t.Fatal(err)
	}
	if big.P != 9 {
		t.Fatalf("world size %d, want 9", big.P)
	}
	wantBig := int64((3 + 3 - 2) * n * nrhs * 8) // 3x3 grid
	if big.ByPhase[trisolve.PhaseFwd] != wantBig {
		t.Fatalf("fwd=%d want %d", big.ByPhase[trisolve.PhaseFwd], wantBig)
	}
}

func TestCommVolumeOrdering(t *testing.T) {
	// The paper's claim at API level: COnfLUX communicates less than the 2D
	// codes at moderate scale.
	n, p := 256, 16
	cfx, err := CommVolume(COnfLUX, n, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := CommVolume(LibSci, n, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if AlgorithmBytes(cfx) >= AlgorithmBytes(lib) {
		t.Fatalf("COnfLUX %d >= LibSci %d", AlgorithmBytes(cfx), AlgorithmBytes(lib))
	}
}

func TestResultExposesSimulatedTime(t *testing.T) {
	a := RandomMatrix(48, 5)
	res, err := Factorize(a, Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 || res.CommTime <= 0 {
		t.Fatalf("no simulated time: Time=%v CommTime=%v", res.Time, res.CommTime)
	}
	if res.CommTime > res.Time {
		t.Fatalf("CommTime %v exceeds makespan %v", res.CommTime, res.Time)
	}
	if res.Volume.Time == nil || res.Volume.Time.Makespan != res.Time {
		t.Fatal("Result.Time must mirror Volume.Time.Makespan")
	}
}

func TestCommVolumeMachineScalesTime(t *testing.T) {
	n, p := 128, 8
	slow, err := CommVolumeMachine(COnfLUX, n, p, 0, Machine{Alpha: 1e-5, Beta: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := CommVolumeMachine(COnfLUX, n, p, 0, Machine{Alpha: 1e-7, Beta: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	// Bytes are machine-independent; time is not.
	if slow.TotalBytes() != fast.TotalBytes() {
		t.Fatalf("volume changed with machine: %d vs %d", slow.TotalBytes(), fast.TotalBytes())
	}
	if slow.Time.Makespan <= fast.Time.Makespan {
		t.Fatalf("slower machine not slower: %v <= %v", slow.Time.Makespan, fast.Time.Makespan)
	}
}

func TestLowerBoundsPositiveAndOrdered(t *testing.T) {
	n, p, m := 4096, 64, 1e6
	lu := LowerBoundLU(n, p, m)
	mmm := LowerBoundMMM(n, p, m)
	chol := LowerBoundCholesky(n, p, m)
	if lu <= 0 || mmm <= 0 || chol <= 0 {
		t.Fatalf("bounds must be positive: %v %v %v", lu, mmm, chol)
	}
	// MMM moves 3× the leading volume of LU's 2/3·N³ (N³ vs N³/3 vertices).
	if mmm <= lu {
		t.Fatalf("MMM bound %v should exceed LU bound %v", mmm, lu)
	}
	// Cholesky does half of LU's work.
	if chol >= lu {
		t.Fatalf("Cholesky bound %v should be below LU bound %v", chol, lu)
	}
}

func TestFactorizeSPD(t *testing.T) {
	n := 48
	// SPD input: AᵀA + n·I from a random seed.
	g := RandomMatrix(n, 21)
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += g.At(k, i) * g.At(k, j)
			}
			a.Set(i, j, s)
		}
		a.Add(i, i, float64(n))
	}
	l, rep, err := FactorizeSPD(a, Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalBytes() == 0 {
		t.Fatal("no volume metered")
	}
	if r := testutil.ResidualCholesky(a, l); r > 1e-10 {
		t.Fatalf("Cholesky residual %v", r)
	}
}

func TestFactorizeOutOfCore(t *testing.T) {
	n, m := 64, 3*16*16
	a := RandomMatrix(n, 4)
	loads, stores, err := FactorizeOutOfCore(a, m)
	if err != nil {
		t.Fatal(err)
	}
	if loads <= 0 || stores <= 0 {
		t.Fatalf("no traffic: %d/%d", loads, stores)
	}
	if float64(loads+stores) < LowerBoundLU(n, 1, float64(m)) {
		t.Fatal("measured sequential I/O below the lower bound")
	}
}

func TestModelPerRankElementsExported(t *testing.T) {
	// memory <= 0 resolves to the paper's maximum-replication setting; the
	// Table 2 value at N=16384, P=1024 is ≈44.8 GB total.
	v := ModelPerRankElements(COnfLUX, 16384, 1024, 0)
	gb := v * 1024 * 8 / 1e9
	if gb < 38 || gb > 52 {
		t.Fatalf("model %v GB, Table 2 reports 44.77", gb)
	}
}
