package conflux

import (
	"reflect"
	"runtime"
	"testing"
)

// volumeUnder runs one volume replay with the given options and strips the
// executor provenance stamps (Executor, Workers) so reports can be
// compared for bit-identical content across executors and widths. The
// Topology stamp is kept — same-preset comparisons agree on it, and the
// fault tests assert it.
func volumeUnder(t *testing.T, n int, opts ...Option) *VolumeReport {
	t.Helper()
	s, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.CommVolume(t.Context(), n)
	if err != nil {
		t.Fatal(err)
	}
	rep.Executor = ""
	rep.Workers = 0
	return rep
}

// TestFlatTopologyParity pins the tentpole's backward-compatibility edge:
// the "flat" topology preset evaluates the exact float expression of the
// plain α-β machine, so every engine's report is bit-identical with and
// without it, at every event-window width. A single ulp of drift here
// would split the planner cache and unpin every PR 2/6/7 parity suite.
func TestFlatTopologyParity(t *testing.T) {
	n, p := 96, 8
	for _, algo := range Engines() {
		base := volumeUnder(t, n, WithRanks(p), WithAlgorithm(algo))
		for _, w := range []int{1, 2, runtime.NumCPU()} {
			flat := volumeUnder(t, n, WithRanks(p), WithAlgorithm(algo),
				WithTopologyPreset("flat"), WithExecutor("events"), WithWorkers(w))
			if flat.Time.Topology != "flat" {
				t.Fatalf("%s workers=%d: topology stamp %q, want flat", algo, w, flat.Time.Topology)
			}
			flat.Time.Topology = "" // provenance; everything else must match bit-for-bit
			if !reflect.DeepEqual(base, flat) {
				t.Fatalf("%s workers=%d: flat topology is not bit-identical to the plain machine", algo, w)
			}
		}
	}
}

// TestFlatTopologyStamp: the preset is still visible as provenance even
// though the numbers are unchanged.
func TestFlatTopologyStamp(t *testing.T) {
	s, err := New(WithRanks(4), WithTopologyPreset("flat"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.CommVolume(t.Context(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Time.Topology != "flat" {
		t.Fatalf("topology stamp %q, want flat", rep.Time.Topology)
	}
}

// TestTopologyWidthDeterminism is the §14 determinism pin: under every
// non-flat preset — including the contended ones, whose FIFO ingress-link
// state is the one piece of topology state mutated during a run — reports
// are bit-identical across both executors and every event-window width.
// Run under -race this also stresses that the link state is properly
// serialized under the shard mutexes.
func TestTopologyWidthDeterminism(t *testing.T) {
	n, p := 96, 8
	for _, preset := range TopologyPresets() {
		preset := preset
		t.Run(preset, func(t *testing.T) {
			t.Parallel()
			base := volumeUnder(t, n, WithRanks(p), WithTopologyPreset(preset),
				WithExecutor("events"), WithWorkers(1))
			gor := volumeUnder(t, n, WithRanks(p), WithTopologyPreset(preset),
				WithExecutor("goroutines"))
			if !reflect.DeepEqual(base, gor) {
				t.Fatal("goroutine executor diverged from the serial event executor")
			}
			for _, w := range []int{2, 4, runtime.NumCPU()} {
				wide := volumeUnder(t, n, WithRanks(p), WithTopologyPreset(preset),
					WithExecutor("events"), WithWorkers(w))
				if !reflect.DeepEqual(base, wide) {
					t.Fatalf("width %d diverged from the serial schedule", w)
				}
			}
		})
	}
}

// TestContentionCharges: the contended hier preset can only slow a run
// down relative to its uncontended twin — ingress serialization adds wait
// time, never removes it — and must change the makespan on a schedule
// with concurrent deliveries into one rank. The point is chosen large
// enough for incast to actually overlap on a node ingress link: at toy
// sizes every delivery drains before the next send is even in flight and
// the contended report is correctly identical.
func TestContentionCharges(t *testing.T) {
	n, p := 512, 32
	un := volumeUnder(t, n, WithRanks(p), WithTopologyPreset("hier"))
	con := volumeUnder(t, n, WithRanks(p), WithTopologyPreset("hier-contended"))
	if con.Time.Makespan <= un.Time.Makespan {
		t.Fatalf("contended makespan %v not above uncontended %v",
			con.Time.Makespan, un.Time.Makespan)
	}
	if un.TotalBytes() != con.TotalBytes() {
		t.Fatal("contention changed communication volume — it must only re-time the schedule")
	}
}

// TestStragglerReattribution: slowing one rank's transfers must increase
// the makespan, inflate the straggler's own clock, and move the critical
// path off the unfaulted critical rank — re-attribution lands on the
// straggler or on a rank downstream of its late sends (a receiver is
// never earlier than the data it waits for), and either way the faulted
// report names a different bottleneck than the clean one.
func TestStragglerReattribution(t *testing.T) {
	n, p := 96, 8
	base := volumeUnder(t, n, WithRanks(p), WithTopologyPreset("hier"))
	straggler := (base.Time.CritRank + 3) % p // any non-critical rank
	faulted := volumeUnder(t, n, WithRanks(p), WithTopologyPreset("hier"),
		WithFaults(FaultPlan{Stragglers: []Straggler{{Rank: straggler, Factor: 64}}}))
	if faulted.Time.Makespan <= base.Time.Makespan {
		t.Fatalf("straggler did not increase the makespan: %v vs %v",
			faulted.Time.Makespan, base.Time.Makespan)
	}
	if faulted.Time.Clock[straggler] <= base.Time.Clock[straggler] {
		t.Fatalf("straggler clock did not inflate: %v vs %v",
			faulted.Time.Clock[straggler], base.Time.Clock[straggler])
	}
	if faulted.Time.CritRank == base.Time.CritRank {
		t.Fatalf("critical path stayed on rank %d — fault left attribution unchanged",
			base.Time.CritRank)
	}
	if faulted.Time.Topology != "hier+faults" {
		t.Fatalf("topology stamp %q, want hier+faults", faulted.Time.Topology)
	}
}

// TestLinkDegradation: an 8x-degraded inter-node link raises the makespan;
// faults compose with a plain (no-topology) session by wrapping the flat
// machine.
func TestLinkDegradation(t *testing.T) {
	n, p := 96, 8
	base := volumeUnder(t, n, WithRanks(p), WithTopologyPreset("hier"))
	faulted := volumeUnder(t, n, WithRanks(p), WithTopologyPreset("hier"),
		WithFaults(FaultPlan{Links: []LinkFault{{FromNode: -1, ToNode: 0, Factor: 8}}}))
	if faulted.Time.Makespan <= base.Time.Makespan {
		t.Fatalf("degraded link did not increase the makespan: %v vs %v",
			faulted.Time.Makespan, base.Time.Makespan)
	}
	flat := volumeUnder(t, n, WithRanks(p))
	flatFaulted := volumeUnder(t, n, WithRanks(p),
		WithFaults(FaultPlan{Stragglers: []Straggler{{Rank: 0, Factor: 4}}}))
	if flatFaulted.Time.Makespan <= flat.Time.Makespan {
		t.Fatalf("fault plan on a plain session had no effect: %v vs %v",
			flatFaulted.Time.Makespan, flat.Time.Makespan)
	}
}

// TestTopologyOptionValidation: invalid specs and plans fail at New with
// the public error surface, not at run time.
func TestTopologyOptionValidation(t *testing.T) {
	if _, err := New(WithTopologyPreset("torus")); err == nil {
		t.Fatal("unknown preset accepted")
	}
	if _, err := New(WithTopology(Topology{Preset: "hier", Contention: 7})); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if _, err := New(WithFaults(FaultPlan{Stragglers: []Straggler{{Rank: 0, Factor: -1}}})); err == nil {
		t.Fatal("invalid fault plan accepted")
	}
	cfg, err := New(WithRanks(4), WithTopologyPreset("dragonfly-contended"),
		WithFaults(FaultPlan{Links: []LinkFault{{FromNode: 0, ToNode: 1, Factor: 2}}}))
	if err != nil {
		t.Fatal(err)
	}
	c := cfg.Config()
	if c.Topology.Preset != "dragonfly" || c.Topology.Contention != 1 {
		t.Fatalf("resolved spec %+v, want dragonfly family with contention", c.Topology)
	}
	if c.Faults == "" {
		t.Fatal("Config dropped the fault plan")
	}
}
