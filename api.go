// Package conflux (module "repro") is the public API of this reproduction of
// "On the Parallel I/O Optimality of Linear Algebra Kernels: Near-Optimal LU
// Factorization" (Kwasniewski et al., PPoPP 2021).
//
// It exposes three capabilities:
//
//   - Factorize / Solve / SolveMany: run the COnfLUX near-communication-
//     optimal LU factorization (or any of the paper's baselines) and the
//     distributed multi-RHS triangular solve on a simulated P-rank
//     machine, with numeric results gathered at the caller and both
//     phases metered and timed (DESIGN.md §8).
//   - CommVolume: replay any algorithm's communication schedule in volume
//     mode and return the metered traffic — the paper's measurement
//     methodology (§8).
//   - LowerBoundLU and friends: the X-Partitioning I/O lower bounds of
//     §3–§6.
//
// See README.md for a tour and DESIGN.md for the system inventory.
package conflux

import (
	"fmt"
	"time"

	"repro/internal/blas"
	"repro/internal/cholesky"
	"repro/internal/conflux"
	"repro/internal/costmodel"
	"repro/internal/lapack"
	"repro/internal/lu25d"
	"repro/internal/lu2d"
	"repro/internal/mat"
	"repro/internal/oocore"
	"repro/internal/smpi"
	"repro/internal/trace"
	"repro/internal/trisolve"
	"repro/internal/xpart"
)

// Matrix is a dense row-major float64 matrix (re-exported).
type Matrix = mat.Matrix

// VolumeReport is a communication-volume report (re-exported). Its Time
// field carries the simulated-time view of the same run (TimeReport).
type VolumeReport = trace.Report

// TimeReport is the α-β simulated-time report of a run: makespan, per-rank
// busy/wait split, and critical-path phase attribution (re-exported).
type TimeReport = trace.TimeReport

// Machine is the α-β (latency–bandwidth) machine parameter set the
// simulated clocks advance with (re-exported from internal/costmodel).
type Machine = costmodel.Machine

// DefaultMachine returns paper-scale interconnect parameters (Piz
// Daint-class: ~1 µs latency, ~10 GB/s bandwidth).
func DefaultMachine() Machine { return costmodel.DefaultMachine() }

// NewMatrix allocates a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix { return mat.New(r, c) }

// RandomMatrix returns a deterministic random n×n matrix, diagonally
// boosted so factorizations are well conditioned.
func RandomMatrix(n int, seed uint64) *Matrix { return mat.RandomDiagDominant(n, seed) }

// Algorithm names one of the paper's four measured implementations.
type Algorithm = costmodel.Algorithm

// The four algorithms of the paper's evaluation (Table 2).
const (
	COnfLUX = costmodel.COnfLUX
	CANDMC  = costmodel.CANDMC
	LibSci  = costmodel.LibSci
	SLATE   = costmodel.SLATE
)

// Options configures a distributed factorization.
type Options struct {
	// Ranks is the number of simulated processors P (default 4).
	Ranks int
	// Memory is the per-rank fast memory M in elements (default: enough
	// for maximum replication, M = N²/P^(2/3), the paper's setting).
	Memory float64
	// Algorithm selects the implementation (default COnfLUX).
	Algorithm Algorithm
	// Timeout bounds the simulated run (default 10 minutes).
	Timeout time.Duration
	// Machine sets the α-β parameters of the simulated-time model. The
	// zero value selects DefaultMachine() (paper-scale interconnect) —
	// an all-free machine is therefore not expressible here; set one
	// parameter nonzero (e.g. Alpha: 0, Beta: 1e-30) to isolate a term.
	Machine Machine
	// SolveRanks is the number of simulated ranks the distributed
	// triangular solve runs on (default: Ranks). The solve uses a 2D
	// grid over all SolveRanks, independent of the factorization grid.
	SolveRanks int
	// RHS is the number of right-hand sides volume-mode solve replays
	// generate (default 1). Numeric solves infer the width from B.
	RHS int
	// RefineSweeps bounds the iterative-refinement loop of Solve and
	// SolveMany: after the direct solve, up to RefineSweeps rounds of
	// residual recomputation and distributed re-solve (default 0: none).
	RefineSweeps int
}

func (o Options) withDefaults(n int) Options {
	if o.Ranks <= 0 {
		o.Ranks = 4
	}
	if o.Memory <= 0 {
		o.Memory = costmodel.MaxMemoryParams(n, o.Ranks).M
	}
	if o.Algorithm == "" {
		o.Algorithm = COnfLUX
	}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Minute
	}
	if o.Machine == (Machine{}) {
		o.Machine = DefaultMachine()
	}
	if o.SolveRanks <= 0 {
		o.SolveRanks = o.Ranks
	}
	if o.RHS <= 0 {
		o.RHS = 1
	}
	return o
}

// Result is the outcome of a distributed factorization.
type Result struct {
	// LU holds the combined factors: row i of LU is row Perm[i] of P·A,
	// unit-lower L below the diagonal, U on and above.
	LU *Matrix
	// Perm maps factor position -> original row index (A[Perm,:] = L·U).
	Perm []int
	// Volume is the communication-volume report of the run; Volume.Time
	// holds the full simulated-time detail.
	Volume *VolumeReport
	// Time is the simulated α-β makespan of the run in seconds: the final
	// logical clock of the slowest rank, waits included. The simulation
	// times algorithm communication only — computation is not modeled, and
	// the layout/collect housekeeping phases are untimed, mirroring the
	// AlgorithmBytes volume exclusion (§7.4).
	Time float64
	// CommTime is the critical rank's pure transfer time (α+β·bytes work,
	// excluding waits): Time = CommTime + critical-rank wait.
	CommTime float64
	// SolveVolume is the communication report of the most recent
	// distributed solve run on these factors (nil until one runs). Its
	// timed phases are trisolve's "solve.fwd" and "solve.back"; the RHS
	// scatter and solution gather are labeled layout/collect and excluded,
	// mirroring the factorization accounting.
	SolveVolume *VolumeReport
	// SolveBytes accumulates the solve-phase traffic (forward plus back
	// substitution bytes) across every distributed solve on this Result.
	SolveBytes int64
	// SolveTime accumulates the simulated α-β makespans of the
	// distributed solves on this Result, in seconds.
	SolveTime float64

	// opts records the factorization run configuration; nil marks a
	// hand-assembled Result, for which solves fall back to the local
	// sequential substitution.
	opts *Options
}

// Factorize runs a distributed LU factorization of a (n×n) on a simulated
// machine and returns the gathered factors. The input is not modified.
func Factorize(a *Matrix, opts Options) (*Result, error) {
	if a == nil || a.Rows != a.Cols {
		return nil, fmt.Errorf("conflux: Factorize requires a square matrix")
	}
	n := a.Rows
	o := opts.withDefaults(n)
	var out *Result
	rep, err := smpi.RunTimeoutMachine(o.Ranks, true, o.Machine, o.Timeout, func(c *smpi.Comm) error {
		lu, perm, err := runAlgorithm(c, a, n, o)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			out = &Result{LU: lu, Perm: perm}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if out == nil {
		return nil, fmt.Errorf("conflux: no result gathered at rank 0")
	}
	out.Volume = rep
	out.Time = rep.Time.Makespan
	out.CommTime = rep.Time.CritBusy()
	out.opts = &o
	return out, nil
}

func runAlgorithm(c *smpi.Comm, a *Matrix, n int, o Options) (*Matrix, []int, error) {
	var in *Matrix
	if c.Rank() == 0 {
		in = a
	}
	switch o.Algorithm {
	case COnfLUX:
		res, err := conflux.Run(c, in, conflux.DefaultOptions(n, o.Ranks, o.Memory))
		if err != nil {
			return nil, nil, err
		}
		return res.LU, res.Perm, nil
	case CANDMC:
		res, err := lu25d.Run(c, in, lu25d.CANDMCOptions(n, o.Ranks, o.Memory))
		if err != nil {
			return nil, nil, err
		}
		return res.LU, res.Perm, nil
	case LibSci, SLATE:
		var opt lu2d.Options
		if o.Algorithm == LibSci {
			opt = lu2d.LibSciOptions(n, o.Ranks, 32)
		} else {
			opt = lu2d.SLATEOptions(n, o.Ranks)
		}
		res, err := lu2d.Run(c, in, opt)
		if err != nil {
			return nil, nil, err
		}
		return res.LU, lapack.PermFromIpiv(res.Ipiv, n), nil
	default:
		return nil, nil, fmt.Errorf("conflux: unknown algorithm %q", o.Algorithm)
	}
}

// Solve factorizes a and solves a·x = b, returning x. It uses COnfLUX
// unless opts selects another algorithm; the triangular solve runs
// distributed on opts.SolveRanks simulated ranks, with opts.RefineSweeps
// rounds of iterative refinement.
func Solve(a *Matrix, b []float64, opts Options) ([]float64, error) {
	if a == nil || a.Rows != a.Cols || len(b) != a.Rows {
		return nil, fmt.Errorf("conflux: Solve shape mismatch")
	}
	bm := mat.FromSlice(len(b), 1, append([]float64(nil), b...))
	x, _, err := SolveMany(a, bm, opts)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(b))
	for i := range out {
		out[i] = x.At(i, 0)
	}
	return out, nil
}

// SolveMany factorizes a and solves a·X = B for every column of B at once
// on the distributed machine, returning X and the factorization Result
// (whose SolveVolume/SolveBytes/SolveTime fields report the metered solve
// phase). With opts.RefineSweeps > 0, each sweep recomputes the residual
// R = B − A·X and re-solves distributed for the correction, stopping early
// once the residual is at rounding level.
func SolveMany(a, b *Matrix, opts Options) (*Matrix, *Result, error) {
	if a == nil || a.Rows != a.Cols || b == nil || b.Rows != a.Rows {
		return nil, nil, fmt.Errorf("conflux: SolveMany shape mismatch")
	}
	res, err := Factorize(a, opts)
	if err != nil {
		return nil, nil, err
	}
	x, err := res.SolveManyFactored(b)
	if err != nil {
		return nil, nil, err
	}
	o := opts.withDefaults(a.Rows)
	normB := mat.NormInf(b)
	for s := 0; s < o.RefineSweeps; s++ {
		resid := b.Clone()
		blas.Gemm(-1, a, x, 1, resid)
		if mat.NormInf(resid) <= 1e-14*normB {
			break
		}
		d, err := res.SolveManyFactored(resid)
		if err != nil {
			return nil, nil, err
		}
		x.AddFrom(d)
	}
	return x, res, nil
}

// SolveFactored solves a·x = b using already-computed factors. Results
// produced by Factorize delegate to the distributed solve (metered into
// r.SolveVolume/SolveBytes/SolveTime); hand-assembled Results fall back to
// a local sequential substitution. Either path reports an error on a
// singular factor (zero U diagonal) instead of producing Inf/NaN.
func (r *Result) SolveFactored(b []float64) ([]float64, error) {
	n := len(r.Perm)
	if len(b) != n {
		return nil, fmt.Errorf("conflux: rhs length %d != %d", len(b), n)
	}
	if r.LU == nil || r.LU.Phantom() {
		return nil, fmt.Errorf("conflux: factors unavailable (volume-mode run?)")
	}
	if r.opts == nil {
		return r.solveSequential(b)
	}
	bm := mat.FromSlice(n, 1, append([]float64(nil), b...))
	x, err := r.SolveManyFactored(bm)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = x.At(i, 0)
	}
	return out, nil
}

// SolveManyFactored solves a·X = B (B is n×nrhs) using already-computed
// factors. For Results produced by Factorize the solve runs distributed on
// SolveRanks simulated ranks under the recorded α-β machine; the run's
// volume report replaces r.SolveVolume and its solve-phase bytes and
// makespan accumulate into r.SolveBytes / r.SolveTime. Not safe for
// concurrent use on one Result.
func (r *Result) SolveManyFactored(b *Matrix) (*Matrix, error) {
	n := len(r.Perm)
	if b == nil || b.Rows != n || b.Cols < 1 {
		return nil, fmt.Errorf("conflux: SolveManyFactored rhs shape mismatch")
	}
	if r.LU == nil || r.LU.Phantom() {
		return nil, fmt.Errorf("conflux: factors unavailable (volume-mode run?)")
	}
	if r.opts == nil {
		x := mat.New(n, b.Cols)
		col := make([]float64, n)
		for j := 0; j < b.Cols; j++ {
			for i := 0; i < n; i++ {
				col[i] = b.At(i, j)
			}
			xj, err := r.solveSequential(col)
			if err != nil {
				return nil, err
			}
			for i := 0; i < n; i++ {
				x.Set(i, j, xj[i])
			}
		}
		return x, nil
	}
	o := *r.opts
	pb := mat.PermuteRows(b, r.Perm)
	opt := trisolve.DefaultOptions(n, o.SolveRanks, b.Cols)
	var x *Matrix
	rep, err := smpi.RunTimeoutMachine(opt.Grid.Total, true, o.Machine, o.Timeout, func(c *smpi.Comm) error {
		var lu, rhs *mat.Matrix
		if c.Rank() == 0 {
			lu, rhs = r.LU, pb
		}
		res, err := trisolve.Run(c, lu, rhs, opt)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			x = res.X
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if x == nil {
		return nil, fmt.Errorf("conflux: no solution gathered at rank 0")
	}
	r.SolveVolume = rep
	r.SolveBytes += rep.ByPhase[trisolve.PhaseFwd] + rep.ByPhase[trisolve.PhaseBack]
	r.SolveTime += rep.Time.Makespan
	return x, nil
}

// solveSequential is the local O(n²) substitution used for hand-assembled
// Results (no recorded run configuration to rebuild a simulated world from).
func (r *Result) solveSequential(b []float64) ([]float64, error) {
	n := len(r.Perm)
	x := make([]float64, n)
	for i, p := range r.Perm {
		x[i] = b[p]
	}
	// Forward substitution L·y = Pb (unit diagonal).
	for i := 0; i < n; i++ {
		row := r.LU.Row(i)
		s := x[i]
		for k := 0; k < i; k++ {
			s -= row[k] * x[k]
		}
		x[i] = s
	}
	// Back substitution U·x = y.
	for i := n - 1; i >= 0; i-- {
		row := r.LU.Row(i)
		if row[i] == 0 {
			return nil, fmt.Errorf("conflux: singular factor: zero pivot on row %d", i)
		}
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= row[k] * x[k]
		}
		x[i] = s / row[i]
	}
	return x, nil
}

// CommVolume replays the algorithm's communication schedule at (n, p) in
// volume mode (no arithmetic, identical byte counts) and returns the report,
// including the simulated α-β time under the default machine (rep.Time).
// Memory defaults to the paper's maximum-replication setting.
func CommVolume(algo Algorithm, n, p int, memory float64) (*VolumeReport, error) {
	return CommVolumeMachine(algo, n, p, memory, Machine{})
}

// CommVolumeMachine is CommVolume with explicit α-β machine parameters for
// the simulated-time model (the zero Machine selects DefaultMachine).
func CommVolumeMachine(algo Algorithm, n, p int, memory float64, m Machine) (*VolumeReport, error) {
	o := Options{Ranks: p, Memory: memory, Algorithm: algo, Machine: m}.withDefaults(n)
	rep, err := smpi.RunTimeoutMachine(o.Ranks, false, o.Machine, o.Timeout, func(c *smpi.Comm) error {
		_, _, err := runAlgorithm(c, nil, n, o)
		return err
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// CommVolumeSolve replays a full factorize-plus-solve schedule at dimension
// n in volume mode on one simulated world: the selected algorithm's
// factorization on opts.Ranks, then the distributed triangular solve with
// opts.RHS right-hand sides on opts.SolveRanks — the same rank counts the
// numeric Solve/SolveMany path uses. The returned report carries the
// factorization phases alongside "solve.fwd"/"solve.back", so the
// end-to-end communication volume and simulated α-β time of a solver
// workload can be read off one run.
func CommVolumeSolve(n int, opts Options) (*VolumeReport, error) {
	o := opts.withDefaults(n)
	sopt := trisolve.DefaultOptions(n, o.SolveRanks, o.RHS)
	world := o.Ranks
	if o.SolveRanks > world {
		world = o.SolveRanks
	}
	// Each phase runs on its own prefix sub-communicator, so the grids see
	// exactly the rank counts the numeric path gives them (grid ranks ==
	// world ranks, which the engines' sub-grid construction relies on).
	prefix := func(p int) []int {
		out := make([]int, p)
		for i := range out {
			out[i] = i
		}
		return out
	}
	factorComm, solveComm := prefix(o.Ranks), prefix(o.SolveRanks)
	rep, err := smpi.RunTimeoutMachine(world, false, o.Machine, o.Timeout, func(c *smpi.Comm) error {
		if c.Rank() < o.Ranks {
			if _, _, err := runAlgorithm(c.Sub("factor", factorComm), nil, n, o); err != nil {
				return err
			}
		}
		if c.Rank() < o.SolveRanks {
			if _, err := trisolve.Run(c.Sub("solve", solveComm), nil, nil, sopt); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// AlgorithmBytes extracts the algorithm-attributed traffic from a report,
// excluding the initial layout scatter and final verification gather.
func AlgorithmBytes(rep *VolumeReport) int64 {
	return rep.AlgorithmBytes(trace.PhaseLayout, trace.PhaseCollect)
}

// FactorizeSPD runs the 2.5D Cholesky factorization (the paper conclusions'
// extension kernel) of a symmetric positive definite matrix on a simulated
// machine, returning the lower factor L with a = L·Lᵀ and the volume report.
func FactorizeSPD(a *Matrix, opts Options) (*Matrix, *VolumeReport, error) {
	if a == nil || a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("conflux: FactorizeSPD requires a square matrix")
	}
	n := a.Rows
	o := opts.withDefaults(n)
	var l *Matrix
	rep, err := smpi.RunTimeout(o.Ranks, true, o.Timeout, func(c *smpi.Comm) error {
		var in *Matrix
		if c.Rank() == 0 {
			in = a
		}
		res, err := cholesky.Run(c, in, cholesky.DefaultOptions(n, o.Ranks, o.Memory))
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			l = res.L
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return l, rep, nil
}

// FactorizeOutOfCore runs the sequential blocked LU against an explicitly
// metered M-element software cache (two-level memory), factoring a in place
// (unpivoted; intended for diagonally dominant inputs) and returning the
// element traffic — the sequential-machine counterpart of the paper's
// parallel measurements, to be compared with LowerBoundLU(n, 1, m).
func FactorizeOutOfCore(a *Matrix, memElements int) (loads, stores int64, err error) {
	st, err := oocore.FactorizeOOC(a, memElements)
	if err != nil {
		return 0, 0, err
	}
	return st.Loads, st.Stores, nil
}

// LowerBoundLU returns the paper's §6 parallel I/O lower bound for LU
// factorization, in elements per processor: 2N³/(3P√M) + N(N−1)/(2P).
// memory <= 0 selects the paper's maximum-replication setting.
func LowerBoundLU(n, p int, memory float64) float64 {
	return xpart.LUParallelLowerBound(n, p, defaultMem(n, p, memory))
}

// LowerBoundMMM returns the matrix-multiplication bound 2N³/(P√M).
func LowerBoundMMM(n, p int, memory float64) float64 {
	return xpart.MMMSequentialLowerBound(n, defaultMem(n, p, memory)) / float64(p)
}

// LowerBoundCholesky returns the Cholesky bound derived with the same
// machinery (≈ N³/(3P√M)).
func LowerBoundCholesky(n, p int, memory float64) float64 {
	return xpart.CholeskyLowerBound(n, defaultMem(n, p, memory)) / float64(p)
}

func defaultMem(n, p int, memory float64) float64 {
	if memory <= 0 {
		return costmodel.MaxMemoryParams(n, p).M
	}
	return memory
}

// ModelPerRankElements returns the Table 2 cost model for an algorithm, in
// elements per rank. memory <= 0 selects the paper's maximum-replication
// setting M = N²/P^(2/3).
func ModelPerRankElements(algo Algorithm, n, p int, memory float64) float64 {
	if memory <= 0 {
		memory = costmodel.MaxMemoryParams(n, p).M
	}
	return costmodel.PerRankElements(algo, costmodel.Params{N: n, P: p, M: memory})
}
