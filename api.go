// Package conflux (module "repro") is the public API of this reproduction of
// "On the Parallel I/O Optimality of Linear Algebra Kernels: Near-Optimal LU
// Factorization" (Kwasniewski et al., PPoPP 2021).
//
// The v2 surface is Session-based: conflux.New constructs a handle on one
// simulated machine configuration via functional options, and its methods —
// Factorize, Solve/SolveMany, CommVolume, CommVolumeSolve, FactorizeSPD —
// run jobs against it under a context.Context:
//
//   - Factorize / Solve / SolveMany run the COnfLUX near-communication-
//     optimal LU factorization (or any registered engine) and the
//     distributed multi-RHS triangular solve on a simulated P-rank
//     machine, with numeric results gathered at the caller and both
//     phases metered and timed (DESIGN.md §8). Numeric payloads run on
//     cache-blocked local kernels whose results are bit-identical at
//     every WithKernelWorkers width (DESIGN.md §15).
//   - CommVolume replays an engine's communication schedule in volume
//     mode and returns the metered traffic — the paper's measurement
//     methodology (§8).
//   - LowerBoundLU and friends expose the X-Partitioning I/O lower bounds
//     of §3–§6.
//
// Engines dispatch through internal/engine's registry (DESIGN.md §9);
// failures carry the typed sentinels ErrShape, ErrSingular,
// ErrUnknownAlgorithm, and ErrCanceled for errors.Is. The original free
// functions (Factorize, SolveMany, CommVolume, ...) remain as deprecated
// thin wrappers over a one-shot Session.
//
// See README.md for a tour and DESIGN.md for the system inventory.
package conflux

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/costmodel"
	"repro/internal/mat"
	"repro/internal/oocore"
	"repro/internal/smpi"
	"repro/internal/trace"
	"repro/internal/trisolve"
	"repro/internal/xpart"
)

// Matrix is a dense row-major float64 matrix (re-exported).
type Matrix = mat.Matrix

// VolumeReport is a communication-volume report (re-exported). Its Time
// field carries the simulated-time view of the same run (TimeReport).
type VolumeReport = trace.Report

// TimeReport is the α-β simulated-time report of a run: makespan, per-rank
// busy/wait split, and critical-path phase attribution (re-exported).
type TimeReport = trace.TimeReport

// Machine is the α-β (latency–bandwidth) machine parameter set the
// simulated clocks advance with (re-exported from internal/costmodel).
// Its IsZero method distinguishes "unset" from the meaningful all-free
// machine, which sessions request explicitly with WithFreeMachine.
type Machine = costmodel.Machine

// DefaultMachine returns paper-scale interconnect parameters (Piz
// Daint-class: ~1 µs latency, ~10 GB/s bandwidth).
func DefaultMachine() Machine { return costmodel.DefaultMachine() }

// NewMatrix allocates a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix { return mat.New(r, c) }

// RandomMatrix returns a deterministic random n×n matrix, diagonally
// boosted so factorizations are well conditioned.
func RandomMatrix(n int, seed uint64) *Matrix { return mat.RandomDiagDominant(n, seed) }

// Algorithm names a registered engine (re-exported).
type Algorithm = costmodel.Algorithm

// The registered engines: the four algorithms of the paper's evaluation
// (Table 2) plus the Cholesky extension kernel. Engines() lists the set at
// runtime.
const (
	COnfLUX  = costmodel.COnfLUX
	CANDMC   = costmodel.CANDMC
	LibSci   = costmodel.LibSci
	SLATE    = costmodel.SLATE
	Cholesky = costmodel.Cholesky
)

// Options configures a distributed factorization.
//
// Deprecated: Options is the v1 configuration surface. Use New with
// functional options (WithRanks, WithAlgorithm, WithMachine, ...) — note
// the v1 zero-value rule below makes an all-free machine inexpressible
// here, which WithFreeMachine fixes.
type Options struct {
	// Ranks is the number of simulated processors P (default 4).
	Ranks int
	// Memory is the per-rank fast memory M in elements (default: enough
	// for maximum replication, M = N²/P^(2/3), the paper's setting).
	Memory float64
	// Algorithm selects the implementation (default COnfLUX).
	Algorithm Algorithm
	// Timeout bounds the simulated run (default 10 minutes).
	Timeout time.Duration
	// Machine sets the α-β parameters of the simulated-time model. For
	// v1 compatibility the zero value (Machine.IsZero) selects
	// DefaultMachine() — an all-free machine is therefore not expressible
	// here; use a Session with WithFreeMachine for that.
	Machine Machine
	// SolveRanks is the number of simulated ranks the distributed
	// triangular solve runs on (default: Ranks). The solve uses a 2D
	// grid over all SolveRanks, independent of the factorization grid.
	SolveRanks int
	// RHS is the number of right-hand sides volume-mode solve replays
	// generate (default 1). Numeric solves infer the width from B.
	RHS int
	// RefineSweeps bounds the iterative-refinement loop of Solve and
	// SolveMany: after the direct solve, up to RefineSweeps rounds of
	// residual recomputation and distributed re-solve (default 0: none).
	RefineSweeps int
}

func (o Options) withDefaults(n int) Options {
	if o.Ranks <= 0 {
		o.Ranks = 4
	}
	if o.Memory <= 0 {
		o.Memory = costmodel.MaxMemoryParams(n, o.Ranks).M
	}
	if o.Algorithm == "" {
		o.Algorithm = COnfLUX
	}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Minute
	}
	if o.Machine.IsZero() {
		o.Machine = DefaultMachine()
	}
	if o.SolveRanks <= 0 {
		o.SolveRanks = o.Ranks
	}
	if o.RHS <= 0 {
		o.RHS = 1
	}
	return o
}

// session resolves the v1 options at dimension n into a one-shot Session —
// the single code path both API generations run on, which is what pins the
// v1 wrappers byte-identical to the v2 surface.
func (o Options) session(n int) (*Session, error) {
	od := o.withDefaults(n)
	return New(
		WithRanks(od.Ranks),
		WithMemory(od.Memory),
		WithAlgorithm(od.Algorithm),
		WithMachine(od.Machine),
		WithSolveRanks(od.SolveRanks),
		WithRHS(od.RHS),
		WithRefineSweeps(od.RefineSweeps),
		WithTimeout(od.Timeout),
	)
}

// Result is the outcome of a distributed factorization.
//
// Concurrency: the factor fields (LU, Perm, Volume, Time, CommTime) are
// written once by Factorize and safe for concurrent reads afterwards.
// Concurrent solves on one Result are safe — the solve accounting
// (SolveVolume, SolveBytes, SolveTime) is mutex-guarded — but those three
// fields must only be read while no solve is in flight.
type Result struct {
	// LU holds the combined factors: row i of LU is row Perm[i] of P·A,
	// unit-lower L below the diagonal, U on and above.
	LU *Matrix
	// Perm maps factor position -> original row index (A[Perm,:] = L·U).
	Perm []int
	// Volume is the communication-volume report of the run; Volume.Time
	// holds the full simulated-time detail.
	Volume *VolumeReport
	// Time is the simulated α-β makespan of the run in seconds: the final
	// logical clock of the slowest rank, waits included. The simulation
	// times algorithm communication only — computation is not modeled, and
	// the layout/collect housekeeping phases are untimed, mirroring the
	// AlgorithmBytes volume exclusion (§7.4).
	Time float64
	// CommTime is the critical rank's pure transfer time (α+β·bytes work,
	// excluding waits): Time = CommTime + critical-rank wait.
	CommTime float64
	// Executor is the resolved executor that ran the factorization
	// ("goroutines" or "events"). Provenance only: both executors produce
	// identical factors, volume, and simulated time.
	Executor string
	// SolveVolume is the communication report of the most recent
	// distributed solve run on these factors (nil until one runs). Its
	// timed phases are trisolve's "solve.fwd" and "solve.back"; the RHS
	// scatter and solution gather are labeled layout/collect and excluded,
	// mirroring the factorization accounting.
	SolveVolume *VolumeReport
	// SolveBytes accumulates the solve-phase traffic (forward plus back
	// substitution bytes) across every distributed solve on this Result.
	SolveBytes int64
	// SolveTime accumulates the simulated α-β makespans of the
	// distributed solves on this Result, in seconds.
	SolveTime float64

	// mu guards the solve accounting above across concurrent solves.
	mu sync.Mutex

	// sess is the session the factorization ran on; nil marks a
	// hand-assembled Result, for which solves fall back to the local
	// sequential substitution.
	sess *Session
}

// Factorize runs a distributed LU factorization of a (n×n) on a simulated
// machine and returns the gathered factors. The input is not modified.
//
// Deprecated: use New and Session.Factorize, which add context
// cancellation and amortize the machine configuration across jobs.
func Factorize(a *Matrix, opts Options) (*Result, error) {
	if a == nil || a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: Factorize requires a square matrix", ErrShape)
	}
	s, err := opts.session(a.Rows)
	if err != nil {
		return nil, err
	}
	return s.Factorize(context.Background(), a)
}

// Solve factorizes a and solves a·x = b, returning x. It uses COnfLUX
// unless opts selects another algorithm; the triangular solve runs
// distributed on opts.SolveRanks simulated ranks, with opts.RefineSweeps
// rounds of iterative refinement.
//
// Deprecated: use New and Session.Solve.
func Solve(a *Matrix, b []float64, opts Options) ([]float64, error) {
	if a == nil || a.Rows != a.Cols || len(b) != a.Rows {
		return nil, fmt.Errorf("%w: Solve requires square A and len(b) == n", ErrShape)
	}
	s, err := opts.session(a.Rows)
	if err != nil {
		return nil, err
	}
	return s.Solve(context.Background(), a, b)
}

// SolveMany factorizes a and solves a·X = B for every column of B at once
// on the distributed machine, returning X and the factorization Result
// (whose SolveVolume/SolveBytes/SolveTime fields report the metered solve
// phase). With opts.RefineSweeps > 0, each sweep recomputes the residual
// R = B − A·X and re-solves distributed for the correction, stopping early
// once the residual is at rounding level.
//
// Deprecated: use New and Session.SolveMany.
func SolveMany(a, b *Matrix, opts Options) (*Matrix, *Result, error) {
	if a == nil || a.Rows != a.Cols || b == nil || b.Rows != a.Rows {
		return nil, nil, fmt.Errorf("%w: SolveMany requires square A and B with B.Rows == n", ErrShape)
	}
	s, err := opts.session(a.Rows)
	if err != nil {
		return nil, nil, err
	}
	return s.SolveMany(context.Background(), a, b)
}

// SolveFactored solves a·x = b using already-computed factors. Results
// produced by Factorize delegate to the distributed solve (metered into
// r.SolveVolume/SolveBytes/SolveTime); hand-assembled Results fall back to
// a local sequential substitution. Either path reports an ErrSingular-
// wrapped error on a singular factor (zero U diagonal) instead of
// producing Inf/NaN.
func (r *Result) SolveFactored(b []float64) ([]float64, error) {
	return r.SolveFactoredContext(context.Background(), b)
}

// SolveFactoredContext is SolveFactored under a context: cancellation
// aborts an in-flight distributed solve with ErrCanceled.
func (r *Result) SolveFactoredContext(ctx context.Context, b []float64) ([]float64, error) {
	n := len(r.Perm)
	if len(b) != n {
		return nil, fmt.Errorf("%w: rhs length %d != %d", ErrShape, len(b), n)
	}
	if r.LU == nil || r.LU.Phantom() {
		return nil, fmt.Errorf("conflux: factors unavailable (volume-mode run?)")
	}
	if r.sess == nil {
		return r.solveSequential(b)
	}
	bm := mat.FromSlice(n, 1, append([]float64(nil), b...))
	x, err := r.SolveManyFactoredContext(ctx, bm)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = x.At(i, 0)
	}
	return out, nil
}

// SolveManyFactored solves a·X = B (B is n×nrhs) using already-computed
// factors with a background context; see SolveManyFactoredContext.
func (r *Result) SolveManyFactored(b *Matrix) (*Matrix, error) {
	return r.SolveManyFactoredContext(context.Background(), b)
}

// SolveManyFactoredContext solves a·X = B (B is n×nrhs) using already-
// computed factors. For Results produced by Factorize the solve runs
// distributed on the session's solve ranks under the recorded α-β machine;
// the run's volume report replaces r.SolveVolume and its solve-phase bytes
// and makespan accumulate into r.SolveBytes / r.SolveTime. Concurrent
// solves on one Result are safe (the accounting is mutex-guarded);
// cancellation of ctx aborts the simulation with ErrCanceled.
func (r *Result) SolveManyFactoredContext(ctx context.Context, b *Matrix) (*Matrix, error) {
	n := len(r.Perm)
	if b == nil || b.Rows != n || b.Cols < 1 {
		return nil, fmt.Errorf("%w: SolveManyFactored rhs shape mismatch", ErrShape)
	}
	if r.LU == nil || r.LU.Phantom() {
		return nil, fmt.Errorf("conflux: factors unavailable (volume-mode run?)")
	}
	if r.sess == nil {
		x := mat.New(n, b.Cols)
		col := make([]float64, n)
		for j := 0; j < b.Cols; j++ {
			for i := 0; i < n; i++ {
				col[i] = b.At(i, j)
			}
			xj, err := r.solveSequential(col)
			if err != nil {
				return nil, err
			}
			for i := 0; i < n; i++ {
				x.Set(i, j, xj[i])
			}
		}
		return x, nil
	}
	s := r.sess
	pb := mat.PermuteRows(b, r.Perm)
	opt := trisolve.DefaultOptions(n, s.cfg.solveRanks, b.Cols)
	var x *Matrix
	rep, err := s.run(ctx, opt.Grid.Total, true, func(c *smpi.Comm) error {
		var lu, rhs *mat.Matrix
		if c.Rank() == 0 {
			lu, rhs = r.LU, pb
		}
		res, err := trisolve.Run(c, lu, rhs, opt)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			x = res.X
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if x == nil {
		return nil, fmt.Errorf("conflux: no solution gathered at rank 0")
	}
	r.mu.Lock()
	r.SolveVolume = rep
	r.SolveBytes += rep.ByPhase[trisolve.PhaseFwd] + rep.ByPhase[trisolve.PhaseBack]
	r.SolveTime += rep.Time.Makespan
	r.mu.Unlock()
	return x, nil
}

// solveSequential is the local O(n²) substitution used for hand-assembled
// Results (no session to rebuild a simulated world from).
func (r *Result) solveSequential(b []float64) ([]float64, error) {
	n := len(r.Perm)
	x := make([]float64, n)
	for i, p := range r.Perm {
		x[i] = b[p]
	}
	// Forward substitution L·y = Pb (unit diagonal).
	for i := 0; i < n; i++ {
		row := r.LU.Row(i)
		s := x[i]
		for k := 0; k < i; k++ {
			s -= row[k] * x[k]
		}
		x[i] = s
	}
	// Back substitution U·x = y.
	for i := n - 1; i >= 0; i-- {
		row := r.LU.Row(i)
		if row[i] == 0 {
			return nil, fmt.Errorf("%w: zero pivot on row %d", ErrSingular, i)
		}
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= row[k] * x[k]
		}
		x[i] = s / row[i]
	}
	return x, nil
}

// CommVolume replays the algorithm's communication schedule at (n, p) in
// volume mode (no arithmetic, identical byte counts) and returns the report,
// including the simulated α-β time under the default machine (rep.Time).
// Memory defaults to the paper's maximum-replication setting.
//
// Deprecated: use New and Session.CommVolume.
func CommVolume(algo Algorithm, n, p int, memory float64) (*VolumeReport, error) {
	return CommVolumeMachine(algo, n, p, memory, Machine{})
}

// CommVolumeMachine is CommVolume with explicit α-β machine parameters for
// the simulated-time model (the zero Machine selects DefaultMachine).
//
// Deprecated: use New with WithMachine and Session.CommVolume.
func CommVolumeMachine(algo Algorithm, n, p int, memory float64, m Machine) (*VolumeReport, error) {
	s, err := Options{Ranks: p, Memory: memory, Algorithm: algo, Machine: m}.session(n)
	if err != nil {
		return nil, err
	}
	return s.CommVolume(context.Background(), n)
}

// CommVolumeSolve replays a full factorize-plus-solve schedule at dimension
// n in volume mode on one simulated world; see Session.CommVolumeSolve.
//
// Deprecated: use New and Session.CommVolumeSolve.
func CommVolumeSolve(n int, opts Options) (*VolumeReport, error) {
	s, err := opts.session(n)
	if err != nil {
		return nil, err
	}
	return s.CommVolumeSolve(context.Background(), n)
}

// AlgorithmBytes extracts the algorithm-attributed traffic from a report,
// excluding the initial layout scatter and final verification gather.
func AlgorithmBytes(rep *VolumeReport) int64 {
	return rep.AlgorithmBytes(trace.PhaseLayout, trace.PhaseCollect)
}

// FactorizeSPD runs the 2.5D Cholesky factorization (the paper conclusions'
// extension kernel) of a symmetric positive definite matrix on a simulated
// machine, returning the lower factor L with a = L·Lᵀ and the volume report.
// Unlike earlier versions, opts.Machine is now honored for the rep.Time
// simulated-time view (it used to be silently ignored here); the metered
// bytes are machine-independent and unchanged.
//
// Deprecated: use New and Session.FactorizeSPD.
func FactorizeSPD(a *Matrix, opts Options) (*Matrix, *VolumeReport, error) {
	if a == nil || a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("%w: FactorizeSPD requires a square matrix", ErrShape)
	}
	s, err := opts.session(a.Rows)
	if err != nil {
		return nil, nil, err
	}
	return s.FactorizeSPD(context.Background(), a)
}

// FactorizeOutOfCore runs the sequential blocked LU against an explicitly
// metered M-element software cache (two-level memory), factoring a in place
// (unpivoted; intended for diagonally dominant inputs) and returning the
// element traffic — the sequential-machine counterpart of the paper's
// parallel measurements, to be compared with LowerBoundLU(n, 1, m).
func FactorizeOutOfCore(a *Matrix, memElements int) (loads, stores int64, err error) {
	st, err := oocore.FactorizeOOC(a, memElements)
	if err != nil {
		return 0, 0, err
	}
	return st.Loads, st.Stores, nil
}

// LowerBoundLU returns the paper's §6 parallel I/O lower bound for LU
// factorization, in elements per processor: 2N³/(3P√M) + N(N−1)/(2P).
// memory <= 0 selects the paper's maximum-replication setting.
func LowerBoundLU(n, p int, memory float64) float64 {
	return xpart.LUParallelLowerBound(n, p, defaultMem(n, p, memory))
}

// LowerBoundMMM returns the matrix-multiplication bound 2N³/(P√M).
func LowerBoundMMM(n, p int, memory float64) float64 {
	return xpart.MMMSequentialLowerBound(n, defaultMem(n, p, memory)) / float64(p)
}

// LowerBoundCholesky returns the Cholesky bound derived with the same
// machinery (≈ N³/(3P√M)).
func LowerBoundCholesky(n, p int, memory float64) float64 {
	return xpart.CholeskyLowerBound(n, defaultMem(n, p, memory)) / float64(p)
}

func defaultMem(n, p int, memory float64) float64 {
	if memory <= 0 {
		return costmodel.MaxMemoryParams(n, p).M
	}
	return memory
}

// ModelPerRankElements returns the Table 2 cost model for an algorithm, in
// elements per rank. memory <= 0 selects the paper's maximum-replication
// setting M = N²/P^(2/3).
func ModelPerRankElements(algo Algorithm, n, p int, memory float64) float64 {
	if memory <= 0 {
		memory = costmodel.MaxMemoryParams(n, p).M
	}
	return costmodel.PerRankElements(algo, costmodel.Params{N: n, P: p, M: memory})
}
