package daap

import (
	"testing"
	"testing/quick"
)

func TestAccessDim(t *testing.T) {
	if d := (Access{Array: "A", Vars: []int{1, 0}}).Dim(); d != 2 {
		t.Fatalf("dim(A[i,k]) = %d", d)
	}
	// The paper's §2.2 example: A[k,k] has dim(A)=2 but access dim 1.
	if d := (Access{Array: "A", Vars: []int{0, 0}}).Dim(); d != 1 {
		t.Fatalf("dim(A[k,k]) = %d", d)
	}
}

func TestDistinctVarsSorted(t *testing.T) {
	a := Access{Vars: []int{2, 0, 2}}
	got := a.DistinctVars()
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("distinct vars %v", got)
	}
}

func TestProgramsValidate(t *testing.T) {
	for _, p := range []Program{LUProgram(), MMMProgram(), FusedMMMProgram(), CholeskyProgram()} {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	bad := Statement{
		Name:   "bad",
		Depth:  2,
		Output: Access{Array: "A", Vars: []int{0}},
		Inputs: []Access{{Array: "A", Vars: []int{5}}}, // out of depth
	}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected depth violation")
	}
	dup := Statement{
		Name:   "dup",
		Depth:  2,
		Output: Access{Array: "A", Vars: []int{0}},
		Inputs: []Access{
			{Array: "B", Vars: []int{0, 1}},
			{Array: "B", Vars: []int{0, 1}}, // duplicate access
		},
	}
	if err := dup.Validate(); err == nil {
		t.Fatal("expected disjoint-access violation")
	}
}

func TestSharedInputs(t *testing.T) {
	got := FusedMMMProgram().SharedInputs()
	if len(got) != 1 || got[0] != "B" {
		t.Fatalf("shared inputs %v", got)
	}
	if got := MMMProgram().SharedInputs(); len(got) != 0 {
		t.Fatalf("MMM shared inputs %v", got)
	}
}

func TestProducerConsumerPairs(t *testing.T) {
	// In LU, S1 writes A[i,k] which S2 reads (and vice versa through A).
	pairs := LUProgram().ProducerConsumerPairs()
	found := false
	for _, pr := range pairs {
		if pr[0] == 0 && pr[1] == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing S1->S2 output overlap: %v", pairs)
	}
}

func TestLUCDAGStructure(t *testing.T) {
	n := 4
	g := BuildLUCDAG(n)
	s1, s2 := CountLUVertices(n)
	inputs := 0
	for v := range g.Preds {
		if g.Input[v] {
			inputs++
		}
	}
	if inputs != n*n {
		t.Fatalf("inputs %d, want %d", inputs, n*n)
	}
	if got := g.NumVertices() - inputs; got != s1+s2 {
		t.Fatalf("compute vertices %d, want %d", got, s1+s2)
	}
	// Acyclic and consistent adjacency.
	for v := range g.Preds {
		for _, p := range g.Preds[v] {
			ok := false
			for _, s := range g.Succs[p] {
				if s == v {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("edge (%d,%d) missing from Succs", p, v)
			}
		}
	}
}

func TestLUCDAGDependencyOrder(t *testing.T) {
	// No A11 vertex may be computable before A00 is (Fig. 4's solid-edge
	// ordering): the final vertex of A[n-1,n-1] must transitively depend on
	// the input A[0,0].
	g := BuildLUCDAG(3)
	// Find the last version of A[2,2]: a vertex with no successors.
	outs := g.Outputs()
	if len(outs) == 0 {
		t.Fatal("no outputs")
	}
	// Reverse reachability from every output must include vertex of A[0,0]@0.
	a00 := -1
	for v, name := range g.Names {
		if name == "A[0,0]@0" {
			a00 = v
		}
	}
	if a00 < 0 {
		t.Fatal("input A[0,0] not found")
	}
	reach := map[int]bool{}
	var dfs func(int)
	dfs = func(v int) {
		if reach[v] {
			return
		}
		reach[v] = true
		for _, p := range g.Preds[v] {
			dfs(p)
		}
	}
	for _, o := range outs {
		dfs(o)
	}
	if !reach[a00] {
		t.Fatal("outputs do not depend on A[0,0]")
	}
}

func TestMMMCDAGCounts(t *testing.T) {
	n := 3
	g := BuildMMMCDAG(n)
	inputs, computes := 0, 0
	for v := range g.Preds {
		if g.Input[v] {
			inputs++
		} else {
			computes++
		}
	}
	if inputs != 3*n*n {
		t.Fatalf("inputs %d want %d", inputs, 3*n*n)
	}
	if computes != n*n*n {
		t.Fatalf("computes %d want %d", computes, n*n*n)
	}
}

func TestCountLUVerticesMatchesFormula(t *testing.T) {
	// The S2 loop nest (i,j = k+1:N) executes Σ_{j=0}^{N-1} j² =
	// N(N−1)(2N−1)/6 times. (The paper prints |V_S2| = N³/3 − N² + 2N/3 =
	// N(N−1)(N−2)/3, which differs at lower order — the leading N³/3 term
	// that drives the bound is identical; see EXPERIMENTS.md.)
	for _, n := range []int{2, 3, 5, 10, 50} {
		s1, s2 := CountLUVertices(n)
		if want := n * (n - 1) * (2*n - 1) / 6; s2 != want {
			t.Fatalf("n=%d: s2=%d want %d", n, s2, want)
		}
		if want := n * (n - 1) / 2; s1 != want {
			t.Fatalf("n=%d: s1=%d want %d", n, s1, want)
		}
		paper := (n*n*n - 3*n*n + 2*n) / 3
		if diff := s2 - paper; diff < 0 || diff > n*n {
			t.Fatalf("n=%d: count %d vs paper %d differ beyond O(N²)", n, s2, paper)
		}
	}
}

// Property: every non-input LU vertex has at least 2 predecessors and
// version chains are linear (each write supersedes the previous version).
func TestQuickLUCDAGWellFormed(t *testing.T) {
	f := func(n8 uint8) bool {
		n := int(n8%5) + 2
		g := BuildLUCDAG(n)
		for v := range g.Preds {
			if g.Input[v] {
				if len(g.Preds[v]) != 0 {
					return false
				}
				continue
			}
			if len(g.Preds[v]) < 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
