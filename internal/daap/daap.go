// Package daap implements the paper's program representation (§2.2):
// Disjoint Array Access Programs — sequences of statements enclosed in loop
// nests, where each statement evaluates a function of m array inputs
// addressed by injective access-function vectors and stores the result in an
// output array. The package models statements symbolically (for the lower
// bound machinery in internal/xpart) and concretely (building the cDAG of a
// given problem size for internal/pebble).
package daap

import (
	"fmt"
	"sort"
)

// Access is one array reference A_j[φ_j(r)]: the array name plus the access
// function vector, given as the indices of the iteration variables used in
// each array dimension. Example: for iteration vector [k, i, j],
// A[i,k] has Vars = [1, 0]; A[k,k] has Vars = [0, 0].
type Access struct {
	Array string
	Vars  []int
}

// Dim returns dim(A_j(φ_j)) — the number of DISTINCT iteration variables in
// the access function vector (§2.2 item 7): A[k,k] has access dimension 1.
func (a Access) Dim() int {
	seen := map[int]bool{}
	for _, v := range a.Vars {
		seen[v] = true
	}
	return len(seen)
}

// DistinctVars returns the sorted distinct iteration-variable indices.
func (a Access) DistinctVars() []int {
	seen := map[int]bool{}
	for _, v := range a.Vars {
		seen[v] = true
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Statement is one DAAP statement S: output access, input accesses, and the
// loop nest depth (length of the iteration vector).
type Statement struct {
	Name   string
	Depth  int
	Output Access
	Inputs []Access
}

// Validate checks the structural DAAP constraints: access vectors reference
// valid iteration variables, and the disjoint access property holds at the
// symbolic level (no two inputs with identical array and access vector).
func (s Statement) Validate() error {
	check := func(a Access) error {
		if len(a.Vars) == 0 {
			return fmt.Errorf("daap: %s: empty access vector for %s", s.Name, a.Array)
		}
		for _, v := range a.Vars {
			if v < 0 || v >= s.Depth {
				return fmt.Errorf("daap: %s: access %s references variable %d outside depth %d", s.Name, a.Array, v, s.Depth)
			}
		}
		return nil
	}
	if err := check(s.Output); err != nil {
		return err
	}
	seen := map[string]bool{}
	for _, in := range s.Inputs {
		if err := check(in); err != nil {
			return err
		}
		key := fmt.Sprintf("%s%v", in.Array, in.Vars)
		if seen[key] {
			return fmt.Errorf("daap: %s: duplicate access %s (disjoint access property)", s.Name, key)
		}
		seen[key] = true
	}
	return nil
}

// Program is a sequence of statements.
type Program struct {
	Name       string
	Statements []Statement
}

// Validate validates every statement.
func (p Program) Validate() error {
	for _, s := range p.Statements {
		if err := s.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// SharedInputs returns array names read by more than one statement — the
// input-overlap candidates of §4 Case I.
func (p Program) SharedInputs() []string {
	readers := map[string]map[int]bool{}
	for si, s := range p.Statements {
		for _, in := range s.Inputs {
			if readers[in.Array] == nil {
				readers[in.Array] = map[int]bool{}
			}
			readers[in.Array][si] = true
		}
	}
	var out []string
	for arr, rs := range readers {
		if len(rs) > 1 {
			out = append(out, arr)
		}
	}
	sort.Strings(out)
	return out
}

// ProducerConsumerPairs returns (producer, consumer) statement index pairs
// where the producer's output array is a consumer's input — the
// output-overlap case of §4 Case II.
func (p Program) ProducerConsumerPairs() [][2]int {
	var out [][2]int
	for pi, prod := range p.Statements {
		for ci, cons := range p.Statements {
			if pi == ci {
				continue
			}
			for _, in := range cons.Inputs {
				if in.Array == prod.Output.Array {
					out = append(out, [2]int{pi, ci})
					break
				}
			}
		}
	}
	return out
}

// LUProgram returns the two-statement LU factorization DAAP of Fig. 1:
//
//	for k = 1:N
//	  S1 (i = k+1:N):          A[i,k] = A[i,k] / A[k,k]
//	  S2 (i,j = k+1:N):        A[i,j] = A[i,j] - A[i,k]*A[k,j]
//
// Iteration variables are indexed k=0, i=1, j=2.
func LUProgram() Program {
	return Program{
		Name: "LU",
		Statements: []Statement{
			{
				Name:   "S1",
				Depth:  2, // [k, i]
				Output: Access{Array: "A", Vars: []int{1, 0}},
				Inputs: []Access{
					{Array: "A", Vars: []int{1, 0}}, // A[i,k]
					{Array: "A", Vars: []int{0, 0}}, // A[k,k]
				},
			},
			{
				Name:   "S2",
				Depth:  3, // [k, i, j]
				Output: Access{Array: "A", Vars: []int{1, 2}},
				Inputs: []Access{
					{Array: "A", Vars: []int{1, 2}}, // A[i,j]
					{Array: "A", Vars: []int{1, 0}}, // A[i,k]
					{Array: "A", Vars: []int{0, 2}}, // A[k,j]
				},
			},
		},
	}
}

// MMMProgram returns the single-statement matrix multiplication DAAP
// C[i,j] += A[i,k]*B[k,j] with variables i=0, j=1, k=2.
func MMMProgram() Program {
	return Program{
		Name: "MMM",
		Statements: []Statement{{
			Name:   "S",
			Depth:  3,
			Output: Access{Array: "C", Vars: []int{0, 1}},
			Inputs: []Access{
				{Array: "A", Vars: []int{0, 2}},
				{Array: "B", Vars: []int{2, 1}},
				{Array: "C", Vars: []int{0, 1}},
			},
		}},
	}
}

// FusedMMMProgram returns the §4.1 example: two multiplications sharing B.
//
//	S: D[i,j,k] = A[i,k] * B[k,j]
//	T: E[i,j,k] = C[i,k] * B[k,j]
func FusedMMMProgram() Program {
	return Program{
		Name: "FusedMMM",
		Statements: []Statement{
			{
				Name:   "S",
				Depth:  3,
				Output: Access{Array: "D", Vars: []int{0, 1, 2}},
				Inputs: []Access{
					{Array: "A", Vars: []int{0, 2}},
					{Array: "B", Vars: []int{2, 1}},
				},
			},
			{
				Name:   "T",
				Depth:  3,
				Output: Access{Array: "E", Vars: []int{0, 1, 2}},
				Inputs: []Access{
					{Array: "C", Vars: []int{0, 2}},
					{Array: "B", Vars: []int{2, 1}},
				},
			},
		},
	}
}

// CholeskyProgram returns the three-statement right-looking Cholesky DAAP
// (the kernel the paper's conclusion nominates for the same treatment):
//
//	S1: A[k,k] = sqrt(A[k,k])
//	S2: A[i,k] = A[i,k] / A[k,k]        (i > k)
//	S3: A[i,j] = A[i,j] - A[i,k]*A[j,k] (i >= j > k)
func CholeskyProgram() Program {
	return Program{
		Name: "Cholesky",
		Statements: []Statement{
			{
				Name:   "S1",
				Depth:  1,
				Output: Access{Array: "A", Vars: []int{0, 0}},
				Inputs: []Access{{Array: "A", Vars: []int{0, 0}}},
			},
			{
				Name:   "S2",
				Depth:  2,
				Output: Access{Array: "A", Vars: []int{1, 0}},
				Inputs: []Access{
					{Array: "A", Vars: []int{1, 0}},
					{Array: "A", Vars: []int{0, 0}},
				},
			},
			{
				Name:   "S3",
				Depth:  3,
				Output: Access{Array: "A", Vars: []int{1, 2}},
				Inputs: []Access{
					{Array: "A", Vars: []int{1, 2}},
					{Array: "A", Vars: []int{1, 0}},
					{Array: "A", Vars: []int{2, 0}},
				},
			},
		},
	}
}
