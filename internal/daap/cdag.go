package daap

import "fmt"

// CDAG is a concrete computational DAG (§2.3.1): vertices are element
// VERSIONS (a vertex per update of an element), edges are data dependencies.
type CDAG struct {
	Names []string // vertex id -> label (debugging)
	Preds [][]int  // vertex id -> direct predecessors
	Succs [][]int  // vertex id -> direct successors
	Input []bool   // vertex id -> is a graph input (no predecessors)
}

// NumVertices returns |V|.
func (g *CDAG) NumVertices() int { return len(g.Preds) }

// Outputs returns all vertices with no successors.
func (g *CDAG) Outputs() []int {
	var out []int
	for v := range g.Succs {
		if len(g.Succs[v]) == 0 {
			out = append(out, v)
		}
	}
	return out
}

// builder tracks the newest version of each element while emitting vertices.
type builder struct {
	g       CDAG
	version map[string]int // element key -> current vertex id
}

func newBuilder() *builder { return &builder{version: map[string]int{}} }

// vertexFor returns the current vertex of an element, creating an input
// vertex if the element has never been written.
func (b *builder) vertexFor(key string) int {
	if v, ok := b.version[key]; ok {
		return v
	}
	v := b.addVertex(key+"@0", nil)
	b.g.Input[v] = true
	b.version[key] = v
	return v
}

// write creates a new version of an element computed from the given
// predecessor vertices.
func (b *builder) write(key string, preds []int) int {
	name := fmt.Sprintf("%s@%d", key, len(b.g.Names))
	v := b.addVertex(name, preds)
	b.version[key] = v
	return v
}

func (b *builder) addVertex(name string, preds []int) int {
	v := len(b.g.Names)
	b.g.Names = append(b.g.Names, name)
	b.g.Preds = append(b.g.Preds, append([]int(nil), preds...))
	b.g.Succs = append(b.g.Succs, nil)
	b.g.Input = append(b.g.Input, false)
	for _, p := range preds {
		b.g.Succs[p] = append(b.g.Succs[p], v)
	}
	return v
}

func key2(arr string, i, j int) string { return fmt.Sprintf("%s[%d,%d]", arr, i, j) }

// BuildLUCDAG constructs the concrete cDAG of the in-place LU factorization
// of an n×n matrix (Fig. 1 right, Fig. 4): statement S1 vertices for each
// (k, i) and S2 vertices for each (k, i, j).
func BuildLUCDAG(n int) *CDAG {
	b := newBuilder()
	for k := 0; k < n; k++ {
		akk := b.vertexFor(key2("A", k, k))
		for i := k + 1; i < n; i++ {
			// S1: A[i,k] = A[i,k] / A[k,k]
			aik := b.vertexFor(key2("A", i, k))
			b.write(key2("A", i, k), []int{aik, akk})
		}
		for i := k + 1; i < n; i++ {
			lik := b.vertexFor(key2("A", i, k))
			for j := k + 1; j < n; j++ {
				// S2: A[i,j] = A[i,j] - A[i,k]*A[k,j]
				aij := b.vertexFor(key2("A", i, j))
				akj := b.vertexFor(key2("A", k, j))
				b.write(key2("A", i, j), []int{aij, lik, akj})
			}
		}
	}
	return &b.g
}

// BuildMMMCDAG constructs the cDAG of C += A·B for n×n matrices
// (n³ multiply-accumulate vertices chained along k).
func BuildMMMCDAG(n int) *CDAG {
	b := newBuilder()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				a := b.vertexFor(key2("A", i, k))
				bb := b.vertexFor(key2("B", k, j))
				c := b.vertexFor(key2("C", i, j))
				b.write(key2("C", i, j), []int{c, a, bb})
			}
		}
	}
	return &b.g
}

// CountLUVertices returns the paper's §6 vertex counts for statements S1
// and S2 of the LU cDAG: |V_S1| = N(N−1)/2 and |V_S2| = N³/3 − N²+ 2N/3.
func CountLUVertices(n int) (s1, s2 int) {
	s1 = n * (n - 1) / 2
	for k := 0; k < n; k++ {
		s2 += (n - k - 1) * (n - k - 1)
	}
	return s1, s2
}
