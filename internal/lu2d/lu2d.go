// Package lu2d implements the 2D block-cyclic right-looking LU factorization
// with partial pivoting that the paper measures as Cray LibSci (ScaLAPACK)
// and SLATE: "both LibSci and SLATE base on the standard partial pivoting
// algorithm using the 2D decomposition" (§8). Its per-rank I/O cost is
// N²/√P + O(N²/P) (Table 2).
//
// The engine performs distributed column-by-column pivot search
// (AllreduceMaxLoc down the grid column — the O(N) latency partial-pivoting
// path the paper contrasts with tournament pivoting), physical row swaps
// across the whole matrix, L-panel broadcasts along grid rows and U-panel
// broadcasts along grid columns, and local trailing GEMM updates.
package lu2d

import (
	"errors"
	"fmt"

	"repro/internal/blas"
	"repro/internal/dist"
	"repro/internal/grid"
	"repro/internal/mat"
	"repro/internal/smpi"
	"repro/internal/trace"
)

// Options configures the 2D engine.
type Options struct {
	Name string // preset name for phase labels / reports
	N    int    // global matrix dimension
	NB   int    // block (tile) size
	Grid grid.Grid
	// RingBcast selects ring-pipelined panel broadcasts (SLATE-style)
	// instead of binomial trees (LibSci-style). Volume is identical; the
	// flag exists to mirror the libraries' different broadcast engines.
	RingBcast bool
}

// LibSciOptions mirrors the vendor ScaLAPACK setup: user-specified block
// size (the paper's Table 2 lists LibSci as "user param required"), square
// greedy grid over all P ranks.
func LibSciOptions(n, p, nb int) Options {
	return Options{Name: "LibSci", N: n, NB: nb, Grid: grid.Square2D(p)}
}

// SLATEOptions mirrors SLATE's defaults (block size 16 per Table 2) and its
// ring broadcasts.
func SLATEOptions(n, p int) Options {
	return Options{Name: "SLATE", N: n, NB: 16, Grid: grid.Square2D(p), RingBcast: true}
}

// Result carries the factorization output: in numeric mode, root rank 0
// holds LU (combined in-place factors of P·A) and the LAPACK-style pivot
// vector; Report always carries the metered communication volume.
type Result struct {
	LU   *mat.Matrix
	Ipiv []int
}

// ErrSingular is returned when no nonzero pivot exists in some column.
var ErrSingular = errors.New("lu2d: matrix is singular to working precision")

// Run executes the factorization on an existing world. a is consulted at
// world rank 0 only (nil in volume mode). Returns the per-run result at rank
// 0 (other ranks get Ipiv only).
func Run(c *smpi.Comm, a *mat.Matrix, opt Options) (*Result, error) {
	if opt.Grid.Layers != 1 {
		panic("lu2d: requires a 2D grid")
	}
	if c.Size() != opt.Grid.Total {
		panic(fmt.Sprintf("lu2d: world %d != grid total %d", c.Size(), opt.Grid.Total))
	}
	if opt.Grid.Used() != opt.Grid.Total {
		panic("lu2d: 2D engine greedily uses all ranks (paper §8)")
	}
	e := &engine{c: c, opt: opt}
	return e.run(a)
}

type engine struct {
	c   *smpi.Comm
	opt Options

	g        grid.Grid
	bc       grid.BlockCyclic
	row, col int
	rowComm  *smpi.Comm
	colComm  *smpi.Comm
	store    *dist.Store

	// Per-step caches of received panel tiles, keyed by tile index.
	lPanel map[int]*mat.Matrix // tiles (ti, k) for local tile rows
	uPanel map[int]*mat.Matrix // tiles (k, tj) for local tile cols
}

func (e *engine) run(a *mat.Matrix) (*Result, error) {
	e.g = e.opt.Grid
	e.bc = grid.BlockCyclic{G: e.g, V: e.opt.NB, N: e.opt.N}
	e.row, e.col, _ = e.g.Coords(e.c.Rank())
	e.rowComm = e.c.Sub(fmt.Sprintf("row.%d", e.row), e.g.RowComm(e.row, 0))
	e.colComm = e.c.Sub(fmt.Sprintf("col.%d", e.col), e.g.ColComm(e.col, 0))
	e.store = dist.NewStore(e.bc, e.row, e.col, 0, e.c.Payload())
	dist.Scatter(e.c, 0, a, e.g, e.store)

	n := e.opt.N
	nt := e.bc.Tiles()
	ipiv := make([]int, n)
	for k := 0; k < nt; k++ {
		piv, err := e.panel(k)
		if err != nil {
			return nil, err
		}
		copy(ipiv[k*e.opt.NB:], piv)
		e.applySwaps(k, piv)
		e.broadcastLPanel(k)
		e.trsmU(k)
		e.broadcastUPanel(k)
		e.update(k)
	}

	res := &Result{Ipiv: ipiv}
	var lu *mat.Matrix
	if e.c.Rank() == 0 {
		if e.c.Payload() {
			lu = mat.New(n, n)
		} else {
			lu = mat.NewPhantom(n, n)
		}
		res.LU = lu
	}
	dist.Gather(e.c, 0, lu, e.g, e.store)
	return res, nil
}

// pseudoPriority gives volume-mode runs a deterministic pseudo-random pivot
// choice so that physical-swap traffic matches the evenly-distributed-pivot
// behaviour of numeric runs (instead of degenerating to no-op swaps).
func pseudoPriority(col, row int) float64 {
	x := uint64(col)*0x9E3779B97F4A7C15 ^ uint64(row)*0xBF58476D1CE4E5B9
	x ^= x >> 31
	x *= 0x94D049BB133111EB
	x ^= x >> 29
	return 1 + float64(x>>11)/(1<<53)
}

// panel factorizes tile column k with distributed partial pivoting and
// returns the global pivot row chosen for each panel column (LAPACK style).
func (e *engine) panel(k int) ([]int, error) {
	e.c.SetPhase(e.opt.Name + ".panel")
	_, b := e.bc.TileDims(k, k)
	j0 := k * e.opt.NB
	piv := make([]int, b)
	inCol := e.bc.OwnerCol(k) == e.col
	myTiles := e.bc.LocalTileRows(e.row, k) // tile rows >= k in this column

	for j := 0; j < b; j++ {
		kk := j0 + j
		// Local pivot candidate among global rows > kk... (>= kk).
		best := smpi.MaxLoc{Loc: -1}
		if inCol {
			for _, ti := range myTiles {
				t := e.store.Tile(ti, k)
				for r := 0; r < t.Rows; r++ {
					gr := ti*e.opt.NB + r
					if gr < kk {
						continue
					}
					v := pseudoPriority(kk, gr)
					if e.c.Payload() {
						v = t.At(r, j)
					}
					if best.Loc < 0 || absf(v) > absf(best.Val) {
						best = smpi.MaxLoc{Val: v, Loc: gr}
					}
				}
			}
		}
		if !inCol {
			// Not part of this panel; skip to next panel column.
			continue
		}
		got := e.colComm.AllreduceMaxLoc(best)
		if got.Loc < 0 || (e.c.Payload() && got.Val == 0) {
			return nil, ErrSingular
		}
		p := got.Loc
		piv[j] = p
		e.swapPanelRows(k, j, kk, p, b)
		e.eliminateColumn(k, j, kk, b)
	}
	// Everyone learns the pivots (the paper's "pivot rows are broadcast to
	// all processors").
	piv = e.c.BcastInts(e.g.Rank(0, e.bc.OwnerCol(k), 0), piv)
	return piv, nil
}

// swapPanelRows exchanges rows kk and p within the panel columns only
// (deferred swaps elsewhere happen in applySwaps).
func (e *engine) swapPanelRows(k, j, kk, p int, b int) {
	if kk == p {
		return
	}
	ti1, ti2 := kk/e.opt.NB, p/e.opt.NB
	o1, o2 := e.bc.OwnerRow(ti1), e.bc.OwnerRow(ti2)
	r1, r2 := kk-ti1*e.opt.NB, p-ti2*e.opt.NB
	tag := 2*kk + 1
	switch {
	case o1 == e.row && o2 == e.row:
		t1, t2 := e.store.Tile(ti1, k), e.store.Tile(ti2, k)
		if !t1.Phantom() {
			blas.Swap(t1.Row(r1), t2.Row(r2))
		}
	case o1 == e.row:
		t1 := e.store.Tile(ti1, k)
		e.colComm.SendMat(o2, tag, t1.View(r1, 0, 1, b))
		e.colComm.RecvMat(o2, tag, t1.View(r1, 0, 1, b))
	case o2 == e.row:
		t2 := e.store.Tile(ti2, k)
		buf := e.store.NewBuffer(1, b)
		e.colComm.RecvMat(o1, tag, buf)
		e.colComm.SendMat(o1, tag, t2.View(r2, 0, 1, b))
		t2.View(r2, 0, 1, b).CopyFrom(buf)
	}
}

// eliminateColumn broadcasts the pivot row remainder down the grid column
// and applies the rank-1 elimination to local rows below kk.
func (e *engine) eliminateColumn(k, j, kk int, b int) {
	ti1 := kk / e.opt.NB
	rowOwner := e.bc.OwnerRow(ti1)
	pivRow := e.store.NewBuffer(1, b-j)
	if e.row == rowOwner {
		t := e.store.Tile(ti1, k)
		pivRow.CopyFrom(t.View(kk-ti1*e.opt.NB, j, 1, b-j))
	}
	e.colComm.BcastMat(rowOwner, pivRow)
	if !e.c.Payload() {
		return
	}
	pv := pivRow.At(0, 0)
	for _, ti := range e.bc.LocalTileRows(e.row, k) {
		t := e.store.Tile(ti, k)
		for r := 0; r < t.Rows; r++ {
			gr := ti*e.opt.NB + r
			if gr <= kk {
				continue
			}
			l := t.At(r, j) / pv
			t.Set(r, j, l)
			for jj := j + 1; jj < b; jj++ {
				t.Add(r, jj, -l*pivRow.At(0, jj-j))
			}
		}
	}
}

// applySwaps applies the panel's pivots to all other tile columns (physical
// row swapping — the design choice COnfLUX's row masking removes).
func (e *engine) applySwaps(k int, piv []int) {
	e.c.SetPhase(e.opt.Name + ".swap")
	nb := e.opt.NB
	myCols := e.bc.LocalTileCols(e.col, 0)
	for j, p := range piv {
		kk := k*nb + j
		if p == kk {
			continue
		}
		ti1, ti2 := kk/nb, p/nb
		o1, o2 := e.bc.OwnerRow(ti1), e.bc.OwnerRow(ti2)
		for _, tj := range myCols {
			if tj == k {
				continue // panel columns already swapped
			}
			_, w := e.bc.TileDims(ti1, tj)
			r1, r2 := kk-ti1*nb, p-ti2*nb
			tag := (kk*e.bc.Tiles() + tj) * 2
			switch {
			case o1 == e.row && o2 == e.row:
				t1, t2 := e.store.Tile(ti1, tj), e.store.Tile(ti2, tj)
				if !t1.Phantom() {
					blas.Swap(t1.Row(r1), t2.Row(r2))
				}
			case o1 == e.row:
				t1 := e.store.Tile(ti1, tj)
				e.colComm.SendMat(o2, tag, t1.View(r1, 0, 1, w))
				e.colComm.RecvMat(o2, tag, t1.View(r1, 0, 1, w))
			case o2 == e.row:
				t2 := e.store.Tile(ti2, tj)
				buf := e.store.NewBuffer(1, w)
				e.colComm.RecvMat(o1, tag, buf)
				e.colComm.SendMat(o1, tag, t2.View(r2, 0, 1, w))
				t2.View(r2, 0, 1, w).CopyFrom(buf)
			}
		}
	}
}

// broadcastLPanel sends the factored panel tiles along each grid row; after
// it, every rank holds the L tiles matching its local tile rows.
func (e *engine) broadcastLPanel(k int) {
	e.c.SetPhase(e.opt.Name + ".lpanel")
	root := e.bc.OwnerCol(k)
	e.lPanel = map[int]*mat.Matrix{}
	for _, ti := range e.bc.LocalTileRows(e.row, k) {
		r, c := e.bc.TileDims(ti, k)
		var buf *mat.Matrix
		if e.col == root {
			buf = e.store.Tile(ti, k)
		} else {
			buf = e.store.NewBuffer(r, c)
		}
		e.bcastRow(root, buf)
		e.lPanel[ti] = buf
	}
}

// trsmU solves L00·U01 = A01 on the pivot grid row.
func (e *engine) trsmU(k int) {
	e.c.SetPhase(e.opt.Name + ".trsm")
	if e.bc.OwnerRow(k) != e.row {
		return
	}
	l00, ok := e.lPanel[k]
	if !ok {
		panic("lu2d: missing diagonal tile after panel broadcast")
	}
	for _, tj := range e.bc.LocalTileCols(e.col, k+1) {
		blas.TrsmLowerLeft(l00, e.store.Tile(k, tj), true)
	}
}

// broadcastUPanel sends the solved U tiles down each grid column.
func (e *engine) broadcastUPanel(k int) {
	e.c.SetPhase(e.opt.Name + ".upanel")
	root := e.bc.OwnerRow(k)
	e.uPanel = map[int]*mat.Matrix{}
	for _, tj := range e.bc.LocalTileCols(e.col, k+1) {
		r, c := e.bc.TileDims(k, tj)
		var buf *mat.Matrix
		if e.row == root {
			buf = e.store.Tile(k, tj)
		} else {
			buf = e.store.NewBuffer(r, c)
		}
		e.bcastCol(root, buf)
		e.uPanel[tj] = buf
	}
}

// update applies the local trailing GEMM A11 -= L10·U01.
func (e *engine) update(k int) {
	e.c.SetPhase(e.opt.Name + ".update")
	for _, ti := range e.bc.LocalTileRows(e.row, k+1) {
		l := e.lPanel[ti]
		for _, tj := range e.bc.LocalTileCols(e.col, k+1) {
			blas.Gemm(-1, l, e.uPanel[tj], 1, e.store.Tile(ti, tj))
		}
	}
}

// bcastRow broadcasts along the rank's row communicator, using ring or tree
// per the preset. Ring and tree move the same number of bytes.
func (e *engine) bcastRow(root int, m *mat.Matrix) {
	if e.opt.RingBcast {
		ringBcast(e.rowComm, root, m)
		return
	}
	e.rowComm.BcastMat(root, m)
}

func (e *engine) bcastCol(root int, m *mat.Matrix) {
	if e.opt.RingBcast {
		ringBcast(e.colComm, root, m)
		return
	}
	e.colComm.BcastMat(root, m)
}

func ringBcast(c *smpi.Comm, root int, m *mat.Matrix) {
	p := c.Size()
	if p == 1 {
		return
	}
	// Pass the block around the ring: p-1 hops, volume (p-1)·len — identical
	// to the tree, but pipelined in real libraries.
	me := (c.Rank() - root + p) % p
	const tag = 0x51A7E
	if me != 0 {
		c.RecvMat((c.Rank()-1+p)%p, tag, m)
	}
	if me != p-1 {
		c.SendMat((c.Rank()+1)%p, tag, m)
	}
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

var _ = trace.BytesPerElement // trace is part of this package's contract via dist
