package lu2d

import (
	"testing"
	"time"

	"repro/internal/costmodel"
	"repro/internal/grid"
	"repro/internal/mat"
	"repro/internal/smpi"
	"repro/internal/testutil"
	"repro/internal/trace"
)

const testTimeout = 60 * time.Second

func factorNumeric(t *testing.T, n, p, nb int, seed uint64, opt func(n, p, nb int) Options) (*mat.Matrix, *Result, *trace.Report) {
	t.Helper()
	a := mat.RandomDiagDominant(n, seed)
	var res *Result
	rep, err := smpi.RunTimeout(p, true, testTimeout, func(c *smpi.Comm) error {
		var in *mat.Matrix
		if c.Rank() == 0 {
			in = a
		}
		r, err := Run(c, in, opt(n, p, nb))
		if c.Rank() == 0 {
			res = r
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return a, res, rep
}

func TestNumericCorrectnessLibSci(t *testing.T) {
	cases := []struct{ n, p, nb int }{
		{16, 1, 4},
		{16, 4, 4},
		{32, 4, 8},
		{48, 6, 8},  // 2x3 grid
		{60, 4, 8},  // ragged edge tiles
		{64, 16, 8}, // 4x4 grid
		{33, 4, 5},  // everything ragged
	}
	for _, tc := range cases {
		a, res, _ := factorNumeric(t, tc.n, tc.p, tc.nb, uint64(tc.n), LibSciOptions)
		if r := testutil.ResidualLU(a, res.LU, res.Ipiv); r > 1e-12 {
			t.Fatalf("n=%d p=%d nb=%d residual %v", tc.n, tc.p, tc.nb, r)
		}
	}
}

func TestNumericCorrectnessSLATE(t *testing.T) {
	a, res, _ := factorNumeric(t, 48, 4, 16, 7, func(n, p, _ int) Options { return SLATEOptions(n, p) })
	if r := testutil.ResidualLU(a, res.LU, res.Ipiv); r > 1e-12 {
		t.Fatalf("residual %v", r)
	}
}

func TestPivotingOnNonDominantMatrix(t *testing.T) {
	// General random matrices require real pivoting for stability.
	n, p, nb := 40, 4, 8
	a := mat.Random(n, n, 99)
	var res *Result
	_, err := smpi.RunTimeout(p, true, testTimeout, func(c *smpi.Comm) error {
		var in *mat.Matrix
		if c.Rank() == 0 {
			in = a
		}
		r, err := Run(c, in, LibSciOptions(n, p, nb))
		if c.Rank() == 0 {
			res = r
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if r := testutil.ResidualLU(a, res.LU, res.Ipiv); r > 1e-11 {
		t.Fatalf("residual %v", r)
	}
	// Pivots must form a valid interchange sequence: ipiv[k] >= k.
	for k, pv := range res.Ipiv {
		if pv < k || pv >= n {
			t.Fatalf("ipiv[%d]=%d invalid", k, pv)
		}
	}
}

func TestMatchesSequentialFactorization(t *testing.T) {
	// Same pivots and factors as the sequential reference (partial pivoting
	// is deterministic given the data).
	n, p, nb := 32, 4, 8
	a, res, _ := factorNumeric(t, n, p, nb, 5, LibSciOptions)
	ref, refPiv, err := testutil.ReferenceLU(a)
	if err != nil {
		t.Fatal(err)
	}
	for k := range refPiv {
		if refPiv[k] != res.Ipiv[k] {
			t.Fatalf("pivot %d: distributed %d vs reference %d", k, res.Ipiv[k], refPiv[k])
		}
	}
	if d := mat.MaxAbsDiff(ref, res.LU); d > 1e-11 {
		t.Fatalf("factor diff %v", d)
	}
}

func runVolume(t *testing.T, n, p, nb int) *trace.Report {
	t.Helper()
	rep, err := smpi.RunTimeout(p, false, testTimeout, func(c *smpi.Comm) error {
		_, err := Run(c, nil, LibSciOptions(n, p, nb))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestVolumeModeMatchesNumericMode(t *testing.T) {
	// The harness measures volume mode; its byte counts must be close to a
	// numeric run with realistic (well-scattered) pivots. Volume mode draws
	// pseudo-random pivots, so compare against a general random matrix, not
	// a diagonally dominant one whose pivots degenerate to the diagonal.
	n, p, nb := 48, 4, 8
	a := mat.Random(n, n, 3)
	repN, err := smpi.RunTimeout(p, true, testTimeout, func(c *smpi.Comm) error {
		var in *mat.Matrix
		if c.Rank() == 0 {
			in = a
		}
		_, err := Run(c, in, LibSciOptions(n, p, nb))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	repV := runVolume(t, n, p, nb)
	nb1, vb := repN.AlgorithmBytes(trace.PhaseLayout, trace.PhaseCollect), repV.AlgorithmBytes(trace.PhaseLayout, trace.PhaseCollect)
	ratio := float64(vb) / float64(nb1)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("volume-mode %d vs numeric %d bytes (ratio %.3f)", vb, nb1, ratio)
	}
}

func TestVolumeScalesAsModel(t *testing.T) {
	// Per-rank volume should track N²/√P: quadrupling P at fixed N halves
	// the per-rank volume, up to lower-order terms.
	n, nb := 256, 16
	rep4 := runVolume(t, n, 4, nb)
	rep16 := runVolume(t, n, 16, nb)
	v4 := float64(rep4.AlgorithmBytes(trace.PhaseLayout, trace.PhaseCollect)) / 4
	v16 := float64(rep16.AlgorithmBytes(trace.PhaseLayout, trace.PhaseCollect)) / 16
	ratio := v4 / v16
	if ratio < 1.5 || ratio > 2.6 {
		t.Fatalf("per-rank strong scaling ratio %.2f, want ≈2 (N²/√P law)", ratio)
	}
}

func TestVolumeNearModelPrediction(t *testing.T) {
	// Table 2 reproduction at test scale: measurement within a modest factor
	// of the model (the paper reports 97–103% at large N/P; small N has
	// proportionally larger lower-order terms).
	n, p, nb := 256, 16, 16
	rep := runVolume(t, n, p, nb)
	meas := float64(rep.AlgorithmBytes(trace.PhaseLayout, trace.PhaseCollect))
	model := costmodel.TotalBytes(costmodel.LibSci, costmodel.MaxMemoryParams(n, p))
	ratio := meas / model
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("measured %.0f vs model %.0f (ratio %.2f)", meas, model, ratio)
	}
}

func TestSingularMatrixReported(t *testing.T) {
	n, p := 16, 4
	a := mat.New(n, n) // zero matrix
	_, err := smpi.RunTimeout(p, true, testTimeout, func(c *smpi.Comm) error {
		var in *mat.Matrix
		if c.Rank() == 0 {
			in = a
		}
		_, err := Run(c, in, LibSciOptions(n, p, 4))
		return err
	})
	if err == nil {
		t.Fatal("expected singular error")
	}
}

func TestRingAndTreeBcastSameVolume(t *testing.T) {
	n, p, nb := 64, 4, 8
	repTree, err := smpi.RunTimeout(p, false, testTimeout, func(c *smpi.Comm) error {
		_, err := Run(c, nil, LibSciOptions(n, p, nb))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	repRing, err := smpi.RunTimeout(p, false, testTimeout, func(c *smpi.Comm) error {
		opt := LibSciOptions(n, p, nb)
		opt.RingBcast = true
		_, err := Run(c, nil, opt)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	a := repTree.ByPhase["LibSci.lpanel"] + repTree.ByPhase["LibSci.upanel"]
	b := repRing.ByPhase["LibSci.lpanel"] + repRing.ByPhase["LibSci.upanel"]
	if a != b {
		t.Fatalf("tree %d != ring %d panel bytes", a, b)
	}
}

func TestGridMustUseAllRanks(t *testing.T) {
	// Rank panics are converted to run errors by the runtime.
	_, err := smpi.RunTimeout(4, false, testTimeout, func(c *smpi.Comm) error {
		opt := LibSciOptions(64, 4, 8)
		opt.Grid = grid.Grid{Pr: 1, Pc: 3, Layers: 1, Total: 4}
		_, err := Run(c, nil, opt)
		return err
	})
	if err == nil {
		t.Fatal("expected error for partial grid")
	}
}
