package lu2d

import (
	"fmt"

	"repro/internal/costmodel"
	engreg "repro/internal/engine"
	"repro/internal/lapack"
	"repro/internal/mat"
	"repro/internal/smpi"
)

// DefaultLibSciNB is the "user-specified" ScaLAPACK block size used when a
// run config does not supply one (Table 2 lists LibSci's block size as a
// user parameter).
const DefaultLibSciNB = 32

// lu2dEngine adapts the 2D engine to the registry under both of its
// vendor personae: LibSci (user block size, tree broadcasts) and SLATE
// (block size 16, ring broadcasts).
type lu2dEngine struct {
	name costmodel.Algorithm
}

func (e lu2dEngine) Name() costmodel.Algorithm { return e.name }

func (e lu2dEngine) options(n int, cfg engreg.Config) Options {
	if e.name == costmodel.SLATE {
		return SLATEOptions(n, cfg.Ranks)
	}
	nb := cfg.NB
	if nb <= 0 {
		nb = DefaultLibSciNB
	}
	return LibSciOptions(n, cfg.Ranks, nb)
}

func (e lu2dEngine) Run(c *smpi.Comm, in *mat.Matrix, n int, cfg engreg.Config) (*mat.Matrix, []int, error) {
	res, err := Run(c, in, e.options(n, cfg))
	if err != nil {
		return nil, nil, err
	}
	return res.LU, lapack.PermFromIpiv(res.Ipiv, n), nil
}

func (e lu2dEngine) GridDesc(n int, cfg engreg.Config) string {
	g := e.options(n, cfg).Grid
	return fmt.Sprintf("%dx%d", g.Pr, g.Pc)
}

func init() {
	engreg.Register(lu2dEngine{name: costmodel.LibSci})
	engreg.Register(lu2dEngine{name: costmodel.SLATE})
}
