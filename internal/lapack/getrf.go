// Package lapack provides sequential LAPACK-style factorization kernels:
// unblocked and blocked LU with partial pivoting, triangular solves, row
// interchanges, and the local candidate-selection kernel used by tournament
// pivoting (paper §7.3).
package lapack

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/blas"
	"repro/internal/mat"
)

// ErrSingular is returned when a zero pivot is encountered.
var ErrSingular = errors.New("lapack: matrix is singular to working precision")

// Getrf2 computes an unblocked LU factorization with partial pivoting of the
// m×n matrix A in place: A = P·L·U where ipiv[k] is the row swapped with row
// k at step k (LAPACK convention, 0-based). Requires m >= n.
func Getrf2(a *mat.Matrix, ipiv []int) error {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(fmt.Sprintf("lapack: Getrf2 requires m >= n, got %dx%d", m, n))
	}
	if len(ipiv) != n {
		panic("lapack: Getrf2 ipiv length mismatch")
	}
	if a.Phantom() {
		for k := range ipiv {
			ipiv[k] = k
		}
		return nil
	}
	for k := 0; k < n; k++ {
		// Pivot search in column k, rows k..m-1.
		p, best := k, math.Abs(a.At(k, k))
		for i := k + 1; i < m; i++ {
			if v := math.Abs(a.At(i, k)); v > best {
				p, best = i, v
			}
		}
		ipiv[k] = p
		if best == 0 {
			return ErrSingular
		}
		if p != k {
			blas.Swap(a.Row(p), a.Row(k))
		}
		inv := 1 / a.At(k, k)
		for i := k + 1; i < m; i++ {
			// No zero-multiplier skip: a NaN/Inf in the pivot row must
			// propagate even when lik == 0 (same convention as blas.Gemm).
			lik := a.At(i, k) * inv
			a.Set(i, k, lik)
			ai, ak := a.Row(i), a.Row(k)
			for j := k + 1; j < n; j++ {
				ai[j] -= lik * ak[j]
			}
		}
	}
	return nil
}

// Getrf computes a blocked LU factorization with partial pivoting in place,
// with block size nb. Semantics match Getrf2 (right-looking variant). The
// trailing update is one TrsmLowerLeft + Gemm pair per panel, so nearly all
// flops run on the cache-blocked level-3 kernels; the default nb matches
// their triangular block size.
func Getrf(a *mat.Matrix, ipiv []int, nb int) error {
	m, n := a.Rows, a.Cols
	if m < n {
		panic("lapack: Getrf requires m >= n")
	}
	if len(ipiv) != n {
		panic("lapack: Getrf ipiv length mismatch")
	}
	if nb <= 0 {
		nb = 64
	}
	if a.Phantom() {
		for k := range ipiv {
			ipiv[k] = k
		}
		return nil
	}
	for k := 0; k < n; k += nb {
		b := min(nb, n-k)
		panel := a.View(k, k, m-k, b)
		piv := make([]int, b)
		if err := Getrf2(panel, piv); err != nil {
			return err
		}
		// Apply panel pivots to the rest of the matrix and record global ipiv.
		for j := 0; j < b; j++ {
			ipiv[k+j] = piv[j] + k
			if piv[j] != j {
				r1, r2 := k+j, k+piv[j]
				// Left of the panel.
				if k > 0 {
					blas.Swap(a.Data[r1*a.Stride:r1*a.Stride+k], a.Data[r2*a.Stride:r2*a.Stride+k])
				}
				// Right of the panel.
				if k+b < n {
					blas.Swap(a.Data[r1*a.Stride+k+b:r1*a.Stride+n], a.Data[r2*a.Stride+k+b:r2*a.Stride+n])
				}
			}
		}
		if k+b < n {
			l00 := a.View(k, k, b, b)
			a01 := a.View(k, k+b, b, n-k-b)
			blas.TrsmLowerLeft(l00, a01, true)
			if k+b < m {
				l10 := a.View(k+b, k, m-k-b, b)
				a11 := a.View(k+b, k+b, m-k-b, n-k-b)
				blas.Gemm(-1, l10, a01, 1, a11)
			}
		}
	}
	return nil
}

// Laswp applies the row interchanges ipiv (LAPACK convention) to A, forward.
func Laswp(a *mat.Matrix, ipiv []int) {
	if a.Phantom() {
		return
	}
	for k, p := range ipiv {
		if p != k {
			blas.Swap(a.Row(k), a.Row(p))
		}
	}
}

// PermFromIpiv converts LAPACK-style sequential interchanges into an
// explicit permutation: perm[i] is the original row that ends up at
// position i after applying ipiv forward (A[perm,:] = L·U). It is the one
// shared ipiv→perm conversion — every engine and the public API route
// through it.
func PermFromIpiv(ipiv []int, m int) []int {
	perm := make([]int, m)
	for i := range perm {
		perm[i] = i
	}
	for k, p := range ipiv {
		perm[k], perm[p] = perm[p], perm[k]
	}
	return perm
}

// Getrs solves A·x = b given the in-place LU factors and ipiv from Getrf.
// b is overwritten with the solution.
func Getrs(lu *mat.Matrix, ipiv []int, b []float64) {
	n := lu.Rows
	if lu.Cols != n || len(b) != n {
		panic("lapack: Getrs shape mismatch")
	}
	if lu.Phantom() {
		return
	}
	for k, p := range ipiv {
		if p != k {
			b[k], b[p] = b[p], b[k]
		}
	}
	// Forward solve L·y = Pb (unit diagonal).
	for i := 0; i < n; i++ {
		row := lu.Row(i)
		s := b[i]
		for k := 0; k < i; k++ {
			s -= row[k] * b[k]
		}
		b[i] = s
	}
	// Back solve U·x = y.
	for i := n - 1; i >= 0; i-- {
		row := lu.Row(i)
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= row[k] * b[k]
		}
		b[i] = s / row[i]
	}
}

// SplitLU extracts explicit L (m×n unit lower trapezoidal) and U (n×n upper)
// factors from an in-place LU of an m×n matrix (m >= n).
func SplitLU(lu *mat.Matrix) (l, u *mat.Matrix) {
	m, n := lu.Rows, lu.Cols
	l, u = mat.New(m, n), mat.New(n, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			switch {
			case i > j:
				l.Set(i, j, lu.At(i, j))
			case i == j:
				l.Set(i, j, 1)
				u.Set(i, j, lu.At(i, j))
			default:
				if i < n {
					u.Set(i, j, lu.At(i, j))
				}
			}
		}
	}
	return l, u
}
