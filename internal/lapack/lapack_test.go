package lapack

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/blas"
	"repro/internal/mat"
)

// residual computes ‖A[perm,:] − L·U‖∞ / ‖A‖∞ for in-place LU factors.
func residual(orig, lu *mat.Matrix, ipiv []int) float64 {
	l, u := SplitLU(lu)
	prod := mat.New(lu.Rows, lu.Cols)
	blas.Gemm(1, l, u, 0, prod)
	perm := PermFromIpiv(ipiv, orig.Rows)
	pa := mat.PermuteRows(orig, perm)
	return mat.MaxAbsDiff(pa, prod) / (mat.NormInf(orig) + 1)
}

func TestGetrf2Square(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 16, 33} {
		a := mat.Random(n, n, uint64(n))
		lu := a.Clone()
		ipiv := make([]int, n)
		if err := Getrf2(lu, ipiv); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if r := residual(a, lu, ipiv); r > 1e-12 {
			t.Fatalf("n=%d residual %v", n, r)
		}
	}
}

func TestGetrf2Rectangular(t *testing.T) {
	a := mat.Random(9, 4, 3)
	lu := a.Clone()
	ipiv := make([]int, 4)
	if err := Getrf2(lu, ipiv); err != nil {
		t.Fatal(err)
	}
	if r := residual(a, lu, ipiv); r > 1e-12 {
		t.Fatalf("residual %v", r)
	}
}

func TestGetrf2PartialPivotingChoosesMax(t *testing.T) {
	a := mat.New(3, 3)
	a.Set(0, 0, 1)
	a.Set(1, 0, -10)
	a.Set(2, 0, 5)
	a.Set(0, 1, 1)
	a.Set(1, 1, 1)
	a.Set(2, 2, 1)
	ipiv := make([]int, 3)
	lu := a.Clone()
	if err := Getrf2(lu, ipiv); err != nil {
		t.Fatal(err)
	}
	if ipiv[0] != 1 {
		t.Fatalf("expected first pivot row 1, got %d", ipiv[0])
	}
	// |multipliers| <= 1 is the partial-pivoting invariant.
	for i := 1; i < 3; i++ {
		for j := 0; j < i; j++ {
			if math.Abs(lu.At(i, j)) > 1+1e-15 {
				t.Fatalf("multiplier (%d,%d)=%v exceeds 1", i, j, lu.At(i, j))
			}
		}
	}
}

func TestGetrf2Singular(t *testing.T) {
	a := mat.New(3, 3) // all zeros
	if err := Getrf2(a, make([]int, 3)); err != ErrSingular {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestGetrfBlockedMatchesUnblocked(t *testing.T) {
	for _, nb := range []int{1, 2, 3, 8, 64} {
		a := mat.Random(20, 20, 77)
		lu1 := a.Clone()
		ipiv1 := make([]int, 20)
		if err := Getrf2(lu1, ipiv1); err != nil {
			t.Fatal(err)
		}
		lu2 := a.Clone()
		ipiv2 := make([]int, 20)
		if err := Getrf(lu2, ipiv2, nb); err != nil {
			t.Fatal(err)
		}
		if d := mat.MaxAbsDiff(lu1, lu2); d > 1e-11 {
			t.Fatalf("nb=%d factor diff %v", nb, d)
		}
		for i := range ipiv1 {
			if ipiv1[i] != ipiv2[i] {
				t.Fatalf("nb=%d pivot %d: %d vs %d", nb, i, ipiv1[i], ipiv2[i])
			}
		}
	}
}

func TestGetrfRectangularBlocked(t *testing.T) {
	a := mat.Random(17, 10, 5)
	lu := a.Clone()
	ipiv := make([]int, 10)
	if err := Getrf(lu, ipiv, 4); err != nil {
		t.Fatal(err)
	}
	if r := residual(a, lu, ipiv); r > 1e-12 {
		t.Fatalf("residual %v", r)
	}
}

func TestPhantomGetrf(t *testing.T) {
	a := mat.NewPhantom(8, 8)
	ipiv := make([]int, 8)
	if err := Getrf(a, ipiv, 4); err != nil {
		t.Fatal(err)
	}
	for i, p := range ipiv {
		if p != i {
			t.Fatalf("phantom ipiv[%d]=%d", i, p)
		}
	}
}

func TestPermFromIpiv(t *testing.T) {
	// ipiv = {2, 2, 2}: row 0 swaps with 2, then 1 with 2, then 2 with 2.
	// Forward application of the interchanges to (0 1 2) gives (2 0 1).
	if got := PermFromIpiv([]int{2, 2, 2}, 3); got[0] != 2 || got[1] != 0 || got[2] != 1 {
		t.Fatalf("perm %v want [2 0 1]", got)
	}
	// Identity interchanges yield the identity permutation, including for
	// trailing rows beyond len(ipiv).
	if got := PermFromIpiv([]int{0, 1}, 4); got[2] != 2 || got[3] != 3 || got[0] != 0 {
		t.Fatalf("identity perm %v", got)
	}
	// A permutation is a bijection: every row index appears exactly once.
	perm := PermFromIpiv([]int{3, 4, 2, 4, 4}, 5)
	seen := map[int]bool{}
	for _, p := range perm {
		if p < 0 || p >= 5 || seen[p] {
			t.Fatalf("not a permutation: %v", perm)
		}
		seen[p] = true
	}
}

func TestLaswpMatchesPermFromIpiv(t *testing.T) {
	a := mat.Random(6, 3, 8)
	ipiv := []int{3, 1, 5}
	b := a.Clone()
	Laswp(b, ipiv)
	perm := PermFromIpiv(ipiv, 6)
	c := mat.PermuteRows(a, perm)
	if mat.MaxAbsDiff(b, c) != 0 {
		t.Fatal("Laswp and PermFromIpiv disagree")
	}
}

func TestGetrs(t *testing.T) {
	n := 12
	a := mat.RandomDiagDominant(n, 4)
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i) - 3
	}
	b := make([]float64, n)
	blas.Gemv(1, a, x, 0, b)
	lu := a.Clone()
	ipiv := make([]int, n)
	if err := Getrf(lu, ipiv, 4); err != nil {
		t.Fatal(err)
	}
	Getrs(lu, ipiv, b)
	for i := range x {
		if math.Abs(b[i]-x[i]) > 1e-9 {
			t.Fatalf("solve mismatch at %d: %v vs %v", i, b[i], x[i])
		}
	}
}

func TestSelectCandidatesPicksLargeRows(t *testing.T) {
	v := 2
	rows := mat.New(5, v)
	// Row 3 and row 0 carry the dominant entries.
	rows.Set(0, 0, 9)
	rows.Set(1, 0, 0.1)
	rows.Set(2, 1, 0.2)
	rows.Set(3, 1, 8)
	rows.Set(3, 0, 0.5)
	rows.Set(4, 0, 0.3)
	c := Candidates{Rows: rows, IDs: []int{10, 11, 12, 13, 14}}
	win, err := SelectCandidates(c, v)
	if err != nil {
		t.Fatal(err)
	}
	if len(win.IDs) != v {
		t.Fatalf("want %d winners, got %v", v, win.IDs)
	}
	got := map[int]bool{win.IDs[0]: true, win.IDs[1]: true}
	if !got[10] || !got[13] {
		t.Fatalf("winners %v, want {10,13}", win.IDs)
	}
	// Winner rows carry ORIGINAL (unfactored) data.
	for i, id := range win.IDs {
		src := id - 10
		for j := 0; j < v; j++ {
			if win.Rows.At(i, j) != rows.At(src, j) {
				t.Fatalf("winner %d row not original data", i)
			}
		}
	}
	// Input untouched.
	if rows.At(0, 0) != 9 || rows.At(3, 1) != 8 {
		t.Fatal("SelectCandidates modified its input")
	}
}

func TestSelectCandidatesFewerThanV(t *testing.T) {
	rows := mat.New(1, 3)
	rows.Set(0, 0, 2)
	win, err := SelectCandidates(Candidates{Rows: rows, IDs: []int{7}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(win.IDs) != 1 || win.IDs[0] != 7 {
		t.Fatalf("winners %v", win.IDs)
	}
}

func TestMergeCandidates(t *testing.T) {
	a := Candidates{Rows: mat.Random(2, 3, 1), IDs: []int{1, 2}}
	b := Candidates{Rows: mat.Random(3, 3, 2), IDs: []int{5, 6, 7}}
	m := MergeCandidates(a, b)
	if m.Rows.Rows != 5 || len(m.IDs) != 5 || m.IDs[2] != 5 {
		t.Fatalf("merge wrong: %v", m.IDs)
	}
	if m.Rows.At(0, 0) != a.Rows.At(0, 0) || m.Rows.At(2, 1) != b.Rows.At(0, 1) {
		t.Fatal("merged data wrong")
	}
}

func TestMergeCandidatesPhantom(t *testing.T) {
	a := Candidates{Rows: mat.NewPhantom(2, 3), IDs: []int{1, 2}}
	b := Candidates{Rows: mat.NewPhantom(1, 3), IDs: []int{9}}
	m := MergeCandidates(a, b)
	if !m.Rows.Phantom() || m.Rows.Rows != 3 {
		t.Fatal("phantom merge wrong")
	}
	win, err := SelectCandidates(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(win.IDs) != 2 || !win.Rows.Phantom() {
		t.Fatal("phantom select wrong")
	}
}

func TestFactorA00(t *testing.T) {
	win := Candidates{Rows: mat.RandomDiagDominant(4, 3), IDs: []int{3, 1, 4, 1591}}
	a00, ids, err := FactorA00(win)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 4 {
		t.Fatalf("ids %v", ids)
	}
	// LU of the (possibly reordered) winner rows must reproduce them.
	l, u := SplitLU(a00)
	prod := mat.New(4, 4)
	blas.Gemm(1, l, u, 0, prod)
	// Map: prod row i corresponds to original winner with IDs[i].
	for i, id := range ids {
		var src int
		for k, w := range win.IDs {
			if w == id {
				src = k
				break
			}
		}
		for j := 0; j < 4; j++ {
			if math.Abs(prod.At(i, j)-win.Rows.At(src, j)) > 1e-10 {
				t.Fatalf("row %d (%d) mismatch", i, id)
			}
		}
	}
}

// Property: tournament selection over random splits always returns v distinct
// IDs drawn from the input, and the growth factor of winners is bounded
// (tournament pivoting stability, paper §7.3).
func TestQuickTournamentInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		g := mat.NewRNG(seed)
		v := 2 + g.Intn(3)
		m := v + g.Intn(10)
		rows := mat.Random(m, v, seed+1)
		ids := make([]int, m)
		for i := range ids {
			ids[i] = 100 + i
		}
		win, err := SelectCandidates(Candidates{Rows: rows, IDs: ids}, v)
		if err != nil {
			// Random matrices are almost never singular; treat as failure.
			return false
		}
		seen := map[int]bool{}
		for _, id := range win.IDs {
			if id < 100 || id >= 100+m || seen[id] {
				return false
			}
			seen[id] = true
		}
		return len(win.IDs) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Getrf2 then recombination reproduces PA for random sizes.
func TestQuickGetrfResidual(t *testing.T) {
	f := func(seed uint64) bool {
		g := mat.NewRNG(seed)
		n := 2 + g.Intn(14)
		m := n + g.Intn(6)
		a := mat.Random(m, n, seed+9)
		lu := a.Clone()
		ipiv := make([]int, n)
		if err := Getrf2(lu, ipiv); err != nil {
			return false
		}
		return residual(a, lu, ipiv) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
