package lapack

import (
	"fmt"

	"repro/internal/mat"
)

// Candidates is a stack of pivot-candidate rows flowing through a tournament
// round: Rows is the v-column data block, IDs are the global (physical) row
// indices each stacked row came from. COnfLUX never swaps rows — winners are
// identified by ID and masked out of future steps (paper §7.3).
type Candidates struct {
	Rows *mat.Matrix // m×v block of candidate rows
	IDs  []int       // global row index of each stacked row
}

// SelectCandidates picks the (up to) v best pivot rows from the stack by LU
// factorization with partial pivoting, mirroring the local step of
// tournament pivoting (Grigori, Demmel, Xiang — CALU). It returns the
// winning rows (in tournament order) with their IDs. The input is not
// modified.
func SelectCandidates(c Candidates, v int) (Candidates, error) {
	m := c.Rows.Rows
	if len(c.IDs) != m {
		panic(fmt.Sprintf("lapack: SelectCandidates %d IDs for %d rows", len(c.IDs), m))
	}
	if v > c.Rows.Cols {
		panic("lapack: SelectCandidates v exceeds block width")
	}
	take := min(v, m)
	work := c.Rows.Clone()
	ids := append([]int(nil), c.IDs...)
	if work.Phantom() {
		// Volume mode: no values to compare. Pick winners strided across the
		// stack so that, as in the paper ("with high probability, pivots are
		// evenly distributed among all processors"), winners spread over the
		// contributing ranks instead of clustering at the front.
		picked := make([]int, take)
		for i := 0; i < take; i++ {
			picked[i] = ids[i*m/take]
		}
		return Candidates{Rows: mat.NewPhantom(take, c.Rows.Cols), IDs: picked}, nil
	}
	piv := make([]int, min(take, work.Cols))
	if err := Getrf2(work.View(0, 0, m, len(piv)), piv); err != nil {
		return Candidates{}, err
	}
	for k, p := range piv {
		ids[k], ids[p] = ids[p], ids[k]
	}
	// Winners are the first `take` rows of the pivoted ORIGINAL data.
	perm := PermFromIpiv(piv, m)
	out := mat.New(take, c.Rows.Cols)
	for i := 0; i < take; i++ {
		copy(out.Row(i), c.Rows.Row(perm[i]))
	}
	return Candidates{Rows: out, IDs: ids[:take]}, nil
}

// MergeCandidates stacks two candidate sets (a tournament "playoff" game).
func MergeCandidates(a, b Candidates) Candidates {
	if a.Rows.Cols != b.Rows.Cols {
		panic("lapack: MergeCandidates width mismatch")
	}
	m := a.Rows.Rows + b.Rows.Rows
	ids := make([]int, 0, m)
	ids = append(ids, a.IDs...)
	ids = append(ids, b.IDs...)
	if a.Rows.Phantom() || b.Rows.Phantom() {
		return Candidates{Rows: mat.NewPhantom(m, a.Rows.Cols), IDs: ids}
	}
	out := mat.New(m, a.Rows.Cols)
	out.View(0, 0, a.Rows.Rows, a.Rows.Cols).CopyFrom(a.Rows)
	out.View(a.Rows.Rows, 0, b.Rows.Rows, b.Rows.Cols).CopyFrom(b.Rows)
	return Candidates{Rows: out, IDs: ids}
}

// FactorA00 runs the final LU (no pivoting needed beyond tournament order)
// on the v×v winner block, producing the in-place L00\U00 factor used by the
// A10/A01 triangular solves. Winner rows arrive in tournament order, which
// is already a stable pivot order, but we still factor with partial
// pivoting within the block for numerical safety and return the local
// ordering applied to the IDs.
func FactorA00(winners Candidates) (a00 *mat.Matrix, ids []int, err error) {
	v := winners.Rows.Rows
	if winners.Rows.Cols != v {
		panic("lapack: FactorA00 expects a square winner block")
	}
	a00 = winners.Rows.Clone()
	ids = append([]int(nil), winners.IDs...)
	piv := make([]int, v)
	if err := Getrf2(a00, piv); err != nil {
		return nil, nil, err
	}
	for k, p := range piv {
		ids[k], ids[p] = ids[p], ids[k]
	}
	return a00, ids, nil
}
