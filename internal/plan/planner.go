package plan

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	conflux "repro"
	"repro/internal/costmodel"
	"repro/internal/engine"
)

// Typed shedding errors. cmd/confluxd maps them onto HTTP 429/503 with
// Retry-After; programmatic callers branch with errors.Is.
var (
	// ErrOverloaded: the simulation pool is full and the wait queue is at
	// capacity — the request was rejected without queueing at all.
	ErrOverloaded = errors.New("plan: overloaded, simulation queue full")
	// ErrQueueTimeout: the request queued for a simulation slot but none
	// freed up within the queue timeout.
	ErrQueueTimeout = errors.New("plan: timed out waiting for a simulation slot")
)

// Exact is the exact simulation tier: the metered quantities of one run,
// straight off the trace report. It deliberately carries no
// executor/workers provenance — responses must be byte-identical whichever
// executor produced them, which is the same pin that keeps those fields
// out of the cache key.
type Exact struct {
	// TotalBytes is the aggregate bytes sent, housekeeping included.
	TotalBytes int64 `json:"total_bytes"`
	// AlgorithmBytes excludes the layout scatter and collect gather —
	// the paper's headline metric.
	AlgorithmBytes int64 `json:"algorithm_bytes"`
	// PerRankBytes is TotalBytes averaged over ranks (Fig. 6 y-axis).
	PerRankBytes float64 `json:"per_rank_bytes"`
	// MaxRankBytes is the most-loaded rank's sent bytes.
	MaxRankBytes int64 `json:"max_rank_bytes"`
	// Msgs is the aggregate message count.
	Msgs int64 `json:"msgs"`
	// MaxRankMsgs is the latency-critical path: the largest timed-phase
	// message count any rank injects.
	MaxRankMsgs int64 `json:"max_rank_msgs"`
	// Makespan is the simulated α-β makespan in seconds.
	Makespan float64 `json:"makespan_s"`
	// CritBusy is the critical rank's pure transfer time (waits
	// excluded).
	CritBusy float64 `json:"crit_busy_s"`
	// Grid describes the processor grid the engine chose.
	Grid string `json:"grid,omitempty"`
}

// Model is the instant approximate tier: the closed-form Table 2 cost
// model plus the α-β prediction it implies, served while (or instead of)
// the exact simulation running. For JobSolve requests it covers the
// factorization phase only — the paper has no closed-form solve model.
type Model struct {
	PerRankBytes     float64 `json:"per_rank_bytes"`
	TotalBytes       float64 `json:"total_bytes"`
	ApproxMsgs       float64 `json:"approx_msgs"`
	PredictedSeconds float64 `json:"predicted_s"`
}

// ModelFor returns the model tier for a canonicalized request, or false
// for algorithms outside the Table 2 comparison set (Cholesky).
func ModelFor(req Request) (Model, bool) {
	found := false
	for _, a := range costmodel.Algorithms {
		if a == req.Algorithm {
			found = true
			break
		}
	}
	if !found {
		return Model{}, false
	}
	params := costmodel.Params{N: req.N, P: req.P, M: req.Memory}
	machine := conflux.Machine{Alpha: req.Alpha, Beta: req.Beta}
	msgs := costmodel.ApproxPerRankMsgs(req.Algorithm, params, req.NB)
	return Model{
		PerRankBytes:     costmodel.PerRankBytes(req.Algorithm, params),
		TotalBytes:       costmodel.TotalBytes(req.Algorithm, params),
		ApproxMsgs:       msgs,
		PredictedSeconds: costmodel.PredictedTime(req.Algorithm, params, machine, msgs),
	}, true
}

// Simulate runs the exact simulation for a canonicalized request on a
// one-shot Session — the same public path interactive callers use, so a
// cached Exact is byte-identical to an uncached conflux run by
// construction (pinned by TestExactMatchesUncachedSession).
func Simulate(ctx context.Context, req Request) (*Exact, error) {
	s, err := req.Session()
	if err != nil {
		return nil, err
	}
	var rep *conflux.VolumeReport
	if req.Job == JobSolve {
		rep, err = s.CommVolumeSolve(ctx, req.N)
	} else {
		rep, err = s.CommVolume(ctx, req.N)
	}
	if err != nil {
		return nil, err
	}
	grid := ""
	if eng, lerr := engine.Lookup(req.Algorithm); lerr == nil {
		grid = engine.GridDesc(eng, req.N, engine.Config{Ranks: req.P, Memory: req.Memory, NB: req.NB})
	}
	return &Exact{
		TotalBytes:     rep.TotalBytes(),
		AlgorithmBytes: conflux.AlgorithmBytes(rep),
		PerRankBytes:   rep.PerNodeBytes(),
		MaxRankBytes:   rep.MaxRankBytes(),
		Msgs:           rep.TotalMsgs(),
		MaxRankMsgs:    rep.Time.MaxRankMsgs(),
		Makespan:       rep.Time.Makespan,
		CritBusy:       rep.Time.CritBusy(),
		Grid:           grid,
	}, nil
}

// Options configures a Planner. The zero value selects serving defaults.
type Options struct {
	// MaxInFlight bounds concurrently running simulations (default
	// GOMAXPROCS).
	MaxInFlight int
	// MaxQueue bounds requests waiting for a simulation slot; a request
	// arriving with the queue full is shed immediately with
	// ErrOverloaded (default 64; negative means 0 — shed the moment the
	// pool is full).
	MaxQueue int
	// QueueTimeout bounds how long a queued computation waits for a slot
	// before shedding with ErrQueueTimeout (default 2s).
	QueueTimeout time.Duration
	// SimTimeout bounds one simulation's wall clock (default 2m); it
	// rides the Session cancellation machinery, so a stuck schedule
	// aborts instead of pinning a slot.
	SimTimeout time.Duration
	// MaxEntries bounds the result cache (default 64k entries).
	MaxEntries int
	// Runner computes the exact tier (default Simulate). Tests inject
	// fakes here.
	Runner func(ctx context.Context, req Request) (*Exact, error)
}

// Planner is the admission-controlled serving core: a result cache with
// singleflight in front of a bounded simulation pool. All methods are safe
// for concurrent use.
type Planner struct {
	cache        *Cache
	sem          chan struct{}
	maxQueue     int
	queueTimeout time.Duration
	simTimeout   time.Duration
	base         context.Context
	run          func(ctx context.Context, req Request) (*Exact, error)

	queued      atomic.Int64
	sims        atomic.Int64
	simErrors   atomic.Int64
	shedFull    atomic.Int64
	shedTimeout atomic.Int64
}

// NewPlanner constructs a planner whose background computations live until
// ctx is canceled (pass the server's lifetime context).
func NewPlanner(ctx context.Context, o Options) *Planner {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if o.MaxQueue == 0 {
		o.MaxQueue = 64
	}
	if o.MaxQueue < 0 {
		o.MaxQueue = 0
	}
	if o.QueueTimeout <= 0 {
		o.QueueTimeout = 2 * time.Second
	}
	if o.SimTimeout <= 0 {
		o.SimTimeout = 2 * time.Minute
	}
	if o.Runner == nil {
		o.Runner = Simulate
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return &Planner{
		cache:        NewCache(o.MaxEntries),
		sem:          make(chan struct{}, o.MaxInFlight),
		maxQueue:     o.MaxQueue,
		queueTimeout: o.QueueTimeout,
		simTimeout:   o.SimTimeout,
		base:         ctx,
		run:          o.Runner,
	}
}

// Outcome classifies how Evaluate answered.
type Outcome string

const (
	// OutcomeHit: served from the cache.
	OutcomeHit Outcome = "hit"
	// OutcomeComputed: a simulation ran (or was joined) and completed
	// within the wait budget.
	OutcomeComputed Outcome = "computed"
	// OutcomePending: the simulation is still running; the caller got no
	// exact tier yet, but a later identical request will hit the cache.
	OutcomePending Outcome = "pending"
)

// Evaluate answers one canonicalized request: cache hit, join of an
// in-flight computation, or a freshly admitted simulation. wait bounds how
// long the caller blocks for the exact tier; 0 returns immediately
// (OutcomePending on anything but a hit) while the computation proceeds in
// the background — the fast-tier contract. Shedding (ErrOverloaded,
// ErrQueueTimeout) surfaces as an error to every caller coalesced onto the
// shed computation; the cache retries it on the next request.
//
// The computation itself is detached from the caller: it runs under the
// planner's lifetime context, so one canceled client never kills work
// other clients are waiting on.
func (p *Planner) Evaluate(ctx context.Context, req Request, wait time.Duration) (*Exact, Outcome, error) {
	req, err := req.Canonicalize()
	if err != nil {
		return nil, "", err
	}
	key := req.Key()
	e, owner := p.cache.begin(key)
	if owner {
		go p.compute(key, e, req)
	} else if e.completed() {
		if e.err != nil {
			return nil, "", e.err
		}
		return e.val, OutcomeHit, nil
	}
	if wait <= 0 {
		// Still report a completion that raced ahead of us.
		if e.completed() && e.err == nil {
			return e.val, OutcomeComputed, nil
		}
		return nil, OutcomePending, nil
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-e.done:
		if e.err != nil {
			return nil, "", e.err
		}
		return e.val, OutcomeComputed, nil
	case <-timer.C:
		return nil, OutcomePending, nil
	case <-ctx.Done():
		return nil, "", context.Cause(ctx)
	}
}

// compute is the detached owner-side computation: admission (bounded
// queue, queue timeout), then the simulation under the planner lifetime
// and the per-run timeout. Its outcome — value, simulation error, or typed
// shed error — is published to every waiter through the cache entry.
func (p *Planner) compute(key string, e *entry, req Request) {
	// Fast path: a free slot, no queueing.
	select {
	case p.sem <- struct{}{}:
	default:
		// Pool full: queue if there is room, shed otherwise.
		if q := p.queued.Add(1); q > int64(p.maxQueue) {
			p.queued.Add(-1)
			p.shedFull.Add(1)
			p.cache.complete(key, e, nil, fmt.Errorf("%w (%d in flight, %d queued)",
				ErrOverloaded, cap(p.sem), p.maxQueue))
			return
		}
		timer := time.NewTimer(p.queueTimeout)
		select {
		case p.sem <- struct{}{}:
			p.queued.Add(-1)
			timer.Stop()
		case <-timer.C:
			p.queued.Add(-1)
			p.shedTimeout.Add(1)
			p.cache.complete(key, e, nil, fmt.Errorf("%w (waited %v)", ErrQueueTimeout, p.queueTimeout))
			return
		case <-p.base.Done():
			p.queued.Add(-1)
			timer.Stop()
			p.cache.complete(key, e, nil, context.Cause(p.base))
			return
		}
	}
	defer func() { <-p.sem }()
	ctx, cancel := context.WithTimeout(p.base, p.simTimeout)
	defer cancel()
	p.sims.Add(1)
	val, err := p.run(ctx, req)
	if err != nil {
		p.simErrors.Add(1)
	}
	p.cache.complete(key, e, val, err)
}

// Stats is the planner's point-in-time serving view — the cache-stats
// surface cmd/confluxd exposes, and what the CI load test asserts
// singleflight on (50 concurrent identical requests → Simulations == 1).
type Stats struct {
	Cache            CacheStats `json:"cache"`
	Simulations      int64      `json:"simulations"`
	SimErrors        int64      `json:"sim_errors"`
	InFlight         int        `json:"in_flight"`
	Queued           int64      `json:"queued"`
	ShedQueueFull    int64      `json:"shed_queue_full"`
	ShedQueueTimeout int64      `json:"shed_queue_timeout"`
}

// Stats snapshots the serving counters.
func (p *Planner) Stats() Stats {
	return Stats{
		Cache:            p.cache.Stats(),
		Simulations:      p.sims.Load(),
		SimErrors:        p.simErrors.Load(),
		InFlight:         len(p.sem),
		Queued:           p.queued.Load(),
		ShedQueueFull:    p.shedFull.Load(),
		ShedQueueTimeout: p.shedTimeout.Load(),
	}
}
