// Package plan is the serving layer behind cmd/confluxd: it canonicalizes
// planner requests into deterministic cache keys, runs the exact
// simulations through the public Session API behind a sharded
// result cache with singleflight coalescing, and sheds load when the
// simulation pool is saturated.
//
// The correctness story rests on PR 2/PR 6's determinism pins: every
// simulation in this repo is a pure function of the canonical parameter
// tuple (engine, N, P, M, nb, machine α/β, solve geometry) — reports are
// byte-identical across reps, executors, and event-window widths. Results
// are therefore infinitely cacheable, and the one obligation this package
// owns is getting the key boundary exactly right: every
// result-determining field of conflux.Config must be in the key (a missed
// field aliases distinct results), and the fields pinned to change nothing
// (Executor, Workers, Timeout) must stay out (including them only
// fragments the cache). TestKeyCoversConfig enforces the classification by
// reflecting over conflux.Config, so a new Session option cannot land
// without being classified here first. See DESIGN.md §13.
package plan

import (
	"fmt"
	"strconv"
	"strings"

	conflux "repro"
	"repro/internal/costmodel"
	"repro/internal/topo"
)

// Job selects which simulation a request replays.
type Job string

const (
	// JobVolume replays the factorization communication schedule
	// (Session.CommVolume).
	JobVolume Job = "volume"
	// JobSolve replays the end-to-end factorize-plus-solve schedule
	// (Session.CommVolumeSolve).
	JobSolve Job = "solve"
)

// Valid reports whether j names a job ("" counts as JobVolume).
func (j Job) Valid() bool { return j == "" || j == JobVolume || j == JobSolve }

// KeyFields and ExcludedFields classify every leaf field of
// conflux.Config for cache-key purposes. TestKeyCoversConfig asserts the
// two lists together cover the struct exactly, so the lists are the
// authoritative record of why each field is in or out:
//
//   - key fields determine simulation outputs (the canonical tuple);
//   - excluded fields are pinned by the parity suites to change nothing
//     observable (Executor: DESIGN.md §11; Workers: §12; KernelWorkers:
//     §15 — numeric factors are bit-identical at every kernel width) or
//     bound only wall-clock execution (Timeout), so keying on them would
//     fragment the cache into byte-identical copies.
var (
	KeyFields = []string{
		"Ranks", "Memory", "Algorithm", "Machine.Alpha", "Machine.Beta",
		"SolveRanks", "RHS", "RefineSweeps", "BlockSize",
		// The topology spec changes every simulated clock (two topologies
		// must never share a cache entry), but reports stay bit-identical
		// across executors and widths under any topology — so the whole
		// nested spec is key-relevant, encoded preset name + exact-hex
		// floats like the machine β. Faults is the fault plan's canonical
		// string (already exact-hex), keyed verbatim.
		"Topology.Preset", "Topology.RanksPerNode", "Topology.NodesPerGroup",
		"Topology.Radix", "Topology.Intra.Alpha", "Topology.Intra.Beta",
		"Topology.Inter.Alpha", "Topology.Inter.Beta",
		"Topology.Global.Alpha", "Topology.Global.Beta",
		"Topology.Contention", "Faults",
	}
	ExcludedFields = []string{"Timeout", "Executor", "Workers", "KernelWorkers"}
)

// Request is one canonical planner evaluation: a single (engine, problem,
// machine, solve-geometry) point. It mirrors the key-relevant fields of
// conflux.Config plus the problem size N and the job kind.
type Request struct {
	Algorithm costmodel.Algorithm `json:"algorithm"`
	N         int                 `json:"n"`
	P         int                 `json:"p"`
	// Memory is the per-rank fast memory in elements. Canonicalize
	// resolves the paper default (<= 0) to its explicit per-(N, P) value,
	// so "default" and "explicitly the default value" share a key.
	Memory float64 `json:"memory"`
	// NB is the user-specified blocking parameter; 0 keeps the engine
	// default. 0 is canonical as-is: the default is deterministic given
	// the rest of the tuple, so 0 and the spelled-out default value can
	// at worst miss each other (a false miss, never a false hit).
	NB           int     `json:"nb"`
	Alpha        float64 `json:"alpha"`
	Beta         float64 `json:"beta"`
	SolveRanks   int     `json:"solve_ranks"`
	RHS          int     `json:"rhs"`
	RefineSweeps int     `json:"refine_sweeps"`
	// Topology is the network-topology spec (zero = plain machine).
	// Canonicalize does not deep-validate it — an unbuildable spec fails
	// at Session construction with the public error, while the key stays
	// a pure encoding (it can only ever miss, never alias).
	Topology conflux.Topology `json:"topology,omitzero"`
	// Faults is the canonical fault-plan encoding ("" = none).
	Faults string `json:"faults,omitempty"`
	Job    Job    `json:"job"`
}

// Canonicalize validates req and resolves every defaultable field to its
// explicit value, so that all requests naming the same simulation produce
// the same Key.
func (r Request) Canonicalize() (Request, error) {
	if r.Algorithm == "" {
		return r, fmt.Errorf("plan: request has no algorithm")
	}
	if r.N <= 0 || r.P <= 0 {
		return r, fmt.Errorf("plan: request requires n > 0 and p > 0, got n=%d p=%d", r.N, r.P)
	}
	if r.Memory < 0 || r.NB < 0 || r.SolveRanks < 0 || r.RHS < 0 || r.RefineSweeps < 0 {
		return r, fmt.Errorf("plan: negative parameter in request %+v", r)
	}
	if !r.Job.Valid() {
		return r, fmt.Errorf("plan: unknown job %q (want %q or %q)", r.Job, JobVolume, JobSolve)
	}
	if r.Memory == 0 {
		r.Memory = costmodel.MaxMemoryParams(r.N, r.P).M
	}
	if r.SolveRanks == 0 {
		r.SolveRanks = r.P
	}
	if r.RHS == 0 {
		r.RHS = 1
	}
	if r.Job == "" {
		r.Job = JobVolume
	}
	return r, nil
}

// Key returns the deterministic cache key of the canonicalized request.
// Floats are rendered in exact hexadecimal ('x'), so two machines differing
// in the last ulp of β still miss each other — the cache can only ever be
// exactly right or conservatively cold, never wrong.
func (r Request) Key() string {
	var b strings.Builder
	b.Grow(128)
	b.WriteString("plan/v1")
	kv := func(k, v string) {
		b.WriteByte('|')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(v)
	}
	kv("job", string(r.Job))
	kv("algo", string(r.Algorithm))
	kv("n", strconv.Itoa(r.N))
	kv("p", strconv.Itoa(r.P))
	kv("m", strconv.FormatFloat(r.Memory, 'x', -1, 64))
	kv("nb", strconv.Itoa(r.NB))
	kv("alpha", strconv.FormatFloat(r.Alpha, 'x', -1, 64))
	kv("beta", strconv.FormatFloat(r.Beta, 'x', -1, 64))
	kv("sr", strconv.Itoa(r.SolveRanks))
	kv("rhs", strconv.Itoa(r.RHS))
	kv("ref", strconv.Itoa(r.RefineSweeps))
	// Topology + faults: preset name and shape as integers, per-tier
	// machines in exact hex like α/β above. The zero spec renders a fixed
	// short tail, so pre-topology and zero-topology requests share keys
	// only with each other — never with a configured topology.
	kv("topo", r.Topology.Preset)
	kv("rpn", strconv.Itoa(r.Topology.RanksPerNode))
	kv("npg", strconv.Itoa(r.Topology.NodesPerGroup))
	kv("radix", strconv.Itoa(r.Topology.Radix))
	kv("tia", strconv.FormatFloat(r.Topology.Intra.Alpha, 'x', -1, 64))
	kv("tib", strconv.FormatFloat(r.Topology.Intra.Beta, 'x', -1, 64))
	kv("tea", strconv.FormatFloat(r.Topology.Inter.Alpha, 'x', -1, 64))
	kv("teb", strconv.FormatFloat(r.Topology.Inter.Beta, 'x', -1, 64))
	kv("tga", strconv.FormatFloat(r.Topology.Global.Alpha, 'x', -1, 64))
	kv("tgb", strconv.FormatFloat(r.Topology.Global.Beta, 'x', -1, 64))
	kv("cont", strconv.Itoa(r.Topology.Contention))
	kv("faults", r.Faults)
	return b.String()
}

// FromConfig derives the canonical request for running job at dimension n
// on a session with the given resolved configuration. It consumes exactly
// the KeyFields of cfg — the ExcludedFields are dropped here, which is the
// code-level twin of the classification TestKeyCoversConfig enforces.
func FromConfig(cfg conflux.Config, n int, job Job) (Request, error) {
	return Request{
		Algorithm:    cfg.Algorithm,
		N:            n,
		P:            cfg.Ranks,
		Memory:       cfg.Memory,
		NB:           cfg.BlockSize,
		Alpha:        cfg.Machine.Alpha,
		Beta:         cfg.Machine.Beta,
		SolveRanks:   cfg.SolveRanks,
		RHS:          cfg.RHS,
		RefineSweeps: cfg.RefineSweeps,
		Topology:     cfg.Topology,
		Faults:       cfg.Faults,
		Job:          job,
	}.Canonicalize()
}

// Session constructs the one-shot Session a canonicalized request runs on —
// the same public constructor path interactive callers use, so cached
// results are byte-identical to an uncached conflux run by construction.
func (r Request) Session() (*conflux.Session, error) {
	opts := []conflux.Option{
		conflux.WithRanks(r.P),
		conflux.WithMemory(r.Memory),
		conflux.WithAlgorithm(r.Algorithm),
		conflux.WithMachine(conflux.Machine{Alpha: r.Alpha, Beta: r.Beta}),
		conflux.WithSolveRanks(r.SolveRanks),
		conflux.WithRHS(r.RHS),
		conflux.WithRefineSweeps(r.RefineSweeps),
	}
	if r.NB > 0 {
		opts = append(opts, conflux.WithBlockSize(r.NB))
	}
	if !r.Topology.IsZero() {
		opts = append(opts, conflux.WithTopology(r.Topology))
	}
	if r.Faults != "" {
		fp, err := topo.ParseFaultPlan(r.Faults)
		if err != nil {
			return nil, err
		}
		opts = append(opts, conflux.WithFaults(fp))
	}
	return conflux.New(opts...)
}
