package plan

import (
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	conflux "repro"
	"repro/internal/costmodel"
)

// configLeaves flattens conflux.Config into leaf field paths
// ("Machine.Alpha", "Ranks", ...), recursing into nested structs so a new
// field anywhere in the tuple shows up as an unclassified leaf.
func configLeaves(t *testing.T, typ reflect.Type, prefix string) []string {
	t.Helper()
	var out []string
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		name := f.Name
		if prefix != "" {
			name = prefix + "." + name
		}
		if f.Type.Kind() == reflect.Struct {
			out = append(out, configLeaves(t, f.Type, name)...)
			continue
		}
		out = append(out, name)
	}
	return out
}

// TestKeyCoversConfig is the key-completeness gate: every leaf field of
// conflux.Config must be classified — in the cache key (KeyFields) or
// provably result-irrelevant (ExcludedFields) — exactly once. Adding a
// Session option without deciding its cache semantics fails here, which is
// the central correctness obligation of the planner service: a missed key
// field would alias distinct results, a spuriously included one would
// fragment the cache across byte-identical entries.
func TestKeyCoversConfig(t *testing.T) {
	got := configLeaves(t, reflect.TypeOf(conflux.Config{}), "")
	want := append(append([]string{}, KeyFields...), ExcludedFields...)
	sort.Strings(got)
	sort.Strings(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("conflux.Config leaves %v\nclassified %v\nevery field must appear in exactly one of plan.KeyFields / plan.ExcludedFields", got, want)
	}
	seen := map[string]bool{}
	for _, f := range append(append([]string{}, KeyFields...), ExcludedFields...) {
		if seen[f] {
			t.Fatalf("field %q classified twice", f)
		}
		seen[f] = true
	}
}

// baseConfig is a fully explicit resolved configuration: every field
// non-zero so a +1 perturbation is always visible.
func baseConfig() conflux.Config {
	return conflux.Config{
		Ranks:        8,
		Memory:       4096,
		Algorithm:    conflux.COnfLUX,
		Machine:      conflux.DefaultMachine(),
		SolveRanks:   6,
		RHS:          2,
		RefineSweeps: 1,
		BlockSize:    32,
		// Every topology leaf non-zero too, so the KeyFields perturbation
		// loop below exercises each one (a +1 on a zero float is equally
		// visible, but non-zero bases also catch accidental
		// normalization in the key path).
		Topology: conflux.Topology{
			Preset: "hier", RanksPerNode: 4, NodesPerGroup: 8, Radix: 4,
			Intra:      conflux.Machine{Alpha: 3e-7, Beta: 2e-11},
			Inter:      conflux.Machine{Alpha: 1.5e-6, Beta: 1.25e-10},
			Global:     conflux.Machine{Alpha: 2.7e-6, Beta: 2e-10},
			Contention: 1,
		},
		Faults:        "L0:1:0x1p+03,S3:0x1p+01",
		Timeout:       time.Minute,
		Executor:      "auto",
		Workers:       1,
		KernelWorkers: 1,
	}
}

// perturbField bumps the leaf at path in cfg by a type-appropriate delta.
func perturbField(t *testing.T, cfg *conflux.Config, path string) {
	t.Helper()
	v := reflect.ValueOf(cfg).Elem()
	for _, part := range strings.Split(path, ".") {
		v = v.FieldByName(part)
		if !v.IsValid() {
			t.Fatalf("no field %q in conflux.Config", path)
		}
	}
	switch v.Kind() {
	case reflect.Int, reflect.Int64:
		v.SetInt(v.Int() + 1)
	case reflect.Float64:
		v.SetFloat(v.Float() + 1)
	case reflect.String:
		v.SetString(v.String() + "x")
	default:
		t.Fatalf("perturbField: unhandled kind %v for %q — extend the test", v.Kind(), path)
	}
}

// TestKeySensitivity drives the classification end to end: perturbing any
// KeyField changes the key (requests differing only in machine β, nb,
// memory, ... MISS each other), while perturbing any ExcludedField leaves
// it unchanged (requests differing only in executor, workers, or timeout
// HIT the same entry).
func TestKeySensitivity(t *testing.T) {
	base, err := FromConfig(baseConfig(), 256, JobVolume)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range KeyFields {
		cfg := baseConfig()
		perturbField(t, &cfg, path)
		req, err := FromConfig(cfg, 256, JobVolume)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if req.Key() == base.Key() {
			t.Errorf("perturbing key field %s did not change the key %q", path, base.Key())
		}
	}
	for _, path := range ExcludedFields {
		cfg := baseConfig()
		perturbField(t, &cfg, path)
		req, err := FromConfig(cfg, 256, JobVolume)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if req.Key() != base.Key() {
			t.Errorf("perturbing excluded field %s changed the key: %q != %q", path, req.Key(), base.Key())
		}
	}
	// N and Job are key ingredients beyond the config struct.
	if r, _ := FromConfig(baseConfig(), 257, JobVolume); r.Key() == base.Key() {
		t.Error("changing n did not change the key")
	}
	if r, _ := FromConfig(baseConfig(), 256, JobSolve); r.Key() == base.Key() {
		t.Error("changing job did not change the key")
	}
}

// TestKeySessionLevel pins the same property through real Sessions: two
// sessions differing only in executor, workers, and timeout produce the
// same key; differing in β produces a different one.
func TestKeySessionLevel(t *testing.T) {
	s1, err := conflux.New(conflux.WithRanks(4))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := conflux.New(conflux.WithRanks(4),
		conflux.WithExecutor("goroutines"), conflux.WithWorkers(8), conflux.WithTimeout(3*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := FromConfig(s1.Config(), 128, JobVolume)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := FromConfig(s2.Config(), 128, JobVolume)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Key() != r2.Key() {
		t.Fatalf("executor/workers/timeout leaked into the key:\n%q\n%q", r1.Key(), r2.Key())
	}
	m := conflux.DefaultMachine()
	m.Beta *= 1.0000001
	s3, err := conflux.New(conflux.WithRanks(4), conflux.WithMachine(m))
	if err != nil {
		t.Fatal(err)
	}
	r3, err := FromConfig(s3.Config(), 128, JobVolume)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Key() == r1.Key() {
		t.Fatal("an ulp-level β difference did not change the key")
	}
}

// TestKeyTopologyLevel pins the topology satellite of the key
// classification through real Sessions: no-topology, flat-preset, and
// hier-preset sessions all produce distinct keys; an ulp-level change to
// the hier spec's inter-node β misses; adding a fault plan misses.
func TestKeyTopologyLevel(t *testing.T) {
	key := func(opts ...conflux.Option) string {
		t.Helper()
		s, err := conflux.New(append([]conflux.Option{conflux.WithRanks(8)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		r, err := FromConfig(s.Config(), 128, JobVolume)
		if err != nil {
			t.Fatal(err)
		}
		return r.Key()
	}
	plain := key()
	flat := key(conflux.WithTopologyPreset("flat"))
	hier := key(conflux.WithTopologyPreset("hier"))
	if plain == flat || plain == hier || flat == hier {
		t.Fatalf("topology presets alias keys:\nplain %q\nflat  %q\nhier  %q", plain, flat, hier)
	}
	spec, err := conflux.TopologyPreset("hier")
	if err != nil {
		t.Fatal(err)
	}
	spec.Inter.Beta *= 1.0000001
	if key(conflux.WithTopology(spec)) == hier {
		t.Fatal("an ulp-level inter-node β difference did not change the key")
	}
	faulted := key(conflux.WithTopologyPreset("hier"),
		conflux.WithFaults(conflux.FaultPlan{Links: []conflux.LinkFault{{FromNode: 0, ToNode: 1, Factor: 8}}}))
	if faulted == hier {
		t.Fatal("a fault plan did not change the key")
	}
	// Entry order in the plan must not matter: Canonical sorts.
	a := conflux.FaultPlan{
		Links:      []conflux.LinkFault{{FromNode: 2, ToNode: 3, Factor: 4}, {FromNode: 0, ToNode: 1, Factor: 8}},
		Stragglers: []conflux.Straggler{{Rank: 5, Factor: 2}},
	}
	b := conflux.FaultPlan{
		Links:      []conflux.LinkFault{{FromNode: 0, ToNode: 1, Factor: 8}, {FromNode: 2, ToNode: 3, Factor: 4}},
		Stragglers: []conflux.Straggler{{Rank: 5, Factor: 2}},
	}
	if key(conflux.WithFaults(a)) != key(conflux.WithFaults(b)) {
		t.Fatal("fault-plan entry order leaked into the key")
	}
}

// TestCanonicalizeResolvesDefaults: a request spelled with defaults and one
// spelled with the defaults' explicit values share a key.
func TestCanonicalizeResolvesDefaults(t *testing.T) {
	implicit, err := Request{Algorithm: conflux.COnfLUX, N: 512, P: 8}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := Request{
		Algorithm:  conflux.COnfLUX,
		N:          512,
		P:          8,
		Memory:     costmodel.MaxMemoryParams(512, 8).M,
		SolveRanks: 8,
		RHS:        1,
		Job:        JobVolume,
	}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if implicit.Key() != explicit.Key() {
		t.Fatalf("default resolution not canonical:\n%q\n%q", implicit.Key(), explicit.Key())
	}
	// The free machine is canonical too — alpha=beta=0 is a real machine,
	// not "unset", mirroring WithFreeMachine.
	free, err := Request{Algorithm: conflux.COnfLUX, N: 512, P: 8}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if free.Alpha != 0 || free.Beta != 0 {
		t.Fatalf("zero machine was rewritten: α=%v β=%v", free.Alpha, free.Beta)
	}
}

// TestCanonicalizeRejectsInvalid covers the typed failure surface of
// request validation.
func TestCanonicalizeRejectsInvalid(t *testing.T) {
	for name, req := range map[string]Request{
		"no algorithm": {N: 64, P: 4},
		"zero n":       {Algorithm: conflux.COnfLUX, P: 4},
		"negative p":   {Algorithm: conflux.COnfLUX, N: 64, P: -1},
		"negative mem": {Algorithm: conflux.COnfLUX, N: 64, P: 4, Memory: -1},
		"bad job":      {Algorithm: conflux.COnfLUX, N: 64, P: 4, Job: "fastest"},
	} {
		if _, err := req.Canonicalize(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
