package plan

import (
	"sync"
	"sync/atomic"
)

// shardCount is the number of independent cache shards; keys hash across
// them so concurrent distinct requests rarely contend on one mutex. Power
// of two, sized for tens of thousands of entries.
const shardCount = 64

// entry is one cache slot. done is closed exactly once, after which val/err
// are immutable; an entry whose done is still open is an in-flight
// singleflight computation that later arrivals join instead of recomputing.
type entry struct {
	done chan struct{}
	val  *Exact
	err  error
}

func (e *entry) completed() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// Cache is a sharded in-memory result cache with singleflight semantics:
// for each key, at most one computation is ever in flight, and every
// concurrent requester for that key shares its outcome. Successful results
// are cached forever (they are pure functions of the key); failures are
// never cached, so transient errors (cancellation, shedding) retry on the
// next request.
//
// Capacity is bounded by maxEntries; above it, completed entries are
// evicted arbitrarily (map order) to make room. Arbitrary replacement is
// deliberate: recomputation is cheap relative to serving-tier latency
// budgets and the expected workload is heavily skewed, so anything smarter
// buys little for the bookkeeping it costs.
type Cache struct {
	shards    [shardCount]cacheShard
	maxPerSh  int
	hits      atomic.Int64
	misses    atomic.Int64
	joined    atomic.Int64
	evictions atomic.Int64
}

type cacheShard struct {
	mu sync.Mutex
	m  map[string]*entry
}

// NewCache returns a cache bounded to roughly maxEntries completed results
// (0 selects the 64k default).
func NewCache(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = 1 << 16
	}
	perShard := (maxEntries + shardCount - 1) / shardCount
	c := &Cache{maxPerSh: perShard}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*entry)
	}
	return c
}

// fnv64a, inlined to keep key hashing allocation-free.
func shardFor(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h % shardCount
}

// begin is the singleflight entry point: it returns the entry for key and
// whether the caller is its owner. Owners must eventually call complete or
// abandon exactly once; non-owners wait on e.done. The three outcomes are
// counted as hit (completed entry), joined (in-flight entry), or miss (new
// entry, caller owns the computation).
func (c *Cache) begin(key string) (e *entry, owner bool) {
	sh := &c.shards[shardFor(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.m[key]; ok {
		if e.completed() {
			c.hits.Add(1)
		} else {
			c.joined.Add(1)
		}
		return e, false
	}
	c.misses.Add(1)
	if len(sh.m) >= c.maxPerSh {
		for k, old := range sh.m {
			if old.completed() {
				delete(sh.m, k)
				c.evictions.Add(1)
				break
			}
		}
	}
	e = &entry{done: make(chan struct{})}
	sh.m[key] = e
	return e, true
}

// complete publishes the owner's result and wakes every joiner. Failed
// computations are published to the current joiners but removed from the
// map, so the next arrival retries instead of being pinned to a stale
// error. The removal happens before done is closed: otherwise a begin
// racing between the close and the delete would observe a completed
// error entry as a cache hit.
func (c *Cache) complete(key string, e *entry, val *Exact, err error) {
	if err != nil {
		sh := &c.shards[shardFor(key)]
		sh.mu.Lock()
		if sh.m[key] == e {
			delete(sh.m, key)
		}
		sh.mu.Unlock()
	}
	e.val, e.err = val, err
	close(e.done)
}

// Peek returns the completed cached value for key, if any, without joining
// an in-flight computation.
func (c *Cache) Peek(key string) (*Exact, bool) {
	sh := &c.shards[shardFor(key)]
	sh.mu.Lock()
	e, ok := sh.m[key]
	sh.mu.Unlock()
	if !ok || !e.completed() || e.err != nil {
		return nil, false
	}
	return e.val, true
}

// Len returns the number of resident entries (completed and in-flight).
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Joined    int64 `json:"joined"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Joined:    c.joined.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
	}
}
