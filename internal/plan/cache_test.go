package plan

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCacheSingleflightOwnership: under heavy concurrency exactly one
// caller per key becomes the owner; everyone else joins and observes the
// owner's value after completion.
func TestCacheSingleflightOwnership(t *testing.T) {
	c := NewCache(0)
	const clients = 100
	var owners atomic.Int64
	var wg sync.WaitGroup
	want := &Exact{TotalBytes: 42}
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e, owner := c.begin("k")
			if owner {
				owners.Add(1)
				c.complete("k", e, want, nil)
			}
			<-e.done
			if e.val != want || e.err != nil {
				t.Errorf("joiner observed val=%v err=%v", e.val, e.err)
			}
		}()
	}
	wg.Wait()
	if owners.Load() != 1 {
		t.Fatalf("%d owners for one key, want 1", owners.Load())
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits+st.Joined != clients-1 {
		t.Fatalf("stats %+v: want 1 miss and %d hits+joins", st, clients-1)
	}
}

// TestCacheErrorsNotCached: a failed computation is surfaced to its
// waiters but the next begin for the key starts fresh.
func TestCacheErrorsNotCached(t *testing.T) {
	c := NewCache(0)
	boom := errors.New("boom")
	e, owner := c.begin("k")
	if !owner {
		t.Fatal("first begin not owner")
	}
	c.complete("k", e, nil, boom)
	if !errors.Is(e.err, boom) {
		t.Fatalf("waiter error = %v", e.err)
	}
	if _, ok := c.Peek("k"); ok {
		t.Fatal("failed entry still resident")
	}
	if _, owner := c.begin("k"); !owner {
		t.Fatal("retry after failure did not become owner")
	}
}

// TestCacheBounded: resident entries stay within the configured capacity
// (rounded up to a whole entry per shard) under sustained distinct keys.
func TestCacheBounded(t *testing.T) {
	c := NewCache(shardCount) // one completed entry per shard
	for i := 0; i < 1000; i++ {
		key := Request{Algorithm: "A", N: i + 1, P: 4}.Key()
		e, owner := c.begin(key)
		if !owner {
			t.Fatalf("key %d: unexpected join", i)
		}
		c.complete(key, e, &Exact{TotalBytes: int64(i)}, nil)
	}
	if n := c.Len(); n > shardCount {
		t.Fatalf("cache grew to %d entries, capacity %d", n, shardCount)
	}
	if ev := c.Stats().Evictions; ev == 0 {
		t.Fatal("no evictions recorded despite overflow")
	}
}
