package plan

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	conflux "repro"
)

func volumeReq(t *testing.T, n, p int) Request {
	t.Helper()
	// In a Request the zero machine IS the all-free machine (there is no
	// "unset"); the paper-default α-β is spelled explicitly, as the HTTP
	// layer does for absent parameters.
	m := conflux.DefaultMachine()
	req, err := Request{Algorithm: conflux.COnfLUX, N: n, P: p, Alpha: m.Alpha, Beta: m.Beta}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	return req
}

// gatedRunner blocks every computation until release is closed, counting
// invocations.
type gatedRunner struct {
	mu      sync.Mutex
	calls   int
	release chan struct{}
}

func (g *gatedRunner) run(ctx context.Context, req Request) (*Exact, error) {
	g.mu.Lock()
	g.calls++
	g.mu.Unlock()
	select {
	case <-g.release:
		return &Exact{TotalBytes: int64(req.N)}, nil
	case <-ctx.Done():
		return nil, context.Cause(ctx)
	}
}

func (g *gatedRunner) count() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.calls
}

// TestEvaluateSingleflight: concurrent identical requests coalesce onto
// one simulation, and every caller gets its result.
func TestEvaluateSingleflight(t *testing.T) {
	g := &gatedRunner{release: make(chan struct{})}
	p := NewPlanner(t.Context(), Options{MaxInFlight: 4, Runner: g.run})
	req := volumeReq(t, 64, 4)
	const clients = 50
	var wg sync.WaitGroup
	results := make([]*Exact, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _, errs[i] = p.Evaluate(context.Background(), req, 5*time.Second)
		}(i)
	}
	// Let the clients pile onto the in-flight entry, then release it.
	time.Sleep(20 * time.Millisecond)
	close(g.release)
	wg.Wait()
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if results[i] == nil || results[i].TotalBytes != 64 {
			t.Fatalf("client %d: result %+v", i, results[i])
		}
	}
	if g.count() != 1 {
		t.Fatalf("%d simulations ran for %d identical requests, want 1", g.count(), clients)
	}
	if st := p.Stats(); st.Simulations != 1 || st.Cache.Misses != 1 {
		t.Fatalf("stats %+v: want 1 simulation, 1 miss", st)
	}
}

// TestEvaluateFastTier: wait=0 returns OutcomePending immediately while
// the computation proceeds detached; once it lands, the same request is a
// cache hit.
func TestEvaluateFastTier(t *testing.T) {
	g := &gatedRunner{release: make(chan struct{})}
	p := NewPlanner(t.Context(), Options{MaxInFlight: 1, Runner: g.run})
	req := volumeReq(t, 96, 4)
	val, out, err := p.Evaluate(context.Background(), req, 0)
	if err != nil || out != OutcomePending || val != nil {
		t.Fatalf("first call: val=%v out=%q err=%v, want pending", val, out, err)
	}
	close(g.release)
	deadline := time.Now().Add(5 * time.Second)
	for {
		val, out, err = p.Evaluate(context.Background(), req, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if out == OutcomeHit {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no cache hit after background completion (out=%q)", out)
		}
		time.Sleep(time.Millisecond)
	}
	if val.TotalBytes != 96 {
		t.Fatalf("cached value %+v", val)
	}
	if g.count() != 1 {
		t.Fatalf("%d simulations, want 1", g.count())
	}
}

// waitInFlight blocks until n detached computations hold simulation slots
// — the occupier's slot acquisition is asynchronous to its Evaluate call.
func waitInFlight(t *testing.T, p *Planner, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().InFlight < n {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight count never reached %d (stats %+v)", n, p.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// waitDrained blocks until no simulation holds a pool slot — the release
// happens after the result is published, so a completed Evaluate does not
// imply a free slot yet.
func waitDrained(t *testing.T, p *Planner) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().InFlight > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pool never drained (stats %+v)", p.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShedOverloaded: with the pool saturated and no queue, a distinct
// request is shed immediately with the typed ErrOverloaded.
func TestShedOverloaded(t *testing.T) {
	g := &gatedRunner{release: make(chan struct{})}
	p := NewPlanner(t.Context(), Options{MaxInFlight: 1, MaxQueue: -1, Runner: g.run})
	if _, out, err := p.Evaluate(context.Background(), volumeReq(t, 64, 4), 0); err != nil || out != OutcomePending {
		t.Fatalf("occupier: out=%q err=%v", out, err)
	}
	waitInFlight(t, p, 1)
	_, _, err := p.Evaluate(context.Background(), volumeReq(t, 65, 4), time.Second)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if st := p.Stats(); st.ShedQueueFull == 0 {
		t.Fatalf("stats %+v: shed not recorded", st)
	}
	close(g.release)
}

// TestShedQueueTimeout: a queued request that never gets a slot sheds with
// the typed ErrQueueTimeout after the queue timeout.
func TestShedQueueTimeout(t *testing.T) {
	g := &gatedRunner{release: make(chan struct{})}
	p := NewPlanner(t.Context(), Options{
		MaxInFlight: 1, MaxQueue: 8, QueueTimeout: 30 * time.Millisecond, Runner: g.run,
	})
	if _, _, err := p.Evaluate(context.Background(), volumeReq(t, 64, 4), 0); err != nil {
		t.Fatal(err)
	}
	waitInFlight(t, p, 1)
	_, _, err := p.Evaluate(context.Background(), volumeReq(t, 66, 4), 5*time.Second)
	if !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("err = %v, want ErrQueueTimeout", err)
	}
	if st := p.Stats(); st.ShedQueueTimeout == 0 {
		t.Fatalf("stats %+v: shed not recorded", st)
	}
	close(g.release)
}

// TestShedRetriesAfterRecovery: shedding is not sticky — once the pool
// frees up, the same request computes normally.
func TestShedRetriesAfterRecovery(t *testing.T) {
	g := &gatedRunner{release: make(chan struct{})}
	p := NewPlanner(t.Context(), Options{MaxInFlight: 1, MaxQueue: -1, Runner: g.run})
	occupier := volumeReq(t, 64, 4)
	victim := volumeReq(t, 65, 4)
	p.Evaluate(context.Background(), occupier, 0)
	waitInFlight(t, p, 1)
	if _, _, err := p.Evaluate(context.Background(), victim, time.Second); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	close(g.release)
	waitDrained(t, p) // the occupier's slot must actually free
	val, _, err := p.Evaluate(context.Background(), victim, 5*time.Second)
	if err != nil || val == nil || val.TotalBytes != 65 {
		t.Fatalf("post-recovery: val=%+v err=%v", val, err)
	}
}

// TestNoGoroutineLeakAfterBurst: a burst of coalesced and shed requests
// leaves no goroutines behind once computations drain.
func TestNoGoroutineLeakAfterBurst(t *testing.T) {
	before := runtime.NumGoroutine()
	g := &gatedRunner{release: make(chan struct{})}
	p := NewPlanner(t.Context(), Options{MaxInFlight: 2, MaxQueue: 4, QueueTimeout: 20 * time.Millisecond, Runner: g.run})
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p.Evaluate(context.Background(), volumeReq(t, 32+i%8, 4), 50*time.Millisecond)
		}(i)
	}
	wg.Wait()
	close(g.release)
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before burst, %d after drain", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestExactMatchesUncachedSession is the acceptance pin: the planner's
// cached exact tier is byte-identical to an uncached Session run — and
// identical whichever executor or window width that uncached run uses,
// which is precisely why executor/workers are excluded from the key.
func TestExactMatchesUncachedSession(t *testing.T) {
	pl := NewPlanner(t.Context(), Options{MaxInFlight: 2})
	req := volumeReq(t, 96, 8)
	got, out, err := pl.Evaluate(context.Background(), req, 30*time.Second)
	if err != nil || got == nil {
		t.Fatalf("evaluate: out=%q err=%v", out, err)
	}
	// Second request must be a pure cache hit with the same value.
	again, out2, err := pl.Evaluate(context.Background(), req, 30*time.Second)
	if err != nil || out2 != OutcomeHit || *again != *got {
		t.Fatalf("re-evaluate: out=%q err=%v same=%v", out2, err, again != nil && *again == *got)
	}
	for _, opts := range [][]conflux.Option{
		{conflux.WithRanks(8)},
		{conflux.WithRanks(8), conflux.WithExecutor("goroutines")},
		{conflux.WithRanks(8), conflux.WithExecutor("events"), conflux.WithWorkers(4)},
	} {
		s, err := conflux.New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.CommVolume(context.Background(), 96)
		if err != nil {
			t.Fatal(err)
		}
		if got.TotalBytes != rep.TotalBytes() ||
			got.AlgorithmBytes != conflux.AlgorithmBytes(rep) ||
			got.Msgs != rep.TotalMsgs() ||
			got.Makespan != rep.Time.Makespan ||
			got.CritBusy != rep.Time.CritBusy() {
			t.Fatalf("cached exact %+v != uncached session report (bytes=%d algo=%d msgs=%d makespan=%v)",
				got, rep.TotalBytes(), conflux.AlgorithmBytes(rep), rep.TotalMsgs(), rep.Time.Makespan)
		}
	}
}

// TestKeyMissesRunDistinctSimulations: requests differing only in machine
// β (or nb, or memory) must not share cache entries.
func TestKeyMissesRunDistinctSimulations(t *testing.T) {
	pl := NewPlanner(t.Context(), Options{MaxInFlight: 2})
	base := volumeReq(t, 64, 4)
	variant := base
	variant.Beta *= 2
	variant, err := variant.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := pl.Evaluate(context.Background(), base, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := pl.Evaluate(context.Background(), variant, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Stats().Simulations != 2 {
		t.Fatalf("simulations = %d, want 2 (β difference must miss)", pl.Stats().Simulations)
	}
	if b.TotalBytes != v.TotalBytes {
		t.Fatalf("volume is machine-independent, got %d vs %d", b.TotalBytes, v.TotalBytes)
	}
	if b.Makespan == v.Makespan {
		t.Fatal("doubling β left the makespan unchanged — wrong machine simulated")
	}
}

// TestModelForCoversTable2: the instant tier exists exactly for the
// paper's comparison set and is strictly positive.
func TestModelForCoversTable2(t *testing.T) {
	req := volumeReq(t, 4096, 64)
	for _, a := range []conflux.Algorithm{conflux.COnfLUX, conflux.CANDMC, conflux.LibSci, conflux.SLATE} {
		r := req
		r.Algorithm = a
		m, ok := ModelFor(r)
		if !ok {
			t.Fatalf("%s: no model tier", a)
		}
		if m.PerRankBytes <= 0 || m.TotalBytes <= 0 || m.ApproxMsgs <= 0 || m.PredictedSeconds <= 0 {
			t.Fatalf("%s: degenerate model %+v", a, m)
		}
	}
	r := req
	r.Algorithm = conflux.Cholesky
	if _, ok := ModelFor(r); ok {
		t.Fatal("Cholesky has no Table 2 model; ModelFor must report false")
	}
}
