package blas

import (
	"math/bits"
	"sync"
)

// Cache-blocking parameters of the level-3 kernels (DESIGN.md §15). The
// micro-kernel computes an mr×nr register tile of C; the macro loops carve
// A into mc×kc blocks (packed, L2-resident) and B into kc×nc blocks whose
// kc×nr strips stream through L1. All four are compile-time constants, so
// the partition of C into tiles — and therefore the exact floating-point
// evaluation order of every output element — depends only on the operand
// shapes, never on the host, the rep, or the kernel worker count.
const (
	mr = 8    // micro-tile rows
	nr = 4    // micro-tile cols (one 4-wide vector on amd64)
	mc = 128  // rows of A packed per L2 block (multiple of mr)
	kc = 256  // depth of one packed block
	nc = 2048 // cols of B packed per outer block (multiple of nr)
)

// Size-classed pools for packed-panel buffers, the same idiom as
// internal/smpi's wire-buffer pools: classes are powers of two, a leased
// slice has len == requested and cap == the class size, and Put files
// off-class capacities under the class they can still serve. Packing
// buffers are short-lived (one GEMM macro-block each) and their peak sizes
// repeat across calls, which is exactly the sync.Pool sweet spot.
const maxPackClass = 24 // 1<<24 floats = 128 MiB; larger buffers go to the GC

var packPools [maxPackClass + 1]sync.Pool

func packClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1)) // smallest c with 1<<c >= n
}

// getPack leases a length-n buffer. Contents are undefined: every element
// the kernels read is written by the pack that follows (edge strips are
// explicitly zero-padded).
func getPack(n int) []float64 {
	if n == 0 {
		return nil
	}
	c := packClass(n)
	if c > maxPackClass {
		return make([]float64, n)
	}
	if got := packPools[c].Get(); got != nil {
		return (*got.(*[]float64))[:n]
	}
	return make([]float64, n, 1<<c)
}

// putPack returns a packing buffer to its pool. The caller must not retain
// the slice afterwards.
func putPack(s []float64) {
	if s == nil {
		return
	}
	c := packClass(cap(s))
	if 1<<c != cap(s) {
		c--
	}
	if c < 0 || c > maxPackClass {
		return
	}
	full := s[0:cap(s)]
	packPools[c].Put(&full)
}

// packA copies the mb×kb block of a starting at (i0, p0) into dst as
// mr-row strips: strip si holds rows [i0+si·mr, i0+si·mr+mr) in
// depth-major order, dst[si·mr·kb + p·mr + r] = a[i0+si·mr+r, p0+p].
// Rows beyond mb are zero-padded so the micro-kernel always consumes a
// full strip. dst must have length ceil(mb/mr)·mr·kb.
func packA(a []float64, lda, i0, p0, mb, kb int, dst []float64) {
	for si := 0; si < (mb+mr-1)/mr; si++ {
		strip := dst[si*mr*kb:]
		for r := 0; r < mr; r++ {
			row := i0 + si*mr + r
			if row >= i0+mb {
				for p := 0; p < kb; p++ {
					strip[p*mr+r] = 0
				}
				continue
			}
			src := a[row*lda+p0 : row*lda+p0+kb]
			for p, v := range src {
				strip[p*mr+r] = v
			}
		}
	}
}

// packB copies the kb×nb block of b starting at (p0, j0) into dst as
// nr-column strips: strip sj holds columns [j0+sj·nr, j0+sj·nr+nr) in
// depth-major order, dst[sj·nr·kb + p·nr + c] = b[p0+p, j0+sj·nr+c].
// Columns beyond nb are zero-padded. dst must have length
// ceil(nb/nr)·nr·kb.
func packB(b []float64, ldb, p0, j0, kb, nb int, dst []float64) {
	for sj := 0; sj < (nb+nr-1)/nr; sj++ {
		strip := dst[sj*nr*kb:]
		col := j0 + sj*nr
		w := nb - sj*nr
		if w > nr {
			w = nr
		}
		for p := 0; p < kb; p++ {
			src := b[(p0+p)*ldb+col:]
			d := strip[p*nr : p*nr+nr]
			for c := 0; c < w; c++ {
				d[c] = src[c]
			}
			for c := w; c < nr; c++ {
				d[c] = 0
			}
		}
	}
}
