package blas

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"repro/internal/mat"
)

// maxRelDiff returns max |a-b| / max(1, |b|) over all elements.
func maxRelDiff(a, b *mat.Matrix) float64 {
	var d float64
	for i := 0; i < a.Rows; i++ {
		ar, br := a.Row(i), b.Row(i)
		for j := range ar {
			den := math.Abs(br[j])
			if den < 1 {
				den = 1
			}
			if v := math.Abs(ar[j]-br[j]) / den; v > d {
				d = v
			}
		}
	}
	return d
}

// Satellite: beta == 0 must overwrite C, not scale it, so NaN/Inf in an
// uninitialized output buffer cannot survive. Exercised on both the
// simple and the blocked dispatch path.
func TestGemmBetaZeroOverwritesNaNPoison(t *testing.T) {
	for _, n := range []int{8, 96} { // 96³ clears blockedFlopCutoff, 8³ does not
		a := mat.Random(n, n, 1)
		b := mat.Random(n, n, 2)
		c := mat.New(n, n)
		for i := range c.Data {
			c.Data[i] = math.NaN()
		}
		want := mat.New(n, n)
		GemmRef(1, a, b, 0, want)
		Gemm(1, a, b, 0, c)
		for i := range c.Data {
			if math.IsNaN(c.Data[i]) {
				t.Fatalf("n=%d: NaN poison survived beta=0 at %d", n, i)
			}
		}
		if d := maxRelDiff(c, want); d > 1e-12 {
			t.Fatalf("n=%d: diff %v vs reference", n, d)
		}
	}
}

func TestGemmMaskedRowsBetaZeroOverwritesNaNPoison(t *testing.T) {
	a := mat.Random(4, 3, 1)
	b := mat.Random(3, 5, 2)
	c := mat.New(4, 5)
	for i := range c.Data {
		c.Data[i] = math.NaN()
	}
	active := []bool{true, false, true, true}
	GemmMaskedRows(1, a, b, 0, c, active)
	for i, on := range active {
		row := c.Row(i)
		for j, v := range row {
			if on && math.IsNaN(v) {
				t.Fatalf("active row %d col %d: NaN survived beta=0", i, j)
			}
			if !on && !math.IsNaN(v) {
				t.Fatalf("inactive row %d col %d: was touched", i, j)
			}
		}
	}
}

// Satellite: no aik == 0 fast path — a NaN/Inf in B must reach C even
// when the matching A entry (or alpha·A entry) is zero.
func TestGemmZeroTimesNaNPropagates(t *testing.T) {
	for _, n := range []int{8, 96} {
		a := mat.Random(n, n, 3)
		b := mat.Random(n, n, 4)
		for i := 0; i < n; i++ {
			a.Set(i, 0, 0) // column 0 of A is zero...
		}
		b.Set(0, 0, math.NaN()) // ...but row 0 of B carries a NaN
		c := mat.New(n, n)
		Gemm(1, a, b, 0, c)
		for i := 0; i < n; i++ {
			if !math.IsNaN(c.At(i, 0)) {
				t.Fatalf("n=%d: 0*NaN was silently dropped at row %d", n, i)
			}
			if n > 1 && math.IsNaN(c.At(i, 1)) {
				t.Fatalf("n=%d: NaN leaked to unaffected column at row %d", n, i)
			}
		}
		cm := mat.New(n, n)
		active := make([]bool, n)
		for i := range active {
			active[i] = true
		}
		GemmMaskedRows(1, a, b, 0, cm, active)
		if !math.IsNaN(cm.At(0, 0)) {
			t.Fatal("GemmMaskedRows dropped 0*NaN")
		}
	}
}

// Property suite: the blocked kernel must agree with the straight-loop
// reference at awkward shapes around every blocking boundary
// (micro-tile mr/nr, macro blocks mc/kc, plus primes and 517 from the
// issue). gemmBlocked is called directly so small shapes exercise the
// packed path even though Gemm would dispatch them to the simple loop.
func TestGemmBlockedMatchesRefAwkwardShapes(t *testing.T) {
	shapes := [][3]int{}
	small := []int{1, 3, mr - 1, mr, mr + 1}
	for _, m := range small {
		for _, n := range small {
			for _, k := range small {
				shapes = append(shapes, [3]int{m, n, k})
			}
		}
	}
	shapes = append(shapes, [3]int{mc - 1, nr + 1, kc - 1}, [3]int{mc, nr, kc},
		[3]int{mc + 1, nr - 1, kc + 1}, [3]int{mc + 9, 2*nr + 3, kc + 17},
		[3]int{517, 5, 3}, [3]int{5, 517, 3}, [3]int{3, 5, 517},
		[3]int{517, 37, 129}, [3]int{130, 517, 61}, [3]int{257, 255, 517})
	seed := uint64(100)
	for _, s := range shapes {
		m, n, k := s[0], s[1], s[2]
		seed++
		a := mat.Random(m, k, seed)
		b := mat.Random(k, n, seed+7000)
		c := mat.Random(m, n, seed+9000)
		want := c.Clone()
		GemmRef(-1.3, a, b, 1, want)
		gemmBlocked(-1.3, a, b, c)
		if d := maxRelDiff(c, want); d > 1e-11 {
			t.Fatalf("blocked gemm %v: rel diff %v", s, d)
		}
	}
}

// The packed kernel must honor row strides: operands that are views into
// a larger parent (every engine tile update looks like this).
func TestGemmBlockedStridedViews(t *testing.T) {
	parent := mat.Random(300, 300, 42)
	a := parent.View(7, 11, 100, 90)
	b := parent.View(120, 30, 90, 110)
	cParent := mat.Random(150, 200, 43)
	c := cParent.View(13, 17, 100, 110)
	want := c.Clone()
	GemmRef(0.7, a, b, 1, want)
	gemmBlocked(0.7, a, b, c)
	if d := maxRelDiff(c, want); d > 1e-11 {
		t.Fatalf("strided blocked gemm: rel diff %v", d)
	}
	// Everything outside the view must be untouched: recompute checksum of
	// the border by comparing against a fresh copy is overkill — spot-check
	// the row just above and below the view.
	fresh := mat.Random(150, 200, 43)
	for _, i := range []int{12, 113} {
		for j := 0; j < 200; j++ {
			if cParent.At(i, j) != fresh.At(i, j) {
				t.Fatalf("blocked gemm wrote outside its view at (%d,%d)", i, j)
			}
		}
	}
}

// Blocked TRSM variants vs their unblocked kernels, with the unread
// triangle poisoned with NaN to pin the access contract (diagonal tiles
// of combined LU factors are passed whole).
func TestTrsmBlockedMatchesUnblocked(t *testing.T) {
	for _, n := range []int{trsmBlock + 1, 127, 128, 129, 200, 517} {
		g := mat.NewRNG(uint64(n))
		l := mat.New(n, n)
		u := mat.New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				l.Set(i, j, (g.Float64()-0.5)/float64(n))
				u.Set(i, j, math.NaN()) // strict lower of U must never be read
			}
			l.Set(i, i, 1+g.Float64())
			u.Set(i, i, 1+g.Float64())
			for j := i + 1; j < n; j++ {
				u.Set(i, j, (g.Float64()-0.5)/float64(n))
				l.Set(i, j, math.NaN()) // strict upper of L must never be read
			}
		}
		nrhs := 7
		b0 := mat.Random(n, nrhs, uint64(n)+1)
		for name, run := range map[string]func(b *mat.Matrix){
			"LowerLeft":     func(b *mat.Matrix) { TrsmLowerLeft(l, b, false) },
			"LowerLeftUnit": func(b *mat.Matrix) { TrsmLowerLeft(l, b, true) },
			"UpperLeft":     func(b *mat.Matrix) { TrsmUpperLeft(u, b) },
		} {
			got := b0.Clone()
			run(got)
			want := b0.Clone()
			switch name {
			case "LowerLeft":
				trsmLowerLeftUnb(l, want, false)
			case "LowerLeftUnit":
				trsmLowerLeftUnb(l, want, true)
			case "UpperLeft":
				trsmUpperLeftUnb(u, want)
			}
			if d := maxRelDiff(got, want); d > 1e-9 || math.IsNaN(d) {
				t.Fatalf("n=%d %s: rel diff %v", n, name, d)
			}
		}
		// Right-solve: B is wide (nrhs×n).
		br := mat.Random(nrhs, n, uint64(n)+2)
		got := br.Clone()
		TrsmUpperRight(u, got)
		want := br.Clone()
		trsmUpperRightUnb(u, want)
		if d := maxRelDiff(got, want); d > 1e-9 || math.IsNaN(d) {
			t.Fatalf("n=%d UpperRight: rel diff %v", n, d)
		}
	}
}

// Determinism: the blocked kernel must produce bit-identical results
// across reps and kernel worker counts (DESIGN.md §15). Run under -race
// this also proves no C element is written concurrently.
func TestGemmKernelWorkerDeterminism(t *testing.T) {
	defer SetKernelWorkers(1)
	m, n, k := 300, 260, 300 // several mc-blocks, clears parallelFlopCutoff
	a := mat.Random(m, k, 5)
	b := mat.Random(k, n, 6)
	var ref []uint64
	for _, w := range []int{1, 2, 4, runtime.NumCPU()} {
		SetKernelWorkers(w)
		for rep := 0; rep < 2; rep++ {
			c := mat.Random(m, n, 7)
			gemmBlocked(-1.5, a, b, c)
			bits := make([]uint64, len(c.Data))
			for i, v := range c.Data {
				bits[i] = math.Float64bits(v)
			}
			if ref == nil {
				ref = bits
				continue
			}
			for i := range bits {
				if bits[i] != ref[i] {
					t.Fatalf("workers=%d rep=%d: bit mismatch at %d", w, rep, i)
				}
			}
		}
	}
}

func TestSetKernelWorkersClamps(t *testing.T) {
	defer SetKernelWorkers(1)
	SetKernelWorkers(-3)
	if got := KernelWorkers(); got != 1 {
		t.Fatalf("clamp: got %d", got)
	}
	SetKernelWorkers(4)
	if got := KernelWorkers(); got != 4 {
		t.Fatalf("set: got %d", got)
	}
}

func TestPackEdgesZeroPadded(t *testing.T) {
	a := mat.Random(5, 3, 9) // 5 rows -> one mr-strip with 3 padded lanes
	dst := make([]float64, mr*3)
	for i := range dst {
		dst[i] = math.NaN()
	}
	packA(a.Data, a.Stride, 0, 0, 5, 3, dst)
	for p := 0; p < 3; p++ {
		for r := 0; r < mr; r++ {
			got := dst[p*mr+r]
			if r < 5 {
				if got != a.At(r, p) {
					t.Fatalf("packA[%d,%d] = %v", p, r, got)
				}
			} else if got != 0 {
				t.Fatalf("packA pad lane (%d,%d) = %v", p, r, got)
			}
		}
	}
	b := mat.Random(3, 6, 10) // 6 cols -> strip 1 has 2 padded lanes
	dstB := make([]float64, 2*nr*3)
	for i := range dstB {
		dstB[i] = math.NaN()
	}
	packB(b.Data, b.Stride, 0, 0, 3, 6, dstB)
	for sj := 0; sj < 2; sj++ {
		for p := 0; p < 3; p++ {
			for cidx := 0; cidx < nr; cidx++ {
				got := dstB[sj*nr*3+p*nr+cidx]
				col := sj*nr + cidx
				if col < 6 {
					if got != b.At(p, col) {
						t.Fatalf("packB strip %d (%d,%d) = %v", sj, p, cidx, got)
					}
				} else if got != 0 {
					t.Fatalf("packB pad lane strip %d (%d,%d) = %v", sj, p, cidx, got)
				}
			}
		}
	}
}

// --- The `make kernels` micro-benchmark suite ------------------------------

func benchGemm(b *testing.B, n int, f func(alpha float64, a, bm *mat.Matrix, beta float64, c *mat.Matrix)) {
	b.Helper()
	a := mat.Random(n, n, 1)
	bm := mat.Random(n, n, 2)
	c := mat.New(n, n)
	b.ReportAllocs()
	b.SetBytes(int64(8 * n * n * 3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(1, a, bm, 0, c)
	}
	flops := 2 * float64(n) * float64(n) * float64(n)
	b.ReportMetric(flops/float64(b.Elapsed().Nanoseconds())*float64(b.N)*1e3, "MFLOP/s")
}

func BenchmarkKernelGemmRef512(b *testing.B)      { benchGemm(b, 512, GemmRef) }
func BenchmarkKernelGemmBlocked256(b *testing.B)  { benchGemm(b, 256, Gemm) }
func BenchmarkKernelGemmBlocked512(b *testing.B)  { benchGemm(b, 512, Gemm) }
func BenchmarkKernelGemmBlocked1024(b *testing.B) { benchGemm(b, 1024, Gemm) }

func BenchmarkKernelGemmBlocked512Workers(b *testing.B) {
	for _, w := range []int{2, 4} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			SetKernelWorkers(w)
			defer SetKernelWorkers(1)
			benchGemm(b, 512, Gemm)
		})
	}
}

func BenchmarkKernelTrsmLowerLeft512(b *testing.B) {
	n := 512
	g := mat.NewRNG(3)
	l := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			l.Set(i, j, (g.Float64()-0.5)/float64(n))
		}
		l.Set(i, i, 1)
	}
	rhs := mat.Random(n, n, 4)
	work := mat.New(n, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work.CopyFrom(rhs)
		TrsmLowerLeft(l, work, true)
	}
}

func BenchmarkKernelTrsmUpperRight512(b *testing.B) {
	n := 512
	g := mat.NewRNG(5)
	u := mat.New(n, n)
	for i := 0; i < n; i++ {
		u.Set(i, i, 1+g.Float64())
		for j := i + 1; j < n; j++ {
			u.Set(i, j, (g.Float64()-0.5)/float64(n))
		}
	}
	rhs := mat.Random(n, n, 6)
	work := mat.New(n, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work.CopyFrom(rhs)
		TrsmUpperRight(u, work)
	}
}
