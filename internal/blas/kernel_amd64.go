//go:build amd64

package blas

// Implemented in kernel_amd64.s.
func micro8x4ASM(kb int, alpha float64, ap, bp, c *float64, ldc int)
func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbvAsm() (eax, edx uint32)

// hasAVX2FMA reports whether the host supports the vectorized
// micro-kernel: AVX2 + FMA3 instruction sets, with the OS having enabled
// YMM state saving (OSXSAVE + XCR0 bits 1:2). Detected once at init, so
// kernel dispatch is fixed for the life of the process — a prerequisite
// for the bit-determinism contract in DESIGN.md §15.
var hasAVX2FMA = detectAVX2FMA()

func detectAVX2FMA() bool {
	_, _, ecx1, _ := cpuidAsm(1, 0)
	const osxsave = 1 << 27
	const fma = 1 << 12
	if ecx1&osxsave == 0 || ecx1&fma == 0 {
		return false
	}
	// The OS must save/restore XMM and YMM state across context switches.
	xcr0, _ := xgetbvAsm()
	if xcr0&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuidAsm(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}

// microKernel computes one full mr×nr tile: C += alpha·Ap·Bp with C at
// row stride ldc.
func microKernel(kb int, alpha float64, ap, bp []float64, c []float64, ldc int) {
	if hasAVX2FMA && kb > 0 {
		_ = c[(mr-1)*ldc+nr-1] // the asm writes the full 8×4 tile
		micro8x4ASM(kb, alpha, &ap[0], &bp[0], &c[0], ldc)
		return
	}
	microGeneric(kb, alpha, ap, bp, c, ldc, mr, nr)
}

// KernelISA names the micro-kernel implementation in use, for benchmark
// reports.
func KernelISA() string {
	if hasAVX2FMA {
		return "avx2+fma"
	}
	return "generic"
}
