package blas

// microGeneric is the portable micro-kernel: it accumulates the full
// mr×nr product of one packed A strip and one packed B strip in a local
// tile, then folds alpha·tile into the mrb×nrb valid region of C (row
// stride ldc). It is the only compute path on non-amd64 hosts and handles
// the ragged edge tiles everywhere: padding lanes in the packed strips are
// explicit zeros, so accumulating the full tile and writing back only the
// valid cells is exact.
func microGeneric(kb int, alpha float64, ap, bp []float64, c []float64, ldc, mrb, nrb int) {
	var acc [mr * nr]float64
	for p := 0; p < kb; p++ {
		bs := bp[p*nr : p*nr+nr]
		as := ap[p*mr : p*mr+mr]
		for r := 0; r < mr; r++ {
			ar := as[r]
			t := acc[r*nr : r*nr+nr]
			t[0] += ar * bs[0]
			t[1] += ar * bs[1]
			t[2] += ar * bs[2]
			t[3] += ar * bs[3]
		}
	}
	for r := 0; r < mrb; r++ {
		row := c[r*ldc : r*ldc+nrb]
		t := acc[r*nr:]
		for j := range row {
			row[j] += alpha * t[j]
		}
	}
}
