// Package blas implements the subset of BLAS-like dense kernels the LU
// factorizations need, in pure Go on top of internal/mat. All kernels treat
// phantom operands as no-ops so that the volume-mode benchmark runs execute
// the same call graph as numeric runs without doing arithmetic.
package blas

import "math"

// Axpy computes y += alpha*x.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("blas: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scal computes x *= alpha.
func Scal(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Dot returns xᵀy.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("blas: Dot length mismatch")
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Idamax returns the index of the entry of x with the largest magnitude
// (first occurrence). Returns -1 for empty x.
func Idamax(x []float64) int {
	best, bi := -1.0, -1
	for i, v := range x {
		if a := math.Abs(v); a > best {
			best, bi = a, i
		}
	}
	return bi
}

// Swap exchanges x and y elementwise.
func Swap(x, y []float64) {
	if len(x) != len(y) {
		panic("blas: Swap length mismatch")
	}
	for i := range x {
		x[i], y[i] = y[i], x[i]
	}
}
