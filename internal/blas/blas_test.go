package blas

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func naiveGemm(alpha float64, a, b *mat.Matrix, beta float64, c *mat.Matrix) *mat.Matrix {
	out := mat.New(c.Rows, c.Cols)
	for i := 0; i < c.Rows; i++ {
		for j := 0; j < c.Cols; j++ {
			s := beta * c.At(i, j)
			for k := 0; k < a.Cols; k++ {
				s += alpha * a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestAxpyScalDot(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	Axpy(2, x, y)
	if y[0] != 6 || y[1] != 9 || y[2] != 12 {
		t.Fatalf("axpy: %v", y)
	}
	Scal(0.5, y)
	if y[0] != 3 || y[2] != 6 {
		t.Fatalf("scal: %v", y)
	}
	if d := Dot(x, x); d != 14 {
		t.Fatalf("dot: %v", d)
	}
}

func TestIdamax(t *testing.T) {
	if Idamax(nil) != -1 {
		t.Fatal("empty should be -1")
	}
	if i := Idamax([]float64{1, -7, 7, 2}); i != 1 {
		t.Fatalf("first max expected at 1, got %d", i)
	}
}

func TestSwap(t *testing.T) {
	x, y := []float64{1, 2}, []float64{3, 4}
	Swap(x, y)
	if x[0] != 3 || y[1] != 2 {
		t.Fatalf("swap: %v %v", x, y)
	}
}

func TestGemmAgainstNaive(t *testing.T) {
	for _, dims := range [][3]int{{1, 1, 1}, {3, 4, 5}, {8, 8, 8}, {7, 2, 9}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := mat.Random(m, k, 1)
		b := mat.Random(k, n, 2)
		c := mat.Random(m, n, 3)
		want := naiveGemm(-1.5, a, b, 0.5, c)
		Gemm(-1.5, a, b, 0.5, c)
		if d := mat.MaxAbsDiff(c, want); d > 1e-12 {
			t.Fatalf("gemm %v diff %v", dims, d)
		}
	}
}

func TestGemmShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Gemm(1, mat.New(2, 3), mat.New(2, 3), 1, mat.New(2, 3))
}

func TestGemmPhantomNoop(t *testing.T) {
	a := mat.NewPhantom(3, 3)
	b := mat.Random(3, 3, 1)
	c := mat.Random(3, 3, 2)
	orig := c.Clone()
	Gemm(1, a, b, 1, c)
	if mat.MaxAbsDiff(c, orig) != 0 {
		t.Fatal("phantom gemm modified C")
	}
}

func TestGemmMaskedRows(t *testing.T) {
	a := mat.Random(4, 3, 1)
	b := mat.Random(3, 5, 2)
	c := mat.Random(4, 5, 3)
	active := []bool{true, false, true, false}
	want := c.Clone()
	full := c.Clone()
	Gemm(-1, a, b, 1, full)
	for i, on := range active {
		if on {
			want.View(i, 0, 1, 5).CopyFrom(full.View(i, 0, 1, 5))
		}
	}
	GemmMaskedRows(-1, a, b, 1, c, active)
	if d := mat.MaxAbsDiff(c, want); d > 1e-12 {
		t.Fatalf("masked gemm diff %v", d)
	}
}

func TestTrsmLowerLeft(t *testing.T) {
	n := 6
	l := mat.New(n, n)
	g := mat.NewRNG(4)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			l.Set(i, j, g.Float64())
		}
		l.Set(i, i, 1+g.Float64())
	}
	x := mat.Random(n, 3, 5)
	b := mat.New(n, 3)
	Gemm(1, l, x, 0, b)
	// unit-diag variant: use L with implicit unit diagonal
	lu := l.Clone()
	for i := 0; i < n; i++ {
		lu.Set(i, i, 1)
	}
	bu := mat.New(n, 3)
	Gemm(1, lu, x, 0, bu)
	TrsmLowerLeft(lu, bu, true)
	if d := mat.MaxAbsDiff(bu, x); d > 1e-10 {
		t.Fatalf("unit trsm diff %v", d)
	}
	TrsmLowerLeft(l, b, false)
	if d := mat.MaxAbsDiff(b, x); d > 1e-10 {
		t.Fatalf("non-unit trsm diff %v", d)
	}
}

func TestTrsmUpperLeft(t *testing.T) {
	n := 6
	u := mat.New(n, n)
	g := mat.NewRNG(11)
	for i := 0; i < n; i++ {
		u.Set(i, i, 1+g.Float64())
		for j := i + 1; j < n; j++ {
			u.Set(i, j, g.Float64()-0.5)
		}
	}
	x := mat.Random(n, 3, 8)
	b := mat.New(n, 3)
	Gemm(1, u, x, 0, b)
	TrsmUpperLeft(u, b)
	if d := mat.MaxAbsDiff(b, x); d > 1e-10 {
		t.Fatalf("trsm diff %v", d)
	}
	// The kernel must ignore the strict lower triangle: diagonal tiles of
	// combined LU factors are passed whole.
	full := u.Clone()
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			full.Set(i, j, g.Float64())
		}
	}
	b2 := mat.New(n, 3)
	Gemm(1, u, x, 0, b2)
	TrsmUpperLeft(full, b2)
	if d := mat.MaxAbsDiff(b2, x); d > 1e-10 {
		t.Fatalf("combined-tile trsm diff %v", d)
	}
}

func TestTrsmUpperRight(t *testing.T) {
	n := 5
	u := mat.New(n, n)
	g := mat.NewRNG(9)
	for i := 0; i < n; i++ {
		u.Set(i, i, 1+g.Float64())
		for j := i + 1; j < n; j++ {
			u.Set(i, j, g.Float64()-0.5)
		}
	}
	x := mat.Random(4, n, 6)
	b := mat.New(4, n)
	Gemm(1, x, u, 0, b)
	TrsmUpperRight(u, b)
	if d := mat.MaxAbsDiff(b, x); d > 1e-10 {
		t.Fatalf("trsm diff %v", d)
	}
}

func TestTrsmUpperRightMasked(t *testing.T) {
	n := 4
	u := mat.Eye(n)
	u.Set(0, 1, 2)
	b := mat.Random(3, n, 7)
	orig := b.Clone()
	active := []bool{true, false, true}
	full := orig.Clone()
	TrsmUpperRight(u, full)
	TrsmUpperRightMasked(u, b, active)
	for i, on := range active {
		for j := 0; j < n; j++ {
			want := orig.At(i, j)
			if on {
				want = full.At(i, j)
			}
			if !almostEq(b.At(i, j), want, 1e-12) {
				t.Fatalf("row %d col %d: got %v want %v", i, j, b.At(i, j), want)
			}
		}
	}
}

func TestGerGemv(t *testing.T) {
	a := mat.New(3, 2)
	Ger(2, []float64{1, 2, 3}, []float64{4, 5}, a)
	if a.At(2, 1) != 30 || a.At(0, 0) != 8 {
		t.Fatalf("ger:\n%v", a)
	}
	y := make([]float64, 3)
	Gemv(1, a, []float64{1, 1}, 0, y)
	if y[0] != 18 || y[2] != 54 {
		t.Fatalf("gemv: %v", y)
	}
}

// Property: gemm is linear in alpha.
func TestQuickGemmLinearity(t *testing.T) {
	f := func(seed uint64, a8 int8) bool {
		alpha := float64(a8) / 16
		a := mat.Random(4, 3, seed)
		b := mat.Random(3, 4, seed+1)
		c1 := mat.New(4, 4)
		c2 := mat.New(4, 4)
		Gemm(alpha, a, b, 0, c1)
		Gemm(1, a, b, 0, c2)
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if !almostEq(c1.At(i, j), alpha*c2.At(i, j), 1e-12) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: TrsmUpperRight inverts multiplication by U.
func TestQuickTrsmRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		g := mat.NewRNG(seed)
		n := 3 + g.Intn(5)
		u := mat.New(n, n)
		for i := 0; i < n; i++ {
			u.Set(i, i, 1+g.Float64())
			for j := i + 1; j < n; j++ {
				u.Set(i, j, g.Float64()-0.5)
			}
		}
		x := mat.Random(3, n, seed+2)
		b := mat.New(3, n)
		Gemm(1, x, u, 0, b)
		TrsmUpperRight(u, b)
		return mat.MaxAbsDiff(b, x) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
