package blas

import (
	"fmt"

	"repro/internal/mat"
)

// Gemm computes C = alpha*A*B + beta*C for row-major matrices.
// Phantom operands make the call a no-op (shape checks still apply).
func Gemm(alpha float64, a, b *mat.Matrix, beta float64, c *mat.Matrix) {
	if a.Cols != b.Rows || a.Rows != c.Rows || b.Cols != c.Cols {
		panic(fmt.Sprintf("blas: Gemm shapes %dx%d * %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	if a.Phantom() || b.Phantom() || c.Phantom() {
		return
	}
	if beta != 1 {
		for i := 0; i < c.Rows; i++ {
			row := c.Row(i)
			for j := range row {
				row[j] *= beta
			}
		}
	}
	// i-k-j loop order: unit-stride access on B and C rows.
	for i := 0; i < a.Rows; i++ {
		arow, crow := a.Row(i), c.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := alpha * arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range crow {
				crow[j] += aik * brow[j]
			}
		}
	}
}

// GemmMaskedRows is Gemm restricted to the rows i of A and C for which
// active[i] is true. COnfLUX's row masking (paper §7.3) updates only
// not-yet-pivoted rows in place of physically swapping them out.
func GemmMaskedRows(alpha float64, a, b *mat.Matrix, beta float64, c *mat.Matrix, active []bool) {
	if a.Cols != b.Rows || a.Rows != c.Rows || b.Cols != c.Cols {
		panic("blas: GemmMaskedRows shape mismatch")
	}
	if len(active) != a.Rows {
		panic("blas: GemmMaskedRows mask length mismatch")
	}
	if a.Phantom() || b.Phantom() || c.Phantom() {
		return
	}
	for i := 0; i < a.Rows; i++ {
		if !active[i] {
			continue
		}
		arow, crow := a.Row(i), c.Row(i)
		if beta != 1 {
			for j := range crow {
				crow[j] *= beta
			}
		}
		for k := 0; k < a.Cols; k++ {
			aik := alpha * arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range crow {
				crow[j] += aik * brow[j]
			}
		}
	}
}

// TrsmLowerLeft solves L*X = B in place (B becomes X) where L is unit or
// non-unit lower triangular. This is the "FactorizeA01" kernel: columns of
// the pivot-row panel are solved against L00.
func TrsmLowerLeft(l *mat.Matrix, b *mat.Matrix, unitDiag bool) {
	if l.Rows != l.Cols || l.Rows != b.Rows {
		panic("blas: TrsmLowerLeft shape mismatch")
	}
	if l.Phantom() || b.Phantom() {
		return
	}
	n := l.Rows
	for i := 0; i < n; i++ {
		bi := b.Row(i)
		li := l.Row(i)
		for k := 0; k < i; k++ {
			lik := li[k]
			if lik == 0 {
				continue
			}
			bk := b.Row(k)
			for j := range bi {
				bi[j] -= lik * bk[j]
			}
		}
		if !unitDiag {
			inv := 1 / li[i]
			for j := range bi {
				bi[j] *= inv
			}
		}
	}
}

// TrsmUpperLeft solves U*X = B in place (B becomes X) where U is upper
// triangular (non-unit diagonal). This is the back-substitution kernel of the
// distributed solve: diagonal blocks of the combined LU factors are passed
// whole, and only their upper triangle (diagonal included) is read.
func TrsmUpperLeft(u *mat.Matrix, b *mat.Matrix) {
	if u.Rows != u.Cols || u.Rows != b.Rows {
		panic("blas: TrsmUpperLeft shape mismatch")
	}
	if u.Phantom() || b.Phantom() {
		return
	}
	n := u.Rows
	for i := n - 1; i >= 0; i-- {
		bi := b.Row(i)
		ui := u.Row(i)
		for k := i + 1; k < n; k++ {
			uik := ui[k]
			if uik == 0 {
				continue
			}
			bk := b.Row(k)
			for j := range bi {
				bi[j] -= uik * bk[j]
			}
		}
		inv := 1 / ui[i]
		for j := range bi {
			bi[j] *= inv
		}
	}
}

// TrsmUpperRight solves X*U = B in place (B becomes X) where U is upper
// triangular (non-unit diagonal). This is the "FactorizeA10" kernel: rows of
// the column panel are solved against U00.
func TrsmUpperRight(u *mat.Matrix, b *mat.Matrix) {
	if u.Rows != u.Cols || u.Cols != b.Cols {
		panic("blas: TrsmUpperRight shape mismatch")
	}
	if u.Phantom() || b.Phantom() {
		return
	}
	n := u.Cols
	for i := 0; i < b.Rows; i++ {
		bi := b.Row(i)
		for j := 0; j < n; j++ {
			s := bi[j]
			for k := 0; k < j; k++ {
				s -= bi[k] * u.At(k, j)
			}
			bi[j] = s / u.At(j, j)
		}
	}
}

// TrsmUpperRightMasked applies TrsmUpperRight only to rows with active[i].
func TrsmUpperRightMasked(u *mat.Matrix, b *mat.Matrix, active []bool) {
	if len(active) != b.Rows {
		panic("blas: TrsmUpperRightMasked mask length mismatch")
	}
	if u.Phantom() || b.Phantom() {
		return
	}
	n := u.Cols
	if u.Rows != u.Cols || n != b.Cols {
		panic("blas: TrsmUpperRightMasked shape mismatch")
	}
	for i := 0; i < b.Rows; i++ {
		if !active[i] {
			continue
		}
		bi := b.Row(i)
		for j := 0; j < n; j++ {
			s := bi[j]
			for k := 0; k < j; k++ {
				s -= bi[k] * u.At(k, j)
			}
			bi[j] = s / u.At(j, j)
		}
	}
}

// Ger computes A += alpha * x * yᵀ.
func Ger(alpha float64, x, y []float64, a *mat.Matrix) {
	if len(x) != a.Rows || len(y) != a.Cols {
		panic("blas: Ger shape mismatch")
	}
	if a.Phantom() {
		return
	}
	for i := 0; i < a.Rows; i++ {
		xi := alpha * x[i]
		if xi == 0 {
			continue
		}
		row := a.Row(i)
		for j := range row {
			row[j] += xi * y[j]
		}
	}
}

// Gemv computes y = alpha*A*x + beta*y.
func Gemv(alpha float64, a *mat.Matrix, x []float64, beta float64, y []float64) {
	if a.Cols != len(x) || a.Rows != len(y) {
		panic("blas: Gemv shape mismatch")
	}
	if a.Phantom() {
		return
	}
	for i := range y {
		y[i] *= beta
		y[i] += alpha * Dot(a.Row(i), x)
	}
}
