package blas

import (
	"fmt"

	"repro/internal/mat"
)

// Gemm computes C = alpha*A*B + beta*C for row-major matrices.
// Phantom operands make the call a no-op (shape checks still apply).
//
// LAPACK/BLAS semantics: beta == 0 overwrites C (a NaN or Inf in an
// uninitialized output buffer cannot propagate), and alpha == 0 skips the
// product without referencing A or B. Every nonzero partial product is
// accumulated — there is no data-dependent skip, so a NaN/Inf in B
// reaches C even when the matching A entry is zero. Large shapes run on
// the cache-blocked kernel (gemm_kernel.go); both paths accumulate each C
// element in a fixed k-order determined only by the shapes, so results
// are bit-identical across reps and kernel worker counts.
func Gemm(alpha float64, a, b *mat.Matrix, beta float64, c *mat.Matrix) {
	if a.Cols != b.Rows || a.Rows != c.Rows || b.Cols != c.Cols {
		panic(fmt.Sprintf("blas: Gemm shapes %dx%d * %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	if a.Phantom() || b.Phantom() || c.Phantom() {
		return
	}
	scaleRows(c, beta)
	if alpha == 0 || a.Cols == 0 {
		return
	}
	if 2*a.Rows*b.Cols*a.Cols >= blockedFlopCutoff {
		gemmBlocked(alpha, a, b, c)
		return
	}
	gemmAccum(alpha, a, b, c)
}

// GemmRef is the straight-loop reference implementation of Gemm (the seed
// i-k-j kernel, with the beta/alpha conventions above). It is the oracle
// for the blocked-kernel property suite and the baseline the kernels
// benchmark measures speedup against; it never dispatches to the blocked
// path.
func GemmRef(alpha float64, a, b *mat.Matrix, beta float64, c *mat.Matrix) {
	if a.Cols != b.Rows || a.Rows != c.Rows || b.Cols != c.Cols {
		panic(fmt.Sprintf("blas: GemmRef shapes %dx%d * %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	if a.Phantom() || b.Phantom() || c.Phantom() {
		return
	}
	scaleRows(c, beta)
	if alpha == 0 {
		return
	}
	gemmAccum(alpha, a, b, c)
}

// scaleRows applies C = beta*C with beta == 0 meaning overwrite-with-zero
// rather than multiply (so 0·NaN poison never forms).
func scaleRows(c *mat.Matrix, beta float64) {
	switch beta {
	case 1:
	case 0:
		for i := 0; i < c.Rows; i++ {
			row := c.Row(i)
			for j := range row {
				row[j] = 0
			}
		}
	default:
		for i := 0; i < c.Rows; i++ {
			row := c.Row(i)
			for j := range row {
				row[j] *= beta
			}
		}
	}
}

// gemmAccum adds alpha*A*B into C with the i-k-j loop: unit-stride access
// on B and C rows. No zero-skip on A entries — 0·NaN must stay NaN.
func gemmAccum(alpha float64, a, b *mat.Matrix, c *mat.Matrix) {
	for i := 0; i < a.Rows; i++ {
		arow, crow := a.Row(i), c.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := alpha * arow[k]
			brow := b.Row(k)
			for j := range crow {
				crow[j] += aik * brow[j]
			}
		}
	}
}

// GemmMaskedRows is Gemm restricted to the rows i of A and C for which
// active[i] is true. COnfLUX's row masking (paper §7.3) updates only
// not-yet-pivoted rows in place of physically swapping them out. The
// beta == 0 overwrite and no-zero-skip conventions match Gemm; inactive
// rows are untouched (not even scaled), as before.
func GemmMaskedRows(alpha float64, a, b *mat.Matrix, beta float64, c *mat.Matrix, active []bool) {
	if a.Cols != b.Rows || a.Rows != c.Rows || b.Cols != c.Cols {
		panic("blas: GemmMaskedRows shape mismatch")
	}
	if len(active) != a.Rows {
		panic("blas: GemmMaskedRows mask length mismatch")
	}
	if a.Phantom() || b.Phantom() || c.Phantom() {
		return
	}
	for i := 0; i < a.Rows; i++ {
		if !active[i] {
			continue
		}
		arow, crow := a.Row(i), c.Row(i)
		switch beta {
		case 1:
		case 0:
			for j := range crow {
				crow[j] = 0
			}
		default:
			for j := range crow {
				crow[j] *= beta
			}
		}
		if alpha == 0 {
			continue
		}
		for k := 0; k < a.Cols; k++ {
			aik := alpha * arow[k]
			brow := b.Row(k)
			for j := range crow {
				crow[j] += aik * brow[j]
			}
		}
	}
}

// TrsmLowerLeft solves L*X = B in place (B becomes X) where L is unit or
// non-unit lower triangular. This is the "FactorizeA01" kernel: columns of
// the pivot-row panel are solved against L00. Large systems run blocked
// (trsm_blocked.go), funneling the update step through the GEMM core.
func TrsmLowerLeft(l *mat.Matrix, b *mat.Matrix, unitDiag bool) {
	if l.Rows != l.Cols || l.Rows != b.Rows {
		panic("blas: TrsmLowerLeft shape mismatch")
	}
	if l.Phantom() || b.Phantom() {
		return
	}
	if l.Rows > trsmBlock {
		trsmLowerLeftBlocked(l, b, unitDiag)
		return
	}
	trsmLowerLeftUnb(l, b, unitDiag)
}

func trsmLowerLeftUnb(l *mat.Matrix, b *mat.Matrix, unitDiag bool) {
	n := l.Rows
	for i := 0; i < n; i++ {
		bi := b.Row(i)
		li := l.Row(i)
		for k := 0; k < i; k++ {
			lik := li[k]
			bk := b.Row(k)
			for j := range bi {
				bi[j] -= lik * bk[j]
			}
		}
		if !unitDiag {
			inv := 1 / li[i]
			for j := range bi {
				bi[j] *= inv
			}
		}
	}
}

// TrsmUpperLeft solves U*X = B in place (B becomes X) where U is upper
// triangular (non-unit diagonal). This is the back-substitution kernel of the
// distributed solve: diagonal blocks of the combined LU factors are passed
// whole, and only their upper triangle (diagonal included) is read — the
// blocked variant preserves that contract.
func TrsmUpperLeft(u *mat.Matrix, b *mat.Matrix) {
	if u.Rows != u.Cols || u.Rows != b.Rows {
		panic("blas: TrsmUpperLeft shape mismatch")
	}
	if u.Phantom() || b.Phantom() {
		return
	}
	if u.Rows > trsmBlock {
		trsmUpperLeftBlocked(u, b)
		return
	}
	trsmUpperLeftUnb(u, b)
}

func trsmUpperLeftUnb(u *mat.Matrix, b *mat.Matrix) {
	n := u.Rows
	for i := n - 1; i >= 0; i-- {
		bi := b.Row(i)
		ui := u.Row(i)
		for k := i + 1; k < n; k++ {
			uik := ui[k]
			bk := b.Row(k)
			for j := range bi {
				bi[j] -= uik * bk[j]
			}
		}
		inv := 1 / ui[i]
		for j := range bi {
			bi[j] *= inv
		}
	}
}

// TrsmUpperRight solves X*U = B in place (B becomes X) where U is upper
// triangular (non-unit diagonal). This is the "FactorizeA10" kernel: rows of
// the column panel are solved against U00.
func TrsmUpperRight(u *mat.Matrix, b *mat.Matrix) {
	if u.Rows != u.Cols || u.Cols != b.Cols {
		panic("blas: TrsmUpperRight shape mismatch")
	}
	if u.Phantom() || b.Phantom() {
		return
	}
	if u.Cols > trsmBlock {
		trsmUpperRightBlocked(u, b)
		return
	}
	trsmUpperRightUnb(u, b)
}

func trsmUpperRightUnb(u *mat.Matrix, b *mat.Matrix) {
	n := u.Cols
	for i := 0; i < b.Rows; i++ {
		bi := b.Row(i)
		for j := 0; j < n; j++ {
			s := bi[j]
			for k := 0; k < j; k++ {
				s -= bi[k] * u.At(k, j)
			}
			bi[j] = s / u.At(j, j)
		}
	}
}

// TrsmUpperRightMasked applies TrsmUpperRight only to rows with active[i].
func TrsmUpperRightMasked(u *mat.Matrix, b *mat.Matrix, active []bool) {
	if len(active) != b.Rows {
		panic("blas: TrsmUpperRightMasked mask length mismatch")
	}
	if u.Phantom() || b.Phantom() {
		return
	}
	n := u.Cols
	if u.Rows != u.Cols || n != b.Cols {
		panic("blas: TrsmUpperRightMasked shape mismatch")
	}
	for i := 0; i < b.Rows; i++ {
		if !active[i] {
			continue
		}
		bi := b.Row(i)
		for j := 0; j < n; j++ {
			s := bi[j]
			for k := 0; k < j; k++ {
				s -= bi[k] * u.At(k, j)
			}
			bi[j] = s / u.At(j, j)
		}
	}
}

// Ger computes A += alpha * x * yᵀ.
func Ger(alpha float64, x, y []float64, a *mat.Matrix) {
	if len(x) != a.Rows || len(y) != a.Cols {
		panic("blas: Ger shape mismatch")
	}
	if a.Phantom() {
		return
	}
	for i := 0; i < a.Rows; i++ {
		xi := alpha * x[i]
		row := a.Row(i)
		for j := range row {
			row[j] += xi * y[j]
		}
	}
}

// Gemv computes y = alpha*A*x + beta*y.
func Gemv(alpha float64, a *mat.Matrix, x []float64, beta float64, y []float64) {
	if a.Cols != len(x) || a.Rows != len(y) {
		panic("blas: Gemv shape mismatch")
	}
	if a.Phantom() {
		return
	}
	for i := range y {
		y[i] *= beta
		y[i] += alpha * Dot(a.Row(i), x)
	}
}
