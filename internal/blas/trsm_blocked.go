package blas

import "repro/internal/mat"

// trsmBlock is the diagonal-block size of the blocked triangular solves.
// Each tb×tb diagonal system is solved with the unblocked kernel (it fits
// in L1), and the trailing update — all the level-3 work — is one Gemm
// call, so TRSM rides the packed micro-kernel path and inherits its
// determinism argument: the block sequence is fixed by n and tb, and each
// update is a Gemm with shape-determined evaluation order.
const trsmBlock = 64

// trsmLowerLeftBlocked solves L*X = B in place, forward over row blocks:
// solve the diagonal block, then eliminate it from all rows below with
// B[k+tb:] -= L[k+tb:, k..k+tb) * X[k..k+tb). Reads only the lower
// triangle of L (diagonal included).
func trsmLowerLeftBlocked(l *mat.Matrix, b *mat.Matrix, unitDiag bool) {
	n := l.Rows
	for k0 := 0; k0 < n; k0 += trsmBlock {
		kb := min(trsmBlock, n-k0)
		trsmLowerLeftUnb(l.View(k0, k0, kb, kb), b.View(k0, 0, kb, b.Cols), unitDiag)
		if rest := n - k0 - kb; rest > 0 {
			Gemm(-1, l.View(k0+kb, k0, rest, kb), b.View(k0, 0, kb, b.Cols),
				1, b.View(k0+kb, 0, rest, b.Cols))
		}
	}
}

// trsmUpperLeftBlocked solves U*X = B in place, backward over row blocks:
// solve the diagonal block, then eliminate it from all rows above with
// B[:k0] -= U[:k0, k0..k0+kb) * X[k0..k0+kb). Reads only the upper
// triangle of U (diagonal included).
func trsmUpperLeftBlocked(u *mat.Matrix, b *mat.Matrix) {
	n := u.Rows
	start := ((n - 1) / trsmBlock) * trsmBlock
	for k0 := start; k0 >= 0; k0 -= trsmBlock {
		kb := min(trsmBlock, n-k0)
		trsmUpperLeftUnb(u.View(k0, k0, kb, kb), b.View(k0, 0, kb, b.Cols))
		if k0 > 0 {
			Gemm(-1, u.View(0, k0, k0, kb), b.View(k0, 0, kb, b.Cols),
				1, b.View(0, 0, k0, b.Cols))
		}
	}
}

// trsmUpperRightBlocked solves X*U = B in place, forward over column
// blocks: solve against the diagonal block, then fold the solved columns
// into the trailing ones with B[:, j0+jb:] -= X[:, j0..j0+jb) *
// U[j0..j0+jb, j0+jb:). Reads only the upper triangle of U.
func trsmUpperRightBlocked(u *mat.Matrix, b *mat.Matrix) {
	n := u.Cols
	for j0 := 0; j0 < n; j0 += trsmBlock {
		jb := min(trsmBlock, n-j0)
		trsmUpperRightUnb(u.View(j0, j0, jb, jb), b.View(0, j0, b.Rows, jb))
		if rest := n - j0 - jb; rest > 0 {
			Gemm(-1, b.View(0, j0, b.Rows, jb), u.View(j0, j0+jb, jb, rest),
				1, b.View(0, j0+jb, b.Rows, rest))
		}
	}
}
