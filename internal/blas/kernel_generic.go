//go:build !amd64

package blas

// hasAVX2FMA reports whether the vectorized micro-kernel is available.
// Only the amd64 build carries one.
const hasAVX2FMA = false

// microKernel computes one full mr×nr tile: C += alpha·Ap·Bp with C at
// row stride ldc. On non-amd64 hosts this is the portable kernel.
func microKernel(kb int, alpha float64, ap, bp []float64, c []float64, ldc int) {
	microGeneric(kb, alpha, ap, bp, c, ldc, mr, nr)
}

// KernelISA names the micro-kernel implementation in use, for benchmark
// reports.
func KernelISA() string { return "generic" }
