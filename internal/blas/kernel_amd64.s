//go:build amd64

#include "textflag.h"

// func micro8x4ASM(kb int, alpha float64, ap, bp, c *float64, ldc int)
//
// C[8][4] += alpha * Apack(8×kb) * Bpack(kb×4), with C at row stride ldc
// (in float64s). Apack is depth-major mr-strips: ap[p*8+i] = A[i][p];
// Bpack is depth-major nr-strips: bp[p*4+j] = B[p][j] (pack.go).
//
// Eight YMM accumulators Y2..Y9 hold one 4-wide row of the tile each; the
// depth loop does one 4-lane load of B, then eight broadcast+FMA steps.
// alpha is folded in at writeback (one extra FMA per row), so the
// accumulation itself is a pure fixed-order sum over p — the evaluation
// order every determinism test pins.
TEXT ·micro8x4ASM(SB), NOSPLIT, $0-48
	MOVQ kb+0(FP), CX
	MOVQ ap+16(FP), SI
	MOVQ bp+24(FP), DI
	MOVQ c+32(FP), DX
	MOVQ ldc+40(FP), R8
	SHLQ $3, R8            // row stride in bytes

	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	VXORPD Y8, Y8, Y8
	VXORPD Y9, Y9, Y9

	TESTQ CX, CX
	JZ    done

loop:
	VMOVUPD (DI), Y0       // B[p][0:4]
	VBROADCASTSD (SI), Y1  // A[0][p]
	VFMADD231PD Y0, Y1, Y2
	VBROADCASTSD 8(SI), Y1
	VFMADD231PD Y0, Y1, Y3
	VBROADCASTSD 16(SI), Y1
	VFMADD231PD Y0, Y1, Y4
	VBROADCASTSD 24(SI), Y1
	VFMADD231PD Y0, Y1, Y5
	VBROADCASTSD 32(SI), Y1
	VFMADD231PD Y0, Y1, Y6
	VBROADCASTSD 40(SI), Y1
	VFMADD231PD Y0, Y1, Y7
	VBROADCASTSD 48(SI), Y1
	VFMADD231PD Y0, Y1, Y8
	VBROADCASTSD 56(SI), Y1
	VFMADD231PD Y0, Y1, Y9
	ADDQ $64, SI           // next A strip column (8 doubles)
	ADDQ $32, DI           // next B strip row (4 doubles)
	DECQ CX
	JNZ  loop

done:
	// C row r (+)= alpha * acc_r
	VBROADCASTSD alpha+8(FP), Y1
	VMOVUPD (DX), Y0
	VFMADD231PD Y2, Y1, Y0
	VMOVUPD Y0, (DX)
	ADDQ R8, DX
	VMOVUPD (DX), Y0
	VFMADD231PD Y3, Y1, Y0
	VMOVUPD Y0, (DX)
	ADDQ R8, DX
	VMOVUPD (DX), Y0
	VFMADD231PD Y4, Y1, Y0
	VMOVUPD Y0, (DX)
	ADDQ R8, DX
	VMOVUPD (DX), Y0
	VFMADD231PD Y5, Y1, Y0
	VMOVUPD Y0, (DX)
	ADDQ R8, DX
	VMOVUPD (DX), Y0
	VFMADD231PD Y6, Y1, Y0
	VMOVUPD Y0, (DX)
	ADDQ R8, DX
	VMOVUPD (DX), Y0
	VFMADD231PD Y7, Y1, Y0
	VMOVUPD Y0, (DX)
	ADDQ R8, DX
	VMOVUPD (DX), Y0
	VFMADD231PD Y8, Y1, Y0
	VMOVUPD Y0, (DX)
	ADDQ R8, DX
	VMOVUPD (DX), Y0
	VFMADD231PD Y9, Y1, Y0
	VMOVUPD Y0, (DX)
	VZEROUPPER
	RET

// func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
