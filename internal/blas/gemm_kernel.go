package blas

import (
	"sync"
	"sync/atomic"

	"repro/internal/mat"
)

// kernelWorkersN is the process-wide kernel worker count, configured via
// conflux.WithKernelWorkers. It is deliberately a knob and not a key
// input: results are bit-identical at every width (see gemmBlocked), so a
// concurrent session racing the setter can only change how fast the
// answer arrives, never the answer.
var kernelWorkersN atomic.Int32

func init() { kernelWorkersN.Store(1) }

// SetKernelWorkers sets the number of goroutines the blocked level-3
// kernels may use for the outer loop over C row-blocks. n < 1 is clamped
// to 1 (serial).
func SetKernelWorkers(n int) {
	if n < 1 {
		n = 1
	}
	kernelWorkersN.Store(int32(n))
}

// KernelWorkers reports the current kernel worker count.
func KernelWorkers() int { return int(kernelWorkersN.Load()) }

// Thresholds for choosing the blocked path and for spawning workers.
// Below blockedFlopCutoff the packing traffic costs more than it saves;
// below parallelFlopCutoff a (jc,pc) step is too small to amortize
// goroutine handoff. Both compare against 2·m·n·k, the multiply-add count.
const (
	blockedFlopCutoff  = 1 << 18 // ~2·64³
	parallelFlopCutoff = 1 << 23
)

// gemmBlocked computes C += alpha·A·B with the cache-blocked,
// register-tiled kernel (DESIGN.md §15). Loop structure, outermost first:
//
//	jc over N by nc: pack B(kc×nc) once per (jc,pc), shared read-only;
//	pc over K by kc: depth blocks, applied in increasing-p order;
//	ic over M by mc: pack A(mc×kc) per block — the parallel loop;
//	jr/ir over the block by nr/mr: micro-tiles of C.
//
// Determinism: each C element belongs to exactly one (ic, ir, jr) tile,
// fixed by its coordinates because mc/mr/nr are constants. Worker
// parallelism only partitions the ic loop, and a WaitGroup barrier closes
// every (jc,pc) step, so each element's partial products accumulate in
// the same (pc, p) order — in the same registers — at every worker count.
// Bit-identical results across reps and widths follow.
func gemmBlocked(alpha float64, a, b, c *mat.Matrix) {
	m, n, k := a.Rows, b.Cols, a.Cols
	for jcb := 0; jcb < n; jcb += nc {
		nb := min(nc, n-jcb)
		bStrips := (nb + nr - 1) / nr
		bp := getPack(bStrips * nr * kc)
		for pcb := 0; pcb < k; pcb += kc {
			kb := min(kc, k-pcb)
			packB(b.Data, b.Stride, pcb, jcb, kb, nb, bp[:bStrips*nr*kb])
			mBlocks := (m + mc - 1) / mc
			w := KernelWorkers()
			if w > mBlocks {
				w = mBlocks
			}
			if w <= 1 || 2*m*nb*kb < parallelFlopCutoff {
				for bi := 0; bi < mBlocks; bi++ {
					macroBlock(alpha, a, c, bi*mc, jcb, min(mc, m-bi*mc), nb, pcb, kb, bp)
				}
				continue
			}
			var wg sync.WaitGroup
			chunk := (mBlocks + w - 1) / w
			for lo := 0; lo < mBlocks; lo += chunk {
				hi := min(lo+chunk, mBlocks)
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					for bi := lo; bi < hi; bi++ {
						macroBlock(alpha, a, c, bi*mc, jcb, min(mc, m-bi*mc), nb, pcb, kb, bp)
					}
				}(lo, hi)
			}
			wg.Wait()
		}
		putPack(bp)
	}
}

// macroBlock multiplies one packed mb×kb block of A against the resident
// packed B block, updating the mb×nb region of C at (icb, jcb). Exactly
// one goroutine runs each block per (jc,pc) step, and blocks own disjoint
// C rows, so no C element is ever written concurrently.
func macroBlock(alpha float64, a, c *mat.Matrix, icb, jcb, mb, nb, pcb, kb int, bp []float64) {
	ap := getPack(((mb + mr - 1) / mr) * mr * kb)
	packA(a.Data, a.Stride, icb, pcb, mb, kb, ap)
	for sj := 0; sj*nr < nb; sj++ {
		nrb := min(nr, nb-sj*nr)
		bs := bp[sj*nr*kb : (sj+1)*nr*kb]
		for si := 0; si*mr < mb; si++ {
			mrb := min(mr, mb-si*mr)
			as := ap[si*mr*kb : (si+1)*mr*kb]
			coff := (icb+si*mr)*c.Stride + jcb + sj*nr
			if mrb == mr && nrb == nr {
				microKernel(kb, alpha, as, bs, c.Data[coff:], c.Stride)
			} else {
				microGeneric(kb, alpha, as, bs, c.Data[coff:], c.Stride, mrb, nrb)
			}
		}
	}
	putPack(ap)
}
