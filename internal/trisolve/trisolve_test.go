package trisolve

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/blas"
	"repro/internal/grid"
	"repro/internal/lapack"
	"repro/internal/mat"
	"repro/internal/smpi"
	"repro/internal/trace"
)

const testTimeout = 60 * time.Second

// combinedLU builds a well-conditioned combined factor matrix: unit-lower L
// below the diagonal (implicit unit diagonal), upper U on and above with a
// boosted diagonal.
func combinedLU(n int, seed uint64) *mat.Matrix {
	r := mat.Random(n, n, seed)
	lu := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := r.At(i, j) / float64(n)
			if i == j {
				v = 2 + math.Abs(r.At(i, j))
			}
			lu.Set(i, j, v)
		}
	}
	return lu
}

func runSolve(t *testing.T, p int, lu, b *mat.Matrix, opt Options) (*mat.Matrix, *trace.Report, error) {
	t.Helper()
	var x *mat.Matrix
	rep, err := smpi.RunTimeout(p, lu != nil, testTimeout, func(c *smpi.Comm) error {
		var l, rhs *mat.Matrix
		if c.Rank() == 0 {
			l, rhs = lu, b
		}
		res, err := Run(c, l, rhs, opt)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			x = res.X
		}
		return nil
	})
	return x, rep, err
}

func TestSolveMatchesDirect(t *testing.T) {
	cases := []struct {
		n, nrhs, v, p int
	}{
		{16, 1, 4, 1},
		{32, 3, 8, 4},  // 2x2 grid
		{37, 2, 8, 6},  // 2x3 grid, ragged last tile
		{33, 4, 8, 5},  // 1x5 grid, ragged
		{24, 5, 8, 3},  // 1x3 grid
		{48, 2, 8, 12}, // 3x4 grid, more ranks than diagonal tiles per row
	}
	for _, tc := range cases {
		lu := combinedLU(tc.n, uint64(tc.n)*13+uint64(tc.p))
		l, u := lapack.SplitLU(lu)
		want := mat.Random(tc.n, tc.nrhs, 99)
		// B = L·(U·X): feed the exact product so X is recoverable to
		// rounding error.
		ux := mat.New(tc.n, tc.nrhs)
		blas.Gemm(1, u, want, 0, ux)
		b := mat.New(tc.n, tc.nrhs)
		blas.Gemm(1, l, ux, 0, b)
		opt := Options{N: tc.n, NRHS: tc.nrhs, V: tc.v, Grid: grid.Square2D(tc.p)}
		x, rep, err := runSolve(t, tc.p, lu, b, opt)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if d := mat.MaxAbsDiff(x, want); d > 1e-9 {
			t.Fatalf("%+v: max |X - want| = %v", tc, d)
		}
		if tc.p > 1 {
			fwd, back := rep.ByPhase[PhaseFwd], rep.ByPhase[PhaseBack]
			if fwd <= 0 || back <= 0 {
				t.Fatalf("%+v: solve phases not metered: fwd=%d back=%d", tc, fwd, back)
			}
		}
	}
}

func TestSolveSingularFactorSurfacesAsError(t *testing.T) {
	n, p := 16, 4
	lu := combinedLU(n, 5)
	lu.Set(9, 9, 0) // zero U pivot
	b := mat.Random(n, 1, 1)
	_, _, err := runSolve(t, p, lu, b, Options{N: n, NRHS: 1, V: 4, Grid: grid.Square2D(p)})
	if err == nil || !strings.Contains(err.Error(), "singular factor") {
		t.Fatalf("expected singular-factor error, got %v", err)
	}
}

// TestSolveVolumeExactModel pins the schedule's communication volume: each
// pass reduces (Pc-1)·rows·NRHS and broadcasts (Pr-1)·rows·NRHS elements per
// step, so fwd and back each move exactly (Pr+Pc-2)·N·NRHS elements.
func TestSolveVolumeExactModel(t *testing.T) {
	cases := []struct{ n, nrhs, v, p int }{
		{64, 1, 8, 4},
		{64, 4, 8, 6},
		{40, 3, 8, 5},
		{96, 2, 32, 9},
	}
	for _, tc := range cases {
		g := grid.Square2D(tc.p)
		opt := Options{N: tc.n, NRHS: tc.nrhs, V: tc.v, Grid: g}
		_, rep, err := runSolve(t, tc.p, nil, nil, opt)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		want := int64(g.Pr+g.Pc-2) * int64(tc.n) * int64(tc.nrhs) * trace.BytesPerElement
		if rep.ByPhase[PhaseFwd] != want || rep.ByPhase[PhaseBack] != want {
			t.Fatalf("%+v: fwd=%d back=%d want %d", tc, rep.ByPhase[PhaseFwd], rep.ByPhase[PhaseBack], want)
		}
	}
}

// TestSolveReplayDeterministic pins the acceptance criterion: repeated
// volume-mode replays meter identical bytes and bit-identical simulated
// makespans.
func TestSolveReplayDeterministic(t *testing.T) {
	opt := DefaultOptions(128, 6, 4)
	var bytes int64
	var makespan float64
	for i := 0; i < 3; i++ {
		_, rep, err := runSolve(t, 6, nil, nil, opt)
		if err != nil {
			t.Fatal(err)
		}
		got := rep.ByPhase[PhaseFwd] + rep.ByPhase[PhaseBack]
		if got <= 0 || rep.Time.Makespan <= 0 {
			t.Fatalf("run %d: no metered solve traffic/time: %d bytes, %v s", i, got, rep.Time.Makespan)
		}
		if i == 0 {
			bytes, makespan = got, rep.Time.Makespan
			continue
		}
		if got != bytes || rep.Time.Makespan != makespan {
			t.Fatalf("run %d: %d bytes / %v s vs %d / %v", i, got, rep.Time.Makespan, bytes, makespan)
		}
	}
}

// TestSolveHousekeepingExcluded: the factor scatter, RHS scatter, and
// solution gather are metered under layout/collect and excluded from
// algorithm-attributed bytes.
func TestSolveHousekeepingExcluded(t *testing.T) {
	opt := DefaultOptions(64, 4, 2)
	_, rep, err := runSolve(t, 4, nil, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ByPhase[trace.PhaseLayout] <= 0 || rep.ByPhase[trace.PhaseCollect] <= 0 {
		t.Fatalf("housekeeping not metered: %v", rep.ByPhase)
	}
	algo := rep.AlgorithmBytes(trace.PhaseLayout, trace.PhaseCollect)
	if algo != rep.ByPhase[PhaseFwd]+rep.ByPhase[PhaseBack] {
		t.Fatalf("algorithm bytes %d != fwd+back %d", algo, rep.ByPhase[PhaseFwd]+rep.ByPhase[PhaseBack])
	}
}
