// Package trisolve implements the distributed multi-right-hand-side
// triangular solve (block forward/back substitution) that turns the LU
// harness into an end-to-end solver: given the combined factors L\U of P·A
// in the block-cyclic layout the engines produce, it solves L·U·X = P·B on
// a 2D processor grid inside smpi, so the solve phase is metered (trace
// phases "solve.fwd" / "solve.back") and timed under the α-β machine
// exactly like factorization.
//
// Schedule — one step per tile row/column k, forward pass ascending with
// the unit-lower L, back pass descending with the non-unit upper U:
//
//  1. the partial update sums −Σ A(k,j)·X(j) accumulated so far by the
//     ranks of grid row OwnerRow(k) are reduced along that row onto the
//     diagonal owner (volume (Pc−1)·v·NRHS elements),
//  2. the diagonal owner folds the sum into its right-hand-side block and
//     solves the v×NRHS diagonal system (TrsmLowerLeft with unit diagonal
//     on the forward pass, TrsmUpperLeft on the back pass, where a zero
//     U diagonal surfaces as a "singular factor" error),
//  3. the solved block is broadcast down grid column OwnerCol(k) (volume
//     (Pr−1)·v·NRHS), whose ranks fold it into their local accumulators
//     for the steps that still need it.
//
// Each pass therefore moves exactly (Pr+Pc−2)·N·NRHS elements in timed
// phases, but puts 2·nt·O(log Pr + log Pc) messages on the critical path:
// the solve is latency-bound for small NRHS, which is why batching
// right-hand sides is nearly free in simulated time (see DESIGN.md §8).
//
// The RHS scatter from rank 0 and the solution gather back are labeled
// trace.PhaseLayout / trace.PhaseCollect, mirroring the factorization
// harness: the paper assumes operands are already distributed (§7.4), so
// housekeeping is metered but excluded from algorithm volume and time.
package trisolve

import (
	"errors"
	"fmt"

	"repro/internal/blas"
	"repro/internal/dist"
	"repro/internal/grid"
	"repro/internal/mat"
	"repro/internal/smpi"
	"repro/internal/trace"
)

// Phase labels of the two timed solve phases (under the default Name).
const (
	PhaseFwd  = "solve.fwd"
	PhaseBack = "solve.back"
)

// ErrSingular is the sentinel wrapped by solves that hit a zero U pivot.
// The public API re-surfaces it as conflux.ErrSingular.
var ErrSingular = errors.New("singular factor")

// Options configures a distributed triangular solve.
type Options struct {
	Name string    // phase-label prefix (default "solve")
	N    int       // global matrix dimension
	NRHS int       // number of right-hand sides (columns of B)
	V    int       // tile size
	Grid grid.Grid // 2D grid (Layers == 1) using every rank
}

// DefaultOptions picks the squarest 2D grid over all p ranks and the
// harness-standard tile size 32 (capped at n).
func DefaultOptions(n, p, nrhs int) Options {
	v := 32
	if v > n {
		v = n
	}
	if nrhs < 1 {
		nrhs = 1
	}
	return Options{Name: "solve", N: n, NRHS: nrhs, V: v, Grid: grid.Square2D(p)}
}

// Result carries the solve output: in numeric mode, world rank 0 holds the
// N×NRHS solution X of L·U·X = B.
type Result struct {
	X *mat.Matrix
}

// Run executes the solve on an existing world. lu (the combined in-place
// factors, unit-lower L below the diagonal, U on and above) and b (N×NRHS,
// already row-permuted to P·B) are consulted at world rank 0 only — nil
// selects volume mode, where the schedule and the metered bytes are
// identical but no arithmetic happens.
func Run(c *smpi.Comm, lu, b *mat.Matrix, opt Options) (*Result, error) {
	if opt.Name == "" {
		opt.Name = "solve"
	}
	if opt.Grid.Layers != 1 {
		panic("trisolve: requires a 2D grid")
	}
	if opt.Grid.Used() != opt.Grid.Total {
		panic("trisolve: the solve grid uses every rank")
	}
	if c.Size() != opt.Grid.Total {
		panic(fmt.Sprintf("trisolve: world %d != grid total %d", c.Size(), opt.Grid.Total))
	}
	if opt.V < 1 || opt.NRHS < 1 || opt.N < 1 {
		panic(fmt.Sprintf("trisolve: invalid options N=%d V=%d NRHS=%d", opt.N, opt.V, opt.NRHS))
	}
	e := &engine{c: c, opt: opt}
	return e.run(lu, b)
}

type engine struct {
	c   *smpi.Comm
	opt Options

	g        grid.Grid
	bc       grid.BlockCyclic
	row, col int
	store    *dist.Store
	bTiles   map[int]*mat.Matrix // right-hand-side blocks at diagonal owners
}

func (e *engine) run(lu, b *mat.Matrix) (*Result, error) {
	e.g = e.opt.Grid
	e.bc = grid.BlockCyclic{G: e.g, V: e.opt.V, N: e.opt.N}
	e.row, e.col, _ = e.g.Coords(e.c.Rank())
	e.store = dist.NewStore(e.bc, e.row, e.col, 0, e.c.Payload())
	nt := e.bc.Tiles()
	// RHS/solution tags sit directly above dist's tile-tag block [0, nt²).
	if nt*nt+2*nt >= 1<<30 {
		panic(fmt.Sprintf("trisolve: %d tiles exhaust the point-to-point tag space", nt))
	}
	dist.Scatter(e.c, 0, lu, e.g, e.store)
	e.scatterRHS(b)
	if err := e.pass(false); err != nil {
		return nil, err
	}
	if err := e.pass(true); err != nil {
		return nil, err
	}
	return e.gather(), nil
}

// scatterRHS distributes the right-hand-side blocks from rank 0 to the
// diagonal-tile owners (block k lives where tile (k,k) lives). Labeled
// layout: input distribution is housekeeping, like the factor scatter.
func (e *engine) scatterRHS(b *mat.Matrix) {
	prev := e.c.Phase()
	defer e.c.SetPhase(prev)
	e.c.SetPhase(trace.PhaseLayout)
	nt := e.bc.Tiles()
	base := nt * nt
	e.bTiles = map[int]*mat.Matrix{}
	if e.c.Rank() == 0 {
		if b != nil && (b.Rows != e.opt.N || b.Cols != e.opt.NRHS) {
			panic(fmt.Sprintf("trisolve: rhs %dx%d != %dx%d", b.Rows, b.Cols, e.opt.N, e.opt.NRHS))
		}
		for k := 0; k < nt; k++ {
			rows, _ := e.bc.TileDims(k, k)
			var src *mat.Matrix
			if b != nil {
				src = b.View(k*e.opt.V, 0, rows, e.opt.NRHS)
			} else {
				src = mat.NewPhantom(rows, e.opt.NRHS)
			}
			if owner := e.bc.Owner(k, k, 0); owner != 0 {
				e.c.SendMat(owner, base+k, src)
			} else {
				t := e.store.NewBuffer(rows, e.opt.NRHS)
				t.CopyFrom(src)
				e.bTiles[k] = t
			}
		}
		return
	}
	for k := 0; k < nt; k++ {
		if e.bc.Owner(k, k, 0) != e.c.Rank() {
			continue
		}
		rows, _ := e.bc.TileDims(k, k)
		t := e.store.NewBuffer(rows, e.opt.NRHS)
		e.c.RecvMat(0, base+k, t)
		e.bTiles[k] = t
	}
}

// pass runs one substitution sweep: forward over the unit-lower factor
// (upper=false, ascending steps) or backward over the upper factor
// (upper=true, descending steps).
func (e *engine) pass(upper bool) error {
	nt := e.bc.Tiles()
	suffix := "fwd"
	if upper {
		suffix = "back"
	}
	e.c.SetPhase(e.opt.Name + "." + suffix)
	// acc[j] holds −Σ A(j,k)·X(k) over the steps k this rank's grid column
	// has already seen; it is reduced row-wise when j becomes the pivot.
	acc := map[int]*mat.Matrix{}
	for s := 0; s < nt; s++ {
		k := s
		if upper {
			k = nt - 1 - s
		}
		gr, gc := e.bc.OwnerRow(k), e.bc.OwnerCol(k)
		rows, _ := e.bc.TileDims(k, k)
		if e.row == gr {
			rc := e.c.Sub(fmt.Sprintf("%s.%s.row.%d", e.opt.Name, suffix, k), e.g.RowComm(gr, 0))
			m := acc[k]
			if m == nil {
				m = e.store.NewBuffer(rows, e.opt.NRHS)
			}
			delete(acc, k)
			rc.ReduceMatSum(gc, m)
			if e.col == gc {
				bk := e.bTiles[k]
				bk.AddFrom(m)
				diag := e.store.Tile(k, k)
				if upper {
					if err := checkPivots(diag, k*e.opt.V); err != nil {
						return err
					}
					blas.TrsmUpperLeft(diag, bk)
				} else {
					blas.TrsmLowerLeft(diag, bk, true)
				}
			}
		}
		if e.col == gc {
			cc := e.c.Sub(fmt.Sprintf("%s.%s.col.%d", e.opt.Name, suffix, k), e.g.ColComm(gc, 0))
			x := e.store.NewBuffer(rows, e.opt.NRHS)
			if e.row == gr {
				x.CopyFrom(e.bTiles[k])
			}
			cc.BcastMat(gr, x)
			for _, tj := range e.remaining(k, upper) {
				a := acc[tj]
				if a == nil {
					r2, _ := e.bc.TileDims(tj, tj)
					a = e.store.NewBuffer(r2, e.opt.NRHS)
					acc[tj] = a
				}
				blas.Gemm(-1, e.store.Tile(tj, k), x, 1, a)
			}
		}
	}
	return nil
}

// remaining lists this rank's tile rows still to be solved after step k:
// below the diagonal on the forward pass, above it on the back pass.
func (e *engine) remaining(k int, upper bool) []int {
	if !upper {
		return e.bc.LocalTileRows(e.row, k+1)
	}
	var out []int
	for _, tj := range e.bc.LocalTileRows(e.row, 0) {
		if tj < k {
			out = append(out, tj)
		}
	}
	return out
}

// checkPivots rejects a zero U diagonal before dividing by it — the factors
// of a singular matrix must surface as an error, not as Inf/NaN in X.
func checkPivots(diag *mat.Matrix, row0 int) error {
	if diag.Phantom() {
		return nil
	}
	for d := 0; d < diag.Rows; d++ {
		if diag.At(d, d) == 0 {
			return fmt.Errorf("trisolve: %w: zero pivot on row %d", ErrSingular, row0+d)
		}
	}
	return nil
}

// gather collects the solved blocks back to rank 0 (labeled collect).
func (e *engine) gather() *Result {
	prev := e.c.Phase()
	defer e.c.SetPhase(prev)
	e.c.SetPhase(trace.PhaseCollect)
	nt := e.bc.Tiles()
	base := nt*nt + nt
	if e.c.Rank() != 0 {
		for k := 0; k < nt; k++ {
			if e.bc.Owner(k, k, 0) == e.c.Rank() {
				e.c.SendMat(0, base+k, e.bTiles[k])
			}
		}
		return &Result{}
	}
	var x *mat.Matrix
	if e.c.Payload() {
		x = mat.New(e.opt.N, e.opt.NRHS)
	} else {
		x = mat.NewPhantom(e.opt.N, e.opt.NRHS)
	}
	for k := 0; k < nt; k++ {
		rows, _ := e.bc.TileDims(k, k)
		dst := x.View(k*e.opt.V, 0, rows, e.opt.NRHS)
		if owner := e.bc.Owner(k, k, 0); owner != 0 {
			e.c.RecvMat(owner, base+k, dst)
		} else {
			dst.CopyFrom(e.bTiles[k])
		}
	}
	return &Result{X: x}
}
