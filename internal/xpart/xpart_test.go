package xpart

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/daap"
)

func close(a, b, rel float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= rel*math.Max(math.Abs(a), math.Abs(b))
}

// §3.2 / classic MMM: ψ(X) = (X/3)^{3/2}, X0 = 3M, ρ = √M/2, Q = 2N³/√M.
func TestMMMClosedForm(t *testing.T) {
	p := MMMProblem(64)
	for _, x := range []float64{30, 300, 3000} {
		psi, xs := p.Psi(x)
		want := math.Pow(x/3, 1.5)
		if !close(psi, want, 1e-6) {
			t.Fatalf("psi(%v)=%v want %v (xs=%v)", x, psi, want, xs)
		}
	}
	m := 100.0
	b := p.SequentialBound(m)
	if !close(b.X0, 3*m, 0.02) {
		t.Fatalf("X0=%v want %v", b.X0, 3*m)
	}
	if !close(b.Rho, math.Sqrt(m)/2, 0.02) {
		t.Fatalf("rho=%v want %v", b.Rho, math.Sqrt(m)/2)
	}
	n := 64.0
	if !close(b.Q, 2*n*n*n/math.Sqrt(m), 0.02) {
		t.Fatalf("Q=%v want %v", b.Q, MMMSequentialLowerBound(64, m))
	}
}

// §6 S1: ψ(X) = X−1 (K=1, I=X−1), but Lemma 6 caps ρ at 1 → Q = N(N−1)/2.
func TestLUS1ClosedForm(t *testing.T) {
	s1, _ := LUStatementProblems(32)
	psi, xs := s1.Psi(100)
	if !close(psi, 99, 1e-9) {
		t.Fatalf("psi=%v want 99 (xs=%v)", psi, xs)
	}
	if xs[0] > 1.0001 { // K clamps to 1
		t.Fatalf("K=%v want 1", xs[0])
	}
	b := s1.SequentialBound(10)
	if !close(b.Rho, 1, 1e-9) {
		t.Fatalf("rho=%v want 1 (Lemma 6 cap)", b.Rho)
	}
	if !close(b.Q, 32*31/2, 1e-9) {
		t.Fatalf("Q=%v want %v", b.Q, 32*31/2)
	}
}

// §6 S2: same structure as MMM → ρ = √M/2, Q = 2|V_S2|/√M.
func TestLUS2ClosedForm(t *testing.T) {
	n, m := 48, 64.0
	_, s2 := LUStatementProblems(n)
	b := s2.SequentialBound(m)
	if !close(b.Rho, math.Sqrt(m)/2, 0.02) {
		t.Fatalf("rho=%v want %v", b.Rho, math.Sqrt(m)/2)
	}
	_, v2 := daap.CountLUVertices(n)
	if !close(b.Q, 2*float64(v2)/math.Sqrt(m), 0.02) {
		t.Fatalf("Q=%v want %v", b.Q, 2*float64(v2)/math.Sqrt(m))
	}
}

// Full §6 pipeline vs the closed form 2N³−6N²+4N)/(3√M) + N(N−1)/2.
func TestLUDerivedMatchesClosedForm(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive §6 pipeline (~1.4s); run without -short")
	}
	for _, tc := range []struct {
		n, p int
		m    float64
	}{
		{64, 1, 64}, {128, 4, 256}, {256, 16, 1024},
	} {
		derived := LUDerivedLowerBound(tc.n, tc.p, tc.m)
		closed := LUParallelLowerBound(tc.n, tc.p, tc.m)
		if !close(derived, closed, 0.03) {
			t.Fatalf("n=%d p=%d m=%v: derived %v vs closed %v", tc.n, tc.p, tc.m, derived, closed)
		}
	}
}

// §4.1 example: Q_S = Q_T = N³/M, Reuse(B) = N³/M, Q_tot = N³/M.
func TestFusedMMMExample(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive reuse-bound search (~8s); run without -short")
	}
	n, m := 64, 32.0
	nf := float64(n)
	qs, qt, reuse, qtot := FusedMMMTotalBound(n, m)
	want := nf * nf * nf / m
	if !close(qs, want, 0.05) || !close(qt, want, 0.05) {
		t.Fatalf("Q_S=%v Q_T=%v want %v", qs, qt, want)
	}
	if !close(reuse, want, 0.05) {
		t.Fatalf("Reuse(B)=%v want %v", reuse, want)
	}
	if !close(qtot, want, 0.05) {
		t.Fatalf("Q_tot=%v want %v", qtot, want)
	}
}

// §4.2 example: dropping A's dominator term (ρ_S → ∞) gives Q = N³/M
// instead of 2N³/√M.
func TestModifiedMMMExample(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive output-reuse search (~1.3s); run without -short")
	}
	n, m := 64, 100.0
	nf := float64(n)
	got := ModifiedMMMBound(n, m)
	if !close(got, nf*nf*nf/m, 0.05) {
		t.Fatalf("Q=%v want %v", got, nf*nf*nf/m)
	}
	// Must be far below the no-recomputation bound.
	if got > MMMSequentialLowerBound(n, m)/2 {
		t.Fatalf("output reuse did not reduce the bound: %v", got)
	}
}

// ψ(X0) for the fused-MMM statement: X0 = 2M with B's access size = M
// (K=1, I=J=M), reproducing the Reuse(B) pieces of §4.1.
func TestFusedMMMAccessSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive access-size search (~2.6s); run without -short")
	}
	m := 50.0
	prog := daap.FusedMMMProgram()
	s := FromStatement(prog.Statements[0], nil, 1e6)
	b := s.SequentialBound(m)
	if !close(b.X0, 2*m, 0.05) {
		t.Fatalf("X0=%v want %v", b.X0, 2*m)
	}
	if acc := s.AccessSizeAtOptimum(m, 1); !close(acc, m, 0.05) {
		t.Fatalf("|B(R)|=%v want %v", acc, m)
	}
}

func TestUnboundedStatement(t *testing.T) {
	// A statement with an unreferenced iteration variable has ψ = ∞.
	p := Problem{Depth: 2, Terms: []Term{{Vars: []int{0}, Scale: 1}}, NumVertices: 100}
	psi, _ := p.Psi(50)
	if !math.IsInf(psi, 1) {
		t.Fatalf("psi=%v want +Inf", psi)
	}
}

func TestParallelBoundLemma9(t *testing.T) {
	p := MMMProblem(64)
	m := 64.0
	seq := p.SequentialBound(m).Q
	if got := p.ParallelBound(m, 8); !close(got, seq/8, 1e-9) {
		t.Fatalf("parallel bound %v want %v", got, seq/8)
	}
}

func TestCholeskyBound(t *testing.T) {
	n, m := 96, 64.0
	nf := float64(n)
	got := CholeskyLowerBound(n, m)
	want := nf * nf * nf / (3 * math.Sqrt(m)) // leading term
	if got < 0.8*want || got > 1.5*want {
		t.Fatalf("Cholesky bound %v, want ≈ %v", got, want)
	}
}

func TestCOnfLUXOptimalityRatio(t *testing.T) {
	// The headline claim: COnfLUX's leading term is 3/2× the lower bound.
	// The N(N−1)/2P term in the denominator pulls the ratio slightly under
	// 3/2 at finite sizes; it approaches 1.5 from below as N²/√M shrinks
	// relative to N³/√M... i.e. as N grows.
	r := COnfLUXOverLowerBound(1<<20, 1024, 1e9)
	if r < 1.40 || r > 1.5 {
		t.Fatalf("ratio %v want ≈1.5 (from below)", r)
	}
	r2 := COnfLUXOverLowerBound(1<<26, 1024, 1e9)
	if r2 < r || r2 > 1.5 {
		t.Fatalf("ratio must approach 1.5 from below: %v then %v", r, r2)
	}
}

func TestLUSequentialMatchesOlivry(t *testing.T) {
	// §6 cites Olivry et al.'s sequential bound 2N³/(3√M): our closed form's
	// leading term must agree.
	n, m := 1<<12, 1e6
	nf := float64(n)
	got := LUSequentialLowerBound(n, m)
	lead := 2*nf*nf*nf/(3*math.Sqrt(m)) + nf*(nf-1)/2
	// Exact form carries the −6N²+4N correction; 1% at this size.
	if !close(got, lead, 0.01) {
		t.Fatalf("bound %v want ≈%v", got, lead)
	}
}

func TestTensorContractionBound(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive contraction-bound search (~2.3s); run without -short")
	}
	// With K=L=√N the contraction is exactly MMM over a fused index of size
	// N, so the bounds must coincide.
	n, m := 64, 100.0
	k := 8 // k·l = 64 = n
	tc := TensorContractionBound(n, k, k, m)
	mmm := MMMSequentialLowerBound(n, m)
	if tc < 0.9*mmm || tc > 1.1*mmm {
		t.Fatalf("TC bound %v vs MMM %v", tc, mmm)
	}
	// Bigger contraction dimension → proportionally bigger bound.
	tc2 := TensorContractionBound(n, 2*k, k, m)
	if tc2 < 1.8*tc || tc2 > 2.2*tc {
		t.Fatalf("TC scaling: %v vs %v", tc2, tc)
	}
}

// Property: ψ is monotone in X and ρ-minimization never returns X0 <= M.
func TestQuickPsiMonotone(t *testing.T) {
	p := MMMProblem(32)
	f := func(a8, b8 uint16) bool {
		x1 := 10 + float64(a8%1000)
		x2 := x1 + 1 + float64(b8%1000)
		p1, _ := p.Psi(x1)
		p2, _ := p.Psi(x2)
		return p2 >= p1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the derived LU bound scales like 1/P (Lemma 9).
func TestQuickParallelScaling(t *testing.T) {
	f := func(p8 uint8) bool {
		p := int(p8%31) + 1
		b1 := LUParallelLowerBound(256, 1, 128)
		bp := LUParallelLowerBound(256, p, 128)
		return close(bp, b1/float64(p), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
