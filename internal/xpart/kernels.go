package xpart

import (
	"math"

	"repro/internal/daap"
)

// This file assembles the paper's end-to-end kernel bounds from the generic
// machinery: the §6 LU derivation (S1 via Lemma 6, S2 via the dominator
// optimization with the output-reuse correction), the §4.1 fused-MMM reuse
// example, and the Cholesky bound the conclusions nominate as future work.

// LUStatementProblems returns the two LU statement problems exactly as §6
// sets them up: S1 with the Lemma 6 cap ρ ≤ 1 (A[i,k] has out-degree one),
// S2 with the output-reuse scale 1/ρ_S1 = 1 on A[i,k] (which leaves its
// access size unchanged — "it is not beneficial to recompute vertices if the
// recomputation cost is not lower than loading").
func LUStatementProblems(n int) (s1, s2 Problem) {
	prog := daap.LUProgram()
	nf := float64(n)
	v1, v2 := daap.CountLUVertices(n)
	s1 = FromStatement(prog.Statements[0], nil, float64(v1))
	s1.RhoCap = 1
	s2 = FromStatement(prog.Statements[1], map[int]float64{1: 1.0 / 1.0}, float64(v2))
	_ = nf
	return s1, s2
}

// LUSequentialLowerBound returns the paper's §6 sequential bound
// Q ≥ (2N³−6N²+4N)/(3√M) + N(N−1)/2 (closed form).
func LUSequentialLowerBound(n int, m float64) float64 {
	nf := float64(n)
	return (2*nf*nf*nf-6*nf*nf+4*nf)/(3*math.Sqrt(m)) + nf*(nf-1)/2
}

// LUParallelLowerBound returns the paper's headline parallel bound
// Q_P ≥ 2N³/(3P√M) + O(N²/P) (closed form, Lemma 9 applied to §6).
func LUParallelLowerBound(n, p int, m float64) float64 {
	return LUSequentialLowerBound(n, m) / float64(p)
}

// LUDerivedLowerBound runs the full generic pipeline (problem 3 → Lemma 2 →
// Lemma 6 → Lemma 9) on the LU program and returns the derived parallel
// bound. Tests assert it matches the closed form to within the numeric
// optimizer's tolerance.
func LUDerivedLowerBound(n, p int, m float64) float64 {
	s1, s2 := LUStatementProblems(n)
	return s1.ParallelBound(m, p) + s2.ParallelBound(m, p)
}

// MMMSequentialLowerBound returns the classic 2N³/√M bound, which the
// generic machinery reproduces from the three-access MMM statement
// (ψ(X) = (X/3)^{3/2}, X0 = 3M, ρ = √M/2).
func MMMSequentialLowerBound(n int, m float64) float64 {
	return 2 * float64(n) * float64(n) * float64(n) / math.Sqrt(m)
}

// MMMProblem builds the MMM statement problem with |V| = n³.
func MMMProblem(n int) Problem {
	prog := daap.MMMProgram()
	nf := float64(n)
	return FromStatement(prog.Statements[0], nil, nf*nf*nf)
}

// FusedMMMTotalBound reproduces the §4.1 example end to end:
// Q_S = Q_T = N³/M, Reuse(B) = N³/M, so Q_tot ≥ N³/M.
func FusedMMMTotalBound(n int, m float64) (qs, qt, reuse, qtot float64) {
	prog := daap.FusedMMMProgram()
	nf := float64(n)
	s := FromStatement(prog.Statements[0], nil, nf*nf*nf)
	t := FromStatement(prog.Statements[1], nil, nf*nf*nf)
	qs = s.SequentialBound(m).Q
	qt = t.SequentialBound(m).Q
	// B is input index 1 in both statements; term order follows input order.
	reuse = ReuseBound(s, t, m, 1, 1)
	qtot = qs + qt - reuse
	return qs, qt, reuse, qtot
}

// ModifiedMMMBound reproduces the §4.2 output-reuse example: statement S
// computes A for free (ρ_S → ∞), so A's dominator term vanishes from T and
// Q_{T+S} ≥ N³/M (stream B against M−1 cached C elements).
func ModifiedMMMBound(n int, m float64) float64 {
	prog := daap.MMMProgram()
	nf := float64(n)
	// Drop A (input 0): infinite producer intensity → scale 0.
	t := FromStatement(prog.Statements[0], map[int]float64{0: 0}, nf*nf*nf)
	return t.SequentialBound(m).Q
}

// CholeskyLowerBound applies the same machinery to the Cholesky program
// (the conclusions' "exploration … to algorithms such as Cholesky"):
// S3 has the MMM-like three-access structure with |V_S3| ≈ N³/6, giving
// Q ≥ N³/(3√M) + lower-order terms.
func CholeskyLowerBound(n int, m float64) float64 {
	prog := daap.CholeskyProgram()
	nf := float64(n)
	var v3 float64
	for k := 0; k < n; k++ {
		r := nf - float64(k) - 1
		v3 += r * (r + 1) / 2
	}
	s3 := FromStatement(prog.Statements[2], nil, v3)
	s2 := FromStatement(prog.Statements[1], nil, nf*(nf-1)/2)
	s2.RhoCap = 1
	return s3.SequentialBound(m).Q + s2.SequentialBound(m).Q
}

// TensorContractionBound demonstrates the §2.2 claim that the machinery
// covers "more general tensor contractions": the 4-index contraction
//
//	C[i,j] += A[i,k,l] · B[k,l,j]
//
// has dominator terms (i,k,l), (k,l,j), (i,j); by symmetry of the KKT
// system its ψ(X) matches MMM's (X/3)^{3/2} shape with the (k,l) pair
// acting as a fused index, so Q ≥ 2·N²·(KL)/√M for an N×N output
// contracting over K·L terms. The numeric optimizer derives it directly
// from the statement.
func TensorContractionBound(n, k, l int, m float64) float64 {
	// Iteration variables: i=0, j=1, k=2, l=3.
	s := daap.Statement{
		Name:   "TC",
		Depth:  4,
		Output: daap.Access{Array: "C", Vars: []int{0, 1}},
		Inputs: []daap.Access{
			{Array: "A", Vars: []int{0, 2, 3}},
			{Array: "B", Vars: []int{2, 3, 1}},
			{Array: "C", Vars: []int{0, 1}},
		},
	}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	vertices := float64(n) * float64(n) * float64(k) * float64(l)
	return FromStatement(s, nil, vertices).SequentialBound(m).Q
}

// COnfLUXOverLowerBound returns the paper's headline optimality ratio: the
// COnfLUX leading term N³/(P√M) over the lower bound 2N³/(3P√M) — exactly
// 3/2 asymptotically ("only a factor of 1/3 over our established lower
// bound" as the paper phrases the 1→3/2 gap).
func COnfLUXOverLowerBound(n, p int, m float64) float64 {
	nf := float64(n)
	conflux := nf * nf * nf / (float64(p) * math.Sqrt(m))
	return conflux / LUParallelLowerBound(n, p, m)
}
