// Package xpart implements the paper's general I/O lower-bound method
// (§3–§5): the optimization problem (3) that yields ψ(X) = |V_max| for a
// DAAP statement, the computational-intensity minimization of Lemma 2, the
// out-degree-one cap of Lemma 6, the input-reuse bound of Lemma 7 / Eq. (6),
// the output-reuse corollary of §4.2, and the parallel bound of Lemma 9.
//
// ψ(X) is found numerically by multiplicative coordinate ascent on
//
//	max Π_t x_t   s.t.   Σ_j scale_j · Π_{k ∈ vars(φ_j)} x_k ≤ X,  x_t ≥ 1,
//
// which converges to the KKT point of problem (3); tests verify it against
// every closed form in the paper (MMM, LU S1/S2, the §4 examples).
package xpart

import (
	"math"

	"repro/internal/daap"
)

// Term is one dominator-set contribution: the distinct iteration variables
// of an access, with an optional scale. Scale 1 is a plain input; scale
// 1/ρ_producer implements the output-reuse Corollary 1 (a scale of 0 drops
// the term entirely — the producer recomputes for free, as in §4.2).
type Term struct {
	Vars  []int
	Scale float64
}

// Problem is the per-statement lower-bound instance.
type Problem struct {
	Depth       int
	Terms       []Term
	NumVertices float64 // |V| of the statement
	RhoCap      float64 // Lemma 6: ρ ≤ RhoCap (0 = no cap)
}

// FromStatement builds a Problem from a DAAP statement. scales maps input
// index → dominator scale (default 1); numVertices is the statement's |V|.
func FromStatement(s daap.Statement, scales map[int]float64, numVertices float64) Problem {
	p := Problem{Depth: s.Depth, NumVertices: numVertices}
	for i, in := range s.Inputs {
		sc := 1.0
		if v, ok := scales[i]; ok {
			sc = v
		}
		if sc == 0 {
			continue
		}
		p.Terms = append(p.Terms, Term{Vars: in.DistinctVars(), Scale: sc})
	}
	return p
}

// Psi solves problem (3) for a given X, returning ψ(X) = max Π x_t and the
// maximizing iteration-range sizes. Returns +Inf if some variable is
// unconstrained (no term references it), in which case |V_max| is unbounded
// and the statement contributes no dominator-based bound.
//
// By KKT complementarity the optimum has some subset of variables clamped
// at the bound x_t = 1 and the free variables balancing their marginal
// contributions (Σ_{j∋t} term_j equal across free t) on the active
// constraint. Depth is small for DAAP kernels (≤3 in every paper example),
// so all clamp patterns are enumerated and the free variables are solved by
// a scale-and-balance iteration; the best feasible product wins.
func (p Problem) Psi(x float64) (float64, []float64) {
	covered := make([]bool, p.Depth)
	for _, term := range p.Terms {
		for _, v := range term.Vars {
			covered[v] = true
		}
	}
	for t := 0; t < p.Depth; t++ {
		if !covered[t] {
			return math.Inf(1), nil
		}
	}
	if p.Depth > 16 {
		panic("xpart: depth too large for clamp-pattern enumeration")
	}
	bestPsi, bestXs := 0.0, []float64(nil)
	for pattern := 0; pattern < 1<<p.Depth; pattern++ {
		xs, ok := p.solvePattern(x, pattern)
		if !ok {
			continue
		}
		psi := 1.0
		for _, v := range xs {
			psi *= v
		}
		if psi > bestPsi {
			bestPsi, bestXs = psi, xs
		}
	}
	return bestPsi, bestXs
}

// constraint evaluates Σ_j scale_j · Π_{k∈j} xs_k.
func (p Problem) constraint(xs []float64) float64 {
	total := 0.0
	for _, term := range p.Terms {
		v := term.Scale
		for _, k := range term.Vars {
			v *= xs[k]
		}
		total += v
	}
	return total
}

// solvePattern solves for the free variables (bit t of pattern clear) with
// the clamped ones at 1. Returns the point and whether it is feasible.
func (p Problem) solvePattern(x float64, pattern int) ([]float64, bool) {
	xs := make([]float64, p.Depth)
	free := make([]int, 0, p.Depth)
	for t := 0; t < p.Depth; t++ {
		xs[t] = 1
		if pattern&(1<<t) == 0 {
			free = append(free, t)
		}
	}
	if p.constraint(xs) > x*(1+1e-12) {
		return nil, false // even the all-ones point violates the budget
	}
	if len(free) == 0 {
		return xs, true
	}
	// scaleToBoundary multiplies the free variables by a common s >= 1 so
	// the constraint is active (monotone in s: bisection).
	scaleToBoundary := func() {
		lo, hi := 1.0, 2.0
		grow := func(s float64) float64 {
			tmp := append([]float64(nil), xs...)
			for _, t := range free {
				tmp[t] = math.Max(1, xs[t]*s)
			}
			return p.constraint(tmp)
		}
		for grow(hi) < x && hi < 1e30 {
			hi *= 2
		}
		for i := 0; i < 200 && hi-lo > 1e-14*hi; i++ {
			mid := (lo + hi) / 2
			if grow(mid) < x {
				lo = mid
			} else {
				hi = mid
			}
		}
		s := (lo + hi) / 2
		for _, t := range free {
			xs[t] = math.Max(1, xs[t]*s)
		}
	}
	marginal := func(t int) float64 {
		total := 0.0
		for _, term := range p.Terms {
			uses := false
			for _, k := range term.Vars {
				if k == t {
					uses = true
					break
				}
			}
			if !uses {
				continue
			}
			v := term.Scale
			for _, k := range term.Vars {
				v *= xs[k]
			}
			total += v
		}
		return total
	}
	scaleToBoundary()
	for iter := 0; iter < 400; iter++ {
		// Balance marginals geometrically, then restore the boundary.
		logMean := 0.0
		ms := make([]float64, len(free))
		for i, t := range free {
			ms[i] = marginal(t)
			logMean += math.Log(ms[i])
		}
		logMean /= float64(len(free))
		maxDev := 0.0
		for i, t := range free {
			adj := math.Exp(0.5 * (logMean - math.Log(ms[i])))
			xs[t] = math.Max(1, xs[t]*adj)
			if d := math.Abs(adj - 1); d > maxDev {
				maxDev = d
			}
		}
		scaleToBoundary()
		if maxDev < 1e-13 {
			break
		}
	}
	return xs, p.constraint(xs) <= x*(1+1e-9)
}

// Rho returns the computational intensity ψ(X)/(X−M) at a given X (> M).
func (p Problem) Rho(x, m float64) float64 {
	psi, _ := p.Psi(x)
	return psi / (x - m)
}

// Bound carries the result of the Lemma 2 optimization.
type Bound struct {
	X0  float64   // argmin of ρ
	Rho float64   // effective computational intensity (after Lemma 6 cap)
	Q   float64   // the I/O lower bound |V|/ρ
	Xs  []float64 // maximizing iteration ranges at X0
}

// SequentialBound minimizes ρ(X) over X > M (Lemma 2 / Equations 4–5) by a
// coarse log-space scan followed by golden-section refinement, then applies
// the Lemma 6 cap and returns Q ≥ |V|/ρ.
func (p Problem) SequentialBound(m float64) Bound {
	lo, hi := m*1.000001+1e-9, math.Max(1e4*m, 1e6)
	bestX, bestR := hi, math.Inf(1)
	const scan = 400
	for i := 0; i <= scan; i++ {
		x := lo * math.Pow(hi/lo, float64(i)/scan)
		if r := p.Rho(x, m); r < bestR {
			bestX, bestR = x, r
		}
	}
	// Golden-section refinement around the scan minimum (log space).
	gl := math.Max(lo, bestX/3)
	gh := math.Min(hi, bestX*3)
	phi := (math.Sqrt(5) - 1) / 2
	a, b := math.Log(gl), math.Log(gh)
	c, d := b-phi*(b-a), a+phi*(b-a)
	fc, fd := p.Rho(math.Exp(c), m), p.Rho(math.Exp(d), m)
	for i := 0; i < 120 && b-a > 1e-12; i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - phi*(b-a)
			fc = p.Rho(math.Exp(c), m)
		} else {
			a, c, fc = c, d, fd
			d = a + phi*(b-a)
			fd = p.Rho(math.Exp(d), m)
		}
	}
	x0 := math.Exp((a + b) / 2)
	rho := p.Rho(x0, m)
	if rho > bestR {
		x0, rho = bestX, bestR
	}
	if p.RhoCap > 0 && rho > p.RhoCap {
		rho = p.RhoCap
	}
	_, xs := p.Psi(x0)
	return Bound{X0: x0, Rho: rho, Q: p.NumVertices / rho, Xs: xs}
}

// ParallelBound applies Lemma 9: with P processors, at least one computes
// |V|/P vertices, so Q_P ≥ |V|/(P·ρ).
func (p Problem) ParallelBound(m float64, procs int) float64 {
	return p.SequentialBound(m).Q / float64(procs)
}

// AccessSizeAtOptimum returns |A_j(R_max)| at the optimum of ψ(X0) for the
// term with the given index — the per-subcomputation access size used by the
// reuse bound (Eq. 6).
func (p Problem) AccessSizeAtOptimum(m float64, termIdx int) float64 {
	b := p.SequentialBound(m)
	if b.Xs == nil {
		return math.Inf(1)
	}
	v := p.Terms[termIdx].Scale
	for _, k := range p.Terms[termIdx].Vars {
		v *= b.Xs[k]
	}
	return v
}

// ReuseBound implements Lemma 7 / Eq. (6) for an array shared by two
// statements: Reuse(A) = min over the statements of
// |A(R_max(X0))| · |V| / |V_max(X0)|.
func ReuseBound(s, t Problem, m float64, sTerm, tTerm int) float64 {
	r := func(p Problem, idx int) float64 {
		b := p.SequentialBound(m)
		psi, _ := p.Psi(b.X0)
		if math.IsInf(psi, 1) {
			return math.Inf(1)
		}
		return p.AccessSizeAtOptimum(m, idx) * p.NumVertices / psi
	}
	return math.Min(r(s, sTerm), r(t, tTerm))
}
