package cholesky

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/grid"
	"repro/internal/mat"
	"repro/internal/smpi"
	"repro/internal/testutil"
	"repro/internal/trace"
	"repro/internal/xpart"
)

const testTimeout = 60 * time.Second

// spd and residual are the shared testutil helpers (deduped there so the
// conformance and solve suites check the same definitions).
func spd(n int, seed uint64) *mat.Matrix { return testutil.SPD(n, seed) }

func residual(a, l *mat.Matrix) float64 { return testutil.ResidualCholesky(a, l) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestPotrfReference(t *testing.T) {
	a := spd(12, 3)
	l := a.Clone()
	if err := Potrf(l); err != nil {
		t.Fatal(err)
	}
	if r := residual(a, l); r > 1e-12 {
		t.Fatalf("residual %v", r)
	}
	// Upper triangle must be zeroed.
	for i := 0; i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			if l.At(i, j) != 0 {
				t.Fatalf("upper (%d,%d) = %v", i, j, l.At(i, j))
			}
		}
	}
}

func TestPotrfNotPD(t *testing.T) {
	a := mat.New(3, 3) // zero matrix
	if err := Potrf(a); err != ErrNotPD {
		t.Fatalf("err = %v", err)
	}
}

func TestTrsmRightLowerT(t *testing.T) {
	n := 6
	a := spd(n, 5)
	l := a.Clone()
	if err := Potrf(l); err != nil {
		t.Fatal(err)
	}
	// B = X·Lᵀ for known X; solve must recover X.
	x := mat.Random(4, n, 9)
	b := mat.New(4, n)
	for i := 0; i < 4; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k <= j; k++ {
				s += x.At(i, k) * l.At(j, k)
			}
			b.Set(i, j, s)
		}
	}
	TrsmRightLowerT(l, b)
	if d := mat.MaxAbsDiff(b, x); d > 1e-10 {
		t.Fatalf("trsm diff %v", d)
	}
}

func factorNumeric(t *testing.T, n, v int, g grid.Grid, seed uint64) (*mat.Matrix, *Result, *trace.Report) {
	t.Helper()
	a := spd(n, seed)
	var res *Result
	rep, err := smpi.RunTimeout(g.Total, true, testTimeout, func(c *smpi.Comm) error {
		var in *mat.Matrix
		if c.Rank() == 0 {
			in = a
		}
		r, err := Run(c, in, Options{N: n, V: v, Grid: g})
		if c.Rank() == 0 {
			res = r
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return a, res, rep
}

func TestNumericSingleRank(t *testing.T) {
	a, res, _ := factorNumeric(t, 16, 4, grid.Grid{Pr: 1, Pc: 1, Layers: 1, Total: 1}, 1)
	if r := residual(a, res.L); r > 1e-12 {
		t.Fatalf("residual %v", r)
	}
}

func TestNumericDistributed(t *testing.T) {
	cases := []struct {
		n, v, pr, cc int
	}{
		{16, 4, 2, 1},
		{32, 4, 2, 1},
		{32, 4, 2, 2},
		{48, 4, 2, 3},
		{64, 8, 2, 2},
		{40, 8, 2, 2}, // ragged tiles
		{48, 4, 3, 1}, // 3x3 layer
	}
	for _, tc := range cases {
		g := grid.Grid{Pr: tc.pr, Pc: tc.pr, Layers: tc.cc, Total: tc.pr * tc.pr * tc.cc}
		a, res, _ := factorNumeric(t, tc.n, tc.v, g, uint64(tc.n)*7+uint64(tc.cc))
		if r := residual(a, res.L); r > 1e-10 {
			t.Fatalf("%+v residual %v", tc, r)
		}
	}
}

func TestNonSquareLayerRejected(t *testing.T) {
	_, err := smpi.RunTimeout(6, false, testTimeout, func(c *smpi.Comm) error {
		_, err := Run(c, nil, Options{N: 16, V: 4, Grid: grid.Grid{Pr: 2, Pc: 3, Layers: 1, Total: 6}})
		return err
	})
	if err == nil {
		t.Fatal("expected square-layer panic")
	}
}

func TestNotPDReported(t *testing.T) {
	n := 16
	a := mat.New(n, n) // zero matrix, not PD
	_, err := smpi.RunTimeout(4, true, testTimeout, func(c *smpi.Comm) error {
		var in *mat.Matrix
		if c.Rank() == 0 {
			in = a
		}
		_, err := Run(c, in, Options{N: n, V: 4, Grid: grid.Grid{Pr: 2, Pc: 2, Layers: 1, Total: 4}})
		return err
	})
	if err == nil {
		t.Fatal("expected ErrNotPD")
	}
}

func TestVolumeModeAndBound(t *testing.T) {
	n, p := 128, 8
	g := grid.Grid{Pr: 2, Pc: 2, Layers: 2, Total: p}
	rep, err := smpi.RunTimeout(p, false, testTimeout, func(c *smpi.Comm) error {
		_, err := Run(c, nil, Options{N: n, V: 4, Grid: g})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	bytes := rep.AlgorithmBytes(trace.PhaseLayout, trace.PhaseCollect)
	if bytes <= 0 {
		t.Fatal("no traffic")
	}
	// Measured volume must sit above the derived lower bound.
	m := float64(n) * float64(n) * 2 / float64(p)
	lower := xpart.CholeskyLowerBound(n, m) / float64(p) * trace.BytesPerElement * float64(p)
	if float64(bytes) < lower {
		t.Fatalf("measured %d below lower bound %.0f", bytes, lower)
	}
}

func TestDefaultOptionsSquare(t *testing.T) {
	for _, p := range []int{1, 4, 8, 27, 64, 100} {
		opt := DefaultOptions(1024, p, 1024*1024)
		if opt.Grid.Pr != opt.Grid.Pc {
			t.Fatalf("p=%d: non-square %+v", p, opt.Grid)
		}
		if !opt.Grid.Valid() {
			t.Fatalf("p=%d: invalid %+v", p, opt.Grid)
		}
		if opt.V < opt.Grid.Layers {
			t.Fatalf("p=%d: v < c", p)
		}
	}
}

// Property: Potrf(L·Lᵀ) recovers L for random lower-triangular L with
// positive diagonal.
func TestQuickPotrfRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		g := mat.NewRNG(seed)
		n := 2 + g.Intn(10)
		l := mat.New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				l.Set(i, j, g.Float64()-0.5)
			}
			l.Set(i, i, 0.5+g.Float64())
		}
		a := mat.New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for k := 0; k <= min(i, j); k++ {
					s += l.At(i, k) * l.At(j, k)
				}
				a.Set(i, j, s)
			}
		}
		if err := Potrf(a); err != nil {
			return false
		}
		return mat.MaxAbsDiff(a, l) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
