package cholesky

import (
	"fmt"

	"repro/internal/costmodel"
	engreg "repro/internal/engine"
	"repro/internal/mat"
	"repro/internal/smpi"
)

// choleskyEngine adapts the 2.5D Cholesky extension to the engine registry.
// Cholesky produces a single lower factor L with in = L·Lᵀ and no pivot
// permutation, so Run returns a nil perm; the public API routes SPD inputs
// here through Session.FactorizeSPD.
type choleskyEngine struct{}

func (choleskyEngine) Name() costmodel.Algorithm { return costmodel.Cholesky }

func (choleskyEngine) Run(c *smpi.Comm, in *mat.Matrix, n int, cfg engreg.Config) (*mat.Matrix, []int, error) {
	res, err := Run(c, in, DefaultOptions(n, cfg.Ranks, cfg.MemoryFor(n)))
	if err != nil {
		return nil, nil, err
	}
	return res.L, nil, nil
}

func (choleskyEngine) GridDesc(n int, cfg engreg.Config) string {
	g := DefaultOptions(n, cfg.Ranks, cfg.MemoryFor(n)).Grid
	return fmt.Sprintf("%dx%dx%d", g.Pr, g.Pc, g.Layers)
}

func init() { engreg.Register(choleskyEngine{}) }
