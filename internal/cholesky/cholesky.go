// Package cholesky extends the COnfLUX schedule to Cholesky factorization —
// the kernel the paper's conclusion nominates next ("this promising result
// mandates the exploration of the parallel pebbling strategy to algorithms
// such as Cholesky factorization"). Cholesky needs no pivoting, so the
// X-Partitioning-guided schedule simplifies: per block step, the block
// column is reduced across the replication layers, the diagonal block is
// factored locally (POTRF) and broadcast, the panel is solved against L00ᵀ,
// and the symmetric trailing update is applied lazily into the step's
// assigned layer. Layer grids are SQUARE (Pr = Pc), so each consumer needs
// exactly two panel parts (its grid row's and its grid column's) — the
// classic symmetric-distribution trick.
//
// The leading per-rank volume is N³/(P√M)-class, against the lower bound
// ≈ N³/(3P√M) derived by internal/xpart for the Cholesky DAAP.
package cholesky

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/blas"
	"repro/internal/dist"
	"repro/internal/grid"
	"repro/internal/mat"
	"repro/internal/smpi"
)

// ErrNotPD is returned when a non-positive pivot appears.
var ErrNotPD = errors.New("cholesky: matrix is not positive definite")

// Options configures a distributed Cholesky run. Grid layers must be square
// (Pr == Pc).
type Options struct {
	Name string
	N    int
	V    int
	Grid grid.Grid
}

// DefaultOptions picks the best square-layer 2.5D grid for p ranks with
// per-rank memory mem (elements), and the blocking parameter v = 2c.
func DefaultOptions(n, p int, mem float64) Options {
	maxC := grid.MaxReplication(p, mem, n)
	best := grid.Grid{Pr: 1, Pc: 1, Layers: 1, Total: p}
	bestCost := math.Inf(1)
	for c := 1; c <= maxC; c++ {
		pr := int(math.Sqrt(float64(p / c)))
		for ; pr >= 1; pr-- {
			g := grid.Grid{Pr: pr, Pc: pr, Layers: c, Total: p}
			if !g.Valid() || float64(g.Used()) < 0.5*float64(p) {
				continue
			}
			nn := float64(n) * float64(n)
			cost := nn/float64(c*pr) + float64(c-1)*nn/float64(g.Used())
			if cost < bestCost || (cost == bestCost && g.Used() > best.Used()) {
				best, bestCost = g, cost
			}
			break // largest square for this c
		}
	}
	v := 2 * best.Layers
	if v < 4 {
		v = 4
	}
	if v > n {
		v = n
	}
	return Options{Name: "Cholesky25D", N: n, V: v, Grid: best}
}

// Result carries the factor: at world rank 0 (numeric mode), L is the lower
// Cholesky factor with A = L·Lᵀ.
type Result struct {
	L *mat.Matrix
}

// Potrf factors a symmetric positive definite matrix in place into its lower
// Cholesky factor (zeroing the strict upper triangle).
func Potrf(a *mat.Matrix) error {
	n := a.Rows
	if a.Cols != n {
		panic("cholesky: Potrf requires square input")
	}
	if a.Phantom() {
		return nil
	}
	for k := 0; k < n; k++ {
		d := a.At(k, k)
		for j := 0; j < k; j++ {
			d -= a.At(k, j) * a.At(k, j)
		}
		if d <= 0 {
			return ErrNotPD
		}
		d = math.Sqrt(d)
		a.Set(k, k, d)
		for i := k + 1; i < n; i++ {
			s := a.At(i, k)
			for j := 0; j < k; j++ {
				s -= a.At(i, j) * a.At(k, j)
			}
			a.Set(i, k, s/d)
		}
		for j := k + 1; j < n; j++ {
			a.Set(k, j, 0)
		}
	}
	return nil
}

// TrsmRightLowerT solves X·L00ᵀ = B in place: each row of B becomes the
// corresponding row of the panel factor L10.
func TrsmRightLowerT(l00 *mat.Matrix, b *mat.Matrix) {
	if l00.Rows != l00.Cols || l00.Rows != b.Cols {
		panic("cholesky: TrsmRightLowerT shape mismatch")
	}
	if l00.Phantom() || b.Phantom() {
		return
	}
	n := l00.Rows
	for i := 0; i < b.Rows; i++ {
		row := b.Row(i)
		for j := 0; j < n; j++ {
			s := row[j]
			for k := 0; k < j; k++ {
				s -= row[k] * l00.At(j, k)
			}
			row[j] = s / l00.At(j, j)
		}
	}
}

// Run executes the 2.5D Cholesky. a (symmetric positive definite) is
// consulted at world rank 0 only; nil selects volume mode.
func Run(c *smpi.Comm, a *mat.Matrix, opt Options) (*Result, error) {
	if opt.Name == "" {
		opt.Name = "Cholesky25D"
	}
	if opt.Grid.Pr != opt.Grid.Pc {
		panic("cholesky: layer grids must be square (Pr == Pc)")
	}
	if opt.V < opt.Grid.Layers {
		panic(fmt.Sprintf("cholesky: v=%d must be >= c=%d", opt.V, opt.Grid.Layers))
	}
	if c.Size() != opt.Grid.Total {
		panic(fmt.Sprintf("cholesky: world %d != grid total %d", c.Size(), opt.Grid.Total))
	}
	if c.WorldRank() >= opt.Grid.Used() {
		return &Result{}, nil
	}
	e := &engine{world: c, opt: opt}
	return e.run(a)
}

type panelPart struct {
	rows []int
	data *mat.Matrix
}

type engine struct {
	world *smpi.Comm
	opt   Options

	g               grid.Grid
	bc              grid.BlockCyclic
	row, col, layer int
	ac              *smpi.Comm
	fiber           *smpi.Comm
	store           *dist.Store

	l00   *mat.Matrix
	parts map[int]panelPart // received panel parts, keyed by grid row
}

func (e *engine) run(a *mat.Matrix) (*Result, error) {
	e.g = e.opt.Grid
	e.bc = grid.BlockCyclic{G: e.g, V: e.opt.V, N: e.opt.N}
	e.row, e.col, e.layer = e.g.Coords(e.world.Rank())
	e.ac = e.world.Sub("active", e.g.ActiveComm())
	e.fiber = e.ac.Sub(fmt.Sprintf("fiber.%d.%d", e.row, e.col), e.g.FiberComm(e.row, e.col))
	e.store = dist.NewStore(e.bc, e.row, e.col, e.layer, e.world.Payload())
	if e.layer == 0 {
		dist.Scatter(e.world, 0, a, e.g, e.store)
	}

	nt := e.bc.Tiles()
	for t := 0; t < nt; t++ {
		stack, rows, err := e.panelStep(t)
		if err != nil {
			return nil, err
		}
		e.distributePanel(t, stack, rows)
		e.update(t)
	}

	res := &Result{}
	if e.layer == 0 {
		if e.world.Rank() == 0 {
			l := mat.NewPhantom(e.opt.N, e.opt.N)
			if e.world.Payload() {
				l = mat.New(e.opt.N, e.opt.N)
			}
			dist.Gather(e.world, 0, l, e.g, e.store)
			if e.world.Payload() {
				for i := 0; i < l.Rows; i++ {
					for j := i + 1; j < l.Cols; j++ {
						l.Set(i, j, 0)
					}
				}
			}
			res.L = l
		} else {
			dist.Gather(e.world, 0, nil, e.g, e.store)
		}
	}
	return res, nil
}

// rowsInGridRow lists rows >= lo in grid row gr (tile-based iteration).
func (e *engine) rowsInGridRow(gr, lo int) []int {
	var out []int
	v := e.opt.V
	for ti := lo / v; ti*v < e.opt.N; ti++ {
		if ti%e.g.Pr != gr {
			continue
		}
		start, end := ti*v, (ti+1)*v
		if start < lo {
			start = lo
		}
		if end > e.opt.N {
			end = e.opt.N
		}
		for r := start; r < end; r++ {
			out = append(out, r)
		}
	}
	return out
}

// panelStep reduces block column t across layers, factors the diagonal
// block, broadcasts L00, and solves the sub-diagonal panel rows.
func (e *engine) panelStep(t int) (*mat.Matrix, []int, error) {
	e.ac.SetPhase(e.opt.Name + ".panel")
	_, w := e.bc.TileDims(t, t)
	var stack *mat.Matrix
	var rows []int
	if e.col == e.bc.OwnerCol(t) {
		rows = e.rowsInGridRow(e.row, t*e.opt.V)
		if len(rows) > 0 {
			stack = e.store.NewBuffer(len(rows), w)
			if e.store.Payload() {
				for i, r := range rows {
					ti := r / e.opt.V
					stack.View(i, 0, 1, w).CopyFrom(e.store.Tile(ti, t).View(r-ti*e.opt.V, 0, 1, w))
				}
			}
			e.fiber.ReduceMatSum(0, stack)
			if e.layer != 0 && e.store.Payload() {
				zero := mat.New(1, w)
				for _, r := range rows {
					ti := r / e.opt.V
					e.store.Tile(ti, t).View(r-ti*e.opt.V, 0, 1, w).CopyFrom(zero)
				}
			}
		}
	}
	diagOwner := e.g.Rank(e.bc.OwnerRow(t), e.bc.OwnerCol(t), 0)
	e.l00 = e.store.NewBuffer(w, w)
	if e.world.Rank() == diagOwner {
		if e.store.Payload() && stack != nil {
			found := false
			for i, r := range rows {
				if r == t*e.opt.V {
					e.l00.CopyFrom(stack.View(i, 0, w, w))
					found = true
					break
				}
			}
			if !found {
				return nil, nil, fmt.Errorf("cholesky: diagonal block missing at owner")
			}
		}
		if err := Potrf(e.l00); err != nil {
			return nil, nil, err
		}
	}
	e.ac.BcastMat(diagOwner, e.l00)

	// Solve and store the panel at layer-0 column owners.
	if e.layer == 0 && e.col == e.bc.OwnerCol(t) && stack != nil && e.store.Payload() {
		for i, r := range rows {
			ti := r / e.opt.V
			dst := e.store.Tile(ti, t).View(r-ti*e.opt.V, 0, 1, w)
			if r < t*e.opt.V+w {
				dst.CopyFrom(e.l00.View(r-t*e.opt.V, 0, 1, w))
				stack.View(i, 0, 1, w).CopyFrom(dst) // keep stack consistent
				continue
			}
			seg := stack.View(i, 0, 1, w)
			TrsmRightLowerT(e.l00, seg)
			dst.CopyFrom(seg)
		}
	}
	return stack, rows, nil
}

// distributePanel broadcasts each grid row's solved panel part to the
// assigned layer's consumers: the matching consumer ROW (for the L side) and
// the matching consumer COLUMN (for the Lᵀ side; grid column index == grid
// row index because layers are square).
func (e *engine) distributePanel(t int, stack *mat.Matrix, rows []int) {
	e.ac.SetPhase(e.opt.Name + ".panel-bcast")
	e.parts = map[int]panelPart{}
	_, w := e.bc.TileDims(t, t)
	lo := t*e.opt.V + w
	lstar := t % e.g.Layers
	ownerCol := e.bc.OwnerCol(t)
	for gr := 0; gr < e.g.Pr; gr++ {
		grRows := e.rowsInGridRow(gr, lo)
		owner := e.g.Rank(gr, ownerCol, 0)
		members := []int{owner}
		for y := 0; y < e.g.Pc; y++ {
			if r := e.g.Rank(gr, y, lstar); r != owner && !member(members, r) {
				members = append(members, r)
			}
		}
		for x := 0; x < e.g.Pr; x++ {
			if r := e.g.Rank(x, gr, lstar); r != owner && !member(members, r) {
				members = append(members, r)
			}
		}
		if !member(members, e.world.Rank()) {
			continue
		}
		comm := e.ac.Sub(fmt.Sprintf("chol.%d.%d", t, gr), members)
		buf := e.store.NewBuffer(len(grRows), w)
		if owner == e.world.Rank() && stack != nil && e.store.Payload() {
			idx := map[int]int{}
			for i, r := range rows {
				idx[r] = i
			}
			for i, r := range grRows {
				buf.View(i, 0, 1, w).CopyFrom(stack.View(idx[r], 0, 1, w))
			}
		}
		if len(grRows) > 0 {
			comm.BcastMat(0, buf)
		}
		if e.layer == lstar && (e.row == gr || e.col == gr) {
			e.parts[gr] = panelPart{rows: grRows, data: buf}
		}
	}
}

// update applies the FULL symmetric trailing update A[i,j] -= L10[i]·L10[j]
// into the assigned layer (both triangles are maintained, so later panel
// reductions read correct values without transposition traffic).
func (e *engine) update(t int) {
	e.ac.SetPhase(e.opt.Name + ".update")
	if e.layer != t%e.g.Layers {
		return
	}
	rowPart, okR := e.parts[e.row]
	colPart, okC := e.parts[e.col]
	if !okR || !okC || len(rowPart.rows) == 0 || len(colPart.rows) == 0 {
		return
	}
	w := rowPart.data.Cols
	rowIdx := make(map[int]int, len(rowPart.rows))
	for i, r := range rowPart.rows {
		rowIdx[r] = i
	}
	colIdx := make(map[int]int, len(colPart.rows))
	for i, r := range colPart.rows {
		colIdx[r] = i
	}
	for _, ti := range e.bc.LocalTileRows(e.row, t+1) {
		h, _ := e.bc.TileDims(ti, ti)
		tileL := e.store.NewBuffer(h, w)
		any := false
		for lr := 0; lr < h; lr++ {
			if i, ok := rowIdx[ti*e.opt.V+lr]; ok {
				any = true
				if e.store.Payload() {
					tileL.View(lr, 0, 1, w).CopyFrom(rowPart.data.View(i, 0, 1, w))
				}
			}
		}
		if !any {
			continue
		}
		for _, tj := range e.bc.LocalTileCols(e.col, t+1) {
			_, cw := e.bc.TileDims(tj, tj)
			colBlock := e.store.NewBuffer(cw, w)
			anyC := false
			for lc := 0; lc < cw; lc++ {
				if i, ok := colIdx[tj*e.opt.V+lc]; ok {
					anyC = true
					if e.store.Payload() {
						colBlock.View(lc, 0, 1, w).CopyFrom(colPart.data.View(i, 0, 1, w))
					}
				}
			}
			if !anyC {
				continue
			}
			gemmNT(-1, tileL, colBlock, e.store.Tile(ti, tj))
		}
	}
}

// gemmNT computes C += alpha·A·Bᵀ.
func gemmNT(alpha float64, a, b, c *mat.Matrix) {
	if a.Cols != b.Cols || a.Rows != c.Rows || b.Rows != c.Cols {
		panic("cholesky: gemmNT shape mismatch")
	}
	if a.Phantom() || b.Phantom() || c.Phantom() {
		return
	}
	for i := 0; i < c.Rows; i++ {
		ar, cr := a.Row(i), c.Row(i)
		for j := 0; j < c.Cols; j++ {
			cr[j] += alpha * blas.Dot(ar, b.Row(j))
		}
	}
}

func member(list []int, v int) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}
