package bench

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"

	"repro/internal/topo"
)

// TestTopoScenariosBuild: every sweep scenario resolves and builds — the
// cheap guard that keeps the panel in sync with the preset registry.
func TestTopoScenariosBuild(t *testing.T) {
	for _, sc := range TopoScenarios() {
		spec, err := topo.PresetSpec(sc.Preset)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		tp, err := topo.BuildFaulted(spec, Machine, 64, sc.Faults)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if sc.Name != "flat" && tp == nil {
			t.Fatalf("%s: built nil topology", sc.Name)
		}
	}
	if _, err := RunTopo(t.Context(), "galactic", io.Discard); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

// TestRunTopoSmall runs the full small-scale sweep and pins its headline
// claims: topology re-times schedules without touching their volume, the
// record is JSON-stable, and — the subsystem's reason to exist — the
// optimal (engine, replication depth) under the contended dragonfly
// differs from the flat machine's optimum. Skipped under -short: the
// sweep replays 35 worlds.
func TestRunTopoSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full topology sweep")
	}
	rep, err := RunTopo(t.Context(), "small", io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// 5 scenarios × (2 engines × 3 depths + LibSci at c=1).
	if len(rep.Rows) != 35 {
		t.Fatalf("%d rows, want 35", len(rep.Rows))
	}
	if rep.Kind != "topology" {
		t.Fatalf("kind %q, want topology", rep.Kind)
	}
	// Volume is a schedule property: for each (engine, c), every scenario
	// must report the same bytes as the flat baseline.
	type point struct {
		algo string
		c    int
	}
	flatBytes := map[point]int64{}
	for _, r := range rep.Rows {
		if r.Scenario == "flat" {
			flatBytes[point{string(r.Algo), r.C}] = r.Bytes
		}
	}
	for _, r := range rep.Rows {
		if want := flatBytes[point{string(r.Algo), r.C}]; r.Bytes != want {
			t.Fatalf("%s %s c=%d moved %d bytes, flat moved %d — topology must only re-time",
				r.Scenario, r.Algo, r.C, r.Bytes, want)
		}
	}
	// The acceptance point: at least one network model changes the plan.
	flat, ok := rep.Optima["flat"]
	if !ok {
		t.Fatal("no flat optimum recorded")
	}
	df, ok := rep.Optima["dragonfly-contended"]
	if !ok {
		t.Fatal("no dragonfly-contended optimum recorded")
	}
	if flat.Algo == df.Algo && flat.C == df.C {
		t.Fatalf("flat and dragonfly-contended agree on (%s, c=%d) — the sweep no longer demonstrates a plan shift",
			flat.Algo, flat.C)
	}
	// Faults only slow things down.
	if rep.Optima["hier+faults"].Makespan <= rep.Optima["hier"].Makespan {
		t.Fatal("faulted optimum is not slower than the clean hierarchy")
	}
	// The record round-trips through its JSON encoding.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back TopoReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != len(rep.Rows) || back.Optima["flat"] != flat {
		t.Fatal("JSON round trip lost rows or optima")
	}
}
