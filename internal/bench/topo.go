package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/costmodel"
	"repro/internal/engine"
	"repro/internal/smpi"
	"repro/internal/topo"
	"repro/internal/trace"
)

// topo.go is the topology experiment behind `confluxbench -exp topology`:
// how the optimal replication depth c (per-rank memory M = c·N²/P) and the
// winning engine move when the flat α-β machine is replaced by
// hierarchical, contended, and faulted network models. The flat rows
// reproduce the plain machine bit-for-bit (the tentpole's parity pin), so
// the sweep isolates exactly what the topology changes: the simulated
// clocks, never the communication volume. BENCH_topo.json freezes the
// small-scale record; cmd/benchdiff compares reruns exactly, since every
// number is deterministic.

// TopoScenario is one network model of the sweep: a named preset spec
// plus an optional fault plan.
type TopoScenario struct {
	// Name labels rows and the optima map ("hier+faults" for the faulted
	// scenario, else the preset name).
	Name   string
	Preset string
	Faults topo.FaultPlan
}

// TopoRow is one (scenario, engine, replication depth) measurement.
type TopoRow struct {
	Scenario string              `json:"scenario"`
	Algo     costmodel.Algorithm `json:"algo"`
	// C is the replication depth: per-rank memory M = C·N²/P. 1 is the 2D
	// working set, P^{1/3} the paper's maximum replication.
	C        int     `json:"c"`
	Mem      float64 `json:"mem"`
	Bytes    int64   `json:"bytes"`
	Makespan float64 `json:"makespan"`
	Grid     string  `json:"grid"`
}

// TopoOptimum is a scenario's best (engine, c) by simulated makespan.
type TopoOptimum struct {
	Algo     costmodel.Algorithm `json:"algo"`
	C        int                 `json:"c"`
	Makespan float64             `json:"makespan"`
}

// TopoReport is the machine-readable record of one sweep. Kind
// distinguishes it from the perf suite's records in cmd/benchdiff.
type TopoReport struct {
	Kind   string                 `json:"kind"`
	Scale  string                 `json:"scale"`
	N      int                    `json:"n"`
	P      int                    `json:"p"`
	Rows   []TopoRow              `json:"rows"`
	Optima map[string]TopoOptimum `json:"optima"`
}

// WriteJSON emits the record as indented JSON.
func (r *TopoReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// TopoScenarios is the sweep's scenario panel: the flat baseline, the
// hierarchy with and without contention, the contended dragonfly, and a
// degraded variant of the hierarchy (one node's ingress links at 1/8
// bandwidth plus a 4x straggler rank).
func TopoScenarios() []TopoScenario {
	return []TopoScenario{
		{Name: "flat", Preset: "flat"},
		{Name: "hier", Preset: "hier"},
		{Name: "hier-contended", Preset: "hier-contended"},
		{Name: "dragonfly-contended", Preset: "dragonfly-contended"},
		{Name: "hier+faults", Preset: "hier", Faults: topo.FaultPlan{
			Links:      []topo.LinkFault{{FromNode: -1, ToNode: 0, Factor: 8}},
			Stragglers: []topo.Straggler{{Rank: 0, Factor: 4}},
		}},
	}
}

// topoPoint is a scale preset's sweep point.
type topoPoint struct {
	n, p int
	cs   []int
}

// topoPoints: the replication depths sweep c ∈ [1, P^{1/3}] at one
// paper-relevant (N, P) per scale.
var topoPoints = map[string]topoPoint{
	"small":  {n: 512, p: 64, cs: []int{1, 2, 4}},
	"medium": {n: 1024, p: 64, cs: []int{1, 2, 4}},
	"paper":  {n: 16384, p: 1024, cs: []int{1, 2, 4, 8, 10}},
}

// topoEngines: the 2.5D engines sweep every c; LibSci is the 2D baseline,
// meaningful only at c=1 (its grid ignores the replication memory).
var topoEngines = []costmodel.Algorithm{costmodel.COnfLUX, costmodel.CANDMC, costmodel.LibSci}

// measureTopo replays one engine's volume schedule under a topology and
// returns its algorithm bytes and simulated makespan.
func measureTopo(ctx context.Context, algo costmodel.Algorithm, n, p int, mem float64, tp trace.Topology) (TopoRow, error) {
	row := TopoRow{Algo: algo, Mem: mem}
	eng, err := engine.Lookup(algo)
	if err != nil {
		return row, fmt.Errorf("bench: %w", err)
	}
	cfg := engine.Config{Ranks: p, Memory: mem, NB: LibSciNB}
	row.Grid = engine.GridDesc(eng, n, cfg)
	runCtx, cancel := context.WithTimeout(ctx, Timeout)
	defer cancel()
	rep, err := smpi.Exec(runCtx, smpi.Config{
		P:          p,
		Machine:    Machine,
		MachineSet: true,
		Executor:   Executor,
		Workers:    ExecWorkers,
		Topology:   tp,
	}, func(c *smpi.Comm) error {
		_, _, err := eng.Run(c, nil, n, cfg)
		return err
	})
	if err != nil {
		return row, fmt.Errorf("bench: topo %s N=%d P=%d: %w", algo, n, p, err)
	}
	row.Bytes = rep.AlgorithmBytes(trace.PhaseLayout, trace.PhaseCollect)
	row.Makespan = rep.Time.Makespan
	return row, nil
}

// RunTopo sweeps scenario × engine × replication depth at the scale's
// (N, P) point and records each scenario's optimal (engine, c). The flat
// scenario's optimum is the plain α-β answer; any scenario whose optimum
// names a different engine or depth is a network model under which the
// flat-machine plan is the wrong plan — the planner-facing payoff of the
// topology subsystem.
func RunTopo(ctx context.Context, scale string, progress io.Writer) (*TopoReport, error) {
	pt, ok := topoPoints[scale]
	if !ok {
		return nil, fmt.Errorf("bench: unknown topology scale %q", scale)
	}
	rep := &TopoReport{Kind: "topology", Scale: scale, N: pt.n, P: pt.p,
		Optima: make(map[string]TopoOptimum)}
	n2p := float64(pt.n) * float64(pt.n) / float64(pt.p)
	for _, sc := range TopoScenarios() {
		spec, err := topo.PresetSpec(sc.Preset)
		if err != nil {
			return nil, fmt.Errorf("bench: %w", err)
		}
		tp, err := topo.BuildFaulted(spec, Machine, pt.p, sc.Faults)
		if err != nil {
			return nil, fmt.Errorf("bench: %w", err)
		}
		for _, algo := range topoEngines {
			cs := pt.cs
			if algo == costmodel.LibSci {
				cs = cs[:1] // 2D baseline: replication memory is unused
			}
			for _, c := range cs {
				row, err := measureTopo(ctx, algo, pt.n, pt.p, float64(c)*n2p, tp)
				if err != nil {
					return nil, err
				}
				row.Scenario = sc.Name
				row.C = c
				rep.Rows = append(rep.Rows, row)
				fmt.Fprintf(progress, "  %-20s %-8s c=%-2d %12d bytes  %.6es\n",
					sc.Name, algo, c, row.Bytes, row.Makespan)
				best, seen := rep.Optima[sc.Name]
				if !seen || row.Makespan < best.Makespan {
					rep.Optima[sc.Name] = TopoOptimum{Algo: algo, C: c, Makespan: row.Makespan}
				}
			}
		}
	}
	return rep, nil
}
