package bench

import (
	"context"
	"fmt"
	"io"

	"repro/internal/conflux"
	"repro/internal/costmodel"
	"repro/internal/grid"
	"repro/internal/lu25d"
	"repro/internal/lu2d"
	"repro/internal/smpi"
	"repro/internal/trace"
)

// AblationResult captures an A/B comparison backing one of the paper's §7
// design arguments.
type AblationResult struct {
	Name   string
	A, B   string
	ABytes int64
	BBytes int64
	AMsgs  int64
	BMsgs  int64
	// ATime/BTime are simulated α-β seconds: the full-run makespan, except
	// in the pivoting ablation where they are the pivoting phase's own
	// critical path (the largest per-rank busy time in that phase) — the
	// §7.3 latency argument as actual modeled time rather than a raw
	// message count.
	ATime float64
	BTime float64
	Note  string
}

// Ratio returns BBytes/ABytes.
func (a AblationResult) Ratio() float64 { return float64(a.BBytes) / float64(a.ABytes) }

// TimeRatio returns BTime/ATime (0 when the A side recorded no timed
// traffic, rather than an infinite or NaN ratio).
func (a AblationResult) TimeRatio() float64 {
	if a.ATime == 0 {
		return 0
	}
	return a.BTime / a.ATime
}

// MaskingVsSwapping runs COnfLUX (row masking) and the CANDMC-style engine
// (physical row swapping) on an IDENTICAL grid and block size, isolating the
// §7.3 claim that swapping inflates the leading I/O term.
func MaskingVsSwapping(ctx context.Context, n, p int, mem float64) (AblationResult, error) {
	c := grid.MaxReplication(p, mem, n)
	for c > 1 && p%c != 0 {
		c--
	}
	layer := grid.Square2D(p / c)
	g := grid.Grid{Pr: layer.Pr, Pc: layer.Pc, Layers: c, Total: p}
	v := 2 * c
	if v < 4 {
		v = 4
	}
	repA, err := runVolume(ctx, p, func(cm *smpi.Comm) error {
		_, err := conflux.Run(cm, nil, conflux.Options{N: n, V: v, Grid: g})
		return err
	})
	if err != nil {
		return AblationResult{}, err
	}
	repB, err := runVolume(ctx, p, func(cm *smpi.Comm) error {
		_, err := lu25d.Run(cm, nil, lu25d.Options{N: n, V: v, Grid: g})
		return err
	})
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{
		Name:   "masking-vs-swapping",
		A:      "COnfLUX (row masking)",
		B:      "2.5D with physical row swapping (CANDMC-style)",
		ABytes: repA.AlgorithmBytes(trace.PhaseLayout, trace.PhaseCollect),
		BBytes: repB.AlgorithmBytes(trace.PhaseLayout, trace.PhaseCollect),
		AMsgs:  repA.TotalMsgs(),
		BMsgs:  repB.TotalMsgs(),
		ATime:  repA.Time.Makespan,
		BTime:  repB.Time.Makespan,
		Note:   fmt.Sprintf("same %dx%dx%d grid, v=%d; paper §7.3: swapping adds ~1x leading term", g.Pr, g.Pc, g.Layers, v),
	}, nil
}

// TournamentVsPartialPivoting compares the pivoting phases of COnfLUX's
// tournament pivoting and the 2D engine's per-column partial pivoting —
// O(N/v · log P) vs O(N · log P) rounds (§7.3) — both as message counts and
// as simulated α-β time on the critical rank, turning the paper's latency
// argument into modeled seconds.
func TournamentVsPartialPivoting(ctx context.Context, n, p int, mem float64) (AblationResult, error) {
	optC := conflux.DefaultOptions(n, p, mem)
	repA, err := runVolume(ctx, p, func(cm *smpi.Comm) error {
		_, err := conflux.Run(cm, nil, optC)
		return err
	})
	if err != nil {
		return AblationResult{}, err
	}
	repB, err := runVolume(ctx, p, func(cm *smpi.Comm) error {
		_, err := lu2d.Run(cm, nil, lu2d.LibSciOptions(n, p, LibSciNB))
		return err
	})
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{
		Name:   "tournament-vs-partial-pivoting",
		A:      "COnfLUX tournament pivoting",
		B:      "2D partial pivoting (per-column maxloc)",
		ABytes: repA.ByPhase["COnfLUX.pivot"],
		BBytes: repB.ByPhase["LibSci.panel"],
		AMsgs:  repA.PhaseMsgs["COnfLUX.pivot"],
		BMsgs:  repB.PhaseMsgs["LibSci.panel"],
		ATime:  repA.Time.PhaseBusyMax["COnfLUX.pivot"],
		BTime:  repB.Time.PhaseBusyMax["LibSci.panel"],
		Note:   "pivoting phases only; §7.3: tournament needs O(N/v) rounds vs O(N) for partial pivoting",
	}, nil
}

// GridOptimizationOnOff measures COnfLUX with and without the Processor
// Grid Optimization for an awkward (non-factorable) rank count — the
// Fig. 6a inset effect.
func GridOptimizationOnOff(ctx context.Context, n, p int, mem float64) (AblationResult, error) {
	optOn := conflux.DefaultOptions(n, p, mem)
	repA, err := runVolume(ctx, p, func(cm *smpi.Comm) error {
		_, err := conflux.Run(cm, nil, optOn)
		return err
	})
	if err != nil {
		return AblationResult{}, err
	}
	// "Off": greedily use ALL ranks in the squarest single-layer grid, as
	// the 2D libraries do.
	g := grid.Square2D(p)
	v := optOn.V
	repB, err := runVolume(ctx, p, func(cm *smpi.Comm) error {
		_, err := conflux.Run(cm, nil, conflux.Options{N: n, V: v, Grid: g})
		return err
	})
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{
		Name:   "grid-optimization",
		A:      fmt.Sprintf("optimized grid %s", describe(optOn.Grid)),
		B:      fmt.Sprintf("greedy all-ranks grid %dx%dx1", g.Pr, g.Pc),
		ABytes: repA.AlgorithmBytes(trace.PhaseLayout, trace.PhaseCollect),
		BBytes: repB.AlgorithmBytes(trace.PhaseLayout, trace.PhaseCollect),
		AMsgs:  repA.TotalMsgs(),
		BMsgs:  repB.TotalMsgs(),
		ATime:  repA.Time.Makespan,
		BTime:  repB.Time.Makespan,
		Note:   "paper §8: greedy grids cause the Fig. 6a outliers for difficult rank counts",
	}, nil
}

// BlockSizeSweep measures COnfLUX volume across blocking parameters v —
// the §7.2 tunable ("adjusted to hardware parameters").
func BlockSizeSweep(ctx context.Context, n, p int, mem float64, vs []int) ([]Measurement, error) {
	base := conflux.DefaultOptions(n, p, mem)
	var out []Measurement
	for _, v := range vs {
		if v < base.Grid.Layers || v > n {
			continue
		}
		opt := base
		opt.V = v
		rep, err := runVolume(ctx, p, func(cm *smpi.Comm) error {
			_, err := conflux.Run(cm, nil, opt)
			return err
		})
		if err != nil {
			return nil, err
		}
		out = append(out, Measurement{
			Algo: costmodel.COnfLUX, N: n, P: p, M: mem,
			MeasuredBytes: rep.AlgorithmBytes(trace.PhaseLayout, trace.PhaseCollect),
			Msgs:          rep.TotalMsgs(),
			MaxRankMsgs:   rep.Time.MaxRankMsgs(),
			SimTime:       rep.Time.Makespan,
			GridDesc:      fmt.Sprintf("v=%d %s", v, describe(opt.Grid)),
		})
	}
	return out, nil
}

func describe(g grid.Grid) string {
	return fmt.Sprintf("%dx%dx%d", g.Pr, g.Pc, g.Layers)
}

// RenderAblation writes one comparison.
func RenderAblation(w io.Writer, a AblationResult) {
	fmt.Fprintf(w, "Ablation: %s\n", a.Name)
	fmt.Fprintf(w, "  A: %-50s %12d bytes %10d msgs %12.6f s\n", a.A, a.ABytes, a.AMsgs, a.ATime)
	fmt.Fprintf(w, "  B: %-50s %12d bytes %10d msgs %12.6f s\n", a.B, a.BBytes, a.BMsgs, a.BTime)
	fmt.Fprintf(w, "  B/A volume ratio: %.2fx  time ratio: %.2fx   (%s)\n", a.Ratio(), a.TimeRatio(), a.Note)
}
