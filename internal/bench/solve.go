package bench

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"

	"repro/internal/smpi"
	"repro/internal/trisolve"
)

// SolveMeasurement is one (N, P, NRHS) solve-phase volume-mode data point:
// the distributed forward/back substitution replayed on the simulated
// machine, metered and timed exactly like the factorization experiments.
type SolveMeasurement struct {
	N, P, NRHS  int
	FwdBytes    int64 // solve.fwd phase traffic
	BackBytes   int64 // solve.back phase traffic
	Msgs        int64
	MaxRankMsgs int64   // timed-phase latency critical path
	SimTime     float64 // simulated α-β makespan, seconds
	GridDesc    string
}

// SolveBytes is the total solve-phase traffic (fwd + back).
func (m SolveMeasurement) SolveBytes() int64 { return m.FwdBytes + m.BackBytes }

// MeasureSolve replays the distributed triangular solve at (n, p) with nrhs
// right-hand sides in volume mode and returns the measurement.
func MeasureSolve(ctx context.Context, n, p, nrhs int) (SolveMeasurement, error) {
	opt := trisolve.DefaultOptions(n, p, nrhs)
	out := SolveMeasurement{
		N: n, P: p, NRHS: opt.NRHS,
		GridDesc: fmt.Sprintf("%dx%d", opt.Grid.Pr, opt.Grid.Pc),
	}
	rep, err := runVolume(ctx, p, func(c *smpi.Comm) error {
		_, err := trisolve.Run(c, nil, nil, opt)
		return err
	})
	if err != nil {
		return out, fmt.Errorf("bench: solve N=%d P=%d NRHS=%d: %w", n, p, nrhs, err)
	}
	out.FwdBytes = rep.ByPhase[trisolve.PhaseFwd]
	out.BackBytes = rep.ByPhase[trisolve.PhaseBack]
	out.Msgs = rep.TotalMsgs()
	out.MaxRankMsgs = rep.Time.MaxRankMsgs()
	out.SimTime = rep.Time.Makespan
	return out, nil
}

// SolveResult is the solve-phase scaling experiment: solve volume and
// simulated time vs P at fixed N, for a batch of right-hand sides. The
// interesting shape is the contrast with factorization: volume grows only
// as (Pr+Pc)·N·NRHS while the 2·nt collective steps keep the makespan
// latency-bound, so batching RHS is nearly free in simulated time.
type SolveResult struct {
	N, NRHS int
	Points  []SolveMeasurement
}

// RunSolve sweeps rank counts at fixed n with nrhs right-hand sides; the
// points run concurrently through the parallel runner in ps order.
func RunSolve(ctx context.Context, n int, ps []int, nrhs int) (*SolveResult, error) {
	res := &SolveResult{N: n, NRHS: nrhs, Points: make([]SolveMeasurement, len(ps))}
	err := ForEach(ctx, len(ps), func(ctx context.Context, i int) error {
		m, err := MeasureSolve(ctx, n, ps[i], nrhs)
		if err != nil {
			return err
		}
		res.Points[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints one row per P: solve-phase traffic split, message counts,
// and the simulated makespan.
func (s *SolveResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Distributed solve scaling: N=%d, NRHS=%d, volume [MB] and simulated α-β time [s]\n", s.N, s.NRHS)
	fmt.Fprintf(w, "%6s %-8s %12s %12s %10s %14s %14s\n",
		"P", "grid", "fwd[MB]", "back[MB]", "msgs", "max-rank-msgs", "sim-time[s]")
	for _, m := range s.Points {
		fmt.Fprintf(w, "%6d %-8s %12.3f %12.3f %10d %14d %14.6f\n",
			m.P, m.GridDesc, float64(m.FwdBytes)/1e6, float64(m.BackBytes)/1e6,
			m.Msgs, m.MaxRankMsgs, m.SimTime)
	}
}

// WriteCSV emits solve rows: n,p,nrhs,fwd_bytes,back_bytes,msgs,
// max_rank_msgs,sim_time_s,grid.
func (s *SolveResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"n", "p", "nrhs", "fwd_bytes", "back_bytes", "msgs", "max_rank_msgs", "sim_time_s", "grid"}); err != nil {
		return err
	}
	for _, m := range s.Points {
		if err := cw.Write([]string{
			itoa(m.N), itoa(m.P), itoa(m.NRHS),
			fmt.Sprintf("%d", m.FwdBytes),
			fmt.Sprintf("%d", m.BackBytes),
			fmt.Sprintf("%d", m.Msgs),
			fmt.Sprintf("%d", m.MaxRankMsgs),
			fmt.Sprintf("%.9f", m.SimTime),
			m.GridDesc,
		}); err != nil {
			return err
		}
	}
	return nil
}
