package bench

import (
	"strings"
	"testing"
)

// TestSchedCasesScales pins the preset structure benchdiff depends on:
// small ⊂ medium ⊂ paper (so records at different scales share comparable
// rows), width-1 rows keep the historical "sched/events/" name, and the
// standalone "beyond" preset is exactly the N=65,536 frontier with warm-up
// skipped (its rows are hour-scale).
func TestSchedCasesScales(t *testing.T) {
	names := func(cs []PerfCase) []string {
		out := make([]string, len(cs))
		for i, c := range cs {
			out[i] = c.Name
		}
		return out
	}
	small, err := SchedCases("small")
	if err != nil {
		t.Fatalf("small: %v", err)
	}
	medium, err := SchedCases("medium")
	if err != nil {
		t.Fatalf("medium: %v", err)
	}
	paper, err := SchedCases("paper")
	if err != nil {
		t.Fatalf("paper: %v", err)
	}
	for i, n := range names(small) {
		if names(medium)[i] != n || names(paper)[i] != n {
			t.Errorf("presets do not nest at row %d: small=%q medium=%q paper=%q",
				i, n, names(medium)[i], names(paper)[i])
		}
	}
	if len(medium) <= len(small) || len(paper) <= len(medium) {
		t.Errorf("preset sizes not strictly growing: %d, %d, %d",
			len(small), len(medium), len(paper))
	}
	var w1, wide int
	for _, n := range names(paper) {
		switch {
		case strings.HasPrefix(n, "sched/events/"):
			w1++
		case strings.HasPrefix(n, "sched/events-w"):
			wide++
		}
	}
	if w1 == 0 || wide == 0 {
		t.Errorf("paper preset missing executor-width rows: %d width-1, %d wider (%v)",
			w1, wide, names(paper))
	}

	beyond, err := SchedCases("beyond")
	if err != nil {
		t.Fatalf("beyond: %v", err)
	}
	if len(beyond) != 2 {
		t.Fatalf("beyond preset has %d rows, want 2: %v", len(beyond), names(beyond))
	}
	for _, c := range beyond {
		if !strings.Contains(c.Name, "N=65536,P=16384") {
			t.Errorf("beyond row %q is not the N=65,536 / P=16,384 frontier", c.Name)
		}
		if !c.NoWarm {
			t.Errorf("beyond row %q should skip warm-up", c.Name)
		}
	}

	if _, err := SchedCases("nope"); err == nil {
		t.Error("unknown scale accepted")
	}
}
