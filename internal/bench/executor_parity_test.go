package bench

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/cholesky"
	"repro/internal/conflux"
	"repro/internal/costmodel"
	"repro/internal/lu25d"
	"repro/internal/lu2d"
	"repro/internal/smpi"
	"repro/internal/trace"
)

// allEngines is the full engine set of the executor-parity acceptance
// criterion: the four Table 2 LU codes plus the Cholesky extension kernel.
var allEngines = append(append([]costmodel.Algorithm(nil), costmodel.Algorithms...), costmodel.Cholesky)

// parityWorkerCounts is the concurrent-window sweep of the acceptance
// criterion: widths {1, 2, 4} plus the host's NumCPU when distinct.
func parityWorkerCounts() []int {
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

// runEngineExecutor replays one engine's volume-mode schedule under an
// explicitly selected executor and window width and returns the trace
// report.
func runEngineExecutor(t *testing.T, algo costmodel.Algorithm, n, p int, mem float64, ex smpi.Executor, workers int) *trace.Report {
	t.Helper()
	rep, err := smpi.Exec(context.Background(), smpi.Config{P: p, Payload: false, Executor: ex, Workers: workers}, func(c *smpi.Comm) error {
		var err error
		switch algo {
		case costmodel.LibSci:
			_, err = lu2d.Run(c, nil, lu2d.LibSciOptions(n, p, LibSciNB))
		case costmodel.SLATE:
			_, err = lu2d.Run(c, nil, lu2d.SLATEOptions(n, p))
		case costmodel.CANDMC:
			_, err = lu25d.Run(c, nil, lu25d.CANDMCOptions(n, p, mem))
		case costmodel.COnfLUX:
			_, err = conflux.Run(c, nil, conflux.DefaultOptions(n, p, mem))
		case costmodel.Cholesky:
			_, err = cholesky.Run(c, nil, cholesky.DefaultOptions(n, p, mem))
		}
		return err
	})
	if err != nil {
		t.Fatalf("%s n=%d p=%d %s: %v", algo, n, p, ex, err)
	}
	if rep.Executor != string(ex) {
		t.Fatalf("%s: report stamped %q, want %q", algo, rep.Executor, ex)
	}
	return rep
}

// requireExecutorParity asserts the acceptance criterion between two runs:
// byte-identical volume (per rank and per phase) and bit-identical
// simulated time (per-rank clocks, so the makespan too).
func requireExecutorParity(t *testing.T, label string, g, e *trace.Report) {
	t.Helper()
	for r := 0; r < g.P; r++ {
		if g.Sent[r] != e.Sent[r] || g.Recv[r] != e.Recv[r] || g.Msgs[r] != e.Msgs[r] {
			t.Fatalf("%s rank %d: goroutines sent/recv/msgs %d/%d/%d vs events %d/%d/%d",
				label, r, g.Sent[r], g.Recv[r], g.Msgs[r], e.Sent[r], e.Recv[r], e.Msgs[r])
		}
	}
	if len(g.ByPhase) != len(e.ByPhase) {
		t.Fatalf("%s: phase sets differ: %v vs %v", label, g.ByPhase, e.ByPhase)
	}
	for ph, v := range g.ByPhase {
		if e.ByPhase[ph] != v {
			t.Fatalf("%s phase %q: %d vs %d bytes", label, ph, v, e.ByPhase[ph])
		}
	}
	for ph, v := range g.PhaseMsgs {
		if e.PhaseMsgs[ph] != v {
			t.Fatalf("%s phase %q: %d vs %d msgs", label, ph, v, e.PhaseMsgs[ph])
		}
	}
	if g.Time.Makespan != e.Time.Makespan {
		t.Fatalf("%s: makespan %v (goroutines) != %v (events)", label, g.Time.Makespan, e.Time.Makespan)
	}
	for r := range g.Time.Clock {
		if g.Time.Clock[r] != e.Time.Clock[r] ||
			g.Time.Busy[r] != e.Time.Busy[r] || g.Time.Wait[r] != e.Time.Wait[r] {
			t.Fatalf("%s rank %d: clock/busy/wait %v/%v/%v vs %v/%v/%v",
				label, r, g.Time.Clock[r], g.Time.Busy[r], g.Time.Wait[r],
				e.Time.Clock[r], e.Time.Busy[r], e.Time.Wait[r])
		}
	}
}

// TestExecutorParityAllEngines pins the tentpole acceptance criterion at
// engine level: for all five engines and awkward small world sizes
// (including non-power-of-two, non-square p), the goroutine executor and
// the event executor at every window width {1, 2, 4, NumCPU} produce
// byte-identical volume and bit-identical simulated time.
func TestExecutorParityAllEngines(t *testing.T) {
	const n = 64
	for _, algo := range allEngines {
		for _, p := range []int{3, 4, 5, 6} {
			mem := costmodel.MaxMemoryParams(n, p).M
			g := runEngineExecutor(t, algo, n, p, mem, smpi.ExecGoroutines, 0)
			for _, w := range parityWorkerCounts() {
				e := runEngineExecutor(t, algo, n, p, mem, smpi.ExecEvents, w)
				label := fmt.Sprintf("%s/p=%d/w=%d", algo, p, w)
				requireExecutorParity(t, label, g, e)
			}
		}
	}
}

// TestExecutorParityPaperScaleSpot is the paper-scale spot check of the
// same criterion: one COnfLUX replay at a Fig. 6-shaped geometry, compared
// across executors and against a wide concurrent window. Skipped under
// -short (the full tier-1 run covers it).
func TestExecutorParityPaperScaleSpot(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale spot check skipped with -short")
	}
	n, p := 2048, 64
	mem := costmodel.MaxMemoryParams(n, p).M
	g := runEngineExecutor(t, costmodel.COnfLUX, n, p, mem, smpi.ExecGoroutines, 0)
	e := runEngineExecutor(t, costmodel.COnfLUX, n, p, mem, smpi.ExecEvents, 1)
	requireExecutorParity(t, "COnfLUX/paper-spot", g, e)
	ew := runEngineExecutor(t, costmodel.COnfLUX, n, p, mem, smpi.ExecEvents, runtime.NumCPU())
	requireExecutorParity(t, "COnfLUX/paper-spot/wide", g, ew)
}
