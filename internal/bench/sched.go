package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/costmodel"
	"repro/internal/smpi"
)

// sched.go is the executor-comparison sweep behind `confluxbench -exp
// sched`: the same COnfLUX volume replay, wall-clocked under the goroutine
// executor and the discrete-event executor. The replay's outputs (bytes,
// simulated time) are executor-independent — the parity tests pin that —
// so the sweep measures exactly the host-side cost of the scheduling
// strategy: P live goroutine stacks and condvar handoffs versus one
// clock-ordered event loop. Its JSON record (BENCH_events.json, recorded
// at -scale paper) is compared by cmd/benchdiff in `make bench-json`; the
// paper preset includes the beyond-goroutines P=4096 point, which only the
// event executor replays without thrashing.

// schedCase wall-clocks one COnfLUX volume replay under a pinned executor
// and (for the event executor) concurrent-window width. Width 1 keeps the
// historical row name ("sched/events/...") so records across PR boundaries
// stay diffable; wider windows get a "-w<N>" suffix.
func schedCase(ex smpi.Executor, workers, n, p, iters int) PerfCase {
	label := string(ex)
	if workers > 1 {
		label = fmt.Sprintf("%s-w%d", ex, workers)
	}
	return PerfCase{
		Name:  fmt.Sprintf("sched/%s/N=%d,P=%d", label, n, p),
		Iters: iters,
		Run: func(ctx context.Context) error {
			savedEx, savedW := Executor, ExecWorkers
			Executor, ExecWorkers = ex, workers
			defer func() { Executor, ExecWorkers = savedEx, savedW }()
			_, err := Measure(ctx, costmodel.COnfLUX, n, p, costmodel.MaxMemoryParams(n, p).M)
			return err
		},
	}
}

// SchedCases returns the executor sweep for a scale preset. Presets nest
// (as in PerfCases), so records at different scales share comparable rows;
// "paper" adds the headline N=16,384 points: P=1,024 under both executors
// and the beyond-paper P=4,096 replay under the event executor only — the
// goroutine executor is omitted there by design (4,096 live stacks thrash
// the host scheduler; making that point tractable is the event loop's
// reason to exist). Every point also runs the event executor at window
// widths 2 and 4, so benchdiff catches multi-worker regressions on the
// same rows run over run.
func SchedCases(scale string) ([]PerfCase, error) {
	point := func(n, p, iters int, goroutines bool) []PerfCase {
		var cs []PerfCase
		if goroutines {
			cs = append(cs, schedCase(smpi.ExecGoroutines, 1, n, p, iters))
		}
		for _, w := range []int{1, 2, 4} {
			cs = append(cs, schedCase(smpi.ExecEvents, w, n, p, iters))
		}
		return cs
	}
	small := point(1024, 64, 3, true)
	medium := append(small[:len(small):len(small)], point(4096, 256, 1, true)...)
	paper := append(medium[:len(medium):len(medium)],
		append(point(16384, 1024, 1, true), point(16384, 4096, 1, false)...)...)
	switch scale {
	case "small":
		return small, nil
	case "medium":
		return medium, nil
	case "paper":
		return paper, nil
	case "beyond":
		// Deliberately NOT nested: each row here is hour-scale on a laptop,
		// so "beyond" is only the N=65,536 / P=16,384 frontier itself
		// (single- vs multi-worker event executor, one rep, no warm-up) —
		// rerun -scale paper separately for the comparable smaller rows.
		cs := []PerfCase{
			schedCase(smpi.ExecEvents, 1, 65536, 16384, 1),
			schedCase(smpi.ExecEvents, 4, 65536, 16384, 1),
		}
		for i := range cs {
			cs[i].NoWarm = true
		}
		return cs, nil
	}
	return nil, fmt.Errorf("bench: unknown sched scale %q", scale)
}

// RunSched runs the executor sweep for the given scale, streaming progress
// lines to progress (pass io.Discard to silence). The record's Scale is
// prefixed "sched-" so it cannot be confused with the perf suite's records.
func RunSched(ctx context.Context, scale string, progress io.Writer) (*PerfReport, error) {
	cases, err := SchedCases(scale)
	if err != nil {
		return nil, err
	}
	// Like RunPerf: a slow host must produce slow numbers, not canceled runs.
	saved := Timeout
	if Timeout < 2*time.Hour {
		Timeout = 2 * time.Hour
	}
	defer func() { Timeout = saved }()
	rep := &PerfReport{Scale: "sched-" + scale, GoMaxProcs: runtime.GOMAXPROCS(0)}
	for _, pc := range cases {
		m, err := RunPerfCase(ctx, pc)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(progress, "  %-44s %14s/op %12d allocs/op %14s/op\n",
			m.Name, time.Duration(m.NsPerOp), m.AllocsPerOp, byteCount(m.BytesPerOp))
		rep.Results = append(rep.Results, m)
	}
	return rep, nil
}
