package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/costmodel"
	"repro/internal/smpi"
)

// sched.go is the executor-comparison sweep behind `confluxbench -exp
// sched`: the same COnfLUX volume replay, wall-clocked under the goroutine
// executor and the discrete-event executor. The replay's outputs (bytes,
// simulated time) are executor-independent — the parity tests pin that —
// so the sweep measures exactly the host-side cost of the scheduling
// strategy: P live goroutine stacks and condvar handoffs versus one
// clock-ordered event loop. Its JSON record (BENCH_events.json, recorded
// at -scale paper) is compared by cmd/benchdiff in `make bench-json`; the
// paper preset includes the beyond-goroutines P=4096 point, which only the
// event executor replays without thrashing.

// schedCase wall-clocks one COnfLUX volume replay under a pinned executor.
func schedCase(ex smpi.Executor, n, p, iters int) PerfCase {
	return PerfCase{
		Name:  fmt.Sprintf("sched/%s/N=%d,P=%d", ex, n, p),
		Iters: iters,
		Run: func(ctx context.Context) error {
			saved := Executor
			Executor = ex
			defer func() { Executor = saved }()
			_, err := Measure(ctx, costmodel.COnfLUX, n, p, costmodel.MaxMemoryParams(n, p).M)
			return err
		},
	}
}

// SchedCases returns the executor sweep for a scale preset. Presets nest
// (as in PerfCases), so records at different scales share comparable rows;
// "paper" adds the headline N=16,384 points: P=1,024 under both executors
// and the beyond-paper P=4,096 replay under the event executor only — the
// goroutine executor is omitted there by design (4,096 live stacks thrash
// the host scheduler; making that point tractable is the event loop's
// reason to exist).
func SchedCases(scale string) ([]PerfCase, error) {
	both := func(n, p, iters int) []PerfCase {
		return []PerfCase{
			schedCase(smpi.ExecGoroutines, n, p, iters),
			schedCase(smpi.ExecEvents, n, p, iters),
		}
	}
	small := both(1024, 64, 3)
	medium := append(small[:len(small):len(small)], both(4096, 256, 1)...)
	paper := append(medium[:len(medium):len(medium)],
		append(both(16384, 1024, 1), schedCase(smpi.ExecEvents, 16384, 4096, 1))...)
	switch scale {
	case "small":
		return small, nil
	case "medium":
		return medium, nil
	case "paper":
		return paper, nil
	}
	return nil, fmt.Errorf("bench: unknown sched scale %q", scale)
}

// RunSched runs the executor sweep for the given scale, streaming progress
// lines to progress (pass io.Discard to silence). The record's Scale is
// prefixed "sched-" so it cannot be confused with the perf suite's records.
func RunSched(ctx context.Context, scale string, progress io.Writer) (*PerfReport, error) {
	cases, err := SchedCases(scale)
	if err != nil {
		return nil, err
	}
	// Like RunPerf: a slow host must produce slow numbers, not canceled runs.
	saved := Timeout
	if Timeout < 2*time.Hour {
		Timeout = 2 * time.Hour
	}
	defer func() { Timeout = saved }()
	rep := &PerfReport{Scale: "sched-" + scale, GoMaxProcs: runtime.GOMAXPROCS(0)}
	for _, pc := range cases {
		m, err := RunPerfCase(ctx, pc)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(progress, "  %-44s %14s/op %12d allocs/op %14s/op\n",
			m.Name, time.Duration(m.NsPerOp), m.AllocsPerOp, byteCount(m.BytesPerOp))
		rep.Results = append(rep.Results, m)
	}
	return rep, nil
}
