package bench

import (
	"strings"
	"testing"

	"repro/internal/costmodel"
)

// Test scale: small N keeps volume-mode runs fast; the paper-scale runs are
// driven by cmd/confluxbench and recorded in EXPERIMENTS.md.

func TestMeasureAllProducesAllAlgorithms(t *testing.T) {
	ms, err := MeasureAll(t.Context(), 128, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 {
		t.Fatalf("got %d measurements", len(ms))
	}
	seen := map[costmodel.Algorithm]bool{}
	for _, m := range ms {
		seen[m.Algo] = true
		if m.MeasuredBytes <= 0 {
			t.Fatalf("%s: no traffic measured", m.Algo)
		}
		if m.ModeledBytes <= 0 {
			t.Fatalf("%s: no model value", m.Algo)
		}
	}
	if len(seen) != 4 {
		t.Fatalf("algorithms missing: %v", seen)
	}
}

func TestCOnfLUXWinsAtScale(t *testing.T) {
	// The paper's core claim at a reproducible test scale: COnfLUX
	// communicates least among the four.
	ms, err := MeasureAll(t.Context(), 256, 16)
	if err != nil {
		t.Fatal(err)
	}
	var cfx, best int64 = 0, 1 << 62
	var bestAlgo costmodel.Algorithm
	for _, m := range ms {
		if m.Algo == costmodel.COnfLUX {
			cfx = m.MeasuredBytes
			continue
		}
		if m.MeasuredBytes < best {
			best, bestAlgo = m.MeasuredBytes, m.Algo
		}
	}
	if cfx >= best {
		t.Fatalf("COnfLUX %d >= second-best %s %d", cfx, bestAlgo, best)
	}
}

func TestTable2RenderShape(t *testing.T) {
	res, err := RunTable2(t.Context(), []int{128}, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	res.Render(&sb)
	out := sb.String()
	for _, want := range []string{"N=128, P=4", "COnfLUX", "CANDMC", "LibSci", "SLATE", "%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestFig6aStrongScalingShape(t *testing.T) {
	res, err := RunFig6a(t.Context(), 256, []int{4, 16})
	if err != nil {
		t.Fatal(err)
	}
	// Per-node volume decreases with P for every algorithm.
	per := map[costmodel.Algorithm]map[int]float64{}
	for _, m := range res.Points {
		if per[m.Algo] == nil {
			per[m.Algo] = map[int]float64{}
		}
		per[m.Algo][m.P] = m.PerNodeBytes()
	}
	for algo, series := range per {
		if series[16] >= series[4] {
			t.Fatalf("%s per-node volume grew: %v", algo, series)
		}
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "lower-bound") {
		t.Fatal("render missing lower bound column")
	}
}

func TestFig6bWeakScalingFlatnessFor25D(t *testing.T) {
	res, err := RunFig6b(t.Context(), 64, []int{1, 8, 64})
	if err != nil {
		t.Fatal(err)
	}
	per := map[costmodel.Algorithm][]float64{}
	for _, m := range res.Points {
		per[m.Algo] = append(per[m.Algo], m.PerNodeBytes())
	}
	// 2D growth from P=8 to P=64 must exceed COnfLUX growth (which stays
	// near-flat in the paper's Fig. 6b).
	grow := func(s []float64) float64 { return s[len(s)-1] / s[1] }
	if grow(per[costmodel.COnfLUX]) >= grow(per[costmodel.LibSci]) {
		t.Fatalf("COnfLUX weak-scaling growth %.2f vs LibSci %.2f — 2.5D should be flatter",
			grow(per[costmodel.COnfLUX]), grow(per[costmodel.LibSci]))
	}
}

func TestWeakScalingN(t *testing.T) {
	if n := WeakScalingN(3200, 1); n != 3200 {
		t.Fatalf("n=%d", n)
	}
	if n := WeakScalingN(3200, 8); n != 6400 {
		t.Fatalf("n=%d want 6400", n)
	}
	if WeakScalingN(100, 5)%16 != 0 {
		t.Fatal("not rounded to 16")
	}
}

func TestFig7MeasuredAndPredicted(t *testing.T) {
	res, err := RunFig7(t.Context(), []int{128}, []int{4, 1 << 14}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("cells %d", len(res.Cells))
	}
	if !res.Cells[0].Measured || res.Cells[1].Measured {
		t.Fatalf("measured flags wrong: %+v", res.Cells)
	}
	if res.Cells[1].Reduction <= 1 {
		t.Fatalf("predicted reduction %v must exceed 1", res.Cells[1].Reduction)
	}
}

func TestSummitPrediction(t *testing.T) {
	// Paper: a full-scale Summit run (27,648 GPUs, one rank per GPU) —
	// COnfLUX "expected to communicate 2.1 times less than SLATE".
	red, _ := SummitPrediction(16384, 27648)
	if red < 1.7 || red > 3.3 {
		t.Fatalf("Summit reduction %v, paper ≈2.1", red)
	}
}

func TestMaskingVsSwappingAblation(t *testing.T) {
	ab, err := MaskingVsSwapping(t.Context(), 192, 8, float64(192*192)/4)
	if err != nil {
		t.Fatal(err)
	}
	if ab.Ratio() <= 1.05 {
		t.Fatalf("swapping should cost more than masking, ratio %.2f", ab.Ratio())
	}
}

func TestGridOptimizationAblation(t *testing.T) {
	// P=7 (prime): greedy 2D grid degenerates to 1x7; optimization should
	// find something no worse.
	ab, err := GridOptimizationOnOff(t.Context(), 128, 7, float64(128*128))
	if err != nil {
		t.Fatal(err)
	}
	if ab.ABytes > ab.BBytes {
		t.Fatalf("optimized grid (%d bytes) worse than greedy (%d bytes)", ab.ABytes, ab.BBytes)
	}
}

func TestTournamentVsPartialPivotingLatency(t *testing.T) {
	ab, err := TournamentVsPartialPivoting(t.Context(), 256, 4, float64(256*256)/2)
	if err != nil {
		t.Fatal(err)
	}
	if ab.AMsgs <= 0 || ab.BMsgs <= 0 {
		t.Fatalf("missing message counts: %+v", ab)
	}
	// §7.3: tournament pivoting needs O(N/v) rounds vs O(N) per-column
	// reductions — far fewer pivoting-phase messages.
	if ab.AMsgs >= ab.BMsgs {
		t.Fatalf("tournament used %d pivot msgs vs partial pivoting %d", ab.AMsgs, ab.BMsgs)
	}
}

func TestBlockSizeSweep(t *testing.T) {
	ms, err := BlockSizeSweep(t.Context(), 128, 4, float64(128*128), []int{4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("points %d", len(ms))
	}
	for _, m := range ms {
		if m.MeasuredBytes <= 0 {
			t.Fatalf("empty measurement %+v", m)
		}
	}
}

func TestCrossoverReport(t *testing.T) {
	// Must land far beyond the paper's largest measured configuration
	// (P=1024); see costmodel tests for the paper-vs-model discussion.
	if p := CrossoverReport(16384); p < 10_000 {
		t.Fatalf("crossover %d too small", p)
	}
}

// TestMeasureRegistryEngines: any registered engine is measurable through
// the registry path — including Cholesky, which has no Table 2 model row
// (zero model columns, no panic).
func TestMeasureCholeskyViaRegistry(t *testing.T) {
	m, err := Measure(t.Context(), costmodel.Cholesky, 64, 4, costmodel.MaxMemoryParams(64, 4).M)
	if err != nil {
		t.Fatal(err)
	}
	if m.MeasuredBytes <= 0 {
		t.Fatal("no traffic measured")
	}
	if m.ModeledBytes != 0 || m.PredTime != 0 {
		t.Fatalf("Cholesky has no published model: %v/%v", m.ModeledBytes, m.PredTime)
	}
}

// TestMeasureUnknownAlgorithm: an unregistered name surfaces the registry
// error instead of a hard-coded switch default.
func TestMeasureUnknownAlgorithm(t *testing.T) {
	if _, err := Measure(t.Context(), "HPL", 64, 4, 1024); err == nil {
		t.Fatal("expected registry lookup error")
	}
}
