// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§8–§9) by running the four LU
// implementations in volume mode on the simulated machine, metering the
// aggregate bytes sent (the paper's Score-P methodology), and pairing the
// measurements with the Table 2 cost models. Engines are dispatched
// through the internal/engine registry — the same path the public API
// uses — and every entry point takes a context.Context, so a sweep is
// cancelable mid-run (cmd/confluxbench wires SIGINT to it). See DESIGN.md
// §3 for the experiment index and EXPERIMENTS.md for recorded results.
package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/conflux"
	"repro/internal/costmodel"
	"repro/internal/engine"
	"repro/internal/lu2d"
	"repro/internal/smpi"
	"repro/internal/trace"

	// The registry is this harness's only dispatch path to the engines.
	_ "repro/internal/engine/all"
)

// Measurement is one (algorithm, N, P) volume-mode data point.
type Measurement struct {
	Algo          costmodel.Algorithm
	N, P          int
	M             float64
	MeasuredBytes int64   // aggregate payload bytes, layout/collect excluded
	ModeledBytes  float64 // Table 2 model (paper's published models)
	FittedBytes   float64 // this implementation's fitted model (COnfLUX only)
	Msgs          int64
	// MaxRankMsgs is the latency-critical path: the largest number of
	// messages any rank injects in timed (algorithm) phases — the
	// layout/collect housekeeping is excluded, matching MeasuredBytes
	// and the simulated clocks.
	MaxRankMsgs int64
	SimTime     float64 // simulated α-β makespan of the run, seconds
	PredTime    float64 // α-β prediction from the Table 2 volume model
	GridDesc    string
}

// MeasuredGB returns the measured volume in GB (Table 2 units).
func (m Measurement) MeasuredGB() float64 { return float64(m.MeasuredBytes) / 1e9 }

// ModeledGB returns the modeled volume in GB.
func (m Measurement) ModeledGB() float64 { return m.ModeledBytes / 1e9 }

// PredictionPct returns modeled/measured ×100 — Table 2's "(prediction %)".
func (m Measurement) PredictionPct() float64 {
	if m.MeasuredBytes == 0 {
		return 0
	}
	return 100 * m.ModeledBytes / float64(m.MeasuredBytes)
}

// PerNodeBytes returns the measured per-rank volume (Fig. 6 y-axis).
func (m Measurement) PerNodeBytes() float64 {
	return float64(m.MeasuredBytes) / float64(m.P)
}

// Timeout bounds a single volume-mode run; paper-scale points take minutes.
var Timeout = 30 * time.Minute

// Machine is the α-β machine the harness simulates time against
// (cmd/confluxbench overrides it from -alpha/-beta).
var Machine = costmodel.DefaultMachine()

// Executor selects how replayed worlds schedule their ranks (goroutines,
// events, or the empty string for auto — events for these volume-mode
// replays). cmd/confluxbench wires -executor here; the sched experiment
// sweeps it. Results are executor-independent — this switches only the
// host-side wall-clock/allocation profile.
var Executor smpi.Executor

// ExecWorkers is the event executor's concurrent-window width for replayed
// worlds (cmd/confluxbench wires -workers here; the sched experiment sweeps
// it). 0 or 1 is the serial schedule. Like Executor, it changes only the
// host-side profile — reports are bit-identical at every width. Distinct
// from Workers in parallel.go, which fans independent worlds across cores;
// ExecWorkers parallelizes the ranks of a single world.
var ExecWorkers int

// LibSciNB is the "user-specified" ScaLAPACK block size used throughout the
// harness (Table 2 lists LibSci's block size as a user parameter). It
// aliases the engine's own default so harness measurements and public-API
// Session runs can never diverge on the block size.
const LibSciNB = lu2d.DefaultLibSciNB

// runVolume replays one volume-mode schedule on p ranks under ctx, bounded
// by the harness Timeout. Cancellation aborts the simulated world, so a
// paper-scale sweep stops promptly on SIGINT.
func runVolume(ctx context.Context, p int, fn smpi.RankFunc) (*trace.Report, error) {
	ctx, cancel := context.WithTimeout(ctx, Timeout)
	defer cancel()
	return smpi.Exec(ctx, smpi.Config{
		P:          p,
		Machine:    Machine,
		MachineSet: true,
		Executor:   Executor,
		Workers:    ExecWorkers,
	}, fn)
}

// Measure runs one algorithm at (n, p) with per-rank memory m (elements) in
// volume mode and returns the measurement. The engine is resolved through
// the registry, so any registered algorithm is measurable.
func Measure(ctx context.Context, algo costmodel.Algorithm, n, p int, mem float64) (Measurement, error) {
	out := Measurement{Algo: algo, N: n, P: p, M: mem}
	params := costmodel.Params{N: n, P: p, M: mem}
	// Table 2 models exist only for the paper's comparison set; other
	// registered engines (Cholesky) measure with zero model columns.
	published := false
	for _, a := range costmodel.Algorithms {
		if algo == a {
			published = true
			break
		}
	}
	if published {
		out.ModeledBytes = costmodel.TotalBytes(algo, params)
	}
	eng, err := engine.Lookup(algo)
	if err != nil {
		return out, fmt.Errorf("bench: %w", err)
	}
	cfg := engine.Config{Ranks: p, Memory: mem, NB: LibSciNB}
	out.GridDesc = engine.GridDesc(eng, n, cfg)
	if algo == costmodel.COnfLUX {
		out.FittedBytes = conflux.ModelPerRankElements(params) * float64(p) * trace.BytesPerElement
	}
	rep, err := runVolume(ctx, p, func(c *smpi.Comm) error {
		_, _, err := eng.Run(c, nil, n, cfg)
		return err
	})
	if err != nil {
		return out, fmt.Errorf("bench: %s N=%d P=%d: %w", algo, n, p, err)
	}
	out.MeasuredBytes = rep.AlgorithmBytes(trace.PhaseLayout, trace.PhaseCollect)
	out.Msgs = rep.TotalMsgs()
	out.MaxRankMsgs = rep.Time.MaxRankMsgs()
	out.SimTime = rep.Time.Makespan
	if published {
		out.PredTime = costmodel.PredictedTime(algo, params, Machine, float64(out.MaxRankMsgs))
	}
	return out, nil
}

// MeasureAll measures every algorithm at the paper's memory setting
// M = N²/P^{2/3} (maximum replication, Fig. 6 caption). The algorithms'
// worlds are independent, so they run concurrently through the parallel
// runner; the result order is always costmodel.Algorithms order.
func MeasureAll(ctx context.Context, n, p int) ([]Measurement, error) {
	params := costmodel.MaxMemoryParams(n, p)
	jobs := make([]measureJob, 0, len(costmodel.Algorithms))
	for _, algo := range costmodel.Algorithms {
		jobs = append(jobs, measureJob{algo: algo, n: n, p: p, mem: params.M})
	}
	return measureMany(ctx, jobs)
}
