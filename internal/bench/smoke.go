package bench

import (
	"context"
	"encoding/json"
	"io"
)

// SmokeResult is the machine-readable record the CI bench-smoke job emits
// (BENCH_smoke.json): one fixed small configuration, measured bytes and
// simulated α-β time per algorithm, so the performance trajectory of the
// harness is recorded run over run.
type SmokeResult struct {
	N       int                `json:"n"`
	P       int                `json:"p"`
	Alpha   float64            `json:"alpha"`
	Beta    float64            `json:"beta"`
	Results []SmokeMeasurement `json:"results"`
}

// SmokeMeasurement is one algorithm's row in the smoke record.
type SmokeMeasurement struct {
	Algo          string  `json:"algo"`
	N             int     `json:"n"`
	P             int     `json:"p"`
	MeasuredBytes int64   `json:"measured_bytes"`
	ModeledBytes  float64 `json:"model_bytes"`
	Msgs          int64   `json:"msgs"`
	MaxRankMsgs   int64   `json:"max_rank_msgs"`
	SimTimeS      float64 `json:"sim_time_s"`
	PredTimeS     float64 `json:"pred_time_s"`
	Grid          string  `json:"grid"`
}

// RunSmoke measures every algorithm at one small (n, p) point and packages
// the result for JSON emission.
func RunSmoke(ctx context.Context, n, p int) (*SmokeResult, error) {
	ms, err := MeasureAll(ctx, n, p)
	if err != nil {
		return nil, err
	}
	out := &SmokeResult{N: n, P: p, Alpha: Machine.Alpha, Beta: Machine.Beta}
	for _, m := range ms {
		out.Results = append(out.Results, SmokeMeasurement{
			Algo:          string(m.Algo),
			N:             m.N,
			P:             m.P,
			MeasuredBytes: m.MeasuredBytes,
			ModeledBytes:  m.ModeledBytes,
			Msgs:          m.Msgs,
			MaxRankMsgs:   m.MaxRankMsgs,
			SimTimeS:      m.SimTime,
			PredTimeS:     m.PredTime,
			Grid:          m.GridDesc,
		})
	}
	return out, nil
}

// WriteJSON emits the smoke record as indented JSON.
func (s *SmokeResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
