package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/blas"
	"repro/internal/lapack"
	"repro/internal/mat"
)

// kernels.go is the local-kernel micro-benchmark suite behind
// `confluxbench -exp kernels` and `make bench-json`: host throughput of
// the cache-blocked level-3 kernels (DESIGN.md §15) against the seed
// straight-loop GEMM, plus blocked TRSM and the blocked LU panel they
// feed. BENCH_kernels.json freezes the record; cmd/benchdiff compares
// reruns with the perf threshold and additionally hard-fails when the
// headline 512×512 GEMM speedup drops below MinGemmSpeedup512 — that
// ratio is the acceptance bar that let numeric factorization at paper
// scale join the conformance suite.

// MinGemmSpeedup512 is the floor on blocked-vs-reference single-thread
// GEMM throughput at 512×512.
const MinGemmSpeedup512 = 4.0

// KernelRow is one micro-benchmark measurement.
type KernelRow struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     int64   `json:"ns_per_op"`
	MFlops      float64 `json:"mflops"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
	BytesPerOp  uint64  `json:"bytes_per_op"`
}

// KernelReport is the machine-readable suite record. Kind distinguishes
// it in cmd/benchdiff; Speedup512 is the blocked/reference GEMM
// throughput ratio at 512×512 (the acceptance headline).
type KernelReport struct {
	Kind       string      `json:"kind"`
	ISA        string      `json:"isa"`
	GoMaxProcs int         `json:"gomaxprocs"`
	Speedup512 float64     `json:"speedup_512"`
	Rows       []KernelRow `json:"rows"`
}

// WriteJSON emits the record as indented JSON.
func (r *KernelReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// kernelCase is one suite entry: flops per iteration lets each row report
// throughput alongside wall clock.
type kernelCase struct {
	name  string
	iters int
	flops float64
	run   func()
}

func gemmCase(name string, n, iters int, f func(alpha float64, a, b *mat.Matrix, beta float64, c *mat.Matrix)) kernelCase {
	a := mat.Random(n, n, 1)
	b := mat.Random(n, n, 2)
	c := mat.New(n, n)
	return kernelCase{
		name:  name,
		iters: iters,
		flops: 2 * float64(n) * float64(n) * float64(n),
		run:   func() { f(1, a, b, 0, c) },
	}
}

func kernelCases() []kernelCase {
	cases := []kernelCase{
		gemmCase("gemm-ref/N=512", 512, 3, blas.GemmRef),
		gemmCase("gemm-blocked/N=256", 256, 20, blas.Gemm),
		gemmCase("gemm-blocked/N=512", 512, 10, blas.Gemm),
		gemmCase("gemm-blocked/N=1024", 1024, 3, blas.Gemm),
	}
	for _, w := range []int{2, 4} {
		w := w
		kc := gemmCase(fmt.Sprintf("gemm-blocked/N=512,workers=%d", w), 512, 10, blas.Gemm)
		inner := kc.run
		kc.run = func() {
			blas.SetKernelWorkers(w)
			defer blas.SetKernelWorkers(1)
			inner()
		}
		cases = append(cases, kc)
	}

	n := 512
	g := mat.NewRNG(3)
	l := mat.New(n, n)
	u := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			l.Set(i, j, (g.Float64()-0.5)/float64(n))
		}
		l.Set(i, i, 1)
		u.Set(i, i, 1+g.Float64())
		for j := i + 1; j < n; j++ {
			u.Set(i, j, (g.Float64()-0.5)/float64(n))
		}
	}
	rhs := mat.Random(n, n, 4)
	work := mat.New(n, n)
	trsmFlops := float64(n) * float64(n) * float64(n) // (n²/2 madds per rhs column)·(n columns)·2
	cases = append(cases,
		kernelCase{
			name:  "trsm-lower-left/N=512",
			iters: 5,
			flops: trsmFlops,
			run: func() {
				work.CopyFrom(rhs)
				blas.TrsmLowerLeft(l, work, true)
			},
		},
		kernelCase{
			name:  "trsm-upper-right/N=512",
			iters: 5,
			flops: trsmFlops,
			run: func() {
				work.CopyFrom(rhs)
				blas.TrsmUpperRight(u, work)
			},
		},
	)

	src := mat.Random(n, n, 5)
	for i := 0; i < n; i++ {
		src.Add(i, i, float64(n)) // diagonally dominant: no pivot pathologies
	}
	luWork := mat.New(n, n)
	ipiv := make([]int, n)
	cases = append(cases, kernelCase{
		name:  "getrf-blocked/N=512",
		iters: 5,
		flops: 2.0 / 3.0 * float64(n) * float64(n) * float64(n),
		run: func() {
			luWork.CopyFrom(src)
			if err := lapack.Getrf(luWork, ipiv, 0); err != nil {
				panic(err)
			}
		},
	})
	return cases
}

// RunKernels measures the suite and derives the headline 512×512 speedup.
// The context is honored between cases (a canceled ctx stops the sweep);
// individual kernel calls are pure CPU and run to completion.
func RunKernels(ctx context.Context, progress io.Writer) (*KernelReport, error) {
	rep := &KernelReport{
		Kind:       "kernels",
		ISA:        blas.KernelISA(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	var refNs, blockedNs int64
	for _, kc := range kernelCases() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		row, err := runKernelCase(kc)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(progress, "  %-36s %14s/op %10.0f MFLOP/s %8d allocs/op\n",
			row.Name, time.Duration(row.NsPerOp), row.MFlops, row.AllocsPerOp)
		rep.Rows = append(rep.Rows, row)
		switch row.Name {
		case "gemm-ref/N=512":
			refNs = row.NsPerOp
		case "gemm-blocked/N=512":
			blockedNs = row.NsPerOp
		}
	}
	if refNs > 0 && blockedNs > 0 {
		rep.Speedup512 = float64(refNs) / float64(blockedNs)
	}
	fmt.Fprintf(progress, "  blocked GEMM speedup at 512x512: %.2fx (floor %.1fx, isa %s)\n",
		rep.Speedup512, MinGemmSpeedup512, rep.ISA)
	return rep, nil
}

// runKernelCase measures one case the same way RunPerfCase does: a
// warm-up rep, then fixed iterations with MemStats deltas.
func runKernelCase(kc kernelCase) (KernelRow, error) {
	row := KernelRow{Name: kc.name, Iters: kc.iters}
	kc.run() // warm-up: pools and (first call) pack buffers
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < kc.iters; i++ {
		kc.run()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	row.NsPerOp = elapsed.Nanoseconds() / int64(kc.iters)
	if row.NsPerOp > 0 {
		row.MFlops = kc.flops / float64(row.NsPerOp) * 1e3
	}
	row.AllocsPerOp = (after.Mallocs - before.Mallocs) / uint64(kc.iters)
	row.BytesPerOp = (after.TotalAlloc - before.TotalAlloc) / uint64(kc.iters)
	return row, nil
}
