package bench

import (
	"encoding/csv"
	"fmt"
	"io"

	"repro/internal/costmodel"
	"repro/internal/xpart"
)

// CSV writers: one per experiment, emitting the series needed to re-plot
// the paper's figures with any plotting tool.

// WriteCSV emits Table 2 rows: n,p,algo,measured_bytes,model_bytes,pred_pct,
// plus the simulated and predicted α-β times in seconds.
func (t *Table2Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"n", "p", "algo", "measured_bytes", "model_bytes", "prediction_pct", "sim_time_s", "pred_time_s", "grid"}); err != nil {
		return err
	}
	for _, m := range t.Rows {
		if err := cw.Write([]string{
			itoa(m.N), itoa(m.P), string(m.Algo),
			fmt.Sprintf("%d", m.MeasuredBytes),
			fmt.Sprintf("%.0f", m.ModeledBytes),
			fmt.Sprintf("%.2f", m.PredictionPct()),
			fmt.Sprintf("%.9f", m.SimTime),
			fmt.Sprintf("%.9f", m.PredTime),
			m.GridDesc,
		}); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits Fig. 6a series: p,algo,measured_per_node,model_per_node,
// lower_bound_per_node (bytes), and the simulated α-β makespan.
func (f *Fig6aResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"p", "algo", "measured_per_node_bytes", "model_per_node_bytes", "lower_bound_bytes", "sim_time_s"}); err != nil {
		return err
	}
	for _, m := range f.Points {
		params := costmodel.Params{N: m.N, P: m.P, M: m.M}
		lb := xpart.LUParallelLowerBound(m.N, m.P, m.M) * 8
		if err := cw.Write([]string{
			itoa(m.P), string(m.Algo),
			fmt.Sprintf("%.0f", m.PerNodeBytes()),
			fmt.Sprintf("%.0f", costmodel.PerRankBytes(m.Algo, params)),
			fmt.Sprintf("%.0f", lb),
			fmt.Sprintf("%.9f", m.SimTime),
		}); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits Fig. 6b series: p,n,algo,measured_per_node_bytes,sim_time_s.
func (f *Fig6bResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"p", "n", "algo", "measured_per_node_bytes", "sim_time_s"}); err != nil {
		return err
	}
	for _, m := range f.Points {
		if err := cw.Write([]string{
			itoa(m.P), itoa(m.N), string(m.Algo),
			fmt.Sprintf("%.0f", m.PerNodeBytes()),
			fmt.Sprintf("%.9f", m.SimTime),
		}); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits Fig. 7 cells: n,p,reduction,second_best,kind.
func (f *Fig7Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"n", "p", "reduction", "second_best", "kind"}); err != nil {
		return err
	}
	for _, c := range f.Cells {
		kind := "predicted"
		if c.Measured {
			kind = "measured"
		}
		if err := cw.Write([]string{
			itoa(c.N), itoa(c.P),
			fmt.Sprintf("%.4f", c.Reduction),
			string(c.SecondBest), kind,
		}); err != nil {
			return err
		}
	}
	return nil
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }
