package bench

import (
	"testing"

	"repro/internal/conflux"
	"repro/internal/costmodel"
	"repro/internal/lu25d"
	"repro/internal/lu2d"
	"repro/internal/smpi"
	"repro/internal/trace"
)

// runEngineWorld replays one engine's volume-mode schedule on a world the
// test owns, so the timeline (and its retained events) stays accessible.
func runEngineWorld(t *testing.T, algo costmodel.Algorithm, n, p int, mem float64) *smpi.World {
	t.Helper()
	w := smpi.NewWorldMachine(p, false, trace.DefaultMachine())
	_, err := smpi.RunWorld(w, func(c *smpi.Comm) error {
		var err error
		switch algo {
		case costmodel.LibSci:
			_, err = lu2d.Run(c, nil, lu2d.LibSciOptions(n, p, LibSciNB))
		case costmodel.SLATE:
			_, err = lu2d.Run(c, nil, lu2d.SLATEOptions(n, p))
		case costmodel.CANDMC:
			_, err = lu25d.Run(c, nil, lu25d.CANDMCOptions(n, p, mem))
		case costmodel.COnfLUX:
			_, err = conflux.Run(c, nil, conflux.DefaultOptions(n, p, mem))
		}
		return err
	})
	if err != nil {
		t.Fatalf("%s: %v", algo, err)
	}
	return w
}

// TestTimelineReportParityAllEngines pins the tentpole refactor: the volume
// Report derived from the event timeline must be identical — per-rank
// sent/recv/msgs and per-phase bytes/msgs — to the pre-refactor counter
// semantics, reconstructed here by replaying every matched event into a
// fresh timeline. A mismatch means a delivery was dropped, double-counted,
// or mis-attributed on its way through the timeline.
func TestTimelineReportParityAllEngines(t *testing.T) {
	n, p := 128, 8
	mem := costmodel.MaxMemoryParams(n, p).M
	for _, algo := range costmodel.Algorithms {
		w := runEngineWorld(t, algo, n, p, mem)
		if w.Trace.EventsDropped() != 0 {
			t.Fatalf("%s: event cap exceeded at test scale", algo)
		}
		got := w.Trace.Report()

		replay := trace.NewTimeline(p, trace.DefaultMachine())
		for _, e := range w.Trace.Events() {
			replay.RecordSend(e.From, e.To, e.Bytes, e.Phase)
		}
		want := replay.Report()

		for r := 0; r < p; r++ {
			if got.Sent[r] != want.Sent[r] || got.Recv[r] != want.Recv[r] || got.Msgs[r] != want.Msgs[r] {
				t.Fatalf("%s rank %d: sent/recv/msgs %d/%d/%d from timeline vs %d/%d/%d from events",
					algo, r, got.Sent[r], got.Recv[r], got.Msgs[r], want.Sent[r], want.Recv[r], want.Msgs[r])
			}
		}
		if len(got.ByPhase) != len(want.ByPhase) {
			t.Fatalf("%s: phase sets differ: %v vs %v", algo, got.ByPhase, want.ByPhase)
		}
		for ph, v := range want.ByPhase {
			if got.ByPhase[ph] != v {
				t.Fatalf("%s phase %q: %d vs %d bytes", algo, ph, got.ByPhase[ph], v)
			}
		}
		for ph, v := range want.PhaseMsgs {
			if got.PhaseMsgs[ph] != v {
				t.Fatalf("%s phase %q: %d vs %d msgs", algo, ph, got.PhaseMsgs[ph], v)
			}
		}
	}
}

// TestSimulatedTimeDeterministic pins the makespan determinism acceptance
// criterion: repeated volume-mode runs yield bit-identical simulated times
// (logical clocks depend only on per-rank program order and message
// matching, never on goroutine scheduling).
func TestSimulatedTimeDeterministic(t *testing.T) {
	var first float64
	for i := 0; i < 3; i++ {
		m, err := Measure(t.Context(), costmodel.COnfLUX, 128, 8, costmodel.MaxMemoryParams(128, 8).M)
		if err != nil {
			t.Fatal(err)
		}
		if m.SimTime <= 0 {
			t.Fatalf("no simulated time: %v", m.SimTime)
		}
		if i == 0 {
			first = m.SimTime
		} else if m.SimTime != first {
			t.Fatalf("run %d makespan %v != %v", i, m.SimTime, first)
		}
	}
}

// TestSimulatedTimeMonotoneInMachine pins the α-β monotonicity criterion at
// engine level: doubling either machine parameter strictly increases the
// simulated makespan of a real schedule.
func TestSimulatedTimeMonotoneInMachine(t *testing.T) {
	measure := func(m costmodel.Machine) float64 {
		saved := Machine
		Machine = m
		defer func() { Machine = saved }()
		res, err := Measure(t.Context(), costmodel.LibSci, 128, 8, costmodel.MaxMemoryParams(128, 8).M)
		if err != nil {
			t.Fatal(err)
		}
		return res.SimTime
	}
	base := measure(costmodel.Machine{Alpha: 1e-6, Beta: 1e-10})
	if up := measure(costmodel.Machine{Alpha: 2e-6, Beta: 1e-10}); up <= base {
		t.Fatalf("makespan not strictly increasing in alpha: %v -> %v", base, up)
	}
	if up := measure(costmodel.Machine{Alpha: 1e-6, Beta: 2e-10}); up <= base {
		t.Fatalf("makespan not strictly increasing in beta: %v -> %v", base, up)
	}
}

// TestBusyWaitSplitInvariant: for every rank, clock = busy + wait, and the
// makespan is the critical rank's clock.
func TestBusyWaitSplitInvariant(t *testing.T) {
	w := runEngineWorld(t, costmodel.COnfLUX, 128, 8, costmodel.MaxMemoryParams(128, 8).M)
	tr := w.Trace.Report().Time
	for r := range tr.Clock {
		if diff := tr.Clock[r] - (tr.Busy[r] + tr.Wait[r]); diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("rank %d: clock %v != busy %v + wait %v", r, tr.Clock[r], tr.Busy[r], tr.Wait[r])
		}
	}
	if tr.Makespan != tr.Clock[tr.CritRank] {
		t.Fatalf("makespan %v != critical rank clock %v", tr.Makespan, tr.Clock[tr.CritRank])
	}
}
