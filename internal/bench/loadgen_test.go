package bench

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunLoadCompletesAll: every call index in [0, total) is issued exactly
// once across the worker pool, and the report's counts reconcile.
func TestRunLoadCompletesAll(t *testing.T) {
	const total = 200
	var mu sync.Mutex
	seen := make(map[int]int)
	rep := RunLoad(t.Context(), 8, total, func(_ context.Context, i int) error {
		mu.Lock()
		seen[i]++
		mu.Unlock()
		return nil
	})
	if rep.Requests != total || rep.Errors != 0 {
		t.Fatalf("report %+v: want %d requests, 0 errors", rep, total)
	}
	if len(seen) != total {
		t.Fatalf("%d distinct indices issued, want %d", len(seen), total)
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("index %d issued %d times", i, n)
		}
	}
	if rep.MeanLat < 0 || rep.P99Lat < rep.P50Lat || rep.MaxLat < rep.MinLat {
		t.Fatalf("latency summary inconsistent: %+v", rep)
	}
}

// TestRunLoadCountsErrorsWithoutStopping: failures are tallied (first one
// retained) but the burst still completes — shedding under overload must
// remain observable for the whole run.
func TestRunLoadCountsErrorsWithoutStopping(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	rep := RunLoad(t.Context(), 4, 100, func(_ context.Context, i int) error {
		calls.Add(1)
		if i%3 == 0 {
			return boom
		}
		return nil
	})
	if got := calls.Load(); got != 100 {
		t.Fatalf("run stopped early: %d calls", got)
	}
	if rep.Errors != 34 { // i = 0, 3, ..., 99
		t.Fatalf("errors = %d, want 34", rep.Errors)
	}
	if !errors.Is(rep.FirstErr, boom) {
		t.Fatalf("FirstErr = %v", rep.FirstErr)
	}
}

// TestRunLoadHonorsCancellation: cancellation stops the workers without
// waiting for the remaining calls.
func TestRunLoadHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(t.Context())
	var calls atomic.Int64
	rep := RunLoad(ctx, 2, 10_000, func(ctx context.Context, i int) error {
		if calls.Add(1) == 5 {
			cancel()
		}
		select {
		case <-ctx.Done():
		case <-time.After(time.Millisecond):
		}
		return ctx.Err()
	})
	if rep.Requests >= 10_000 {
		t.Fatalf("cancellation ignored: %d requests completed", rep.Requests)
	}
}

// TestRunLoadClampsClients: more clients than work degrades gracefully.
func TestRunLoadClampsClients(t *testing.T) {
	rep := RunLoad(t.Context(), 64, 3, func(context.Context, int) error { return nil })
	if rep.Clients != 3 || rep.Requests != 3 {
		t.Fatalf("report %+v: want 3 clients, 3 requests", rep)
	}
	if rep := RunLoad(t.Context(), 0, 0, nil); rep.Requests != 0 {
		t.Fatalf("empty run issued %d requests", rep.Requests)
	}
}
