package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestMeasureSolveMetersBothPhases(t *testing.T) {
	m, err := MeasureSolve(t.Context(), 128, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.FwdBytes <= 0 || m.BackBytes <= 0 {
		t.Fatalf("solve phases unmetered: fwd=%d back=%d", m.FwdBytes, m.BackBytes)
	}
	if m.SimTime <= 0 || m.MaxRankMsgs <= 0 {
		t.Fatalf("solve untimed: sim=%v msgs=%d", m.SimTime, m.MaxRankMsgs)
	}
}

func TestMeasureSolveDeterministic(t *testing.T) {
	first, err := MeasureSolve(t.Context(), 128, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		m, err := MeasureSolve(t.Context(), 128, 8, 2)
		if err != nil {
			t.Fatal(err)
		}
		if m.SolveBytes() != first.SolveBytes() || m.SimTime != first.SimTime {
			t.Fatalf("rep %d: %d bytes / %v s vs %d / %v", i, m.SolveBytes(), m.SimTime, first.SolveBytes(), first.SimTime)
		}
	}
}

func TestRunSolveRenderAndCSV(t *testing.T) {
	res, err := RunSolve(t.Context(), 96, []int{4, 6}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	res.Render(&out)
	if !strings.Contains(out.String(), "NRHS=2") {
		t.Fatalf("render missing header: %q", out.String())
	}
	var csvOut bytes.Buffer
	if err := res.WriteCSV(&csvOut); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvOut.String()), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "n,p,nrhs,fwd_bytes") {
		t.Fatalf("csv shape: %v", lines)
	}
}
