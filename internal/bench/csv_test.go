package bench

import (
	"encoding/csv"
	"strings"
	"testing"
)

func parseCSV(t *testing.T, s string) [][]string {
	t.Helper()
	rows, err := csv.NewReader(strings.NewReader(s)).ReadAll()
	if err != nil {
		t.Fatalf("invalid csv: %v", err)
	}
	return rows
}

func TestTable2CSV(t *testing.T) {
	res, err := RunTable2(t.Context(), []int{128}, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, sb.String())
	if len(rows) != 5 { // header + 4 algorithms
		t.Fatalf("rows %d", len(rows))
	}
	if rows[0][0] != "n" || rows[0][3] != "measured_bytes" || rows[0][6] != "sim_time_s" {
		t.Fatalf("header %v", rows[0])
	}
	for _, r := range rows[1:] {
		if r[0] != "128" || r[1] != "4" {
			t.Fatalf("row %v", r)
		}
	}
}

func TestFig6aCSV(t *testing.T) {
	res, err := RunFig6a(t.Context(), 128, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, sb.String())
	if len(rows) != 5 || len(rows[1]) != 6 {
		t.Fatalf("shape: %d rows", len(rows))
	}
	if rows[0][5] != "sim_time_s" {
		t.Fatalf("header %v", rows[0])
	}
}

func TestFig6bCSV(t *testing.T) {
	res, err := RunFig6b(t.Context(), 32, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, sb.String()); len(rows) != 9 { // header + 2P × 4 algos
		t.Fatalf("rows %d", len(rows))
	}
}

func TestFig7CSV(t *testing.T) {
	res, err := RunFig7(t.Context(), []int{128}, []int{4, 100000}, 16)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, sb.String())
	if len(rows) != 3 {
		t.Fatalf("rows %d", len(rows))
	}
	if rows[1][4] != "measured" || rows[2][4] != "predicted" {
		t.Fatalf("kinds: %v / %v", rows[1], rows[2])
	}
}
