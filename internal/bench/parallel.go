package bench

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/costmodel"
)

// parallel.go is the parallel measurement runner. Every simulated world is
// self-contained — its ranks, mailboxes, and timeline shards are private to
// one smpi.World — so independent measurements (sweep points, table cells,
// conformance cases) can execute concurrently across host CPU cores without
// sharing anything but the read-only cost models. Sweeps stay deterministic
// because results land at their job's index, never in completion order.

// Workers is the number of simulated worlds the harness runs concurrently;
// 0 (the default) means one per host CPU (GOMAXPROCS), divided by the
// event executor's per-world window width (ExecWorkers) when that is set —
// the two axes multiply, and the default should keep running threads at
// about one per core either way. cmd/confluxbench overrides it from
// -parallel. Note each world runs P goroutines of its own, so Workers
// bounds *worlds*, not goroutines.
var Workers int

func workerCount(n int) int {
	w := Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
		if ExecWorkers > 1 {
			w /= ExecWorkers
		}
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach runs fn(ctx, i) for every i in [0, n) across up to Workers
// goroutines. Callers write result i into slot i of a pre-sized slice, so
// output order is deterministic regardless of scheduling. The first error
// cancels the context handed to the remaining calls and is returned; later
// errors (including cancellation fallout) are dropped in its favour.
func ForEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := workerCount(n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			// Honor cancellation between jobs exactly like the parallel
			// path's workers do, so a canceled context stops a sweep at
			// the same points whatever the worker count.
			if ctx.Err() != nil {
				return context.Cause(ctx)
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					continue // drain; a peer already failed or caller canceled
				}
				if err := fn(ctx, i); err != nil {
					errOnce.Do(func() {
						firstErr = err
						cancel()
					})
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if firstErr == nil && ctx.Err() != nil {
		firstErr = context.Cause(ctx)
	}
	return firstErr
}

// measureJob is one (algo, n, p, mem) point of a sweep.
type measureJob struct {
	algo costmodel.Algorithm
	n, p int
	mem  float64
}

// measureMany measures a flattened job list through ForEach, preserving job
// order in the returned slice.
func measureMany(ctx context.Context, jobs []measureJob) ([]Measurement, error) {
	out := make([]Measurement, len(jobs))
	err := ForEach(ctx, len(jobs), func(ctx context.Context, i int) error {
		j := jobs[i]
		m, err := Measure(ctx, j.algo, j.n, j.p, j.mem)
		if err != nil {
			return err
		}
		out[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
