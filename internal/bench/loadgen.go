package bench

import (
	"context"
	"sort"
	"sync"
	"time"
)

// LoadReport summarizes one closed-loop load run: how many requests
// completed, how many errored, and the latency distribution observed by
// the clients. Latencies are wall-clock per call, including any queueing
// inside the system under test.
type LoadReport struct {
	Clients   int
	Requests  int
	Errors    int
	Elapsed   time.Duration
	MinLat    time.Duration
	MaxLat    time.Duration
	MeanLat   time.Duration
	P50Lat    time.Duration
	P99Lat    time.Duration
	FirstErr  error
	QPS       float64
	latencies []time.Duration
}

// RunLoad drives fn from clients concurrent workers until total calls have
// completed, closed-loop (each worker issues its next call as soon as the
// previous returns). fn receives the global call index. Errors are counted
// but do not stop the run — a load test wants the full burst to land so
// shedding behavior is observable — except for context cancellation, which
// stops all workers promptly. The report aggregates client-observed
// latencies; confluxd's CI load test drives ~50 clients at one plan point
// through this and then asserts on the server's cache stats.
func RunLoad(ctx context.Context, clients, total int, fn func(ctx context.Context, i int) error) LoadReport {
	if clients < 1 {
		clients = 1
	}
	if clients > total {
		clients = total
	}
	rep := LoadReport{Clients: clients, latencies: make([]time.Duration, 0, total)}
	if total <= 0 {
		return rep
	}
	var (
		mu   sync.Mutex
		next int
		wg   sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= total {
					return
				}
				t0 := time.Now()
				err := fn(ctx, i)
				lat := time.Since(t0)
				mu.Lock()
				rep.Requests++
				rep.latencies = append(rep.latencies, lat)
				if err != nil {
					rep.Errors++
					if rep.FirstErr == nil {
						rep.FirstErr = err
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)
	rep.finish()
	return rep
}

// finish computes the latency summary from the raw samples.
func (r *LoadReport) finish() {
	if len(r.latencies) == 0 {
		return
	}
	sort.Slice(r.latencies, func(i, j int) bool { return r.latencies[i] < r.latencies[j] })
	r.MinLat = r.latencies[0]
	r.MaxLat = r.latencies[len(r.latencies)-1]
	var sum time.Duration
	for _, l := range r.latencies {
		sum += l
	}
	r.MeanLat = sum / time.Duration(len(r.latencies))
	r.P50Lat = r.latencies[len(r.latencies)*50/100]
	idx99 := len(r.latencies) * 99 / 100
	if idx99 >= len(r.latencies) {
		idx99 = len(r.latencies) - 1
	}
	r.P99Lat = r.latencies[idx99]
	if s := r.Elapsed.Seconds(); s > 0 {
		r.QPS = float64(r.Requests) / s
	}
}
