package bench

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestForEachHonorsCancellationAtEveryWorkerCount: a context canceled
// mid-sweep must stop ForEach on both the serial (workers == 1) path and
// the parallel path — the serial path used to run every remaining job to
// completion. The jobs cancel the context themselves after a fixed number
// of calls, so the test is deterministic at any scheduling.
func TestForEachHonorsCancellationAtEveryWorkerCount(t *testing.T) {
	defer func(w int) { Workers = w }(Workers)
	const n = 64
	for _, workers := range []int{1, 4} {
		Workers = workers
		ctx, cancel := context.WithCancel(context.Background())
		var calls atomic.Int64
		err := ForEach(ctx, n, func(ctx context.Context, i int) error {
			if calls.Add(1) == 3 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// The serial path sees the cancellation before job 4; parallel
		// workers may each have one job in flight when it lands, but the
		// sweep must still stop far short of all n jobs.
		if got := calls.Load(); got >= n {
			t.Fatalf("workers=%d: %d jobs ran after cancellation (want < %d)", workers, got, n)
		}
	}
}

// TestForEachCanceledBeforeStart: a context that is already canceled runs
// zero jobs and reports the cancellation cause, identically on both paths.
func TestForEachCanceledBeforeStart(t *testing.T) {
	defer func(w int) { Workers = w }(Workers)
	cause := errors.New("sweep abandoned")
	for _, workers := range []int{1, 4} {
		Workers = workers
		ctx, cancel := context.WithCancelCause(context.Background())
		cancel(cause)
		var calls atomic.Int64
		err := ForEach(ctx, 8, func(ctx context.Context, i int) error {
			calls.Add(1)
			return nil
		})
		if !errors.Is(err, cause) {
			t.Fatalf("workers=%d: err = %v, want cause %v", workers, err, cause)
		}
		if calls.Load() != 0 {
			t.Fatalf("workers=%d: %d jobs ran on a pre-canceled context", workers, calls.Load())
		}
	}
}

// TestForEachFirstErrorWins: a job error is returned as-is (not replaced by
// the cancellation fallout it triggers) on both paths.
func TestForEachFirstErrorWins(t *testing.T) {
	defer func(w int) { Workers = w }(Workers)
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		Workers = workers
		err := ForEach(context.Background(), 16, func(ctx context.Context, i int) error {
			if i == 2 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, boom)
		}
	}
}
