package bench

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/costmodel"
	"repro/internal/xpart"
)

// Table2 reproduces Table 2: measured vs modeled total communication volume
// [GB] with prediction percentages, for every algorithm at each (N, P).
type Table2Result struct {
	Rows []Measurement
}

// RunTable2 measures the given problem sizes and rank counts (the paper uses
// N ∈ {4096, 16384}, P ∈ {64, 1024}). All cells × algorithms are flattened
// into one job list for the parallel runner; row order is (n, p, algorithm)
// regardless of completion order.
func RunTable2(ctx context.Context, ns, ps []int) (*Table2Result, error) {
	var jobs []measureJob
	for _, n := range ns {
		for _, p := range ps {
			mem := costmodel.MaxMemoryParams(n, p).M
			for _, algo := range costmodel.Algorithms {
				jobs = append(jobs, measureJob{algo: algo, n: n, p: p, mem: mem})
			}
		}
	}
	rows, err := measureMany(ctx, jobs)
	if err != nil {
		return nil, err
	}
	return &Table2Result{Rows: rows}, nil
}

// TableCell measures one (N, P) cell of Table 2 and returns pre-rendered
// rows — used to stream paper-scale results incrementally.
func TableCell(ctx context.Context, n, p int) []string {
	out := []string{fmt.Sprintf("Total comm. volume for N=%d, P=%d measured/modeled [GB] (prediction %%)\n", n, p)}
	for _, algo := range costmodel.Algorithms {
		m, err := Measure(ctx, algo, n, p, costmodel.MaxMemoryParams(n, p).M)
		if err != nil {
			out = append(out, fmt.Sprintf("  %-8s ERROR: %v\n", algo, err))
			continue
		}
		out = append(out, fmt.Sprintf("  %-8s %8.3f / %8.3f (%5.1f%%)   sim %.4fs / pred %.4fs   grid %s\n",
			m.Algo, m.MeasuredGB(), m.ModeledGB(), m.PredictionPct(), m.SimTime, m.PredTime, m.GridDesc))
	}
	return out
}

// Render writes the table in the paper's layout.
func (t *Table2Result) Render(w io.Writer) {
	groups := map[[2]int][]Measurement{}
	var keys [][2]int
	for _, m := range t.Rows {
		k := [2]int{m.N, m.P}
		if len(groups[k]) == 0 {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], m)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		fmt.Fprintf(w, "Total comm. volume for N=%d, P=%d measured/modeled [GB] (prediction %%), simulated/predicted α-β time [s]\n", k[0], k[1])
		for _, m := range groups[k] {
			fmt.Fprintf(w, "  %-8s %8.3f / %8.3f (%5.1f%%)   sim %.4fs / pred %.4fs   grid %s\n",
				m.Algo, m.MeasuredGB(), m.ModeledGB(), m.PredictionPct(), m.SimTime, m.PredTime, m.GridDesc)
		}
	}
}

// Fig6aResult is the strong-scaling experiment: per-node communication
// volume vs P at fixed N, with model lines and the §6 lower bound.
type Fig6aResult struct {
	N      int
	Points []Measurement
}

// RunFig6a sweeps rank counts at fixed N (paper: N = 16384, P up to 1024,
// including non-powers that trigger the 2D libraries' bad-grid outliers).
// The sweep is flattened across the parallel runner.
func RunFig6a(ctx context.Context, n int, ps []int) (*Fig6aResult, error) {
	var jobs []measureJob
	for _, p := range ps {
		mem := costmodel.MaxMemoryParams(n, p).M
		for _, algo := range costmodel.Algorithms {
			jobs = append(jobs, measureJob{algo: algo, n: n, p: p, mem: mem})
		}
	}
	points, err := measureMany(ctx, jobs)
	if err != nil {
		return nil, err
	}
	return &Fig6aResult{N: n, Points: points}, nil
}

// Render prints one series row per (P, algorithm): measured per-node MB,
// model per-node MB, and the lower bound.
func (f *Fig6aResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig 6a: communication volume per node [MB], N=%d\n", f.N)
	fmt.Fprintf(w, "%6s %-8s %12s %12s %12s %12s\n", "P", "algo", "measured", "model", "lower-bound", "sim-time[s]")
	for _, m := range f.Points {
		params := costmodel.Params{N: m.N, P: m.P, M: m.M}
		lb := xpart.LUParallelLowerBound(m.N, m.P, m.M) * 8 / 1e6
		fmt.Fprintf(w, "%6d %-8s %12.3f %12.3f %12.3f %12.6f\n",
			m.P, m.Algo, m.PerNodeBytes()/1e6, costmodel.PerRankBytes(m.Algo, params)/1e6, lb, m.SimTime)
	}
}

// Fig6bResult is the weak-scaling experiment: N = base·∛P, constant work per
// node; 2.5D algorithms should hold per-node volume flat while 2D grows as
// P^{1/6}.
type Fig6bResult struct {
	Base   int
	Points []Measurement
}

// WeakScalingN returns the paper's weak-scaling problem size N = base·∛P,
// rounded to a multiple of 16 for clean tiling.
func WeakScalingN(base, p int) int {
	n := int(float64(base) * math.Cbrt(float64(p)))
	if r := n % 16; r != 0 {
		n += 16 - r
	}
	return n
}

// RunFig6b sweeps P with N = base·∛P (paper: base = 3200), flattened across
// the parallel runner.
func RunFig6b(ctx context.Context, base int, ps []int) (*Fig6bResult, error) {
	var jobs []measureJob
	for _, p := range ps {
		n := WeakScalingN(base, p)
		mem := costmodel.MaxMemoryParams(n, p).M
		for _, algo := range costmodel.Algorithms {
			jobs = append(jobs, measureJob{algo: algo, n: n, p: p, mem: mem})
		}
	}
	points, err := measureMany(ctx, jobs)
	if err != nil {
		return nil, err
	}
	return &Fig6bResult{Base: base, Points: points}, nil
}

// Render prints per-node volumes; flat series identify the 2.5D algorithms.
func (f *Fig6bResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig 6b: weak scaling, N = %d*cbrt(P), per-node volume [MB]\n", f.Base)
	fmt.Fprintf(w, "%6s %8s %-8s %12s %12s\n", "P", "N", "algo", "measured", "sim-time[s]")
	for _, m := range f.Points {
		fmt.Fprintf(w, "%6d %8d %-8s %12.3f %12.6f\n", m.P, m.N, m.Algo, m.PerNodeBytes()/1e6, m.SimTime)
	}
}

// Fig7Cell is one heatmap cell: COnfLUX's communication reduction vs the
// second-best implementation.
type Fig7Cell struct {
	N, P       int
	Reduction  float64
	SecondBest costmodel.Algorithm
	Measured   bool // measured (P <= limit) vs model-predicted
}

// Fig7Result is the communication-reduction heatmap of Fig. 7.
type Fig7Result struct {
	Cells []Fig7Cell
}

// RunFig7 builds the heatmap: measured cells for P ≤ measuredLimit,
// model-predicted cells beyond (the paper measures to P=1024 and predicts to
// P=262144, Summit scale).
func RunFig7(ctx context.Context, ns, ps []int, measuredLimit int) (*Fig7Result, error) {
	res := &Fig7Result{}
	for _, n := range ns {
		for _, p := range ps {
			if p <= measuredLimit {
				ms, err := MeasureAll(ctx, n, p)
				if err != nil {
					return nil, err
				}
				var cfx float64
				best := math.Inf(1)
				var bestAlgo costmodel.Algorithm
				for _, m := range ms {
					if m.Algo == costmodel.COnfLUX {
						cfx = float64(m.MeasuredBytes)
						continue
					}
					if v := float64(m.MeasuredBytes); v < best {
						best, bestAlgo = v, m.Algo
					}
				}
				res.Cells = append(res.Cells, Fig7Cell{
					N: n, P: p, Reduction: best / cfx, SecondBest: bestAlgo, Measured: true,
				})
				continue
			}
			params := costmodel.MaxMemoryParams(n, p)
			algo, second := costmodel.SecondBest(params)
			res.Cells = append(res.Cells, Fig7Cell{
				N: n, P: p,
				Reduction:  second / costmodel.TotalBytes(costmodel.COnfLUX, params),
				SecondBest: algo,
			})
		}
	}
	return res, nil
}

// Render prints the heatmap cells; the paper annotates each with the
// second-best library's initial (L=LibSci, S=SLATE).
func (f *Fig7Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig 7: COnfLUX communication reduction vs second-best\n")
	fmt.Fprintf(w, "%8s %8s %10s %-8s %s\n", "N", "P", "reduction", "vs", "kind")
	for _, c := range f.Cells {
		kind := "predicted"
		if c.Measured {
			kind = "measured"
		}
		fmt.Fprintf(w, "%8d %8d %9.2fx %-8s %s\n", c.N, c.P, c.Reduction, c.SecondBest, kind)
	}
}

// SummitPrediction returns the paper's headline exascale prediction: the
// modeled COnfLUX reduction vs second-best for a full-scale Summit run
// (the paper reports 2.1× at N=16,384 with one rank per GPU).
func SummitPrediction(n, p int) (float64, costmodel.Algorithm) {
	params := costmodel.MaxMemoryParams(n, p)
	algo, second := costmodel.SecondBest(params)
	return second / costmodel.TotalBytes(costmodel.COnfLUX, params), algo
}

// CrossoverReport reproduces §9's observation that CANDMC's asymptotic
// optimality pays off only beyond ~450k ranks at N=16,384.
func CrossoverReport(n int) int {
	return costmodel.Crossover2DvsCANDMC(n, 1<<21)
}
