// Package oocore demonstrates the SEQUENTIAL side of the paper's analysis
// (§6 cites Olivry et al.'s 2N³/(3√M) bound, which the X-Partitioning
// machinery reproduces): a blocked right-looking LU runs against a two-level
// memory with an explicitly metered software cache of M elements, and the
// measured load/store traffic is compared against the lower bound from
// internal/xpart. With tile size b = √(M/3) the schedule's I/O is a small
// constant over the bound — the sequential analogue of COnfLUX's 3/2 gap.
package oocore

import (
	"container/list"
	"errors"
	"fmt"
	"math"

	"repro/internal/blas"
	"repro/internal/mat"
)

// ErrSingular mirrors lapack.ErrSingular for the unpivoted kernel.
var ErrSingular = errors.New("oocore: zero pivot (matrix requires pivoting)")

// Stats reports the metered traffic of one run, in ELEMENTS.
type Stats struct {
	Loads  int64
	Stores int64
	M      int // cache capacity in elements
	B      int // tile size used
}

// Total returns loads + stores (the red-blue pebble game's Q).
func (s Stats) Total() int64 { return s.Loads + s.Stores }

// Cache is an LRU software cache of matrix tiles with dirty write-back.
// Slow memory holds the authoritative matrix; Touch faults tiles in,
// counting element transfers exactly as the red-blue pebble game counts
// load/store moves.
type Cache struct {
	capacity int // elements
	used     int
	slow     *mat.Matrix
	b        int
	nt       int
	entries  map[int]*list.Element
	lru      *list.List
	pinned   map[int]bool
	stats    Stats
}

type entry struct {
	id    int
	tile  *mat.Matrix
	dirty bool
	size  int
}

// NewCache wraps the slow-memory matrix with an M-element cache of b×b
// tiles.
func NewCache(slow *mat.Matrix, m, b int) *Cache {
	if slow.Rows != slow.Cols {
		panic("oocore: square matrices only")
	}
	nt := (slow.Rows + b - 1) / b
	return &Cache{
		capacity: m, slow: slow, b: b, nt: nt,
		entries: map[int]*list.Element{}, lru: list.New(), pinned: map[int]bool{},
		stats: Stats{M: m, B: b},
	}
}

func (c *Cache) tileID(ti, tj int) int { return ti*c.nt + tj }

func (c *Cache) dims(ti, tj int) (int, int) {
	r, co := c.b, c.b
	if (ti+1)*c.b > c.slow.Rows {
		r = c.slow.Rows - ti*c.b
	}
	if (tj+1)*c.b > c.slow.Cols {
		co = c.slow.Cols - tj*c.b
	}
	return r, co
}

// Touch pins tile (ti,tj) into the cache (loading it if absent, evicting
// LRU victims if needed) and returns it. markDirty declares the caller will
// write it. Pinned tiles are never evicted until Unpin.
func (c *Cache) Touch(ti, tj int, markDirty bool) *mat.Matrix {
	id := c.tileID(ti, tj)
	if el, ok := c.entries[id]; ok {
		c.lru.MoveToFront(el)
		e := el.Value.(*entry)
		e.dirty = e.dirty || markDirty
		c.pinned[id] = true
		return e.tile
	}
	r, co := c.dims(ti, tj)
	size := r * co
	for c.used+size > c.capacity {
		if !c.evictOne() {
			panic(fmt.Sprintf("oocore: cache of %d elements cannot hold working set (+%d needed)", c.capacity, size))
		}
	}
	tile := mat.New(r, co)
	tile.CopyFrom(c.slow.View(ti*c.b, tj*c.b, r, co))
	c.stats.Loads += int64(size)
	c.used += size
	e := &entry{id: id, tile: tile, dirty: markDirty, size: size}
	c.entries[id] = c.lru.PushFront(e)
	c.pinned[id] = true
	return tile
}

// Unpin releases the pins taken by Touch calls since the last Unpin.
func (c *Cache) Unpin() { c.pinned = map[int]bool{} }

func (c *Cache) evictOne() bool {
	for el := c.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		if c.pinned[e.id] {
			continue
		}
		if e.dirty {
			ti, tj := e.id/c.nt, e.id%c.nt
			c.slow.View(ti*c.b, tj*c.b, e.tile.Rows, e.tile.Cols).CopyFrom(e.tile)
			c.stats.Stores += int64(e.size)
		}
		c.used -= e.size
		delete(c.entries, e.id)
		c.lru.Remove(el)
		return true
	}
	return false
}

// Flush writes all dirty tiles back (end of computation: outputs must carry
// blue pebbles).
func (c *Cache) Flush() {
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		if e.dirty {
			ti, tj := e.id/c.nt, e.id%c.nt
			c.slow.View(ti*c.b, tj*c.b, e.tile.Rows, e.tile.Cols).CopyFrom(e.tile)
			c.stats.Stores += int64(e.size)
			e.dirty = false
		}
	}
}

// Stats returns the traffic so far.
func (c *Cache) Stats() Stats { return c.stats }

// DefaultTile returns the I/O-optimal tile size b = ⌊√(M/3)⌋ (three-tile
// GEMM working set).
func DefaultTile(m int) int {
	b := int(math.Sqrt(float64(m) / 3))
	if b < 1 {
		b = 1
	}
	return b
}

// FactorizeOOC runs a blocked right-looking LU (no pivoting; intended for
// diagonally dominant inputs — the I/O schedule, not numerics, is the
// subject here) against an M-element cache and returns the metered traffic.
// a is factored in place (combined L\U).
func FactorizeOOC(a *mat.Matrix, m int) (Stats, error) {
	b := DefaultTile(m)
	return FactorizeOOCTile(a, m, b)
}

// FactorizeOOCTile is FactorizeOOC with an explicit tile size.
func FactorizeOOCTile(a *mat.Matrix, m, b int) (Stats, error) {
	c := NewCache(a, m, b)
	nt := (a.Rows + b - 1) / b
	for k := 0; k < nt; k++ {
		// Factor diagonal tile (unpivoted).
		diag := c.Touch(k, k, true)
		if err := getf2NoPiv(diag); err != nil {
			return c.Stats(), err
		}
		c.Unpin()
		// Column panel: L(i,k) = A(i,k)·U00⁻¹.
		for i := k + 1; i < nt; i++ {
			diag := c.Touch(k, k, false)
			t := c.Touch(i, k, true)
			blas.TrsmUpperRight(diag, t)
			c.Unpin()
		}
		// Row panel: U(k,j) = L00⁻¹·A(k,j).
		for j := k + 1; j < nt; j++ {
			diag := c.Touch(k, k, false)
			t := c.Touch(k, j, true)
			blas.TrsmLowerLeft(diag, t, true)
			c.Unpin()
		}
		// Trailing update.
		for i := k + 1; i < nt; i++ {
			for j := k + 1; j < nt; j++ {
				l := c.Touch(i, k, false)
				u := c.Touch(k, j, false)
				t := c.Touch(i, j, true)
				blas.Gemm(-1, l, u, 1, t)
				c.Unpin()
			}
		}
	}
	c.Flush()
	return c.Stats(), nil
}

// getf2NoPiv factors a square tile in place without pivoting.
func getf2NoPiv(a *mat.Matrix) error {
	n := a.Rows
	for k := 0; k < n; k++ {
		p := a.At(k, k)
		if p == 0 {
			return ErrSingular
		}
		inv := 1 / p
		for i := k + 1; i < n; i++ {
			lik := a.At(i, k) * inv
			a.Set(i, k, lik)
			for j := k + 1; j < n; j++ {
				a.Add(i, j, -lik*a.At(k, j))
			}
		}
	}
	return nil
}
