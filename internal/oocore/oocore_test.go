package oocore

import (
	"testing"
	"testing/quick"

	"repro/internal/blas"
	"repro/internal/mat"
	"repro/internal/xpart"
)

func residualNoPiv(orig, lu *mat.Matrix) float64 {
	n := orig.Rows
	l, u := mat.New(n, n), mat.New(n, n)
	for i := 0; i < n; i++ {
		l.Set(i, i, 1)
		for j := 0; j < n; j++ {
			if i > j {
				l.Set(i, j, lu.At(i, j))
			} else {
				u.Set(i, j, lu.At(i, j))
			}
		}
	}
	prod := mat.New(n, n)
	blas.Gemm(1, l, u, 0, prod)
	return mat.MaxAbsDiff(orig, prod) / (mat.NormInf(orig)*float64(n) + 1)
}

func TestFactorizeOOCCorrect(t *testing.T) {
	for _, tc := range []struct{ n, m int }{
		{32, 3 * 16 * 16}, // roomy
		{48, 3 * 8 * 8},   // tight
		{40, 4 * 100},     // ragged tiles
	} {
		a := mat.RandomDiagDominant(tc.n, uint64(tc.n))
		orig := a.Clone()
		stats, err := FactorizeOOC(a, tc.m)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if r := residualNoPiv(orig, a); r > 1e-11 {
			t.Fatalf("%+v residual %v", tc, r)
		}
		if stats.Loads == 0 || stats.Stores == 0 {
			t.Fatalf("%+v no traffic: %+v", tc, stats)
		}
	}
}

func TestIOAboveLowerBound(t *testing.T) {
	n, m := 96, 3*16*16
	a := mat.RandomDiagDominant(n, 5)
	stats, err := FactorizeOOC(a, m)
	if err != nil {
		t.Fatal(err)
	}
	lower := xpart.LUSequentialLowerBound(n, float64(m))
	if float64(stats.Total()) < lower {
		t.Fatalf("measured %d below lower bound %.0f (unsound!)", stats.Total(), lower)
	}
	// And within a small constant of it — the point of the demonstration.
	if ratio := float64(stats.Total()) / lower; ratio > 6 {
		t.Fatalf("ratio %v vs lower bound — schedule far from optimal", ratio)
	}
}

func TestMoreMemoryLessIO(t *testing.T) {
	n := 64
	a1 := mat.RandomDiagDominant(n, 9)
	a2 := a1.Clone()
	s1, err := FactorizeOOC(a1, 3*8*8)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := FactorizeOOC(a2, 3*32*32)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Total() >= s1.Total() {
		t.Fatalf("more memory did not reduce IO: %d -> %d", s1.Total(), s2.Total())
	}
}

func TestIOScalesAsInverseSqrtM(t *testing.T) {
	// Q ~ 2N³/(3√M): quadrupling M should halve the leading traffic.
	n := 128
	a1 := mat.RandomDiagDominant(n, 2)
	a2 := a1.Clone()
	s1, err := FactorizeOOCTile(a1, 3*8*8, 8)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := FactorizeOOCTile(a2, 3*16*16, 16)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(s1.Total()) / float64(s2.Total())
	if ratio < 1.4 || ratio > 2.8 {
		t.Fatalf("IO ratio %v, want ≈2 (1/√M law)", ratio)
	}
}

func TestCacheEvictionAndWriteback(t *testing.T) {
	a := mat.Random(8, 8, 3)
	orig := a.Clone()
	c := NewCache(a, 2*16, 4) // room for exactly two 4x4 tiles
	t00 := c.Touch(0, 0, true)
	t00.Set(0, 0, 42)
	c.Unpin()
	c.Touch(0, 1, false)
	c.Touch(1, 0, false) // evicts (0,0), must write back
	c.Unpin()
	if a.At(0, 0) != 42 {
		t.Fatal("dirty tile not written back on eviction")
	}
	got := c.Touch(0, 0, false)
	if got.At(0, 0) != 42 {
		t.Fatal("reload lost data")
	}
	// Untouched region still original.
	if a.At(7, 7) != orig.At(7, 7) {
		t.Fatal("unrelated data corrupted")
	}
	st := c.Stats()
	if st.Loads != 4*16 || st.Stores != 16 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCacheTooSmallPanics(t *testing.T) {
	a := mat.Random(8, 8, 1)
	c := NewCache(a, 16, 4) // one tile of 16 elements exactly
	c.Touch(0, 0, false)    // pinned
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when pinned working set exceeds cache")
		}
	}()
	c.Touch(0, 1, false)
}

func TestSingularReported(t *testing.T) {
	a := mat.New(16, 16)
	if _, err := FactorizeOOC(a, 3*64); err != ErrSingular {
		t.Fatalf("err = %v", err)
	}
}

func TestDefaultTile(t *testing.T) {
	if b := DefaultTile(3 * 100); b != 10 {
		t.Fatalf("b=%d want 10", b)
	}
	if b := DefaultTile(1); b != 1 {
		t.Fatalf("b=%d want 1", b)
	}
}

// Property: factorization is correct for random sizes/memories.
func TestQuickOOCFactorization(t *testing.T) {
	f := func(seed uint64) bool {
		g := mat.NewRNG(seed)
		n := 8 + g.Intn(40)
		b := 2 + g.Intn(6)
		m := 4 * b * b
		a := mat.RandomDiagDominant(n, seed)
		orig := a.Clone()
		if _, err := FactorizeOOCTile(a, m, b); err != nil {
			return false
		}
		return residualNoPiv(orig, a) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
