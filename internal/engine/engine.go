// Package engine is the registry the public API dispatches factorization
// engines through. Each engine package (internal/conflux, internal/lu25d,
// internal/lu2d, internal/cholesky) self-registers an adapter in its init
// function, so adding an engine never touches the API layer: implement the
// Engine interface, call Register, and the algorithm is reachable from
// conflux.New(conflux.WithAlgorithm(...)), the bench harness, and the CLI.
package engine

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/costmodel"
	"repro/internal/mat"
	"repro/internal/smpi"
)

// ErrUnknown is wrapped by Lookup for algorithm names with no registered
// engine. The public API re-surfaces it as conflux.ErrUnknownAlgorithm.
var ErrUnknown = errors.New("no registered engine")

// Config carries the per-run parameters an engine derives its internal
// options (grid shape, replication, blocking) from.
type Config struct {
	// Ranks is the simulated world size P the engine runs on.
	Ranks int
	// Memory is the per-rank fast memory in elements; <= 0 selects the
	// paper's maximum-replication setting M = N²/P^(2/3).
	Memory float64
	// NB is the block size for engines with a user-specified blocking
	// parameter (LibSci); 0 selects the engine's default.
	NB int
}

// MemoryFor resolves the effective per-rank memory for an n×n problem.
func (cfg Config) MemoryFor(n int) float64 {
	if cfg.Memory > 0 {
		return cfg.Memory
	}
	return costmodel.MaxMemoryParams(n, cfg.Ranks).M
}

// Engine is one registered factorization implementation. Run executes the
// engine's schedule on communicator c for an n×n input; in is consulted at
// world rank 0 only and is nil in volume mode. It returns the combined
// factors gathered at rank 0 (nil on other ranks and in volume mode) and
// the pivot permutation perm with in[perm,:] = L·U. Engines without a pivot
// permutation (Cholesky) return a nil perm.
type Engine interface {
	Name() costmodel.Algorithm
	Run(c *smpi.Comm, in *mat.Matrix, n int, cfg Config) (*mat.Matrix, []int, error)
}

// GridDescriber is optionally implemented by engines that can describe the
// processor grid they would choose for a configuration (the bench harness
// prints it next to each measurement).
type GridDescriber interface {
	GridDesc(n int, cfg Config) string
}

var (
	mu       sync.RWMutex
	registry = map[costmodel.Algorithm]Engine{}
)

// Register adds an engine to the registry. It panics on a duplicate name:
// two implementations claiming one algorithm is a programming error, not a
// runtime condition.
func Register(e Engine) {
	mu.Lock()
	defer mu.Unlock()
	name := e.Name()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("engine: duplicate registration of %q", name))
	}
	registry[name] = e
}

// Lookup returns the engine registered under name, or an error wrapping
// ErrUnknown listing the registered set.
func Lookup(name costmodel.Algorithm) (Engine, error) {
	mu.RLock()
	defer mu.RUnlock()
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("%w for algorithm %q (registered: %v)", ErrUnknown, name, namesLocked())
	}
	return e, nil
}

// Names returns the registered algorithm names in sorted order.
func Names() []costmodel.Algorithm {
	mu.RLock()
	defer mu.RUnlock()
	return namesLocked()
}

func namesLocked() []costmodel.Algorithm {
	out := make([]costmodel.Algorithm, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// GridDesc returns e's grid description when it implements GridDescriber,
// and "" otherwise.
func GridDesc(e Engine, n int, cfg Config) string {
	if d, ok := e.(GridDescriber); ok {
		return d.GridDesc(n, cfg)
	}
	return ""
}
