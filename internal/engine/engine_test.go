package engine

import (
	"errors"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/mat"
	"repro/internal/smpi"
)

type fakeEngine struct{ name costmodel.Algorithm }

func (f fakeEngine) Name() costmodel.Algorithm { return f.name }
func (f fakeEngine) Run(c *smpi.Comm, in *mat.Matrix, n int, cfg Config) (*mat.Matrix, []int, error) {
	return nil, nil, nil
}

func TestRegisterAndLookup(t *testing.T) {
	Register(fakeEngine{name: "test-lookup"})
	e, err := Lookup("test-lookup")
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != "test-lookup" {
		t.Fatalf("looked up %q", e.Name())
	}
	found := false
	for _, name := range Names() {
		if name == "test-lookup" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Names() missing registration: %v", Names())
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	Register(fakeEngine{name: "test-dup"})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(fakeEngine{name: "test-dup"})
}

func TestLookupUnknownWrapsErrUnknown(t *testing.T) {
	_, err := Lookup("no-such-engine")
	if err == nil || !errors.Is(err, ErrUnknown) {
		t.Fatalf("err = %v, want ErrUnknown", err)
	}
}

func TestGridDescOptional(t *testing.T) {
	if d := GridDesc(fakeEngine{name: "x"}, 64, Config{Ranks: 4}); d != "" {
		t.Fatalf("non-describer returned %q", d)
	}
}

func TestConfigMemoryFor(t *testing.T) {
	if m := (Config{Ranks: 8, Memory: 123}).MemoryFor(64); m != 123 {
		t.Fatalf("explicit memory not honored: %v", m)
	}
	want := costmodel.MaxMemoryParams(64, 8).M
	if m := (Config{Ranks: 8}).MemoryFor(64); m != want {
		t.Fatalf("default memory %v, want max-replication %v", m, want)
	}
}
