// Package all registers every in-tree factorization engine by importing
// the engine packages for their side effects. The public API and the bench
// harness import it blank; anything else that dispatches through the
// registry (tools, future services) can do the same without enumerating
// engine packages.
package all

import (
	_ "repro/internal/cholesky" // registers Cholesky
	_ "repro/internal/conflux"  // registers COnfLUX
	_ "repro/internal/lu25d"    // registers CANDMC
	_ "repro/internal/lu2d"     // registers LibSci and SLATE
)
