package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewAndAtSet(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || m.Stride != 4 {
		t.Fatalf("bad shape: %+v", m)
	}
	m.Set(2, 3, 7.5)
	if got := m.At(2, 3); got != 7.5 {
		t.Fatalf("At(2,3)=%v", got)
	}
	m.Add(2, 3, 0.5)
	if got := m.At(2, 3); got != 8 {
		t.Fatalf("after Add, At(2,3)=%v", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := New(2, 2)
	for _, f := range []func(){
		func() { m.At(2, 0) },
		func() { m.At(0, -1) },
		func() { m.Set(-1, 0, 1) },
		func() { m.View(1, 1, 2, 1) },
		func() { m.Row(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestViewAliases(t *testing.T) {
	m := New(4, 4)
	v := m.View(1, 1, 2, 2)
	v.Set(0, 0, 3)
	if m.At(1, 1) != 3 {
		t.Fatal("view does not alias parent")
	}
	if v.Rows != 2 || v.Cols != 2 || v.Stride != 4 {
		t.Fatalf("bad view shape %+v", v)
	}
	vv := v.View(1, 1, 1, 1)
	vv.Set(0, 0, 9)
	if m.At(2, 2) != 9 {
		t.Fatal("nested view broken")
	}
}

func TestPhantomSemantics(t *testing.T) {
	p := NewPhantom(3, 3)
	if !p.Phantom() {
		t.Fatal("not phantom")
	}
	p.Set(0, 0, 1) // dropped
	if p.At(0, 0) != 0 {
		t.Fatal("phantom reads nonzero")
	}
	v := p.View(1, 1, 2, 2)
	if !v.Phantom() || v.Rows != 2 {
		t.Fatalf("phantom view wrong: %+v", v)
	}
	if p.Pack() != nil {
		t.Fatal("phantom Pack must be nil")
	}
	c := p.Clone()
	if !c.Phantom() {
		t.Fatal("clone of phantom must be phantom")
	}
	// Cross-mode copies are no-ops, not panics.
	n := New(3, 3)
	n.Set(1, 1, 5)
	p.CopyFrom(n)
	n.CopyFrom(p)
	if n.At(1, 1) != 5 {
		t.Fatal("CopyFrom phantom overwrote numeric data")
	}
	n.Unpack(nil)
	if n.At(1, 1) != 5 {
		t.Fatal("Unpack(nil) overwrote numeric data")
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	m := Random(5, 7, 42)
	v := m.View(1, 2, 3, 4)
	packed := v.Pack()
	if len(packed) != 12 {
		t.Fatalf("packed len %d", len(packed))
	}
	out := New(3, 4)
	out.Unpack(packed)
	if MaxAbsDiff(out, cloneOf(v)) != 0 {
		t.Fatal("round trip mismatch")
	}
}

func cloneOf(m *Matrix) *Matrix { return m.Clone() }

func TestCloneIndependent(t *testing.T) {
	m := Random(3, 3, 1)
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("clone aliases original")
	}
}

func TestAddFromAndZero(t *testing.T) {
	a := Random(3, 3, 1)
	b := Random(3, 3, 2)
	want := New(3, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want.Set(i, j, a.At(i, j)+b.At(i, j))
		}
	}
	a.AddFrom(b)
	if MaxAbsDiff(a, want) != 0 {
		t.Fatal("AddFrom wrong")
	}
	a.Zero()
	if NormFro(a) != 0 {
		t.Fatal("Zero left data")
	}
}

func TestEyeAndNorms(t *testing.T) {
	id := Eye(4)
	if NormFro(id) != 2 {
		t.Fatalf("fro(I4)=%v", NormFro(id))
	}
	if NormInf(id) != 1 {
		t.Fatalf("inf(I4)=%v", NormInf(id))
	}
	m := New(2, 2)
	m.Set(0, 0, -3)
	m.Set(0, 1, 4)
	if NormInf(m) != 7 {
		t.Fatalf("inf=%v", NormInf(m))
	}
}

func TestPermuteRows(t *testing.T) {
	m := New(3, 2)
	for i := 0; i < 3; i++ {
		m.Set(i, 0, float64(i))
	}
	p := PermuteRows(m, []int{2, 0, 1})
	if p.At(0, 0) != 2 || p.At(1, 0) != 0 || p.At(2, 0) != 1 {
		t.Fatalf("bad permute:\n%v", p)
	}
}

func TestRNGDeterminismAndRange(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("rng not deterministic")
		}
	}
	g := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := g.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRandomPermIsPermutation(t *testing.T) {
	g := NewRNG(11)
	p := g.RandomPerm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRandomDiagDominant(t *testing.T) {
	m := RandomDiagDominant(8, 5)
	for i := 0; i < 8; i++ {
		var off float64
		for j := 0; j < 8; j++ {
			if i != j {
				off += math.Abs(m.At(i, j))
			}
		}
		if math.Abs(m.At(i, i)) <= off {
			t.Fatalf("row %d not dominant", i)
		}
	}
}

// Property: Pack/Unpack round-trips arbitrary shapes.
func TestQuickPackRoundTrip(t *testing.T) {
	f := func(r8, c8 uint8, seed uint64) bool {
		r, c := int(r8%16)+1, int(c8%16)+1
		m := Random(r, c, seed)
		out := New(r, c)
		out.Unpack(m.Pack())
		return MaxAbsDiff(m, out) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a view's Pack equals elementwise reads.
func TestQuickViewConsistency(t *testing.T) {
	f := func(seed uint64, i8, j8, r8, c8 uint8) bool {
		m := Random(12, 12, seed)
		i, j := int(i8%6), int(j8%6)
		r, c := int(r8%6)+1, int(c8%6)+1
		v := m.View(i, j, r, c)
		p := v.Pack()
		for x := 0; x < r; x++ {
			for y := 0; y < c; y++ {
				if p[x*c+y] != m.At(i+x, j+y) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
