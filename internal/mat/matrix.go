// Package mat provides dense row-major float64 matrices and the small set
// of structural operations (views, tiles, permutations, norms) that the
// linear-algebra kernels and the distributed LU implementations build on.
//
// A Matrix may be "phantom": it has dimensions but no backing data. Phantom
// matrices flow through the exact same code paths as numeric ones — the
// communication layer counts their bytes, and the compute kernels skip
// arithmetic. This is what lets the benchmark harness replay the paper-scale
// communication schedules (N = 16,384, P = 1,024) without paying O(N³) flops.
package mat

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix. Element (i,j) lives at Data[i*Stride+j].
// A nil Data with positive Rows/Cols denotes a phantom matrix.
type Matrix struct {
	Rows, Cols int
	Stride     int
	Data       []float64
}

// New allocates a zeroed r×c matrix. Inlinable, so a transient buffer whose
// header does not escape costs only its data slice.
func New(r, c int) *Matrix {
	if r|c < 0 {
		panic("mat: negative dimensions")
	}
	return &Matrix{Rows: r, Cols: c, Stride: c, Data: make([]float64, r*c)}
}

// NewPhantom creates an r×c matrix with no backing storage. Inlinable for
// the same reason as View: volume-mode engines create phantom scratch
// constantly, and a buffer consumed in-statement stays off the heap.
func NewPhantom(r, c int) *Matrix {
	if r|c < 0 {
		panic("mat: negative dimensions")
	}
	return &Matrix{Rows: r, Cols: c, Stride: c}
}

// FromSlice wraps row-major data (length r*c) without copying.
func FromSlice(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: FromSlice length %d != %d*%d", len(data), r, c))
	}
	return &Matrix{Rows: r, Cols: c, Stride: c, Data: data}
}

// Phantom reports whether the matrix has no backing data.
func (m *Matrix) Phantom() bool { return m.Data == nil }

// At returns element (i,j). Phantom matrices read as zero.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	if m.Data == nil {
		return 0
	}
	return m.Data[i*m.Stride+j]
}

// Set stores v at (i,j). Stores into phantom matrices are dropped.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	if m.Data == nil {
		return
	}
	m.Data[i*m.Stride+j] = v
}

// Add accumulates v into (i,j). No-op on phantom matrices.
func (m *Matrix) Add(i, j int, v float64) {
	m.check(i, j)
	if m.Data == nil {
		return
	}
	m.Data[i*m.Stride+j] += v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Row returns a slice aliasing row i. Panics on phantom matrices.
func (m *Matrix) Row(i int) []float64 {
	if m.Data == nil {
		panic("mat: Row on phantom matrix")
	}
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.Rows))
	}
	return m.Data[i*m.Stride : i*m.Stride+m.Cols]
}

// View returns a sub-matrix aliasing rows [i, i+r) and columns [j, j+c).
// A view of a phantom matrix is phantom with the requested shape.
//
// View is deliberately inlinable (the panic carries a constant message for
// exactly that reason — a formatted one costs more than the whole body):
// engines take views on both sides of nearly every tile copy, and when the
// view is consumed in-statement (CopyFrom, SendMat, a kernel call) escape
// analysis keeps the header on the caller's stack — at paper scale that
// removes the single largest allocation source of a schedule replay.
func (m *Matrix) View(i, j, r, c int) *Matrix {
	if i|j|r|c < 0 || i+r > m.Rows || j+c > m.Cols {
		panic("mat: view out of range")
	}
	stride, data := c, []float64(nil)
	if m.Data != nil {
		stride, data = m.Stride, m.Data[i*m.Stride+j:]
	}
	return &Matrix{Rows: r, Cols: c, Stride: stride, Data: data}
}

// Clone returns a compact deep copy (phantomness preserved).
func (m *Matrix) Clone() *Matrix {
	if m.Data == nil {
		return NewPhantom(m.Rows, m.Cols)
	}
	out := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i))
	}
	return out
}

// CopyFrom copies src into m (same shape required). Phantom on either side
// makes it a no-op, so numeric and volume modes share code paths.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("mat: CopyFrom shape %dx%d != %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	if m.Data == nil || src.Data == nil {
		return
	}
	for i := 0; i < m.Rows; i++ {
		copy(m.Row(i), src.Row(i))
	}
}

// Zero clears all elements.
func (m *Matrix) Zero() {
	if m.Data == nil {
		return
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = 0
		}
	}
}

// AddFrom accumulates src into m elementwise (same shape required).
func (m *Matrix) AddFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("mat: AddFrom shape %dx%d != %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	if m.Data == nil || src.Data == nil {
		return
	}
	for i := 0; i < m.Rows; i++ {
		dst, s := m.Row(i), src.Row(i)
		for j := range dst {
			dst[j] += s[j]
		}
	}
}

// Pack serializes the matrix contents into a compact row-major slice.
// Phantom matrices pack to nil (the length is still Rows*Cols for metering).
func (m *Matrix) Pack() []float64 {
	if m.Data == nil {
		return nil
	}
	return m.PackInto(make([]float64, m.Rows*m.Cols))
}

// PackInto serializes the matrix contents into dst, which must have length
// Rows*Cols, and returns dst — the allocation-free counterpart of Pack for
// callers that lease wire buffers (smpi's pooled SendMat). Phantom matrices
// return nil without touching dst.
func (m *Matrix) PackInto(dst []float64) []float64 {
	if m.Data == nil {
		return nil
	}
	n := m.Rows * m.Cols
	if len(dst) != n {
		panic(fmt.Sprintf("mat: PackInto buffer length %d != %d", len(dst), n))
	}
	if m.Stride == m.Cols {
		copy(dst, m.Data[:n])
		return dst
	}
	for i := 0; i < m.Rows; i++ {
		copy(dst[i*m.Cols:(i+1)*m.Cols], m.Row(i))
	}
	return dst
}

// Unpack fills the matrix from a compact row-major slice. nil data leaves a
// phantom/numeric matrix untouched (volume-mode receive).
func (m *Matrix) Unpack(data []float64) {
	if data == nil || m.Data == nil {
		return
	}
	if len(data) != m.Rows*m.Cols {
		panic(fmt.Sprintf("mat: Unpack length %d != %d", len(data), m.Rows*m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		copy(m.Row(i), data[i*m.Cols:(i+1)*m.Cols])
	}
}

// Len returns the element count Rows*Cols.
func (m *Matrix) Len() int { return m.Rows * m.Cols }

// Eye returns the n×n identity.
func Eye(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// MaxAbsDiff returns max |a(i,j)-b(i,j)|.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("mat: MaxAbsDiff shape mismatch")
	}
	var d float64
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if v := math.Abs(a.At(i, j) - b.At(i, j)); v > d {
				d = v
			}
		}
	}
	return d
}

// NormFro returns the Frobenius norm.
func NormFro(a *Matrix) float64 {
	var s float64
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			v := a.At(i, j)
			s += v * v
		}
	}
	return math.Sqrt(s)
}

// NormInf returns the max-row-sum norm.
func NormInf(a *Matrix) float64 {
	var best float64
	for i := 0; i < a.Rows; i++ {
		var s float64
		for j := 0; j < a.Cols; j++ {
			s += math.Abs(a.At(i, j))
		}
		if s > best {
			best = s
		}
	}
	return best
}

// PermuteRows returns a copy of a with row i taken from a's row perm[i].
func PermuteRows(a *Matrix, perm []int) *Matrix {
	if len(perm) != a.Rows {
		panic("mat: PermuteRows length mismatch")
	}
	out := New(a.Rows, a.Cols)
	for i, p := range perm {
		copy(out.Row(i), a.Row(p))
	}
	return out
}

// String renders small matrices for debugging.
func (m *Matrix) String() string {
	if m.Phantom() {
		return fmt.Sprintf("phantom %dx%d", m.Rows, m.Cols)
	}
	s := ""
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			s += fmt.Sprintf("%9.4f ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}
