package mat

// RNG is a small deterministic xorshift64* generator. The repository avoids
// math/rand so that every test, example, and benchmark is reproducible
// bit-for-bit across Go versions.
type RNG struct{ state uint64 }

// NewRNG seeds a generator. Seed 0 is remapped to a fixed non-zero value.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next raw value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0,n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mat: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Random fills an r×c matrix with uniform values in [-1, 1).
func Random(rows, cols int, seed uint64) *Matrix {
	g := NewRNG(seed)
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = 2*g.Float64() - 1
	}
	return m
}

// RandomDiagDominant returns a random matrix with a boosted diagonal, so LU
// with any reasonable pivoting is well conditioned.
func RandomDiagDominant(n int, seed uint64) *Matrix {
	m := Random(n, n, seed)
	for i := 0; i < n; i++ {
		m.Add(i, i, float64(n))
	}
	return m
}

// RandomPerm returns a uniformly random permutation of 0..n-1.
func (r *RNG) RandomPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
