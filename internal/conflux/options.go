// Package conflux implements COnfLUX (paper §7): a near communication
// optimal parallel LU factorization derived from X-Partitioning. The matrix
// is tiled with blocking parameter v and distributed block-cyclically over a
// [Pr, Pc, c] grid (Fig. 5). Layer 0 holds the matrix; layers 1..c-1 hold
// lazy Schur-update accumulators, so the true value of any element is the
// sum across the fiber. Per step (Algorithm 1):
//
//  1. the next block column is reduced across layers,
//  2. tournament pivoting over butterfly rounds selects v pivot rows
//     (row MASKING: pivot rows never move, paper §7.3),
//  3. the factored A00 and pivot indices are broadcast to all ranks,
//  4. pivot rows are reduced across layers and triangular-solved into A01,
//  5. the column panel is triangular-solved into A10,
//  6. both panels are sent to the consumers of the step's assigned layer,
//     which applies the Schur update into its accumulator.
//
// The per-rank I/O cost is N³/(P√M) + O(N²/P) elements (Lemma 10), a factor
// 3/2 over the paper's §6 lower bound 2N³/(3P√M).
package conflux

import (
	"math"

	"repro/internal/costmodel"
	"repro/internal/grid"
)

// Options configures a COnfLUX run.
type Options struct {
	Name string // phase-label prefix; defaults to "COnfLUX"
	N    int    // global matrix dimension
	V    int    // blocking parameter v (paper §7.2); v >= Layers required
	Grid grid.Grid
}

// DefaultOptions mirrors the paper's setup: local memory M elements per
// rank, replication c = min(PM/N², P^{1/3}), and the Processor Grid
// Optimization of §8, which may disable a minor fraction of ranks. The
// blocking parameter is v = a·c with a small constant a (paper §7.2),
// floored at 4 for kernel efficiency.
func DefaultOptions(n, p int, mem float64) Options {
	maxC := grid.MaxReplication(p, mem, n)
	g := grid.Optimize25D(p, maxC, 0.15, func(cand grid.Grid) float64 {
		return gridModelCost(n, cand)
	})
	v := 2 * g.Layers
	if v < 4 {
		v = 4
	}
	if v > n {
		v = n
	}
	return Options{Name: "COnfLUX", N: n, V: v, Grid: g}
}

// gridModelCost evaluates the COnfLUX per-rank cost model on a candidate
// grid: panel distribution N²/√(P'·c) scaled by layer squareness, plus the
// cross-layer reduction term (c−1)N²/P'.
func gridModelCost(n int, g grid.Grid) float64 {
	used := float64(g.Used())
	nn := float64(n) * float64(n)
	// Panel term: each consumer receives (N−tv)v/Pr + (N−tv)v/Pc per
	// assigned step; summing over steps gives N²/(2c)·(1/Pr+1/Pc).
	panel := nn / (2 * float64(g.Layers)) * (1/float64(g.Pr) + 1/float64(g.Pc))
	reduce := float64(g.Layers-1) * nn / used
	return panel + reduce
}

// ModelPerRankElements is the fitted cost model for THIS implementation
// (see DESIGN.md §4): the paper's leading term plus the explicit cross-layer
// reduction traffic that the paper folds into its lower-order terms.
func ModelPerRankElements(p costmodel.Params) float64 {
	n, pp := float64(p.N), float64(p.P)
	c := p.Replication()
	return n*n*n/(pp*math.Sqrt(p.M)) + (c-1)*n*n/pp + 2*n*n/pp
}
