package conflux

import (
	"fmt"

	"repro/internal/blas"
	"repro/internal/dist"
	"repro/internal/grid"
	"repro/internal/mat"
	"repro/internal/smpi"
)

// Result carries the factorization output. Perm is the pivot order:
// Perm[k] is the PHYSICAL row that became the k-th pivot (rows are never
// moved — COnfLUX masks instead of swapping). In numeric mode world rank 0
// additionally holds LU, the combined in-place factors in logical (pivot)
// row order, so A[Perm,:] = L·U.
type Result struct {
	Perm []int
	LU   *mat.Matrix
}

// Run executes COnfLUX on an existing world. The input matrix a is consulted
// at world rank 0 only (nil in volume mode). Ranks outside the optimized
// grid (opt.Grid.Used() ≤ world size) idle, exactly as the paper's Processor
// Grid Optimization "possibly disabl[es] a minor fraction of nodes".
func Run(c *smpi.Comm, a *mat.Matrix, opt Options) (*Result, error) {
	if opt.Name == "" {
		opt.Name = "COnfLUX"
	}
	if opt.V < opt.Grid.Layers {
		panic(fmt.Sprintf("conflux: v=%d must be at least the layer count c=%d (paper §7.2)", opt.V, opt.Grid.Layers))
	}
	if c.Size() != opt.Grid.Total {
		panic(fmt.Sprintf("conflux: world %d != grid total %d", c.Size(), opt.Grid.Total))
	}
	if c.WorldRank() >= opt.Grid.Used() {
		return &Result{}, nil // disabled rank
	}
	e := &engine{world: c, opt: opt}
	return e.run(a)
}

type engine struct {
	world *smpi.Comm
	opt   Options

	g               grid.Grid
	bc              grid.BlockCyclic
	row, col, layer int
	ac              *smpi.Comm // active ranks
	fiber           *smpi.Comm // my (row, col) fiber across layers
	tourn           *smpi.Comm // layer-0 column communicator (nil off layer 0)
	store           *dist.Store

	mask        []bool // mask[r]: physical row r not yet chosen as pivot
	perm        []int
	activeByRow [][]int // per-step cache: active rows per grid row

	// Per-step caches.
	a00    *mat.Matrix // factored w×w diagonal block (L00\U00)
	pivIDs []int       // this step's pivot rows in factor order
	a10    *mat.Matrix // consumer copy: L10 rows for my grid row
	a10IDs []int
	a01    *mat.Matrix // consumer copy: U01 for my grid-column tile cols
	a01Tjs []int
}

func (e *engine) run(a *mat.Matrix) (*Result, error) {
	e.g = e.opt.Grid
	e.bc = grid.BlockCyclic{G: e.g, V: e.opt.V, N: e.opt.N}
	e.row, e.col, e.layer = e.g.Coords(e.world.Rank())
	e.ac = e.world.Sub("active", e.g.ActiveComm())
	e.fiber = e.ac.Sub(fmt.Sprintf("fiber.%d.%d", e.row, e.col), e.g.FiberComm(e.row, e.col))
	if e.layer == 0 {
		e.tourn = e.ac.Sub(fmt.Sprintf("tourn.%d", e.col), e.g.ColComm(e.col, 0))
	}
	e.store = dist.NewStore(e.bc, e.row, e.col, e.layer, e.world.Payload())
	e.mask = make([]bool, e.opt.N)
	for i := range e.mask {
		e.mask[i] = true
	}
	e.activeByRow = nil // rebuilt from the fresh mask on first refresh
	if e.layer == 0 {
		dist.Scatter(e.world, 0, a, e.g, e.store)
	}

	nt := e.bc.Tiles()
	for t := 0; t < nt; t++ {
		e.refreshActive()
		stack, rows := e.reduceColumn(t)
		if err := e.tournament(t, stack, rows); err != nil {
			return nil, err
		}
		e.broadcastA00(t)
		e.retirePivots()
		e.refreshActive() // pivot rows left the active set
		e.factorizeA10(t, stack, rows)
		e.factorizeA01(t)
		e.update(t)
	}

	res := &Result{Perm: e.perm}
	if e.layer == 0 {
		var lu *mat.Matrix
		if e.world.Rank() == 0 {
			phys := mat.NewPhantom(e.opt.N, e.opt.N)
			if e.world.Payload() {
				phys = mat.New(e.opt.N, e.opt.N)
			}
			dist.Gather(e.world, 0, phys, e.g, e.store)
			if e.world.Payload() {
				lu = mat.PermuteRows(phys, e.perm)
			} else {
				lu = phys
			}
		} else {
			dist.Gather(e.world, 0, nil, e.g, e.store)
		}
		res.LU = lu
	}
	return res, nil
}

// refreshActive maintains the per-grid-row active lists; every consumer
// within a step reads the cache (the naive per-call scan was O(N·Pr) per
// step and dominated paper-scale volume runs). The mask only ever clears
// (rows retire as pivots, none return), so after the initial O(N) build
// each refresh just filters the surviving entries in place — O(active),
// which shrinks to nothing as the factorization drains the row set.
func (e *engine) refreshActive() {
	if e.activeByRow == nil {
		e.activeByRow = make([][]int, e.g.Pr)
		for r := 0; r < e.opt.N; r++ {
			if e.mask[r] {
				gr := (r / e.opt.V) % e.g.Pr
				e.activeByRow[gr] = append(e.activeByRow[gr], r)
			}
		}
		return
	}
	for gr, rows := range e.activeByRow {
		live := rows[:0]
		for _, r := range rows {
			if e.mask[r] {
				live = append(live, r)
			}
		}
		e.activeByRow[gr] = live
	}
}

// activeRowsInGridRow lists (ascending) the physical rows still active that
// live in grid row gr under the cyclic tile distribution.
func (e *engine) activeRowsInGridRow(gr int) []int {
	return e.activeByRow[gr]
}

// stackColumnRows copies the given physical rows of tile column t out of the
// local store into a dense stack.
func (e *engine) stackColumnRows(t int, rows []int) *mat.Matrix {
	_, w := e.bc.TileDims(t, t)
	stack := e.store.NewBuffer(len(rows), w)
	if e.store.Payload() {
		for i, r := range rows {
			ti := r / e.opt.V
			stack.View(i, 0, 1, w).CopyFrom(e.store.Tile(ti, t).View(r-ti*e.opt.V, 0, 1, w))
		}
	}
	return stack
}

// unstackColumnRows writes a stack back into tile column t.
func (e *engine) unstackColumnRows(t int, rows []int, stack *mat.Matrix) {
	if !e.store.Payload() {
		return
	}
	_, w := e.bc.TileDims(t, t)
	for i, r := range rows {
		ti := r / e.opt.V
		e.store.Tile(ti, t).View(r-ti*e.opt.V, 0, 1, w).CopyFrom(stack.View(i, 0, 1, w))
	}
}

// reduceColumn implements Algorithm 1 step 1 ("Reduce next block column"):
// the active rows of tile column t are summed across the c layers onto the
// layer-0 owners. Non-root layers zero their consumed contributions.
// Returns the reduced stack and its row list (meaningful on layer-0 owners).
func (e *engine) reduceColumn(t int) (*mat.Matrix, []int) {
	if e.col != e.bc.OwnerCol(t) {
		return nil, nil
	}
	e.ac.SetPhase(e.opt.Name + ".reduce-col")
	// Copy: the cache backing array is rewritten by the post-retire refresh,
	// but this list must stay valid through factorizeA10.
	rows := append([]int(nil), e.activeRowsInGridRow(e.row)...)
	if len(rows) == 0 {
		return nil, rows
	}
	stack := e.stackColumnRows(t, rows)
	e.fiber.ReduceMatSum(0, stack)
	if e.layer == 0 {
		e.unstackColumnRows(t, rows, stack)
		return stack, rows
	}
	// Contributions consumed: zero the accumulator entries.
	if e.store.Payload() {
		_, w := e.bc.TileDims(t, t)
		zero := mat.New(len(rows), w)
		e.unstackColumnRows(t, rows, zero)
	}
	return nil, nil
}

// tournament implements step 2 (TournPivot): local candidate selection by
// LU, then ⌈log₂ Pr⌉ butterfly "playoff" rounds exchanging w×w candidate
// blocks (paper §7.3), after which every participant holds the w winners and
// the factored A00.
func (e *engine) tournament(t int, stack *mat.Matrix, rows []int) error {
	e.pivIDs = nil
	e.a00 = nil
	if e.layer != 0 || e.col != e.bc.OwnerCol(t) {
		return nil
	}
	e.ac.SetPhase(e.opt.Name + ".pivot")
	_, w := e.bc.TileDims(t, t)
	local := lapackCandidates(stack, rows)
	win, err := selectCands(local, w)
	if err != nil {
		return err
	}
	res := e.tourn.Butterfly(encodeCands(win, w), func(mine, theirs smpi.Msg) smpi.Msg {
		merged := mergeCands(decodeCands(mine, w), decodeCands(theirs, w))
		next, err := selectCands(merged, w)
		if err != nil {
			panic(err) // converted to a run error by the runtime
		}
		return encodeCands(next, w)
	})
	winners := decodeCands(res, w)
	if len(winners.IDs) < w {
		return fmt.Errorf("conflux: only %d active rows for a %d-wide panel", len(winners.IDs), w)
	}
	a00, ids, err := factorA00(winners)
	if err != nil {
		return err
	}
	e.a00, e.pivIDs = a00, ids
	return nil
}

// broadcastA00 implements step 3: the factored A00 and the w pivot row
// indices are broadcast to all active ranks (cost v²+v per rank).
func (e *engine) broadcastA00(t int) {
	e.ac.SetPhase(e.opt.Name + ".bcast-a00")
	_, w := e.bc.TileDims(t, t)
	root := e.g.Rank(0, e.bc.OwnerCol(t), 0)
	if e.a00 == nil {
		e.a00 = e.store.NewBuffer(w, w)
	}
	e.ac.BcastMat(root, e.a00)
	e.pivIDs = e.ac.BcastInts(root, e.pivIDs)

	// Write A00 back into the layer-0 owners' tiles: the pivot rows' final
	// combined L00\U00 values.
	if e.layer == 0 && e.col == e.bc.OwnerCol(t) && e.store.Payload() {
		for i, r := range e.pivIDs {
			ti := r / e.opt.V
			if e.bc.OwnerRow(ti) == e.row {
				e.store.Tile(ti, t).View(r-ti*e.opt.V, 0, 1, w).CopyFrom(e.a00.View(i, 0, 1, w))
			}
		}
	}
}

// retirePivots applies the row mask (§7.3: "we keep track which rows were
// chosen as pivots and we use masks to update remaining rows").
func (e *engine) retirePivots() {
	for _, r := range e.pivIDs {
		if !e.mask[r] {
			panic(fmt.Sprintf("conflux: row %d pivoted twice", r))
		}
		e.mask[r] = false
	}
	e.perm = append(e.perm, e.pivIDs...)
}

// factorizeA10 implements steps 4/7/8 for the column panel: the still-active
// rows of the reduced block column are triangular-solved against U00 at the
// panel owners (see DESIGN.md: the 1D-parallel solve is volume-equivalent),
// written back as final L values, and sent to the assigned layer's consumer
// row (one broadcast per grid row).
func (e *engine) factorizeA10(t int, stack *mat.Matrix, rows []int) {
	e.ac.SetPhase(e.opt.Name + ".panel-a10")
	e.a10, e.a10IDs = nil, nil
	_, w := e.bc.TileDims(t, t)
	lstar := t % e.g.Layers
	ownerCol := e.bc.OwnerCol(t)

	// Every rank can compute every grid row's active list from the shared
	// mask; pivots were already retired above.
	for gr := 0; gr < e.g.Pr; gr++ {
		grRows := e.activeRowsInGridRow(gr)
		members, rootIdx := a10Members(e.g, gr, ownerCol, lstar)
		if !contains(members, e.world.Rank()) {
			continue
		}
		comm := e.ac.Sub(fmt.Sprintf("a10.%d.%d", t, gr), members)
		buf := e.store.NewBuffer(len(grRows), w)
		if e.g.Rank(gr, ownerCol, 0) == e.world.Rank() {
			// I am the owner: extract the active rows from the reduced
			// stack, solve, store the L values, and broadcast.
			if e.store.Payload() && stack != nil {
				idx := indexOf(rows)
				for i, r := range grRows {
					buf.View(i, 0, 1, w).CopyFrom(stack.View(idx[r], 0, 1, w))
				}
			}
			blas.TrsmUpperRight(e.a00, buf)
			e.unstackColumnRows(t, grRows, buf)
		}
		if len(grRows) > 0 {
			comm.BcastMat(rootIdx, buf)
		}
		if e.layer == lstar && e.row == gr {
			e.a10, e.a10IDs = buf, grRows
		}
	}
}

// a10Members returns the broadcast group for grid row gr: the layer-0 panel
// owner plus the assigned layer's consumer row, deduplicated, owner first.
func a10Members(g grid.Grid, gr, ownerCol, lstar int) (members []int, rootIdx int) {
	owner := g.Rank(gr, ownerCol, 0)
	members = append(make([]int, 0, g.Pc+1), owner)
	for y := 0; y < g.Pc; y++ {
		r := g.Rank(gr, y, lstar)
		if r != owner {
			members = append(members, r)
		}
	}
	return members, 0
}

func contains(list []int, v int) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}

func indexOf(rows []int) map[int]int {
	m := make(map[int]int, len(rows))
	for i, r := range rows {
		m[r] = i
	}
	return m
}
