package conflux

import (
	"fmt"

	"repro/internal/costmodel"
	engreg "repro/internal/engine"
	"repro/internal/mat"
	"repro/internal/smpi"
)

// confluxEngine adapts Run to the engine registry: the public API, the
// bench harness, and the CLI reach COnfLUX only through this registration.
type confluxEngine struct{}

func (confluxEngine) Name() costmodel.Algorithm { return costmodel.COnfLUX }

func (confluxEngine) Run(c *smpi.Comm, in *mat.Matrix, n int, cfg engreg.Config) (*mat.Matrix, []int, error) {
	res, err := Run(c, in, DefaultOptions(n, cfg.Ranks, cfg.MemoryFor(n)))
	if err != nil {
		return nil, nil, err
	}
	return res.LU, res.Perm, nil
}

func (confluxEngine) GridDesc(n int, cfg engreg.Config) string {
	g := DefaultOptions(n, cfg.Ranks, cfg.MemoryFor(n)).Grid
	return fmt.Sprintf("%dx%dx%d (%d used)", g.Pr, g.Pc, g.Layers, g.Used())
}

func init() { engreg.Register(confluxEngine{}) }
