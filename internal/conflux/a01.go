package conflux

import (
	"fmt"

	"repro/internal/blas"
	"repro/internal/grid"
	"repro/internal/mat"
)

// colLayout describes the tile columns tj > t owned by one grid column,
// with their offsets in the concatenated A01 stack.
type colLayout struct {
	tjs    []int
	offs   []int
	widths []int
	total  int
}

func (e *engine) colsAfter(y, t int) colLayout {
	tjs := e.bc.LocalTileCols(y, t+1)
	cl := colLayout{tjs: tjs, offs: make([]int, len(tjs)), widths: make([]int, len(tjs))}
	for i, tj := range tjs {
		_, w := e.bc.TileDims(tj, tj)
		cl.offs[i] = cl.total
		cl.widths[i] = w
		cl.total += w
	}
	return cl
}

// pivotGroups buckets this step's pivot rows by owning grid row, keeping the
// factor order within each bucket. Every rank computes the same grouping.
func (e *engine) pivotGroups() map[int][]int {
	groups := map[int][]int{}
	for _, r := range e.pivIDs {
		gr := (r / e.opt.V) % e.g.Pr
		groups[gr] = append(groups[gr], r)
	}
	return groups
}

// stackPivotSegments extracts the given pivot rows across the columns of cl
// from the local store.
func (e *engine) stackPivotSegments(rows []int, cl colLayout) *mat.Matrix {
	stack := e.store.NewBuffer(len(rows), cl.total)
	if !e.store.Payload() {
		return stack
	}
	for i, r := range rows {
		ti := r / e.opt.V
		lr := r - ti*e.opt.V
		for k, tj := range cl.tjs {
			stack.View(i, cl.offs[k], 1, cl.widths[k]).
				CopyFrom(e.store.Tile(ti, tj).View(lr, 0, 1, cl.widths[k]))
		}
	}
	return stack
}

// writePivotSegments stores a stack of pivot-row segments back into tiles.
func (e *engine) writePivotSegments(rows []int, cl colLayout, stack *mat.Matrix) {
	if !e.store.Payload() {
		return
	}
	for i, r := range rows {
		ti := r / e.opt.V
		lr := r - ti*e.opt.V
		for k, tj := range cl.tjs {
			e.store.Tile(ti, tj).View(lr, 0, 1, cl.widths[k]).
				CopyFrom(stack.View(i, cl.offs[k], 1, cl.widths[k]))
		}
	}
}

// factorizeA01 implements Algorithm 1 steps 5/6/9/10 for the pivot-row
// panel: reduce the w pivot rows across layers (step 5), assemble them per
// grid column, solve L00·U01 = A01 (step 9), write the U values back to
// their layer-0 owners, and broadcast the solved panel to the assigned
// layer's consumer column (step 10).
func (e *engine) factorizeA01(t int) {
	e.ac.SetPhase(e.opt.Name + ".panel-a01")
	e.a01, e.a01Tjs = nil, nil
	w := len(e.pivIDs)
	cl := e.colsAfter(e.col, t)
	groups := e.pivotGroups()
	lstar := t % e.g.Layers

	// Step 5: fiber reduction of my grid row's pivot segments.
	myRows := groups[e.row]
	var reduced *mat.Matrix
	if len(myRows) > 0 && cl.total > 0 {
		stack := e.stackPivotSegments(myRows, cl)
		e.fiber.ReduceMatSum(0, stack)
		if e.layer == 0 {
			reduced = stack
		} else if e.store.Payload() {
			e.writePivotSegments(myRows, cl, mat.New(len(myRows), cl.total))
		}
	}
	if cl.total == 0 {
		return
	}

	// Assemble the full w-row panel for my grid column at (0, y, 0).
	asmRank := e.g.Rank(0, e.col, 0)
	var asm *mat.Matrix
	const gatherTag, backTag = 101, 102
	if e.layer == 0 {
		if e.world.Rank() == asmRank {
			asm = e.store.NewBuffer(w, cl.total)
			idx := indexOf(e.pivIDs)
			for gr := 0; gr < e.g.Pr; gr++ {
				rows := groups[gr]
				if len(rows) == 0 {
					continue
				}
				part := e.store.NewBuffer(len(rows), cl.total)
				if e.g.Rank(gr, e.col, 0) == asmRank {
					if reduced != nil {
						part = reduced
					}
				} else {
					e.ac.RecvMat(acIndex(e.g, gr, e.col, 0), gatherTag+gr, part)
				}
				if e.store.Payload() {
					for i, r := range rows {
						asm.View(idx[r], 0, 1, cl.total).CopyFrom(part.View(i, 0, 1, cl.total))
					}
				}
			}
			// Step 9: FactorizeA01 (triangular solve against unit L00).
			blas.TrsmLowerLeft(e.a00, asm, true)
			// Write the solved U rows back to their owners.
			for gr := 0; gr < e.g.Pr; gr++ {
				rows := groups[gr]
				if len(rows) == 0 {
					continue
				}
				part := e.store.NewBuffer(len(rows), cl.total)
				if e.store.Payload() {
					for i, r := range rows {
						part.View(i, 0, 1, cl.total).CopyFrom(asm.View(idx[r], 0, 1, cl.total))
					}
				}
				if e.g.Rank(gr, e.col, 0) == asmRank {
					e.writePivotSegments(rows, cl, part)
				} else {
					e.ac.SendMat(acIndex(e.g, gr, e.col, 0), backTag+gr, part)
				}
			}
		} else if len(myRows) > 0 {
			e.ac.SendMat(acIndex(e.g, 0, e.col, 0), gatherTag+e.row, reduced)
			back := e.store.NewBuffer(len(myRows), cl.total)
			e.ac.RecvMat(acIndex(e.g, 0, e.col, 0), backTag+e.row, back)
			e.writePivotSegments(myRows, cl, back)
		}
	}

	// Step 10: broadcast the solved panel to the assigned layer's consumers.
	members, rootIdx := a01Members(e.g, e.col, lstar)
	if !contains(members, e.world.Rank()) {
		return
	}
	comm := e.ac.Sub(fmt.Sprintf("a01.%d.%d", t, e.col), members)
	buf := asm
	if buf == nil {
		buf = e.store.NewBuffer(w, cl.total)
	}
	comm.BcastMat(rootIdx, buf)
	if e.layer == lstar {
		e.a01, e.a01Tjs = buf, cl.tjs
	}
}

// a01Members returns the broadcast group for grid column y: the assembling
// rank (0, y, 0) plus the assigned layer's consumer column.
func a01Members(g grid.Grid, y, lstar int) (members []int, rootIdx int) {
	root := g.Rank(0, y, 0)
	members = []int{root}
	for x := 0; x < g.Pr; x++ {
		r := g.Rank(x, y, lstar)
		if r != root {
			members = append(members, r)
		}
	}
	return members, 0
}

// acIndex maps grid coordinates to the rank index within the active
// communicator (identical to the world rank for active ranks, since the
// active communicator lists world ranks 0..Used()-1 in order).
func acIndex(g grid.Grid, row, col, layer int) int {
	return g.Rank(row, col, layer)
}

// update implements step 11 (FactorizeA11): the assigned layer applies the
// Schur-complement update to its accumulator tiles, masked to active rows.
func (e *engine) update(t int) {
	e.ac.SetPhase(e.opt.Name + ".update")
	if e.layer != t%e.g.Layers || e.a01 == nil || e.a10 == nil || len(e.a10IDs) == 0 {
		return
	}
	w := len(e.pivIDs)
	cl := e.colsAfter(e.col, t)
	idx := indexOf(e.a10IDs)
	for _, ti := range e.bc.LocalTileRows(e.row, 0) {
		h, _ := e.bc.TileDims(ti, ti)
		tileL := e.store.NewBuffer(h, w)
		any := false
		for lr := 0; lr < h; lr++ {
			r := ti*e.opt.V + lr
			if r >= e.opt.N {
				break
			}
			if i, ok := idx[r]; ok {
				any = true
				if e.store.Payload() {
					tileL.View(lr, 0, 1, w).CopyFrom(e.a10.View(i, 0, 1, w))
				}
			}
		}
		if !any {
			continue
		}
		for k, tj := range cl.tjs {
			a01seg := e.a01.View(0, cl.offs[k], w, cl.widths[k])
			blas.Gemm(-1, tileL, a01seg, 1, e.store.Tile(ti, tj))
		}
	}
}
