package conflux

import (
	"testing"
	"time"

	"repro/internal/costmodel"
	"repro/internal/grid"
	"repro/internal/mat"
	"repro/internal/smpi"
	"repro/internal/testutil"
	"repro/internal/trace"
)

const testTimeout = 120 * time.Second

func gridFor(pr, pc, c, total int) grid.Grid {
	return grid.Grid{Pr: pr, Pc: pc, Layers: c, Total: total}
}

func factorNumeric(t *testing.T, n, v int, g grid.Grid, seed uint64) (*mat.Matrix, *Result, *trace.Report) {
	t.Helper()
	a := mat.RandomDiagDominant(n, seed)
	var res *Result
	rep, err := smpi.RunTimeout(g.Total, true, testTimeout, func(c *smpi.Comm) error {
		var in *mat.Matrix
		if c.Rank() == 0 {
			in = a
		}
		r, err := Run(c, in, Options{N: n, V: v, Grid: g})
		if c.Rank() == 0 {
			res = r
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return a, res, rep
}

func TestNumericSingleRank(t *testing.T) {
	a, res, _ := factorNumeric(t, 16, 4, gridFor(1, 1, 1, 1), 1)
	if err := testutil.IsPermutation(res.Perm, 16); err != nil {
		t.Fatalf("perm: %v", err)
	}
	if r := testutil.ResidualLUPerm(a, res.LU, res.Perm); r > 1e-12 {
		t.Fatalf("residual %v", r)
	}
}

func TestNumeric2DGrids(t *testing.T) {
	cases := []struct {
		n, v       int
		pr, pc, cc int
	}{
		{16, 4, 2, 2, 1},
		{32, 4, 2, 2, 1},
		{48, 8, 2, 3, 1},
		{64, 8, 4, 2, 1},
		{40, 8, 2, 2, 1}, // ragged last tile
		{33, 4, 3, 2, 1}, // very ragged
	}
	for _, tc := range cases {
		g := gridFor(tc.pr, tc.pc, tc.cc, tc.pr*tc.pc*tc.cc)
		a, res, _ := factorNumeric(t, tc.n, tc.v, g, uint64(tc.n)+7)
		if err := testutil.IsPermutation(res.Perm, tc.n); err != nil {
			t.Fatalf("%+v perm: %v", tc, err)
		}
		if r := testutil.ResidualLUPerm(a, res.LU, res.Perm); r > 1e-11 {
			t.Fatalf("%+v residual %v", tc, r)
		}
	}
}

func TestNumericLayered25D(t *testing.T) {
	// The heart of COnfLUX: c > 1 layers of lazy Schur accumulators.
	cases := []struct {
		n, v       int
		pr, pc, cc int
	}{
		{32, 4, 2, 2, 2},
		{48, 4, 2, 2, 3},
		{64, 8, 2, 2, 2},
		{64, 4, 2, 2, 4},
		{60, 4, 2, 3, 2}, // ragged + rectangular layers
	}
	for _, tc := range cases {
		g := gridFor(tc.pr, tc.pc, tc.cc, tc.pr*tc.pc*tc.cc)
		a, res, _ := factorNumeric(t, tc.n, tc.v, g, uint64(tc.n)*31+uint64(tc.cc))
		if r := testutil.ResidualLUPerm(a, res.LU, res.Perm); r > 1e-11 {
			t.Fatalf("%+v residual %v", tc, r)
		}
	}
}

func TestNumericGeneralMatrixNeedsPivoting(t *testing.T) {
	n, v := 48, 4
	g := gridFor(2, 2, 2, 8)
	a := mat.Random(n, n, 1234) // no diagonal dominance
	var res *Result
	_, err := smpi.RunTimeout(g.Total, true, testTimeout, func(c *smpi.Comm) error {
		var in *mat.Matrix
		if c.Rank() == 0 {
			in = a
		}
		r, err := Run(c, in, Options{N: n, V: v, Grid: g})
		if c.Rank() == 0 {
			res = r
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if r := testutil.ResidualLUPerm(a, res.LU, res.Perm); r > 1e-9 {
		t.Fatalf("residual %v", r)
	}
}

func TestDisabledRanksIdle(t *testing.T) {
	// Grid uses 4 of 5 ranks; the 5th must return immediately and the
	// result must still be correct.
	n, v := 32, 4
	g := grid.Grid{Pr: 2, Pc: 2, Layers: 1, Total: 5}
	a := mat.RandomDiagDominant(n, 3)
	var res *Result
	_, err := smpi.RunTimeout(5, true, testTimeout, func(c *smpi.Comm) error {
		var in *mat.Matrix
		if c.Rank() == 0 {
			in = a
		}
		r, err := Run(c, in, Options{N: n, V: v, Grid: g})
		if c.Rank() == 0 {
			res = r
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if r := testutil.ResidualLUPerm(a, res.LU, res.Perm); r > 1e-11 {
		t.Fatalf("residual %v", r)
	}
}

func TestRowMaskingNeverMovesRows(t *testing.T) {
	// Perm must be a permutation and pivot rows must be spread (tournament
	// picks the numerically largest rows, which for this seeded matrix are
	// not the identity order).
	_, res, _ := factorNumeric(t, 32, 4, gridFor(2, 2, 1, 4), 99)
	if err := testutil.IsPermutation(res.Perm, 32); err != nil {
		t.Fatal(err)
	}
}

func runVolume(t *testing.T, n, v int, g grid.Grid) *trace.Report {
	t.Helper()
	rep, err := smpi.RunTimeout(g.Total, false, testTimeout, func(c *smpi.Comm) error {
		_, err := Run(c, nil, Options{N: n, V: v, Grid: g})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func algoBytes(rep *trace.Report) int64 {
	return rep.AlgorithmBytes(trace.PhaseLayout, trace.PhaseCollect)
}

func TestVolumeModeCloseToNumeric(t *testing.T) {
	n, v := 48, 4
	g := gridFor(2, 2, 2, 8)
	_, _, repN := factorNumeric(t, n, v, g, 11)
	repV := runVolume(t, n, v, g)
	rn, rv := algoBytes(repN), algoBytes(repV)
	ratio := float64(rv) / float64(rn)
	if ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("volume-mode %d vs numeric %d (ratio %.3f)", rv, rn, ratio)
	}
}

func TestVolumeBeats2DLawAtScale(t *testing.T) {
	// Strong-scaling shape: with replication (c=4), per-rank COnfLUX volume
	// must drop faster than the 2D 1/√P law when P quadruples.
	n := 256
	repA := runVolume(t, n, 4, gridFor(2, 2, 4, 16))
	repB := runVolume(t, n, 4, gridFor(4, 4, 4, 64))
	perA := float64(algoBytes(repA)) / 16
	perB := float64(algoBytes(repB)) / 64
	if perB >= perA {
		t.Fatalf("per-rank volume did not shrink: %.0f -> %.0f", perA, perB)
	}
}

func TestVolumeNearFittedModel(t *testing.T) {
	n, p := 256, 16
	g := gridFor(2, 2, 4, p)
	rep := runVolume(t, n, 4, g)
	meas := float64(algoBytes(rep)) / float64(p) / trace.BytesPerElement
	params := costmodel.Params{N: n, P: p, M: float64(n) * float64(n) * 4 / float64(p)}
	model := ModelPerRankElements(params)
	ratio := meas / model
	if ratio < 0.3 || ratio > 3 {
		t.Fatalf("measured %.0f vs fitted model %.0f elements/rank (ratio %.2f)", meas, model, ratio)
	}
}

func TestSingularReported(t *testing.T) {
	n, v := 16, 4
	g := gridFor(2, 2, 1, 4)
	_, err := smpi.RunTimeout(4, true, testTimeout, func(c *smpi.Comm) error {
		var in *mat.Matrix
		if c.Rank() == 0 {
			in = mat.New(n, n) // zero matrix
		}
		_, err := Run(c, in, Options{N: n, V: v, Grid: g})
		return err
	})
	if err == nil {
		t.Fatal("expected singular failure")
	}
}

func TestDefaultOptionsRespectConstraints(t *testing.T) {
	for _, p := range []int{1, 4, 7, 8, 64, 1000, 1024} {
		n := 1024
		mem := float64(n) * float64(n) // huge memory -> c = P^{1/3}
		opt := DefaultOptions(n, p, mem)
		if opt.V < opt.Grid.Layers {
			t.Fatalf("p=%d: v=%d < c=%d", p, opt.V, opt.Grid.Layers)
		}
		if !opt.Grid.Valid() || opt.Grid.Used() > p {
			t.Fatalf("p=%d: invalid grid %+v", p, opt.Grid)
		}
		if used := opt.Grid.Used(); float64(used) < 0.85*float64(p) {
			t.Fatalf("p=%d: grid wastes too much (%d used)", p, used)
		}
	}
}

func TestVBelowLayersPanics(t *testing.T) {
	_, err := smpi.RunTimeout(8, false, testTimeout, func(c *smpi.Comm) error {
		_, err := Run(c, nil, Options{N: 32, V: 1, Grid: gridFor(2, 2, 2, 8)})
		return err
	})
	if err == nil {
		t.Fatal("expected v >= c constraint panic")
	}
}

// Property: random small configurations (grid shape, layers, block size,
// matrix size, raggedness) all factor correctly.
func TestQuickRandomConfigurations(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	g := mat.NewRNG(2027)
	for i := 0; i < 20; i++ {
		pr := 1 + g.Intn(3)
		pc := 1 + g.Intn(3)
		cc := 1 + g.Intn(3)
		v := 2 + g.Intn(5)
		if v < cc {
			v = cc
		}
		n := v*(2+g.Intn(5)) + g.Intn(v) // often ragged
		if n < 2*v {
			n = 2 * v
		}
		gr := gridFor(pr, pc, cc, pr*pc*cc)
		a, res, _ := factorNumeric(t, n, v, gr, uint64(i)*1297+5)
		if err := testutil.IsPermutation(res.Perm, n); err != nil {
			t.Fatalf("cfg %d (n=%d v=%d %dx%dx%d): %v", i, n, v, pr, pc, cc, err)
		}
		if r := testutil.ResidualLUPerm(a, res.LU, res.Perm); r > 1e-10 {
			t.Fatalf("cfg %d (n=%d v=%d %dx%dx%d): residual %v", i, n, v, pr, pc, cc, r)
		}
	}
}

func TestPhaseBreakdownPresent(t *testing.T) {
	rep := runVolume(t, 64, 4, gridFor(2, 2, 2, 8))
	for _, ph := range []string{"COnfLUX.pivot", "COnfLUX.bcast-a00", "COnfLUX.panel-a10", "COnfLUX.panel-a01"} {
		if rep.ByPhase[ph] == 0 {
			t.Fatalf("phase %s not metered: %v", ph, rep.ByPhase)
		}
	}
}
