package conflux

import (
	"repro/internal/lapack"
	"repro/internal/mat"
	"repro/internal/smpi"
)

// The tournament exchanges candidate sets: a block of up to w rows plus
// their physical row IDs, metered at rows·w + len(IDs) elements per message
// (the paper's "exchange v×v blocks" plus pivot indices).

func lapackCandidates(stack *mat.Matrix, rows []int) lapack.Candidates {
	if stack == nil {
		return lapack.Candidates{Rows: mat.New(0, 0), IDs: nil}
	}
	return lapack.Candidates{Rows: stack, IDs: rows}
}

func selectCands(c lapack.Candidates, w int) (lapack.Candidates, error) {
	if c.Rows.Rows == 0 {
		return c, nil
	}
	return lapack.SelectCandidates(c, w)
}

func mergeCands(a, b lapack.Candidates) lapack.Candidates {
	if a.Rows.Rows == 0 {
		return b
	}
	if b.Rows.Rows == 0 {
		return a
	}
	return lapack.MergeCandidates(a, b)
}

func factorA00(winners lapack.Candidates) (*mat.Matrix, []int, error) {
	return lapack.FactorA00(winners)
}

func encodeCands(c lapack.Candidates, w int) smpi.Msg {
	n := c.Rows.Rows*w + len(c.IDs)
	return smpi.Msg{F: c.Rows.Pack(), I: append([]int(nil), c.IDs...), N: n}
}

func decodeCands(m smpi.Msg, w int) lapack.Candidates {
	rows := len(m.I)
	var block *mat.Matrix
	if m.F != nil {
		block = mat.FromSlice(rows, w, m.F)
	} else {
		block = mat.NewPhantom(rows, w)
	}
	return lapack.Candidates{Rows: block, IDs: m.I}
}
