package dist

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/mat"
	"repro/internal/smpi"
	"repro/internal/trace"
)

// Collective tag space: one tag per tile, tag = ti·Tiles + tj. Tags stay far
// below smpi's collective tag base as long as Tiles² < 2³⁰, i.e. for every
// matrix the harness can represent; checkTileTags enforces it.
func tileTag(bc grid.BlockCyclic, ti, tj int) int { return ti*bc.Tiles() + tj }

func checkTileTags(bc grid.BlockCyclic) {
	nt := bc.Tiles()
	if nt*nt >= 1<<30 {
		panic(fmt.Sprintf("dist: %d×%d tiles exhaust the point-to-point tag space", nt, nt))
	}
}

// checkGrid guards against a caller passing a grid other than the one the
// store's ownership map is built on — the mismatch would silently route
// tiles to the wrong ranks and hang the collective.
func checkGrid(g grid.Grid, s *Store) {
	if g != s.bc.G {
		panic(fmt.Sprintf("dist: collective grid %+v != store grid %+v", g, s.bc.G))
	}
}

// Scatter distributes root's full matrix a into the block-cyclic stores of
// the participating ranks: tile (ti, tj) goes to the rank at grid position
// (OwnerRow(ti), OwnerCol(tj)) on the STORE's layer. It is a collective over
// the root plus every rank of that layer; c must be the world communicator
// (communicator ranks = grid ranks). a is consulted at root only and may be
// nil or phantom — the sends then carry counts without payload, which is
// exactly volume mode. Traffic is labeled trace.PhaseLayout so the harness
// can exclude it from algorithm-attributed volume.
func Scatter(c *smpi.Comm, root int, a *mat.Matrix, g grid.Grid, s *Store) {
	checkGrid(g, s)
	checkTileTags(s.bc)
	prev := c.Phase()
	defer c.SetPhase(prev) // only the collective's own traffic is "layout"
	c.SetPhase(trace.PhaseLayout)
	v, n, nt := s.bc.V, s.bc.N, s.bc.Tiles()
	if c.Rank() == root {
		if a != nil && (a.Rows != n || a.Cols != n) {
			panic(fmt.Sprintf("dist: Scatter matrix %dx%d != global dimension %d", a.Rows, a.Cols, n))
		}
		for ti := 0; ti < nt; ti++ {
			for tj := 0; tj < nt; tj++ {
				r, w := s.bc.TileDims(ti, tj)
				var src *mat.Matrix
				if a != nil {
					src = a.View(ti*v, tj*v, r, w)
				} else {
					src = mat.NewPhantom(r, w)
				}
				if owner := s.bc.Owner(ti, tj, s.layer); owner != root {
					c.SendMat(owner, tileTag(s.bc, ti, tj), src)
				} else {
					s.Tile(ti, tj).CopyFrom(src) // local placement, not network traffic
				}
			}
		}
		return
	}
	s.eachOwnedTile(func(ti, tj int) {
		c.RecvMat(root, tileTag(s.bc, ti, tj), s.Tile(ti, tj))
	})
}

// Gather collects the stores' tiles back into dst at root — the inverse of
// Scatter, with the same participation rule (root plus every rank of the
// store's layer, on the world communicator). dst is consulted at root only;
// nil (the non-root convention) or phantom dst still drains and meters every
// message, so numeric and volume runs keep identical schedules. Traffic is
// labeled trace.PhaseCollect.
func Gather(c *smpi.Comm, root int, dst *mat.Matrix, g grid.Grid, s *Store) {
	checkGrid(g, s)
	checkTileTags(s.bc)
	prev := c.Phase()
	defer c.SetPhase(prev) // only the collective's own traffic is "collect"
	c.SetPhase(trace.PhaseCollect)
	v, n, nt := s.bc.V, s.bc.N, s.bc.Tiles()
	if c.Rank() != root {
		s.eachOwnedTile(func(ti, tj int) {
			c.SendMat(root, tileTag(s.bc, ti, tj), s.Tile(ti, tj))
		})
		return
	}
	if dst != nil && (dst.Rows != n || dst.Cols != n) {
		panic(fmt.Sprintf("dist: Gather matrix %dx%d != global dimension %d", dst.Rows, dst.Cols, n))
	}
	for ti := 0; ti < nt; ti++ {
		for tj := 0; tj < nt; tj++ {
			r, w := s.bc.TileDims(ti, tj)
			var out *mat.Matrix
			if dst != nil {
				out = dst.View(ti*v, tj*v, r, w)
			} else {
				out = mat.NewPhantom(r, w)
			}
			if owner := s.bc.Owner(ti, tj, s.layer); owner != root {
				c.RecvMat(owner, tileTag(s.bc, ti, tj), out)
			} else {
				out.CopyFrom(s.Tile(ti, tj))
			}
		}
	}
}
