package dist_test

import (
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/grid"
	"repro/internal/mat"
	"repro/internal/smpi"
	"repro/internal/trace"
)

// roundTrip scatters a (random in payload mode, nil in volume mode) matrix
// from rank 0 across the layer-0 stores of g and gathers it back, returning
// the volume report and the gathered matrix. Non-zero layers and disabled
// ranks sit out, exactly as the engines use the collectives.
func roundTrip(t *testing.T, g grid.Grid, n, v int, payload bool) (*trace.Report, *mat.Matrix) {
	t.Helper()
	bc := grid.BlockCyclic{G: g, V: v, N: n}
	var src, got *mat.Matrix
	if payload {
		src = mat.Random(n, n, 0xD157)
	}
	rep, err := smpi.Run(g.Total, payload, func(c *smpi.Comm) error {
		if c.Rank() >= g.Used() {
			return nil
		}
		row, col, layer := g.Coords(c.Rank())
		s := dist.NewStore(bc, row, col, layer, c.Payload())
		if layer != 0 {
			return nil
		}
		var a *mat.Matrix
		if c.Rank() == 0 {
			a = src
		}
		c.SetPhase("caller-phase")
		dist.Scatter(c, 0, a, g, s)
		if ph := c.Phase(); ph != "caller-phase" {
			t.Errorf("rank %d: Scatter left phase %q, want caller's restored", c.Rank(), ph)
		}
		if !payload {
			// Volume mode must allocate no payload: every tile is phantom.
			for _, ti := range bc.LocalTileRows(row, 0) {
				for _, tj := range bc.LocalTileCols(col, 0) {
					if !s.Tile(ti, tj).Phantom() {
						t.Errorf("rank %d: tile (%d,%d) carries payload in volume mode", c.Rank(), ti, tj)
					}
				}
			}
		}
		var dst *mat.Matrix
		if c.Rank() == 0 {
			if payload {
				dst = mat.New(n, n)
			} else {
				dst = mat.NewPhantom(n, n)
			}
		}
		dist.Gather(c, 0, dst, g, s)
		if ph := c.Phase(); ph != "caller-phase" {
			t.Errorf("rank %d: Gather left phase %q, want caller's restored", c.Rank(), ph)
		}
		if c.Rank() == 0 {
			got = dst
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if payload {
		if got == nil {
			t.Fatal("no matrix gathered at rank 0")
		}
		if d := mat.MaxAbsDiff(src, got); d != 0 {
			t.Fatalf("round trip not exact: max |diff| = %v", d)
		}
	}
	return rep, got
}

// housekeepingBytes returns the bytes Scatter (and, symmetrically, Gather)
// must meter: every tile whose layer-0 owner is not rank 0, at 8 bytes per
// element.
func housekeepingBytes(bc grid.BlockCyclic, g grid.Grid) int64 {
	var total int64
	nt := bc.Tiles()
	for ti := 0; ti < nt; ti++ {
		for tj := 0; tj < nt; tj++ {
			if g.Rank(bc.OwnerRow(ti), bc.OwnerCol(tj), 0) == 0 {
				continue
			}
			r, w := bc.TileDims(ti, tj)
			total += int64(r*w) * trace.BytesPerElement
		}
	}
	return total
}

// The property: Scatter→Gather is the identity at rank 0 and meters exactly
// the off-root tile bytes under PhaseLayout/PhaseCollect, across 2D grids,
// 2.5D grids (Layers > 1), grids with disabled ranks, uneven edge tiles, and
// both payload modes.
func TestScatterGatherRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		g    grid.Grid
		n, v int
	}{
		{"2x2-even", grid.Grid{Pr: 2, Pc: 2, Layers: 1, Total: 4}, 16, 4},
		{"2x3-uneven-edge", grid.Grid{Pr: 2, Pc: 3, Layers: 1, Total: 6}, 13, 4},
		{"1x1-single", grid.Grid{Pr: 1, Pc: 1, Layers: 1, Total: 1}, 7, 3},
		{"2x2x2-25d", grid.Grid{Pr: 2, Pc: 2, Layers: 2, Total: 8}, 12, 4},
		{"2x2x3-25d-uneven", grid.Grid{Pr: 2, Pc: 2, Layers: 3, Total: 12}, 17, 5},
		{"3x3-disabled-ranks", grid.Grid{Pr: 3, Pc: 3, Layers: 1, Total: 11}, 10, 3},
		{"tile-larger-than-n", grid.Grid{Pr: 2, Pc: 2, Layers: 1, Total: 4}, 3, 8},
	}
	for _, tc := range cases {
		for _, payload := range []bool{true, false} {
			name := tc.name + "/volume"
			if payload {
				name = tc.name + "/numeric"
			}
			t.Run(name, func(t *testing.T) {
				rep, _ := roundTrip(t, tc.g, tc.n, tc.v, payload)
				bc := grid.BlockCyclic{G: tc.g, V: tc.v, N: tc.n}
				want := housekeepingBytes(bc, tc.g)
				if got := rep.ByPhase[trace.PhaseLayout]; got != want {
					t.Errorf("layout bytes = %d, want %d", got, want)
				}
				if got := rep.ByPhase[trace.PhaseCollect]; got != want {
					t.Errorf("collect bytes = %d, want %d", got, want)
				}
				if tc.g.Used() > 1 && bc.Tiles() > 1 && want == 0 {
					t.Fatalf("degenerate case: no off-root tiles to meter")
				}
			})
		}
	}
}

// Volume mode and numeric mode must meter identical housekeeping bytes — the
// central phantom-payload invariant, at the dist layer.
func TestVolumeNumericParity(t *testing.T) {
	g := grid.Grid{Pr: 2, Pc: 3, Layers: 2, Total: 12}
	numeric, _ := roundTrip(t, g, 19, 4, true)
	volume, _ := roundTrip(t, g, 19, 4, false)
	for _, ph := range []string{trace.PhaseLayout, trace.PhaseCollect} {
		if numeric.ByPhase[ph] != volume.ByPhase[ph] {
			t.Errorf("%s: numeric %d bytes vs volume %d", ph, numeric.ByPhase[ph], volume.ByPhase[ph])
		}
		if volume.ByPhase[ph] == 0 {
			t.Errorf("%s: volume mode metered zero bytes", ph)
		}
	}
}

func TestTileLazyAllocation(t *testing.T) {
	g := grid.Grid{Pr: 2, Pc: 2, Layers: 2, Total: 8}
	bc := grid.BlockCyclic{G: g, V: 4, N: 13}
	s := dist.NewStore(bc, 0, 1, 1, true)
	if s.Allocated() != 0 {
		t.Fatalf("fresh store allocated %d tiles", s.Allocated())
	}
	tile := s.Tile(0, 1)
	if r, w := tile.Rows, tile.Cols; r != 4 || w != 4 {
		t.Fatalf("tile (0,1) is %dx%d, want 4x4", r, w)
	}
	// Edge tile: column 3 is cut short by N=13 (13 - 3·4 = 1).
	edge := s.Tile(2, 3)
	if r, w := edge.Rows, edge.Cols; r != 4 || w != 1 {
		t.Fatalf("edge tile (2,3) is %dx%d, want 4x1", r, w)
	}
	if got := s.Allocated(); got != 2 {
		t.Fatalf("allocated %d tiles, want 2", got)
	}
	if s.Tile(0, 1) != tile {
		t.Fatal("second access did not return the same tile")
	}
	if tile.At(1, 2) != 0 {
		t.Fatal("lazily allocated tile is not zeroed")
	}
	tile.Set(1, 2, 5)
	if s.Tile(0, 1).At(1, 2) != 5 {
		t.Fatal("tile writes not persistent")
	}
}

// TestFlatStoreIndexBijective pins the flat-slice index math of the store:
// across every grid position, materializing all owned tiles yields exactly
// ceil-distributed counts, pairwise-distinct tile objects with the right
// dimensions, and stable identity on re-access. Any collision in the
// (ti/Pr, tj/Pc) flattening would surface here as shared or misshapen tiles.
func TestFlatStoreIndexBijective(t *testing.T) {
	for _, g := range []grid.Grid{
		{Pr: 2, Pc: 3, Layers: 1, Total: 6},
		{Pr: 3, Pc: 2, Layers: 2, Total: 12},
		{Pr: 1, Pc: 1, Layers: 1, Total: 1},
		{Pr: 5, Pc: 4, Layers: 1, Total: 20}, // more grid rows than edge tiles
	} {
		for _, n := range []int{1, 7, 13, 16} {
			bc := grid.BlockCyclic{G: g, V: 4, N: n}
			for row := 0; row < g.Pr; row++ {
				for col := 0; col < g.Pc; col++ {
					s := dist.NewStore(bc, row, col, 0, true)
					seen := map[*mat.Matrix]bool{}
					count := 0
					for _, ti := range bc.LocalTileRows(row, 0) {
						for _, tj := range bc.LocalTileCols(col, 0) {
							tile := s.Tile(ti, tj)
							if seen[tile] {
								t.Fatalf("grid %+v n=%d pos (%d,%d): tile (%d,%d) aliases another tile", g, n, row, col, ti, tj)
							}
							seen[tile] = true
							wr, wc := bc.TileDims(ti, tj)
							if tile.Rows != wr || tile.Cols != wc {
								t.Fatalf("tile (%d,%d) is %dx%d, want %dx%d", ti, tj, tile.Rows, tile.Cols, wr, wc)
							}
							if s.Tile(ti, tj) != tile {
								t.Fatalf("tile (%d,%d) identity not stable", ti, tj)
							}
							count++
						}
					}
					if got := s.Allocated(); got != count {
						t.Fatalf("grid %+v n=%d pos (%d,%d): Allocated() = %d, want %d", g, n, row, col, got, count)
					}
				}
			}
		}
	}
}

// TestPhantomStoreAllocatesNoPayload re-pins the lazy/volume-mode contract
// after the flat-slice change: a fresh volume-mode store reports zero
// materialized tiles, materialization is per-tile (not whole-grid), and no
// tile it ever hands out carries backing data.
func TestPhantomStoreAllocatesNoPayload(t *testing.T) {
	g := grid.Grid{Pr: 2, Pc: 2, Layers: 1, Total: 4}
	bc := grid.BlockCyclic{G: g, V: 4, N: 19} // 5 tiles: uneven local grids
	s := dist.NewStore(bc, 1, 0, 0, false)
	if s.Allocated() != 0 {
		t.Fatalf("fresh store allocated %d tiles", s.Allocated())
	}
	first := s.Tile(1, 0)
	if !first.Phantom() {
		t.Fatal("volume-mode tile carries payload")
	}
	if s.Allocated() != 1 {
		t.Fatalf("one access materialized %d tiles, want exactly 1 (lazy per tile)", s.Allocated())
	}
	for _, ti := range bc.LocalTileRows(1, 0) {
		for _, tj := range bc.LocalTileCols(0, 0) {
			if !s.Tile(ti, tj).Phantom() {
				t.Fatalf("tile (%d,%d) carries payload in volume mode", ti, tj)
			}
		}
	}
}

func TestNewBufferRespectsPayloadMode(t *testing.T) {
	bc := grid.BlockCyclic{G: grid.Grid{Pr: 1, Pc: 1, Layers: 1, Total: 1}, V: 4, N: 8}
	numeric := dist.NewStore(bc, 0, 0, 0, true)
	if !numeric.Payload() || numeric.NewBuffer(3, 5).Phantom() {
		t.Fatal("numeric store must hand out numeric buffers")
	}
	volume := dist.NewStore(bc, 0, 0, 0, false)
	if volume.Payload() || !volume.NewBuffer(3, 5).Phantom() {
		t.Fatal("volume store must hand out phantom buffers")
	}
	if b := volume.NewBuffer(3, 5); b.Rows != 3 || b.Cols != 5 {
		t.Fatalf("buffer is %dx%d, want 3x5", b.Rows, b.Cols)
	}
}

func TestForeignTilePanics(t *testing.T) {
	g := grid.Grid{Pr: 2, Pc: 2, Layers: 1, Total: 4}
	bc := grid.BlockCyclic{G: g, V: 4, N: 16}
	s := dist.NewStore(bc, 0, 0, 0, true)
	if s.Owns(0, 1) {
		t.Fatal("store (0,0) must not own tile column 1")
	}
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("accessing a foreign tile did not panic")
		}
		if msg, ok := rec.(string); !ok || !strings.Contains(msg, "belongs to") {
			t.Fatalf("unexpected panic: %v", rec)
		}
	}()
	s.Tile(0, 1) // owned by grid position (0,1)
}

// A collective invoked with a grid other than the store's must panic rather
// than silently routing tiles to the wrong ranks.
func TestGridMismatchPanics(t *testing.T) {
	g := grid.Grid{Pr: 2, Pc: 2, Layers: 1, Total: 4}
	bc := grid.BlockCyclic{G: g, V: 4, N: 8}
	other := grid.Grid{Pr: 4, Pc: 1, Layers: 1, Total: 4}
	_, err := smpi.Run(1, true, func(c *smpi.Comm) error {
		defer func() {
			if recover() == nil {
				t.Error("Scatter with a mismatched grid did not panic")
			}
		}()
		dist.Scatter(c, 0, nil, other, dist.NewStore(bc, 0, 0, 0, true))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Non-zero replication layers start as zero accumulators: a gather after
// layer-1 writes must see only what layer 0 holds, and the layer-1 store's
// tiles read zero until written.
func TestNonZeroLayerIsZeroAccumulator(t *testing.T) {
	g := grid.Grid{Pr: 1, Pc: 1, Layers: 2, Total: 2}
	bc := grid.BlockCyclic{G: g, V: 4, N: 4}
	s := dist.NewStore(bc, 0, 0, 1, true)
	if got := s.Tile(0, 0).At(2, 2); got != 0 {
		t.Fatalf("accumulator reads %v, want 0", got)
	}
	s.Tile(0, 0).Add(2, 2, 7)
	if got := s.Tile(0, 0).At(2, 2); got != 7 {
		t.Fatalf("accumulator reads %v after Add, want 7", got)
	}
}
