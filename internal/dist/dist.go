// Package dist is the distributed-matrix store shared by all four LU/Cholesky
// engines: each rank holds the tiles it owns under a block-cyclic ownership
// map (grid.BlockCyclic), and the package's two collectives move tiles
// between rank 0's full matrix and the owner ranks.
//
// The store sits between grid/smpi and the engines. It inherits the world's
// payload mode: in numeric mode tiles carry real float64 data; in volume mode
// tiles are phantom (dimensions only), so the store allocates no payload
// memory while the collectives still meter the exact bytes the paper's
// methodology counts (§8). Scatter traffic is labeled trace.PhaseLayout and
// Gather traffic trace.PhaseCollect, which is how the harness excludes the
// housekeeping phases from algorithm-attributed volume: the paper "assume[s]
// that the input matrix A is already distributed in the block cyclic layout
// imposed by the algorithm" (§7.4).
package dist

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/mat"
)

// Store holds the tiles of one rank — grid position (row, col, layer) — under
// the block-cyclic mapping bc. The rank's tiles live in a flat slice over its
// local tile grid: tile (ti, tj) with ti ≡ row (mod Pr) and tj ≡ col (mod Pc)
// sits at local coordinates (ti/Pr, tj/Pc), row-major — an index computation
// instead of a map hash on every access. Tiles still materialize lazily on
// first access (the slice holds nil until then), so a store created on a
// non-zero replication layer starts as an all-zero accumulator without
// touching payload memory it never uses. A Store belongs to one rank (one
// goroutine) and is not safe for concurrent use.
type Store struct {
	bc              grid.BlockCyclic
	row, col, layer int
	payload         bool

	localCols int           // tile columns this rank owns (tj ≡ col mod Pc)
	tiles     []*mat.Matrix // localRows × localCols, row-major, nil = not yet materialized
	allocated int           // non-nil entries, kept so Allocated() is O(1)
}

// localCount returns how many indices in [0, tiles) map to grid position
// `pos` under the cyclic map (i.e. i ≡ pos mod stride).
func localCount(tiles, pos, stride int) int {
	if tiles <= pos {
		return 0
	}
	return (tiles - pos + stride - 1) / stride
}

// NewStore creates the tile store for the rank at grid position (row, col,
// layer). payload=false selects volume mode: every tile and buffer the store
// hands out is phantom, and the store allocates no payload memory — only the
// flat pointer grid over its local tiles.
func NewStore(bc grid.BlockCyclic, row, col, layer int, payload bool) *Store {
	if row < 0 || row >= bc.G.Pr || col < 0 || col >= bc.G.Pc || layer < 0 || layer >= bc.G.Layers {
		panic(fmt.Sprintf("dist: position (%d,%d,%d) outside %dx%dx%d grid", row, col, layer, bc.G.Pr, bc.G.Pc, bc.G.Layers))
	}
	nt := bc.Tiles()
	localRows := localCount(nt, row, bc.G.Pr)
	localCols := localCount(nt, col, bc.G.Pc)
	return &Store{
		bc: bc, row: row, col: col, layer: layer, payload: payload,
		localCols: localCols,
		tiles:     make([]*mat.Matrix, localRows*localCols),
	}
}

// Payload reports whether the store carries numeric data (false = phantom).
func (s *Store) Payload() bool { return s.payload }

// Owns reports whether this rank owns tile (ti, tj) under the cyclic map.
func (s *Store) Owns(ti, tj int) bool {
	return s.bc.OwnerRow(ti) == s.row && s.bc.OwnerCol(tj) == s.col
}

// Tile returns the local tile (ti, tj), allocating it zeroed (or phantom) on
// first access. It panics if the tile is out of range or owned by another
// rank — engines indexing a foreign tile is always a schedule bug. The hot
// path is a flat-slice index over the local tile grid: (ti/Pr, tj/Pc).
func (s *Store) Tile(ti, tj int) *mat.Matrix {
	nt := s.bc.Tiles()
	if ti < 0 || ti >= nt || tj < 0 || tj >= nt {
		panic(fmt.Sprintf("dist: tile (%d,%d) outside %dx%d tile grid", ti, tj, nt, nt))
	}
	if !s.Owns(ti, tj) {
		panic(fmt.Sprintf("dist: tile (%d,%d) belongs to grid position (%d,%d), not (%d,%d)",
			ti, tj, s.bc.OwnerRow(ti), s.bc.OwnerCol(tj), s.row, s.col))
	}
	idx := (ti/s.bc.G.Pr)*s.localCols + tj/s.bc.G.Pc
	t := s.tiles[idx]
	if t == nil {
		t = s.NewBuffer(s.bc.TileDims(ti, tj))
		s.tiles[idx] = t
		s.allocated++
	}
	return t
}

// NewBuffer allocates a rows×cols scratch matrix in the store's payload mode
// (numeric via mat.New, phantom via mat.NewPhantom). Engines use it for every
// transient the communication layer touches, so numeric and volume runs share
// one code path.
func (s *Store) NewBuffer(rows, cols int) *mat.Matrix {
	if s.payload {
		return mat.New(rows, cols)
	}
	return mat.NewPhantom(rows, cols)
}

// Allocated returns the number of tiles materialized so far (test hook).
func (s *Store) Allocated() int { return s.allocated }

// eachOwnedTile visits this rank's tiles in deterministic (ti, tj) ascending
// order — the iteration order both collectives rely on.
func (s *Store) eachOwnedTile(fn func(ti, tj int)) {
	for _, ti := range s.bc.LocalTileRows(s.row, 0) {
		for _, tj := range s.bc.LocalTileCols(s.col, 0) {
			fn(ti, tj)
		}
	}
}
