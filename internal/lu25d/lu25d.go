// Package lu25d implements a CANDMC-style 2.5D LU factorization (Solomonik &
// Demmel) — the communication-avoiding baseline of the paper's evaluation.
// Like COnfLUX it uses tournament pivoting, c replication layers with lazy
// Schur-update accumulators, and per-layer update assignment; unlike COnfLUX
// it performs PHYSICAL ROW SWAPPING: pivot rows are moved into the diagonal
// block across every replication layer, which is exactly the design choice
// the paper charges with "increas[ing] the row swapping cost … to
// O(N³/(P√M))" (§7.3). Its modeled I/O cost is 5N³/(P√M) per rank (Table 2,
// model taken from the CANDMC authors).
package lu25d

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/grid"
	"repro/internal/lapack"
	"repro/internal/mat"
	"repro/internal/smpi"
)

// Options configures the 2.5D baseline.
type Options struct {
	Name string
	N    int
	V    int // block size
	Grid grid.Grid
}

// CANDMCOptions returns the paper's CANDMC configuration for p ranks with
// local memory mem: replication c = min(PM/N², P^{1/3}) on a greedy grid
// (CANDMC does not disable ranks — "other implementations … greedily try to
// utilize all resources", §8).
func CANDMCOptions(n, p int, mem float64) Options {
	c := grid.MaxReplication(p, mem, n)
	// Greedy: the largest c' <= c dividing p, squarest layer grid.
	for c > 1 && p%c != 0 {
		c--
	}
	layer := grid.Square2D(p / c)
	g := grid.Grid{Pr: layer.Pr, Pc: layer.Pc, Layers: c, Total: p}
	v := 2 * c
	if v < 4 {
		v = 4
	}
	if v > n {
		v = n
	}
	return Options{Name: "CANDMC", N: n, V: v, Grid: g}
}

// Result mirrors lu2d: LU (at world rank 0, numeric mode) holds the in-place
// factors of the row-permuted matrix; Perm[i] is the original row now at
// position i.
type Result struct {
	LU   *mat.Matrix
	Perm []int
}

// Run executes the factorization. a is consulted at world rank 0 only.
func Run(c *smpi.Comm, a *mat.Matrix, opt Options) (*Result, error) {
	if opt.Name == "" {
		opt.Name = "CANDMC"
	}
	if opt.V < opt.Grid.Layers {
		panic(fmt.Sprintf("lu25d: v=%d must be >= c=%d", opt.V, opt.Grid.Layers))
	}
	if c.Size() != opt.Grid.Total {
		panic(fmt.Sprintf("lu25d: world %d != grid total %d", c.Size(), opt.Grid.Total))
	}
	if c.WorldRank() >= opt.Grid.Used() {
		return &Result{}, nil
	}
	e := &engine{world: c, opt: opt}
	return e.run(a)
}

type engine struct {
	world *smpi.Comm
	opt   Options

	g               grid.Grid
	bc              grid.BlockCyclic
	row, col, layer int
	ac              *smpi.Comm
	fiber           *smpi.Comm
	tourn           *smpi.Comm
	colc            *smpi.Comm // my (col, layer) column communicator, for swaps
	store           *dist.Store

	perm []int

	a00    *mat.Matrix
	pivIDs []int
	a10    *mat.Matrix // consumer rows (contiguous below the diagonal block)
	a10Lo  int         // first global row of a10 in my grid row
	a01    *mat.Matrix
}

func (e *engine) run(a *mat.Matrix) (*Result, error) {
	e.g = e.opt.Grid
	e.bc = grid.BlockCyclic{G: e.g, V: e.opt.V, N: e.opt.N}
	e.row, e.col, e.layer = e.g.Coords(e.world.Rank())
	e.ac = e.world.Sub("active", e.g.ActiveComm())
	e.fiber = e.ac.Sub(fmt.Sprintf("fiber.%d.%d", e.row, e.col), e.g.FiberComm(e.row, e.col))
	if e.layer == 0 {
		e.tourn = e.ac.Sub(fmt.Sprintf("tourn.%d", e.col), e.g.ColComm(e.col, 0))
	}
	e.colc = e.ac.Sub(fmt.Sprintf("colc.%d.%d", e.col, e.layer), e.g.ColComm(e.col, e.layer))
	e.store = dist.NewStore(e.bc, e.row, e.col, e.layer, e.world.Payload())
	e.perm = make([]int, e.opt.N)
	for i := range e.perm {
		e.perm[i] = i
	}
	if e.layer == 0 {
		dist.Scatter(e.world, 0, a, e.g, e.store)
	}

	nt := e.bc.Tiles()
	for t := 0; t < nt; t++ {
		stack, lo := e.reduceColumn(t)
		if err := e.tournament(t, stack, lo); err != nil {
			return nil, err
		}
		e.broadcastA00(t)
		e.applySwaps(t)
		e.factorizeA10(t)
		e.factorizeA01(t)
		e.update(t)
	}

	res := &Result{Perm: e.perm}
	if e.layer == 0 {
		if e.world.Rank() == 0 {
			lu := mat.NewPhantom(e.opt.N, e.opt.N)
			if e.world.Payload() {
				lu = mat.New(e.opt.N, e.opt.N)
			}
			dist.Gather(e.world, 0, lu, e.g, e.store)
			res.LU = lu
		} else {
			dist.Gather(e.world, 0, nil, e.g, e.store)
		}
	}
	return res, nil
}

// rowsInGridRow lists global rows >= lo owned by grid row gr, iterating by
// tile (O(result + tiles/Pr), not O(N)).
func (e *engine) rowsInGridRow(gr, lo int) []int {
	// Exact-size hint: ~1/Pr of the remaining rows live in each grid row;
	// the +V slack absorbs tile-boundary rounding so growth never reallocs.
	out := make([]int, 0, (e.opt.N-lo)/e.g.Pr+e.opt.V)
	v := e.opt.V
	for ti := lo / v; ti*v < e.opt.N; ti++ {
		if ti%e.g.Pr != gr {
			continue
		}
		start := ti * v
		if start < lo {
			start = lo
		}
		end := (ti + 1) * v
		if end > e.opt.N {
			end = e.opt.N
		}
		for r := start; r < end; r++ {
			out = append(out, r)
		}
	}
	return out
}

func (e *engine) stackColumnRows(t int, rows []int) *mat.Matrix {
	_, w := e.bc.TileDims(t, t)
	stack := e.store.NewBuffer(len(rows), w)
	if e.store.Payload() {
		for i, r := range rows {
			ti := r / e.opt.V
			stack.View(i, 0, 1, w).CopyFrom(e.store.Tile(ti, t).View(r-ti*e.opt.V, 0, 1, w))
		}
	}
	return stack
}

func (e *engine) unstackColumnRows(t int, rows []int, stack *mat.Matrix) {
	if !e.store.Payload() {
		return
	}
	_, w := e.bc.TileDims(t, t)
	for i, r := range rows {
		ti := r / e.opt.V
		e.store.Tile(ti, t).View(r-ti*e.opt.V, 0, 1, w).CopyFrom(stack.View(i, 0, 1, w))
	}
}

// reduceColumn sums the trailing rows (>= t·v) of block column t across the
// replication layers onto the layer-0 owners.
func (e *engine) reduceColumn(t int) (*mat.Matrix, []int) {
	if e.col != e.bc.OwnerCol(t) {
		return nil, nil
	}
	e.ac.SetPhase(e.opt.Name + ".reduce-col")
	rows := e.rowsInGridRow(e.row, t*e.opt.V)
	if len(rows) == 0 {
		return nil, nil
	}
	stack := e.stackColumnRows(t, rows)
	e.fiber.ReduceMatSum(0, stack)
	if e.layer == 0 {
		e.unstackColumnRows(t, rows, stack)
		return stack, rows
	}
	if e.store.Payload() {
		_, w := e.bc.TileDims(t, t)
		e.unstackColumnRows(t, rows, mat.New(len(rows), w))
	}
	return nil, nil
}

// tournament selects the w pivot rows via butterfly playoff rounds. CANDMC
// uses the same CALU tournament as COnfLUX (§7.3 cites Grigori et al. for
// both).
func (e *engine) tournament(t int, stack *mat.Matrix, rows []int) error {
	e.pivIDs, e.a00 = nil, nil
	if e.layer != 0 || e.col != e.bc.OwnerCol(t) {
		return nil
	}
	e.ac.SetPhase(e.opt.Name + ".pivot")
	_, w := e.bc.TileDims(t, t)
	local := lapack.Candidates{Rows: mat.New(0, 0)}
	if stack != nil {
		local = lapack.Candidates{Rows: stack, IDs: rows}
	}
	win, err := sel(local, w)
	if err != nil {
		return err
	}
	res := e.tourn.Butterfly(enc(win, w), func(mine, theirs smpi.Msg) smpi.Msg {
		m := merge(dec(mine, w), dec(theirs, w))
		nxt, err := sel(m, w)
		if err != nil {
			panic(err)
		}
		return enc(nxt, w)
	})
	winners := dec(res, w)
	if len(winners.IDs) < w {
		return fmt.Errorf("lu25d: only %d rows available for a %d-wide panel", len(winners.IDs), w)
	}
	a00, ids, err := lapack.FactorA00(winners)
	if err != nil {
		return err
	}
	e.a00, e.pivIDs = a00, ids
	return nil
}

func (e *engine) broadcastA00(t int) {
	e.ac.SetPhase(e.opt.Name + ".bcast-a00")
	_, w := e.bc.TileDims(t, t)
	root := e.g.Rank(0, e.bc.OwnerCol(t), 0)
	if e.a00 == nil {
		e.a00 = e.store.NewBuffer(w, w)
	}
	e.ac.BcastMat(root, e.a00)
	e.pivIDs = e.ac.BcastInts(root, e.pivIDs)
	// The factored A00 is written into the diagonal tile AFTER the swaps
	// bring the pivot rows into place (see applySwaps).
}

func sel(c lapack.Candidates, w int) (lapack.Candidates, error) {
	if c.Rows.Rows == 0 {
		return c, nil
	}
	return lapack.SelectCandidates(c, w)
}

func merge(a, b lapack.Candidates) lapack.Candidates {
	if a.Rows.Rows == 0 {
		return b
	}
	if b.Rows.Rows == 0 {
		return a
	}
	return lapack.MergeCandidates(a, b)
}

func enc(c lapack.Candidates, w int) smpi.Msg {
	return smpi.Msg{F: c.Rows.Pack(), I: append([]int(nil), c.IDs...), N: c.Rows.Rows*w + len(c.IDs)}
}

func dec(m smpi.Msg, w int) lapack.Candidates {
	rows := len(m.I)
	var block *mat.Matrix
	if m.F != nil {
		block = mat.FromSlice(rows, w, m.F)
	} else {
		block = mat.NewPhantom(rows, w)
	}
	return lapack.Candidates{Rows: block, IDs: m.I}
}
