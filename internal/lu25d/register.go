package lu25d

import (
	"fmt"

	"repro/internal/costmodel"
	engreg "repro/internal/engine"
	"repro/internal/mat"
	"repro/internal/smpi"
)

// candmcEngine adapts the 2.5D row-swapping LU (CANDMC-style) to the
// engine registry.
type candmcEngine struct{}

func (candmcEngine) Name() costmodel.Algorithm { return costmodel.CANDMC }

func (candmcEngine) Run(c *smpi.Comm, in *mat.Matrix, n int, cfg engreg.Config) (*mat.Matrix, []int, error) {
	res, err := Run(c, in, CANDMCOptions(n, cfg.Ranks, cfg.MemoryFor(n)))
	if err != nil {
		return nil, nil, err
	}
	return res.LU, res.Perm, nil
}

func (candmcEngine) GridDesc(n int, cfg engreg.Config) string {
	g := CANDMCOptions(n, cfg.Ranks, cfg.MemoryFor(n)).Grid
	return fmt.Sprintf("%dx%dx%d", g.Pr, g.Pc, g.Layers)
}

func init() { engreg.Register(candmcEngine{}) }
