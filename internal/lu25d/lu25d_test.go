package lu25d

import (
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/mat"
	"repro/internal/smpi"
	"repro/internal/testutil"
	"repro/internal/trace"
)

const testTimeout = 60 * time.Second

func gridFor(pr, pc, c int) grid.Grid {
	return grid.Grid{Pr: pr, Pc: pc, Layers: c, Total: pr * pc * c}
}

func factorNumeric(t *testing.T, n, v int, g grid.Grid, seed uint64, general bool) (*mat.Matrix, *Result) {
	t.Helper()
	var a *mat.Matrix
	if general {
		a = mat.Random(n, n, seed)
	} else {
		a = mat.RandomDiagDominant(n, seed)
	}
	var res *Result
	_, err := smpi.RunTimeout(g.Total, true, testTimeout, func(c *smpi.Comm) error {
		var in *mat.Matrix
		if c.Rank() == 0 {
			in = a
		}
		r, err := Run(c, in, Options{N: n, V: v, Grid: g})
		if c.Rank() == 0 {
			res = r
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return a, res
}

func TestNumericSingleRank(t *testing.T) {
	a, res := factorNumeric(t, 16, 4, gridFor(1, 1, 1), 1, false)
	if err := testutil.IsPermutation(res.Perm, 16); err != nil {
		t.Fatal(err)
	}
	if r := testutil.ResidualLUPerm(a, res.LU, res.Perm); r > 1e-12 {
		t.Fatalf("residual %v", r)
	}
}

func TestNumeric2DAnd25D(t *testing.T) {
	cases := []struct {
		n, v       int
		pr, pc, cc int
	}{
		{16, 4, 2, 2, 1},
		{32, 4, 2, 2, 1},
		{32, 4, 2, 2, 2},
		{48, 4, 2, 2, 3},
		{64, 8, 2, 2, 2},
		{40, 8, 2, 2, 2}, // ragged
		{60, 4, 2, 3, 2}, // rectangular layers + ragged
	}
	for _, tc := range cases {
		g := gridFor(tc.pr, tc.pc, tc.cc)
		a, res := factorNumeric(t, tc.n, tc.v, g, uint64(tc.n)*13+uint64(tc.cc), false)
		if err := testutil.IsPermutation(res.Perm, tc.n); err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if r := testutil.ResidualLUPerm(a, res.LU, res.Perm); r > 1e-11 {
			t.Fatalf("%+v residual %v", tc, r)
		}
	}
}

func TestNumericGeneralMatrixWithSwaps(t *testing.T) {
	// A general matrix forces genuine tournament pivoting and row movement.
	a, res := factorNumeric(t, 48, 4, gridFor(2, 2, 2), 777, true)
	if r := testutil.ResidualLUPerm(a, res.LU, res.Perm); r > 1e-9 {
		t.Fatalf("residual %v", r)
	}
	moved := 0
	for i, p := range res.Perm {
		if i != p {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("expected physical row movement for a general matrix")
	}
}

func TestPlanSwapsBringsPivotsToSlots(t *testing.T) {
	// Simulate the plan on an explicit array and verify pivots land on top.
	n, v, tt := 16, 4, 1
	pivIDs := []int{9, 4, 14, 6} // rows to land at slots 4,5,6,7
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	for _, sw := range planSwaps(pivIDs, tt, v) {
		rows[sw[0]], rows[sw[1]] = rows[sw[1]], rows[sw[0]]
	}
	for i, p := range pivIDs {
		if rows[tt*v+i] != p {
			t.Fatalf("slot %d holds %d, want %d (rows=%v)", tt*v+i, rows[tt*v+i], p, rows)
		}
	}
}

func TestPlanSwapsChainedCollisions(t *testing.T) {
	// Pivot rows that collide with target slots must still resolve.
	n, v := 8, 4
	pivIDs := []int{1, 0, 3, 2} // all within the target tile, permuted
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	for _, sw := range planSwaps(pivIDs, 0, v) {
		rows[sw[0]], rows[sw[1]] = rows[sw[1]], rows[sw[0]]
	}
	for i, p := range pivIDs {
		if rows[i] != p {
			t.Fatalf("slot %d holds %d want %d", i, rows[i], p)
		}
	}
}

func runVolume(t *testing.T, n, v int, g grid.Grid) *trace.Report {
	t.Helper()
	rep, err := smpi.RunTimeout(g.Total, false, testTimeout, func(c *smpi.Comm) error {
		_, err := Run(c, nil, Options{N: n, V: v, Grid: g})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestSwappingCostsMoreThanMasking(t *testing.T) {
	// The paper's §7.3 ablation: physical row swapping inflates the leading
	// term versus COnfLUX's row masking. Verified end-to-end in the bench
	// harness; here we check the swap phase is a visible share of traffic.
	rep := runVolume(t, 128, 4, gridFor(2, 2, 2))
	swap := rep.ByPhase["CANDMC.swap"]
	if swap == 0 {
		t.Fatal("no swap traffic metered")
	}
	total := rep.AlgorithmBytes(trace.PhaseLayout, trace.PhaseCollect)
	if float64(swap) < 0.10*float64(total) {
		t.Fatalf("swap traffic %.1f%% of %d bytes — too small to be physical swapping",
			100*float64(swap)/float64(total), total)
	}
}

func TestCANDMCOptions(t *testing.T) {
	n := 1024
	mem := float64(n) * float64(n) // plenty: c = P^{1/3}
	opt := CANDMCOptions(n, 64, mem)
	if opt.Grid.Layers != 4 || opt.Grid.Used() != 64 {
		t.Fatalf("grid %+v", opt.Grid)
	}
	// Prime p: c must divide p, so replication collapses to 1 (greedy).
	opt = CANDMCOptions(n, 7, mem)
	if opt.Grid.Layers != 1 || opt.Grid.Used() != 7 {
		t.Fatalf("grid %+v", opt.Grid)
	}
}

func TestVolumeModeRuns(t *testing.T) {
	rep := runVolume(t, 64, 4, gridFor(2, 2, 2))
	if rep.TotalBytes() == 0 {
		t.Fatal("no traffic metered")
	}
	for _, ph := range []string{"CANDMC.pivot", "CANDMC.swap", "CANDMC.panel-a10", "CANDMC.panel-a01"} {
		if rep.ByPhase[ph] == 0 {
			t.Fatalf("missing phase %s: %v", ph, rep.ByPhase)
		}
	}
}
