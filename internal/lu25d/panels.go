package lu25d

import (
	"fmt"

	"repro/internal/blas"
	"repro/internal/mat"
)

// rowLayout concatenates a rank's tile columns tj >= from.
type rowLayout struct {
	tjs    []int
	offs   []int
	widths []int
	total  int
}

func (e *engine) colsFrom(from int) rowLayout {
	tjs := e.bc.LocalTileCols(e.col, from)
	cl := rowLayout{tjs: tjs, offs: make([]int, len(tjs)), widths: make([]int, len(tjs))}
	for i, tj := range tjs {
		_, w := e.bc.TileDims(tj, tj)
		cl.offs[i] = cl.total
		cl.widths[i] = w
		cl.total += w
	}
	return cl
}

func (e *engine) packRow(r int, cl rowLayout) *mat.Matrix {
	buf := e.store.NewBuffer(1, cl.total)
	if e.store.Payload() {
		ti := r / e.opt.V
		lr := r - ti*e.opt.V
		for k, tj := range cl.tjs {
			buf.View(0, cl.offs[k], 1, cl.widths[k]).
				CopyFrom(e.store.Tile(ti, tj).View(lr, 0, 1, cl.widths[k]))
		}
	}
	return buf
}

func (e *engine) unpackRow(r int, cl rowLayout, buf *mat.Matrix) {
	if !e.store.Payload() {
		return
	}
	ti := r / e.opt.V
	lr := r - ti*e.opt.V
	for k, tj := range cl.tjs {
		e.store.Tile(ti, tj).View(lr, 0, 1, cl.widths[k]).
			CopyFrom(buf.View(0, cl.offs[k], 1, cl.widths[k]))
	}
}

// planSwaps converts this step's tournament pivots into a sequence of row
// interchanges that bring pivot i to slot t·v+i, LAPACK style. Every rank
// computes the identical plan from the broadcast pivot IDs.
func planSwaps(pivIDs []int, t, v int) [][2]int {
	where := map[int]int{} // row -> current slot
	at := map[int]int{}    // slot -> row currently there
	slotOf := func(r int) int {
		if s, ok := where[r]; ok {
			return s
		}
		return r
	}
	rowAt := func(s int) int {
		if r, ok := at[s]; ok {
			return r
		}
		return s
	}
	var swaps [][2]int
	for i, p := range pivIDs {
		q := t*v + i
		cur := slotOf(p)
		if cur == q {
			continue
		}
		swaps = append(swaps, [2]int{q, cur})
		rq := rowAt(q)
		at[q], at[cur] = p, rq
		where[p], where[rq] = q, cur
	}
	return swaps
}

// applySwaps performs the physical row interchanges across every tile column
// and EVERY replication layer — the 2.5D row-swapping cost the paper's row
// masking avoids. Segments are batched per rank pair (one message per swap
// per grid column per layer).
func (e *engine) applySwaps(t int) {
	e.ac.SetPhase(e.opt.Name + ".swap")
	swaps := planSwaps(e.pivIDs, t, e.opt.V)
	for _, sw := range swaps {
		e.perm[sw[0]], e.perm[sw[1]] = e.perm[sw[1]], e.perm[sw[0]]
	}
	cl := e.colsFrom(0)
	if cl.total > 0 {
		for si, sw := range swaps {
			a, b := sw[0], sw[1]
			o1 := e.bc.OwnerRow(a / e.opt.V)
			o2 := e.bc.OwnerRow(b / e.opt.V)
			tag := 7000 + si
			switch {
			case o1 == e.row && o2 == e.row:
				if e.store.Payload() {
					ra, rb := e.packRow(a, cl), e.packRow(b, cl)
					e.unpackRow(a, cl, rb)
					e.unpackRow(b, cl, ra)
				}
			case o1 == e.row:
				e.colc.SendMat(o2, tag, e.packRow(a, cl))
				buf := e.store.NewBuffer(1, cl.total)
				e.colc.RecvMat(o2, tag, buf)
				e.unpackRow(a, cl, buf)
			case o2 == e.row:
				e.colc.SendMat(o1, tag, e.packRow(b, cl))
				buf := e.store.NewBuffer(1, cl.total)
				e.colc.RecvMat(o1, tag, buf)
				e.unpackRow(b, cl, buf)
			}
		}
	}
	// With the pivot rows in place, the diagonal block owner stores the
	// factored A00 (rows arrived in tournament order, matching slots).
	if e.layer == 0 && e.col == e.bc.OwnerCol(t) && e.bc.OwnerRow(t) == e.row && e.store.Payload() {
		w := len(e.pivIDs)
		e.store.Tile(t, t).View(0, 0, w, w).CopyFrom(e.a00)
	}
}

// factorizeA10 solves the sub-diagonal panel rows against U00 at the layer-0
// column owners and broadcasts them to the assigned layer's consumer rows.
func (e *engine) factorizeA10(t int) {
	e.ac.SetPhase(e.opt.Name + ".panel-a10")
	e.a10, e.a10Lo = nil, 0
	w := len(e.pivIDs)
	lo := t*e.opt.V + w
	lstar := t % e.g.Layers
	ownerCol := e.bc.OwnerCol(t)
	for gr := 0; gr < e.g.Pr; gr++ {
		grRows := e.rowsBelow(gr, lo)
		owner := e.g.Rank(gr, ownerCol, 0)
		members := []int{owner}
		for y := 0; y < e.g.Pc; y++ {
			if r := e.g.Rank(gr, y, lstar); r != owner {
				members = append(members, r)
			}
		}
		if !memberOf(members, e.world.Rank()) {
			continue
		}
		comm := e.ac.Sub(fmt.Sprintf("a10.%d.%d", t, gr), members)
		buf := e.store.NewBuffer(len(grRows), w)
		if owner == e.world.Rank() && len(grRows) > 0 {
			if e.store.Payload() {
				for i, r := range grRows {
					ti := r / e.opt.V
					buf.View(i, 0, 1, w).CopyFrom(e.store.Tile(ti, t).View(r-ti*e.opt.V, 0, 1, w))
				}
			}
			blas.TrsmUpperRight(e.a00, buf)
			if e.store.Payload() {
				for i, r := range grRows {
					ti := r / e.opt.V
					e.store.Tile(ti, t).View(r-ti*e.opt.V, 0, 1, w).CopyFrom(buf.View(i, 0, 1, w))
				}
			}
		}
		if len(grRows) > 0 {
			comm.BcastMat(0, buf)
		}
		if e.layer == lstar && e.row == gr {
			e.a10, e.a10Lo = buf, lo
		}
	}
}

func (e *engine) rowsBelow(gr, lo int) []int { return e.rowsInGridRow(gr, lo) }

func memberOf(list []int, v int) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}

// factorizeA01 reduces the (now contiguous, tile row t) pivot rows across
// layers, solves them against unit L00, and broadcasts to the assigned
// layer's consumer columns.
func (e *engine) factorizeA01(t int) {
	e.ac.SetPhase(e.opt.Name + ".panel-a01")
	e.a01 = nil
	w := len(e.pivIDs)
	cl := e.colsFrom(t + 1)
	if cl.total == 0 {
		return
	}
	tr := e.bc.OwnerRow(t)
	lstar := t % e.g.Layers

	var solved *mat.Matrix
	if e.row == tr {
		stack := e.store.NewBuffer(w, cl.total)
		if e.store.Payload() {
			for i := 0; i < w; i++ {
				r := t*e.opt.V + i
				stack.View(i, 0, 1, cl.total).CopyFrom(e.packRowCols(r, cl))
			}
		}
		e.fiber.ReduceMatSum(0, stack)
		if e.layer == 0 {
			blas.TrsmLowerLeft(e.a00, stack, true)
			if e.store.Payload() {
				for i := 0; i < w; i++ {
					e.unpackRow(t*e.opt.V+i, cl, stack.View(i, 0, 1, cl.total))
				}
			}
			solved = stack
		} else if e.store.Payload() {
			for i := 0; i < w; i++ {
				e.unpackRow(t*e.opt.V+i, cl, mat.New(1, cl.total))
			}
		}
	}

	root := e.g.Rank(tr, e.col, 0)
	members := []int{root}
	for x := 0; x < e.g.Pr; x++ {
		if r := e.g.Rank(x, e.col, lstar); r != root {
			members = append(members, r)
		}
	}
	if !memberOf(members, e.world.Rank()) {
		return
	}
	comm := e.ac.Sub(fmt.Sprintf("a01.%d.%d", t, e.col), members)
	buf := solved
	if buf == nil {
		buf = e.store.NewBuffer(w, cl.total)
	}
	comm.BcastMat(0, buf)
	if e.layer == lstar {
		e.a01 = buf
	}
}

func (e *engine) packRowCols(r int, cl rowLayout) *mat.Matrix {
	return e.packRow(r, cl)
}

// update applies the Schur update into the assigned layer's accumulators.
func (e *engine) update(t int) {
	e.ac.SetPhase(e.opt.Name + ".update")
	if e.layer != t%e.g.Layers || e.a10 == nil || e.a01 == nil {
		return
	}
	w := len(e.pivIDs)
	cl := e.colsFrom(t + 1)
	rows := e.rowsBelow(e.row, e.a10Lo)
	idx := make(map[int]int, len(rows))
	for i, r := range rows {
		idx[r] = i
	}
	for _, ti := range e.bc.LocalTileRows(e.row, t) {
		h, _ := e.bc.TileDims(ti, ti)
		tileL := e.store.NewBuffer(h, w)
		any := false
		for lr := 0; lr < h; lr++ {
			r := ti*e.opt.V + lr
			if i, ok := idx[r]; ok {
				any = true
				if e.store.Payload() {
					tileL.View(lr, 0, 1, w).CopyFrom(e.a10.View(i, 0, 1, w))
				}
			}
		}
		if !any {
			continue
		}
		for k, tj := range cl.tjs {
			blas.Gemm(-1, tileL, e.a01.View(0, cl.offs[k], w, cl.widths[k]), 1, e.store.Tile(ti, tj))
		}
	}
}
