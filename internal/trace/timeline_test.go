package trace

import (
	"math"
	"strings"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-15 }

func TestClockRules(t *testing.T) {
	m := Machine{Alpha: 1, Beta: 0.01} // 1s latency, 0.01 s/byte: easy numbers
	tl := NewTimeline(2, m)

	// Rank 0 sends 100 bytes: clock0 = 1 + 1 = 2.
	st := tl.RecordSend(0, 1, 100, "p")
	if !almost(st, 2) {
		t.Fatalf("send time %v want 2", st)
	}
	// Rank 1 (clock 0) matches: jump to 2 (wait 2), then +2 busy → 4.
	tl.RecordRecv(0, 1, 100, "p", st)

	r := tl.Report()
	if !almost(r.Time.Clock[0], 2) || !almost(r.Time.Clock[1], 4) {
		t.Fatalf("clocks %v", r.Time.Clock)
	}
	if !almost(r.Time.Wait[1], 2) || !almost(r.Time.Busy[1], 2) {
		t.Fatalf("busy/wait: %v / %v", r.Time.Busy, r.Time.Wait)
	}
	if r.Time.CritRank != 1 || !almost(r.Time.Makespan, 4) {
		t.Fatalf("makespan %v on rank %d", r.Time.Makespan, r.Time.CritRank)
	}
	// Makespan = CritBusy + CritWait.
	if !almost(r.Time.CritBusy()+r.Time.CritWait(), r.Time.Makespan) {
		t.Fatalf("busy %v + wait %v != makespan %v",
			r.Time.CritBusy(), r.Time.CritWait(), r.Time.Makespan)
	}
}

func TestNoWaitWhenReceiverIsLate(t *testing.T) {
	m := Machine{Alpha: 1, Beta: 0}
	tl := NewTimeline(2, m)
	st := tl.RecordSend(0, 1, 10, "p") // clock0 = 1
	// Rank 1 does two sends first: clock1 = 2 > sendTime 1 → no wait.
	tl.RecordSend(1, 0, 10, "q")
	tl.RecordSend(1, 0, 10, "q")
	tl.RecordRecv(0, 1, 10, "p", st) // clock1 = 3
	r := tl.Report()
	if r.Time.Wait[1] != 0 {
		t.Fatalf("late receiver accrued wait %v", r.Time.Wait[1])
	}
	if !almost(r.Time.Clock[1], 3) {
		t.Fatalf("clock1 %v want 3", r.Time.Clock[1])
	}
}

func TestEventsRecordMatchedDeliveries(t *testing.T) {
	tl := NewTimeline(2, Machine{Alpha: 1, Beta: 0.01})
	st := tl.RecordSend(0, 1, 100, "panel")
	tl.RecordRecv(0, 1, 100, "panel", st)
	ev := tl.Events()
	if len(ev) != 1 {
		t.Fatalf("events %d", len(ev))
	}
	e := ev[0]
	if e.From != 0 || e.To != 1 || e.Bytes != 100 || e.Phase != "panel" {
		t.Fatalf("event %+v", e)
	}
	if !almost(e.SendTime, 2) || !almost(e.RecvTime, 4) {
		t.Fatalf("event times %+v", e)
	}
}

func TestEventCap(t *testing.T) {
	tl := NewTimeline(2, Machine{})
	tl.SetEventCap(2)
	for i := 0; i < 5; i++ {
		st := tl.RecordSend(0, 1, 1, "p")
		tl.RecordRecv(0, 1, 1, "p", st)
	}
	if got := len(tl.Events()); got != 2 {
		t.Fatalf("retained %d events, cap 2", got)
	}
	if tl.EventsDropped() != 3 {
		t.Fatalf("dropped %d want 3", tl.EventsDropped())
	}
	// Aggregates are exact regardless of the cap.
	if tl.Report().TotalBytes() != 5 {
		t.Fatalf("bytes %d", tl.Report().TotalBytes())
	}
}

func TestOneSidedChargesActiveRankOnly(t *testing.T) {
	m := Machine{Alpha: 1, Beta: 0}
	tl := NewTimeline(3, m)
	// A Get by origin 2 from target 0: volume 0→2, time charged to 2 only.
	tl.RecordOneSided(2, 0, 2, 64, "rma")
	r := tl.Report()
	if r.Sent[0] != 64 || r.Recv[2] != 64 || r.Msgs[0] != 1 {
		t.Fatalf("volume attribution: sent=%v recv=%v msgs=%v", r.Sent, r.Recv, r.Msgs)
	}
	if r.Time.Clock[0] != 0 || !almost(r.Time.Clock[2], 1) {
		t.Fatalf("passive target clock moved: %v", r.Time.Clock)
	}
}

func TestReportParityWithEventReplay(t *testing.T) {
	// The volume aggregates derived from the timeline must equal an
	// independent replay of its matched events (every delivery in these
	// sequences is matched, so events are a complete record).
	tl := NewTimeline(4, DefaultMachine())
	type send struct {
		from, to int
		bytes    int64
		phase    string
	}
	seq := []send{
		{0, 1, 100, "a"}, {1, 2, 50, "b"}, {2, 3, 25, "a"},
		{3, 0, 10, "c"}, {0, 2, 5, "b"}, {1, 3, 1, "c"},
	}
	for _, s := range seq {
		st := tl.RecordSend(s.from, s.to, s.bytes, s.phase)
		tl.RecordRecv(s.from, s.to, s.bytes, s.phase, st)
	}
	got := tl.Report()

	replay := NewTimeline(4, DefaultMachine())
	for _, e := range tl.Events() {
		replay.RecordSend(e.From, e.To, e.Bytes, e.Phase)
	}
	want := replay.Report()

	for r := 0; r < 4; r++ {
		if got.Sent[r] != want.Sent[r] || got.Recv[r] != want.Recv[r] || got.Msgs[r] != want.Msgs[r] {
			t.Fatalf("rank %d mismatch: %+v vs %+v", r, got, want)
		}
	}
	for ph, v := range want.ByPhase {
		if got.ByPhase[ph] != v {
			t.Fatalf("phase %s: %d vs %d", ph, got.ByPhase[ph], v)
		}
	}
}

func TestUntimedPhasesMeterButDontAdvanceClocks(t *testing.T) {
	tl := NewTimeline(2, Machine{Alpha: 1, Beta: 1})
	tl.ExcludeFromTiming("layout")
	st := tl.RecordSend(0, 1, 100, "layout")
	tl.RecordRecv(0, 1, 100, "layout", st)
	r := tl.Report()
	if r.TotalBytes() != 100 || r.Msgs[0] != 1 {
		t.Fatalf("untimed phase not metered: %d bytes", r.TotalBytes())
	}
	if r.Time.Makespan != 0 || r.Time.Clock[0] != 0 || r.Time.Clock[1] != 0 {
		t.Fatalf("untimed phase advanced clocks: %+v", r.Time)
	}
	if len(tl.Events()) != 1 {
		t.Fatalf("untimed phase lost its event")
	}
	// Timed traffic on the same timeline still advances.
	st = tl.RecordSend(0, 1, 1, "work")
	tl.RecordRecv(0, 1, 1, "work", st)
	if tl.Report().Time.Makespan == 0 {
		t.Fatal("timed phase did not advance clocks")
	}
}

func TestMakespanMonotoneInAlphaBeta(t *testing.T) {
	run := func(m Machine) float64 {
		tl := NewTimeline(2, m)
		for i := 0; i < 3; i++ {
			st := tl.RecordSend(0, 1, 100, "p")
			tl.RecordRecv(0, 1, 100, "p", st)
		}
		return tl.Report().Time.Makespan
	}
	base := run(Machine{Alpha: 1e-6, Beta: 1e-9})
	if up := run(Machine{Alpha: 2e-6, Beta: 1e-9}); up <= base {
		t.Fatalf("makespan not increasing in alpha: %v -> %v", base, up)
	}
	if up := run(Machine{Alpha: 1e-6, Beta: 2e-9}); up <= base {
		t.Fatalf("makespan not increasing in beta: %v -> %v", base, up)
	}
}

func TestMachineTime(t *testing.T) {
	m := Machine{Alpha: 2, Beta: 0.5}
	if got := m.Time(10, 3); !almost(got, 3*2+10*0.5) {
		t.Fatalf("Time = %v", got)
	}
}

func TestTimedMsgsExcludeUntimedPhases(t *testing.T) {
	tl := NewTimeline(2, Machine{Alpha: 1, Beta: 0})
	tl.ExcludeFromTiming("layout")
	tl.RecordSend(0, 1, 8, "layout")
	st := tl.RecordSend(0, 1, 8, "work")
	tl.RecordRecv(0, 1, 8, "work", st)
	tr := tl.Report().Time
	if tr.Msgs[0] != 1 {
		t.Fatalf("timed msgs %v, want layout send excluded", tr.Msgs)
	}
	if tr.MaxRankMsgs() != 1 {
		t.Fatalf("max timed msgs %d", tr.MaxRankMsgs())
	}
}

func TestTimeReportString(t *testing.T) {
	tl := NewTimeline(2, Machine{Alpha: 1, Beta: 0})
	st := tl.RecordSend(0, 1, 8, "pivot")
	tl.RecordRecv(0, 1, 8, "pivot", st)
	s := tl.Report().Time.String()
	if !strings.Contains(s, "pivot") || !strings.Contains(s, "makespan") {
		t.Fatalf("string: %q", s)
	}
}
