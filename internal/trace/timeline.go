package trace

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Machine is the α-β (latency–bandwidth) machine model used to advance the
// simulated clocks: a message of b bytes costs Alpha + Beta·b seconds on
// each endpoint it occupies. The paper argues its pivoting and broadcast
// choices in exactly these terms (§7.3: partial pivoting needs O(N) messages
// on the critical path, tournament pivoting O(N/v)).
type Machine struct {
	Alpha float64 // per-message latency, seconds
	Beta  float64 // per-byte transfer cost, seconds per byte
}

// DefaultMachine returns paper-scale interconnect parameters in the class of
// Piz Daint's Cray Aries network (§8): ~1 µs message latency and ~10 GB/s
// injection bandwidth per node.
func DefaultMachine() Machine { return Machine{Alpha: 1e-6, Beta: 1e-10} }

// Time returns the α-β cost of moving the given traffic serially:
// msgs·Alpha + bytes·Beta. It is the one place the cost formula lives —
// the timeline's per-endpoint advance and costmodel.PredictedTime both
// route through it.
func (m Machine) Time(bytes, msgs float64) float64 {
	return msgs*m.Alpha + bytes*m.Beta
}

// IsZero reports whether m is the zero Machine value. Callers that want a
// "default when unset" rule must pair it with an explicit way to request
// the all-free machine (α = β = 0), which is a meaningful configuration —
// it isolates volume from timing — and not merely "unset".
func (m Machine) IsZero() bool { return m == Machine{} }

// Topology generalizes the flat Machine into a per-pair cost model: the
// occupancy a delivery (from, to, bytes) charges each endpoint, plus the
// time it holds the receiver's shared ingress link. It is the seam
// internal/topo plugs hierarchical, dragonfly, fat-tree, and contended
// models into; a nil Topology on the Timeline keeps the flat Machine path
// byte-for-byte unchanged.
//
// Determinism contract (DESIGN.md §14): every method must be a pure
// function of its arguments. All mutable contention state lives on the
// receiver's shard and advances only at matching, in the receiver's
// program order, so reports stay bit-identical across executors and
// event-window widths exactly as with the flat machine.
type Topology interface {
	// Name labels the model in TimeReport.Topology ("flat",
	// "hier+contention", "dragonfly+faults", ...).
	Name() string
	// SendCost is the sender-endpoint occupancy in seconds of injecting a
	// from → to transfer of the given size.
	SendCost(from, to int, bytes int64) float64
	// RecvCost is the receiver-endpoint occupancy of completing it.
	RecvCost(from, to int, bytes int64) float64
	// IngressOccupancy is how long the transfer holds the receiver's
	// shared ingress link before reception work can start. Transfers are
	// granted the link FIFO in the receiver's matching order; 0 means
	// uncontended (delivery starts at max(recv clock, send stamp), exactly
	// the flat rule).
	IngressOccupancy(from, to int, bytes int64) float64
}

// Event is one matched point-to-point delivery on the simulated machine.
// Phase is the sending rank's phase label at send time. SendTime is the
// sender's logical clock when the injection completed; RecvTime the
// receiver's clock when the delivery completed. One-sided (RMA) transfers
// appear with SendTime == RecvTime: only the origin's clock advances.
type Event struct {
	From, To int
	Bytes    int64
	Phase    string
	SendTime float64
	RecvTime float64
}

// DefaultEventCap bounds how many matched events a timeline retains. The
// aggregate counters and clocks are exact regardless of the cap; only the
// retained Events() slice is truncated (paper-scale replays produce tens of
// millions of deliveries — retaining them all would dwarf the phantom
// matrices the volume mode exists to avoid).
const DefaultEventCap = 1 << 20

// shard is one rank's slice of the timeline: its volume aggregates, its
// logical clock, and the events it completed. A point-to-point delivery
// touches only the two endpoint ranks' shards — the sender's under its
// mutex at injection, the receiver's under its mutex at matching (plus one
// lock-free add for the received-bytes aggregate) — so there is no global
// serialization point at paper scale (P = 1,024 ranks delivering tens of
// millions of messages).
//
// Lock-free fields: sent/recv/msgs are atomics because RecordOneSided
// attributes volume to ranks other than the one whose mutex it holds (a Get
// meters bytes sent by the passive target). Everything else on a shard is
// written only under its mutex, and only clock-carrying operations of this
// rank take it.
// phaseStat is one phase's attribution on one shard: the bytes/msgs this
// rank originated under the label, and the busy time it accrued in it (send,
// recv, and one-sided sides alike). A rank touches a handful of phases, so
// the stats live in a small slice scanned linearly — one lookup per record
// where the map-based layout paid three hashes plus the untimed-set probe
// (timed is resolved once, when the label first appears on the shard).
type phaseStat struct {
	name  string
	timed bool
	bytes int64
	msgs  int64
	busy  float64
}

type shard struct {
	mu sync.Mutex

	// Volume aggregates — exactly the state the pre-timeline Counter kept
	// per rank, so the merged Report() stays byte-identical. Atomics
	// because RecordOneSided attributes volume across shards (see below).
	sent atomic.Int64
	recv atomic.Int64
	msgs atomic.Int64

	// Per-phase attribution, in first-use order (deterministic: fixed by
	// this rank's program order). Report() sums the shards' stats, which
	// reproduces the old global maps exactly: integer addition is
	// order-independent, and busy times are never summed across ranks.
	phases []phaseStat

	// Timing state of this rank. busy is α-β work; wait is clock jumps on
	// matching. timedMsgs counts messages injected in timed phases only —
	// the latency-critical-path counterpart of the msgs aggregate.
	clock     float64
	busy      float64
	wait      float64
	timedMsgs int64

	// linkFree is when this rank's shared ingress link next frees up —
	// the FIFO contention state behind Topology.IngressOccupancy. It is
	// advanced only under this shard's mutex at matching, in this rank's
	// program order, which is what keeps contended runs deterministic
	// (DESIGN.md §14). Stays 0 under a nil or uncontended topology.
	linkFree float64

	// Events this rank completed (received, or originated one-sided), in
	// its program order. Retention is globally capped; see appendEvent.
	events  []Event
	dropped int64

	// No trailing pad needed: 128 field bytes = exactly two 64-byte cache
	// lines, so adjacent shards in the backing array do not false-share
	// under concurrent delivery; TestShardSizeCacheAligned pins the
	// arithmetic against field drift.
}

// phase returns the shard's stat for name, creating it on first use (the
// only point the untimed set is consulted). Scanned newest-first: traffic
// clusters in the phase set most recently.
func (s *shard) phase(name string, untimed map[string]bool) *phaseStat {
	for i := len(s.phases) - 1; i >= 0; i-- {
		if s.phases[i].name == name {
			return &s.phases[i]
		}
	}
	s.phases = append(s.phases, phaseStat{name: name, timed: !untimed[name]})
	return &s.phases[len(s.phases)-1]
}

// Timeline is the per-rank event-timeline substrate behind every simulated
// run: it meters communication volume exactly as the paper's Score-P
// methodology counts it (per sending rank, per phase) and simultaneously
// advances per-rank logical clocks under the α-β model. It is safe for
// concurrent use by all ranks of a simulated world; state is sharded per
// rank, so concurrent deliveries between disjoint rank pairs never contend.
//
// Clock rules (see DESIGN.md §7):
//
//	send  by r:  clock[r] += α + β·bytes          (injection, busy time)
//	recv  by r:  clock[r]  = max(clock[r], sendTime)   (wait time)
//	             clock[r] += α + β·bytes          (reception, busy time)
//	self-sends and local RMA access advance nothing (memory moves).
type Timeline struct {
	p       int
	machine Machine
	shards  []shard

	// topo, when non-nil, replaces the flat machine cost with a per-pair
	// topology model (SetTopology). Written only before the run starts,
	// read without locks on the delivery hot path.
	topo Topology

	// nEvents is the global retention counter backing the event cap.
	nEvents  atomic.Int64
	eventCap atomic.Int64

	// untimed phases are metered for volume but advance no clocks — the
	// paper's §7.4 assumption that the input "is already distributed in
	// the block cyclic layout" applied to simulated time: the layout
	// scatter and verification gather cost nothing. Written only before
	// the run starts (ExcludeFromTiming), read without locks during it.
	untimed map[string]bool
}

// NewTimeline creates the timeline for p ranks under machine m.
func NewTimeline(p int, m Machine) *Timeline {
	t := &Timeline{
		p: p, machine: m,
		shards:  make([]shard, p),
		untimed: map[string]bool{},
	}
	t.eventCap.Store(DefaultEventCap)
	return t
}

// Machine returns the α-β parameters the timeline advances clocks with.
func (t *Timeline) Machine() Machine { return t.machine }

// SetTopology replaces the flat machine cost with a per-pair topology
// model for every subsequent clock advance (nil restores the flat rule).
// Must be called before the run starts: the field is read without
// synchronization on the delivery hot path.
func (t *Timeline) SetTopology(tp Topology) { t.topo = tp }

// Topology returns the installed topology model, or nil for the flat
// machine.
func (t *Timeline) Topology() Topology { return t.topo }

// Clock returns rank's current logical clock. The discrete-event executor
// orders its ready queue by this value (conservative discrete-event
// scheduling: always advance the rank whose simulated present is earliest).
func (t *Timeline) Clock(rank int) float64 {
	s := &t.shards[rank]
	s.mu.Lock()
	c := s.clock
	s.mu.Unlock()
	return c
}

// SetEventCap bounds event retention (0 retains nothing; aggregates and
// clocks are unaffected). Call before the run starts.
func (t *Timeline) SetEventCap(n int) { t.eventCap.Store(int64(n)) }

// ExcludeFromTiming marks phases whose traffic is metered for volume (and
// still recorded as events) but advances no logical clocks. The runtime
// excludes PhaseLayout and PhaseCollect by default, mirroring the volume
// accounting's AlgorithmBytes exclusion: the paper assumes the input is
// already distributed, so the housekeeping scatter/gather must not dominate
// the simulated makespan either. Must be called before the run starts: the
// set is read without synchronization on the delivery hot path.
func (t *Timeline) ExcludeFromTiming(phases ...string) {
	for _, ph := range phases {
		t.untimed[ph] = true
	}
}

// appendEvent retains e on shard s (which the caller holds locked) unless
// the global cap is exhausted. Which events survive once the cap is reached
// depends on arrival order across shards; runs that stay under the cap
// retain everything, deterministically.
func (t *Timeline) appendEvent(s *shard, e Event) {
	if t.nEvents.Add(1) <= t.eventCap.Load() {
		s.events = append(s.events, e)
	} else {
		s.dropped++
	}
}

// cost is the α-β occupancy of one message endpoint.
func (t *Timeline) cost(bytes int64) float64 {
	return t.machine.Time(float64(bytes), 1)
}

// RecordSend meters bytes sent by rank from (received by rank to) under the
// given phase label and advances the sender's clock by α + β·bytes. It
// returns the sender's clock after injection — the send timestamp the
// runtime carries on the message and hands back to RecordRecv on matching.
// Only the two endpoint shards are touched: the sender's under its mutex,
// the receiver's received-bytes counter lock-free.
func (t *Timeline) RecordSend(from, to int, bytes int64, phase string) float64 {
	s := &t.shards[from]
	s.mu.Lock()
	s.sent.Add(bytes)
	s.msgs.Add(1)
	ps := s.phase(phase, t.untimed)
	ps.bytes += bytes
	ps.msgs++
	if ps.timed {
		var d float64
		if t.topo != nil {
			d = t.topo.SendCost(from, to, bytes)
		} else {
			d = t.cost(bytes)
		}
		s.clock += d
		s.busy += d
		ps.busy += d
		s.timedMsgs++
	}
	st := s.clock
	s.mu.Unlock()
	t.shards[to].recv.Add(bytes)
	return st
}

// RecordRecv completes a matched delivery on the receiving rank: the clock
// jumps to max(local, sendTime) — the jump is wait time — then advances by
// α + β·bytes of reception work. The completed Event is retained on the
// receiver's shard. phase is the event's (send-side) phase label.
func (t *Timeline) RecordRecv(from, to int, bytes int64, phase string, sendTime float64) {
	s := &t.shards[to]
	s.mu.Lock()
	if ps := s.phase(phase, t.untimed); ps.timed {
		// Delivery starts when the message is in flight AND the receiver
		// reaches its matching point; under a contended topology it also
		// waits for the receiver's shared ingress link, granted FIFO in
		// this rank's matching order (deterministic: the only state is
		// this shard's linkFree, advanced only here, under this mutex, in
		// this rank's program order — DESIGN.md §14).
		start := s.clock
		if sendTime > start {
			start = sendTime
		}
		if t.topo != nil {
			if occ := t.topo.IngressOccupancy(from, to, bytes); occ > 0 {
				if s.linkFree > start {
					start = s.linkFree
				}
				s.linkFree = start + occ
			}
		}
		if start > s.clock {
			s.wait += start - s.clock
			s.clock = start
		}
		var d float64
		if t.topo != nil {
			d = t.topo.RecvCost(from, to, bytes)
		} else {
			d = t.cost(bytes)
		}
		s.clock += d
		s.busy += d
		ps.busy += d
	}
	// Untimed deliveries leave the receiver's clock alone, which can sit
	// behind the send stamp; clamp so the event interval is never negative.
	rt := s.clock
	if rt < sendTime {
		rt = sendTime
	}
	t.appendEvent(s, Event{From: from, To: to, Bytes: bytes, Phase: phase,
		SendTime: sendTime, RecvTime: rt})
	s.mu.Unlock()
}

// RecordOneSided meters an RMA transfer of bytes from → to whose time cost
// is charged to the active rank only (the origin of a Put or Get; the
// target is passive, per MPI one-sided semantics). Volume is attributed
// from → to exactly like a send; the event is retained on the active
// rank's shard.
func (t *Timeline) RecordOneSided(active, from, to int, bytes int64, phase string) {
	t.shards[from].sent.Add(bytes)
	t.shards[from].msgs.Add(1)
	t.shards[to].recv.Add(bytes)
	a := &t.shards[active]
	a.mu.Lock()
	ps := a.phase(phase, t.untimed)
	ps.bytes += bytes
	ps.msgs++
	if ps.timed {
		// The origin is the only rank whose clock advances; a Get
		// (active == to) pays the receiver-side occupancy, a Put the
		// sender-side. One-sided transfers involve no matching, so they
		// never touch the FIFO ingress-link state.
		var d float64
		switch {
		case t.topo != nil && active == to:
			d = t.topo.RecvCost(from, to, bytes)
		case t.topo != nil:
			d = t.topo.SendCost(from, to, bytes)
		default:
			d = t.cost(bytes)
		}
		a.clock += d
		a.busy += d
		ps.busy += d
		a.timedMsgs++
	}
	t.appendEvent(a, Event{From: from, To: to, Bytes: bytes, Phase: phase,
		SendTime: a.clock, RecvTime: a.clock})
	a.mu.Unlock()
}

// Events returns a copy of the retained (matched) events, merged
// deterministically: grouped by the rank that completed them (the receiver
// for two-sided deliveries, the origin for one-sided), ranks ascending,
// each rank's events in its program order. Per-rank program order is fixed
// by the schedule, so the merged sequence is identical across replays of a
// deterministic run regardless of goroutine interleaving. Retention is
// bounded by SetEventCap; EventsDropped reports the overflow.
func (t *Timeline) Events() []Event {
	// nEvents counts drops past the cap too; clamp the preallocation to
	// what can actually have been retained (a paper-scale run records tens
	// of millions of deliveries against a 2²⁰ cap).
	n := t.nEvents.Load()
	if c := t.eventCap.Load(); n > c {
		n = c
	}
	if n < 0 {
		n = 0
	}
	out := make([]Event, 0, n)
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		out = append(out, s.events...)
		s.mu.Unlock()
	}
	return out
}

// EventsDropped returns how many events exceeded the retention cap.
func (t *Timeline) EventsDropped() int64 {
	var n int64
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += s.dropped
		s.mu.Unlock()
	}
	return n
}

// Report derives the immutable volume report — including the simulated-time
// sub-report — by merging the per-rank shards in rank order. The volume
// fields are identical to what the pre-shard global-mutex timeline (and the
// per-rank counters before it) produced: per-rank values live on their own
// shard, and the per-phase maps merge by integer addition, which no
// interleaving can perturb.
func (t *Timeline) Report() *Report {
	r := &Report{
		P:         t.p,
		Sent:      make([]int64, t.p),
		Recv:      make([]int64, t.p),
		Msgs:      make([]int64, t.p),
		ByPhase:   map[string]int64{},
		PhaseMsgs: map[string]int64{},
	}
	tr := &TimeReport{
		Machine:      t.machine,
		Clock:        make([]float64, t.p),
		Busy:         make([]float64, t.p),
		Wait:         make([]float64, t.p),
		Msgs:         make([]int64, t.p),
		CritPhases:   map[string]float64{},
		PhaseBusyMax: map[string]float64{},
	}
	if t.topo != nil {
		tr.Topology = t.topo.Name()
	}
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		r.Sent[i] = s.sent.Load()
		r.Recv[i] = s.recv.Load()
		r.Msgs[i] = s.msgs.Load()
		for _, ps := range s.phases {
			// Volume attribution: only stats with originated traffic add
			// keys (a receiver-side stat for a foreign phase carries 0 of
			// both and must not invent a phase the senders never metered).
			if ps.bytes != 0 || ps.msgs != 0 {
				r.ByPhase[ps.name] += ps.bytes
				r.PhaseMsgs[ps.name] += ps.msgs
			}
		}
		tr.Clock[i] = s.clock
		tr.Busy[i] = s.busy
		tr.Wait[i] = s.wait
		tr.Msgs[i] = s.timedMsgs
		if s.clock > tr.Makespan {
			tr.Makespan = s.clock
			tr.CritRank = i
		}
		for _, ps := range s.phases {
			if ps.timed && ps.busy > tr.PhaseBusyMax[ps.name] {
				tr.PhaseBusyMax[ps.name] = ps.busy
			}
		}
		s.mu.Unlock()
	}
	if t.p > 0 {
		cs := &t.shards[tr.CritRank]
		cs.mu.Lock()
		for _, ps := range cs.phases {
			if ps.timed {
				tr.CritPhases[ps.name] = ps.busy
			}
		}
		cs.mu.Unlock()
	}
	r.Time = tr
	return r
}

// TimeReport is the simulated-time view of one run under the α-β model:
// per-rank logical clocks, the busy/wait split, and the phase attribution
// of the critical (makespan-defining) rank.
type TimeReport struct {
	Machine Machine
	// Topology names the per-pair topology model the clocks advanced
	// under ("" = the flat Machine) — provenance, like Report.Executor.
	Topology string
	Makespan float64   // max final clock over ranks, seconds
	Clock    []float64 // per-rank final clocks
	Busy     []float64 // per-rank α-β transfer work
	Wait     []float64 // per-rank time spent blocked on matching
	Msgs     []int64   // per-rank messages injected in timed phases only
	CritRank int       // rank whose clock defines the makespan
	// CritPhases is the critical rank's busy time per phase label — where
	// the simulated critical path actually spends its communication time.
	CritPhases map[string]float64
	// PhaseBusyMax is, per phase, the largest busy time any single rank
	// spent in it — the phase's own critical path, independent of which
	// rank bounds the whole run (a phase can be latency-critical on a
	// rank the overall makespan never visits).
	PhaseBusyMax map[string]float64
}

// CritBusy returns the critical rank's transfer (busy) time: the pure α-β
// communication time on the critical path, excluding waits.
func (t *TimeReport) CritBusy() float64 {
	if t.CritRank >= len(t.Busy) {
		return 0
	}
	return t.Busy[t.CritRank]
}

// CritWait returns the critical rank's wait time. Makespan = CritBusy +
// CritWait by construction.
func (t *TimeReport) CritWait() float64 {
	if t.CritRank >= len(t.Wait) {
		return 0
	}
	return t.Wait[t.CritRank]
}

// MaxRankMsgs returns the maximum timed-phase message count injected by
// any single rank — the latency-bound critical path, with the untimed
// housekeeping phases excluded exactly as they are from the clocks.
func (t *TimeReport) MaxRankMsgs() int64 {
	var m int64
	for _, v := range t.Msgs {
		if v > m {
			m = v
		}
	}
	return m
}

// CritPhaseOrder returns the critical rank's phase labels sorted by
// descending busy time.
func (t *TimeReport) CritPhaseOrder() []string {
	keys := make([]string, 0, len(t.CritPhases))
	for k := range t.CritPhases {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if t.CritPhases[keys[i]] != t.CritPhases[keys[j]] {
			return t.CritPhases[keys[i]] > t.CritPhases[keys[j]]
		}
		return keys[i] < keys[j]
	})
	return keys
}

// String renders a short human-readable timing summary.
func (t *TimeReport) String() string {
	s := fmt.Sprintf("makespan=%.6fs crit-rank=%d busy=%.6fs wait=%.6fs (α=%.2e β=%.2e)\n",
		t.Makespan, t.CritRank, t.CritBusy(), t.CritWait(), t.Machine.Alpha, t.Machine.Beta)
	for _, ph := range t.CritPhaseOrder() {
		s += fmt.Sprintf("  %-24s %12.6f s\n", ph, t.CritPhases[ph])
	}
	return s
}
