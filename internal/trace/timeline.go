package trace

import (
	"fmt"
	"sort"
	"sync"
)

// Machine is the α-β (latency–bandwidth) machine model used to advance the
// simulated clocks: a message of b bytes costs Alpha + Beta·b seconds on
// each endpoint it occupies. The paper argues its pivoting and broadcast
// choices in exactly these terms (§7.3: partial pivoting needs O(N) messages
// on the critical path, tournament pivoting O(N/v)).
type Machine struct {
	Alpha float64 // per-message latency, seconds
	Beta  float64 // per-byte transfer cost, seconds per byte
}

// DefaultMachine returns paper-scale interconnect parameters in the class of
// Piz Daint's Cray Aries network (§8): ~1 µs message latency and ~10 GB/s
// injection bandwidth per node.
func DefaultMachine() Machine { return Machine{Alpha: 1e-6, Beta: 1e-10} }

// Time returns the α-β cost of moving the given traffic serially:
// msgs·Alpha + bytes·Beta. It is the one place the cost formula lives —
// the timeline's per-endpoint advance and costmodel.PredictedTime both
// route through it.
func (m Machine) Time(bytes, msgs float64) float64 {
	return msgs*m.Alpha + bytes*m.Beta
}

// IsZero reports whether m is the zero Machine value. Callers that want a
// "default when unset" rule must pair it with an explicit way to request
// the all-free machine (α = β = 0), which is a meaningful configuration —
// it isolates volume from timing — and not merely "unset".
func (m Machine) IsZero() bool { return m == Machine{} }

// Event is one matched point-to-point delivery on the simulated machine.
// Phase is the sending rank's phase label at send time. SendTime is the
// sender's logical clock when the injection completed; RecvTime the
// receiver's clock when the delivery completed. One-sided (RMA) transfers
// appear with SendTime == RecvTime: only the origin's clock advances.
type Event struct {
	From, To int
	Bytes    int64
	Phase    string
	SendTime float64
	RecvTime float64
}

// DefaultEventCap bounds how many matched events a timeline retains. The
// aggregate counters and clocks are exact regardless of the cap; only the
// retained Events() slice is truncated (paper-scale replays produce tens of
// millions of deliveries — retaining them all would dwarf the phantom
// matrices the volume mode exists to avoid).
const DefaultEventCap = 1 << 20

// Timeline is the per-rank event-timeline substrate behind every simulated
// run: it meters communication volume exactly as the paper's Score-P
// methodology counts it (per sending rank, per phase) and simultaneously
// advances per-rank logical clocks under the α-β model. It is safe for
// concurrent use by all ranks of a simulated world.
//
// Clock rules (see DESIGN.md §7):
//
//	send  by r:  clock[r] += α + β·bytes          (injection, busy time)
//	recv  by r:  clock[r]  = max(clock[r], sendTime)   (wait time)
//	             clock[r] += α + β·bytes          (reception, busy time)
//	self-sends and local RMA access advance nothing (memory moves).
type Timeline struct {
	mu      sync.Mutex
	p       int
	machine Machine

	// Volume aggregates, updated at send time — exactly the state the
	// pre-timeline Counter kept, so Report() stays byte-identical.
	sent      []int64
	recv      []int64
	msgs      []int64
	byPhase   map[string]int64
	phaseMsgs map[string]int64

	// Timing state. busy is α-β work; wait is clock jumps on matching.
	// timedMsgs counts messages injected per rank in timed phases only —
	// the latency-critical-path counterpart of the msgs aggregate.
	clock     []float64
	busy      []float64
	wait      []float64
	busyPhase []map[string]float64
	timedMsgs []int64

	// untimed phases are metered for volume but advance no clocks — the
	// paper's §7.4 assumption that the input "is already distributed in
	// the block cyclic layout" applied to simulated time: the layout
	// scatter and verification gather cost nothing.
	untimed map[string]bool

	events   []Event
	eventCap int
	dropped  int64
}

// NewTimeline creates the timeline for p ranks under machine m.
func NewTimeline(p int, m Machine) *Timeline {
	t := &Timeline{
		p: p, machine: m,
		sent: make([]int64, p), recv: make([]int64, p), msgs: make([]int64, p),
		byPhase: map[string]int64{}, phaseMsgs: map[string]int64{},
		clock: make([]float64, p), busy: make([]float64, p), wait: make([]float64, p),
		busyPhase: make([]map[string]float64, p),
		timedMsgs: make([]int64, p),
		untimed:   map[string]bool{},
		eventCap:  DefaultEventCap,
	}
	for i := range t.busyPhase {
		t.busyPhase[i] = map[string]float64{}
	}
	return t
}

// Machine returns the α-β parameters the timeline advances clocks with.
func (t *Timeline) Machine() Machine { return t.machine }

// SetEventCap bounds event retention (0 retains nothing; aggregates and
// clocks are unaffected). Call before the run starts.
func (t *Timeline) SetEventCap(n int) {
	t.mu.Lock()
	t.eventCap = n
	t.mu.Unlock()
}

// ExcludeFromTiming marks phases whose traffic is metered for volume (and
// still recorded as events) but advances no logical clocks. The runtime
// excludes PhaseLayout and PhaseCollect by default, mirroring the volume
// accounting's AlgorithmBytes exclusion: the paper assumes the input is
// already distributed, so the housekeeping scatter/gather must not dominate
// the simulated makespan either. Call before the run starts.
func (t *Timeline) ExcludeFromTiming(phases ...string) {
	t.mu.Lock()
	for _, ph := range phases {
		t.untimed[ph] = true
	}
	t.mu.Unlock()
}

func (t *Timeline) appendEvent(e Event) {
	if len(t.events) < t.eventCap {
		t.events = append(t.events, e)
	} else {
		t.dropped++
	}
}

// cost is the α-β occupancy of one message endpoint.
func (t *Timeline) cost(bytes int64) float64 {
	return t.machine.Time(float64(bytes), 1)
}

// meterLocked is the one volume-aggregate update: every metering entry
// point (two-sided and one-sided) must route through it so the attribution
// rules cannot drift apart.
func (t *Timeline) meterLocked(from, to int, bytes int64, phase string) {
	t.sent[from] += bytes
	t.recv[to] += bytes
	t.msgs[from]++
	t.byPhase[phase] += bytes
	t.phaseMsgs[phase]++
}

// RecordSend meters bytes sent by rank from (received by rank to) under the
// given phase label and advances the sender's clock by α + β·bytes. It
// returns the sender's clock after injection — the send timestamp the
// runtime carries on the message and hands back to RecordRecv on matching.
func (t *Timeline) RecordSend(from, to int, bytes int64, phase string) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.meterLocked(from, to, bytes, phase)
	if !t.untimed[phase] {
		d := t.cost(bytes)
		t.clock[from] += d
		t.busy[from] += d
		t.busyPhase[from][phase] += d
		t.timedMsgs[from]++
	}
	return t.clock[from]
}

// RecordRecv completes a matched delivery on the receiving rank: the clock
// jumps to max(local, sendTime) — the jump is wait time — then advances by
// α + β·bytes of reception work. The completed Event is appended to the
// timeline. phase is the event's (send-side) phase label.
func (t *Timeline) RecordRecv(from, to int, bytes int64, phase string, sendTime float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.untimed[phase] {
		if sendTime > t.clock[to] {
			t.wait[to] += sendTime - t.clock[to]
			t.clock[to] = sendTime
		}
		d := t.cost(bytes)
		t.clock[to] += d
		t.busy[to] += d
		t.busyPhase[to][phase] += d
	}
	// Untimed deliveries leave the receiver's clock alone, which can sit
	// behind the send stamp; clamp so the event interval is never negative.
	rt := t.clock[to]
	if rt < sendTime {
		rt = sendTime
	}
	t.appendEvent(Event{From: from, To: to, Bytes: bytes, Phase: phase,
		SendTime: sendTime, RecvTime: rt})
}

// RecordOneSided meters an RMA transfer of bytes from → to whose time cost
// is charged to the active rank only (the origin of a Put or Get; the
// target is passive, per MPI one-sided semantics). Volume is attributed
// from → to exactly like a send.
func (t *Timeline) RecordOneSided(active, from, to int, bytes int64, phase string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.meterLocked(from, to, bytes, phase)
	if !t.untimed[phase] {
		d := t.cost(bytes)
		t.clock[active] += d
		t.busy[active] += d
		t.busyPhase[active][phase] += d
		t.timedMsgs[active]++
	}
	t.appendEvent(Event{From: from, To: to, Bytes: bytes, Phase: phase,
		SendTime: t.clock[active], RecvTime: t.clock[active]})
}

// Events returns a copy of the retained (matched) events in completion
// order. Retention is bounded by SetEventCap; EventsDropped reports the
// overflow.
func (t *Timeline) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// EventsDropped returns how many events exceeded the retention cap.
func (t *Timeline) EventsDropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Report derives the immutable volume report — including the simulated-time
// sub-report — from the timeline. The volume fields are identical to what
// the pre-timeline per-rank counters produced: they are maintained at the
// same single metering point with the same attribution rules.
func (t *Timeline) Report() *Report {
	t.mu.Lock()
	defer t.mu.Unlock()
	r := &Report{
		P:         t.p,
		Sent:      append([]int64(nil), t.sent...),
		Recv:      append([]int64(nil), t.recv...),
		Msgs:      append([]int64(nil), t.msgs...),
		ByPhase:   make(map[string]int64, len(t.byPhase)),
		PhaseMsgs: make(map[string]int64, len(t.phaseMsgs)),
	}
	for k, v := range t.byPhase {
		r.ByPhase[k] = v
	}
	for k, v := range t.phaseMsgs {
		r.PhaseMsgs[k] = v
	}
	r.Time = t.timeReportLocked()
	return r
}

func (t *Timeline) timeReportLocked() *TimeReport {
	tr := &TimeReport{
		Machine: t.machine,
		Clock:   append([]float64(nil), t.clock...),
		Busy:    append([]float64(nil), t.busy...),
		Wait:    append([]float64(nil), t.wait...),
		Msgs:    append([]int64(nil), t.timedMsgs...),
	}
	for r, c := range t.clock {
		if c > tr.Makespan {
			tr.Makespan = c
			tr.CritRank = r
		}
	}
	tr.CritPhases = map[string]float64{}
	if t.p > 0 {
		for ph, d := range t.busyPhase[tr.CritRank] {
			tr.CritPhases[ph] = d
		}
	}
	tr.PhaseBusyMax = map[string]float64{}
	for _, perPhase := range t.busyPhase {
		for ph, d := range perPhase {
			if d > tr.PhaseBusyMax[ph] {
				tr.PhaseBusyMax[ph] = d
			}
		}
	}
	return tr
}

// TimeReport is the simulated-time view of one run under the α-β model:
// per-rank logical clocks, the busy/wait split, and the phase attribution
// of the critical (makespan-defining) rank.
type TimeReport struct {
	Machine  Machine
	Makespan float64   // max final clock over ranks, seconds
	Clock    []float64 // per-rank final clocks
	Busy     []float64 // per-rank α-β transfer work
	Wait     []float64 // per-rank time spent blocked on matching
	Msgs     []int64   // per-rank messages injected in timed phases only
	CritRank int       // rank whose clock defines the makespan
	// CritPhases is the critical rank's busy time per phase label — where
	// the simulated critical path actually spends its communication time.
	CritPhases map[string]float64
	// PhaseBusyMax is, per phase, the largest busy time any single rank
	// spent in it — the phase's own critical path, independent of which
	// rank bounds the whole run (a phase can be latency-critical on a
	// rank the overall makespan never visits).
	PhaseBusyMax map[string]float64
}

// CritBusy returns the critical rank's transfer (busy) time: the pure α-β
// communication time on the critical path, excluding waits.
func (t *TimeReport) CritBusy() float64 {
	if t.CritRank >= len(t.Busy) {
		return 0
	}
	return t.Busy[t.CritRank]
}

// CritWait returns the critical rank's wait time. Makespan = CritBusy +
// CritWait by construction.
func (t *TimeReport) CritWait() float64 {
	if t.CritRank >= len(t.Wait) {
		return 0
	}
	return t.Wait[t.CritRank]
}

// MaxRankMsgs returns the maximum timed-phase message count injected by
// any single rank — the latency-bound critical path, with the untimed
// housekeeping phases excluded exactly as they are from the clocks.
func (t *TimeReport) MaxRankMsgs() int64 {
	var m int64
	for _, v := range t.Msgs {
		if v > m {
			m = v
		}
	}
	return m
}

// CritPhaseOrder returns the critical rank's phase labels sorted by
// descending busy time.
func (t *TimeReport) CritPhaseOrder() []string {
	keys := make([]string, 0, len(t.CritPhases))
	for k := range t.CritPhases {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if t.CritPhases[keys[i]] != t.CritPhases[keys[j]] {
			return t.CritPhases[keys[i]] > t.CritPhases[keys[j]]
		}
		return keys[i] < keys[j]
	})
	return keys
}

// String renders a short human-readable timing summary.
func (t *TimeReport) String() string {
	s := fmt.Sprintf("makespan=%.6fs crit-rank=%d busy=%.6fs wait=%.6fs (α=%.2e β=%.2e)\n",
		t.Makespan, t.CritRank, t.CritBusy(), t.CritWait(), t.Machine.Alpha, t.Machine.Beta)
	for _, ph := range t.CritPhaseOrder() {
		s += fmt.Sprintf("  %-24s %12.6f s\n", ph, t.CritPhases[ph])
	}
	return s
}
