// Package trace is the instrumentation substrate of the simulated machine.
// It meters communication volume the way the paper measures it: it
// "instruments the implementations … and counts the aggregate bytes sent
// over the network" (paper §8, Score-P on Piz Daint). Every point-to-point
// delivery performed through internal/smpi is recorded here as an event on
// a per-rank timeline (see Timeline), attributed to the sending rank and to
// the phase label active on its communicator — and simultaneously timed
// under an α-β (latency–bandwidth) machine model, from which the simulated
// makespan and the per-rank busy/wait split derive.
package trace

import (
	"fmt"
	"sort"
)

// BytesPerElement is the element size used throughout (float64, as in the
// paper: "the models are scaled by the element size (8 bytes)").
const BytesPerElement = 8

// Report is a snapshot of the communication volume of one run, derived from
// the event timeline. Time carries the simulated-time view of the same run.
type Report struct {
	P         int
	Sent      []int64 // bytes sent per rank
	Recv      []int64 // bytes received per rank
	Msgs      []int64 // messages sent per rank (latency proxy)
	ByPhase   map[string]int64
	PhaseMsgs map[string]int64
	// Time is the α-β simulated-time sub-report (makespan, busy/wait
	// split, critical-path phase attribution). Derived from the same
	// timeline as the volume fields above.
	Time *TimeReport
	// Executor names the run executor that produced this report
	// ("goroutines" or "events"); stamped by the smpi runner. Both
	// executors produce byte-identical volume and bit-identical clocks,
	// so the field is provenance, not a caveat.
	Executor string
	// Workers is the event executor's concurrent-window width for this
	// run (1 = the serial baton schedule); 0 under the goroutine
	// executor, where every rank is always live. Provenance like
	// Executor: the report is bit-identical at every width.
	Workers int
}

// TotalMsgs is the aggregate message count.
func (r *Report) TotalMsgs() int64 {
	var s int64
	for _, v := range r.Msgs {
		s += v
	}
	return s
}

// TotalBytes is the aggregate bytes sent over the network (the paper's
// headline metric).
func (r *Report) TotalBytes() int64 {
	var s int64
	for _, v := range r.Sent {
		s += v
	}
	return s
}

// PerNodeBytes is the average bytes sent per rank (Fig. 6 y-axis:
// "communication volume per node").
func (r *Report) PerNodeBytes() float64 {
	if r.P == 0 {
		return 0
	}
	return float64(r.TotalBytes()) / float64(r.P)
}

// MaxRankBytes is the maximum bytes sent by any single rank — the critical
// path of a bandwidth-bound run.
func (r *Report) MaxRankBytes() int64 {
	var m int64
	for _, v := range r.Sent {
		if v > m {
			m = v
		}
	}
	return m
}

// TotalGB returns TotalBytes in gigabytes (1e9, as in the paper's tables).
func (r *Report) TotalGB() float64 { return float64(r.TotalBytes()) / 1e9 }

// AlgorithmBytes returns TotalBytes minus the named housekeeping phases.
// The paper "assume[s] that the input matrix A is already distributed in
// the block cyclic layout imposed by the algorithm" (§7.4); the harness
// therefore excludes the initial layout scatter and the final verification
// gather, which it labels PhaseLayout and PhaseCollect.
func (r *Report) AlgorithmBytes(excluded ...string) int64 {
	s := r.TotalBytes()
	for _, ph := range excluded {
		s -= r.ByPhase[ph]
	}
	return s
}

// Standard housekeeping phase labels shared by the LU implementations.
const (
	PhaseLayout  = "layout"
	PhaseCollect = "collect"
)

// Phases returns phase labels sorted by descending volume.
func (r *Report) Phases() []string {
	keys := make([]string, 0, len(r.ByPhase))
	for k := range r.ByPhase {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if r.ByPhase[keys[i]] != r.ByPhase[keys[j]] {
			return r.ByPhase[keys[i]] > r.ByPhase[keys[j]]
		}
		return keys[i] < keys[j]
	})
	return keys
}

// String renders a short human-readable summary.
func (r *Report) String() string {
	s := fmt.Sprintf("P=%d total=%.3f GB per-node=%.3f MB max-rank=%.3f MB\n",
		r.P, r.TotalGB(), r.PerNodeBytes()/1e6, float64(r.MaxRankBytes())/1e6)
	for _, ph := range r.Phases() {
		s += fmt.Sprintf("  %-24s %12.3f MB\n", ph, float64(r.ByPhase[ph])/1e6)
	}
	if r.Time != nil {
		s += fmt.Sprintf("  simulated makespan %.6f s (busy %.6f, wait %.6f on rank %d)\n",
			r.Time.Makespan, r.Time.CritBusy(), r.Time.CritWait(), r.Time.CritRank)
	}
	return s
}
