package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestTimelineVolumeBasics(t *testing.T) {
	tl := NewTimeline(3, DefaultMachine())
	tl.RecordSend(0, 1, 100, "x")
	tl.RecordSend(1, 2, 50, "y")
	tl.RecordSend(0, 2, 25, "x")
	r := tl.Report()
	if r.TotalBytes() != 175 {
		t.Fatalf("total %d", r.TotalBytes())
	}
	if r.Sent[0] != 125 || r.Recv[2] != 75 {
		t.Fatalf("per-rank: %v / %v", r.Sent, r.Recv)
	}
	if r.ByPhase["x"] != 125 || r.ByPhase["y"] != 50 {
		t.Fatalf("phases: %v", r.ByPhase)
	}
	if r.MaxRankBytes() != 125 {
		t.Fatalf("max %d", r.MaxRankBytes())
	}
	if got := r.PerNodeBytes(); got != 175.0/3 {
		t.Fatalf("per-node %v", got)
	}
}

func TestPhaseMessageCounts(t *testing.T) {
	tl := NewTimeline(2, DefaultMachine())
	tl.RecordSend(0, 1, 10, "a")
	tl.RecordSend(0, 1, 10, "a")
	tl.RecordSend(1, 0, 10, "b")
	r := tl.Report()
	if r.PhaseMsgs["a"] != 2 || r.PhaseMsgs["b"] != 1 {
		t.Fatalf("phase msgs %v", r.PhaseMsgs)
	}
	if r.TotalMsgs() != 3 || r.Msgs[0] != 2 {
		t.Fatalf("msgs %v", r.Msgs)
	}
	if r.Time.MaxRankMsgs() != 2 {
		t.Fatalf("max-rank timed msgs %d", r.Time.MaxRankMsgs())
	}
}

func TestReportIsSnapshot(t *testing.T) {
	tl := NewTimeline(1, DefaultMachine())
	tl.RecordSend(0, 0, 10, "a")
	r := tl.Report()
	tl.RecordSend(0, 0, 10, "a")
	if r.TotalBytes() != 10 {
		t.Fatal("report mutated after snapshot")
	}
}

func TestConcurrentRecording(t *testing.T) {
	tl := NewTimeline(8, DefaultMachine())
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tl.RecordSend(rank, (rank+1)%8, 1, "p")
			}
		}(r)
	}
	wg.Wait()
	if got := tl.Report().TotalBytes(); got != 8000 {
		t.Fatalf("lost updates: %d", got)
	}
}

func TestPhasesSortedByVolume(t *testing.T) {
	tl := NewTimeline(1, DefaultMachine())
	tl.RecordSend(0, 0, 5, "small")
	tl.RecordSend(0, 0, 500, "big")
	tl.RecordSend(0, 0, 50, "mid")
	ph := tl.Report().Phases()
	if ph[0] != "big" || ph[1] != "mid" || ph[2] != "small" {
		t.Fatalf("order: %v", ph)
	}
}

func TestGBAndString(t *testing.T) {
	tl := NewTimeline(2, DefaultMachine())
	tl.RecordSend(0, 1, 2_000_000_000, "bulk")
	r := tl.Report()
	if r.TotalGB() != 2.0 {
		t.Fatalf("GB %v", r.TotalGB())
	}
	s := r.String()
	if !strings.Contains(s, "bulk") || !strings.Contains(s, "P=2") {
		t.Fatalf("string: %q", s)
	}
	if !strings.Contains(s, "makespan") {
		t.Fatalf("string missing timing summary: %q", s)
	}
}
