package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	c := NewCounter(3)
	c.RecordSend(0, 1, 100, "x")
	c.RecordSend(1, 2, 50, "y")
	c.RecordSend(0, 2, 25, "x")
	r := c.Report()
	if r.TotalBytes() != 175 {
		t.Fatalf("total %d", r.TotalBytes())
	}
	if r.Sent[0] != 125 || r.Recv[2] != 75 {
		t.Fatalf("per-rank: %v / %v", r.Sent, r.Recv)
	}
	if r.ByPhase["x"] != 125 || r.ByPhase["y"] != 50 {
		t.Fatalf("phases: %v", r.ByPhase)
	}
	if r.MaxRankBytes() != 125 {
		t.Fatalf("max %d", r.MaxRankBytes())
	}
	if got := r.PerNodeBytes(); got != 175.0/3 {
		t.Fatalf("per-node %v", got)
	}
}

func TestPhaseMessageCounts(t *testing.T) {
	c := NewCounter(2)
	c.RecordSend(0, 1, 10, "a")
	c.RecordSend(0, 1, 10, "a")
	c.RecordSend(1, 0, 10, "b")
	r := c.Report()
	if r.PhaseMsgs["a"] != 2 || r.PhaseMsgs["b"] != 1 {
		t.Fatalf("phase msgs %v", r.PhaseMsgs)
	}
	if r.TotalMsgs() != 3 || r.Msgs[0] != 2 {
		t.Fatalf("msgs %v", r.Msgs)
	}
}

func TestReportIsSnapshot(t *testing.T) {
	c := NewCounter(1)
	c.RecordSend(0, 0, 10, "a")
	r := c.Report()
	c.RecordSend(0, 0, 10, "a")
	if r.TotalBytes() != 10 {
		t.Fatal("report mutated after snapshot")
	}
}

func TestConcurrentRecording(t *testing.T) {
	c := NewCounter(8)
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.RecordSend(rank, (rank+1)%8, 1, "p")
			}
		}(r)
	}
	wg.Wait()
	if got := c.Report().TotalBytes(); got != 8000 {
		t.Fatalf("lost updates: %d", got)
	}
}

func TestPhasesSortedByVolume(t *testing.T) {
	c := NewCounter(1)
	c.RecordSend(0, 0, 5, "small")
	c.RecordSend(0, 0, 500, "big")
	c.RecordSend(0, 0, 50, "mid")
	ph := c.Report().Phases()
	if ph[0] != "big" || ph[1] != "mid" || ph[2] != "small" {
		t.Fatalf("order: %v", ph)
	}
}

func TestGBAndString(t *testing.T) {
	c := NewCounter(2)
	c.RecordSend(0, 1, 2_000_000_000, "bulk")
	r := c.Report()
	if r.TotalGB() != 2.0 {
		t.Fatalf("GB %v", r.TotalGB())
	}
	s := r.String()
	if !strings.Contains(s, "bulk") || !strings.Contains(s, "P=2") {
		t.Fatalf("string: %q", s)
	}
}
