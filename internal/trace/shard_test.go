package trace

import (
	"reflect"
	"sync"
	"testing"
	"unsafe"
)

// stamped is a message in flight in the stress schedule below: the metered
// byte count plus the sender's injection stamp, exactly what smpi carries.
type stamped struct {
	bytes int64
	st    float64
}

// runStressSchedule executes a fixed deterministic schedule on tl: every
// rank injects `rounds` sends (one per peer offset, mixed timed/untimed
// phases), then matches its inbound messages in fixed order, then issues a
// one-sided Get. When concurrent is true each rank runs on its own
// goroutine — deliveries from disjoint rank pairs race on the timeline;
// when false the same per-rank program orders execute single-threaded, as
// the pre-shard global-mutex timeline would have serialized them.
func runStressSchedule(tl *Timeline, p, rounds int, concurrent bool) {
	phases := []string{"panel", "update", "layout"} // layout is untimed
	type key struct{ from, to int }
	ch := map[key]chan stamped{}
	for f := 0; f < p; f++ {
		for t := 0; t < p; t++ {
			ch[key{f, t}] = make(chan stamped, rounds)
		}
	}
	sendPhase := func(r int) {
		for k := 0; k < rounds; k++ {
			to := (r + 1 + k%(p-1)) % p
			ph := phases[k%len(phases)]
			bytes := int64(8 * (1 + (r+k)%7))
			st := tl.RecordSend(r, to, bytes, ph)
			ch[key{r, to}] <- stamped{bytes: bytes, st: st}
		}
	}
	recvPhase := func(r int) {
		for k := 0; k < rounds; k++ {
			// Mirror of the send pattern: in round k every rank targets
			// offset 1 + k%(p-1), so exactly one message arrives per round,
			// from the rank that offset maps back to. Matching in k order
			// fixes this rank's program order.
			from := (r - 1 - k%(p-1) + 2*p) % p
			m := <-ch[key{from, r}]
			tl.RecordRecv(from, r, m.bytes, phases[k%len(phases)], m.st)
		}
		tl.RecordOneSided(r, (r+1)%p, r, 256, "rma")
	}
	if !concurrent {
		for r := 0; r < p; r++ {
			sendPhase(r)
		}
		for r := 0; r < p; r++ {
			recvPhase(r)
		}
		return
	}
	var wg sync.WaitGroup
	var barrier sync.WaitGroup
	barrier.Add(p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			sendPhase(rank)
			barrier.Done()
			barrier.Wait() // all sends buffered before anyone matches
			recvPhase(rank)
		}(r)
	}
	wg.Wait()
}

// TestShardedTimelineDeterministicUnderConcurrency pins the tentpole
// guarantee of the shard refactor: with deliveries racing across all rank
// pairs, the merged Events() sequence, the full Report (volume and time,
// bitwise on every float), and the makespan are identical across repeated
// concurrent runs AND identical to the single-threaded execution of the
// same schedule — the pre-shard fixture, since a global-mutex timeline
// serializing a sequential caller records exactly that. Run under -race in
// CI, this also proves the shards race-free.
func TestShardedTimelineDeterministicUnderConcurrency(t *testing.T) {
	const p, rounds, reps = 8, 48, 10
	m := DefaultMachine()

	fixture := NewTimeline(p, m)
	fixture.ExcludeFromTiming("layout")
	runStressSchedule(fixture, p, rounds, false)
	wantEvents := fixture.Events()
	wantReport := fixture.Report()
	if len(wantEvents) == 0 || wantReport.TotalBytes() == 0 {
		t.Fatal("degenerate fixture: schedule produced no traffic")
	}

	for rep := 0; rep < reps; rep++ {
		tl := NewTimeline(p, m)
		tl.ExcludeFromTiming("layout")
		runStressSchedule(tl, p, rounds, true)
		gotEvents := tl.Events()
		if !reflect.DeepEqual(gotEvents, wantEvents) {
			for i := range wantEvents {
				if i >= len(gotEvents) || gotEvents[i] != wantEvents[i] {
					t.Fatalf("rep %d: event %d = %+v, fixture %+v", rep, i, gotEvents[i], wantEvents[i])
				}
			}
			t.Fatalf("rep %d: %d events, fixture %d", rep, len(gotEvents), len(wantEvents))
		}
		got := tl.Report()
		if got.Time.Makespan != wantReport.Time.Makespan {
			t.Fatalf("rep %d: makespan %v (not bit-identical to fixture %v)",
				rep, got.Time.Makespan, wantReport.Time.Makespan)
		}
		if !reflect.DeepEqual(got, wantReport) {
			t.Fatalf("rep %d: report diverged from fixture:\n got %+v\nwant %+v", rep, got, wantReport)
		}
	}
}

// TestShardSizeCacheAligned pins the padding arithmetic: the shard struct
// must stay a multiple of the 64-byte cache line so adjacent shards in the
// timeline's backing array never false-share. If a field is added, resize
// the trailing pad.
func TestShardSizeCacheAligned(t *testing.T) {
	if sz := unsafe.Sizeof(shard{}); sz%64 != 0 {
		t.Fatalf("shard is %d bytes, not a cache-line multiple; adjust the pad", sz)
	}
}

// TestEventsPreallocationBounded: the Events() preallocation must follow
// retained events, not the raw delivery count — a capped paper-scale run
// meters tens of millions of deliveries against a 2²⁰ retention cap.
func TestEventsPreallocationBounded(t *testing.T) {
	tl := NewTimeline(2, Machine{})
	tl.SetEventCap(4)
	for i := 0; i < 100; i++ {
		st := tl.RecordSend(0, 1, 1, "p")
		tl.RecordRecv(0, 1, 1, "p", st)
	}
	ev := tl.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d events, cap 4", len(ev))
	}
	if cap(ev) > 8 {
		t.Fatalf("Events() preallocated %d slots for 4 retained events", cap(ev))
	}
}

// TestShardedEndpointIsolation pins the shard layout promise: a delivery
// between ranks 1 and 2 must leave every other rank's shard untouched — no
// clock movement, no volume, no events — which is what makes disjoint
// deliveries contention-free.
func TestShardedEndpointIsolation(t *testing.T) {
	tl := NewTimeline(4, Machine{Alpha: 1, Beta: 0.5})
	st := tl.RecordSend(1, 2, 10, "p")
	tl.RecordRecv(1, 2, 10, "p", st)
	r := tl.Report()
	for _, other := range []int{0, 3} {
		if r.Sent[other] != 0 || r.Recv[other] != 0 || r.Msgs[other] != 0 ||
			r.Time.Clock[other] != 0 || r.Time.Busy[other] != 0 || r.Time.Wait[other] != 0 {
			t.Fatalf("rank %d shard touched by a 1→2 delivery: %+v", other, r)
		}
	}
	if r.Sent[1] != 10 || r.Recv[2] != 10 {
		t.Fatalf("endpoint aggregates wrong: %+v", r)
	}
}
