package trace

import (
	"reflect"
	"testing"
)

// flatStub evaluates the identical float expression the plain timeline
// uses, so a timeline with it installed must be bit-identical to one
// without any topology.
type flatStub struct{ m Machine }

func (f flatStub) Name() string                               { return "flat-stub" }
func (f flatStub) SendCost(from, to int, bytes int64) float64 { return f.m.Time(float64(bytes), 1) }
func (f flatStub) RecvCost(from, to int, bytes int64) float64 { return f.m.Time(float64(bytes), 1) }
func (f flatStub) IngressOccupancy(from, to int, bytes int64) float64 {
	return 0
}

// contendedStub charges a fixed cost per message and serializes the
// receiver's ingress link at occ seconds per delivery.
type contendedStub struct{ cost, occ float64 }

func (c contendedStub) Name() string                                       { return "contended-stub" }
func (c contendedStub) SendCost(from, to int, bytes int64) float64         { return c.cost }
func (c contendedStub) RecvCost(from, to int, bytes int64) float64         { return c.cost }
func (c contendedStub) IngressOccupancy(from, to int, bytes int64) float64 { return c.occ }

// TestFlatTopologyBitParity drives the same message script through a
// plain timeline and one with a flat topology installed; every derived
// number must be bit-identical, and only the provenance stamp differs.
func TestFlatTopologyBitParity(t *testing.T) {
	m := Machine{Alpha: 1.3e-6, Beta: 2.7e-10}
	script := func(tl *Timeline) {
		st := tl.RecordSend(0, 1, 4096, "pivot")
		tl.RecordRecv(0, 1, 4096, "pivot", st)
		st = tl.RecordSend(1, 2, 123, "update")
		tl.RecordRecv(1, 2, 123, "update", st)
		tl.RecordOneSided(2, 2, 0, 999, "update")
		st = tl.RecordSend(2, 1, 77, "pivot")
		tl.RecordRecv(2, 1, 77, "pivot", st)
	}
	plain := NewTimeline(3, m)
	script(plain)
	flat := NewTimeline(3, m)
	flat.SetTopology(flatStub{m})
	script(flat)
	pr, fr := plain.Report(), flat.Report()
	if fr.Time.Topology != "flat-stub" {
		t.Fatalf("topology stamp %q, want flat-stub", fr.Time.Topology)
	}
	if pr.Time.Topology != "" {
		t.Fatalf("plain run stamped a topology: %q", pr.Time.Topology)
	}
	fr.Time.Topology = ""
	if !reflect.DeepEqual(pr, fr) {
		t.Fatalf("flat topology is not bit-identical to the plain machine:\nplain %+v\nflat  %+v", pr, fr)
	}
}

// TestIngressLinkFIFO pins the contention charging rule: deliveries
// matched by one rank serialize on its ingress link in matching order,
// and the serialization shows up as wait, not busy time.
func TestIngressLinkFIFO(t *testing.T) {
	tl := NewTimeline(3, Machine{})
	tl.SetTopology(contendedStub{cost: 1, occ: 10})
	// Two sends arrive at rank 2 "instantly" (zero-cost machine clocks on
	// ranks 0/1 → both send stamps are 1·cost after their sends).
	st0 := tl.RecordSend(0, 2, 100, "pivot")
	st1 := tl.RecordSend(1, 2, 100, "pivot")
	// Rank 2 matches rank 0's delivery first, then rank 1's.
	tl.RecordRecv(0, 2, 100, "pivot", st0)
	mid := tl.Clock(2)
	tl.RecordRecv(1, 2, 100, "pivot", st1)
	// First delivery: start = max(0, st0=1) = 1 (link idle, occupies
	// [1, 11)), then +1 recv cost → clock 2.
	if mid != 2 {
		t.Fatalf("first delivery finished at %v, want 2", mid)
	}
	// Second delivery: in flight at st1=1, receiver free at 2, but the
	// link is busy until 11 → start 11, +1 recv cost → clock 12.
	if got := tl.Clock(2); got != 12 {
		t.Fatalf("second delivery finished at %v, want 12 (FIFO link grant)", got)
	}
	rep := tl.Report()
	// Wait on rank 2: (1-0) for the first message's flight + (11-2) for
	// the link. Busy: two 1-second receptions.
	if got := rep.Time.Wait[2]; got != 10 {
		t.Fatalf("rank 2 wait %v, want 10", got)
	}
	if got := rep.Time.Busy[2]; got != 2 {
		t.Fatalf("rank 2 busy %v, want 2", got)
	}
	// Other ranks' links are independent: a delivery matched by rank 0
	// sees an idle link even though rank 2's is saturated.
	st2 := tl.RecordSend(1, 0, 100, "pivot")
	tl.RecordRecv(1, 0, 100, "pivot", st2)
	if got := tl.Clock(0); got != st2+1 {
		t.Fatalf("rank 0 delivery finished at %v, want %v (own idle link)", got, st2+1)
	}
}

// TestOneSidedSkipsIngressLink: RMA transfers never touch the FIFO
// link state — a Get after a saturating two-sided burst pays only its
// own cost.
func TestOneSidedSkipsIngressLink(t *testing.T) {
	tl := NewTimeline(2, Machine{})
	tl.SetTopology(contendedStub{cost: 1, occ: 50})
	st := tl.RecordSend(0, 1, 10, "pivot")
	tl.RecordRecv(0, 1, 10, "pivot", st) // link busy until 51
	before := tl.Clock(1)
	tl.RecordOneSided(1, 0, 1, 10, "pivot") // Get: active == to
	if got := tl.Clock(1); got != before+1 {
		t.Fatalf("one-sided advanced clock to %v, want %v (no link wait)", got, before+1)
	}
}
