package pebble

import (
	"testing"

	"repro/internal/daap"
)

// chain builds a path graph in0 -> v1 -> v2 -> ... -> vk.
func chain(k int) *daap.CDAG {
	g := &daap.CDAG{}
	add := func(preds []int, input bool) int {
		v := len(g.Preds)
		g.Names = append(g.Names, "")
		g.Preds = append(g.Preds, preds)
		g.Succs = append(g.Succs, nil)
		g.Input = append(g.Input, input)
		for _, p := range preds {
			g.Succs[p] = append(g.Succs[p], v)
		}
		return v
	}
	prev := add(nil, true)
	for i := 0; i < k; i++ {
		prev = add([]int{prev}, false)
	}
	return g
}

func TestMoveLegality(t *testing.T) {
	g := chain(2)
	s := NewState(g, 2)
	if err := s.Apply(Move{Compute, 1}); err == nil {
		t.Fatal("compute without red predecessor allowed")
	}
	if err := s.Apply(Move{Load, 1}); err == nil {
		t.Fatal("load without blue pebble allowed")
	}
	if err := s.Apply(Move{Load, 0}); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(Move{Compute, 1}); err != nil {
		t.Fatal(err)
	}
	// M=2 red pebbles exhausted.
	if err := s.Apply(Move{Compute, 2}); err == nil {
		t.Fatal("exceeded red pebble budget")
	}
	if err := s.Apply(Move{Discard, 0}); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(Move{Compute, 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(Move{Store, 2}); err != nil {
		t.Fatal(err)
	}
	if !s.Done() {
		t.Fatal("outputs not blue")
	}
	if s.IO != 2 {
		t.Fatalf("IO=%d want 2", s.IO)
	}
}

func TestComputeInputRejected(t *testing.T) {
	g := chain(1)
	s := NewState(g, 2)
	if err := s.Apply(Move{Compute, 0}); err == nil {
		t.Fatal("computed an input vertex")
	}
}

func TestGreedyChainMinimalIO(t *testing.T) {
	// A chain needs exactly 1 load + 1 store for any M >= 2.
	g := chain(10)
	sched, io, err := Greedy(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if io != 2 {
		t.Fatalf("chain IO=%d want 2", io)
	}
	if got, err := Replay(g, 2, sched); err != nil || got != io {
		t.Fatalf("replay: io=%d err=%v", got, err)
	}
}

func TestGreedyTooSmallM(t *testing.T) {
	g := daap.BuildMMMCDAG(2)
	if _, _, err := Greedy(g, 2); err == nil {
		t.Fatal("M=2 cannot hold 3 gemm operands + output")
	}
}

func TestGreedyLUValidAndBounded(t *testing.T) {
	for _, n := range []int{3, 4, 6} {
		for _, m := range []int{6, 10, 20} {
			g := daap.BuildLUCDAG(n)
			sched, io, err := Greedy(g, m)
			if err != nil {
				t.Fatalf("n=%d M=%d: %v", n, m, err)
			}
			if got, err := Replay(g, m, sched); err != nil {
				t.Fatalf("n=%d M=%d replay: %v", n, m, err)
			} else if got != io {
				t.Fatalf("replay IO %d != %d", got, io)
			}
			// Sanity: IO at least all inputs loaded once... not guaranteed
			// (some inputs may be consumed in place), but must at least
			// store all outputs and load something.
			if io <= 0 {
				t.Fatalf("n=%d M=%d: nonpositive IO %d", n, m, io)
			}
		}
	}
}

func TestGreedyMoreMemoryNeverWorse(t *testing.T) {
	g := daap.BuildLUCDAG(5)
	_, io1, err := Greedy(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	_, io2, err := Greedy(g, 64)
	if err != nil {
		t.Fatal(err)
	}
	if io2 > io1 {
		t.Fatalf("more memory increased IO: %d -> %d", io1, io2)
	}
}

func TestMinSet(t *testing.T) {
	// v0(in) -> v1 -> v2; Min({1,2}) = {2}.
	g := chain(2)
	min := MinSet(g, []int{1, 2})
	if len(min) != 1 || min[0] != 2 {
		t.Fatalf("min set %v", min)
	}
}

func TestIsDominator(t *testing.T) {
	g := chain(3) // 0 -> 1 -> 2 -> 3
	if !IsDominator(g, []int{3}, []int{2}) {
		t.Fatal("{2} dominates {3}")
	}
	if !IsDominator(g, []int{3}, []int{1}) {
		t.Fatal("{1} dominates {3}")
	}
	if IsDominator(g, []int{2}, []int{3}) {
		t.Fatal("{3} cannot dominate {2} (downstream)")
	}
}

func TestMinDominatorSizeDiamond(t *testing.T) {
	// Two inputs feeding one vertex: dominator needs both (or the vertex).
	g := &daap.CDAG{}
	add := func(preds []int, input bool) int {
		v := len(g.Preds)
		g.Names = append(g.Names, "")
		g.Preds = append(g.Preds, preds)
		g.Succs = append(g.Succs, nil)
		g.Input = append(g.Input, input)
		for _, p := range preds {
			g.Succs[p] = append(g.Succs[p], v)
		}
		return v
	}
	a := add(nil, true)
	b := add(nil, true)
	c := add([]int{a, b}, false)
	d := add([]int{c}, false)
	if got := MinDominatorSize(g, []int{d}); got != 1 {
		t.Fatalf("min dominator of {d} = %d, want 1 (cut at c)", got)
	}
	if got := MinDominatorSize(g, []int{c}); got != 1 {
		t.Fatalf("min dominator of {c} = %d, want 1 (c itself)", got)
	}
	if got := MinDominatorSize(g, []int{c, d}); got != 1 {
		t.Fatalf("min dominator of {c,d} = %d", got)
	}
}

func TestMinDominatorDisjointPaths(t *testing.T) {
	// k independent chains into the target set need k dominator vertices.
	g := &daap.CDAG{}
	add := func(preds []int, input bool) int {
		v := len(g.Preds)
		g.Names = append(g.Names, "")
		g.Preds = append(g.Preds, preds)
		g.Succs = append(g.Succs, nil)
		g.Input = append(g.Input, input)
		for _, p := range preds {
			g.Succs[p] = append(g.Succs[p], v)
		}
		return v
	}
	var targets []int
	for i := 0; i < 4; i++ {
		in := add(nil, true)
		mid := add([]int{in}, false)
		targets = append(targets, add([]int{mid}, false))
	}
	if got := MinDominatorSize(g, targets); got != 4 {
		t.Fatalf("min dominator = %d, want 4", got)
	}
}

func TestXPartitionValid(t *testing.T) {
	g := chain(4) // 0 -> 1 -> 2 -> 3 -> 4
	// Two subcomputations {1,2} and {3,4}: dominators of size 1, mins of
	// size 1, acyclic order — valid for X >= 1.
	if !XPartitionValid(g, [][]int{{1, 2}, {3, 4}}, 1) {
		t.Fatal("valid partition rejected")
	}
	// Overlapping subsets are invalid.
	if XPartitionValid(g, [][]int{{1, 2}, {2, 3}}, 5) {
		t.Fatal("overlap accepted")
	}
}

func TestXPartitionCycleRejected(t *testing.T) {
	// v1 -> v2 -> v3 with partition {1,3} and {2}: quotient has a 2-cycle.
	g := chain(3)
	if XPartitionValid(g, [][]int{{1, 3}, {2}}, 5) {
		t.Fatal("cyclic quotient accepted")
	}
}

func TestGreedyIOAboveLowerBoundLU(t *testing.T) {
	// Bracket: greedy upper bound must sit at or above the X-partitioning
	// closed-form lower bound (verified numerically in internal/xpart).
	n, m := 6, 8
	g := daap.BuildLUCDAG(n)
	_, io, err := Greedy(g, m)
	if err != nil {
		t.Fatal(err)
	}
	nf := float64(n)
	lower := (2*nf*nf*nf - 6*nf*nf + 4*nf) / 3 / 2.828 // /sqrt(8)
	if float64(io) < lower {
		t.Fatalf("greedy IO %d below lower bound %.1f", io, lower)
	}
}
