// Package pebble implements the red-blue pebble game of Hong & Kung as used
// by the paper (§2.3): move legality, schedule replay with I/O counting, a
// greedy scheduler that produces valid schedules (I/O upper bounds), and the
// dominator/minimum-set machinery behind X-Partitioning, including an exact
// minimum-dominator computation via vertex min-cut for the small concrete
// cDAGs built by internal/daap.
package pebble

import (
	"fmt"

	"repro/internal/daap"
)

// MoveKind enumerates the four legal moves (§2.3.1).
type MoveKind int

const (
	Load MoveKind = iota + 1
	Store
	Compute
	Discard
)

func (k MoveKind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	case Compute:
		return "compute"
	case Discard:
		return "discard"
	}
	return fmt.Sprintf("move(%d)", int(k))
}

// Move is one step of a pebbling schedule.
type Move struct {
	Kind   MoveKind
	Vertex int
}

// State tracks a game in progress on a cDAG with M red pebbles.
type State struct {
	G    *daap.CDAG
	M    int
	Red  map[int]bool
	Blue map[int]bool
	IO   int // loads + stores so far
}

// NewState starts the game: blue pebbles on all inputs, no red pebbles.
func NewState(g *daap.CDAG, m int) *State {
	s := &State{G: g, M: m, Red: map[int]bool{}, Blue: map[int]bool{}}
	for v := range g.Preds {
		if g.Input[v] {
			s.Blue[v] = true
		}
	}
	return s
}

// Apply performs one move, returning an error if it is illegal.
func (s *State) Apply(mv Move) error {
	v := mv.Vertex
	if v < 0 || v >= s.G.NumVertices() {
		return fmt.Errorf("pebble: vertex %d out of range", v)
	}
	switch mv.Kind {
	case Load:
		if !s.Blue[v] {
			return fmt.Errorf("pebble: load of %d without a blue pebble", v)
		}
		if !s.Red[v] {
			if len(s.Red) >= s.M {
				return fmt.Errorf("pebble: load of %d exceeds %d red pebbles", v, s.M)
			}
			s.Red[v] = true
		}
		s.IO++
	case Store:
		if !s.Red[v] {
			return fmt.Errorf("pebble: store of %d without a red pebble", v)
		}
		s.Blue[v] = true
		s.IO++
	case Compute:
		for _, p := range s.G.Preds[v] {
			if !s.Red[p] {
				return fmt.Errorf("pebble: compute of %d: predecessor %d not red", v, p)
			}
		}
		if s.G.Input[v] {
			return fmt.Errorf("pebble: compute of input vertex %d", v)
		}
		if !s.Red[v] {
			if len(s.Red) >= s.M {
				return fmt.Errorf("pebble: compute of %d exceeds %d red pebbles", v, s.M)
			}
			s.Red[v] = true
		}
	case Discard:
		if s.Red[v] {
			delete(s.Red, v)
		} else if s.Blue[v] {
			delete(s.Blue, v)
		} else {
			return fmt.Errorf("pebble: discard of unpebbled vertex %d", v)
		}
	default:
		return fmt.Errorf("pebble: unknown move kind %v", mv.Kind)
	}
	return nil
}

// Done reports whether all outputs carry blue pebbles.
func (s *State) Done() bool {
	for _, v := range s.G.Outputs() {
		if !s.Blue[v] {
			return false
		}
	}
	return true
}

// Replay validates a full schedule from the initial state and returns the
// I/O count.
func Replay(g *daap.CDAG, m int, schedule []Move) (int, error) {
	s := NewState(g, m)
	for i, mv := range schedule {
		if err := s.Apply(mv); err != nil {
			return s.IO, fmt.Errorf("move %d: %w", i, err)
		}
	}
	if !s.Done() {
		return s.IO, fmt.Errorf("pebble: schedule ends with unpebbled outputs")
	}
	return s.IO, nil
}
