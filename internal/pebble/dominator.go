package pebble

import "repro/internal/daap"

// MinSet returns Min(Vh): the vertices of the subset with no immediate
// successor inside the subset (§2.3.2 — "a set of outputs of Vh").
func MinSet(g *daap.CDAG, vh []int) []int {
	in := toSet(vh)
	var out []int
	for _, v := range vh {
		internal := false
		for _, s := range g.Succs[v] {
			if in[s] {
				internal = true
				break
			}
		}
		if !internal {
			out = append(out, v)
		}
	}
	return out
}

// IsDominator reports whether dom intersects every path from a graph input
// into vh (§2.3.2): with dom removed, no input may reach a vertex of vh.
func IsDominator(g *daap.CDAG, vh, dom []int) bool {
	blocked := toSet(dom)
	target := toSet(vh)
	// BFS from all inputs avoiding blocked vertices.
	seen := make([]bool, g.NumVertices())
	var queue []int
	for v := range g.Preds {
		if g.Input[v] && !blocked[v] {
			seen[v] = true
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if target[v] {
			return false
		}
		for _, s := range g.Succs[v] {
			if !seen[s] && !blocked[s] {
				seen[s] = true
				queue = append(queue, s)
			}
		}
	}
	return true
}

// MinDominatorSize computes |Dom_min(Vh)| exactly as a minimum VERTEX cut
// between the graph inputs and Vh, via vertex splitting and unit-capacity
// max-flow (Menger). Exponential-free and exact; intended for the small
// concrete cDAGs used in tests and examples.
func MinDominatorSize(g *daap.CDAG, vh []int) int {
	n := g.NumVertices()
	target := toSet(vh)
	// Node ids: v_in = 2v, v_out = 2v+1, source = 2n, sink = 2n+1.
	src, snk := 2*n, 2*n+1
	type edge struct{ to, rev, cap int }
	adj := make([][]edge, 2*n+2)
	addEdge := func(a, b, cap int) {
		adj[a] = append(adj[a], edge{b, len(adj[b]), cap})
		adj[b] = append(adj[b], edge{a, len(adj[a]) - 1, 0})
	}
	const inf = 1 << 30
	for v := 0; v < n; v++ {
		// Vertex capacity 1 — cutting a vertex costs one dominator member.
		addEdge(2*v, 2*v+1, 1)
		for _, s := range g.Succs[v] {
			addEdge(2*v+1, 2*s, inf)
		}
		if g.Input[v] {
			addEdge(src, 2*v, inf)
		}
		if target[v] {
			addEdge(2*v+1, snk, inf)
		}
	}
	// Dinic-free simple BFS augmenting (unit capacities keep this fast).
	flow := 0
	for {
		parent := make([]int, len(adj))
		parentEdge := make([]int, len(adj))
		for i := range parent {
			parent[i] = -1
		}
		parent[src] = src
		queue := []int{src}
		for len(queue) > 0 && parent[snk] < 0 {
			v := queue[0]
			queue = queue[1:]
			for ei, e := range adj[v] {
				if e.cap > 0 && parent[e.to] < 0 {
					parent[e.to] = v
					parentEdge[e.to] = ei
					queue = append(queue, e.to)
				}
			}
		}
		if parent[snk] < 0 {
			break
		}
		// Augment by 1 (vertex capacities are 1 on every s-t path).
		v := snk
		for v != src {
			p := v
			v = parent[v]
			e := &adj[v][parentEdge[p]]
			e.cap--
			adj[p][e.rev].cap++
		}
		flow++
		if flow > n {
			panic("pebble: flow exceeded vertex count")
		}
	}
	return flow
}

// XPartitionValid checks the §2.3.3 conditions for a candidate X-partition:
// subsets are disjoint, cover only non-input vertices at most once, have no
// cyclic inter-subset dependencies, and satisfy |Dom_min| ≤ X and |Min| ≤ X.
func XPartitionValid(g *daap.CDAG, parts [][]int, x int) bool {
	seen := map[int]bool{}
	for _, vh := range parts {
		for _, v := range vh {
			if seen[v] {
				return false
			}
			seen[v] = true
		}
	}
	// Acyclicity of the quotient graph.
	partOf := map[int]int{}
	for pi, vh := range parts {
		for _, v := range vh {
			partOf[v] = pi
		}
	}
	q := make(map[int]map[int]bool)
	for v := range g.Preds {
		pv, ok := partOf[v]
		if !ok {
			continue
		}
		for _, s := range g.Succs[v] {
			if ps, ok := partOf[s]; ok && ps != pv {
				if q[pv] == nil {
					q[pv] = map[int]bool{}
				}
				q[pv][ps] = true
			}
		}
	}
	if hasCycle(q, len(parts)) {
		return false
	}
	for _, vh := range parts {
		if MinDominatorSize(g, vh) > x || len(MinSet(g, vh)) > x {
			return false
		}
	}
	return true
}

func hasCycle(q map[int]map[int]bool, n int) bool {
	state := make([]int, n) // 0 unvisited, 1 in stack, 2 done
	var visit func(int) bool
	visit = func(v int) bool {
		state[v] = 1
		for s := range q[v] {
			if state[s] == 1 {
				return true
			}
			if state[s] == 0 && visit(s) {
				return true
			}
		}
		state[v] = 2
		return false
	}
	for v := 0; v < n; v++ {
		if state[v] == 0 && visit(v) {
			return true
		}
	}
	return false
}

func toSet(list []int) map[int]bool {
	m := make(map[int]bool, len(list))
	for _, v := range list {
		m[v] = true
	}
	return m
}
