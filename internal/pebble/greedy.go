package pebble

import (
	"fmt"
	"sort"

	"repro/internal/daap"
)

// Greedy computes a valid schedule by processing vertices in topological
// order, loading missing predecessors and evicting with a farthest-next-use
// policy (Belady). The returned I/O count is an UPPER bound on the optimal
// Q; together with the X-partitioning LOWER bound from internal/xpart it
// brackets the true I/O complexity of small cDAGs.
func Greedy(g *daap.CDAG, m int) ([]Move, int, error) {
	order := topo(g)
	// nextUse[v] holds the (sorted) schedule positions where v is consumed.
	nextUse := make(map[int][]int)
	pos := make([]int, g.NumVertices())
	for i, v := range order {
		pos[v] = i
	}
	for v := range g.Preds {
		for _, p := range g.Preds[v] {
			nextUse[p] = append(nextUse[p], pos[v])
		}
	}
	for _, uses := range nextUse {
		sort.Ints(uses)
	}

	s := NewState(g, m)
	var schedule []Move
	apply := func(mv Move) error {
		if err := s.Apply(mv); err != nil {
			return err
		}
		schedule = append(schedule, mv)
		return nil
	}
	// evict frees one red slot, storing the victim first if its value is
	// not yet safe in slow memory and still needed (or is an output).
	evict := func(now int, keep map[int]bool) error {
		victim, far := -1, -1
		for v := range s.Red {
			if keep[v] {
				continue
			}
			nu := futureUse(nextUse[v], now)
			if nu > far {
				victim, far = v, nu
			}
		}
		if victim < 0 {
			return fmt.Errorf("pebble: no evictable pebble (M=%d too small for a degree-%d vertex)", s.M, len(keep))
		}
		needsStore := !s.Blue[victim] && (futureUse(nextUse[victim], now) < int(^uint(0)>>1) || len(g.Succs[victim]) == 0)
		if needsStore {
			if err := apply(Move{Store, victim}); err != nil {
				return err
			}
		}
		return apply(Move{Discard, victim})
	}

	for i, v := range order {
		if g.Input[v] {
			continue // inputs are loaded on demand
		}
		keep := map[int]bool{v: true}
		for _, p := range g.Preds[v] {
			keep[p] = true
		}
		if len(keep) > s.M {
			return nil, 0, fmt.Errorf("pebble: M=%d cannot hold %d operands", s.M, len(keep))
		}
		// Load missing predecessors.
		for _, p := range g.Preds[v] {
			if s.Red[p] {
				continue
			}
			for len(s.Red) >= s.M {
				if err := evict(i, keep); err != nil {
					return nil, 0, err
				}
			}
			if !s.Blue[p] {
				return nil, 0, fmt.Errorf("pebble: predecessor %d neither red nor blue", p)
			}
			if err := apply(Move{Load, p}); err != nil {
				return nil, 0, err
			}
		}
		for len(s.Red) >= s.M && !s.Red[v] {
			if err := evict(i, keep); err != nil {
				return nil, 0, err
			}
		}
		if err := apply(Move{Compute, v}); err != nil {
			return nil, 0, err
		}
	}
	// Store remaining outputs.
	for _, v := range g.Outputs() {
		if s.Blue[v] {
			continue
		}
		if !s.Red[v] {
			return nil, 0, fmt.Errorf("pebble: output %d lost before store", v)
		}
		if err := apply(Move{Store, v}); err != nil {
			return nil, 0, err
		}
	}
	return schedule, s.IO, nil
}

func futureUse(uses []int, now int) int {
	for _, u := range uses {
		if u > now {
			return u
		}
	}
	return int(^uint(0) >> 1) // never used again
}

// topo returns a topological order of the cDAG.
func topo(g *daap.CDAG) []int {
	n := g.NumVertices()
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = len(g.Preds[v])
	}
	var queue, order []int
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, s := range g.Succs[v] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != n {
		panic("pebble: cDAG has a cycle")
	}
	return order
}
