package topo

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/trace"
)

func mustBuild(t *testing.T, spec Spec, base trace.Machine, p int) trace.Topology {
	t.Helper()
	tp, err := spec.Build(base, p)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// TestFlatMatchesMachine: the flat family evaluates the identical float
// expression the plain timeline uses, for arbitrary endpoints.
func TestFlatMatchesMachine(t *testing.T) {
	m := trace.Machine{Alpha: 1.7e-6, Beta: 3.1e-10}
	f := Flat(m)
	for _, bytes := range []int64{0, 1, 8, 4096, 1 << 20} {
		want := m.Time(float64(bytes), 1)
		if got := f.SendCost(3, 9, bytes); got != want {
			t.Fatalf("SendCost(%d) = %v, want %v", bytes, got, want)
		}
		if got := f.RecvCost(9, 3, bytes); got != want {
			t.Fatalf("RecvCost(%d) = %v, want %v", bytes, got, want)
		}
		if occ := f.IngressOccupancy(3, 9, bytes); occ != 0 {
			t.Fatalf("flat must not contend, got occupancy %v", occ)
		}
	}
}

// TestHierTiers pins the two-tier cost split and the contended variant's
// ingress rule.
func TestHierTiers(t *testing.T) {
	spec := Spec{Preset: "hier", RanksPerNode: 4,
		Intra: trace.Machine{Alpha: 1e-7, Beta: 1e-11},
		Inter: trace.Machine{Alpha: 2e-6, Beta: 2e-10}}
	tp := mustBuild(t, spec, trace.Machine{}, 16)
	const b = int64(1000)
	// Ranks 0 and 3 share node 0; rank 4 is on node 1.
	local := spec.Intra.Time(float64(b), 1)
	remote := spec.Inter.Time(float64(b), 1)
	if got := tp.SendCost(0, 3, b); got != local {
		t.Fatalf("intra-node cost %v, want %v", got, local)
	}
	if got := tp.SendCost(0, 4, b); got != remote {
		t.Fatalf("inter-node cost %v, want %v", got, remote)
	}
	if occ := tp.IngressOccupancy(0, 4, b); occ != 0 {
		t.Fatalf("uncontended hier must not charge ingress, got %v", occ)
	}
	spec.Contention = 1
	ct := mustBuild(t, spec, trace.Machine{}, 16)
	// Bandwidth division: the node ingress is shared by RanksPerNode
	// ranks, so one delivery occupies it for rpn·β·bytes.
	if occ, want := ct.IngressOccupancy(0, 4, b), 4*float64(b)*spec.Inter.Beta; occ != want {
		t.Fatalf("contended ingress %v, want shared-link serialization %v", occ, want)
	}
	if occ := ct.IngressOccupancy(0, 3, b); occ != 0 {
		t.Fatalf("intra-node transfers must not contend, got %v", occ)
	}
}

// TestDragonflyRoutes pins the per-hop-α / min-β rule on all three tiers.
func TestDragonflyRoutes(t *testing.T) {
	spec := Spec{Preset: "dragonfly", RanksPerNode: 2, NodesPerGroup: 2,
		Intra:  trace.Machine{Alpha: 1e-7, Beta: 1e-11},
		Inter:  trace.Machine{Alpha: 1e-6, Beta: 1e-10},
		Global: trace.Machine{Alpha: 3e-6, Beta: 2e-10}}
	tp := mustBuild(t, spec, trace.Machine{}, 16)
	const b = int64(500)
	fb := float64(b)
	// same node: ranks 0, 1.
	if got, want := tp.SendCost(0, 1, b), spec.Intra.Alpha+fb*spec.Intra.Beta; got != want {
		t.Fatalf("same-node route %v, want %v", got, want)
	}
	// same group (nodes 0 and 1 = ranks 0..3): two node hops + one group link.
	wantGroup := 2*spec.Intra.Alpha + spec.Inter.Alpha + fb*spec.Inter.Beta
	if got := tp.SendCost(0, 2, b); got != wantGroup {
		t.Fatalf("same-group route %v, want %v", got, want(wantGroup))
	}
	// cross group (rank 0 in group 0, rank 4 on node 2 = group 1).
	wantGlobal := 2*spec.Intra.Alpha + 2*spec.Inter.Alpha + spec.Global.Alpha + fb*spec.Global.Beta
	if got := tp.SendCost(0, 4, b); got != wantGlobal {
		t.Fatalf("cross-group route %v, want %v", got, wantGlobal)
	}
}

func want(v float64) float64 { return v }

// TestFatTreeDistances pins the LCA hop count and the core taper.
func TestFatTreeDistances(t *testing.T) {
	spec := Spec{Preset: "fattree", RanksPerNode: 1, Radix: 2,
		Intra:  trace.Machine{},
		Inter:  trace.Machine{Alpha: 1e-6, Beta: 1e-10},
		Global: trace.Machine{Alpha: 2e-6, Beta: 4e-10}}
	// 8 nodes, radix 2 → height 3.
	tp := mustBuild(t, spec, trace.Machine{}, 8)
	const b = int64(100)
	fb := float64(b)
	// Nodes 0 and 1 meet one level up: 2 edge hops.
	if got, want := tp.SendCost(0, 1, b), 2*spec.Inter.Alpha+fb*spec.Inter.Beta; got != want {
		t.Fatalf("l=1 route %v, want %v", got, want)
	}
	// Nodes 0 and 2 meet two levels up: 4 edge hops.
	if got, want := tp.SendCost(0, 2, b), 4*spec.Inter.Alpha+fb*spec.Inter.Beta; got != want {
		t.Fatalf("l=2 route %v, want %v", got, want)
	}
	// Nodes 0 and 7 cross the root: 4 edge + 2 core hops, core β governs.
	wantRoot := 4*spec.Inter.Alpha + 2*spec.Global.Alpha + fb*spec.Global.Beta
	if got := tp.SendCost(0, 7, b); got != wantRoot {
		t.Fatalf("root crossing %v, want %v", got, wantRoot)
	}
}

// TestPresets: every named preset resolves, validates, builds for a
// small world, and the flat preset builds the base machine.
func TestPresets(t *testing.T) {
	for _, name := range Presets() {
		spec, err := PresetSpec(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("%s: invalid preset: %v", name, err)
		}
		tp := mustBuild(t, spec, trace.DefaultMachine(), 64)
		if tp == nil {
			t.Fatalf("%s: built nil", name)
		}
		if tp.Name() == "" {
			t.Fatalf("%s: empty topology name", name)
		}
	}
	if _, err := PresetSpec("torus"); err == nil {
		t.Fatal("unknown preset accepted")
	}
	m := trace.Machine{Alpha: 5e-6, Beta: 5e-10}
	spec, _ := PresetSpec("flat")
	tp := mustBuild(t, spec, m, 8)
	if got, want := tp.SendCost(0, 1, 100), m.Time(100, 1); got != want {
		t.Fatalf("flat preset ignores the session machine: %v != %v", got, want)
	}
}

// TestSpecValidate covers the typed failure surface.
func TestSpecValidate(t *testing.T) {
	cases := map[string]Spec{
		"unknown family": {Preset: "torus"},
		"negative shape": {Preset: "hier", RanksPerNode: -1},
		"bad contention": {Preset: "hier", Contention: 2},
		"negative beta":  {Preset: "hier", Inter: trace.Machine{Beta: -1}},
	}
	for name, spec := range cases {
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if err := (Spec{}).Validate(); err != nil {
		t.Errorf("zero spec rejected: %v", err)
	}
	if tp, err := (Spec{}).Build(trace.DefaultMachine(), 8); err != nil || tp != nil {
		t.Errorf("zero spec must build nil, got %v, %v", tp, err)
	}
}

// TestFaultPlanCanonicalRoundTrip: Canonical is order-insensitive and
// ParseFaultPlan inverts it exactly.
func TestFaultPlanCanonicalRoundTrip(t *testing.T) {
	p := FaultPlan{
		Links:      []LinkFault{{FromNode: 2, ToNode: -1, Factor: 4.5}, {FromNode: 0, ToNode: 1, Factor: 8}},
		Stragglers: []Straggler{{Rank: 7, Factor: 2}, {Rank: 1, Factor: 1.25}},
	}
	c := p.Canonical()
	q := FaultPlan{ // same entries, shuffled
		Links:      []LinkFault{{FromNode: 0, ToNode: 1, Factor: 8}, {FromNode: 2, ToNode: -1, Factor: 4.5}},
		Stragglers: []Straggler{{Rank: 1, Factor: 1.25}, {Rank: 7, Factor: 2}},
	}
	if q.Canonical() != c {
		t.Fatalf("entry order leaked into the encoding:\n%q\n%q", c, q.Canonical())
	}
	back, err := ParseFaultPlan(c)
	if err != nil {
		t.Fatal(err)
	}
	if back.Canonical() != c {
		t.Fatalf("round trip drifted:\n%q\n%q", c, back.Canonical())
	}
	if (FaultPlan{}).Canonical() != "" {
		t.Fatal("empty plan must encode to the empty string")
	}
	if empty, err := ParseFaultPlan(""); err != nil || !empty.Empty() {
		t.Fatalf("empty string must parse to the empty plan, got %+v, %v", empty, err)
	}
	for _, bad := range []string{"X1:2", "L1:2", "L1:2:zap", "S-1:0x1p+01", "Lx:y:0x1p+01", "S1:0x0p+00"} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("ParseFaultPlan(%q): accepted", bad)
		}
	}
}

// TestFaultedFactors pins the fault wrapper's charging rules: link
// factors multiply matching node pairs (wildcards included), straggler
// factors multiply the slow rank's side only.
func TestFaultedFactors(t *testing.T) {
	spec := Spec{Preset: "hier", RanksPerNode: 2,
		Intra: trace.Machine{Alpha: 1e-7, Beta: 1e-11},
		Inter: trace.Machine{Alpha: 1e-6, Beta: 1e-10}}
	base, err := spec.Build(trace.Machine{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	plan := FaultPlan{
		Links:      []LinkFault{{FromNode: -1, ToNode: 0, Factor: 8}},
		Stragglers: []Straggler{{Rank: 5, Factor: 3}},
	}
	tp, err := BuildFaulted(spec, trace.Machine{}, 8, plan)
	if err != nil {
		t.Fatal(err)
	}
	const b = int64(1000)
	// Route into node 0 (rank 2 → rank 1): 8× on every charge.
	if got, want := tp.RecvCost(2, 1, b), 8*base.RecvCost(2, 1, b); got != want {
		t.Fatalf("degraded-link recv %v, want %v", got, want)
	}
	// Route the other way (rank 1 → rank 2): directed fault, unchanged.
	if got, want := tp.SendCost(1, 2, b), base.SendCost(1, 2, b); got != want {
		t.Fatalf("reverse direction degraded: %v, want %v", got, want)
	}
	// Straggler rank 5: its sends and receives slow 3×; its peers' side
	// of the same transfer does not.
	if got, want := tp.SendCost(5, 2, b), 3*base.SendCost(5, 2, b); got != want {
		t.Fatalf("straggler send %v, want %v", got, want)
	}
	if got, want := tp.RecvCost(5, 2, b), base.RecvCost(5, 2, b); got != want {
		t.Fatalf("straggler's peer recv %v, want %v", got, want)
	}
	if got, want := tp.RecvCost(2, 5, b), 3*base.RecvCost(2, 5, b); got != want {
		t.Fatalf("straggler recv %v, want %v", got, want)
	}
	if !strings.HasSuffix(tp.Name(), "+faults") {
		t.Fatalf("fault wrapper name %q lacks the +faults stamp", tp.Name())
	}
	// Faults on the zero spec wrap the flat session machine.
	m := trace.Machine{Alpha: 1e-6, Beta: 1e-10}
	ft, err := BuildFaulted(Spec{}, m, 4, plan)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ft.SendCost(5, 2, b), m.Time(float64(b), 1); got != want {
		// rank 5 is outside the 4-rank world: factor 1.
		t.Fatalf("out-of-world straggler factored: %v, want %v", got, want)
	}
	if ft, err = BuildFaulted(Spec{}, m, 8, plan); err != nil {
		t.Fatal(err)
	}
	if got, want := ft.SendCost(5, 2, b), 3*m.Time(float64(b), 1); got != want {
		t.Fatalf("flat faulted send %v, want %v", got, want)
	}
	if tp, err := BuildFaulted(Spec{}, m, 8, FaultPlan{}); err != nil || tp != nil {
		t.Fatalf("zero spec + empty plan must build nil, got %v, %v", tp, err)
	}
}

// TestFaultPlanValidate covers the plan's failure surface.
func TestFaultPlanValidate(t *testing.T) {
	cases := map[string]FaultPlan{
		"zero factor":     {Links: []LinkFault{{FromNode: 0, ToNode: 1}}},
		"negative factor": {Stragglers: []Straggler{{Rank: 0, Factor: -2}}},
		"bad node":        {Links: []LinkFault{{FromNode: -2, ToNode: 0, Factor: 2}}},
		"negative rank":   {Stragglers: []Straggler{{Rank: -1, Factor: 2}}},
	}
	for name, plan := range cases {
		if err := plan.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestSpecComparable: Spec must stay all-scalar and comparable — the
// planner key and Config embedding rely on it.
func TestSpecComparable(t *testing.T) {
	typ := reflect.TypeOf(Spec{})
	if !typ.Comparable() {
		t.Fatal("Spec is not comparable")
	}
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		switch f.Type.Kind() {
		case reflect.String, reflect.Int, reflect.Float64:
		case reflect.Struct:
			if f.Type != reflect.TypeOf(trace.Machine{}) {
				t.Fatalf("field %s: unexpected struct type %v", f.Name, f.Type)
			}
		default:
			t.Fatalf("field %s: kind %v breaks the all-scalar contract", f.Name, f.Type.Kind())
		}
	}
}
