package topo

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// Preset machines, Piz Daint-flavored (§8: Cray XC50, Aries dragonfly).
// The tiers deliberately spread latency and bandwidth by roughly an order
// of magnitude so the replication tradeoff has something to move against:
//
//	intra-node   ~0.3 µs, ~50 GB/s   (shared-memory class)
//	inter-node   ~1.5 µs,  ~8 GB/s   (injection-bandwidth class)
//	global/core  ~2.7 µs, ~0.5 GB/s  (oversubscribed top tier: a rank's
//	                                  fair share of a global link serving
//	                                  whole groups, not a dedicated wire)
var (
	presetIntra         = trace.Machine{Alpha: 3e-7, Beta: 2e-11}
	presetInter         = trace.Machine{Alpha: 1.5e-6, Beta: 1.25e-10}
	presetGroup         = trace.Machine{Alpha: 1.3e-6, Beta: 1.0e-10}
	presetGlobal        = trace.Machine{Alpha: 2.7e-6, Beta: 2.0e-9}
	presetEdge          = trace.Machine{Alpha: 1.0e-6, Beta: 1.0e-10}
	presetCore          = trace.Machine{Alpha: 1.2e-6, Beta: 2.0e-9}
	presetRanksPerNode  = 4
	presetNodesPerGroup = 8
	presetRadix         = 4
)

// presetSpecs is the named-preset registry the public WithTopology surface
// and the confluxd `topology` query parameter validate against. The shape
// parameters are sized for this repo's simulated worlds (ranks-per-node 4
// puts even a P=8 test world on multiple nodes; dragonfly groups of 8
// nodes make P=64 span two groups) rather than for a physical machine.
var presetSpecs = map[string]Spec{
	// flat: the session's own α-β machine, as a topology. Pinned
	// bit-identical to running with no topology at all.
	"flat": {Preset: "flat"},
	"hier": {
		Preset: "hier", RanksPerNode: presetRanksPerNode,
		Intra: presetIntra, Inter: presetInter,
	},
	"hier-contended": {
		Preset: "hier", RanksPerNode: presetRanksPerNode,
		Intra: presetIntra, Inter: presetInter, Contention: 1,
	},
	"dragonfly": {
		Preset: "dragonfly", RanksPerNode: presetRanksPerNode, NodesPerGroup: presetNodesPerGroup,
		Intra: presetIntra, Inter: presetGroup, Global: presetGlobal,
	},
	"dragonfly-contended": {
		Preset: "dragonfly", RanksPerNode: presetRanksPerNode, NodesPerGroup: presetNodesPerGroup,
		Intra: presetIntra, Inter: presetGroup, Global: presetGlobal, Contention: 1,
	},
	"fattree": {
		Preset: "fattree", RanksPerNode: presetRanksPerNode, Radix: presetRadix,
		Intra: presetIntra, Inter: presetEdge, Global: presetCore,
	},
}

// Presets returns the named preset specs' names in sorted order — the set
// PresetSpec (and the confluxd `topology` parameter) accepts.
func Presets() []string {
	out := make([]string, 0, len(presetSpecs))
	for name := range presetSpecs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// PresetSpec resolves a preset name to its Spec.
func PresetSpec(name string) (Spec, error) {
	s, ok := presetSpecs[name]
	if !ok {
		return Spec{}, fmt.Errorf("topo: unknown topology preset %q (presets: %v)", name, Presets())
	}
	return s, nil
}
