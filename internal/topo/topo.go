// Package topo models the network under the simulated machine: composable
// topologies that map a delivery (from, to, bytes) to per-endpoint cost,
// replacing the flat α-β trace.Machine behind the one metering point all
// five engines and both executors share (trace.Timeline). The paper's
// measurements ran on Piz Daint — a Cray Aries dragonfly with very
// different intra-node vs inter-node latency/bandwidth and shared links
// that contend — while its §7.4 cost model is flat; this package is how
// the repo asks what the 2.5D replication tradeoff (Fig. 6) looks like
// when the network is not.
//
// Four model families, all implementing trace.Topology:
//
//   - flat: exactly today's α-β machine, pinned bit-identical by the
//     root-level parity suite.
//   - hier: ranks-per-node with separate intra-node / inter-node α-β
//     pairs.
//   - dragonfly: three-tier routes (node, group, global) — per-hop α
//     summed along the route, min-bandwidth (max β) along the route.
//   - fattree: distance by levels to the lowest common ancestor switch,
//     with a tapered (oversubscribed) core crossing.
//
// Contention (Spec.Contention = 1) layers FIFO ingress-link occupancy on
// any family: a transfer crossing a shared link additionally holds the
// receiver's ingress for bytes·β_link seconds, granted in the receiver's
// matching order. That rule is a pure function of per-rank program order
// plus FIFO matching — the only total order the determinism argument
// (DESIGN.md §12) guarantees — so contended reports stay bit-identical at
// every event-window width and on both executors; see DESIGN.md §14.
//
// FaultPlan (fault.go) wraps any built topology with degraded links and
// straggler ranks as first-class scenarios.
package topo

import (
	"fmt"
	"math"

	"repro/internal/trace"
)

// Spec is the canonical, comparable topology configuration: every leaf is
// a scalar, so it can live inside conflux.Config and the planner cache key
// (internal/plan renders the floats in exact hex, like the machine β).
// The zero Spec means "no topology" — the flat trace.Machine path,
// byte-for-byte.
type Spec struct {
	// Preset names the model family: "flat", "hier", "dragonfly", or
	// "fattree" ("" only in the zero Spec).
	Preset string
	// RanksPerNode maps ranks onto nodes (rank r lives on node r/RPN);
	// < 1 is normalized to 1.
	RanksPerNode int
	// NodesPerGroup is the dragonfly group size (node n in group n/NPG);
	// ignored by the other families. < 1 normalizes to 1.
	NodesPerGroup int
	// Radix is the fat-tree switch radix (node n hangs off switch
	// n/Radix, recursively); ignored by the other families. < 2
	// normalizes to 2.
	Radix int
	// Intra is the intra-node link (all families). The zero Machine is
	// meaningful (free local moves), exactly as in trace.Machine.
	Intra trace.Machine
	// Inter is the inter-node link: hier's only remote tier, dragonfly's
	// intra-group tier, fattree's edge links.
	Inter trace.Machine
	// Global is the top tier: dragonfly's inter-group links, fattree's
	// core crossing. Unused by flat and hier.
	Global trace.Machine
	// Contention (0 or 1; an int so the planner key-perturbation
	// machinery covers it) enables FIFO ingress-link occupancy on remote
	// transfers.
	Contention int
}

// IsZero reports whether s is the zero Spec — "no topology configured".
func (s Spec) IsZero() bool { return s == Spec{} }

// presetFamilies is the closed set of model families Build dispatches on.
var presetFamilies = map[string]bool{
	"flat": true, "hier": true, "dragonfly": true, "fattree": true,
}

// Validate checks s is buildable: a known family and non-negative,
// finite machine parameters. The zero Spec is valid (it builds nothing).
func (s Spec) Validate() error {
	if s.IsZero() {
		return nil
	}
	if !presetFamilies[s.Preset] {
		return fmt.Errorf("topo: unknown topology family %q (want flat, hier, dragonfly, or fattree)", s.Preset)
	}
	if s.RanksPerNode < 0 || s.NodesPerGroup < 0 || s.Radix < 0 {
		return fmt.Errorf("topo: negative shape parameter in %+v", s)
	}
	if s.Contention != 0 && s.Contention != 1 {
		return fmt.Errorf("topo: Contention must be 0 or 1, got %d", s.Contention)
	}
	for _, m := range []trace.Machine{s.Intra, s.Inter, s.Global} {
		if m.Alpha < 0 || m.Beta < 0 || math.IsNaN(m.Alpha) || math.IsNaN(m.Beta) ||
			math.IsInf(m.Alpha, 0) || math.IsInf(m.Beta, 0) {
			return fmt.Errorf("topo: machine parameters must be finite and non-negative in %+v", s)
		}
	}
	return nil
}

// normalized resolves the shape parameters' defaulting rules.
func (s Spec) normalized() Spec {
	if s.RanksPerNode < 1 {
		s.RanksPerNode = 1
	}
	if s.NodesPerGroup < 1 {
		s.NodesPerGroup = 1
	}
	if s.Radix < 2 {
		s.Radix = 2
	}
	return s
}

// Build resolves the spec into a concrete topology for a p-rank world
// whose session machine is base (the flat family simulates exactly base;
// the others use the spec's own per-tier machines). The zero Spec builds
// nil — callers keep the plain-machine timeline path.
func (s Spec) Build(base trace.Machine, p int) (trace.Topology, error) {
	if s.IsZero() {
		return nil, nil
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	s = s.normalized()
	contend := s.Contention == 1
	switch s.Preset {
	case "flat":
		return Flat(base), nil
	case "hier":
		return &hier{rpn: s.RanksPerNode, intra: s.Intra, inter: s.Inter, contend: contend}, nil
	case "dragonfly":
		return &dragonfly{rpn: s.RanksPerNode, npg: s.NodesPerGroup,
			intra: s.Intra, inter: s.Inter, global: s.Global, contend: contend}, nil
	case "fattree":
		nodes := (p + s.RanksPerNode - 1) / s.RanksPerNode
		return &fattree{rpn: s.RanksPerNode, radix: s.Radix, height: treeHeight(nodes, s.Radix),
			intra: s.Intra, edge: s.Inter, core: s.Global, contend: contend}, nil
	}
	return nil, fmt.Errorf("topo: unknown topology family %q", s.Preset)
}

// treeHeight is the smallest h ≥ 1 with radix^h >= nodes: the fat tree's
// switch levels. A single node still gets one edge switch.
func treeHeight(nodes, radix int) int {
	h, span := 1, radix
	for span < nodes {
		span *= radix
		h++
	}
	return h
}

// Flat is exactly today's α-β machine as a Topology: every endpoint
// occupancy is m.Time(bytes, 1) — the identical float expression the
// plain timeline evaluates — and nothing contends, so reports are
// bit-identical to running without a topology (the parity suite pins it).
func Flat(m trace.Machine) trace.Topology { return flat{m} }

type flat struct{ m trace.Machine }

func (f flat) Name() string                               { return "flat" }
func (f flat) SendCost(_, _ int, bytes int64) float64     { return f.m.Time(float64(bytes), 1) }
func (f flat) RecvCost(_, _ int, bytes int64) float64     { return f.m.Time(float64(bytes), 1) }
func (f flat) IngressOccupancy(_, _ int, _ int64) float64 { return 0 }

// hier is the two-tier model: intra-node transfers cost the node-local
// machine, inter-node transfers the network machine. With contention,
// remote transfers additionally hold the receiver's share of the node
// ingress link: the NIC's bandwidth is divided evenly among the
// RanksPerNode ranks behind it, so each delivery occupies the link for
// sharers·β·bytes — incast onto one rank (e.g. a reduction root fanning
// in one message per replication layer) pays bandwidth division instead
// of perfect overlap. The sharers factor is what lets the link bind: a
// plain β·bytes occupancy is always released by the time the receiver
// (which itself pays α + β·bytes per delivery) matches the next message.
type hier struct {
	rpn          int
	intra, inter trace.Machine
	contend      bool
}

func (h *hier) Name() string {
	if h.contend {
		return "hier+contention"
	}
	return "hier"
}

func (h *hier) node(r int) int { return r / h.rpn }

func (h *hier) cost(from, to int, bytes int64) float64 {
	if h.node(from) == h.node(to) {
		return h.intra.Time(float64(bytes), 1)
	}
	return h.inter.Time(float64(bytes), 1)
}

func (h *hier) SendCost(from, to int, bytes int64) float64 { return h.cost(from, to, bytes) }
func (h *hier) RecvCost(from, to int, bytes int64) float64 { return h.cost(from, to, bytes) }

func (h *hier) IngressOccupancy(from, to int, bytes int64) float64 {
	if !h.contend || h.node(from) == h.node(to) {
		return 0
	}
	return float64(h.rpn) * float64(bytes) * h.inter.Beta
}

// dragonfly is the three-tier Aries-class model. Routes:
//
//	same node            local link only
//	same group           node egress → group link → node ingress
//	different group      node egress → group → global → group → ingress
//
// Per-hop latencies sum along the route; the route's bandwidth is its
// narrowest link (max seconds-per-byte), the "per-hop α, min-β" rule.
type dragonfly struct {
	rpn, npg             int
	intra, inter, global trace.Machine
	contend              bool
}

func (d *dragonfly) Name() string {
	if d.contend {
		return "dragonfly+contention"
	}
	return "dragonfly"
}

func (d *dragonfly) node(r int) int  { return r / d.rpn }
func (d *dragonfly) group(r int) int { return d.node(r) / d.npg }

// route returns the summed α and narrowest β of the from → to path.
func (d *dragonfly) route(from, to int) (alpha, beta float64) {
	switch {
	case d.node(from) == d.node(to):
		return d.intra.Alpha, d.intra.Beta
	case d.group(from) == d.group(to):
		return 2*d.intra.Alpha + d.inter.Alpha, max(d.intra.Beta, d.inter.Beta)
	default:
		return 2*d.intra.Alpha + 2*d.inter.Alpha + d.global.Alpha,
			max(d.intra.Beta, max(d.inter.Beta, d.global.Beta))
	}
}

func (d *dragonfly) cost(from, to int, bytes int64) float64 {
	alpha, beta := d.route(from, to)
	return alpha + float64(bytes)*beta
}

func (d *dragonfly) SendCost(from, to int, bytes int64) float64 { return d.cost(from, to, bytes) }
func (d *dragonfly) RecvCost(from, to int, bytes int64) float64 { return d.cost(from, to, bytes) }

func (d *dragonfly) IngressOccupancy(from, to int, bytes int64) float64 {
	if !d.contend || d.node(from) == d.node(to) {
		return 0
	}
	// Cross-group deliveries share the destination group's global link
	// (rpn·npg ranks behind it); in-group remote deliveries share the
	// node's ingress (rpn ranks). Even division, like hier.
	if d.group(from) != d.group(to) {
		return float64(d.rpn*d.npg) * float64(bytes) * d.global.Beta
	}
	return float64(d.rpn) * float64(bytes) * d.inter.Beta
}

// fattree routes through the lowest common ancestor switch: l levels up,
// l levels down, all on edge links, except that a route through the root
// (l == height) replaces the topmost up/down pair with core links — the
// conventional tapered (oversubscribed) core.
type fattree struct {
	rpn, radix, height int
	intra, edge, core  trace.Machine
	contend            bool
}

func (f *fattree) Name() string {
	if f.contend {
		return "fattree+contention"
	}
	return "fattree"
}

func (f *fattree) node(r int) int { return r / f.rpn }

// lca returns the number of switch levels up to the lowest common
// ancestor of nodes a and b (0 when a == b).
func (f *fattree) lca(a, b int) int {
	l := 0
	for a != b {
		a /= f.radix
		b /= f.radix
		l++
	}
	return l
}

func (f *fattree) cost(from, to int, bytes int64) float64 {
	a, b := f.node(from), f.node(to)
	if a == b {
		return f.intra.Time(float64(bytes), 1)
	}
	l := f.lca(a, b)
	alpha := float64(2*l) * f.edge.Alpha
	beta := f.edge.Beta
	if l >= f.height {
		// Root crossing: the top up/down hops ride the tapered core.
		alpha = float64(2*l-2)*f.edge.Alpha + 2*f.core.Alpha
		beta = max(beta, f.core.Beta)
	}
	return alpha + float64(bytes)*beta
}

func (f *fattree) SendCost(from, to int, bytes int64) float64 { return f.cost(from, to, bytes) }
func (f *fattree) RecvCost(from, to int, bytes int64) float64 { return f.cost(from, to, bytes) }

func (f *fattree) IngressOccupancy(from, to int, bytes int64) float64 {
	a, b := f.node(from), f.node(to)
	if !f.contend || a == b {
		return 0
	}
	if f.lca(a, b) >= f.height {
		return float64(f.rpn) * float64(bytes) * max(f.edge.Beta, f.core.Beta)
	}
	return float64(f.rpn) * float64(bytes) * f.edge.Beta
}
