package topo

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/trace"
)

// LinkFault degrades every route from FromNode to ToNode (directed; -1
// wildcards a side) by multiplying its cost and ingress occupancy by
// Factor. Factor > 1 is a degraded link (8 = one eighth the effective
// bandwidth and 8× the latency), a factor in (0, 1) an upgraded one.
type LinkFault struct {
	FromNode, ToNode int
	Factor           float64
}

// Straggler slows one rank: every transfer it originates or completes
// takes Factor times as long on its clock. Compute is not simulated in
// volume mode, so a slow rank is honestly modeled as slow at moving
// bytes — the effect that actually propagates through matching.
type Straggler struct {
	Rank   int
	Factor float64
}

// FaultPlan is a first-class fault/straggler scenario: it wraps any built
// topology, and its effects — makespan impact, critical-path
// re-attribution (trace.TimeReport.CritRank moving onto the straggler or
// the ranks behind the degraded link) — read directly off the ordinary
// reports. The plan has a canonical string encoding (Canonical /
// ParseFaultPlan) so it can ride in conflux.Config and the planner cache
// key next to the topology spec.
type FaultPlan struct {
	Links      []LinkFault
	Stragglers []Straggler
}

// Empty reports whether the plan injects nothing.
func (p FaultPlan) Empty() bool { return len(p.Links) == 0 && len(p.Stragglers) == 0 }

// Validate checks factors are finite and positive, ranks non-negative,
// and nodes ≥ -1 (the wildcard).
func (p FaultPlan) Validate() error {
	for _, l := range p.Links {
		if l.FromNode < -1 || l.ToNode < -1 {
			return fmt.Errorf("topo: link fault nodes must be >= -1 (wildcard), got %d->%d", l.FromNode, l.ToNode)
		}
		if !(l.Factor > 0) || math.IsInf(l.Factor, 0) {
			return fmt.Errorf("topo: link fault factor must be finite and > 0, got %v", l.Factor)
		}
	}
	for _, s := range p.Stragglers {
		if s.Rank < 0 {
			return fmt.Errorf("topo: straggler rank must be >= 0, got %d", s.Rank)
		}
		if !(s.Factor > 0) || math.IsInf(s.Factor, 0) {
			return fmt.Errorf("topo: straggler factor must be finite and > 0, got %v", s.Factor)
		}
	}
	return nil
}

// Canonical renders the plan as a deterministic string: link entries
// sorted by (from, to), then straggler entries sorted by rank, factors in
// exact hexadecimal (the same treatment the planner key gives β, so two
// plans differing in the last ulp of a factor still miss each other).
// The empty plan renders "".
func (p FaultPlan) Canonical() string {
	links := append([]LinkFault(nil), p.Links...)
	sort.Slice(links, func(i, j int) bool {
		if links[i].FromNode != links[j].FromNode {
			return links[i].FromNode < links[j].FromNode
		}
		if links[i].ToNode != links[j].ToNode {
			return links[i].ToNode < links[j].ToNode
		}
		return links[i].Factor < links[j].Factor
	})
	stragglers := append([]Straggler(nil), p.Stragglers...)
	sort.Slice(stragglers, func(i, j int) bool {
		if stragglers[i].Rank != stragglers[j].Rank {
			return stragglers[i].Rank < stragglers[j].Rank
		}
		return stragglers[i].Factor < stragglers[j].Factor
	})
	var b strings.Builder
	for _, l := range links {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "L%d:%d:%s", l.FromNode, l.ToNode, strconv.FormatFloat(l.Factor, 'x', -1, 64))
	}
	for _, s := range stragglers {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "S%d:%s", s.Rank, strconv.FormatFloat(s.Factor, 'x', -1, 64))
	}
	return b.String()
}

// ParseFaultPlan is Canonical's inverse; it accepts any entry order and
// validates the result. "" parses to the empty plan.
func ParseFaultPlan(s string) (FaultPlan, error) {
	var p FaultPlan
	if s == "" {
		return p, nil
	}
	for _, ent := range strings.Split(s, ",") {
		switch {
		case strings.HasPrefix(ent, "L"):
			parts := strings.Split(ent[1:], ":")
			if len(parts) != 3 {
				return p, fmt.Errorf("topo: malformed link fault %q (want L<from>:<to>:<factor>)", ent)
			}
			from, err1 := strconv.Atoi(parts[0])
			to, err2 := strconv.Atoi(parts[1])
			f, err3 := strconv.ParseFloat(parts[2], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return p, fmt.Errorf("topo: malformed link fault %q", ent)
			}
			p.Links = append(p.Links, LinkFault{FromNode: from, ToNode: to, Factor: f})
		case strings.HasPrefix(ent, "S"):
			parts := strings.Split(ent[1:], ":")
			if len(parts) != 2 {
				return p, fmt.Errorf("topo: malformed straggler %q (want S<rank>:<factor>)", ent)
			}
			rank, err1 := strconv.Atoi(parts[0])
			f, err2 := strconv.ParseFloat(parts[1], 64)
			if err1 != nil || err2 != nil {
				return p, fmt.Errorf("topo: malformed straggler %q", ent)
			}
			p.Stragglers = append(p.Stragglers, Straggler{Rank: rank, Factor: f})
		default:
			return p, fmt.Errorf("topo: malformed fault entry %q (want L... or S...)", ent)
		}
	}
	return p, p.Validate()
}

// BuildFaulted is the one-call constructor the Session uses: it builds
// the spec's topology for a p-rank world and wraps it with the fault
// plan. A zero spec with a non-empty plan faults the flat view of the
// session machine (faults are meaningful without a topology); a zero
// spec and empty plan build nil — the untouched plain-machine path.
func BuildFaulted(s Spec, base trace.Machine, p int, fp FaultPlan) (trace.Topology, error) {
	if s.IsZero() && fp.Empty() {
		return nil, nil
	}
	if err := fp.Validate(); err != nil {
		return nil, err
	}
	if s.IsZero() {
		s = Spec{Preset: "flat"}
	}
	inner, err := s.Build(base, p)
	if err != nil {
		return nil, err
	}
	if fp.Empty() {
		return inner, nil
	}
	f := &faulted{inner: inner, rpn: s.normalized().RanksPerNode,
		links: append([]LinkFault(nil), fp.Links...), slow: make([]float64, p)}
	for i := range f.slow {
		f.slow[i] = 1
	}
	for _, st := range fp.Stragglers {
		if st.Rank < len(f.slow) {
			f.slow[st.Rank] *= st.Factor
		}
	}
	return f, nil
}

// faulted layers a FaultPlan over any topology: link faults multiply the
// route cost and ingress occupancy of matching node pairs, stragglers
// multiply the occupancy on their own rank's side of every transfer. All
// factors are fixed before the run, so determinism is inherited from the
// inner model unchanged.
type faulted struct {
	inner trace.Topology
	rpn   int
	links []LinkFault
	slow  []float64 // per-rank straggler factor, 1 = nominal
}

func (f *faulted) Name() string { return f.inner.Name() + "+faults" }

func (f *faulted) linkFactor(from, to int) float64 {
	nf, nt := from/f.rpn, to/f.rpn
	x := 1.0
	for _, l := range f.links {
		if (l.FromNode == -1 || l.FromNode == nf) && (l.ToNode == -1 || l.ToNode == nt) {
			x *= l.Factor
		}
	}
	return x
}

func (f *faulted) rankFactor(r int) float64 {
	if r < len(f.slow) {
		return f.slow[r]
	}
	return 1
}

func (f *faulted) SendCost(from, to int, bytes int64) float64 {
	return f.inner.SendCost(from, to, bytes) * f.linkFactor(from, to) * f.rankFactor(from)
}

func (f *faulted) RecvCost(from, to int, bytes int64) float64 {
	return f.inner.RecvCost(from, to, bytes) * f.linkFactor(from, to) * f.rankFactor(to)
}

func (f *faulted) IngressOccupancy(from, to int, bytes int64) float64 {
	return f.inner.IngressOccupancy(from, to, bytes) * f.linkFactor(from, to) * f.rankFactor(to)
}
