package grid

import (
	"testing"
	"testing/quick"
)

func TestCoordsRankRoundTrip(t *testing.T) {
	g := Grid{Pr: 3, Pc: 4, Layers: 2, Total: 24}
	seen := map[int]bool{}
	for l := 0; l < 2; l++ {
		for r := 0; r < 3; r++ {
			for c := 0; c < 4; c++ {
				rk := g.Rank(r, c, l)
				if seen[rk] {
					t.Fatalf("duplicate rank %d", rk)
				}
				seen[rk] = true
				rr, cc, ll := g.Coords(rk)
				if rr != r || cc != c || ll != l {
					t.Fatalf("round trip (%d,%d,%d) -> %d -> (%d,%d,%d)", r, c, l, rk, rr, cc, ll)
				}
			}
		}
	}
	if len(seen) != 24 {
		t.Fatalf("covered %d ranks", len(seen))
	}
}

func TestCommMemberships(t *testing.T) {
	g := Grid{Pr: 2, Pc: 3, Layers: 2, Total: 12}
	row := g.RowComm(1, 0)
	if len(row) != 3 || row[0] != g.Rank(1, 0, 0) || row[2] != g.Rank(1, 2, 0) {
		t.Fatalf("row comm %v", row)
	}
	col := g.ColComm(2, 1)
	if len(col) != 2 || col[1] != g.Rank(1, 2, 1) {
		t.Fatalf("col comm %v", col)
	}
	fib := g.FiberComm(1, 2)
	if len(fib) != 2 || fib[0] != g.Rank(1, 2, 0) || fib[1] != g.Rank(1, 2, 1) {
		t.Fatalf("fiber comm %v", fib)
	}
	layer := g.LayerComm(1)
	if len(layer) != 6 || layer[0] != 6 {
		t.Fatalf("layer comm %v", layer)
	}
	if got := g.ActiveComm(); len(got) != 12 {
		t.Fatalf("active %v", got)
	}
}

func TestSquare2D(t *testing.T) {
	cases := map[int][2]int{
		1: {1, 1}, 4: {2, 2}, 6: {2, 3}, 12: {3, 4}, 64: {8, 8},
		7:    {1, 7}, // prime: degenerate 1×7, the "bad grid" case of Fig 6a
		1024: {32, 32},
	}
	for p, want := range cases {
		g := Square2D(p)
		if g.Pr != want[0] || g.Pc != want[1] || g.Used() != p {
			t.Fatalf("Square2D(%d) = %dx%d", p, g.Pr, g.Pc)
		}
	}
}

func TestBlockCyclicOwnership(t *testing.T) {
	b := BlockCyclic{G: Grid{Pr: 2, Pc: 3, Layers: 1, Total: 6}, V: 4, N: 20}
	if b.Tiles() != 5 {
		t.Fatalf("tiles %d", b.Tiles())
	}
	if b.OwnerRow(3) != 1 || b.OwnerCol(4) != 1 {
		t.Fatal("cyclic owners wrong")
	}
	if b.Owner(0, 0, 0) != 0 {
		t.Fatal("tile (0,0) not on rank 0")
	}
	r, c := b.TileDims(4, 4)
	if r != 4 || c != 4 {
		t.Fatalf("edge tile %dx%d", r, c)
	}
	b2 := BlockCyclic{G: b.G, V: 6, N: 20}
	r, c = b2.TileDims(3, 3)
	if r != 2 || c != 2 {
		t.Fatalf("ragged edge tile %dx%d", r, c)
	}
}

func TestLocalTileRows(t *testing.T) {
	b := BlockCyclic{G: Grid{Pr: 2, Pc: 2, Layers: 1, Total: 4}, V: 2, N: 12}
	rows := b.LocalTileRows(1, 2)
	want := []int{3, 5}
	if len(rows) != len(want) {
		t.Fatalf("rows %v", rows)
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Fatalf("rows %v want %v", rows, want)
		}
	}
	cols := b.LocalTileCols(0, 0)
	if len(cols) != 3 || cols[0] != 0 || cols[2] != 4 {
		t.Fatalf("cols %v", cols)
	}
}

func TestOptimize25DPrefersFullUse(t *testing.T) {
	// Cost: prefer more layers strongly (mimics 2.5D benefit).
	cost := func(g Grid) float64 { return 1.0 / float64(g.Layers) / float64(g.Used()) }
	g := Optimize25D(8, 2, 0.5, cost)
	if g.Layers != 2 || g.Used() != 8 {
		t.Fatalf("got %dx%dx%d used=%d", g.Pr, g.Pc, g.Layers, g.Used())
	}
}

func TestOptimize25DDisablesRanksWhenBeneficial(t *testing.T) {
	// p=7 (prime): a 1×7 grid is terrible under a "squareness" cost;
	// optimization should fall back to 2×3 or 2×2, disabling ranks.
	cost := func(g Grid) float64 {
		return float64(abs(g.Pc-g.Pr)+1) / float64(g.Used())
	}
	g := Optimize25D(7, 1, 0.5, cost)
	if g.Pr == 1 && g.Pc == 7 {
		t.Fatalf("did not avoid degenerate grid: %+v", g)
	}
	if g.Used() > 7 {
		t.Fatalf("invalid grid %+v", g)
	}
}

func TestOptimize25DRespectsWasteBound(t *testing.T) {
	cost := func(g Grid) float64 { return 1 } // all equal: must keep most ranks
	g := Optimize25D(12, 3, 0.1, cost)
	if g.Used() < 11 {
		t.Fatalf("wasted too many ranks: %+v", g)
	}
}

func TestMaxReplication(t *testing.T) {
	// M = N²/P^{2/3} gives c = P^{1/3} exactly.
	n, p := 4096, 64
	m := float64(n) * float64(n) / 16 // P^{2/3}=16
	if c := MaxReplication(p, m, n); c != 4 {
		t.Fatalf("c=%d want 4", c)
	}
	// Tiny memory → c clamps to 1.
	if c := MaxReplication(p, 10, n); c != 1 {
		t.Fatalf("c=%d want 1", c)
	}
	// Huge memory → clamps to P^{1/3}.
	if c := MaxReplication(27, 1e12, 8); c != 3 {
		t.Fatalf("c=%d want 3", c)
	}
}

// Property: Coords/Rank are mutually inverse for random valid grids.
func TestQuickCoordsInverse(t *testing.T) {
	f := func(pr8, pc8, l8, pick uint16) bool {
		pr, pc, l := int(pr8%5)+1, int(pc8%5)+1, int(l8%3)+1
		g := Grid{Pr: pr, Pc: pc, Layers: l, Total: pr * pc * l}
		rk := int(pick) % g.Used()
		r, c, lay := g.Coords(rk)
		return g.Rank(r, c, lay) == rk
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: every tile has exactly one owner per layer and owners partition
// the tile space.
func TestQuickBlockCyclicPartition(t *testing.T) {
	f := func(pr8, pc8, v8, n8 uint8) bool {
		pr, pc := int(pr8%4)+1, int(pc8%4)+1
		v, n := int(v8%5)+1, int(n8%40)+1
		b := BlockCyclic{G: Grid{Pr: pr, Pc: pc, Layers: 1, Total: pr * pc}, V: v, N: n}
		count := 0
		for row := 0; row < pr; row++ {
			for _, ti := range b.LocalTileRows(row, 0) {
				if b.OwnerRow(ti) != row {
					return false
				}
				count++
			}
		}
		return count == b.Tiles()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
