// Package grid implements the processor decompositions of the paper: 2D
// grids for the ScaLAPACK/SLATE baselines, 2.5D grids [√P1, √P1, c] for
// COnfLUX and CANDMC (Fig. 5), block-cyclic ownership maps, and the
// Processor Grid Optimization of §8 ("finds the 3D processor grid with the
// lowest communication cost by possibly disabling a minor fraction of
// nodes").
package grid

import "fmt"

// Grid describes a pr×pc×layers processor grid embedded in a world of
// Total ranks; ranks >= Used are disabled (idle), which is exactly what the
// paper's grid optimization does for difficult-to-factorize rank counts.
type Grid struct {
	Pr, Pc, Layers int
	Total          int // world size the grid is embedded in
}

// Used returns the number of active ranks.
func (g Grid) Used() int { return g.Pr * g.Pc * g.Layers }

// Valid reports whether the grid fits in its world.
func (g Grid) Valid() bool {
	return g.Pr > 0 && g.Pc > 0 && g.Layers > 0 && g.Used() <= g.Total
}

// Coords maps an active world rank to (row, col, layer). Layout: layer-major,
// then row, then column, matching Fig. 5's [√P1, √P1, c] indexing.
func (g Grid) Coords(rank int) (row, col, layer int) {
	if rank < 0 || rank >= g.Used() {
		panic(fmt.Sprintf("grid: rank %d outside active grid of %d", rank, g.Used()))
	}
	layer = rank / (g.Pr * g.Pc)
	rem := rank % (g.Pr * g.Pc)
	return rem / g.Pc, rem % g.Pc, layer
}

// Rank maps (row, col, layer) to the world rank.
func (g Grid) Rank(row, col, layer int) int {
	if row < 0 || row >= g.Pr || col < 0 || col >= g.Pc || layer < 0 || layer >= g.Layers {
		panic(fmt.Sprintf("grid: coords (%d,%d,%d) outside %dx%dx%d", row, col, layer, g.Pr, g.Pc, g.Layers))
	}
	return layer*g.Pr*g.Pc + row*g.Pc + col
}

// RowComm returns the world ranks of grid row `row` in layer `layer`
// (fixed row, all columns).
func (g Grid) RowComm(row, layer int) []int {
	out := make([]int, g.Pc)
	for c := 0; c < g.Pc; c++ {
		out[c] = g.Rank(row, c, layer)
	}
	return out
}

// ColComm returns the world ranks of grid column `col` in layer `layer`.
func (g Grid) ColComm(col, layer int) []int {
	out := make([]int, g.Pr)
	for r := 0; r < g.Pr; r++ {
		out[r] = g.Rank(r, col, layer)
	}
	return out
}

// LayerComm returns the ranks of one full 2D layer.
func (g Grid) LayerComm(layer int) []int {
	out := make([]int, g.Pr*g.Pc)
	for r := 0; r < g.Pr; r++ {
		for c := 0; c < g.Pc; c++ {
			out[r*g.Pc+c] = g.Rank(r, c, layer)
		}
	}
	return out
}

// FiberComm returns the ranks sharing (row, col) across all layers — the
// reduction dimension of the 2.5D decomposition.
func (g Grid) FiberComm(row, col int) []int {
	out := make([]int, g.Layers)
	for l := 0; l < g.Layers; l++ {
		out[l] = g.Rank(row, col, l)
	}
	return out
}

// ActiveComm returns all active ranks.
func (g Grid) ActiveComm() []int {
	out := make([]int, g.Used())
	for i := range out {
		out[i] = i
	}
	return out
}

// Square2D returns the most square pr×pc×1 grid using ALL p ranks
// (pr·pc = p, pr ≤ pc, pr maximal). This is the greedy strategy the paper
// attributes to LibSci/SLATE — it never disables ranks, which produces the
// communication outliers in Fig. 6a's inset for awkward p.
func Square2D(p int) Grid {
	pr := 1
	for d := 1; d*d <= p; d++ {
		if p%d == 0 {
			pr = d
		}
	}
	return Grid{Pr: pr, Pc: p / pr, Layers: 1, Total: p}
}

// BlockCyclic maps tiles to grid positions: tile row i is owned by grid row
// i mod Pr, tile column j by grid column j mod Pc (within each layer).
type BlockCyclic struct {
	G Grid
	V int // tile size (the paper's blocking parameter v)
	N int // global matrix dimension
}

// Tiles returns the number of tile rows/cols (ceil division).
func (b BlockCyclic) Tiles() int { return (b.N + b.V - 1) / b.V }

// OwnerRow returns the grid row owning tile row ti.
func (b BlockCyclic) OwnerRow(ti int) int { return ti % b.G.Pr }

// OwnerCol returns the grid column owning tile column tj.
func (b BlockCyclic) OwnerCol(tj int) int { return tj % b.G.Pc }

// Owner returns the world rank owning tile (ti, tj) in the given layer.
func (b BlockCyclic) Owner(ti, tj, layer int) int {
	return b.G.Rank(b.OwnerRow(ti), b.OwnerCol(tj), layer)
}

// TileDims returns the actual dimensions of tile (ti, tj) (edge tiles may be
// smaller than V).
func (b BlockCyclic) TileDims(ti, tj int) (rows, cols int) {
	rows, cols = b.V, b.V
	if (ti+1)*b.V > b.N {
		rows = b.N - ti*b.V
	}
	if (tj+1)*b.V > b.N {
		cols = b.N - tj*b.V
	}
	return rows, cols
}

// localIndices returns the indices in [from, tiles) congruent to pos mod
// stride — the shared body of LocalTileRows/Cols. The result is exactly
// sized and strided directly: these lists are rebuilt on every engine step,
// so they must cost one allocation and no scan of foreign indices.
func localIndices(tiles, pos, stride, from int) []int {
	if from < 0 {
		from = 0
	}
	first := from + (pos-from%stride+stride)%stride // smallest i >= from with i ≡ pos (mod stride)
	if first >= tiles {
		return nil
	}
	out := make([]int, 0, (tiles-first+stride-1)/stride)
	for i := first; i < tiles; i += stride {
		out = append(out, i)
	}
	return out
}

// LocalTileRows returns the tile-row indices >= from owned by grid row `row`.
func (b BlockCyclic) LocalTileRows(row, from int) []int {
	return localIndices(b.Tiles(), row, b.G.Pr, from)
}

// LocalTileCols returns the tile-col indices >= from owned by grid col `col`.
func (b BlockCyclic) LocalTileCols(col, from int) []int {
	return localIndices(b.Tiles(), col, b.G.Pc, from)
}
