package grid

import "math"

// CostFunc models the communication cost of running on a candidate grid.
// It receives the grid and must return cost in elements per rank (lower is
// better). Implementations typically wrap internal/costmodel.
type CostFunc func(g Grid) float64

// Optimize25D implements the paper's Processor Grid Optimization (§8): it
// searches pr×pc×c grids embedded in a world of p ranks, allowing up to
// `wasteFrac` of the ranks to be disabled, and returns the grid minimizing
// cost. Ties prefer more active ranks, then squarer layers, then fewer
// layers.
//
// maxLayers bounds the replication factor c (the paper: c = PM/N² ≤ P^{1/3}).
func Optimize25D(p int, maxLayers int, wasteFrac float64, cost CostFunc) Grid {
	if p <= 0 {
		panic("grid: Optimize25D needs p > 0")
	}
	if maxLayers < 1 {
		maxLayers = 1
	}
	minUsed := int(math.Ceil(float64(p) * (1 - wasteFrac)))
	if minUsed < 1 {
		minUsed = 1
	}
	best := Grid{Pr: 1, Pc: 1, Layers: 1, Total: p}
	bestCost := math.Inf(1)
	for c := 1; c <= maxLayers && c <= p; c++ {
		p2 := p / c // ranks available per layer
		for pr := 1; pr*pr <= p2; pr++ {
			pc := p2 / pr
			// Consider both pr×pc and (squarer) pr'=pc truncations via the
			// symmetric candidate below; evaluate pr≤pc form.
			for _, cand := range []Grid{
				{Pr: pr, Pc: pc, Layers: c, Total: p},
				{Pr: pr, Pc: pr, Layers: c, Total: p}, // square subgrid, wastes more
			} {
				if !cand.Valid() || cand.Used() < minUsed {
					continue
				}
				cc := cost(cand)
				if better(cc, cand, bestCost, best) {
					bestCost, best = cc, cand
				}
			}
		}
	}
	return best
}

func better(c float64, g Grid, bestC float64, best Grid) bool {
	const eps = 1e-12
	if c < bestC*(1-eps) {
		return true
	}
	if c > bestC*(1+eps) {
		return false
	}
	if g.Used() != best.Used() {
		return g.Used() > best.Used()
	}
	// Squarer layer wins.
	da := abs(g.Pc - g.Pr)
	db := abs(best.Pc - best.Pr)
	if da != db {
		return da < db
	}
	return g.Layers < best.Layers
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// MaxReplication returns the paper's replication bound c = P·M/N², clamped
// to [1, P^{1/3}] and to powers that keep at least one rank per layer.
func MaxReplication(p int, m float64, n int) int {
	c := int(float64(p) * m / float64(n) / float64(n))
	cbrt := int(math.Cbrt(float64(p)))
	if c > cbrt {
		c = cbrt
	}
	if c < 1 {
		c = 1
	}
	return c
}
