package smpi

import (
	"fmt"
	"sync"

	"repro/internal/mat"
	"repro/internal/trace"
)

// Window is a one-sided communication window, mirroring the MPI-3 RMA
// interface the paper's implementation uses ("We implement COnfLUX in C++
// using MPI one-sided for inter-node communication"). Every rank exposes a
// local matrix; remote ranks Put/Get sub-blocks without the target's
// participation. Epochs are bounded by Fence (which synchronizes all ranks
// and flushes pending accesses). Puts and Gets are metered like sends: a Get
// counts as bytes sent by the TARGET (the data crosses the network from the
// target to the origin), a Put as bytes sent by the ORIGIN. Simulated time
// is charged to the ORIGIN only — the target is passive under MPI one-sided
// semantics, so its logical clock never moves.
type Window struct {
	comm  *Comm
	id    int
	local *mat.Matrix
	mu    *sync.Mutex // guards local across concurrent remote accesses

	wins *windowRegistry
}

type windowRegistry struct {
	mu   sync.Mutex
	byID map[winKey]*Window
}

type winKey struct {
	rank int
	id   int
}

var registries sync.Map // *World -> *windowRegistry

func registryFor(w *World) *windowRegistry {
	got, _ := registries.LoadOrStore(w, &windowRegistry{byID: map[winKey]*Window{}})
	return got.(*windowRegistry)
}

// dropWindowRegistry forgets the world's registry entry once its run has
// unwound. Without this the package-global map pins every World (and its
// window matrices) ever run — a leak across long sweeps.
func dropWindowRegistry(w *World) {
	registries.Delete(w)
}

// NewWindow exposes the rank's local matrix for one-sided access under a
// collective window id (all ranks of the communicator must create the
// window with the same id before any access; a Fence is implied).
func NewWindow(c *Comm, id int, local *mat.Matrix) *Window {
	wins := registryFor(c.w)
	win := &Window{comm: c, id: id, local: local, mu: &sync.Mutex{}, wins: wins}
	wins.mu.Lock()
	key := winKey{rank: c.WorldRank(), id: id}
	if _, dup := wins.byID[key]; dup {
		wins.mu.Unlock()
		panic(fmt.Sprintf("smpi: window %d already exists on rank %d", id, c.WorldRank()))
	}
	wins.byID[key] = win
	wins.mu.Unlock()
	c.Barrier() // window creation is collective
	return win
}

func (w *Window) target(rank int) *Window {
	w.wins.mu.Lock()
	t, ok := w.wins.byID[winKey{rank: w.comm.members[rank], id: w.id}]
	w.wins.mu.Unlock()
	if !ok {
		panic(fmt.Sprintf("smpi: window %d not exposed on rank %d", w.id, rank))
	}
	return t
}

// Get copies the r×c block at (i, j) of the target rank's window into dst.
// Metered as bytes sent by the target.
func (w *Window) Get(rank, i, j int, dst *mat.Matrix) {
	t := w.target(rank)
	t.mu.Lock()
	src := t.local.View(i, j, dst.Rows, dst.Cols)
	dst.CopyFrom(src)
	t.mu.Unlock()
	if w.comm.members[rank] != w.comm.WorldRank() {
		w.comm.w.Trace.RecordOneSided(w.comm.WorldRank(), w.comm.members[rank],
			w.comm.WorldRank(), int64(dst.Len())*trace.BytesPerElement, w.comm.Phase())
	}
}

// Put copies src into the target rank's window at (i, j). Metered as bytes
// sent by the origin.
func (w *Window) Put(rank, i, j int, src *mat.Matrix) {
	t := w.target(rank)
	t.mu.Lock()
	t.local.View(i, j, src.Rows, src.Cols).CopyFrom(src)
	t.mu.Unlock()
	if w.comm.members[rank] != w.comm.WorldRank() {
		w.comm.w.Trace.RecordOneSided(w.comm.WorldRank(), w.comm.WorldRank(),
			w.comm.members[rank], int64(src.Len())*trace.BytesPerElement, w.comm.Phase())
	}
}

// Accumulate adds src element-wise into the target rank's window at (i, j)
// (MPI_Accumulate with MPI_SUM). Metered like Put.
func (w *Window) Accumulate(rank, i, j int, src *mat.Matrix) {
	t := w.target(rank)
	t.mu.Lock()
	t.local.View(i, j, src.Rows, src.Cols).AddFrom(src)
	t.mu.Unlock()
	if w.comm.members[rank] != w.comm.WorldRank() {
		w.comm.w.Trace.RecordOneSided(w.comm.WorldRank(), w.comm.WorldRank(),
			w.comm.members[rank], int64(src.Len())*trace.BytesPerElement, w.comm.Phase())
	}
}

// Fence closes the current access epoch: a barrier across the communicator
// (accesses in this implementation are immediately visible, so the barrier
// provides exactly MPI's fence ordering guarantee).
func (w *Window) Fence() { w.comm.Barrier() }

// Free removes the window (collective).
func (w *Window) Free() {
	w.comm.Barrier()
	w.wins.mu.Lock()
	delete(w.wins.byID, winKey{rank: w.comm.WorldRank(), id: w.id})
	w.wins.mu.Unlock()
}
