package smpi

import (
	"fmt"

	"repro/internal/mat"
)

// BcastMat broadcasts root's matrix to every rank (binomial tree, log₂(p)
// rounds; total volume (p-1)·len, matching an MPI tree broadcast).
func (c *Comm) BcastMat(root int, m *mat.Matrix) {
	tag := c.nextCollTag()
	p := c.Size()
	if p == 1 {
		return
	}
	r := (c.me - root + p) % p // rank relative to root
	for mask := 1; mask < p; mask <<= 1 {
		if r < mask {
			if peer := r + mask; peer < p {
				c.SendMat((peer+root)%p, tag, m)
			}
		} else if r < mask<<1 {
			c.RecvMat((r-mask+root)%p, tag, m)
		}
	}
}

// BcastInts broadcasts root's int slice (binomial tree). Returns the slice
// (receivers get the broadcast copy; root gets its own argument).
func (c *Comm) BcastInts(root int, ids []int) []int {
	tag := c.nextCollTag()
	p := c.Size()
	if p == 1 {
		return ids
	}
	r := (c.me - root + p) % p
	for mask := 1; mask < p; mask <<= 1 {
		if r < mask {
			if peer := r + mask; peer < p {
				c.SendInts((peer+root)%p, tag, ids)
			}
		} else if r < mask<<1 {
			ids = c.RecvInts((r-mask+root)%p, tag)
		}
	}
	return ids
}

// ReduceMatSum element-wise sums every rank's matrix into root's matrix
// (binomial tree; total volume (p-1)·len). Non-root contents are consumed.
func (c *Comm) ReduceMatSum(root int, m *mat.Matrix) {
	tag := c.nextCollTag()
	p := c.Size()
	if p == 1 {
		return
	}
	r := (c.me - root + p) % p
	tmp := m.Clone() // working accumulator; keeps caller's aliasing simple
	recvBuf := mat.NewPhantom(m.Rows, m.Cols)
	if c.w.Payload {
		recvBuf = mat.New(m.Rows, m.Cols)
	}
	for mask := 1; mask < p; mask <<= 1 {
		if r&mask != 0 {
			c.SendMat(((r-mask)+root)%p, tag, tmp)
			m.CopyFrom(tmp) // leave a defined value behind
			return
		}
		if r+mask < p {
			c.RecvMat(((r+mask)+root)%p, tag, recvBuf)
			tmp.AddFrom(recvBuf)
		}
	}
	m.CopyFrom(tmp)
}

// AllreduceMatSum combines ReduceMatSum and BcastMat (volume 2(p-1)·len).
func (c *Comm) AllreduceMatSum(m *mat.Matrix) {
	c.ReduceMatSum(0, m)
	c.BcastMat(0, m)
}

// MaxLoc is a (value, location) pair for distributed pivot search.
type MaxLoc struct {
	Val float64
	Loc int
}

// AllreduceMaxLoc returns the globally largest |Val| with its location,
// using a butterfly (hypercube) exchange over ⌈log₂ p⌉ rounds with a
// fold-in/fold-out step for non-power-of-two sizes (Rabenseifner-style,
// the pattern the paper cites for tournament rounds).
func (c *Comm) AllreduceMaxLoc(in MaxLoc) MaxLoc {
	combine := func(a, b MaxLoc) MaxLoc {
		// Loc < 0 marks "no candidate" (e.g. a rank owning no rows in the
		// searched range) and never wins.
		if a.Loc < 0 {
			return b
		}
		if b.Loc < 0 {
			return a
		}
		if abs(b.Val) > abs(a.Val) || (abs(b.Val) == abs(a.Val) && b.Loc < a.Loc) {
			return b
		}
		return a
	}
	enc := func(m MaxLoc) Msg {
		f := getFloats(1)
		f[0] = m.Val
		// pooled: both slices are pool leases; an aborted run's sweep may
		// return stranded in-flight pairs (see World.reclaim).
		return Msg{F: f, I: getInts1(m.Loc), N: 2, pooled: true}
	}
	dec := func(msg Msg) MaxLoc {
		out := MaxLoc{Loc: msg.I[0]}
		if msg.F != nil {
			out.Val = msg.F[0]
		}
		return out
	}
	// The running value is tracked decoded (cur) rather than re-read from
	// the in-flight Msg: a sent wire pair belongs to its receiver, who
	// recycles it below — reading `mine` after the send would race with
	// the peer reusing the buffer.
	cur := in
	res := c.Butterfly(enc(in), func(_, theirs Msg) Msg {
		cur = combine(cur, dec(theirs))
		putFloats(theirs.F)
		putInts1(theirs.I)
		return enc(cur)
	})
	return dec(res)
}

// Butterfly runs a hypercube all-exchange: every rank ends with
// combine(..) folded over all ranks' inputs. combine must be associative
// and commutative. Non-power-of-two sizes fold the tail ranks into the
// leading power-of-two block and fan the result back out.
func (c *Comm) Butterfly(in Msg, combine func(mine, theirs Msg) Msg) Msg {
	tag := c.nextCollTag()
	p := c.Size()
	pow2 := 1
	for pow2<<1 <= p {
		pow2 <<= 1
	}
	rem := p - pow2
	cur := in
	// Fold-in: tail ranks send to their mirror in the pow2 block.
	if c.me >= pow2 {
		c.Send(c.me-pow2, tag, cur)
	} else if c.me < rem {
		cur = combine(cur, c.Recv(c.me+pow2, tag))
	}
	if c.me < pow2 {
		for mask := 1; mask < pow2; mask <<= 1 {
			peer := c.me ^ mask
			c.Send(peer, tag, cur)
			cur = combine(cur, c.Recv(peer, tag))
		}
	}
	// Fan-out to the folded tail.
	if c.me < rem {
		c.Send(c.me+pow2, tag, cur)
	} else if c.me >= pow2 {
		cur = c.Recv(c.me-pow2, tag)
	}
	return cur
}

// ScatterMats sends parts[i] from root to rank i (linear, as in MPI_Scatterv
// for modest communicator sizes). Each rank passes its receive buffer; root
// passes the full parts slice.
func (c *Comm) ScatterMats(root int, parts []*mat.Matrix, recv *mat.Matrix) {
	tag := c.nextCollTag()
	if c.me == root {
		if len(parts) != c.Size() {
			panic(fmt.Sprintf("smpi: ScatterMats %d parts for %d ranks", len(parts), c.Size()))
		}
		for i, part := range parts {
			if i == root {
				recv.CopyFrom(part)
				continue
			}
			c.SendMat(i, tag, part)
		}
		return
	}
	c.RecvMat(root, tag, recv)
}

// GatherMats collects each rank's matrix at root: root receives into
// dst[i] for every i (dst ignored elsewhere).
func (c *Comm) GatherMats(root int, send *mat.Matrix, dst []*mat.Matrix) {
	tag := c.nextCollTag()
	if c.me == root {
		if len(dst) != c.Size() {
			panic(fmt.Sprintf("smpi: GatherMats %d buffers for %d ranks", len(dst), c.Size()))
		}
		for i := range dst {
			if i == root {
				dst[i].CopyFrom(send)
				continue
			}
			c.RecvMat(i, tag, dst[i])
		}
		return
	}
	c.SendMat(root, tag, send)
}

// AllgatherMats is a ring allgather: after p-1 rounds every rank holds every
// rank's block in out[i] (out[me] is filled from send).
func (c *Comm) AllgatherMats(send *mat.Matrix, out []*mat.Matrix) {
	tag := c.nextCollTag()
	p := c.Size()
	if len(out) != p {
		panic(fmt.Sprintf("smpi: AllgatherMats %d buffers for %d ranks", len(out), p))
	}
	out[c.me].CopyFrom(send)
	next, prev := (c.me+1)%p, (c.me-1+p)%p
	cur := c.me
	for round := 0; round < p-1; round++ {
		c.SendMat(next, tag+round, out[cur])
		cur = (cur - 1 + p) % p
		c.RecvMat(prev, tag+round, out[cur])
	}
}

// Barrier synchronizes the communicator with zero metered volume (control
// traffic is not data volume in the paper's accounting). It is not free in
// simulated time: each butterfly round costs α per endpoint, so barriers
// contribute latency to the makespan like real fence synchronization.
func (c *Comm) Barrier() {
	c.Butterfly(Msg{N: 0}, func(a, b Msg) Msg { return Msg{N: 0} })
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
