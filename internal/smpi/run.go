package smpi

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/trace"
)

// ErrCanceled is the sentinel wrapped by every run that was interrupted by
// its context (cancellation or deadline). Callers test for it with
// errors.Is; the returned error additionally wraps the context's cause, so
// errors.Is(err, context.Canceled) / context.DeadlineExceeded also work.
var ErrCanceled = errors.New("smpi: run canceled")

// RankFunc is the body executed by every rank of a simulated run.
type RankFunc func(c *Comm) error

// Run executes fn on p ranks (one goroutine each) and returns the
// communication-volume report (including the simulated-time sub-report
// under the default α-β machine). The first rank error (or panic, converted
// to an error) aborts the result; remaining ranks are still drained to
// avoid goroutine leaks in the common all-ranks-fail-together cases.
func Run(p int, payload bool, fn RankFunc) (*trace.Report, error) {
	w := NewWorld(p, payload)
	return RunWorld(w, fn)
}

// RunMachine is Run with explicit α-β machine parameters for the timeline.
func RunMachine(p int, payload bool, m trace.Machine, fn RankFunc) (*trace.Report, error) {
	return RunWorld(NewWorldMachine(p, payload, m), fn)
}

// RunWorld is Run with a caller-configured world (fault injection, etc.).
// The first failing rank aborts the world so that ranks blocked on receives
// unwind instead of deadlocking; their secondary ErrAborted panics are
// filtered out in favour of the originating error.
func RunWorld(w *World, fn RankFunc) (*trace.Report, error) {
	errs := make([]error, w.P)
	var wg sync.WaitGroup
	for r := 0; r < w.P; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					if err, ok := rec.(error); ok && errors.Is(err, ErrAborted) {
						errs[rank] = ErrAborted
					} else {
						errs[rank] = fmt.Errorf("smpi: rank %d panicked: %v\n%s", rank, rec, debug.Stack())
					}
					w.Abort()
					return
				}
				if errs[rank] != nil {
					w.Abort()
				}
			}()
			errs[rank] = fn(WorldComm(w, rank))
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil && !errors.Is(err, ErrAborted) {
			return w.Trace.Report(), err
		}
	}
	for _, err := range errs {
		if err != nil {
			return w.Trace.Report(), err
		}
	}
	return w.Trace.Report(), nil
}

// RunContext executes fn on p ranks under the default α-β machine, aborting
// the simulation when ctx is canceled or its deadline passes.
func RunContext(ctx context.Context, p int, payload bool, fn RankFunc) (*trace.Report, error) {
	return RunContextMachine(ctx, p, payload, trace.DefaultMachine(), fn)
}

// RunContextMachine is RunContext with explicit α-β machine parameters.
func RunContextMachine(ctx context.Context, p int, payload bool, m trace.Machine, fn RankFunc) (*trace.Report, error) {
	return RunContextWorld(ctx, NewWorldMachine(p, payload, m), fn)
}

// RunContextWorld runs fn on a caller-configured world under ctx. When ctx
// is done the world is aborted: every rank blocked on a receive unwinds
// immediately (and computing ranks unwind at their next communication
// point), so an in-flight simulation is interrupted promptly rather than
// run to completion or abandoned. The returned error wraps ErrCanceled and
// the context's cause. A run that completes before cancellation lands is
// returned as a success.
func RunContextWorld(ctx context.Context, w *World, fn RankFunc) (*trace.Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, canceledErr(ctx)
	}
	// The watcher holds the world open until the run returns, so a
	// cancellation arriving at any point wakes the blocked ranks exactly
	// once and the goroutine never leaks.
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			w.Abort()
		case <-done:
		}
	}()
	rep, err := RunWorld(w, fn)
	close(done)
	if err != nil && ctx.Err() != nil {
		// The abort unwound the ranks (surfacing as ErrAborted or as
		// engine errors on half-delivered schedules); the context is the
		// root cause, so it wins.
		return rep, canceledErr(ctx)
	}
	return rep, err
}

func canceledErr(ctx context.Context) error {
	cause := context.Cause(ctx)
	if err := ctx.Err(); !errors.Is(cause, err) {
		// A custom cause (e.g. a timeout explanation) replaces ctx.Err()
		// in the chain; keep both so errors.Is works against either.
		return fmt.Errorf("%w: %w (%w)", ErrCanceled, cause, err)
	}
	return fmt.Errorf("%w: %w", ErrCanceled, cause)
}

// RunTimeout is Run with a deadline; it fails rather than deadlocking when a
// schedule bug leaves ranks blocked on Recv. The deadline aborts the world,
// so the ranks of a timed-out run unwind instead of leaking.
func RunTimeout(p int, payload bool, d time.Duration, fn RankFunc) (*trace.Report, error) {
	return RunTimeoutMachine(p, payload, trace.DefaultMachine(), d, fn)
}

// RunTimeoutMachine is RunTimeout with explicit α-β machine parameters.
func RunTimeoutMachine(p int, payload bool, m trace.Machine, d time.Duration, fn RankFunc) (*trace.Report, error) {
	ctx, cancel := context.WithTimeoutCause(context.Background(), d,
		fmt.Errorf("smpi: run did not complete within %v (likely schedule deadlock)", d))
	defer cancel()
	return RunContextMachine(ctx, p, payload, m, fn)
}
