package smpi

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/trace"
)

// RankFunc is the body executed by every rank of a simulated run.
type RankFunc func(c *Comm) error

// Run executes fn on p ranks (one goroutine each) and returns the
// communication-volume report (including the simulated-time sub-report
// under the default α-β machine). The first rank error (or panic, converted
// to an error) aborts the result; remaining ranks are still drained to
// avoid goroutine leaks in the common all-ranks-fail-together cases.
func Run(p int, payload bool, fn RankFunc) (*trace.Report, error) {
	w := NewWorld(p, payload)
	return RunWorld(w, fn)
}

// RunMachine is Run with explicit α-β machine parameters for the timeline.
func RunMachine(p int, payload bool, m trace.Machine, fn RankFunc) (*trace.Report, error) {
	return RunWorld(NewWorldMachine(p, payload, m), fn)
}

// RunWorld is Run with a caller-configured world (fault injection, etc.).
// The first failing rank aborts the world so that ranks blocked on receives
// unwind instead of deadlocking; their secondary ErrAborted panics are
// filtered out in favour of the originating error.
func RunWorld(w *World, fn RankFunc) (*trace.Report, error) {
	errs := make([]error, w.P)
	var wg sync.WaitGroup
	for r := 0; r < w.P; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					if err, ok := rec.(error); ok && errors.Is(err, ErrAborted) {
						errs[rank] = ErrAborted
					} else {
						errs[rank] = fmt.Errorf("smpi: rank %d panicked: %v\n%s", rank, rec, debug.Stack())
					}
					w.Abort()
					return
				}
				if errs[rank] != nil {
					w.Abort()
				}
			}()
			errs[rank] = fn(WorldComm(w, rank))
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil && !errors.Is(err, ErrAborted) {
			return w.Trace.Report(), err
		}
	}
	for _, err := range errs {
		if err != nil {
			return w.Trace.Report(), err
		}
	}
	return w.Trace.Report(), nil
}

// RunTimeout is Run with a deadline; it fails rather than deadlocking when a
// schedule bug leaves ranks blocked on Recv. Only for tests: the goroutines
// of a timed-out run are abandoned.
func RunTimeout(p int, payload bool, d time.Duration, fn RankFunc) (*trace.Report, error) {
	return RunTimeoutMachine(p, payload, trace.DefaultMachine(), d, fn)
}

// RunTimeoutMachine is RunTimeout with explicit α-β machine parameters.
func RunTimeoutMachine(p int, payload bool, m trace.Machine, d time.Duration, fn RankFunc) (*trace.Report, error) {
	type result struct {
		rep *trace.Report
		err error
	}
	ch := make(chan result, 1)
	go func() {
		rep, err := RunMachine(p, payload, m, fn)
		ch <- result{rep, err}
	}()
	select {
	case res := <-ch:
		return res.rep, res.err
	case <-time.After(d):
		return nil, fmt.Errorf("smpi: run did not complete within %v (likely schedule deadlock)", d)
	}
}
