package smpi

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/trace"
)

// This file keeps the eight historical entry points of the runtime as thin
// wrappers over Exec (see exec.go), which replaced them. They remain for
// source compatibility; new code should call Exec with a Config.

// ErrCanceled is the sentinel wrapped by every run that was interrupted by
// its context (cancellation or deadline). Callers test for it with
// errors.Is; the returned error additionally wraps the context's cause, so
// errors.Is(err, context.Canceled) / context.DeadlineExceeded also work.
var ErrCanceled = errors.New("smpi: run canceled")

// RankFunc is the body executed by every rank of a simulated run.
type RankFunc func(c *Comm) error

// Run executes fn on p ranks and returns the communication-volume report
// (including the simulated-time sub-report under the default α-β machine).
//
// Deprecated: use Exec.
func Run(p int, payload bool, fn RankFunc) (*trace.Report, error) {
	return Exec(context.Background(), Config{P: p, Payload: payload}, fn)
}

// RunMachine is Run with explicit α-β machine parameters for the timeline.
//
// Deprecated: use Exec.
func RunMachine(p int, payload bool, m trace.Machine, fn RankFunc) (*trace.Report, error) {
	return Exec(context.Background(), Config{P: p, Payload: payload, Machine: m, MachineSet: true}, fn)
}

// RunWorld is Run with a caller-configured world (fault injection, etc.).
//
// Deprecated: use Exec.
func RunWorld(w *World, fn RankFunc) (*trace.Report, error) {
	return Exec(context.Background(), Config{World: w}, fn)
}

// RunContext executes fn on p ranks under the default α-β machine, aborting
// the simulation when ctx is canceled or its deadline passes.
//
// Deprecated: use Exec.
func RunContext(ctx context.Context, p int, payload bool, fn RankFunc) (*trace.Report, error) {
	return Exec(ctx, Config{P: p, Payload: payload}, fn)
}

// RunContextMachine is RunContext with explicit α-β machine parameters.
//
// Deprecated: use Exec.
func RunContextMachine(ctx context.Context, p int, payload bool, m trace.Machine, fn RankFunc) (*trace.Report, error) {
	return Exec(ctx, Config{P: p, Payload: payload, Machine: m, MachineSet: true}, fn)
}

// RunContextWorld runs fn on a caller-configured world under ctx.
//
// Deprecated: use Exec.
func RunContextWorld(ctx context.Context, w *World, fn RankFunc) (*trace.Report, error) {
	return Exec(ctx, Config{World: w}, fn)
}

func canceledErr(ctx context.Context) error {
	cause := context.Cause(ctx)
	if err := ctx.Err(); !errors.Is(cause, err) {
		// A custom cause (e.g. a timeout explanation) replaces ctx.Err()
		// in the chain; keep both so errors.Is works against either.
		return fmt.Errorf("%w: %w (%w)", ErrCanceled, cause, err)
	}
	return fmt.Errorf("%w: %w", ErrCanceled, cause)
}

// RunTimeout is Run with a deadline; it fails rather than deadlocking when a
// schedule bug leaves ranks blocked on Recv.
//
// Deprecated: use Exec.
func RunTimeout(p int, payload bool, d time.Duration, fn RankFunc) (*trace.Report, error) {
	return Exec(context.Background(), Config{P: p, Payload: payload, Timeout: d}, fn)
}

// RunTimeoutMachine is RunTimeout with explicit α-β machine parameters.
//
// Deprecated: use Exec.
func RunTimeoutMachine(p int, payload bool, m trace.Machine, d time.Duration, fn RankFunc) (*trace.Report, error) {
	return Exec(context.Background(), Config{P: p, Payload: payload, Machine: m, MachineSet: true, Timeout: d}, fn)
}
