package smpi

import (
	"context"
	"testing"
)

// TestWorldCommSharesMembers: every rank's world Comm must alias the one
// world member list — the per-rank copies were O(P²) memory at beyond-paper
// scales.
func TestWorldCommSharesMembers(t *testing.T) {
	w := NewWorld(16, false)
	a, b := WorldComm(w, 0), WorldComm(w, 15)
	if &a.members[0] != &b.members[0] {
		t.Fatal("world Comms hold separate member copies")
	}
	if a.id != b.id || a.id != w.worldID {
		t.Fatal("world Comm IDs diverge")
	}
	if a.Rank() != 0 || b.Rank() != 15 || a.Size() != 16 {
		t.Fatalf("rank/size wrong: %d %d %d", a.Rank(), b.Rank(), a.Size())
	}
}

// TestSubInternsLargeMemberLists: Sub communicators at or above the intern
// threshold share one member copy across ranks; smaller ones stay private
// (they are transient — per-tile comms must not pin the intern table).
func TestSubInternsLargeMemberLists(t *testing.T) {
	p := internMembersMin + 8
	w := NewWorld(p, false)
	big := make([]int, internMembersMin)
	for i := range big {
		big[i] = i
	}
	c0, c1 := WorldComm(w, 0), WorldComm(w, 1)
	s0, s1 := c0.Sub("active", big), c1.Sub("active", big)
	if &s0.members[0] != &s1.members[0] {
		t.Fatal("large Sub member lists not shared")
	}
	if &s0.members[0] == &big[0] {
		t.Fatal("interned list aliases the caller's slice")
	}
	small := []int{0, 1}
	t0, t1 := c0.Sub("tile", small), c1.Sub("tile", small)
	if &t0.members[0] == &t1.members[0] {
		t.Fatal("small Sub member lists unexpectedly shared")
	}
	if len(w.interned) != 1 {
		t.Fatalf("intern table has %d entries, want 1", len(w.interned))
	}
}

// TestSubShapesMessaging: a quick end-to-end sanity run over an interned
// communicator — sub-rank indexing and message routing must be unaffected
// by the sharing.
func TestSubShapesMessaging(t *testing.T) {
	p := internMembersMin
	_, err := Exec(context.Background(), Config{P: p, Executor: ExecEvents, Workers: 4}, func(c *Comm) error {
		members := make([]int, p)
		for i := range members {
			members[i] = p - 1 - i // reversed order: sub-rank ≠ world rank
		}
		sub := c.Sub("rev", members)
		me := sub.Rank()
		sub.Send((me+1)%p, 0, Msg{N: 8})
		sub.Recv((me-1+p)%p, 0)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCommIDSeparatesNameFromMembers: the binary FNV hash must keep the
// name and member-list domains separated so ("ab", [...]) cannot collide
// with ("a", [...]) by byte concatenation.
func TestCommIDSeparatesNameFromMembers(t *testing.T) {
	if commID("row", []int{1, 2}) == commID("row", []int{2, 1}) {
		t.Fatal("member order ignored")
	}
	if commID("a", []int{1}) == commID("b", []int{1}) {
		t.Fatal("name ignored")
	}
	if commID("a", []int{0x62}) == commID("ab", []int{}) {
		t.Fatal("name/member boundary not separated")
	}
}
