package smpi

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/mat"
	"repro/internal/trace"
)

const testTimeout = 30 * time.Second

func run(t *testing.T, p int, payload bool, fn RankFunc) *trace.Report {
	t.Helper()
	rep, err := RunTimeout(p, payload, testTimeout, fn)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestSendRecvOrdering(t *testing.T) {
	run(t, 2, true, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < 10; i++ {
				c.Send(1, 5, Msg{F: []float64{float64(i)}, N: 1})
			}
		} else {
			for i := 0; i < 10; i++ {
				m := c.Recv(0, 5)
				if m.F[0] != float64(i) {
					return fmt.Errorf("out of order: got %v want %d", m.F[0], i)
				}
			}
		}
		return nil
	})
}

func TestTagIsolation(t *testing.T) {
	run(t, 2, true, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, Msg{F: []float64{1}, N: 1})
			c.Send(1, 2, Msg{F: []float64{2}, N: 1})
		} else {
			// Receive in reverse tag order.
			if m := c.Recv(0, 2); m.F[0] != 2 {
				return errors.New("tag 2 corrupted")
			}
			if m := c.Recv(0, 1); m.F[0] != 1 {
				return errors.New("tag 1 corrupted")
			}
		}
		return nil
	})
}

func TestVolumeCountingP2P(t *testing.T) {
	rep := run(t, 3, true, func(c *Comm) error {
		if c.Rank() == 0 {
			c.SetPhase("a")
			c.SendMat(1, 1, mat.New(4, 5)) // 20 elements
			c.SetPhase("b")
			c.SendInts(2, 2, []int{1, 2, 3}) // 3 elements
		}
		if c.Rank() == 1 {
			c.RecvMat(0, 1, mat.New(4, 5))
		}
		if c.Rank() == 2 {
			c.RecvInts(0, 2)
		}
		return nil
	})
	if got := rep.TotalBytes(); got != 23*8 {
		t.Fatalf("total bytes %d, want %d", got, 23*8)
	}
	if rep.Sent[0] != 23*8 || rep.Recv[1] != 20*8 || rep.Recv[2] != 3*8 {
		t.Fatalf("per-rank wrong: %v %v", rep.Sent, rep.Recv)
	}
	if rep.ByPhase["a"] != 160 || rep.ByPhase["b"] != 24 {
		t.Fatalf("phases wrong: %v", rep.ByPhase)
	}
}

func TestSelfSendNotMetered(t *testing.T) {
	rep := run(t, 1, true, func(c *Comm) error {
		c.SendMat(0, 7, mat.New(10, 10))
		c.RecvMat(0, 7, mat.New(10, 10))
		return nil
	})
	if rep.TotalBytes() != 0 {
		t.Fatalf("self traffic metered: %d", rep.TotalBytes())
	}
}

func TestBcastMatAllSizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 7, 8, 16} {
		for root := 0; root < p; root += max(1, p/3) {
			src := mat.Random(3, 3, 42)
			rep := run(t, p, true, func(c *Comm) error {
				m := mat.New(3, 3)
				if c.Rank() == root {
					m.CopyFrom(src)
				}
				c.BcastMat(root, m)
				if d := mat.MaxAbsDiff(m, src); d != 0 {
					return fmt.Errorf("rank %d wrong bcast (diff %v)", c.Rank(), d)
				}
				return nil
			})
			want := int64((p - 1) * 9 * 8)
			if rep.TotalBytes() != want {
				t.Fatalf("p=%d root=%d: volume %d want %d", p, root, rep.TotalBytes(), want)
			}
		}
	}
}

func TestBcastInts(t *testing.T) {
	run(t, 5, true, func(c *Comm) error {
		var ids []int
		if c.Rank() == 2 {
			ids = []int{4, 5, 6}
		}
		ids = c.BcastInts(2, ids)
		if len(ids) != 3 || ids[2] != 6 {
			return fmt.Errorf("rank %d got %v", c.Rank(), ids)
		}
		return nil
	})
}

func TestReduceMatSum(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8} {
		for root := 0; root < p; root += max(1, p-1) {
			rep := run(t, p, true, func(c *Comm) error {
				m := mat.New(2, 2)
				m.Set(0, 0, float64(c.Rank()+1))
				c.ReduceMatSum(root, m)
				if c.Rank() == root {
					want := float64(p*(p+1)) / 2
					if m.At(0, 0) != want {
						return fmt.Errorf("sum %v want %v", m.At(0, 0), want)
					}
				}
				return nil
			})
			want := int64((p - 1) * 4 * 8)
			if rep.TotalBytes() != want {
				t.Fatalf("p=%d root=%d: volume %d want %d", p, root, rep.TotalBytes(), want)
			}
		}
	}
}

func TestAllreduceMatSum(t *testing.T) {
	run(t, 6, true, func(c *Comm) error {
		m := mat.New(1, 3)
		m.Set(0, 1, 2)
		c.AllreduceMatSum(m)
		if m.At(0, 1) != 12 {
			return fmt.Errorf("rank %d: %v", c.Rank(), m.At(0, 1))
		}
		return nil
	})
}

func TestAllreduceMaxLoc(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 6, 8, 9} {
		run(t, p, true, func(c *Comm) error {
			in := MaxLoc{Val: float64(c.Rank()), Loc: c.Rank() * 10}
			if c.Rank() == p/2 {
				in.Val = -1000 // largest magnitude, negative
			}
			out := c.AllreduceMaxLoc(in)
			if out.Val != -1000 || out.Loc != (p/2)*10 {
				return fmt.Errorf("p=%d rank %d got %+v", p, c.Rank(), out)
			}
			return nil
		})
	}
}

func TestButterflyVolumePow2(t *testing.T) {
	p := 8
	rep := run(t, p, true, func(c *Comm) error {
		c.Butterfly(Msg{F: []float64{1}, N: 1}, func(a, b Msg) Msg {
			return Msg{F: []float64{a.F[0] + b.F[0]}, N: 1}
		})
		return nil
	})
	// log2(8)=3 rounds, every rank sends 1 element per round.
	want := int64(p * 3 * 8)
	if rep.TotalBytes() != want {
		t.Fatalf("volume %d want %d", rep.TotalBytes(), want)
	}
}

func TestButterflySumNonPow2(t *testing.T) {
	for _, p := range []int{3, 5, 6, 7, 12} {
		run(t, p, true, func(c *Comm) error {
			out := c.Butterfly(Msg{F: []float64{1}, N: 1}, func(a, b Msg) Msg {
				return Msg{F: []float64{a.F[0] + b.F[0]}, N: 1}
			})
			if out.F[0] != float64(p) {
				return fmt.Errorf("p=%d rank %d sum %v", p, c.Rank(), out.F[0])
			}
			return nil
		})
	}
}

func TestScatterGather(t *testing.T) {
	p := 4
	run(t, p, true, func(c *Comm) error {
		recv := mat.New(1, 2)
		var parts []*mat.Matrix
		if c.Rank() == 1 {
			parts = make([]*mat.Matrix, p)
			for i := range parts {
				parts[i] = mat.New(1, 2)
				parts[i].Set(0, 0, float64(i))
			}
		}
		c.ScatterMats(1, parts, recv)
		if recv.At(0, 0) != float64(c.Rank()) {
			return fmt.Errorf("scatter wrong on %d: %v", c.Rank(), recv.At(0, 0))
		}
		recv.Set(0, 1, float64(c.Rank()*c.Rank()))
		var dst []*mat.Matrix
		if c.Rank() == 2 {
			dst = make([]*mat.Matrix, p)
			for i := range dst {
				dst[i] = mat.New(1, 2)
			}
		}
		c.GatherMats(2, recv, dst)
		if c.Rank() == 2 {
			for i := 0; i < p; i++ {
				if dst[i].At(0, 1) != float64(i*i) {
					return fmt.Errorf("gather wrong at %d", i)
				}
			}
		}
		return nil
	})
}

func TestAllgather(t *testing.T) {
	p := 5
	rep := run(t, p, true, func(c *Comm) error {
		send := mat.New(1, 1)
		send.Set(0, 0, float64(c.Rank()))
		out := make([]*mat.Matrix, p)
		for i := range out {
			out[i] = mat.New(1, 1)
		}
		c.AllgatherMats(send, out)
		for i := 0; i < p; i++ {
			if out[i].At(0, 0) != float64(i) {
				return fmt.Errorf("rank %d slot %d wrong", c.Rank(), i)
			}
		}
		return nil
	})
	// Ring: every rank sends (p-1) blocks of 1 element.
	want := int64(p * (p - 1) * 8)
	if rep.TotalBytes() != want {
		t.Fatalf("volume %d want %d", rep.TotalBytes(), want)
	}
}

func TestBarrierZeroVolume(t *testing.T) {
	rep := run(t, 7, true, func(c *Comm) error {
		c.Barrier()
		return nil
	})
	if rep.TotalBytes() != 0 {
		t.Fatalf("barrier metered %d bytes", rep.TotalBytes())
	}
}

func TestSubCommunicator(t *testing.T) {
	// 6 ranks → two row communicators {0,1,2} and {3,4,5}.
	run(t, 6, true, func(c *Comm) error {
		row := c.WorldRank() / 3
		members := []int{row * 3, row*3 + 1, row*3 + 2}
		rc := c.Sub(fmt.Sprintf("row%d", row), members)
		if rc.Size() != 3 || rc.WorldRank() != c.WorldRank() {
			return errors.New("bad sub comm")
		}
		m := mat.New(1, 1)
		if rc.Rank() == 0 {
			m.Set(0, 0, float64(row+1))
		}
		rc.BcastMat(0, m)
		if m.At(0, 0) != float64(row+1) {
			return fmt.Errorf("cross-communicator leak: rank %d got %v", c.WorldRank(), m.At(0, 0))
		}
		return nil
	})
}

func TestVolumeModeMatchesNumericVolume(t *testing.T) {
	// The central phantom-mode invariant: byte counts are identical.
	body := func(c *Comm) error {
		m := mat.New(4, 4)
		if !c.Payload() {
			m = mat.NewPhantom(4, 4)
		}
		c.BcastMat(0, m)
		c.ReduceMatSum(1, m)
		if c.Rank() == 0 {
			c.SendMat(2, 3, m.View(0, 0, 2, 2))
		}
		if c.Rank() == 2 {
			buf := mat.New(2, 2)
			if !c.Payload() {
				buf = mat.NewPhantom(2, 2)
			}
			c.RecvMat(0, 3, buf)
		}
		return nil
	}
	repN := run(t, 5, true, body)
	repV := run(t, 5, false, body)
	if repN.TotalBytes() != repV.TotalBytes() {
		t.Fatalf("numeric %d != volume %d", repN.TotalBytes(), repV.TotalBytes())
	}
	for r := 0; r < 5; r++ {
		if repN.Sent[r] != repV.Sent[r] {
			t.Fatalf("rank %d: %d != %d", r, repN.Sent[r], repV.Sent[r])
		}
	}
}

func TestRankErrorPropagates(t *testing.T) {
	_, err := RunTimeout(3, true, testTimeout, func(c *Comm) error {
		if c.Rank() == 1 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestRankPanicBecomesError(t *testing.T) {
	_, err := RunTimeout(2, true, testTimeout, func(c *Comm) error {
		if c.Rank() == 0 {
			panic("kaput")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "kaput") {
		t.Fatalf("err = %v", err)
	}
}

func TestFailureInjection(t *testing.T) {
	w := NewWorld(4, true)
	var budget int64 = 100 // fail all sends after 100 bytes total
	var sent int64
	w.FailSend = func(from, to int, bytes int64) error {
		if sent += bytes; sent > budget {
			return fmt.Errorf("link %d->%d failed (budget exhausted)", from, to)
		}
		return nil
	}
	_, err := RunWorld(w, func(c *Comm) error {
		m := mat.New(8, 8)
		c.BcastMat(0, m)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "failed") {
		t.Fatalf("expected injected failure, got %v", err)
	}
}

func TestDeadlockDetectedByTimeout(t *testing.T) {
	_, err := RunTimeout(2, true, 200*time.Millisecond, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Recv(1, 1) // never sent
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected timeout error, got %v", err)
	}
}

// TestCollectiveVolumeNonPowerOfTwo pins the collective accounting at the
// awkward communicator sizes the binomial trees must still meter exactly:
// BcastMat, ReduceMatSum, and BcastInts each move exactly (p-1)·len
// elements regardless of how the tree folds.
func TestCollectiveVolumeNonPowerOfTwo(t *testing.T) {
	const elems = 12 // 3x4 matrices and 12-int slices
	for _, p := range []int{3, 5, 6, 7} {
		cases := []struct {
			name string
			body RankFunc
		}{
			{"BcastMat", func(c *Comm) error {
				c.BcastMat(0, mat.New(3, 4))
				return nil
			}},
			{"ReduceMatSum", func(c *Comm) error {
				c.ReduceMatSum(0, mat.New(3, 4))
				return nil
			}},
			{"BcastInts", func(c *Comm) error {
				c.BcastInts(0, make([]int, elems))
				return nil
			}},
		}
		for _, tc := range cases {
			rep := run(t, p, true, tc.body)
			want := int64((p - 1) * elems * 8)
			if got := rep.TotalBytes(); got != want {
				t.Fatalf("%s p=%d: metered %d bytes, want (p-1)·len·8 = %d", tc.name, p, got, want)
			}
		}
	}
}

// TestSimulatedTimeBasics: sends advance the simulated clocks, barriers
// cost latency but no volume, and an idle world has zero makespan.
func TestSimulatedTimeBasics(t *testing.T) {
	rep := run(t, 3, true, func(c *Comm) error {
		c.Barrier()
		return nil
	})
	if rep.TotalBytes() != 0 {
		t.Fatalf("barrier metered %d bytes", rep.TotalBytes())
	}
	if rep.Time.Makespan <= 0 {
		t.Fatal("barrier should cost α latency in simulated time")
	}
	idle := run(t, 3, true, func(c *Comm) error { return nil })
	if idle.Time.Makespan != 0 {
		t.Fatalf("idle world makespan %v", idle.Time.Makespan)
	}
}

// Property: tree-broadcast volume is exactly (p-1)·len·8 for any p, len.
func TestQuickBcastVolume(t *testing.T) {
	f := func(p8, len8 uint8) bool {
		p := int(p8%12) + 1
		n := int(len8%20) + 1
		rep, err := RunTimeout(p, false, testTimeout, func(c *Comm) error {
			c.BcastMat(0, mat.NewPhantom(1, n))
			return nil
		})
		if err != nil {
			return false
		}
		return rep.TotalBytes() == int64((p-1)*n*8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: butterfly sum equals p regardless of size.
func TestQuickButterflySum(t *testing.T) {
	f := func(p8 uint8) bool {
		p := int(p8%16) + 1
		ok := true
		_, err := RunTimeout(p, true, testTimeout, func(c *Comm) error {
			out := c.Butterfly(Msg{F: []float64{1}, N: 1}, func(a, b Msg) Msg {
				return Msg{F: []float64{a.F[0] + b.F[0]}, N: 1}
			})
			if out.F[0] != float64(p) {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
