package smpi

import (
	"fmt"
	"testing"

	"repro/internal/mat"
)

// TestMailboxSteadyStateMapSize is the regression test for the mailbox
// memory-growth bug: per-key queue entries must be reclaimed when drained,
// so a long-lived world (one session running many solves) holds map entries
// only for in-flight traffic, never for its whole tag history. Every round
// uses fresh tags — without drained-key deletion the maps would grow by
// 2·rounds entries; with it they stay at zero between rounds and end empty.
func TestMailboxSteadyStateMapSize(t *testing.T) {
	const p, rounds = 4, 2000
	w := NewWorld(p, false)
	_, err := RunWorld(w, func(c *Comm) error {
		me := c.Rank()
		next, prev := (me+1)%p, (me-1+p)%p
		for r := 0; r < rounds; r++ {
			c.Send(next, r, Msg{N: 8}) // tag r: a fresh key every round
			c.Recv(prev, r)
			if r%100 == 0 {
				// The rank owns its mailbox; between matched rounds only
				// not-yet-taken deliveries may occupy the map. With p-1
				// possible senders that bounds the size at p-1, tag
				// history must contribute nothing.
				mb := w.boxes[c.WorldRank()]
				mb.mu.Lock()
				size := len(mb.q)
				mb.mu.Unlock()
				if size >= p {
					return fmt.Errorf("rank %d: mailbox map holds %d keys at round %d (leak)", me, size, r)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, mb := range w.boxes {
		mb.mu.Lock()
		size := len(mb.q)
		mb.mu.Unlock()
		if size != 0 {
			t.Fatalf("rank %d: %d undrained mailbox keys after the run", r, size)
		}
	}
}

// TestMailboxAbortReclaimsWaiterQueue: a receiver parked on a key it
// created (receive-before-send) must not strand that empty queue in the map
// when the world aborts.
func TestMailboxAbortReclaimsWaiterQueue(t *testing.T) {
	w := NewWorld(2, false)
	_, err := RunWorld(w, func(c *Comm) error {
		if c.Rank() == 0 {
			return fmt.Errorf("rank 0 fails") // aborts the world
		}
		c.Recv(0, 7) // blocks forever; unwinds via ErrAborted
		return nil
	})
	if err == nil {
		t.Fatal("expected the injected failure")
	}
	mb := w.boxes[1]
	mb.mu.Lock()
	size := len(mb.q)
	mb.mu.Unlock()
	if size != 0 {
		t.Fatalf("aborted waiter left %d keys in its mailbox map", size)
	}
}

// TestSendMatRecvMatPooledRoundTrip pins that buffer pooling does not leak
// payload aliasing: the receiver's matrix must hold a private copy, and
// mutating either side after the exchange must not affect the other even
// though the wire buffer is recycled into the next send.
func TestSendMatRecvMatPooledRoundTrip(t *testing.T) {
	run(t, 2, true, func(c *Comm) error {
		if c.Rank() == 0 {
			a := mat.New(3, 3)
			for i := 0; i < 3; i++ {
				for j := 0; j < 3; j++ {
					a.Set(i, j, float64(10*i+j))
				}
			}
			c.SendMat(1, 1, a)
			b := mat.New(2, 2)
			b.Set(0, 0, 42)
			c.SendMat(1, 2, b) // likely reuses the recycled wire buffer
		} else {
			got := mat.New(3, 3)
			c.RecvMat(0, 1, got)
			snapshot := got.Clone()
			got2 := mat.New(2, 2)
			c.RecvMat(0, 2, got2)
			if d := mat.MaxAbsDiff(got, snapshot); d != 0 {
				return fmt.Errorf("first receive mutated by second exchange (pool aliasing): diff %v", d)
			}
			if got.At(2, 1) != 21 || got2.At(0, 0) != 42 {
				return fmt.Errorf("payload corrupted: %v / %v", got.At(2, 1), got2.At(0, 0))
			}
		}
		return nil
	})
}

// TestPhantomSendAllocatesNothing pins the zero-allocation phantom fast
// path: in steady state (pools warm), a phantom SendMat/RecvMat pair on a
// pre-built world performs no heap allocation.
func TestPhantomSendAllocatesNothing(t *testing.T) {
	w := NewWorld(2, false)
	done := make(chan struct{})
	req := make(chan int)
	go func() {
		c := WorldComm(w, 1)
		m := mat.NewPhantom(16, 16)
		for tag := range req {
			c.RecvMat(0, tag, m)
		}
		close(done)
	}()
	c := WorldComm(w, 0)
	m := mat.NewPhantom(16, 16)
	exchange := func(tag int) {
		req <- tag
		c.SendMat(1, tag, m)
	}
	exchange(0) // warm up: queue pool, map entry churn
	const reps = 100
	avg := testing.AllocsPerRun(reps, func() { exchange(1) })
	close(req)
	<-done
	// The metering path may touch a map bucket now and then; allow a small
	// fraction but fail on per-message allocation.
	if avg >= 1 {
		t.Fatalf("phantom exchange allocates %.2f objects/op, want ~0", avg)
	}
}
