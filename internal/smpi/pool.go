package smpi

import (
	"math/bits"
	"sync"
)

// Size-classed pools for float64 wire buffers. SendMat leases a buffer and
// packs the outgoing matrix into it; RecvMat copies the payload out and
// returns the buffer. Classes are powers of two, so a leased slice has
// len == requested and cap == the class size; Put rounds the capacity DOWN
// to its class so an over-sized slice can never be handed out short.
//
// Pooling is package-global: buffers carry no world identity, and a
// process typically replays many worlds (sweeps, conformance matrices)
// whose peak demand this amortizes.

const maxPoolClass = 26 // 1<<26 floats = 512 MiB; larger buffers go to the GC

var floatPools [maxPoolClass + 1]sync.Pool

func poolClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1)) // smallest c with 1<<c >= n
}

// getFloats leases a length-n buffer. The contents are undefined: every
// element is overwritten by the pack that follows.
func getFloats(n int) []float64 {
	if n == 0 {
		return nil
	}
	c := poolClass(n)
	if c > maxPoolClass {
		return make([]float64, n)
	}
	if got := floatPools[c].Get(); got != nil {
		return (*got.(*[]float64))[:n]
	}
	return make([]float64, n, 1<<c)
}

// ints1Pool recycles the 1-element metadata slices the MaxLoc reduction
// exchanges every butterfly round (the float side rides floatPools).
var ints1Pool sync.Pool

func getInts1(v int) []int {
	if got := ints1Pool.Get(); got != nil {
		s := *got.(*[]int)
		s[0] = v
		return s
	}
	return []int{v}
}

func putInts1(s []int) {
	if cap(s) != 1 {
		return
	}
	s = s[:1]
	ints1Pool.Put(&s)
}

// putFloats returns a wire buffer to its pool. nil (the phantom fast path)
// is a no-op. The caller must not retain the slice afterwards.
func putFloats(s []float64) {
	if s == nil {
		return
	}
	c := poolClass(cap(s))
	if 1<<c != cap(s) {
		c-- // off-class capacity: file under the class it can still serve
	}
	if c < 0 || c > maxPoolClass {
		return
	}
	full := s[0:cap(s)]
	floatPools[c].Put(&full)
}
