package smpi

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/trace"
)

// Executor selects how a run schedules its ranks. Both executors produce
// byte-identical volume reports and bit-identical simulated clocks — the
// results are pure functions of per-rank program order plus FIFO message
// matching, independent of scheduling — so the choice is purely a
// performance/scale tradeoff.
type Executor string

const (
	// ExecAuto picks per run: events for volume-mode (phantom) worlds,
	// goroutines for numeric ones. Volume replays are pure metering
	// bookkeeping, so the single-threaded event loop wins by eliminating
	// P stacks and a condvar handoff per matched receive; numeric runs do
	// real arithmetic per rank, which the goroutine executor spreads
	// across cores.
	ExecAuto Executor = "auto"
	// ExecGoroutines runs one live goroutine per rank, parked on mailbox
	// condvars when blocked — the classic CSP execution.
	ExecGoroutines Executor = "goroutines"
	// ExecEvents runs the discrete-event scheduler (see events.go): ranks
	// are coroutines yielding to a clock-ordered event loop, at most one
	// executing at a time.
	ExecEvents Executor = "events"
)

// ErrUnknownExecutor is wrapped by Exec (and ResolveExecutor) when the
// configured executor names neither a concrete executor nor auto.
var ErrUnknownExecutor = errors.New("smpi: unknown executor")

// Valid reports whether e names a concrete executor or auto (the empty
// string counts as auto).
func (e Executor) Valid() bool {
	switch e {
	case "", ExecAuto, ExecGoroutines, ExecEvents:
		return true
	}
	return false
}

// ResolveExecutor maps an executor choice to a concrete executor for a run
// with the given payload mode. The empty string means auto.
func ResolveExecutor(e Executor, payload bool) (Executor, error) {
	switch e {
	case "", ExecAuto:
		if payload {
			return ExecGoroutines, nil
		}
		return ExecEvents, nil
	case ExecGoroutines, ExecEvents:
		return e, nil
	}
	return "", fmt.Errorf("%w: %q (want %q, %q, or %q)",
		ErrUnknownExecutor, string(e), ExecAuto, ExecGoroutines, ExecEvents)
}

// Config describes one simulated run for Exec. The zero value is not
// runnable (P must be positive unless World is set); every other field has
// a useful zero: volume mode, default α-β machine, auto executor, no
// deadline.
type Config struct {
	// P is the world size. Ignored when World is set.
	P int
	// Payload selects numeric mode (true) or volume mode (false, the
	// default). Ignored when World is set.
	Payload bool
	// Machine sets the α-β machine parameters for the timeline. The zero
	// Machine means "use trace.DefaultMachine()" unless MachineSet is
	// true, because the all-free machine (α = β = 0) is a meaningful
	// configuration, not merely unset. Ignored when World is set.
	Machine trace.Machine
	// MachineSet marks Machine as authoritative even when zero.
	MachineSet bool
	// Topology, when non-nil, replaces the flat Machine cost with a
	// per-pair topology model (internal/topo) on the run's timeline. It
	// applies to caller-supplied Worlds too — the one Config field World
	// does not override — so fault-scenario worlds compose with it.
	Topology trace.Topology
	// Executor picks the scheduling strategy; zero/auto resolves by
	// payload mode (see ExecAuto).
	Executor Executor
	// Workers, for the event executor, is the concurrent-window width:
	// how many of the earliest ready ranks run simultaneously between
	// scheduler barriers (DESIGN.md §12). Values < 1 mean 1 — the serial
	// baton discipline with lock-free mailbox access; values above P are
	// clamped to P. The report is bit-identical at every width. Ignored
	// by the goroutine executor, which always runs all ranks live.
	Workers int
	// Timeout, when positive, bounds the run's wall-clock time: the
	// deadline aborts the world (schedule deadlocks fail instead of
	// hanging) and surfaces as ErrCanceled wrapping
	// context.DeadlineExceeded.
	Timeout time.Duration
	// World, when non-nil, is the caller-configured world to run on
	// (fault injection, post-run mailbox inspection); it overrides P,
	// Payload, Machine, and MachineSet.
	World *World
}

// Exec is the single entrypoint of the runtime: it executes fn on every
// rank of the configured world and returns the run's trace report (volume +
// simulated time, stamped with the resolved executor). The eight historical
// Run* variants are thin wrappers over it.
//
// Error contract: the first rank error — or panic, converted — wins, with
// secondary ErrAborted unwinds filtered out. When ctx is canceled (or the
// Timeout fires) the world is aborted, blocked ranks unwind promptly, and
// the returned error wraps ErrCanceled plus the context's cause; a run that
// completes before cancellation lands is returned as a success. A partial
// report is returned alongside every error. After the ranks unwind —
// normally or not — undelivered pooled wire buffers and emptied queue
// carcasses are returned to their pools, so aborted runs leak nothing.
func Exec(ctx context.Context, cfg Config, fn RankFunc) (*trace.Report, error) {
	w := cfg.World
	if w == nil {
		m := cfg.Machine
		if m.IsZero() && !cfg.MachineSet {
			m = trace.DefaultMachine()
		}
		w = NewWorldMachine(cfg.P, cfg.Payload, m)
	}
	if cfg.Topology != nil {
		w.Trace.SetTopology(cfg.Topology)
	}
	ex, err := ResolveExecutor(cfg.Executor, w.Payload)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, cfg.Timeout,
			fmt.Errorf("smpi: run did not complete within %v (likely schedule deadlock)", cfg.Timeout))
		defer cancel()
	}
	if ctx.Err() != nil {
		return nil, canceledErr(ctx)
	}
	w.executor = ex
	if ex == ExecEvents {
		w.sched = newEventScheduler(w, cfg.Workers)
	}
	stopWatcher := func() {}
	if cancelCh := ctx.Done(); cancelCh != nil {
		// The watcher holds the world open until the run returns, so a
		// cancellation arriving at any point wakes the blocked ranks
		// exactly once and the goroutine never leaks. Runs on a
		// non-cancelable context skip it, keeping the Go runtime's
		// all-goroutines-asleep deadlock detector meaningful for them.
		// The join matters: the watcher reaches the scheduler through
		// w.sched, which must not be released to the pool under it.
		done := make(chan struct{})
		exited := make(chan struct{})
		go func() {
			defer close(exited)
			select {
			case <-cancelCh:
				w.Abort()
			case <-done:
			}
		}()
		stopWatcher = func() {
			close(done)
			<-exited
		}
	}
	var errs []error
	var workers int
	if ex == ExecEvents {
		workers = w.sched.workers
		errs = w.sched.run(fn)
	} else {
		errs = runGoroutines(w, fn)
	}
	stopWatcher()
	if s := w.sched; s != nil {
		// Safe to recycle: run returned (every rank goroutine sent its
		// evDone) and the watcher has been joined.
		w.sched = nil
		s.release()
	}
	w.reclaim()
	rep := w.Trace.Report()
	rep.Executor = string(ex)
	rep.Workers = workers
	runErr := firstRunError(errs)
	if runErr != nil && ctx.Err() != nil {
		// The abort unwound the ranks (surfacing as ErrAborted or as
		// engine errors on half-delivered schedules); the context is the
		// root cause, so it wins.
		return rep, canceledErr(ctx)
	}
	return rep, runErr
}

// runGoroutines is the classic executor: one goroutine per rank, with rank
// panics converted to errors and the first failure aborting the world so
// blocked ranks unwind instead of deadlocking.
func runGoroutines(w *World, fn RankFunc) []error {
	errs := make([]error, w.P)
	var wg sync.WaitGroup
	for r := 0; r < w.P; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					if err, ok := rec.(error); ok && errors.Is(err, ErrAborted) {
						errs[rank] = ErrAborted
					} else {
						errs[rank] = fmt.Errorf("smpi: rank %d panicked: %v\n%s", rank, rec, debug.Stack())
					}
					w.Abort()
					return
				}
				if errs[rank] != nil {
					w.Abort()
				}
			}()
			errs[rank] = fn(WorldComm(w, rank))
		}(r)
	}
	wg.Wait()
	return errs
}

// firstRunError picks the run's error: the first non-ErrAborted rank error
// (the originating failure) wins; a run where every failure is a secondary
// ErrAborted unwind reports that.
func firstRunError(errs []error) error {
	for _, err := range errs {
		if err != nil && !errors.Is(err, ErrAborted) {
			return err
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// reclaim sweeps the world after every rank has unwound: undelivered pooled
// payloads (SendMat wire buffers, MaxLoc reduction pairs stranded by an
// abort) go back to their pools, drained queue carcasses and the mailbox
// free-slot caches are recycled, and the world's RMA window registry entry
// is dropped so the world itself is collectable. Counts land in
// w.reclaimed for the regression tests. The mailbox locks are held against
// a late watcher Abort broadcast.
func (w *World) reclaim() {
	for _, mb := range w.boxes {
		mb.mu.Lock()
		for k, q := range mb.q {
			for i := q.head; i < len(q.buf); i++ {
				m := &q.buf[i]
				if m.pooled {
					putFloats(m.F)
					putInts1(m.I)
					w.reclaimed.bufs++
				}
				*m = Msg{}
			}
			delete(mb.q, k)
			q.buf = q.buf[:0]
			q.head = 0
			queuePool.Put(q)
			w.reclaimed.queues++
		}
		if mb.free != nil {
			queuePool.Put(mb.free)
			mb.free = nil
		}
		mb.mu.Unlock()
	}
	dropWindowRegistry(w)
}
