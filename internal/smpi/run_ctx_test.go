package smpi

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/trace"
)

// TestRunContextCancelInterruptsBlockedRanks proves cancellation is prompt:
// ranks locked in an endless ping-pong (a run that never completes on its
// own) unwind as soon as the context fires.
func TestRunContextCancelInterruptsBlockedRanks(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := RunContext(ctx, 2, false, func(c *Comm) error {
		peer := 1 - c.Rank()
		for {
			if c.Rank() == 0 {
				c.Send(peer, 1, Msg{N: 1})
				c.Recv(peer, 1)
			} else {
				c.Recv(peer, 1)
				c.Send(peer, 1, Msg{N: 1})
			}
		}
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v must also wrap context.Canceled", err)
	}
	if since := time.Since(start); since > 5*time.Second {
		t.Fatalf("cancellation took %v — not prompt", since)
	}
}

// TestRunContextPreCanceled: a context already done never starts the run.
func TestRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	_, err := RunContext(ctx, 2, false, func(c *Comm) error {
		ran = true
		return nil
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if ran {
		t.Fatal("rank function ran under a canceled context")
	}
}

// TestRunContextCompletedRunWins: a run that finishes is a success even if
// the context is canceled immediately afterwards.
func TestRunContextCompletedRunWins(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rep, err := RunContext(ctx, 2, false, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, Msg{N: 8})
		} else {
			c.Recv(0, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalBytes() != 8*trace.BytesPerElement {
		t.Fatalf("bytes = %d", rep.TotalBytes())
	}
}

// TestRunTimeoutDeadlineSurfacesAsCanceled: the timeout runner now aborts
// the world (no leaked goroutines) and reports through the same sentinel.
func TestRunTimeoutDeadlineSurfacesAsCanceled(t *testing.T) {
	_, err := RunTimeout(2, false, 20*time.Millisecond, func(c *Comm) error {
		c.Recv(1-c.Rank(), 1) // both ranks wait forever: schedule deadlock
		return nil
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v must also wrap DeadlineExceeded", err)
	}
}
