// Mailboxes and buffer pools: the allocation-conscious core of the runtime.
//
// Delivery cost at paper scale (P = 1,024 ranks, tens of millions of
// messages) is dominated by three churn sources this file eliminates:
//
//   - map traffic: the queue map is hashed once per put and once per take —
//     the matched-receive wait loop holds the *msgQueue pointer across
//     wakeups instead of re-indexing the map, and a drained key is deleted
//     immediately (empty-queue reclamation), so a long-lived world's maps
//     stay at the size of its in-flight traffic, not its history;
//   - queue storage: emptied msgQueue carcasses (struct + backing array)
//     are recycled through a sync.Pool instead of being re-grown from nil
//     for every (src, comm, tag) stream;
//   - payload storage: SendMat/RecvMat lease wire buffers from size-classed
//     sync.Pools (see pool.go); phantom messages carry no payload at all —
//     the volume-mode fast path enqueues a plain Msg value, allocating
//     nothing in steady state.
//
// Ownership rule: a payload slice handed to Send belongs to the runtime
// until the matching Recv returns it to the receiving rank; only
// SendMat/RecvMat — which pack on send and copy out on receive — recycle
// wire buffers, so raw Send/Recv callers (collectives carrying metadata,
// RecvInts callers that retain the slice) keep ordinary Go ownership.
package smpi

import "sync"

// msgQueue is one (src, comm, tag) FIFO: messages in buf[head:]. The struct
// and its backing array are pooled; see take for the recycle point.
type msgQueue struct {
	buf  []Msg
	head int
}

var queuePool = sync.Pool{New: func() any { return new(msgQueue) }}

type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	q    map[msgKey]*msgQueue
	// waiters counts goroutines blocked in take (at most one in practice:
	// a mailbox belongs to one rank). put only signals when someone waits,
	// so the common deliver-before-receive case never touches the cond.
	waiters int
	// free is a one-slot queue cache in front of queuePool: a mailbox
	// cycles through one hot key at a time, and unlike the shared pool
	// this slot survives GC cycles (allocation-heavy replays collect
	// often enough to wipe sync.Pools mid-run).
	free *msgQueue

	// rank is the owning world rank (a mailbox belongs to exactly one).
	rank int
	// Event-executor wait registration: when the owner is parked in the
	// scheduler awaiting a message, evWaiting is true and evKey names the
	// stream it awaits; the put that matches evKey re-arms the owner. With
	// one worker these fields are written by the owner before yielding and
	// read by the sender after taking the baton — the scheduler's channel
	// handoffs provide the happens-before edges, so no lock is needed.
	// With a concurrent window (workers > 1) the owner and its senders can
	// run simultaneously, so every access goes under mb.mu — the ownership
	// rule is: one mailbox, one owner rank, and a sender touches nothing
	// of the owner's but this mailbox (see events.go and DESIGN.md §12).
	evWaiting bool
	evKey     msgKey
}

func newMailbox(rank int) *mailbox {
	mb := &mailbox{q: make(map[msgKey]*msgQueue), rank: rank}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

// queueLocked returns the FIFO for k, leasing a recycled one if the key is
// new. Caller holds mb.mu — or holds the event scheduler's baton, which
// serializes all mailbox access in that mode.
func (mb *mailbox) queueLocked(k msgKey) *msgQueue {
	q := mb.q[k]
	if q == nil {
		if q = mb.free; q != nil {
			mb.free = nil
		} else {
			q = queuePool.Get().(*msgQueue)
		}
		mb.q[k] = q
	}
	return q
}

// reclaimLocked deletes a drained key and recycles its queue. Caller holds
// mb.mu (or the event baton) and guarantees q is empty.
func (mb *mailbox) reclaimLocked(k msgKey, q *msgQueue) {
	delete(mb.q, k)
	q.buf = q.buf[:0]
	q.head = 0
	if mb.free == nil {
		mb.free = q
	} else {
		queuePool.Put(q)
	}
}

func (mb *mailbox) put(w *World, k msgKey, m Msg) {
	if s := w.sched; s != nil {
		if s.workers > 1 {
			// Concurrent window: the owner (or another sender in the same
			// window) may be touching this mailbox right now.
			mb.mu.Lock()
			q := mb.queueLocked(k)
			q.buf = append(q.buf, m)
			if mb.evWaiting && mb.evKey == k {
				mb.evWaiting = false
				s.makeReady(mb.rank)
			}
			mb.mu.Unlock()
			return
		}
		// Serial event mode: the caller holds the sole baton, so access is
		// exclusive and lock-free. If the owner is parked awaiting exactly
		// this stream, re-arm it on the ready heap (once — further
		// deliveries find evWaiting already cleared).
		q := mb.queueLocked(k)
		q.buf = append(q.buf, m)
		if mb.evWaiting && mb.evKey == k {
			mb.evWaiting = false
			s.makeReady(mb.rank)
		}
		return
	}
	mb.mu.Lock()
	q := mb.queueLocked(k)
	q.buf = append(q.buf, m)
	if mb.waiters > 0 {
		mb.cond.Broadcast()
	}
	mb.mu.Unlock()
}

// take blocks until a message under k is available and pops it. The queue
// pointer is resolved once; the wait loop re-checks only its length. On
// abort the pending take panics with ErrAborted (see World.Abort for why
// the goroutine-mode wake-up broadcast must hold this mutex).
func (mb *mailbox) take(w *World, k msgKey) Msg {
	if s := w.sched; s != nil {
		return mb.takeEvent(w, s, k)
	}
	mb.mu.Lock()
	defer mb.mu.Unlock()
	q := mb.queueLocked(k)
	for q.head >= len(q.buf) {
		if w.aborted.Load() {
			// Don't strand the just-leased empty queue on the dead world.
			mb.reclaimLocked(k, q)
			panic(ErrAborted)
		}
		mb.waiters++
		mb.cond.Wait()
		mb.waiters--
	}
	return mb.popLocked(k, q)
}

// takeEvent is take under the event executor: instead of parking on the
// condvar, the rank registers the awaited key and yields the baton; the
// matching put re-arms it. The abort flag is rechecked before every yield
// so an unwinding world never re-parks a rank. On the abort paths the
// just-leased queue is recycled only if it is still empty — a wake can
// race an abort, and a non-empty queue must stay in the map for the
// post-run reclaim sweep to return its pooled payloads.
func (mb *mailbox) takeEvent(w *World, s *eventScheduler, k msgKey) Msg {
	if s.workers > 1 {
		return mb.takeEventConcurrent(w, s, k)
	}
	q := mb.queueLocked(k)
	for q.head >= len(q.buf) {
		if w.aborted.Load() {
			mb.reclaimLocked(k, q)
			panic(ErrAborted)
		}
		mb.evWaiting = true
		mb.evKey = k
		ok := s.yieldBlocked(mb.rank)
		mb.evWaiting = false
		if !ok {
			if q.head >= len(q.buf) {
				mb.reclaimLocked(k, q)
			}
			panic(ErrAborted)
		}
	}
	return mb.popLocked(k, q)
}

// takeEventConcurrent is takeEvent for a concurrent window: identical
// protocol, but the wait registration and queue access interleave with
// same-window senders, so each step holds mb.mu. The yield itself must
// not: the scheduler may be mid-barrier and a sender of this window could
// need the lock to complete (and thereby to yield) first.
func (mb *mailbox) takeEventConcurrent(w *World, s *eventScheduler, k msgKey) Msg {
	mb.mu.Lock()
	q := mb.queueLocked(k)
	for q.head >= len(q.buf) {
		if w.aborted.Load() {
			mb.reclaimLocked(k, q)
			mb.mu.Unlock()
			panic(ErrAborted)
		}
		mb.evWaiting = true
		mb.evKey = k
		mb.mu.Unlock()
		ok := s.yieldBlocked(mb.rank)
		mb.mu.Lock()
		mb.evWaiting = false
		if !ok {
			if q.head >= len(q.buf) {
				mb.reclaimLocked(k, q)
			}
			mb.mu.Unlock()
			panic(ErrAborted)
		}
	}
	m := mb.popLocked(k, q)
	mb.mu.Unlock()
	return m
}

// popLocked removes the head message, reclaiming the queue if that drained
// it. Caller holds mb.mu (or the event baton) and guarantees q is
// non-empty.
func (mb *mailbox) popLocked(k msgKey, q *msgQueue) Msg {
	m := q.buf[q.head]
	q.buf[q.head] = Msg{} // release payload references to the GC
	q.head++
	if q.head == len(q.buf) {
		mb.reclaimLocked(k, q)
	}
	return m
}
