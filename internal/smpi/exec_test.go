package smpi

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/mat"
	"repro/internal/topo"
	"repro/internal/trace"
)

func TestResolveExecutor(t *testing.T) {
	cases := []struct {
		in      Executor
		payload bool
		want    Executor
	}{
		{"", false, ExecEvents},
		{"", true, ExecGoroutines},
		{ExecAuto, false, ExecEvents},
		{ExecAuto, true, ExecGoroutines},
		{ExecEvents, true, ExecEvents},
		{ExecGoroutines, false, ExecGoroutines},
	}
	for _, c := range cases {
		got, err := ResolveExecutor(c.in, c.payload)
		if err != nil || got != c.want {
			t.Fatalf("ResolveExecutor(%q, %v) = %q, %v; want %q", c.in, c.payload, got, err, c.want)
		}
	}
	if _, err := ResolveExecutor("fibers", false); !errors.Is(err, ErrUnknownExecutor) {
		t.Fatalf("bad name: got %v, want ErrUnknownExecutor", err)
	}
}

func TestExecUnknownExecutor(t *testing.T) {
	_, err := Exec(context.Background(), Config{P: 2, Executor: "bogus"}, func(c *Comm) error { return nil })
	if !errors.Is(err, ErrUnknownExecutor) {
		t.Fatalf("got %v, want ErrUnknownExecutor", err)
	}
}

// parityWorkload is a communication-dense rank body exercising point-to-
// point, butterfly collectives, barriers, and a MaxLoc reduction — the
// full matching surface both executors must agree on.
func parityWorkload(c *Comm) error {
	p, me := c.Size(), c.Rank()
	c.SetPhase("ring")
	for round := 0; round < 5; round++ {
		c.Send((me+1)%p, round, Msg{N: 64 * (me + round + 1)})
		c.Recv((me-1+p)%p, round)
	}
	c.SetPhase("reduce")
	got := c.AllreduceMaxLoc(MaxLoc{Val: float64((me * 7) % p), Loc: me})
	if got.Loc < 0 || got.Loc >= p {
		return fmt.Errorf("bad maxloc %v", got)
	}
	c.Barrier()
	c.SetPhase("shift")
	// Pairwise exchange under the reversal pairing (an involution for every
	// p; the middle rank of an odd world sits out), with receive-before-
	// send ordering on half the ranks so the executor has to park and
	// re-arm waits.
	peer := p - 1 - me
	if peer != me {
		if me < peer {
			c.Send(peer, 100, Msg{N: 256})
			c.Recv(peer, 101)
		} else {
			c.Recv(peer, 100)
			c.Send(peer, 101, Msg{N: 256})
		}
	}
	c.Barrier()
	return nil
}

// reportsEqual compares everything except the provenance stamp.
func reportsEqual(a, b *trace.Report) error {
	if !reflect.DeepEqual(a.Sent, b.Sent) || !reflect.DeepEqual(a.Recv, b.Recv) || !reflect.DeepEqual(a.Msgs, b.Msgs) {
		return fmt.Errorf("per-rank volume differs:\n%v %v %v\n%v %v %v", a.Sent, a.Recv, a.Msgs, b.Sent, b.Recv, b.Msgs)
	}
	if !reflect.DeepEqual(a.ByPhase, b.ByPhase) || !reflect.DeepEqual(a.PhaseMsgs, b.PhaseMsgs) {
		return fmt.Errorf("phase attribution differs: %v vs %v", a.ByPhase, b.ByPhase)
	}
	if !reflect.DeepEqual(a.Time, b.Time) {
		return fmt.Errorf("simulated time differs: makespan %v vs %v (clocks %v vs %v)",
			a.Time.Makespan, b.Time.Makespan, a.Time.Clock, b.Time.Clock)
	}
	return nil
}

// parityWorkerCounts is the concurrent-window sweep the parity suites pin:
// serial, the small fixed widths, and whatever the host's NumCPU is.
func parityWorkerCounts() []int {
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

// TestExecutorParityWorkload pins the core executor-equivalence claim at the
// runtime level: byte-identical volume and bit-identical clocks between the
// goroutine executor and the event executor at every concurrent-window
// width, in both payload modes, across odd and power-of-two world sizes.
func TestExecutorParityWorkload(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 6, 8} {
		for _, payload := range []bool{false, true} {
			base, err := Exec(context.Background(), Config{P: p, Payload: payload, Executor: ExecGoroutines}, parityWorkload)
			if err != nil {
				t.Fatalf("p=%d payload=%v goroutines: %v", p, payload, err)
			}
			if base.Executor != string(ExecGoroutines) || base.Workers != 0 {
				t.Fatalf("goroutine report stamped %q/%d, want %q/0", base.Executor, base.Workers, ExecGoroutines)
			}
			for _, workers := range parityWorkerCounts() {
				rep, err := Exec(context.Background(),
					Config{P: p, Payload: payload, Executor: ExecEvents, Workers: workers}, parityWorkload)
				if err != nil {
					t.Fatalf("p=%d payload=%v events w=%d: %v", p, payload, workers, err)
				}
				if rep.Executor != string(ExecEvents) {
					t.Fatalf("report stamped %q, want %q", rep.Executor, ExecEvents)
				}
				if want := min(workers, p); rep.Workers != want {
					t.Fatalf("p=%d w=%d: report Workers = %d, want %d", p, workers, rep.Workers, want)
				}
				if err := reportsEqual(base, rep); err != nil {
					t.Fatalf("p=%d payload=%v events w=%d: %v", p, payload, workers, err)
				}
			}
		}
	}
}

// TestEventExecutorNumericCorrect: the event executor must move real
// payloads correctly, not just meter them — a numeric SendMat/RecvMat chain
// through several ranks preserves values.
func TestEventExecutorNumericCorrect(t *testing.T) {
	const p = 4
	_, err := Exec(context.Background(), Config{P: p, Payload: true, Executor: ExecEvents}, func(c *Comm) error {
		m := mat.New(2, 2)
		if c.Rank() == 0 {
			m.Set(0, 0, 42)
			m.Set(1, 1, 7)
			c.SendMat(1, 0, m)
			return nil
		}
		c.RecvMat(c.Rank()-1, 0, m)
		if m.At(0, 0) != 42 || m.At(1, 1) != 7 {
			return fmt.Errorf("rank %d: payload corrupted: %v %v", c.Rank(), m.At(0, 0), m.At(1, 1))
		}
		if c.Rank() < p-1 {
			c.SendMat(c.Rank()+1, 0, m)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// abortConfigs enumerates the executor × window-width matrix the abort and
// cancel reclaim tests cover (Workers is ignored by the goroutine executor).
func abortConfigs() []Config {
	return []Config{
		{Executor: ExecGoroutines},
		{Executor: ExecEvents},
		{Executor: ExecEvents, Workers: 4},
	}
}

func abortConfigName(cfg Config) string {
	return fmt.Sprintf("%s/w%d", cfg.Executor, max(cfg.Workers, 1))
}

// TestAbortReclaimsPooledWireBuffers is the pool-reclaim regression test:
// when a run aborts with pooled wire buffers still undelivered (numeric
// SendMat traffic nobody received), the post-run sweep must return them and
// their queue carcasses to the pools — under both executors, serial and
// concurrent-window.
func TestAbortReclaimsPooledWireBuffers(t *testing.T) {
	for _, cfg := range abortConfigs() {
		w := NewWorld(3, true)
		cfg.World = w
		_, err := Exec(context.Background(), cfg, func(c *Comm) error {
			switch c.Rank() {
			case 0:
				m := mat.New(4, 4)
				c.SendMat(2, 1, m) // never received: tag 1 ≠ awaited tag 9
				c.SendMat(2, 2, m)
				return nil
			case 1:
				return fmt.Errorf("injected failure")
			default:
				c.Recv(1, 9) // blocks until the abort unwinds it
				return nil
			}
		})
		name := abortConfigName(cfg)
		if err == nil || errors.Is(err, ErrAborted) {
			t.Fatalf("%s: want the injected failure, got %v", name, err)
		}
		if w.reclaimed.bufs != 2 {
			t.Fatalf("%s: reclaimed %d pooled buffers, want 2", name, w.reclaimed.bufs)
		}
		if w.reclaimed.queues == 0 {
			t.Fatalf("%s: no queue carcasses reclaimed", name)
		}
		for r, mb := range w.boxes {
			if len(mb.q) != 0 {
				t.Fatalf("%s: rank %d mailbox still holds %d keys after reclaim", name, r, len(mb.q))
			}
		}
	}
}

// TestCancelReclaimsPools covers the RunContextWorld-style cancellation
// path: a canceled run must unwind blocked ranks promptly and sweep the
// stranded pooled payloads, under both executors, serial and concurrent.
func TestCancelReclaimsPools(t *testing.T) {
	for _, cfg := range abortConfigs() {
		w := NewWorld(2, true)
		cfg.World = w
		ctx, cancel := context.WithCancel(context.Background())
		_, err := Exec(ctx, cfg, func(c *Comm) error {
			if c.Rank() == 0 {
				m := mat.New(3, 3)
				c.SendMat(1, 99, m) // never received
				cancel()
			}
			c.Recv(1-c.Rank(), 7) // both ranks block until the abort
			return nil
		})
		cancel()
		name := abortConfigName(cfg)
		if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: got %v, want ErrCanceled wrapping context.Canceled", name, err)
		}
		if w.reclaimed.bufs != 1 {
			t.Fatalf("%s: reclaimed %d pooled buffers, want 1", name, w.reclaimed.bufs)
		}
		for r, mb := range w.boxes {
			if len(mb.q) != 0 {
				t.Fatalf("%s: rank %d mailbox still holds %d keys", name, r, len(mb.q))
			}
		}
	}
}

// TestAbortMidConcurrentWindow interrupts a wide concurrent window with
// pooled wire buffers in flight from many simultaneously-running senders:
// ranks 1..P-1 each ship a pooled payload to rank 0 on a tag it never
// receives and then block; rank 0 fails the world from inside the same
// window. Every one of the P-1 stranded buffers must come back through the
// post-run sweep regardless of where in its send/block lifecycle each
// sender was when the abort landed.
func TestAbortMidConcurrentWindow(t *testing.T) {
	const p = 8
	w := NewWorld(p, true)
	_, err := Exec(context.Background(), Config{World: w, Executor: ExecEvents, Workers: p}, func(c *Comm) error {
		if c.Rank() == 0 {
			return fmt.Errorf("injected failure")
		}
		m := mat.New(4, 4)
		c.SendMat(0, 5, m) // tag 5 is never received
		c.Recv(0, 99)      // blocks until the abort unwinds it
		return nil
	})
	if err == nil || errors.Is(err, ErrAborted) {
		t.Fatalf("want the injected failure, got %v", err)
	}
	if w.reclaimed.bufs != p-1 {
		t.Fatalf("reclaimed %d pooled buffers, want %d", w.reclaimed.bufs, p-1)
	}
	for r, mb := range w.boxes {
		if len(mb.q) != 0 {
			t.Fatalf("rank %d mailbox still holds %d keys after reclaim", r, len(mb.q))
		}
	}
}

// TestAbortFaultedTopologyReclaims is TestAbortMidConcurrentWindow on a
// degraded network: the world's timeline runs under a faulted topology
// (hier preset + degraded ingress link + a straggler rank). Fault
// scenarios must compose with cancellation — the abort sweep owes the
// pools the same P-1 stranded wire buffers whatever the topology charged
// the clocks.
func TestAbortFaultedTopologyReclaims(t *testing.T) {
	const p = 8
	spec, err := topo.PresetSpec("hier-contended")
	if err != nil {
		t.Fatal(err)
	}
	tp, err := topo.BuildFaulted(spec, trace.DefaultMachine(), p, topo.FaultPlan{
		Links:      []topo.LinkFault{{FromNode: -1, ToNode: 0, Factor: 16}},
		Stragglers: []topo.Straggler{{Rank: 3, Factor: 8}},
	})
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorld(p, true)
	_, err = Exec(context.Background(), Config{World: w, Topology: tp, Executor: ExecEvents, Workers: p}, func(c *Comm) error {
		if c.Rank() == 0 {
			return fmt.Errorf("injected failure")
		}
		m := mat.New(4, 4)
		c.SendMat(0, 5, m) // tag 5 is never received
		c.Recv(0, 99)      // blocks until the abort unwinds it
		return nil
	})
	if err == nil || errors.Is(err, ErrAborted) {
		t.Fatalf("want the injected failure, got %v", err)
	}
	if w.reclaimed.bufs != p-1 {
		t.Fatalf("reclaimed %d pooled buffers, want %d", w.reclaimed.bufs, p-1)
	}
	for r, mb := range w.boxes {
		if len(mb.q) != 0 {
			t.Fatalf("rank %d mailbox still holds %d keys after reclaim", r, len(mb.q))
		}
	}
	if got := w.Trace.Report().Time.Topology; got != "hier+contention+faults" {
		t.Fatalf("aborted report lost the topology stamp: %q", got)
	}
}

// TestEventExecutorDeadlockSurfacesViaTimeout: an all-ranks-blocked
// schedule deadlock under the event executor must not fail fast — the
// scheduler parks until the deadline aborts the world, exactly like the
// goroutine executor's semantics.
func TestEventExecutorDeadlockSurfacesViaTimeout(t *testing.T) {
	start := time.Now()
	_, err := Exec(context.Background(),
		Config{P: 2, Payload: false, Executor: ExecEvents, Timeout: 100 * time.Millisecond},
		func(c *Comm) error {
			c.Recv(1-c.Rank(), 3) // nobody sends: deadlock
			return nil
		})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("deadlock surfaced after %v, before the deadline", elapsed)
	}
}

// TestEventExecutorDeterminismStress runs several identical event-loop
// simulations concurrently (under -race in CI) and requires bit-identical
// reports: the loops share the wire-buffer pools and the window registry,
// and any cross-world interference or unsynchronized scheduler state would
// show up as a diff or a race report.
func TestEventExecutorDeterminismStress(t *testing.T) {
	const trials, p = 4, 7
	reps := make([]*trace.Report, trials)
	errs := make([]error, trials)
	var wg sync.WaitGroup
	for i := 0; i < trials; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reps[i], errs[i] = Exec(context.Background(), Config{P: p, Executor: ExecEvents}, parityWorkload)
		}(i)
	}
	wg.Wait()
	for i := 0; i < trials; i++ {
		if errs[i] != nil {
			t.Fatalf("trial %d: %v", i, errs[i])
		}
		if i > 0 {
			if err := reportsEqual(reps[0], reps[i]); err != nil {
				t.Fatalf("trial %d diverged: %v", i, err)
			}
		}
	}
}

// TestEventExecutorWorkerDeterminismStress replays the identical world at
// every worker count — serial, the fixed widths, NumCPU, and wider than the
// world (clamped) — several times each, and requires every report to be
// bit-identical to the serial one. Under -race this also proves the
// concurrent window's mailbox locking and wake-list handoffs are sound.
func TestEventExecutorWorkerDeterminismStress(t *testing.T) {
	const p = 9
	base, err := Exec(context.Background(), Config{P: p, Executor: ExecEvents}, parityWorkload)
	if err != nil {
		t.Fatal(err)
	}
	counts := append(parityWorkerCounts(), 3, p, 2*p)
	for _, workers := range counts {
		for trial := 0; trial < 3; trial++ {
			rep, err := Exec(context.Background(),
				Config{P: p, Executor: ExecEvents, Workers: workers}, parityWorkload)
			if err != nil {
				t.Fatalf("w=%d trial %d: %v", workers, trial, err)
			}
			if err := reportsEqual(base, rep); err != nil {
				t.Fatalf("w=%d trial %d diverged: %v", workers, trial, err)
			}
		}
	}
}

// TestExecWorldOverridesScalars pins the Config contract: a caller-built
// World wins over the P/Payload/Machine fields.
func TestExecWorldOverridesScalars(t *testing.T) {
	w := NewWorld(3, false)
	rep, err := Exec(context.Background(), Config{P: 99, Payload: true, World: w}, func(c *Comm) error {
		if c.Size() != 3 || c.Payload() {
			return fmt.Errorf("world not honored: size %d payload %v", c.Size(), c.Payload())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.P != 3 {
		t.Fatalf("report P = %d, want 3", rep.P)
	}
	if rep.Executor != string(ExecEvents) {
		t.Fatalf("volume-mode auto resolved to %q, want events", rep.Executor)
	}
}
