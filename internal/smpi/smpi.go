// Package smpi is a deterministic message-passing runtime that stands in for
// MPI in the paper's experiments (see DESIGN.md §1). Ranks are goroutines;
// messages are delivered through per-rank mailboxes; every delivery crosses
// one metering point on the world's trace.Timeline, attributed to the
// sending rank and to the rank's current phase label, and advances the
// per-rank logical clocks of the α-β simulated-time model (DESIGN.md §7) —
// so collectives, dist.Scatter/Gather, and every engine built on top
// inherit both volume metering and timing for free.
//
// The runtime has two payload modes. In numeric mode messages carry real
// float64 data. In volume mode (phantom payloads) messages carry only their
// element counts — the schedule, the message pattern, and the metered bytes
// are identical by construction, which is what lets the harness replay the
// paper-scale runs (N = 16,384, P = 1,024) cheaply.
package smpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/mat"
	"repro/internal/trace"
)

// World is one simulated machine: P ranks with private memories, a shared
// event timeline (volume + simulated time), and an optional send-fault
// injector used by tests.
type World struct {
	P       int
	Payload bool
	Trace   *trace.Timeline

	boxes   []*mailbox
	aborted atomic.Bool

	// sched is non-nil when the world runs under the discrete-event
	// executor (see events.go): ranks then yield blocked receives to the
	// scheduler instead of parking on mailbox condvars, and at most one
	// rank executes at a time. executor records the resolved choice for
	// the report stamp.
	sched    *eventScheduler
	executor Executor

	// reclaimed counts what the post-run sweep returned to the pools
	// (leased wire buffers of undelivered messages, emptied queue
	// carcasses). Written once after all ranks have unwound; read by the
	// abort-path regression tests.
	reclaimed struct {
		bufs   int
		queues int
	}

	// FailSend, when non-nil, is consulted on every point-to-point delivery;
	// a non-nil error makes the sending rank panic with it (the runner turns
	// rank panics into run errors). Used for failure-injection tests.
	FailSend func(from, to int, bytes int64) error

	// worldMembers is the [0..P) member list every rank's world Comm
	// shares; worldID is its precomputed communicator hash. Before they
	// were shared, each of the P ranks built its own P-element copy —
	// O(P²) memory held for the whole run, the dominant per-rank cost at
	// beyond-paper scales.
	worldMembers []int
	worldID      uint64

	// interned shares large Sub member lists across ranks, keyed by
	// communicator ID (see internMembers). Guarded by commMu.
	commMu   sync.Mutex
	interned map[uint64][]int
}

// NewWorld creates a world with p ranks under the default α-β machine.
// payload=false selects volume mode.
func NewWorld(p int, payload bool) *World {
	return NewWorldMachine(p, payload, trace.DefaultMachine())
}

// NewWorldMachine creates a world whose timeline advances clocks with the
// given α-β machine parameters.
func NewWorldMachine(p int, payload bool, m trace.Machine) *World {
	if p <= 0 {
		panic("smpi: world size must be positive")
	}
	w := &World{P: p, Payload: payload, Trace: trace.NewTimeline(p, m)}
	// Housekeeping traffic is metered but untimed: the paper assumes the
	// input is already distributed (§7.4), so neither the layout scatter
	// nor the verification gather may dominate the simulated makespan.
	w.Trace.ExcludeFromTiming(trace.PhaseLayout, trace.PhaseCollect)
	w.boxes = make([]*mailbox, p)
	for i := range w.boxes {
		w.boxes[i] = newMailbox(i)
	}
	w.worldMembers = make([]int, p)
	for i := range w.worldMembers {
		w.worldMembers[i] = i
	}
	w.worldID = commID("world", w.worldMembers)
	return w
}

// Msg is the wire unit: an optional float64 payload, an optional int payload
// (pivot indices and other metadata, carried in both modes), and N, the
// metered element count (8 bytes each). The unexported fields carry the
// sender's timeline stamp (send-completion clock and phase label); Send
// overwrites them, so callers never need to set them. pooled marks payload
// slices leased from the runtime's pools (SendMat wire buffers, the MaxLoc
// reduction pairs): an aborted run returns those — and only those — to
// their pools when it sweeps undelivered messages, so caller-owned payloads
// handed to raw Send are never aliased into the pool behind the caller.
type Msg struct {
	F []float64
	I []int
	N int

	sendTime  float64
	sendPhase string
	pooled    bool
}

// msgKey identifies one point-to-point stream. The communicator component
// is pre-hashed (commID computes it once at communicator creation), so the
// per-message map hash mixes three scalars — and both put and take hash it
// exactly once per message; the matched-receive wait loop holds the queue
// pointer across wakeups instead of re-indexing the map.
type msgKey struct {
	src  int
	comm uint64
	tag  int
}

// ErrAborted is the panic value raised in ranks blocked on Recv when
// another rank has failed; the runner filters it out in favour of the
// originating error.
var ErrAborted = errors.New("smpi: run aborted by another rank's failure")

// Abort wakes every rank blocked on a receive; their pending takes panic
// with ErrAborted. Called by the runner when any rank fails or the run's
// context fires, so one rank's error cannot deadlock the world. The
// broadcast must hold each mailbox's mutex: a rank between its aborted
// check and cond.Wait holds that mutex, so acquiring it orders the store
// before the rank's recheck — an unlocked broadcast could land in that
// window and be lost, leaving the rank (and the whole run) blocked forever.
// Under the event executor no rank waits on a condvar; the abort instead
// wakes the scheduler (which may be idling on an all-ranks-blocked
// schedule deadlock) so it unwinds every parked rank.
func (w *World) Abort() {
	w.aborted.Store(true)
	if s := w.sched; s != nil {
		s.signalAbort()
	}
	for _, mb := range w.boxes {
		mb.mu.Lock()
		mb.cond.Broadcast()
		mb.mu.Unlock()
	}
}

// Comm is one rank's handle on a communicator (a subset of world ranks).
// Ranks within the communicator are indexed 0..Size()-1 in member order.
// A Comm value belongs to exactly one rank (one goroutine).
type Comm struct {
	w       *World
	id      uint64
	members []int // world ranks
	me      int   // my index in members
	phase   *string
	opseq   int // collective sequence number, salts internal tags
}

// WorldComm returns rank r's handle on the all-ranks communicator. All
// ranks share the world's one member list and precomputed ID; Comm never
// mutates its members, so sharing is safe.
func WorldComm(w *World, r int) *Comm {
	ph := "init"
	return &Comm{w: w, id: w.worldID, members: w.worldMembers, me: r, phase: &ph}
}

// commID hashes a communicator's identity (name + member list) with FNV-64a
// over the raw bytes. The value is purely internal message-routing salt —
// it never appears in reports — but it must be a deterministic function of
// (name, members) so every member rank derives the same stream keys.
func commID(name string, members []int) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	h ^= 0xff // separator: ("ab", [1]) must not collide with ("a", [0x62...])
	h *= prime64
	for _, m := range members {
		v := uint64(m)
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	return h
}

// internMembersMin is the member-count threshold above which Sub shares one
// copy of the member list across all ranks of the communicator. Big
// communicators (the world-sized "active" comm every engine builds) would
// otherwise cost O(P²) memory — one P-element copy per rank. Small lists
// (row/column/per-tile comms, O(√P) members) stay private: they are cheap,
// and per-tile communicator names are transient, so interning them would
// grow the world's intern table with entries nobody reuses.
const internMembersMin = 256

// Sub derives a named communicator from the given member list (world ranks,
// order defines sub-ranks). The calling rank must be a member. Creation is
// purely local: grids are deterministic, so no coordination is needed.
func (c *Comm) Sub(name string, worldRanks []int) *Comm {
	me := -1
	for i, r := range worldRanks {
		if r == c.WorldRank() {
			me = i
			break
		}
	}
	if me < 0 {
		panic(fmt.Sprintf("smpi: rank %d not in sub-communicator %q %v", c.WorldRank(), name, worldRanks))
	}
	id := commID(name, worldRanks)
	return &Comm{
		w:       c.w,
		id:      id,
		members: c.w.internMembers(id, worldRanks),
		me:      me,
		phase:   c.phase,
	}
}

// internMembers returns the member slice to store on a new Comm: an
// immutable shared copy for large lists (deduplicated across ranks by
// communicator ID), a private copy otherwise. Never aliases the caller's
// slice — grid helpers rebuild theirs per call.
func (w *World) internMembers(id uint64, worldRanks []int) []int {
	if len(worldRanks) < internMembersMin {
		return append([]int(nil), worldRanks...)
	}
	w.commMu.Lock()
	defer w.commMu.Unlock()
	if m, ok := w.interned[id]; ok && len(m) == len(worldRanks) {
		return m
	}
	m := append([]int(nil), worldRanks...)
	if w.interned == nil {
		w.interned = make(map[uint64][]int)
	}
	w.interned[id] = m
	return m
}

// Rank returns this rank's index within the communicator.
func (c *Comm) Rank() int { return c.me }

// Size returns the communicator size.
func (c *Comm) Size() int { return len(c.members) }

// WorldRank returns this rank's index in the world.
func (c *Comm) WorldRank() int { return c.members[c.me] }

// Payload reports whether this world carries numeric payloads.
func (c *Comm) Payload() bool { return c.w.Payload }

// SetPhase labels subsequent traffic from this rank (shared across all Comms
// derived from the same world rank).
func (c *Comm) SetPhase(phase string) { *c.phase = phase }

// Phase returns the current phase label.
func (c *Comm) Phase() string { return *c.phase }

// Send delivers msg to communicator rank `to` under `tag`. Zero-copy is
// never assumed: callers pass freshly packed slices. The send is metered on
// the world timeline (bytes, sender clock += α + β·bytes) and the message
// carries the sender's post-injection clock for Recv to match against.
func (c *Comm) Send(to, tag int, msg Msg) {
	if to < 0 || to >= len(c.members) {
		panic(fmt.Sprintf("smpi: Send to rank %d of %d", to, len(c.members)))
	}
	src, dst := c.WorldRank(), c.members[to]
	bytes := int64(msg.N) * trace.BytesPerElement
	if f := c.w.FailSend; f != nil {
		if err := f(src, dst, bytes); err != nil {
			panic(err)
		}
	}
	if dst != src { // self-sends are memory moves, not network traffic
		msg.sendPhase = *c.phase
		msg.sendTime = c.w.Trace.RecordSend(src, dst, bytes, msg.sendPhase)
	}
	c.w.boxes[dst].put(c.w, msgKey{src: src, comm: c.id, tag: tag}, msg)
}

// Recv blocks until a message from communicator rank `from` under `tag`
// arrives and returns it. Matching completes the delivery on the timeline:
// the receiver's clock jumps to max(local, sender) — wait time — and then
// advances by α + β·bytes.
func (c *Comm) Recv(from, tag int) Msg {
	if from < 0 || from >= len(c.members) {
		panic(fmt.Sprintf("smpi: Recv from rank %d of %d", from, len(c.members)))
	}
	src, me := c.members[from], c.WorldRank()
	msg := c.w.boxes[me].take(c.w, msgKey{src: src, comm: c.id, tag: tag})
	if src != me { // self-receives are memory moves, untimed
		c.w.Trace.RecordRecv(src, me, int64(msg.N)*trace.BytesPerElement, msg.sendPhase, msg.sendTime)
	}
	return msg
}

// SendMat sends a matrix (payload in numeric mode, count-only otherwise).
// Phantom matrices take a zero-allocation fast path: the enqueued Msg is a
// plain value carrying only the metered element count. Numeric payloads are
// packed into a pooled wire buffer owned by the runtime until the matching
// RecvMat copies it out and recycles it.
func (c *Comm) SendMat(to, tag int, m *mat.Matrix) {
	if m.Phantom() {
		c.Send(to, tag, Msg{N: m.Len()})
		return
	}
	c.Send(to, tag, Msg{F: m.PackInto(getFloats(m.Len())), N: m.Len(), pooled: true})
}

// RecvMat receives into dst (shape must match the metered count) and
// returns the wire buffer to the runtime's pool — the payload is fully
// copied into dst, so no reference survives the call.
func (c *Comm) RecvMat(from, tag int, dst *mat.Matrix) {
	msg := c.Recv(from, tag)
	if msg.N != dst.Len() {
		panic(fmt.Sprintf("smpi: RecvMat expected %d elements, got %d", dst.Len(), msg.N))
	}
	dst.Unpack(msg.F)
	putFloats(msg.F)
}

// SendInts sends integer metadata (metered at 8 bytes per value).
func (c *Comm) SendInts(to, tag int, ids []int) {
	c.Send(to, tag, Msg{I: append([]int(nil), ids...), N: len(ids)})
}

// RecvInts receives integer metadata.
func (c *Comm) RecvInts(from, tag int) []int {
	return c.Recv(from, tag).I
}

const (
	// Tag space layout: caller point-to-point tags must be < tagCollBase.
	tagCollBase = 1 << 30
)

func (c *Comm) nextCollTag() int {
	c.opseq++
	return tagCollBase + c.opseq
}
