// The discrete-event executor: ranks advance in clock-ordered windows —
// one rank at a time when workers == 1, a concurrent batch of the W
// earliest ready ranks when workers > 1 (see DESIGN.md §11–§12).
//
// The goroutine executor gives every rank a live goroutine parked on a
// mailbox condvar; at P = 1024 that is a thousand stacks and a kernel-level
// scheduler handoff per matched receive, and beyond-paper scales
// (P ≥ 4096) thrash. The event executor keeps the rank bodies exactly as
// written — ordinary imperative RankFuncs — but turns the goroutines into
// coroutines: a baton-passing discipline guarantees at most `workers` ranks
// execute at any instant, and control moves by explicit yields.
//
//   - A rank runs until its Recv blocks on an empty queue. It then yields:
//     it registers the key it awaits on its mailbox, sends evBlocked to the
//     scheduler, and parks on its private resume channel.
//   - The scheduler pops the ready ranks with the smallest (logical clock,
//     rank) pairs from a binary min-heap — conservative discrete-event
//     scheduling: always advance the ranks whose simulated present is
//     earliest — hands each a baton, and collects exactly one yield event
//     per resumed rank from the shared event channel before opening the
//     next window (the window barrier).
//   - A send into a mailbox whose owner is parked awaiting that exact key
//     re-arms the owner: directly onto the ready heap when the sender is
//     the sole baton holder (workers == 1), or onto a mutex-guarded wake
//     list merged into the heap at the window barrier (workers > 1) —
//     while ranks run concurrently, nothing but the wake list and the
//     mailboxes is shared. Sends never block, so a sender keeps its baton.
//
// With workers == 1 only the baton holder touches world state, so mailbox
// queue access needs no mutex in event mode and every handoff crosses a
// channel — the channel's happens-before edge is what makes the lock-free
// access sound (and race-detector clean). With workers > 1 the ranks of a
// window run truly concurrently and mailbox access takes the per-mailbox
// mutex (see mailbox.go); the window barrier's channel receives give the
// scheduler a happens-before edge over everything the window's ranks did.
// Determinism needs no scheduling argument at all: per-rank clocks and
// volume are pure functions of each rank's program order plus FIFO
// per-(src, comm, tag) matching, identical under any executor and any
// worker count — the clock-ordered heap is a performance policy (it bounds
// mailbox occupancy by draining the causally-earliest ranks first), not a
// correctness requirement.
//
// A window resume may be spurious: a rank woken by a put while it was
// being resumed anyway consumes the message during its window, parks on a
// later key, and its stale wake entry resumes it once more with nothing
// matched. The rank rechecks its queue, finds it empty, and re-parks — a
// wasted handoff, never a wrong result. Entries for ranks that are not
// parked (still running — impossible between windows — or done) are
// dropped at pop time.
//
// An empty ready heap with live ranks is a schedule deadlock. The scheduler
// does not fail fast: it parks on abortCh until World.Abort fires (from a
// run timeout, a context cancellation, or a failing rank), matching the
// goroutine executor's semantics, where deadlock is detected by deadline.
// The abort unwind then resumes every parked rank with a false baton, which
// the blocked take turns into an ErrAborted panic.
//
// Scheduler state (baton channels, rank states, heap backing) is pooled
// across runs: a sweep replays thousands of worlds, and P resume channels
// per world was a measurable slice of the per-run allocation bill.
package smpi

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
)

type eventScheduler struct {
	w *World
	// workers is the window width: how many ready ranks run concurrently
	// between barriers. 1 (the default) is the serial baton discipline
	// with zero locking on the mailbox fast path.
	workers int
	states  []rankState

	// events carries yields from running ranks to the scheduler;
	// unbuffered, so a yield is also a baton handoff.
	events chan schedEvent

	// ready is a hand-rolled binary min-heap of (clock, rank) pairs —
	// container/heap would box every push through an interface, and the
	// heap churns once per blocked receive. Only the scheduler (or, with
	// workers == 1, the sole baton holder) touches it, so it is unlocked.
	ready []readyItem

	// wakes collects ranks re-armed by puts inside a concurrent window
	// (workers > 1); the scheduler merges it into the heap at the window
	// barrier, when no rank runs. Guarded by wakeMu, the only lock ranks
	// of the same window contend on outside their mailboxes.
	wakeMu sync.Mutex
	wakes  []int

	abortCh   chan struct{}
	abortOnce sync.Once
}

type rankState struct {
	// resume is the rank's private baton: true = run, false = the world
	// aborted while you were parked, unwind now.
	resume chan bool
	done   bool
	// parked is the scheduler's book: true while the rank waits on its
	// resume channel. A heap entry for a non-parked rank is stale (the
	// rank was resumed by the window that was open when its wake landed)
	// and is dropped at pop time.
	parked bool
}

type schedEvent struct {
	rank int
	kind eventKind
	err  error // evDone only
}

type eventKind uint8

const (
	evBlocked eventKind = iota // rank parked awaiting a mailbox key
	evDone                     // rank returned (err) or unwound (ErrAborted)
)

type readyItem struct {
	clock float64
	rank  int
}

// schedPool recycles scheduler state (rank states with their baton
// channels, the heap and wake backings, the event channel) across runs.
var schedPool = sync.Pool{New: func() any { return new(eventScheduler) }}

func newEventScheduler(w *World, workers int) *eventScheduler {
	if workers < 1 {
		workers = 1
	}
	if workers > w.P {
		workers = w.P
	}
	s := schedPool.Get().(*eventScheduler)
	s.w = w
	s.workers = workers
	if cap(s.states) >= w.P {
		s.states = s.states[:w.P]
	} else {
		old := s.states[:cap(s.states)]
		s.states = make([]rankState, w.P)
		copy(s.states, old) // keep already-made baton channels
	}
	for r := range s.states {
		if s.states[r].resume == nil {
			s.states[r].resume = make(chan bool)
		}
		s.states[r].done = false
		// Every rank goroutine parks for its first baton immediately.
		s.states[r].parked = true
	}
	if s.events == nil {
		s.events = make(chan schedEvent)
	}
	if cap(s.ready) < w.P {
		s.ready = make([]readyItem, 0, w.P)
	}
	s.ready = s.ready[:0]
	s.wakes = s.wakes[:0]
	// A fresh abort latch per run; the rest of the state is reusable
	// because run() returns only after every rank goroutine has exited.
	s.abortCh = make(chan struct{})
	s.abortOnce = sync.Once{}
	return s
}

// release returns the scheduler's state to the pool. The caller must
// guarantee no goroutine can still reach s — in Exec that means the run
// has returned (all rank goroutines sent their evDone) and the context
// watcher has been joined (it calls signalAbort through w.sched).
func (s *eventScheduler) release() {
	s.w = nil
	schedPool.Put(s)
}

// signalAbort wakes a scheduler parked on an all-ranks-blocked deadlock.
// Safe to call from any goroutine, any number of times.
func (s *eventScheduler) signalAbort() {
	s.abortOnce.Do(func() { close(s.abortCh) })
}

// run executes fn on every rank under the window discipline and returns the
// per-rank errors (ErrAborted for ranks unwound by an abort). It returns
// only after every rank goroutine has finished.
func (s *eventScheduler) run(fn RankFunc) []error {
	errs := make([]error, s.w.P)
	for r := 0; r < s.w.P; r++ {
		go s.rankMain(r, fn)
	}
	// All clocks start at zero, so the initial heap order is rank order.
	for r := 0; r < s.w.P; r++ {
		s.push(readyItem{clock: 0, rank: r})
	}
	live := s.w.P
	for live > 0 {
		if s.w.aborted.Load() {
			// Unwind: hand every parked rank a false baton, sequentially.
			// Between windows every live rank is parked. Blocked takes
			// panic ErrAborted without yielding again (take rechecks the
			// abort flag before every yield), so each resume is answered
			// by that rank's evDone.
			for r := range s.states {
				if s.states[r].done {
					continue
				}
				s.states[r].resume <- false
				ev := <-s.events
				s.states[ev.rank].done = true
				errs[ev.rank] = ev.err
				live--
			}
			continue // live is now 0
		}
		if len(s.ready) == 0 {
			// Schedule deadlock: every live rank awaits a message nobody
			// can send. Park until an abort (run timeout, context
			// cancellation) resolves it — deadline detection is the
			// caller's policy, exactly as under the goroutine executor.
			<-s.abortCh
			continue
		}
		// Open a window: resume up to `workers` earliest parked ranks.
		running := 0
		for running < s.workers && len(s.ready) > 0 {
			next := s.pop()
			st := &s.states[next.rank]
			if st.done || !st.parked {
				continue // stale entry
			}
			st.parked = false
			st.resume <- true
			running++
		}
		// Barrier: exactly one yield event per resumed rank.
		for i := 0; i < running; i++ {
			ev := <-s.events
			if ev.kind == evDone {
				s.states[ev.rank].done = true
				errs[ev.rank] = ev.err
				live--
				if ev.err != nil && !errors.Is(ev.err, ErrAborted) {
					s.w.Abort()
				}
				continue
			}
			// evBlocked: the rank registered its awaited key on its
			// mailbox before yielding; a matching put re-arms it.
			s.states[ev.rank].parked = true
		}
		s.mergeWakes()
	}
	return errs
}

// mergeWakes moves the wake list into the ready heap. Called only at the
// window barrier, when no rank runs, so reading a woken rank's clock (its
// own trace shard) is stable; the lock is still taken because the race
// detector cannot see the barrier.
func (s *eventScheduler) mergeWakes() {
	if s.workers == 1 {
		return // puts push directly; the wake list is never used
	}
	s.wakeMu.Lock()
	for _, r := range s.wakes {
		s.push(readyItem{clock: s.w.Trace.Clock(r), rank: r})
	}
	s.wakes = s.wakes[:0]
	s.wakeMu.Unlock()
}

// rankMain is the body of one rank coroutine: park for the first baton,
// run fn with the same panic conversion as the goroutine executor, report
// evDone. A false first baton means the world aborted before this rank
// ever ran.
func (s *eventScheduler) rankMain(rank int, fn RankFunc) {
	if !<-s.states[rank].resume {
		s.events <- schedEvent{rank: rank, kind: evDone, err: ErrAborted}
		return
	}
	var err error
	func() {
		defer func() {
			if rec := recover(); rec != nil {
				if e, ok := rec.(error); ok && errors.Is(e, ErrAborted) {
					err = ErrAborted
				} else {
					err = fmt.Errorf("smpi: rank %d panicked: %v\n%s", rank, rec, debug.Stack())
				}
			}
		}()
		err = fn(WorldComm(s.w, rank))
	}()
	s.events <- schedEvent{rank: rank, kind: evDone, err: err}
}

// yieldBlocked hands the baton back to the scheduler and parks until the
// rank is resumed. Returns the baton value: false means the world aborted
// while parked and the caller must unwind.
func (s *eventScheduler) yieldBlocked(rank int) bool {
	s.events <- schedEvent{rank: rank, kind: evBlocked}
	return <-s.states[rank].resume
}

// makeReady re-arms a parked rank whose awaited key just matched. With
// workers == 1 the caller is the sole baton holder and pushes straight
// onto the heap at the rank's current logical clock. With workers > 1 the
// caller is one of several concurrently running ranks, so the wake goes to
// the mutex-guarded wake list; the scheduler merges it at the barrier.
func (s *eventScheduler) makeReady(rank int) {
	if s.workers > 1 {
		s.wakeMu.Lock()
		s.wakes = append(s.wakes, rank)
		s.wakeMu.Unlock()
		return
	}
	s.push(readyItem{clock: s.w.Trace.Clock(rank), rank: rank})
}

func readyLess(a, b readyItem) bool {
	if a.clock != b.clock {
		return a.clock < b.clock
	}
	return a.rank < b.rank
}

func (s *eventScheduler) push(it readyItem) {
	s.ready = append(s.ready, it)
	i := len(s.ready) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !readyLess(s.ready[i], s.ready[parent]) {
			break
		}
		s.ready[i], s.ready[parent] = s.ready[parent], s.ready[i]
		i = parent
	}
}

func (s *eventScheduler) pop() readyItem {
	top := s.ready[0]
	last := len(s.ready) - 1
	s.ready[0] = s.ready[last]
	s.ready = s.ready[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < len(s.ready) && readyLess(s.ready[l], s.ready[least]) {
			least = l
		}
		if r < len(s.ready) && readyLess(s.ready[r], s.ready[least]) {
			least = r
		}
		if least == i {
			return top
		}
		s.ready[i], s.ready[least] = s.ready[least], s.ready[i]
		i = least
	}
}
