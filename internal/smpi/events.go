// The discrete-event executor: one runnable rank at a time, scheduled by
// logical clock (see DESIGN.md §11).
//
// The goroutine executor gives every rank a live goroutine parked on a
// mailbox condvar; at P = 1024 that is a thousand stacks and a kernel-level
// scheduler handoff per matched receive, and beyond-paper scales
// (P ≥ 4096) thrash. The event executor keeps the rank bodies exactly as
// written — ordinary imperative RankFuncs — but turns the goroutines into
// coroutines: a baton-passing discipline guarantees at most one rank
// executes at any instant, and control moves by explicit yields.
//
//   - A rank runs until its Recv blocks on an empty queue. It then yields:
//     it registers the key it awaits on its mailbox, sends evBlocked to the
//     scheduler, and parks on its private resume channel.
//   - The scheduler pops the ready rank with the smallest (logical clock,
//     rank) pair from a binary min-heap — conservative discrete-event
//     scheduling: always advance the rank whose simulated present is
//     earliest — hands it the baton, and parks on the shared event channel
//     until the rank yields again or finishes (evDone).
//   - A send into a mailbox whose owner is parked awaiting that exact key
//     pushes the owner back onto the ready heap. Sends never block, so the
//     sender keeps the baton.
//
// Because only the baton holder touches world state, mailbox queue access
// needs no mutex in event mode, and every handoff crosses a channel — the
// channel's happens-before edge is what makes the lock-free access sound
// (and race-detector clean). Determinism needs no scheduling argument at
// all: per-rank clocks and volume are pure functions of each rank's program
// order plus FIFO per-(src, comm, tag) matching, identical under any
// executor — the clock-ordered heap is a performance policy (it bounds
// mailbox occupancy by draining the causally-earliest rank first), not a
// correctness requirement.
//
// An empty ready heap with live ranks is a schedule deadlock. The scheduler
// does not fail fast: it parks on abortCh until World.Abort fires (from a
// run timeout, a context cancellation, or a failing rank), matching the
// goroutine executor's semantics, where deadlock is detected by deadline.
// The abort unwind then resumes every parked rank with a false baton, which
// the blocked take turns into an ErrAborted panic.
package smpi

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
)

type eventScheduler struct {
	w      *World
	states []rankState

	// events carries yields from the running rank to the scheduler;
	// unbuffered, so a yield is also the baton handoff.
	events chan schedEvent

	// ready is a hand-rolled binary min-heap of (clock, rank) pairs —
	// container/heap would box every push through an interface, and the
	// heap churns once per blocked receive. Only the baton holder (or the
	// scheduler while no rank runs) touches it, so it is unlocked.
	ready []readyItem

	abortCh   chan struct{}
	abortOnce sync.Once
}

type rankState struct {
	// resume is the rank's private baton: true = run, false = the world
	// aborted while you were parked, unwind now.
	resume chan bool
	done   bool
}

type schedEvent struct {
	rank int
	kind eventKind
	err  error // evDone only
}

type eventKind uint8

const (
	evBlocked eventKind = iota // rank parked awaiting a mailbox key
	evDone                     // rank returned (err) or unwound (ErrAborted)
)

type readyItem struct {
	clock float64
	rank  int
}

func newEventScheduler(w *World) *eventScheduler {
	s := &eventScheduler{
		w:       w,
		states:  make([]rankState, w.P),
		events:  make(chan schedEvent),
		ready:   make([]readyItem, 0, w.P),
		abortCh: make(chan struct{}),
	}
	for r := range s.states {
		s.states[r].resume = make(chan bool)
	}
	return s
}

// signalAbort wakes a scheduler parked on an all-ranks-blocked deadlock.
// Safe to call from any goroutine, any number of times.
func (s *eventScheduler) signalAbort() {
	s.abortOnce.Do(func() { close(s.abortCh) })
}

// run executes fn on every rank under the baton discipline and returns the
// per-rank errors (ErrAborted for ranks unwound by an abort). It returns
// only after every rank goroutine has finished.
func (s *eventScheduler) run(fn RankFunc) []error {
	errs := make([]error, s.w.P)
	for r := 0; r < s.w.P; r++ {
		go s.rankMain(r, fn)
	}
	// All clocks start at zero, so the initial heap order is rank order.
	for r := 0; r < s.w.P; r++ {
		s.push(readyItem{clock: 0, rank: r})
	}
	live := s.w.P
	for live > 0 {
		if s.w.aborted.Load() {
			// Unwind: hand every parked rank a false baton, sequentially.
			// Blocked takes panic ErrAborted without yielding again (take
			// rechecks the abort flag before every yield), so each resume
			// is answered by that rank's evDone.
			for r := range s.states {
				if s.states[r].done {
					continue
				}
				s.states[r].resume <- false
				ev := <-s.events
				s.states[ev.rank].done = true
				errs[ev.rank] = ev.err
				live--
			}
			continue // live is now 0
		}
		if len(s.ready) == 0 {
			// Schedule deadlock: every live rank awaits a message nobody
			// can send. Park until an abort (run timeout, context
			// cancellation) resolves it — deadline detection is the
			// caller's policy, exactly as under the goroutine executor.
			<-s.abortCh
			continue
		}
		next := s.pop()
		if s.states[next.rank].done {
			continue
		}
		s.states[next.rank].resume <- true
		ev := <-s.events
		if ev.kind == evDone {
			s.states[ev.rank].done = true
			errs[ev.rank] = ev.err
			live--
			if ev.err != nil && !errors.Is(ev.err, ErrAborted) {
				s.w.Abort()
			}
		}
		// evBlocked: the rank registered its awaited key on its mailbox
		// before yielding; a matching put will push it back onto the heap.
	}
	return errs
}

// rankMain is the body of one rank coroutine: park for the first baton,
// run fn with the same panic conversion as the goroutine executor, report
// evDone. A false first baton means the world aborted before this rank
// ever ran.
func (s *eventScheduler) rankMain(rank int, fn RankFunc) {
	if !<-s.states[rank].resume {
		s.events <- schedEvent{rank: rank, kind: evDone, err: ErrAborted}
		return
	}
	var err error
	func() {
		defer func() {
			if rec := recover(); rec != nil {
				if e, ok := rec.(error); ok && errors.Is(e, ErrAborted) {
					err = ErrAborted
				} else {
					err = fmt.Errorf("smpi: rank %d panicked: %v\n%s", rank, rec, debug.Stack())
				}
			}
		}()
		err = fn(WorldComm(s.w, rank))
	}()
	s.events <- schedEvent{rank: rank, kind: evDone, err: err}
}

// yieldBlocked hands the baton back to the scheduler and parks until the
// rank is resumed. Returns the baton value: false means the world aborted
// while parked and the caller must unwind.
func (s *eventScheduler) yieldBlocked(rank int) bool {
	s.events <- schedEvent{rank: rank, kind: evBlocked}
	return <-s.states[rank].resume
}

// makeReady pushes a parked rank onto the ready heap at its current logical
// clock. Called by the sender (the baton holder) when its put matches the
// key the mailbox owner is awaiting, so access is serialized.
func (s *eventScheduler) makeReady(rank int) {
	s.push(readyItem{clock: s.w.Trace.Clock(rank), rank: rank})
}

func readyLess(a, b readyItem) bool {
	if a.clock != b.clock {
		return a.clock < b.clock
	}
	return a.rank < b.rank
}

func (s *eventScheduler) push(it readyItem) {
	s.ready = append(s.ready, it)
	i := len(s.ready) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !readyLess(s.ready[i], s.ready[parent]) {
			break
		}
		s.ready[i], s.ready[parent] = s.ready[parent], s.ready[i]
		i = parent
	}
}

func (s *eventScheduler) pop() readyItem {
	top := s.ready[0]
	last := len(s.ready) - 1
	s.ready[0] = s.ready[last]
	s.ready = s.ready[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < len(s.ready) && readyLess(s.ready[l], s.ready[least]) {
			least = l
		}
		if r < len(s.ready) && readyLess(s.ready[r], s.ready[least]) {
			least = r
		}
		if least == i {
			return top
		}
		s.ready[i], s.ready[least] = s.ready[least], s.ready[i]
		i = least
	}
}
