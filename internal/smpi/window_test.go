package smpi

import (
	"fmt"
	"testing"

	"repro/internal/mat"
)

func TestWindowPutGet(t *testing.T) {
	run(t, 4, true, func(c *Comm) error {
		local := mat.New(4, 4)
		local.Set(0, 0, float64(c.Rank()))
		win := NewWindow(c, 1, local)
		defer win.Free()
		win.Fence()
		// Every rank reads its right neighbour's corner.
		buf := mat.New(1, 1)
		win.Get((c.Rank()+1)%4, 0, 0, buf)
		if buf.At(0, 0) != float64((c.Rank()+1)%4) {
			return fmt.Errorf("rank %d got %v", c.Rank(), buf.At(0, 0))
		}
		win.Fence()
		// Every rank puts its id into its left neighbour's (1,1).
		src := mat.New(1, 1)
		src.Set(0, 0, float64(c.Rank()))
		win.Put((c.Rank()+3)%4, 1, 1, src)
		win.Fence()
		if local.At(1, 1) != float64((c.Rank()+1)%4) {
			return fmt.Errorf("rank %d local (1,1)=%v", c.Rank(), local.At(1, 1))
		}
		return nil
	})
}

func TestWindowAccumulate(t *testing.T) {
	run(t, 4, true, func(c *Comm) error {
		local := mat.New(2, 2)
		win := NewWindow(c, 2, local)
		defer win.Free()
		win.Fence()
		// All ranks accumulate 1 into rank 0's (0,0).
		one := mat.New(1, 1)
		one.Set(0, 0, 1)
		win.Accumulate(0, 0, 0, one)
		win.Fence()
		if c.Rank() == 0 && local.At(0, 0) != 4 {
			return fmt.Errorf("accumulated %v want 4", local.At(0, 0))
		}
		return nil
	})
}

func TestWindowVolumeAccounting(t *testing.T) {
	rep := run(t, 2, true, func(c *Comm) error {
		local := mat.New(4, 4)
		win := NewWindow(c, 3, local)
		defer win.Free()
		win.Fence()
		if c.Rank() == 0 {
			// Get 2x2 from rank 1: 4 elements sent BY rank 1.
			win.Get(1, 0, 0, mat.New(2, 2))
			// Put 1x4 to rank 1: 4 elements sent by rank 0.
			win.Put(1, 2, 0, mat.New(1, 4))
		}
		win.Fence()
		return nil
	})
	if rep.Sent[0] != 4*8 || rep.Sent[1] != 4*8 {
		t.Fatalf("sent %v, want 32/32", rep.Sent)
	}
}

func TestWindowLocalAccessNotMetered(t *testing.T) {
	rep := run(t, 2, true, func(c *Comm) error {
		win := NewWindow(c, 4, mat.New(2, 2))
		defer win.Free()
		win.Fence()
		win.Get(c.Rank(), 0, 0, mat.New(2, 2)) // self access
		win.Fence()
		return nil
	})
	if rep.TotalBytes() != 0 {
		t.Fatalf("self RMA metered: %d", rep.TotalBytes())
	}
}

func TestWindowDuplicateIDPanics(t *testing.T) {
	_, err := Run(1, true, func(c *Comm) error {
		NewWindow(c, 5, mat.New(1, 1))
		NewWindow(c, 5, mat.New(1, 1)) // same id, same rank: panic
		return nil
	})
	if err == nil {
		t.Fatal("expected duplicate-window panic")
	}
}
