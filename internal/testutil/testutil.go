// Package testutil holds verification helpers shared by the distributed LU
// test suites: residual checks against the definition ‖A[perm,:] − L·U‖ and
// reference sequential factorizations.
package testutil

import (
	"fmt"

	"repro/internal/blas"
	"repro/internal/lapack"
	"repro/internal/mat"
)

// ResidualLU computes ‖A[perm,:] − L·U‖∞ / (‖A‖∞·N) for an in-place LU
// factor of P·A with a LAPACK-style ipiv.
func ResidualLU(orig, lu *mat.Matrix, ipiv []int) float64 {
	n := orig.Rows
	l, u := lapack.SplitLU(lu)
	prod := mat.New(n, n)
	blas.Gemm(1, l, u, 0, prod)
	perm := lapack.PermFromIpiv(ipiv, n)
	pa := mat.PermuteRows(orig, perm)
	return mat.MaxAbsDiff(pa, prod) / (mat.NormInf(orig)*float64(n) + 1)
}

// ResidualLUPerm is ResidualLU for algorithms that report an explicit row
// permutation (perm[i] = original row index at position i) instead of
// sequential interchanges — COnfLUX's row masking produces this form.
func ResidualLUPerm(orig, lu *mat.Matrix, perm []int) float64 {
	n := orig.Rows
	l, u := lapack.SplitLU(lu)
	prod := mat.New(n, n)
	blas.Gemm(1, l, u, 0, prod)
	pa := mat.PermuteRows(orig, perm)
	return mat.MaxAbsDiff(pa, prod) / (mat.NormInf(orig)*float64(n) + 1)
}

// ReferenceLU returns the sequential in-place LU and ipiv of a copy of a.
func ReferenceLU(a *mat.Matrix) (*mat.Matrix, []int, error) {
	lu := a.Clone()
	ipiv := make([]int, a.Cols)
	err := lapack.Getrf(lu, ipiv, 32)
	return lu, ipiv, err
}

// IsPermutation checks that p is a permutation of 0..n-1.
func IsPermutation(p []int, n int) error {
	if len(p) != n {
		return fmt.Errorf("length %d != %d", len(p), n)
	}
	seen := make([]bool, n)
	for i, v := range p {
		if v < 0 || v >= n || seen[v] {
			return fmt.Errorf("entry %d: %d is not a fresh index", i, v)
		}
		seen[v] = true
	}
	return nil
}
