// Package testutil holds verification helpers shared by the distributed LU,
// Cholesky, and solve test suites: residual and backward-error checks
// against the definitions ‖A[perm,:] − L·U‖, ‖A − L·Lᵀ‖, and ‖A·X − B‖,
// reference sequential factorizations, and deterministic test inputs.
package testutil

import (
	"fmt"

	"repro/internal/blas"
	"repro/internal/lapack"
	"repro/internal/mat"
)

// ResidualLU computes ‖A[perm,:] − L·U‖∞ / (‖A‖∞·N) for an in-place LU
// factor of P·A with a LAPACK-style ipiv.
func ResidualLU(orig, lu *mat.Matrix, ipiv []int) float64 {
	n := orig.Rows
	l, u := lapack.SplitLU(lu)
	prod := mat.New(n, n)
	blas.Gemm(1, l, u, 0, prod)
	perm := lapack.PermFromIpiv(ipiv, n)
	pa := mat.PermuteRows(orig, perm)
	return mat.MaxAbsDiff(pa, prod) / (mat.NormInf(orig)*float64(n) + 1)
}

// ResidualLUPerm is ResidualLU for algorithms that report an explicit row
// permutation (perm[i] = original row index at position i) instead of
// sequential interchanges — COnfLUX's row masking produces this form.
func ResidualLUPerm(orig, lu *mat.Matrix, perm []int) float64 {
	n := orig.Rows
	l, u := lapack.SplitLU(lu)
	prod := mat.New(n, n)
	blas.Gemm(1, l, u, 0, prod)
	pa := mat.PermuteRows(orig, perm)
	return mat.MaxAbsDiff(pa, prod) / (mat.NormInf(orig)*float64(n) + 1)
}

// ResidualCholesky computes ‖A − L·Lᵀ‖∞ / (‖A‖∞·N) for a lower Cholesky
// factor L of A.
func ResidualCholesky(a, l *mat.Matrix) float64 {
	n := a.Rows
	prod := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			k := i
			if j < k {
				k = j
			}
			var s float64
			for d := 0; d <= k; d++ {
				s += l.At(i, d) * l.At(j, d)
			}
			prod.Set(i, j, s)
		}
	}
	return mat.MaxAbsDiff(a, prod) / (mat.NormInf(a)*float64(n) + 1)
}

// SolveBackwardError computes the normwise backward error of a solve,
// ‖A·X − B‖∞ / (‖A‖∞·‖X‖∞·N + ‖B‖∞), for multi-column X and B.
func SolveBackwardError(a, x, b *mat.Matrix) float64 {
	resid := b.Clone()
	blas.Gemm(-1, a, x, 1, resid)
	return mat.NormInf(resid) / (mat.NormInf(a)*mat.NormInf(x)*float64(a.Rows) + mat.NormInf(b))
}

// SPD returns a deterministic symmetric positive definite matrix
// A = G·Gᵀ + n·I from a random seed.
func SPD(n int, seed uint64) *mat.Matrix {
	g := mat.Random(n, n, seed)
	a := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += g.At(i, k) * g.At(j, k)
			}
			a.Set(i, j, s)
			a.Set(j, i, s)
		}
		a.Add(i, i, float64(n))
	}
	return a
}

// ReferenceLU returns the sequential in-place LU and ipiv of a copy of a.
func ReferenceLU(a *mat.Matrix) (*mat.Matrix, []int, error) {
	lu := a.Clone()
	ipiv := make([]int, a.Cols)
	err := lapack.Getrf(lu, ipiv, 32)
	return lu, ipiv, err
}

// IsPermutation checks that p is a permutation of 0..n-1.
func IsPermutation(p []int, n int) error {
	if len(p) != n {
		return fmt.Errorf("length %d != %d", len(p), n)
	}
	seen := make([]bool, n)
	for i, v := range p {
		if v < 0 || v >= n || seen[v] {
			return fmt.Errorf("entry %d: %d is not a fresh index", i, v)
		}
		seen[v] = true
	}
	return nil
}
