package costmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMaxMemoryParams(t *testing.T) {
	p := MaxMemoryParams(4096, 64)
	if want := 4096.0 * 4096 / 16; p.M != want {
		t.Fatalf("M=%v want %v", p.M, want)
	}
	if c := p.Replication(); math.Abs(c-4) > 1e-9 {
		t.Fatalf("c=%v want 4", c)
	}
}

func TestReplicationClamps(t *testing.T) {
	if c := (Params{N: 1024, P: 64, M: 1}).Replication(); c != 1 {
		t.Fatalf("tiny memory c=%v", c)
	}
	if c := (Params{N: 16, P: 64, M: 1e12}).Replication(); math.Abs(c-4) > 1e-9 {
		t.Fatalf("huge memory c=%v want P^(1/3)=4", c)
	}
}

func TestTable2ModelValues(t *testing.T) {
	// Reproduce the paper's Table 2 modeled GB values (leading terms):
	// LibSci/SLATE at N=16384, P=1024: 70.87 GB; COnfLUX: 44.77 GB.
	// Our models carry explicit lower-order terms, so compare leading-order:
	p := MaxMemoryParams(16384, 1024)
	lib := TotalBytes(LibSci, p) / 1e9
	// Leading: 8·N²·√P = 8·16384²·32 = 68.7 GB. Paper: 70.87.
	if lib < 65 || lib > 75 {
		t.Fatalf("LibSci model %v GB, paper ≈70.9", lib)
	}
	cfx := TotalBytes(COnfLUX, p) / 1e9
	// Paper's model value is 44.77 GB (includes its lower-order terms); the
	// published leading term alone is 8·N³/√M = 21.6 GB. Accept the band
	// between the leading term and the paper's full model.
	if cfx < 20 || cfx > 50 {
		t.Fatalf("COnfLUX model %v GB, expected within [20,50]", cfx)
	}
	if cfx >= lib {
		t.Fatal("COnfLUX model must beat 2D at P=1024")
	}
}

func TestCANDMCFiveTimesCOnfLUX(t *testing.T) {
	// Table 2: CANDMC's leading term is exactly 5× COnfLUX's.
	p := MaxMemoryParams(1<<17, 4096)
	nn, pp := float64(p.N), float64(p.P)
	lead := nn * nn * nn / (pp * math.Sqrt(p.M))
	candmcLead := PerRankElements(CANDMC, p) - 2*nn*nn/pp
	if math.Abs(candmcLead-5*lead) > 1e-6*lead {
		t.Fatalf("CANDMC leading %v want %v", candmcLead, 5*lead)
	}
	cfxLead := PerRankElements(COnfLUX, p) - p.Replication()*nn*nn/pp
	if math.Abs(cfxLead-lead) > 1e-6*lead {
		t.Fatalf("COnfLUX leading %v want %v", cfxLead, lead)
	}
}

func TestModelsReproducePaperTable2(t *testing.T) {
	// The paper's own modeled GB values (Table 2): N=16384, P=1024 →
	// LibSci/SLATE 70.87, COnfLUX 44.77; N=4096, P=1024 → 4.43 / 3.07.
	cases := []struct {
		algo  Algorithm
		n, p  int
		paper float64
	}{
		{LibSci, 16384, 1024, 70.87},
		{COnfLUX, 16384, 1024, 44.77},
		{LibSci, 4096, 1024, 4.43},
		{COnfLUX, 4096, 1024, 3.07},
		{COnfLUX, 4096, 64, 1.08},
		{LibSci, 4096, 64, 1.21},
	}
	for _, tc := range cases {
		got := TotalBytes(tc.algo, MaxMemoryParams(tc.n, tc.p)) / 1e9
		if got < 0.85*tc.paper || got > 1.15*tc.paper {
			t.Fatalf("%s N=%d P=%d: model %.2f GB vs paper %.2f GB", tc.algo, tc.n, tc.p, got, tc.paper)
		}
	}
}

func TestLowerBoundBelowAllModels(t *testing.T) {
	for _, n := range []int{4096, 16384} {
		for _, p := range []int{64, 1024} {
			params := MaxMemoryParams(n, p)
			lb := LowerBoundElements(params)
			for _, a := range Algorithms {
				if m := PerRankElements(a, params); m <= lb {
					t.Fatalf("%s at N=%d P=%d: model %v <= lower bound %v", a, n, p, m, lb)
				}
			}
		}
	}
}

func TestSecondBestIs2DAtModerateScale(t *testing.T) {
	// At the paper's measured scales the 2D libraries beat CANDMC, so the
	// second-best is LibSci or SLATE.
	algo, _ := SecondBest(MaxMemoryParams(16384, 1024))
	if algo != LibSci && algo != SLATE {
		t.Fatalf("second best %s", algo)
	}
}

func TestPredictedReductionGrowsWithP(t *testing.T) {
	// Fig. 7: the reduction vs second-best increases with machine scale.
	r1 := PredictedReduction(MaxMemoryParams(16384, 64))
	r2 := PredictedReduction(MaxMemoryParams(16384, 4096))
	r3 := PredictedReduction(MaxMemoryParams(16384, 262144))
	if !(r1 < r2 && r2 < r3) {
		t.Fatalf("reductions not increasing: %v %v %v", r1, r2, r3)
	}
	if r3 < 1.5 {
		t.Fatalf("Summit-scale predicted reduction %v, paper reports ≈2.1x", r3)
	}
}

func TestCrossover2DvsCANDMCIsHuge(t *testing.T) {
	// §9: "CANDMC is predicted to communicate less than suboptimal 2D
	// implementations only for P > 450,000 ranks for N=16,384".
	// With the Table 2 leading terms the crossover lands near 5⁶ ≈ 15.6k
	// ranks; the paper, using CANDMC's full model with its larger
	// lower-order constants, reports ≈450k. Either way the qualitative
	// claim holds: the crossover sits more than an order of magnitude
	// beyond the largest measured configuration (P=1024).
	p := Crossover2DvsCANDMC(16384, 1<<21)
	if p < 0 {
		t.Fatal("no crossover found below 2M ranks")
	}
	if p < 10_000 {
		t.Fatalf("crossover at %d ranks; must far exceed the measured P=1024", p)
	}
}

func TestUnknownAlgorithmPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PerRankElements("nope", MaxMemoryParams(64, 4))
}

// Property: at the paper's maximum-replication setting, COnfLUX's modeled
// per-rank volume beats the 2D libraries for every P ≥ 16 — the shape that
// makes Fig. 6a's ordering hold. (Per-rank volume is NOT monotone in M:
// extra replication buys smaller panels but costs more cross-layer
// reduction, which is exactly the trade-off the paper's v ≥ c constraint
// manages.)
func TestQuick25DBeats2DAtMaxMemory(t *testing.T) {
	f := func(p8 uint8) bool {
		p := 64 << (p8 % 8)
		params := MaxMemoryParams(16384, p)
		return PerRankElements(COnfLUX, params) < PerRankElements(LibSci, params)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: aggregate = per-rank × P × 8 for every algorithm.
func TestQuickTotalBytesConsistent(t *testing.T) {
	f := func(n8, p8 uint8) bool {
		n := 1024 * (int(n8%4) + 1)
		p := 4 << (p8 % 6)
		params := MaxMemoryParams(n, p)
		for _, a := range Algorithms {
			if math.Abs(TotalBytes(a, params)-PerRankElements(a, params)*float64(p)*8) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestApproxPerRankMsgs pins the §7.3 asymptotics behind the planner's
// instant model tier: partial pivoting pays O(N) latency rounds,
// tournament pivoting O(N/v), and an explicit block size overrides v.
func TestApproxPerRankMsgs(t *testing.T) {
	p := MaxMemoryParams(16384, 1024)
	for _, a := range []Algorithm{LibSci, SLATE} {
		if got := ApproxPerRankMsgs(a, p, 0); got != float64(p.N) {
			t.Fatalf("%s: %v msgs, want N=%d", a, got, p.N)
		}
	}
	for _, a := range []Algorithm{COnfLUX, CANDMC} {
		got := ApproxPerRankMsgs(a, p, 0)
		if got <= 0 || got >= float64(p.N) {
			t.Fatalf("%s: %v msgs, want within (0, N)", a, got)
		}
		// v = 2c floored at 4; at max replication c = P^(1/3) = ~10.08.
		v := 2 * p.Replication()
		if want := math.Ceil(float64(p.N) / v); got != want {
			t.Fatalf("%s: %v msgs, want %v", a, got, want)
		}
	}
	if got, want := ApproxPerRankMsgs(COnfLUX, p, 128), math.Ceil(float64(p.N)/128); got != want {
		t.Fatalf("explicit nb: %v msgs, want %v", got, want)
	}
}
