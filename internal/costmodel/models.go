// Package costmodel implements the parallel I/O cost models of Table 2 and
// the theoretical extrapolations behind Fig. 6 (solid lines) and Fig. 7
// (predicted region, Summit full-scale estimate). Costs are in ELEMENTS per
// rank unless stated otherwise; multiply by trace.BytesPerElement (8) for
// bytes, and by P for aggregate volume.
package costmodel

import (
	"math"

	"repro/internal/trace"
)

// Params describes one experiment point.
type Params struct {
	N int     // matrix dimension
	P int     // number of ranks
	M float64 // local fast-memory size (elements)
}

// Machine is the α-β (latency–bandwidth) machine parameter set used by the
// simulated-time model: a message of b bytes occupies each endpoint for
// Alpha + Beta·b seconds. It is the type the trace timeline advances
// per-rank clocks with.
type Machine = trace.Machine

// DefaultMachine returns the paper-scale interconnect parameters (Piz
// Daint-class Cray Aries: ~1 µs latency, ~10 GB/s injection bandwidth).
func DefaultMachine() Machine { return trace.DefaultMachine() }

// PredictedTime returns the α-β time prediction for the critical rank of an
// algorithm run: Beta times the Table 2 modeled per-rank volume (the
// bandwidth term) plus Alpha times perRankMsgs (the latency term). The
// harness has no closed-form message-count models, so callers supply
// perRankMsgs — typically the measured max-rank timed-phase message count
// of the run being predicted (§7.3 gives only the asymptotics: O(N)
// messages for partial pivoting, O(N/v) for tournament pivoting).
func PredictedTime(a Algorithm, p Params, m Machine, perRankMsgs float64) float64 {
	return m.Time(PerRankBytes(a, p), perRankMsgs)
}

// ApproxPerRankMsgs is the closed-form message-count estimate for the
// latency term of PredictedTime when no measured count is available (the
// planner service's instant model tier). §7.3 gives asymptotics only: the
// partial-pivoting 2D codes (LibSci, SLATE) inject O(N) messages — one
// pivot-exchange round per column — while the tournament-pivoting codes
// (COnfLUX, CANDMC) batch columns into v-wide panels for O(N/v) rounds.
// nb > 0 overrides the blocking parameter; otherwise COnfLUX's default
// v = 2c (floored at 4, internal/conflux.DefaultOptions) is used. The
// constant factor is 1 — an order-of-magnitude latency estimate, which is
// all the α term needs at paper-scale β·bytes dominance.
func ApproxPerRankMsgs(a Algorithm, p Params, nb int) float64 {
	n := float64(p.N)
	switch a {
	case LibSci, SLATE:
		return n
	case COnfLUX, CANDMC:
		v := float64(nb)
		if v <= 0 {
			v = 2 * p.Replication()
			if v < 4 {
				v = 4
			}
		}
		return math.Ceil(n / v)
	default:
		panic("costmodel: unknown algorithm " + string(a))
	}
}

// MaxMemoryParams returns the paper's evaluation setting: "enough memory
// M ≥ N²/P^{2/3} was present to allow the maximum number of replications
// c = P^{1/3}" (Fig. 6 caption).
func MaxMemoryParams(n, p int) Params {
	return Params{N: n, P: p, M: float64(n) * float64(n) / math.Pow(float64(p), 2.0/3.0)}
}

// Replication returns c = P·M/N² clamped to [1, P^{1/3}] (paper §7.2).
func (p Params) Replication() float64 {
	c := float64(p.P) * p.M / (float64(p.N) * float64(p.N))
	if max := math.Cbrt(float64(p.P)); c > max {
		c = max
	}
	if c < 1 {
		c = 1
	}
	return c
}

// Algorithm identifies one of the four measured implementations.
type Algorithm string

const (
	COnfLUX Algorithm = "COnfLUX"
	CANDMC  Algorithm = "CANDMC"
	LibSci  Algorithm = "LibSci"
	SLATE   Algorithm = "SLATE"

	// Cholesky names the 2.5D Cholesky extension kernel (the paper
	// conclusions' next target). It is not part of the Table 2 comparison
	// set (Algorithms), but registers as an engine like the LU codes.
	Cholesky Algorithm = "Cholesky"
)

// Algorithms lists the paper's comparison set in Table 2 order.
var Algorithms = []Algorithm{LibSci, SLATE, CANDMC, COnfLUX}

// PerRankElements returns the modeled I/O cost per rank, in elements,
// including the lower-order terms the paper omits "due to space
// constraints" but uses in its model lines.
func PerRankElements(a Algorithm, p Params) float64 {
	n, pp := float64(p.N), float64(p.P)
	sqM := math.Sqrt(p.M)
	c := p.Replication()
	switch a {
	case LibSci, SLATE:
		// 2D decomposition: N²/√P leading plus O(N²/P) pivot-swap traffic.
		// Calibrated against the paper's Table 2 model values (70.87 GB at
		// N=16384, P=1024).
		return n*n/math.Sqrt(pp) + n*n/pp
	case CANDMC:
		// The authors' model (paper Table 2, taken from Solomonik & Demmel):
		// 5N³/(P√M) + O(N²/(P√M)).
		return 5*n*n*n/(pp*sqM) + 2*n*n/pp
	case COnfLUX:
		// Paper §7.4 / Table 2: N³/(P√M) leading term, plus the cross-layer
		// panel-reduction traffic (c−1)N²/P that Algorithm 1's steps 1 and 5
		// accumulate. With this term the model reproduces the paper's own
		// Table 2 values (44.77 GB at N=16384, P=1024; 3.07 GB at N=4096).
		return n*n*n/(pp*sqM) + (c-1)*n*n/pp + n*n/pp
	default:
		panic("costmodel: unknown algorithm " + string(a))
	}
}

// TotalBytes returns the modeled aggregate communication volume in bytes
// (per-rank elements × P ranks × 8 bytes), the quantity in Table 2's
// "measured/modeled [GB]" rows.
func TotalBytes(a Algorithm, p Params) float64 {
	return PerRankElements(a, p) * float64(p.P) * trace.BytesPerElement
}

// PerRankBytes returns the modeled per-node volume in bytes (Fig. 6 y-axis).
func PerRankBytes(a Algorithm, p Params) float64 {
	return PerRankElements(a, p) * trace.BytesPerElement
}

// LowerBoundElements returns the paper's §6 parallel I/O lower bound per
// rank: 2N³/(3P√M) + N(N−1)/(2P) elements.
func LowerBoundElements(p Params) float64 {
	n, pp := float64(p.N), float64(p.P)
	return (2*n*n*n-6*n*n+4*n)/(3*pp*math.Sqrt(p.M)) + n*(n-1)/(2*pp)
}

// SecondBest returns the non-COnfLUX algorithm with the smallest modeled
// volume at p, with its modeled total bytes — the comparison baseline of
// Fig. 7 ("communication reduction vs. second-best algorithm").
func SecondBest(p Params) (Algorithm, float64) {
	best := Algorithm("")
	bestV := math.Inf(1)
	for _, a := range Algorithms {
		if a == COnfLUX {
			continue
		}
		if v := TotalBytes(a, p); v < bestV {
			best, bestV = a, v
		}
	}
	return best, bestV
}

// PredictedReduction returns the modeled COnfLUX communication reduction
// versus the second-best implementation (Fig. 7 cell values).
func PredictedReduction(p Params) float64 {
	_, second := SecondBest(p)
	return second / TotalBytes(COnfLUX, p)
}

// Crossover2DvsCANDMC returns the smallest P (scanning powers of two times
// small factors up to limit) at which CANDMC's modeled volume drops below
// the 2D algorithms' for the given N. The paper reports ≈450,000 ranks for
// N=16,384 — "asymptotic optimality is not enough to secure practical
// performance".
func Crossover2DvsCANDMC(n int, limit int) int {
	for p := 2; p <= limit; p = nextP(p) {
		pr := MaxMemoryParams(n, p)
		if TotalBytes(CANDMC, pr) < TotalBytes(LibSci, pr) {
			return p
		}
	}
	return -1
}

func nextP(p int) int {
	// Dense scan at small p, multiplicative at large p: resolution ~1%.
	step := p / 100
	if step < 1 {
		step = 1
	}
	return p + step
}
